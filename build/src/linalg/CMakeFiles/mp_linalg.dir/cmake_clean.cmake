file(REMOVE_RECURSE
  "CMakeFiles/mp_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/mp_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/mp_linalg.dir/gemm.cpp.o"
  "CMakeFiles/mp_linalg.dir/gemm.cpp.o.d"
  "CMakeFiles/mp_linalg.dir/matrix.cpp.o"
  "CMakeFiles/mp_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/mp_linalg.dir/solve.cpp.o"
  "CMakeFiles/mp_linalg.dir/solve.cpp.o.d"
  "CMakeFiles/mp_linalg.dir/sort4.cpp.o"
  "CMakeFiles/mp_linalg.dir/sort4.cpp.o.d"
  "libmp_linalg.a"
  "libmp_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
