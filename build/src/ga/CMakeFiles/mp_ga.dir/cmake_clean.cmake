file(REMOVE_RECURSE
  "CMakeFiles/mp_ga.dir/global_array.cpp.o"
  "CMakeFiles/mp_ga.dir/global_array.cpp.o.d"
  "CMakeFiles/mp_ga.dir/hash_block.cpp.o"
  "CMakeFiles/mp_ga.dir/hash_block.cpp.o.d"
  "libmp_ga.a"
  "libmp_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
