file(REMOVE_RECURSE
  "libmp_ga.a"
)
