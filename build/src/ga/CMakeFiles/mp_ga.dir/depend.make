# Empty dependencies file for mp_ga.
# This may be replaced when dependencies are built.
