file(REMOVE_RECURSE
  "CMakeFiles/mp_cc.dir/ccsd.cpp.o"
  "CMakeFiles/mp_cc.dir/ccsd.cpp.o.d"
  "CMakeFiles/mp_cc.dir/integration.cpp.o"
  "CMakeFiles/mp_cc.dir/integration.cpp.o.d"
  "CMakeFiles/mp_cc.dir/model.cpp.o"
  "CMakeFiles/mp_cc.dir/model.cpp.o.d"
  "libmp_cc.a"
  "libmp_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
