file(REMOVE_RECURSE
  "libmp_cc.a"
)
