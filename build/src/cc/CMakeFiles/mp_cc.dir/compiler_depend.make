# Empty compiler generated dependencies file for mp_cc.
# This may be replaced when dependencies are built.
