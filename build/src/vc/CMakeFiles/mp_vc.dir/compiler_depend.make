# Empty compiler generated dependencies file for mp_vc.
# This may be replaced when dependencies are built.
