file(REMOVE_RECURSE
  "CMakeFiles/mp_vc.dir/cluster.cpp.o"
  "CMakeFiles/mp_vc.dir/cluster.cpp.o.d"
  "CMakeFiles/mp_vc.dir/fabric.cpp.o"
  "CMakeFiles/mp_vc.dir/fabric.cpp.o.d"
  "libmp_vc.a"
  "libmp_vc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_vc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
