file(REMOVE_RECURSE
  "libmp_vc.a"
)
