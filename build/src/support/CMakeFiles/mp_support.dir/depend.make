# Empty dependencies file for mp_support.
# This may be replaced when dependencies are built.
