file(REMOVE_RECURSE
  "CMakeFiles/mp_support.dir/log.cpp.o"
  "CMakeFiles/mp_support.dir/log.cpp.o.d"
  "CMakeFiles/mp_support.dir/stats.cpp.o"
  "CMakeFiles/mp_support.dir/stats.cpp.o.d"
  "libmp_support.a"
  "libmp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
