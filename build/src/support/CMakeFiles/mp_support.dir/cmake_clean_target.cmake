file(REMOVE_RECURSE
  "libmp_support.a"
)
