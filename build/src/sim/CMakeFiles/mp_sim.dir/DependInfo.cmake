
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/mp_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/mp_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/original_sim.cpp" "src/sim/CMakeFiles/mp_sim.dir/original_sim.cpp.o" "gcc" "src/sim/CMakeFiles/mp_sim.dir/original_sim.cpp.o.d"
  "/root/repo/src/sim/presets.cpp" "src/sim/CMakeFiles/mp_sim.dir/presets.cpp.o" "gcc" "src/sim/CMakeFiles/mp_sim.dir/presets.cpp.o.d"
  "/root/repo/src/sim/ptg_sim.cpp" "src/sim/CMakeFiles/mp_sim.dir/ptg_sim.cpp.o" "gcc" "src/sim/CMakeFiles/mp_sim.dir/ptg_sim.cpp.o.d"
  "/root/repo/src/sim/task_graph.cpp" "src/sim/CMakeFiles/mp_sim.dir/task_graph.cpp.o" "gcc" "src/sim/CMakeFiles/mp_sim.dir/task_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tce/CMakeFiles/mp_tce.dir/DependInfo.cmake"
  "/root/repo/build/src/ptg/CMakeFiles/mp_ptg.dir/DependInfo.cmake"
  "/root/repo/build/src/ga/CMakeFiles/mp_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/mp_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
