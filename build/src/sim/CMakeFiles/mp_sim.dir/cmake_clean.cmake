file(REMOVE_RECURSE
  "CMakeFiles/mp_sim.dir/cost_model.cpp.o"
  "CMakeFiles/mp_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/mp_sim.dir/original_sim.cpp.o"
  "CMakeFiles/mp_sim.dir/original_sim.cpp.o.d"
  "CMakeFiles/mp_sim.dir/presets.cpp.o"
  "CMakeFiles/mp_sim.dir/presets.cpp.o.d"
  "CMakeFiles/mp_sim.dir/ptg_sim.cpp.o"
  "CMakeFiles/mp_sim.dir/ptg_sim.cpp.o.d"
  "CMakeFiles/mp_sim.dir/task_graph.cpp.o"
  "CMakeFiles/mp_sim.dir/task_graph.cpp.o.d"
  "libmp_sim.a"
  "libmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
