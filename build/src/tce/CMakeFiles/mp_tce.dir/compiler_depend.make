# Empty compiler generated dependencies file for mp_tce.
# This may be replaced when dependencies are built.
