file(REMOVE_RECURSE
  "libmp_tce.a"
)
