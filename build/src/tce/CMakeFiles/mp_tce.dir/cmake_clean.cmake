file(REMOVE_RECURSE
  "CMakeFiles/mp_tce.dir/block_tensor.cpp.o"
  "CMakeFiles/mp_tce.dir/block_tensor.cpp.o.d"
  "CMakeFiles/mp_tce.dir/chain_plan.cpp.o"
  "CMakeFiles/mp_tce.dir/chain_plan.cpp.o.d"
  "CMakeFiles/mp_tce.dir/inspector.cpp.o"
  "CMakeFiles/mp_tce.dir/inspector.cpp.o.d"
  "CMakeFiles/mp_tce.dir/original_exec.cpp.o"
  "CMakeFiles/mp_tce.dir/original_exec.cpp.o.d"
  "CMakeFiles/mp_tce.dir/ptg_exec.cpp.o"
  "CMakeFiles/mp_tce.dir/ptg_exec.cpp.o.d"
  "CMakeFiles/mp_tce.dir/reference_exec.cpp.o"
  "CMakeFiles/mp_tce.dir/reference_exec.cpp.o.d"
  "CMakeFiles/mp_tce.dir/tiles.cpp.o"
  "CMakeFiles/mp_tce.dir/tiles.cpp.o.d"
  "CMakeFiles/mp_tce.dir/variants.cpp.o"
  "CMakeFiles/mp_tce.dir/variants.cpp.o.d"
  "libmp_tce.a"
  "libmp_tce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_tce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
