
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tce/block_tensor.cpp" "src/tce/CMakeFiles/mp_tce.dir/block_tensor.cpp.o" "gcc" "src/tce/CMakeFiles/mp_tce.dir/block_tensor.cpp.o.d"
  "/root/repo/src/tce/chain_plan.cpp" "src/tce/CMakeFiles/mp_tce.dir/chain_plan.cpp.o" "gcc" "src/tce/CMakeFiles/mp_tce.dir/chain_plan.cpp.o.d"
  "/root/repo/src/tce/inspector.cpp" "src/tce/CMakeFiles/mp_tce.dir/inspector.cpp.o" "gcc" "src/tce/CMakeFiles/mp_tce.dir/inspector.cpp.o.d"
  "/root/repo/src/tce/original_exec.cpp" "src/tce/CMakeFiles/mp_tce.dir/original_exec.cpp.o" "gcc" "src/tce/CMakeFiles/mp_tce.dir/original_exec.cpp.o.d"
  "/root/repo/src/tce/ptg_exec.cpp" "src/tce/CMakeFiles/mp_tce.dir/ptg_exec.cpp.o" "gcc" "src/tce/CMakeFiles/mp_tce.dir/ptg_exec.cpp.o.d"
  "/root/repo/src/tce/reference_exec.cpp" "src/tce/CMakeFiles/mp_tce.dir/reference_exec.cpp.o" "gcc" "src/tce/CMakeFiles/mp_tce.dir/reference_exec.cpp.o.d"
  "/root/repo/src/tce/tiles.cpp" "src/tce/CMakeFiles/mp_tce.dir/tiles.cpp.o" "gcc" "src/tce/CMakeFiles/mp_tce.dir/tiles.cpp.o.d"
  "/root/repo/src/tce/variants.cpp" "src/tce/CMakeFiles/mp_tce.dir/variants.cpp.o" "gcc" "src/tce/CMakeFiles/mp_tce.dir/variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ga/CMakeFiles/mp_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/ptg/CMakeFiles/mp_ptg.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/mp_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
