file(REMOVE_RECURSE
  "CMakeFiles/mp_apps.dir/cholesky.cpp.o"
  "CMakeFiles/mp_apps.dir/cholesky.cpp.o.d"
  "libmp_apps.a"
  "libmp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
