file(REMOVE_RECURSE
  "libmp_ptg.a"
)
