
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ptg/context.cpp" "src/ptg/CMakeFiles/mp_ptg.dir/context.cpp.o" "gcc" "src/ptg/CMakeFiles/mp_ptg.dir/context.cpp.o.d"
  "/root/repo/src/ptg/scheduler.cpp" "src/ptg/CMakeFiles/mp_ptg.dir/scheduler.cpp.o" "gcc" "src/ptg/CMakeFiles/mp_ptg.dir/scheduler.cpp.o.d"
  "/root/repo/src/ptg/taskpool.cpp" "src/ptg/CMakeFiles/mp_ptg.dir/taskpool.cpp.o" "gcc" "src/ptg/CMakeFiles/mp_ptg.dir/taskpool.cpp.o.d"
  "/root/repo/src/ptg/trace.cpp" "src/ptg/CMakeFiles/mp_ptg.dir/trace.cpp.o" "gcc" "src/ptg/CMakeFiles/mp_ptg.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vc/CMakeFiles/mp_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
