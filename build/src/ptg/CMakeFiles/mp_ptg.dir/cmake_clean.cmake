file(REMOVE_RECURSE
  "CMakeFiles/mp_ptg.dir/context.cpp.o"
  "CMakeFiles/mp_ptg.dir/context.cpp.o.d"
  "CMakeFiles/mp_ptg.dir/scheduler.cpp.o"
  "CMakeFiles/mp_ptg.dir/scheduler.cpp.o.d"
  "CMakeFiles/mp_ptg.dir/taskpool.cpp.o"
  "CMakeFiles/mp_ptg.dir/taskpool.cpp.o.d"
  "CMakeFiles/mp_ptg.dir/trace.cpp.o"
  "CMakeFiles/mp_ptg.dir/trace.cpp.o.d"
  "libmp_ptg.a"
  "libmp_ptg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_ptg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
