# Empty dependencies file for mp_ptg.
# This may be replaced when dependencies are built.
