# CMake generated Testfile for 
# Source directory: /root/repo/src/ptg
# Build directory: /root/repo/build/src/ptg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
