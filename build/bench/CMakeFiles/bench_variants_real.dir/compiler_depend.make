# Empty compiler generated dependencies file for bench_variants_real.
# This may be replaced when dependencies are built.
