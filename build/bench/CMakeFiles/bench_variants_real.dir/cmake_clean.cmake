file(REMOVE_RECURSE
  "CMakeFiles/bench_variants_real.dir/bench_variants_real.cpp.o"
  "CMakeFiles/bench_variants_real.dir/bench_variants_real.cpp.o.d"
  "bench_variants_real"
  "bench_variants_real.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_variants_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
