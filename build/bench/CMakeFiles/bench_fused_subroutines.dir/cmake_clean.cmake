file(REMOVE_RECURSE
  "CMakeFiles/bench_fused_subroutines.dir/bench_fused_subroutines.cpp.o"
  "CMakeFiles/bench_fused_subroutines.dir/bench_fused_subroutines.cpp.o.d"
  "bench_fused_subroutines"
  "bench_fused_subroutines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fused_subroutines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
