# Empty dependencies file for bench_fused_subroutines.
# This may be replaced when dependencies are built.
