# Empty compiler generated dependencies file for bench_ablation_loadbalance.
# This may be replaced when dependencies are built.
