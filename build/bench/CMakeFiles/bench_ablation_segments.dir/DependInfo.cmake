
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_segments.cpp" "bench/CMakeFiles/bench_ablation_segments.dir/bench_ablation_segments.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_segments.dir/bench_ablation_segments.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tce/CMakeFiles/mp_tce.dir/DependInfo.cmake"
  "/root/repo/build/src/ga/CMakeFiles/mp_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/ptg/CMakeFiles/mp_ptg.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/mp_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
