file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_segments.dir/bench_ablation_segments.cpp.o"
  "CMakeFiles/bench_ablation_segments.dir/bench_ablation_segments.cpp.o.d"
  "bench_ablation_segments"
  "bench_ablation_segments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
