file(REMOVE_RECURSE
  "CMakeFiles/test_plan_properties.dir/test_plan_properties.cpp.o"
  "CMakeFiles/test_plan_properties.dir/test_plan_properties.cpp.o.d"
  "test_plan_properties"
  "test_plan_properties.pdb"
  "test_plan_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
