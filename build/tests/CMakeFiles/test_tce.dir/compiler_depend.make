# Empty compiler generated dependencies file for test_tce.
# This may be replaced when dependencies are built.
