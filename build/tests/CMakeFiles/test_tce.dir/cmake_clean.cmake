file(REMOVE_RECURSE
  "CMakeFiles/test_tce.dir/test_tce.cpp.o"
  "CMakeFiles/test_tce.dir/test_tce.cpp.o.d"
  "test_tce"
  "test_tce.pdb"
  "test_tce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
