# Empty dependencies file for test_ptg.
# This may be replaced when dependencies are built.
