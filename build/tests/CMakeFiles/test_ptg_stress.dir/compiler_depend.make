# Empty compiler generated dependencies file for test_ptg_stress.
# This may be replaced when dependencies are built.
