file(REMOVE_RECURSE
  "CMakeFiles/test_ptg_stress.dir/test_ptg_stress.cpp.o"
  "CMakeFiles/test_ptg_stress.dir/test_ptg_stress.cpp.o.d"
  "test_ptg_stress"
  "test_ptg_stress.pdb"
  "test_ptg_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ptg_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
