file(REMOVE_RECURSE
  "CMakeFiles/test_vc.dir/test_vc.cpp.o"
  "CMakeFiles/test_vc.dir/test_vc.cpp.o.d"
  "test_vc"
  "test_vc.pdb"
  "test_vc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
