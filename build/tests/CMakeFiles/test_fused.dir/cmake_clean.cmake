file(REMOVE_RECURSE
  "CMakeFiles/test_fused.dir/test_fused.cpp.o"
  "CMakeFiles/test_fused.dir/test_fused.cpp.o.d"
  "test_fused"
  "test_fused.pdb"
  "test_fused[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
