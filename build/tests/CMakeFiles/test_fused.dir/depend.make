# Empty dependencies file for test_fused.
# This may be replaced when dependencies are built.
