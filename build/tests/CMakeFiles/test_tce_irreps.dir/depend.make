# Empty dependencies file for test_tce_irreps.
# This may be replaced when dependencies are built.
