file(REMOVE_RECURSE
  "CMakeFiles/test_tce_irreps.dir/test_tce_irreps.cpp.o"
  "CMakeFiles/test_tce_irreps.dir/test_tce_irreps.cpp.o.d"
  "test_tce_irreps"
  "test_tce_irreps.pdb"
  "test_tce_irreps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tce_irreps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
