# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_vc[1]_include.cmake")
include("/root/repo/build/tests/test_ga[1]_include.cmake")
include("/root/repo/build/tests/test_ptg[1]_include.cmake")
include("/root/repo/build/tests/test_tce[1]_include.cmake")
include("/root/repo/build/tests/test_cc[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_fused[1]_include.cmake")
include("/root/repo/build/tests/test_cholesky[1]_include.cmake")
include("/root/repo/build/tests/test_ptg_stress[1]_include.cmake")
include("/root/repo/build/tests/test_tce_irreps[1]_include.cmake")
include("/root/repo/build/tests/test_plan_properties[1]_include.cmake")
