# Empty dependencies file for t2_7_variants.
# This may be replaced when dependencies are built.
