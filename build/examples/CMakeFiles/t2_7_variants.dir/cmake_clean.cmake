file(REMOVE_RECURSE
  "CMakeFiles/t2_7_variants.dir/t2_7_variants.cpp.o"
  "CMakeFiles/t2_7_variants.dir/t2_7_variants.cpp.o.d"
  "t2_7_variants"
  "t2_7_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t2_7_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
