file(REMOVE_RECURSE
  "CMakeFiles/ccsd_energy.dir/ccsd_energy.cpp.o"
  "CMakeFiles/ccsd_energy.dir/ccsd_energy.cpp.o.d"
  "ccsd_energy"
  "ccsd_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsd_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
