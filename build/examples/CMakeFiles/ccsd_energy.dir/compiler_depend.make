# Empty compiler generated dependencies file for ccsd_energy.
# This may be replaced when dependencies are built.
