file(REMOVE_RECURSE
  "CMakeFiles/tiled_cholesky.dir/tiled_cholesky.cpp.o"
  "CMakeFiles/tiled_cholesky.dir/tiled_cholesky.cpp.o.d"
  "tiled_cholesky"
  "tiled_cholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiled_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
