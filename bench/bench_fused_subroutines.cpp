// Future-work quantification (paper Section III-B / VII): once several CC
// subroutines run over the runtime, the data no longer needs to be pushed
// to and pulled from the Global Array between them, and the explicit
// synchronization separating work levels disappears — one context executes
// the union of their task graphs.
//
// This harness compares, on the simulated 32-node cluster:
//   sequential : t2_7 then the hh ladder, barrier between (today's NWChem
//                level structure),
//   fused      : both subroutines' chains interleaved under one context.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/presets.h"
#include "sim/ptg_sim.h"
#include "tce/chain_plan.h"
#include "tce/inspector.h"

using namespace mp;
using namespace mp::sim;

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 32;
  const auto p = make_preset("beta_carotene_32");

  // Build the hh-ladder plan on the same tile space and fuse.
  tce::BlockTensor4 w(*p.space, {tce::RangeKind::kOcc, tce::RangeKind::kOcc,
                                 tce::RangeKind::kOcc, tce::RangeKind::kOcc});
  const auto hh = tce::inspect_hh_ladder(*p.space, {&w, p.t.get(), p.r.get()});
  const auto fused = tce::fuse_plans(p.plan, hh, {3, 1, 2});

  std::printf("== Fused multi-subroutine execution (%d nodes) ==\n", nodes);
  std::printf("t2_7 : %s\n", p.plan.stats().describe().c_str());
  std::printf("hh   : %s\n\n", hh.stats().describe().c_str());

  std::printf("%-10s %12s %12s %12s %12s %9s\n", "cores", "t2_7(s)",
              "hh(s)", "sequential", "fused(s)", "saved");
  for (const int cores : {1, 3, 7, 11, 15}) {
    auto run = [&](const tce::ChainPlan& plan) {
      GraphOptions gopts;
      gopts.variant = tce::VariantConfig::v5();
      gopts.nodes = nodes;
      const auto g = build_graph(plan, gopts);
      SimOptions sopts;
      sopts.cores_per_node = cores;
      return simulate_ptg(g, sopts).makespan;
    };
    const double t_pp = run(p.plan);
    const double t_hh = run(hh);
    const double t_seq = t_pp + t_hh;  // barrier between the levels
    const double t_fused = run(fused);
    std::printf("%-10d %12.3f %12.3f %12.3f %12.3f %8.1f%%\n", cores, t_pp,
                t_hh, t_seq, t_fused, 100.0 * (1.0 - t_fused / t_seq));
  }

  std::printf("\nFusion removes the inter-level barrier: the small hh "
              "chains fill the idle tails of the large t2_7 chains (and "
              "vice versa), which is exactly the benefit the paper "
              "projects for porting a larger part of the application.\n");
  return 0;
}
