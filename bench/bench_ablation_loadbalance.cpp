// Ablation TAB-C: load balancing (Section IV-D). The original code uses
// NXTVAL — a single global atomic ticket counter — for dynamic chain
// distribution; the paper argues this cannot scale and adopts static
// round-robin across nodes (+ dynamic intra-node scheduling) instead.
// This harness runs the original-structure simulator with both schemes
// across node counts, reporting the time spent in ticket acquisition.
#include <cstdio>
#include <cstdlib>

#include "sim/original_sim.h"
#include "sim/presets.h"

using namespace mp;
using namespace mp::sim;

int main(int argc, char** argv) {
  const int cores = argc > 1 ? std::atoi(argv[1]) : 15;
  const auto p = make_preset("beta_carotene_32");

  std::printf("== Ablation: NXTVAL dynamic tickets vs static round-robin "
              "(original structure, %d cores/node) ==\n\n",
              cores);
  std::printf("%6s %14s %14s %16s %14s\n", "nodes", "nxtval mksp(s)",
              "static mksp(s)", "nxtval time(s)", "nxtval/chain(us)");

  for (const int nodes : {8, 16, 32, 64, 128, 256}) {
    OriginalSimOptions base;
    base.nodes = nodes;
    base.cores_per_node = cores;

    auto dyn = base;
    const auto rd = simulate_original(p.plan, dyn);

    auto sta = base;
    sta.static_distribution = true;
    const auto rs = simulate_original(p.plan, sta);

    const double per_chain_us =
        rd.nxtval_time / static_cast<double>(p.plan.chains.size()) * 1e6;
    std::printf("%6d %14.3f %14.3f %16.4f %14.2f\n", nodes, rd.makespan,
                rs.makespan, rd.nxtval_time, per_chain_us);
  }

  std::printf("\nExpectation: the shared counter's acquisition cost grows "
              "with scale (more requesters serializing on one server), "
              "while static distribution pays nothing on the critical "
              "path — the trade the paper makes. (Dynamic ticketing can "
              "still win when it fixes load imbalance; the crossover "
              "depends on chain-length variance.)\n");
  return 0;
}
