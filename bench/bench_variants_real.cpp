// Real-execution variant comparison (Figures 3-8 + claim C9 at host
// scale): runs the actual PTG runtime — not the simulator — on the
// in-process virtual cluster, executing the t2_7 chain plan under every
// variant plus the original-style executor, and reports
//   * task-graph composition per variant (the Figs. 4-7 structures),
//   * remote activations (the Fig. 8 distributed-WRITE traffic),
//   * agreement of every result against the serial reference,
//   * wall-clock on this host (informational only: the host may have a
//     single core; cluster-scale performance lives in bench_fig9).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "cc/ccsd.h"
#include "cc/integration.h"
#include "cc/model.h"
#include "support/timing.h"

using namespace mp;

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const auto sys = cc::make_synthetic(3, 6, 1.5, 0.1, 2027);
  cc::DistributedLadder ladder(sys, /*tile_size=*/3, nranks);

  std::printf("== Real execution of icsd_t2_7 over the PTG runtime ==\n");
  std::printf("system: %d occ + %d virt spin orbitals; %d virtual ranks\n",
              sys.n_occ(), sys.n_virt(), nranks);
  std::printf("plan: %s\n\n", ladder.plan().stats().describe().c_str());

  // tau = MP2 doubles of the system.
  const int O = sys.n_occ(), V = sys.n_virt();
  std::vector<double> tau(static_cast<size_t>(V) * V * O * O);
  for (int a = 0; a < V; ++a)
    for (int b = 0; b < V; ++b)
      for (int i = 0; i < O; ++i)
        for (int j = 0; j < O; ++j) {
          const double d =
              sys.f(i) + sys.f(j) - sys.f(O + a) - sys.f(O + b);
          tau[((static_cast<size_t>(a) * V + b) * O + i) * O + j] =
              sys.v(i, j, O + a, O + b) / d;
        }

  std::vector<double> reference(tau.size(), 0.0);
  cc::dense_ladder(sys, tau, reference);

  auto max_diff = [&](const std::vector<double>& got) {
    double m = 0.0;
    for (size_t i = 0; i < got.size(); ++i) {
      m = std::max(m, std::fabs(got[i] - reference[i]));
    }
    return m;
  };

  std::printf("%-10s %10s %10s %12s %12s %18s %12s\n", "executor", "tasks",
              "remote", "max|err|", "wall(ms)", "steals/contention", "classes");

  // Original-style executor first.
  {
    cc::LadderRunOptions opts;
    opts.kind = cc::ExecKind::kOriginal;
    opts.workers_per_rank = 2;
    WallTimer t;
    const auto res = ladder.run(tau, opts);
    std::printf("%-10s %10s %10s %12.3e %12.2f %18s %12s\n", "original", "-",
                "-", max_diff(res.r_dense), t.millis(), "-", "-");
  }

  // Every PTG variant under the default priority scheduler, then the best
  // variant again under the work-stealing scheduler (reports steal counts;
  // the contention column shows how many queue-lock acquisitions blocked).
  auto run_ptg = [&](const char* label, const tce::VariantConfig& variant,
                     ptg::SchedPolicy policy) {
    cc::LadderRunOptions opts;
    opts.kind = cc::ExecKind::kPtg;
    opts.variant = variant;
    opts.policy = policy;
    opts.workers_per_rank = 2;
    opts.enable_tracing = true;
    WallTimer t;
    const auto res = ladder.run(tau, opts);
    const double ms = t.millis();

    // Task-class composition (the Figs. 4-7 structure).
    std::map<std::string, int> per_class;
    for (const auto& e : res.trace.events()) {
      if (e.is_comm) continue;
      if (e.cls >= 0 &&
          static_cast<size_t>(e.cls) < res.class_names.size()) {
        per_class[res.class_names[static_cast<size_t>(e.cls)]]++;
      }
    }
    std::string classes;
    for (const auto& [name, count] : per_class) {
      classes += name + ":" + std::to_string(count) + " ";
    }
    char sched_col[64];
    std::snprintf(sched_col, sizeof sched_col, "%llu/%llu",
                  static_cast<unsigned long long>(res.sched.steals),
                  static_cast<unsigned long long>(
                      res.sched.contended_pushes + res.sched.contended_pops));
    std::printf("%-10s %10llu %10llu %12.3e %12.2f %18s  %s\n", label,
                static_cast<unsigned long long>(res.tasks_executed),
                static_cast<unsigned long long>(res.remote_activations),
                max_diff(res.r_dense), ms, sched_col, classes.c_str());
  };

  for (const auto& variant : tce::VariantConfig::all()) {
    run_ptg(variant.name.c_str(), variant, ptg::SchedPolicy::kPriority);
  }
  run_ptg("v5+steal", tce::VariantConfig::v5(), ptg::SchedPolicy::kStealing);

  std::printf("\nAll max|err| values should be < 1e-12: every variant "
              "computes the identical result (paper Section IV-A, \"matched "
              "up to the 14th digit\").\n");
  return 0;
}
