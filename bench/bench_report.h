// Machine-readable benchmark reporting: collects per-case sample sets,
// reduces them to median/p10/p90, and emits a stable JSON document
// (schema "mp-bench-kernels-v1") so successive commits can be diffed by
// tooling. Validation rejects NaN and non-positive throughput so the
// perf-smoke ctest target fails loudly on a broken kernel or timer.
//
// Document layout:
//   {
//     "schema": "mp-bench-kernels-v1",
//     "git_sha": "<40 hex or 'unknown'>",
//     "config": { "<key>": "<value>", ... },   // compiler, ISA, flags
//     "cases": [
//       {
//         "name":   "dgemm_128_NN",
//         "kind":   "dgemm" | "sort4" | "sched",
//         "metric": "gflops" | "gbytes" | "mops",
//         "median": 10.5, "p10": 10.1, "p90": 10.9,   // of `metric`
//         "reps":   9,
//         "ref_median": 2.9,        // naive-reference throughput (0 = n/a)
//         "speedup":    3.6,        // median / ref_median (0 = n/a)
//         "params": { "m": 128, ... }                 // integer knobs
//       }, ...
//     ]
//   }
#pragma once

#include <map>
#include <string>
#include <vector>

namespace mp::bench {

struct BenchCase {
  std::string name;
  std::string kind;
  std::string metric;
  std::vector<double> samples;      ///< one throughput value per repetition
  double ref_median = 0.0;          ///< naive-reference median, 0 if n/a
  std::map<std::string, long> params;
};

/// Percentile (0..100) of a sample set by linear interpolation between
/// order statistics. The input need not be sorted.
double percentile(std::vector<double> samples, double pct);

class BenchReport {
 public:
  /// Override the document's schema tag (default "mp-bench-kernels-v1");
  /// other benchmark families (e.g. "mp-bench-resubmit-v1") reuse the
  /// same case/percentile machinery under their own schema.
  void set_schema(const std::string& schema);
  void set_config(const std::string& key, const std::string& value);
  void add(BenchCase c);

  /// False (with a human-readable reason) when any case has no samples,
  /// a NaN/inf sample, or non-positive median throughput.
  bool validate(std::string* why) const;

  std::string to_json() const;

  /// Writes to_json() to `path`. Returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  std::string schema_ = "mp-bench-kernels-v1";
  std::map<std::string, std::string> config_;
  std::vector<BenchCase> cases_;
};

}  // namespace mp::bench
