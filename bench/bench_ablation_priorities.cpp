// Ablation TAB-A: the paper's priority scheme (Section IV-C) assigns
// offsets (readers +5*P, GEMMs +1*P) on top of the decreasing-with-chain
// base priority, creating a prefetch pipeline of depth 5*P. This harness
// sweeps the reader offset (pipeline depth) and also disables the
// chain-decreasing base, quantifying how much each ingredient buys.
#include <cstdio>
#include <cstdlib>

#include "sim/presets.h"
#include "sim/ptg_sim.h"

using namespace mp;
using namespace mp::sim;

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 32;
  const int cores = 15;
  const auto p = make_preset("beta_carotene_32");

  std::printf("== Ablation: priority scheme (v4 dataflow, %d nodes x %d "
              "cores) ==\n",
              nodes, cores);
  std::printf("%-28s %12s %14s\n", "configuration", "makespan(s)",
              "startup idle(s)");

  auto run = [&](tce::VariantConfig v, int reader_off, int gemm_off) {
    GraphOptions gopts;
    gopts.variant = v;
    gopts.nodes = nodes;
    gopts.reader_offset = reader_off;
    gopts.gemm_offset = gemm_off;
    const auto g = build_graph(p.plan, gopts);
    SimOptions sopts;
    sopts.cores_per_node = cores;
    sopts.record_trace = true;
    auto r = simulate_ptg(g, sopts);
    r.trace.normalize();
    return std::make_pair(r.makespan, r.trace.mean_startup_idle());
  };

  {
    const auto [mk, idle] = run(tce::VariantConfig::v2(), 5, 1);
    std::printf("%-28s %12.3f %14.3f\n", "no priorities (v2)", mk, idle);
  }
  for (const int ro : {0, 1, 2, 5, 10, 20}) {
    const auto [mk, idle] = run(tce::VariantConfig::v4(), ro, 1);
    char label[64];
    std::snprintf(label, sizeof label, "reader offset +%d*P%s", ro,
                  ro == 5 ? " (paper)" : "");
    std::printf("%-28s %12.3f %14.3f\n", label, mk, idle);
  }
  {
    const auto [mk, idle] = run(tce::VariantConfig::v4(), 5, 0);
    std::printf("%-28s %12.3f %14.3f\n", "gemm offset +0 (was +1*P)", mk,
                idle);
  }
  std::printf("\nExpectation: the no-priority row pays a startup bubble; "
              "small reader offsets under-prefetch; the paper's +5*P sits "
              "at or near the plateau.\n");
  return 0;
}
