// Trace-figure reproduction (Figures 10-13): execution traces of
//   * v4 (priorities decreasing with chain number)  — Fig. 10,
//   * v2 (no priorities)                            — Fig. 11,
//   * the original TCE code                         — Figs. 12/13,
// on the simulated 32-node cluster at 7 cores/node (the paper's traces use
// 7 worker threads per node).
//
// For each trace we print an ASCII Gantt of the first few nodes and the
// quantitative signatures the paper reads off the figures: startup idle
// (the v2 bubble), overall idle fraction, and communication/computation
// overlap.
#include <cstdio>
#include <cstdlib>

#include "sim/original_sim.h"
#include "sim/presets.h"
#include "sim/ptg_sim.h"

using namespace mp;
using namespace mp::sim;

namespace {

// Keep only the first `max_nodes` nodes so the Gantt stays readable.
ptg::Trace clip_nodes(const ptg::Trace& in, int max_nodes) {
  ptg::Trace out;
  for (const auto& e : in.events()) {
    if (e.rank < max_nodes) out.add(e);
  }
  return out;
}

void report(const char* title, ptg::Trace trace,
            const std::vector<char>& glyphs, double makespan) {
  trace.normalize();
  std::printf("---- %s ----\n", title);
  std::printf("makespan %.3fs | idle %.1f%% | startup idle %.3fs | "
              "comm overlap (same thread) %.1f%%\n",
              makespan, 100.0 * trace.idle_fraction(),
              trace.mean_startup_idle(),
              100.0 * trace.comm_overlap_same_worker_fraction());
  std::printf("%s\n", clip_nodes(trace, 2).ascii_gantt(100, glyphs).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 32;
  const int cores = 7;  // the paper's traces show 7 threads per node
  const auto p = make_preset("beta_carotene_32");

  std::printf("== Figures 10-13: execution traces, %d nodes x %d cores ==\n",
              nodes, cores);
  std::printf("glyphs: G=GEMM a/b=READ R=REDUCE S=SORT W=WRITE 0=DFILL "
              "(PaRSEC) | ~=GET G=GEMM S=SORT w=ADD x=NXTVAL (original); "
              "comm rows show transfers\n\n");

  auto run_variant = [&](const tce::VariantConfig& v) {
    GraphOptions gopts;
    gopts.variant = v;
    gopts.nodes = nodes;
    const auto g = build_graph(p.plan, gopts);
    SimOptions sopts;
    sopts.cores_per_node = cores;
    sopts.record_trace = true;
    return simulate_ptg(g, sopts);
  };

  const auto v4 = run_variant(tce::VariantConfig::v4());
  report("Fig. 10 analogue: v4 (priorities decrease with chain number)",
         v4.trace, sim_class_glyphs(), v4.makespan);

  const auto v2 = run_variant(tce::VariantConfig::v2());
  report("Fig. 11 analogue: v2 (no task priorities)", v2.trace,
         sim_class_glyphs(), v2.makespan);

  OriginalSimOptions oopts;
  oopts.nodes = nodes;
  oopts.cores_per_node = cores;
  oopts.record_trace = true;
  const auto orig = simulate_original(p.plan, oopts);
  report("Fig. 12/13 analogue: original NWChem code", orig.trace,
         original_class_glyphs(), orig.makespan);

  // The paper's qualitative readings of the figures:
  ptg::Trace t2 = v2.trace, t4 = v4.trace, to = orig.trace;
  t2.normalize();
  t4.normalize();
  to.normalize();
  std::printf("-- trace signatures (measured vs paper) --\n");
  std::printf("C7 idle fraction v2 vs v4 (7 cores): %.1f%% vs %.1f%% "
              "(paper: v2 starves workers while transfers drain)\n",
              100.0 * t2.idle_fraction(), 100.0 * t4.idle_fraction());
  std::printf("C8 original same-thread overlap    : %.2f%% (paper: "
              "communication is interleaved but never overlapped)\n",
              100.0 * to.comm_overlap_same_worker_fraction());
  std::printf("   PaRSEC v4 comm overlapped by compute on-node: %.1f%%\n",
              100.0 * t4.comm_overlap_fraction());

  // At machine saturation (15 cores/node) the missing priorities cost real
  // time — the quantitative form of the Fig. 10/11 comparison.
  auto run_at_15 = [&](const tce::VariantConfig& v) {
    GraphOptions gopts;
    gopts.variant = v;
    gopts.nodes = nodes;
    const auto g = build_graph(p.plan, gopts);
    SimOptions sopts;
    sopts.cores_per_node = 15;
    return simulate_ptg(g, sopts).makespan;
  };
  const double m2 = run_at_15(tce::VariantConfig::v2());
  const double m4 = run_at_15(tce::VariantConfig::v4());
  std::printf("C7 makespan at 15 cores/node       : v2 %.3fs vs v4 %.3fs "
              "(v2/v4 = %.2fx; paper: priorities are the single most "
              "important choice after GEMM parallelism)\n",
              m2, m4, m2 / m4);
  std::printf("\nNote: in our model the no-priority penalty manifests as "
              "scattered worker starvation through the run (visible as the "
              "ragged tail above) rather than one contiguous startup "
              "bubble; the cause — data transfers not ordered by what "
              "compute needs next — is the paper's.\n");
  return 0;
}
