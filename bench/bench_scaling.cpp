// Strong-scaling study (extension): the paper evaluates 32 nodes only, but
// its central argument is about scalability — the original code's global
// NXTVAL counter and unoverlapped communication must fall behind the
// task-based execution as the machine grows. This harness sweeps node
// counts at fixed total work (15 cores/node) for the original structure
// and PaRSEC v5, and reports the parallel efficiency of each.
//
// A second sweep covers the work-stealing extension (DESIGN.md §9): v5
// with static round-robin placement vs v5 plus the inter-node steal agent,
// on the imbalanced presets (skewed_tile / nested_imbalance). With
// --steal-smoke the harness runs only the 8-node skewed-tile comparison
// and exits nonzero unless stealing delivers >= 1.3x steady-state
// throughput — the acceptance gate wired into ctest (label perf-smoke).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/original_sim.h"
#include "sim/presets.h"
#include "sim/ptg_sim.h"

using namespace mp;
using namespace mp::sim;

namespace {

struct StealPoint {
  double t_static = 0.0;
  double t_steal = 0.0;
  uint64_t migrated = 0;
  uint64_t requests = 0;
};

StealPoint steal_compare(const tce::ChainPlan& plan, int nodes, int cores) {
  GraphOptions gopts;
  gopts.variant = tce::VariantConfig::v5();
  gopts.nodes = nodes;
  const auto g = build_graph(plan, gopts);

  SimOptions base;
  base.cores_per_node = cores;
  StealPoint pt;
  pt.t_static = simulate_ptg(g, base).makespan;

  SimOptions steal = base;
  steal.enable_stealing = true;
  const SimResult rs = simulate_ptg(g, steal);
  pt.t_steal = rs.makespan;
  pt.migrated = rs.tasks_migrated;
  pt.requests = rs.steal_requests;
  return pt;
}

// Fault-injection gate (DESIGN.md §10): kill one of 8 nodes mid-run and
// require the recovered makespan to stay under 2.5x the fault-free run.
// The dead node's whole partition re-executes on 7 survivors, so some
// slowdown is the price of recovery; 2.5x bounds it well under the "job
// restarts from scratch" alternative (>= 8x at this node count).
int run_fault_smoke(int cores) {
  const auto p = make_preset("skewed_tile");
  GraphOptions gopts;
  gopts.variant = tce::VariantConfig::v5();
  gopts.nodes = 8;
  const auto g = build_graph(p.plan, gopts);

  SimOptions base;
  base.cores_per_node = cores;
  const SimResult clean = simulate_ptg(g, base);

  SimOptions fault = base;
  fault.fail_node = 3;
  fault.fail_time_s = clean.makespan * 0.4;  // mid-run, work in flight
  const SimResult rec = simulate_ptg(g, fault);

  const double slowdown = rec.makespan / clean.makespan;
  std::printf("fault-smoke: skewed_tile @ 8 nodes x %d cores, node 3 dies "
              "at t=%.6f s\n",
              cores, fault.fail_time_s);
  std::printf("  fault-free makespan : %10.6f s\n", clean.makespan);
  std::printf("  with death+recovery : %10.6f s  (%llu recovered, %llu "
              "replays)\n",
              rec.makespan, static_cast<unsigned long long>(rec.tasks_recovered),
              static_cast<unsigned long long>(rec.lineage_replays));
  std::printf("  slowdown            : %9.2fx  (gate: < 2.50x)\n", slowdown);
  if (rec.tasks_recovered == 0) {
    std::fprintf(stderr, "fault-smoke FAILED: no tasks were recovered\n");
    return 1;
  }
  if (!(slowdown < 2.5)) {
    std::fprintf(stderr, "fault-smoke FAILED: %.2fx >= 2.50x slowdown\n",
                 slowdown);
    return 1;
  }
  std::printf("fault-smoke PASSED\n");
  return 0;
}

// Recovery-latency sweep (EXPERIMENTS.md): how the cost of one mid-run
// death scales with node count (fixed total work — the lost partition
// shrinks as 1/N) and with the detection window (heartbeat suspicion +
// confirmation, swept across the range the runtime's knobs span). Each
// row reports when survivors confirmed the death, how many tasks they
// adopted or replayed, and the makespan delta vs the fault-free run.
int run_fault_sweep(int cores) {
  const auto p = make_preset("skewed_tile");

  std::printf("== Recovery latency, skewed_tile, one death at 0.4 x clean "
              "makespan, %d cores/node ==\n\n",
              cores);
  std::printf("%6s %12s %12s %10s %9s %9s %12s %10s\n", "nodes", "detect(ms)",
              "clean(s)", "dead(s)", "recov", "replays", "recovered(s)",
              "slowdown");
  for (const int nodes : {8, 16, 32, 64}) {
    GraphOptions gopts;
    gopts.variant = tce::VariantConfig::v5();
    gopts.nodes = nodes;
    const auto g = build_graph(p.plan, gopts);

    SimOptions base;
    base.cores_per_node = cores;
    const SimResult clean = simulate_ptg(g, base);

    for (const double detect_ms : {0.5, 5.0, 50.0, 500.0}) {
      SimOptions fault = base;
      fault.fail_node = nodes / 2;
      fault.fail_time_s = clean.makespan * 0.4;
      fault.detect_delay_s = detect_ms * 1e-3;
      const SimResult rec = simulate_ptg(g, fault);
      std::printf("%6d %12.1f %12.6f %10.6f %9llu %9llu %12.6f %9.3fx\n",
                  nodes, detect_ms, clean.makespan, fault.fail_time_s,
                  static_cast<unsigned long long>(rec.tasks_recovered),
                  static_cast<unsigned long long>(rec.lineage_replays),
                  rec.makespan, rec.makespan / clean.makespan);
    }
  }
  std::printf("\nExpectation: recovery_started_at tracks death + detection "
              "window exactly; the makespan penalty is dominated by "
              "re-executing the dead node's partition, so it shrinks as "
              "1/nodes at fixed total work, and the detection window only "
              "matters once it is comparable to that re-execution time.\n");
  return 0;
}

int run_steal_smoke(int cores) {
  const auto p = make_preset("skewed_tile");
  const StealPoint pt = steal_compare(p.plan, 8, cores);
  const double gain = pt.t_static / pt.t_steal;
  std::printf("steal-smoke: skewed_tile @ 8 nodes x %d cores\n", cores);
  std::printf("  static round-robin : %10.6f s\n", pt.t_static);
  std::printf("  with work stealing : %10.6f s  (%llu migrated, %llu reqs)\n",
              pt.t_steal, static_cast<unsigned long long>(pt.migrated),
              static_cast<unsigned long long>(pt.requests));
  std::printf("  throughput gain    : %9.2fx  (gate: >= 1.30x)\n", gain);
  if (!(gain >= 1.3)) {
    std::fprintf(stderr,
                 "steal-smoke FAILED: %.2fx < 1.30x steady-state gain\n",
                 gain);
    return 1;
  }
  std::printf("steal-smoke PASSED\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--steal-smoke") == 0) {
      const int cores = argc > i + 1 ? std::atoi(argv[i + 1]) : 8;
      return run_steal_smoke(cores > 0 ? cores : 8);
    }
    if (std::strcmp(argv[i], "--fault-smoke") == 0) {
      const int cores = argc > i + 1 ? std::atoi(argv[i + 1]) : 8;
      return run_fault_smoke(cores > 0 ? cores : 8);
    }
    if (std::strcmp(argv[i], "--fault-sweep") == 0) {
      const int cores = argc > i + 1 ? std::atoi(argv[i + 1]) : 8;
      return run_fault_sweep(cores > 0 ? cores : 8);
    }
  }

  const int cores = argc > 1 ? std::atoi(argv[1]) : 15;
  const std::string preset = argc > 2 ? argv[2] : "beta_carotene_32";
  const auto p = make_preset(preset);

  std::printf("== Strong scaling at %d cores/node, %s ==\n\n", cores,
              preset.c_str());
  std::printf("%6s %14s %12s %14s %12s %10s\n", "nodes", "original(s)",
              "orig eff", "PaRSEC v5(s)", "v5 eff", "speedup");

  double orig_base = 0.0, v5_base = 0.0;
  int base_nodes = 0;
  for (const int nodes : {4, 8, 16, 32, 64, 128}) {
    OriginalSimOptions oo;
    oo.nodes = nodes;
    oo.cores_per_node = cores;
    const double t_orig = simulate_original(p.plan, oo).makespan;

    GraphOptions gopts;
    gopts.variant = tce::VariantConfig::v5();
    gopts.nodes = nodes;
    const auto g = build_graph(p.plan, gopts);
    SimOptions sopts;
    sopts.cores_per_node = cores;
    const double t_v5 = simulate_ptg(g, sopts).makespan;

    if (base_nodes == 0) {
      base_nodes = nodes;
      orig_base = t_orig;
      v5_base = t_v5;
    }
    const double scale = static_cast<double>(nodes) / base_nodes;
    std::printf("%6d %14.3f %11.1f%% %14.3f %11.1f%% %9.2fx\n", nodes,
                t_orig, 100.0 * orig_base / (t_orig * scale), t_v5,
                100.0 * v5_base / (t_v5 * scale), t_orig / t_v5);
  }

  // Work-stealing sweep: static v5 placement vs v5 + steal agent. On the
  // balanced beta-carotene workloads the two columns should track each
  // other (stealing must not hurt); on skewed_tile / nested_imbalance the
  // steal column is the point of the experiment.
  std::printf("\n== v5 static vs v5 + inter-node stealing ==\n\n");
  std::printf("%6s %14s %14s %10s %10s\n", "nodes", "static(s)", "steal(s)",
              "gain", "migrated");
  for (const int nodes : {4, 8, 16, 32}) {
    const StealPoint pt = steal_compare(p.plan, nodes, cores);
    std::printf("%6d %14.6f %14.6f %9.2fx %10llu\n", nodes, pt.t_static,
                pt.t_steal, pt.t_static / pt.t_steal,
                static_cast<unsigned long long>(pt.migrated));
  }

  std::printf("\nExpectation: the task-based execution holds its parallel "
              "efficiency further out than the original structure, so the "
              "PaRSEC-over-original speedup grows with scale — the paper's "
              "post-petascale argument. Stealing recovers the idle time "
              "static placement leaves on imbalanced chain distributions "
              "(run with preset skewed_tile or nested_imbalance).\n");
  return 0;
}
