// Strong-scaling study (extension): the paper evaluates 32 nodes only, but
// its central argument is about scalability — the original code's global
// NXTVAL counter and unoverlapped communication must fall behind the
// task-based execution as the machine grows. This harness sweeps node
// counts at fixed total work (15 cores/node) for the original structure
// and PaRSEC v5, and reports the parallel efficiency of each.
#include <cstdio>
#include <cstdlib>

#include "sim/original_sim.h"
#include "sim/presets.h"
#include "sim/ptg_sim.h"

using namespace mp;
using namespace mp::sim;

int main(int argc, char** argv) {
  const int cores = argc > 1 ? std::atoi(argv[1]) : 15;
  const std::string preset = argc > 2 ? argv[2] : "beta_carotene_32";
  const auto p = make_preset(preset);

  std::printf("== Strong scaling at %d cores/node, %s ==\n\n", cores,
              preset.c_str());
  std::printf("%6s %14s %12s %14s %12s %10s\n", "nodes", "original(s)",
              "orig eff", "PaRSEC v5(s)", "v5 eff", "speedup");

  double orig_base = 0.0, v5_base = 0.0;
  int base_nodes = 0;
  for (const int nodes : {4, 8, 16, 32, 64, 128}) {
    OriginalSimOptions oo;
    oo.nodes = nodes;
    oo.cores_per_node = cores;
    const double t_orig = simulate_original(p.plan, oo).makespan;

    GraphOptions gopts;
    gopts.variant = tce::VariantConfig::v5();
    gopts.nodes = nodes;
    const auto g = build_graph(p.plan, gopts);
    SimOptions sopts;
    sopts.cores_per_node = cores;
    const double t_v5 = simulate_ptg(g, sopts).makespan;

    if (base_nodes == 0) {
      base_nodes = nodes;
      orig_base = t_orig;
      v5_base = t_v5;
    }
    const double scale = static_cast<double>(nodes) / base_nodes;
    std::printf("%6d %14.3f %11.1f%% %14.3f %11.1f%% %9.2fx\n", nodes,
                t_orig, 100.0 * orig_base / (t_orig * scale), t_v5,
                100.0 * v5_base / (t_v5 * scale), t_orig / t_v5);
  }

  std::printf("\nExpectation: the task-based execution holds its parallel "
              "efficiency further out than the original structure, so the "
              "PaRSEC-over-original speedup grows with scale — the paper's "
              "post-petascale argument.\n");
  return 0;
}
