// Figure 9 reproduction: execution time of the icsd_t2_7 workload on 32
// nodes of the simulated cluster — the original TCE/NWChem execution versus
// the five PaRSEC variants — for 1, 3, 7, 11 and 15 cores per node.
//
// Prints the same series the paper plots, an ASCII rendition of the figure,
// and the derived headline metrics (claims C1-C6 of DESIGN.md) with the
// paper's values alongside.
//
// Usage: bench_fig9 [preset] [nodes]
//   preset defaults to beta_carotene_32, nodes to 32.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/original_sim.h"
#include "sim/presets.h"
#include "sim/ptg_sim.h"
#include "support/timing.h"

using namespace mp;
using namespace mp::sim;

int main(int argc, char** argv) {
  const std::string preset = argc > 1 ? argv[1] : "beta_carotene_32";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 32;
  const std::vector<int> core_counts{1, 3, 7, 11, 15};

  WallTimer timer;
  const auto p = make_preset(preset);
  std::printf("== Figure 9: CCSD icsd_t2_7() on %d simulated nodes, %s ==\n",
              nodes, p.description.c_str());
  std::printf("plan: %s\n\n", p.plan.stats().describe().c_str());

  const auto variants = tce::VariantConfig::all();
  // rows[cores] = {original, v1..v5}
  std::vector<std::vector<double>> rows;

  std::printf("%-12s %10s", "cores/node", "original");
  for (const auto& v : variants) std::printf(" %9s", v.name.c_str());
  std::printf("   (simulated seconds)\n");

  for (const int cores : core_counts) {
    std::vector<double> row;
    OriginalSimOptions oopts;
    oopts.nodes = nodes;
    oopts.cores_per_node = cores;
    row.push_back(simulate_original(p.plan, oopts).makespan);

    for (const auto& v : variants) {
      GraphOptions gopts;
      gopts.variant = v;
      gopts.nodes = nodes;
      const auto g = build_graph(p.plan, gopts);
      SimOptions sopts;
      sopts.cores_per_node = cores;
      row.push_back(simulate_ptg(g, sopts).makespan);
    }
    rows.push_back(row);

    std::printf("%-12d %10.3f", cores, row[0]);
    for (size_t i = 1; i < row.size(); ++i) std::printf(" %9.3f", row[i]);
    std::printf("\n");
  }

  // ASCII rendition of the figure: one bar row per (cores, series).
  std::printf("\n-- shape (each # ~ 4%% of the slowest time) --\n");
  double tmax = 0.0;
  for (const auto& r : rows)
    for (double x : r) tmax = std::max(tmax, x);
  const std::vector<std::string> labels{"orig", "v1", "v2", "v3", "v4", "v5"};
  for (size_t ci = 0; ci < core_counts.size(); ++ci) {
    std::printf("cores=%d\n", core_counts[ci]);
    for (size_t s = 0; s < labels.size(); ++s) {
      const int bars = static_cast<int>(rows[ci][s] / tmax * 25.0 + 0.5);
      std::printf("  %-5s |%-25.*s| %7.3fs\n", labels[s].c_str(), bars,
                  "#########################", rows[ci][s]);
    }
  }

  // Derived claims.
  auto col = [&](size_t s) {
    std::vector<double> out;
    for (const auto& r : rows) out.push_back(r[s]);
    return out;
  };
  const auto orig = col(0);
  size_t peak = 0;
  for (size_t i = 1; i < orig.size(); ++i) {
    if (orig[i] < orig[peak]) peak = i;
  }
  const double v5_15 = rows.back()[5];
  const double v1_15 = rows.back()[1];
  const double v2_15 = rows.back()[2];
  const double v3_15 = rows.back()[3];
  const double v4_15 = rows.back()[4];

  std::printf("\n-- headline metrics (measured vs paper) --\n");
  std::printf("C1 original speedup 1->3 cores/node : %5.2fx (paper 2.35x)\n",
              orig[0] / orig[1]);
  std::printf("C1 original peak                    : %d cores/node, %5.2fx"
              " (paper 7 cores, 2.69x)\n",
              core_counts[peak], orig[0] / orig[peak]);
  std::printf("C1 original at 15 vs peak           : %5.2fx slower"
              " (paper: slight degradation)\n",
              orig.back() / orig[peak]);
  std::printf("C3 PaRSEC(v5) beats original from   : ");
  for (size_t i = 0; i < core_counts.size(); ++i) {
    if (rows[i][5] < rows[i][0]) {
      std::printf("%d cores/node (paper: 3)\n", core_counts[i]);
      break;
    }
  }
  std::printf("C4 original best / v5 at 15 cores   : %5.2fx (paper ~2.1x)\n",
              orig[peak] / v5_15);
  std::printf("C5 slowest/fastest PaRSEC at 15     : %5.2fx (paper 1.73x)\n",
              v1_15 / v5_15);
  std::printf("C6 ordering at 15 cores             : v1=%.3f > v2=%.3f > "
              "v3=%.3f >= v4=%.3f >= v5=%.3f : %s\n",
              v1_15, v2_15, v3_15, v4_15, v5_15,
              (v1_15 > v2_15 && v2_15 > v3_15 && v3_15 >= v4_15 &&
               v4_15 >= v5_15)
                  ? "MATCHES paper"
                  : "MISMATCH");
  std::printf("\n(total harness wall time: %.1fs)\n", timer.seconds());
  return 0;
}
