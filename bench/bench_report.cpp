#include "bench_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace mp::bench {

double percentile(std::vector<double> samples, double pct) {
  if (samples.empty()) return std::nan("");
  std::sort(samples.begin(), samples.end());
  const double idx = pct / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

void BenchReport::set_schema(const std::string& schema) { schema_ = schema; }

void BenchReport::set_config(const std::string& key,
                             const std::string& value) {
  config_[key] = value;
}

void BenchReport::add(BenchCase c) { cases_.push_back(std::move(c)); }

bool BenchReport::validate(std::string* why) const {
  for (const BenchCase& c : cases_) {
    if (c.samples.empty()) {
      if (why) *why = "case '" + c.name + "' has no samples";
      return false;
    }
    for (double s : c.samples) {
      if (!std::isfinite(s)) {
        if (why) *why = "case '" + c.name + "' has a non-finite sample";
        return false;
      }
    }
    if (percentile(c.samples, 50.0) <= 0.0) {
      if (why) *why = "case '" + c.name + "' has non-positive throughput";
      return false;
    }
  }
  if (cases_.empty()) {
    if (why) *why = "report contains no cases";
    return false;
  }
  return true;
}

namespace {

std::string escape(const std::string& s) {
  std::string out;
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

void put_num(std::ostringstream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

}  // namespace

std::string BenchReport::to_json() const {
  std::ostringstream os;
  os << "{\n  \"schema\": \"" << escape(schema_) << "\",\n";
  auto sha = config_.find("git_sha");
  os << "  \"git_sha\": \""
     << escape(sha != config_.end() ? sha->second : "unknown") << "\",\n";
  os << "  \"config\": {";
  bool first = true;
  for (const auto& [k, v] : config_) {
    if (k == "git_sha") continue;
    os << (first ? "\n" : ",\n") << "    \"" << escape(k) << "\": \""
       << escape(v) << "\"";
    first = false;
  }
  os << "\n  },\n  \"cases\": [";
  first = true;
  for (const BenchCase& c : cases_) {
    os << (first ? "\n" : ",\n");
    first = false;
    const double med = percentile(c.samples, 50.0);
    os << "    {\"name\": \"" << escape(c.name) << "\", \"kind\": \""
       << escape(c.kind) << "\", \"metric\": \"" << escape(c.metric)
       << "\", \"median\": ";
    put_num(os, med);
    os << ", \"p10\": ";
    put_num(os, percentile(c.samples, 10.0));
    os << ", \"p90\": ";
    put_num(os, percentile(c.samples, 90.0));
    os << ", \"reps\": " << c.samples.size();
    os << ", \"ref_median\": ";
    put_num(os, c.ref_median);
    os << ", \"speedup\": ";
    put_num(os, c.ref_median > 0.0 ? med / c.ref_median : 0.0);
    os << ", \"params\": {";
    bool pfirst = true;
    for (const auto& [k, v] : c.params) {
      if (!pfirst) os << ", ";
      pfirst = false;
      os << "\"" << escape(k) << "\": " << v;
    }
    os << "}}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

bool BenchReport::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string doc = to_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace mp::bench
