// Hybrid-architecture study (the paper's stated motivation includes "a
// robust path to exploit hybrid computer architectures"): the simulator's
// accelerator model offloads GEMMs above a flop threshold to per-node
// devices. This harness compares CPU-only nodes against nodes with 1 and 2
// accelerators for the v5 variant, and shows where the workload turns
// communication-bound (adding devices stops helping).
#include <cstdio>
#include <cstdlib>

#include "sim/presets.h"
#include "sim/ptg_sim.h"

using namespace mp;
using namespace mp::sim;

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 32;
  const auto p = make_preset("beta_carotene_32");

  std::printf("== Hybrid execution: PaRSEC v5 with per-node accelerators "
              "(%d nodes) ==\n\n",
              nodes);
  std::printf("%-12s %12s %12s %12s %14s\n", "cores/node", "CPU only",
              "+1 accel", "+2 accels", "offloaded");

  GraphOptions gopts;
  gopts.variant = tce::VariantConfig::v5();
  gopts.nodes = nodes;
  const auto g = build_graph(p.plan, gopts);

  for (const int cores : {3, 7, 15}) {
    double times[3] = {0, 0, 0};
    uint64_t offloaded = 0;
    for (int na = 0; na <= 2; ++na) {
      SimOptions sopts;
      sopts.cores_per_node = cores;
      sopts.cost.accels_per_node = na;
      const auto r = simulate_ptg(g, sopts);
      times[na] = r.makespan;
      if (na == 1) offloaded = r.offloaded_gemms;
    }
    std::printf("%-12d %12.3f %12.3f %12.3f %11llu/%zu\n", cores, times[0],
                times[1], times[2],
                static_cast<unsigned long long>(offloaded),
                p.plan.stats().num_gemms);
  }

  std::printf("\nExpectation: one device absorbs most of the GEMM flops "
              "(the runtime feeds it exactly as it feeds cores — no code "
              "change); the second device helps until the NIC becomes the "
              "bottleneck.\n");
  return 0;
}
