// Kernel microbenchmarks (google-benchmark): the measured numbers feed the
// simulator's CostModel calibration — per-core GEMM flop rate, sort_4
// streaming bandwidth, GA one-sided operation costs, scheduler push/pop
// overhead, and activation-message serialization cost.
#include <benchmark/benchmark.h>

#include <vector>

#include "ga/global_array.h"
#include "ga/hash_block.h"
#include "linalg/gemm.h"
#include "linalg/sort4.h"
#include "ptg/scheduler.h"
#include "support/rng.h"
#include "vc/cluster.h"
#include "vc/message.h"

namespace {

using namespace mp;

void BM_Dgemm(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> a(n * n), b(n * n), c(n * n, 0.0);
  for (auto& x : a) x = rng.uniform(-1.0, 1.0);
  for (auto& x : b) x = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    linalg::dgemm('N', 'T', n, n, n, 1.0, a.data(), n, b.data(), n, 1.0,
                  c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      linalg::gemm_flops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Dgemm)->Arg(64)->Arg(128)->Arg(256)->Arg(400);

void BM_Sort4(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const std::array<size_t, 4> dims{d, d, d, d};
  std::vector<double> in(d * d * d * d, 1.0), out(in.size());
  for (auto _ : state) {
    linalg::sort_4(in.data(), out.data(), dims, {2, 3, 0, 1}, -1.0);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GB/s"] = benchmark::Counter(
      2.0 * static_cast<double>(in.size()) * 8.0 *
          static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Sort4)->Arg(8)->Arg(16)->Arg(24);

void BM_GaGet(benchmark::State& state) {
  vc::Cluster cluster(2);
  const int64_t n = state.range(0);
  ga::GlobalArray arr(&cluster, n);
  std::vector<double> buf(static_cast<size_t>(n));
  for (auto _ : state) {
    arr.get(0, n, buf.data());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * n * 8);
}
BENCHMARK(BM_GaGet)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_GaAcc(benchmark::State& state) {
  vc::Cluster cluster(2);
  const int64_t n = state.range(0);
  ga::GlobalArray arr(&cluster, n);
  std::vector<double> buf(static_cast<size_t>(n), 1.0);
  for (auto _ : state) {
    arr.acc(0, n, buf.data(), 1.0);
  }
  state.SetBytesProcessed(state.iterations() * n * 8);
}
BENCHMARK(BM_GaAcc)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_NxtVal(benchmark::State& state) {
  vc::Cluster cluster(1);
  ga::NxtVal nv(&cluster);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nv.next());
  }
}
BENCHMARK(BM_NxtVal);

void BM_SchedulerPushPop(benchmark::State& state) {
  const auto policy = static_cast<ptg::SchedPolicy>(state.range(0));
  auto sched = ptg::Scheduler::create(policy, 4);
  uint64_t seq = 0;
  for (auto _ : state) {
    ptg::ReadyTask t;
    t.priority = static_cast<double>(seq % 97);
    t.seq = seq++;
    t.key = ptg::TaskKey{0, ptg::params_of(static_cast<int32_t>(seq))};
    sched->push(std::move(t), 0);
    ptg::ReadyTask out;
    benchmark::DoNotOptimize(sched->try_pop(out, 0));
  }
}
BENCHMARK(BM_SchedulerPushPop)
    ->Arg(static_cast<int>(ptg::SchedPolicy::kPriority))
    ->Arg(static_cast<int>(ptg::SchedPolicy::kFifo))
    ->Arg(static_cast<int>(ptg::SchedPolicy::kStealing));

void BM_ActivationSerialize(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> data(n, 1.5);
  for (auto _ : state) {
    vc::WireWriter w;
    w.put<int16_t>(3);
    for (int i = 0; i < 3; ++i) w.put<int32_t>(i);
    w.put<int8_t>(0);
    w.put_doubles(data.data(), data.size());
    auto payload = w.take();
    benchmark::DoNotOptimize(payload.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(n) * 8);
}
BENCHMARK(BM_ActivationSerialize)->Arg(1024)->Arg(65536);

void BM_HashBlockLookup(benchmark::State& state) {
  ga::HashBlockIndex idx;
  for (int a = 0; a < 20; ++a)
    for (int b = 0; b < 20; ++b) idx.add(ga::HashBlockIndex::key4(a, b, 0, 0), 64);
  uint64_t i = 0;
  for (auto _ : state) {
    const auto key = ga::HashBlockIndex::key4(static_cast<int>(i % 20),
                                              static_cast<int>((i / 20) % 20),
                                              0, 0);
    benchmark::DoNotOptimize(idx.find(key));
    ++i;
  }
}
BENCHMARK(BM_HashBlockLookup);

}  // namespace

BENCHMARK_MAIN();
