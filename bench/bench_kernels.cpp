// Kernel benchmark baseline: sweeps the DGEMM and SORT_4 hot kernels over
// tile sizes, times the scheduler queues, checks every optimized result
// against the naive reference, and writes BENCH_kernels.json (schema
// "mp-bench-kernels-v1", see bench_report.h) for commit-over-commit
// tracking.
//
// Usage: bench_kernels [--quick] [--out <path>]
//   --quick   fewer sizes and repetitions (the ctest perf-smoke target)
//   --out     output JSON path (default: BENCH_kernels.json in the cwd)
//
// Exit status is nonzero when a kernel disagrees with its reference or the
// report fails validation (NaN / zero throughput), so the perf-smoke test
// catches broken kernels and broken timers alike.
#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_report.h"
#include "linalg/gemm.h"
#include "linalg/sort4.h"
#include "ptg/scheduler.h"
#include "support/timing.h"

using namespace mp;

namespace {

#ifndef MP_GIT_SHA
#define MP_GIT_SHA "unknown"
#endif
#ifndef MP_NATIVE_BUILD
#define MP_NATIVE_BUILD "OFF"
#endif
#ifndef MP_BUILD_TYPE
#define MP_BUILD_TYPE "unknown"
#endif

const char* isa_name() {
#if defined(__AVX512F__)
  return "avx512";
#elif defined(__AVX2__)
  return "avx2";
#elif defined(__AVX__)
  return "avx";
#else
  return "sse2";
#endif
}

std::vector<double> random_vec(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (double& x : v) x = dist(rng);
  return v;
}

/// Column-major naive reference GEMM, identical semantics to linalg::dgemm.
void naive_dgemm(char transa, char transb, size_t m, size_t n, size_t k,
                 double alpha, const double* a, size_t lda, const double* b,
                 size_t ldb, double beta, double* c, size_t ldc) {
  const bool ta = transa == 'T' || transa == 't';
  const bool tb = transb == 'T' || transb == 't';
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (size_t p = 0; p < k; ++p) {
        const double av = ta ? a[i * lda + p] : a[p * lda + i];
        const double bv = tb ? b[p * ldb + j] : b[j * ldb + p];
        acc += av * bv;
      }
      c[j * ldc + i] =
          alpha * acc + (beta == 0.0 ? 0.0 : beta * c[j * ldc + i]);
    }
  }
}

/// Times `fn`: picks an iteration count so one sample lasts at least
/// `min_sample_s`, then returns `reps` samples of work_per_call / seconds.
template <typename Fn>
std::vector<double> sample_throughput(Fn&& fn, double work_per_call, int reps,
                                      double min_sample_s) {
  fn();  // warm-up (page-in, workspace-pool allocation)
  int iters = 1;
  for (;;) {
    WallTimer t;
    for (int i = 0; i < iters; ++i) fn();
    const double s = t.seconds();
    if (s >= min_sample_s || iters >= (1 << 24)) break;
    iters = s <= 0.0 ? iters * 16
                     : static_cast<int>(static_cast<double>(iters) *
                                        (1.2 * min_sample_s / s)) +
                           1;
  }
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    for (int i = 0; i < iters; ++i) fn();
    samples.push_back(work_per_call * iters / t.seconds());
  }
  return samples;
}

bool check_close(const std::vector<double>& got,
                 const std::vector<double>& want, double tol,
                 const char* what) {
  double m = 0.0;
  for (size_t i = 0; i < got.size(); ++i) {
    m = std::max(m, std::fabs(got[i] - want[i]));
  }
  if (m > tol) {
    std::fprintf(stderr, "FAIL: %s disagrees with reference: max|diff|=%g\n",
                 what, m);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  const int reps = quick ? 3 : 7;
  const double min_sample = quick ? 2e-3 : 1e-2;
  bool ok = true;

  bench::BenchReport report;
  report.set_config("git_sha", MP_GIT_SHA);
  report.set_config("mp_native", MP_NATIVE_BUILD);
  report.set_config("build_type", MP_BUILD_TYPE);
  report.set_config("isa", isa_name());
  report.set_config("compiler", __VERSION__);
  report.set_config("mode", quick ? "quick" : "full");

  // ---- DGEMM sweep ---------------------------------------------------------
  const std::vector<size_t> gemm_sizes =
      quick ? std::vector<size_t>{32, 64, 128}
            : std::vector<size_t>{32, 64, 96, 128, 192, 256};
  const struct {
    char ta, tb;
  } combos[] = {{'N', 'N'}, {'T', 'N'}};
  std::printf("%-18s %10s %10s %10s %8s\n", "case", "median", "p10", "p90",
              "vs-ref");
  for (size_t n : gemm_sizes) {
    const auto a = random_vec(n * n, 1);
    const auto b = random_vec(n * n, 2);
    std::vector<double> c(n * n), cref(n * n);
    const double flops = 2.0 * static_cast<double>(n) * n * n;
    for (const auto& tt : combos) {
      linalg::dgemm(tt.ta, tt.tb, n, n, n, 1.0, a.data(), n, b.data(), n, 0.0,
                    c.data(), n);
      naive_dgemm(tt.ta, tt.tb, n, n, n, 1.0, a.data(), n, b.data(), n, 0.0,
                  cref.data(), n);
      ok &= check_close(c, cref, 1e-11 * static_cast<double>(n), "dgemm");

      bench::BenchCase bc;
      bc.name = "dgemm_" + std::to_string(n) + "_" + tt.ta + tt.tb;
      bc.kind = "dgemm";
      bc.metric = "gflops";
      bc.params = {{"m", static_cast<long>(n)},
                   {"n", static_cast<long>(n)},
                   {"k", static_cast<long>(n)}};
      bc.samples = sample_throughput(
          [&] {
            linalg::dgemm(tt.ta, tt.tb, n, n, n, 1.0, a.data(), n, b.data(),
                          n, 0.0, c.data(), n);
          },
          flops * 1e-9, reps, min_sample);
      const auto ref = sample_throughput(
          [&] {
            naive_dgemm(tt.ta, tt.tb, n, n, n, 1.0, a.data(), n, b.data(), n,
                        0.0, cref.data(), n);
          },
          flops * 1e-9, std::min(reps, 3), min_sample);
      bc.ref_median = bench::percentile(ref, 50.0);
      std::printf("%-18s %8.2f G %8.2f G %8.2f G %7.2fx\n", bc.name.c_str(),
                  bench::percentile(bc.samples, 50.0),
                  bench::percentile(bc.samples, 10.0),
                  bench::percentile(bc.samples, 90.0),
                  bench::percentile(bc.samples, 50.0) / bc.ref_median);
      report.add(std::move(bc));
    }
  }

  // ---- SORT_4 sweep --------------------------------------------------------
  const std::vector<size_t> sort_dims =
      quick ? std::vector<size_t>{16} : std::vector<size_t>{16, 24};
  const struct {
    const char* name;
    std::array<int, 4> perm;
  } perms[] = {
      {"id", {0, 1, 2, 3}},   {"rot1", {1, 2, 3, 0}}, {"rot2", {2, 3, 0, 1}},
      {"rot3", {3, 0, 1, 2}}, {"generic", {1, 0, 3, 2}},
  };
  for (size_t d : sort_dims) {
    const std::array<size_t, 4> dims{d, d, d, d};
    const size_t elems = d * d * d * d;
    const auto in = random_vec(elems, 3);
    std::vector<double> out(elems), outref(elems);
    const double bytes = 16.0 * static_cast<double>(elems);  // rd + wr
    for (const auto& pc : perms) {
      linalg::sort_4(in.data(), out.data(), dims, pc.perm, 0.5);
      linalg::sort_4_reference(in.data(), outref.data(), dims, pc.perm, 0.5);
      ok &= check_close(out, outref, 0.0, "sort_4");  // bit-for-bit

      bench::BenchCase bc;
      bc.name = std::string("sort4_") + std::to_string(d) + "_" + pc.name;
      bc.kind = "sort4";
      bc.metric = "gbytes";
      bc.params = {{"dim", static_cast<long>(d)},
                   {"fast_path", linalg::sort4_is_fast_path(pc.perm)}};
      bc.samples = sample_throughput(
          [&] { linalg::sort_4(in.data(), out.data(), dims, pc.perm, 0.5); },
          bytes * 1e-9, reps, min_sample);
      const auto ref = sample_throughput(
          [&] {
            linalg::sort_4_reference(in.data(), outref.data(), dims, pc.perm,
                                     0.5);
          },
          bytes * 1e-9, std::min(reps, 3), min_sample);
      bc.ref_median = bench::percentile(ref, 50.0);
      std::printf("%-18s %8.2f GB %7.2f GB %7.2f GB %7.2fx\n",
                  bc.name.c_str(), bench::percentile(bc.samples, 50.0),
                  bench::percentile(bc.samples, 10.0),
                  bench::percentile(bc.samples, 90.0),
                  bench::percentile(bc.samples, 50.0) / bc.ref_median);
      report.add(std::move(bc));
    }
  }

  // ---- scheduler push/pop --------------------------------------------------
  for (auto policy :
       {ptg::SchedPolicy::kPriority, ptg::SchedPolicy::kStealing}) {
    auto sched = ptg::Scheduler::create(policy, 2);
    constexpr int kBurst = 256;
    bench::BenchCase bc;
    bc.name = std::string("sched_") + ptg::to_string(policy);
    bc.kind = "sched";
    bc.metric = "mops";
    bc.params = {{"burst", kBurst}};
    bc.samples = sample_throughput(
        [&] {
          ptg::ReadyTask t;
          for (int i = 0; i < kBurst; ++i) {
            t.priority = i & 7;
            t.seq = static_cast<uint64_t>(i);
            sched->push(t, 0);
          }
          ptg::ReadyTask got;
          while (sched->try_pop(got, 0)) {
          }
        },
        2.0 * kBurst * 1e-6, reps, min_sample);
    std::printf("%-18s %8.2f M %8.2f M %8.2f M %8s\n", bc.name.c_str(),
                bench::percentile(bc.samples, 50.0),
                bench::percentile(bc.samples, 10.0),
                bench::percentile(bc.samples, 90.0), "-");
    report.add(std::move(bc));
  }

  std::string why;
  if (!report.validate(&why)) {
    std::fprintf(stderr, "FAIL: report validation: %s\n", why.c_str());
    ok = false;
  }
  if (!report.write(out_path)) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
    ok = false;
  }
  std::printf("\nwrote %s (git_sha=%s isa=%s native=%s)\n", out_path.c_str(),
              MP_GIT_SHA, isa_name(), MP_NATIVE_BUILD);
  return ok ? 0 : 1;
}
