// Ablation TAB-B: chain segmentation height (Section IV-A). The paper
// evaluates the two extremes — height 1 (fully parallel GEMMs + reduction,
// v2..v5) and the whole chain (v1) — and notes the height "can vary from
// one to the height of the original chain". This harness sweeps the
// intermediate heights the paper left unexplored.
#include <cstdio>
#include <cstdlib>

#include "sim/presets.h"
#include "sim/ptg_sim.h"

using namespace mp;
using namespace mp::sim;

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 32;
  const auto p = make_preset("beta_carotene_32");
  const auto st = p.plan.stats();

  std::printf("== Ablation: chain segment height (v5 sort/write, %d nodes) "
              "==\n",
              nodes);
  std::printf("chain lengths: min %zu mean %.1f max %zu\n\n",
              st.min_chain_len, st.mean_chain_len, st.max_chain_len);
  std::printf("%-18s", "segment height");
  const int core_counts[] = {7, 15};
  for (const int c : core_counts) std::printf(" %11s%d", "cores=", c);
  std::printf("\n");

  for (const int h : {1, 2, 4, 8, 16, 32, 0}) {  // 0 = whole chain
    GraphOptions gopts;
    gopts.variant = tce::VariantConfig::v5();
    if (h == 0) {
      gopts.variant.parallel_gemms = false;  // whole-chain (v1-style GEMMs)
    } else {
      gopts.segment_height = h;
    }
    gopts.nodes = nodes;
    const auto g = build_graph(p.plan, gopts);

    char label[32];
    if (h == 0) {
      std::snprintf(label, sizeof label, "whole chain (v1)");
    } else {
      std::snprintf(label, sizeof label, "%d%s", h,
                    h == 1 ? " (paper v5)" : "");
    }
    std::printf("%-18s", label);
    for (const int c : core_counts) {
      SimOptions sopts;
      sopts.cores_per_node = c;
      std::printf(" %12.3f", simulate_ptg(g, sopts).makespan);
    }
    std::printf("\n");
  }
  std::printf("\nExpectation: height 1 maximizes parallelism (paper's "
              "winning choice); tall segments trade parallelism for "
              "locality and approach v1.\n");
  return 0;
}
