// Cold vs steady-state submission overhead of the template-cached,
// persistent-runtime execution path (DESIGN.md §11), schema
// "mp-bench-resubmit-v1" -> BENCH_resubmit.json.
//
// The CCSD driver resubmits the same contraction dozens of times; the cold
// path pays, per iteration, the full non-compute overhead: inspection
// (inspect_t2_7), graph materialization (build_ptg, once per rank), and
// worker/comm thread spin-up and teardown. The persistent path pays it
// once, then each steady-state iteration is a StoreList re-bind plus a
// park/wake handshake. This benchmark times both at 8 simulated ranks:
//
//   inspect_ms        one inspection pass at the workload's tile-space
//                     size (the cold path pays this per call)
//   build_x8_ms       build_ptg on all 8 ranks at that size (ditto)
//   cold_overhead_ms  end-to-end one-shot execution of a near-empty plan:
//                     runtime setup + thread spin-up + termination + join,
//                     with negligible compute in the middle
//   steady_overhead_ms  the same near-empty plan submitted through a
//                     warmed PtgSession: re-bind + wake + run + park.
//                     The near-empty pair isolates the thread-lifecycle
//                     component; inspect/build are sized to the real
//                     workload because their cost scales with the graph.
//   cold_iteration_ms / steady_iteration_ms  full t2_7 iterations on a
//                     physically-sized tile space (informational)
//
// --resubmit-smoke gates the acceptance ratio (the amortization claim):
// the steady-state per-submission non-compute overhead must be >= 10x
// lower than the cold first iteration (inspect + build + run with thread
// spin-up) at the workload size. The overhead-component ratio
// (inspect + build_x8 + cold_overhead) / steady_overhead is also printed.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.h"
#include "ga/global_array.h"
#include "support/rng.h"
#include "tce/block_tensor.h"
#include "tce/inspector.h"
#include "tce/ptg_exec.h"
#include "tce/ptg_session.h"
#include "tce/template_cache.h"
#include "tce/tiles.h"
#include "vc/cluster.h"

namespace {

using namespace mp;
using Clock = std::chrono::steady_clock;

constexpr int kRanks = 8;
constexpr int kWorkers = 2;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// One t2_7 problem instance: tile space, shapes, plan, cluster, GAs.
struct Problem {
  explicit Problem(const tce::TileSpaceSpec& spec)
      : space(spec),
        v_shape(space,
                std::array<tce::RangeKind, 4>{
                    tce::RangeKind::kVirt, tce::RangeKind::kVirt,
                    tce::RangeKind::kVirt, tce::RangeKind::kVirt}),
        t_shape(space,
                std::array<tce::RangeKind, 4>{
                    tce::RangeKind::kVirt, tce::RangeKind::kVirt,
                    tce::RangeKind::kOcc, tce::RangeKind::kOcc}),
        r_shape(space,
                std::array<tce::RangeKind, 4>{
                    tce::RangeKind::kVirt, tce::RangeKind::kVirt,
                    tce::RangeKind::kOcc, tce::RangeKind::kOcc},
                true, true),
        plan(tce::inspect_t2_7(space, {&v_shape, &t_shape, &r_shape})),
        cluster(kRanks),
        v_ga(&cluster, v_shape.ga_size()),
        t_ga(&cluster, t_shape.ga_size()),
        r_ga(&cluster, r_shape.ga_size()) {
    Rng rng(17);
    fill_random(v_ga, rng);
    fill_random(t_ga, rng);
    storage.v = {&v_shape, &v_ga};
    storage.t = {&t_shape, &t_ga};
    storage.r = {&r_shape, &r_ga};
  }

  static void fill_random(ga::GlobalArray& g, Rng& rng) {
    std::vector<double> data(static_cast<size_t>(g.size()));
    for (auto& x : data) x = rng.uniform(-1.0, 1.0);
    g.put(0, g.size(), data.data());
  }

  tce::PtgExecOptions exec_options() const {
    tce::PtgExecOptions opts;
    opts.variant = tce::VariantConfig::v5();
    opts.workers_per_rank = kWorkers;
    return opts;
  }

  /// The cold path exactly as the pre-cache executor runs it: SPMD region
  /// spawned per call, build_ptg and thread spin-up on every rank.
  void run_cold() {
    r_ga.zero();
    cluster.run([&](vc::RankCtx& rctx) {
      (void)tce::execute_ptg(rctx, plan, storage, exec_options());
    });
  }

  tce::TileSpace space;
  tce::BlockTensor4 v_shape, t_shape, r_shape;
  tce::ChainPlan plan;
  vc::Cluster cluster;
  ga::GlobalArray v_ga, t_ga, r_ga;
  tce::T2_7Storage storage;
};

tce::TileSpaceSpec tiny_spec() {
  // A near-empty graph: the wall time of a whole submission is almost
  // entirely non-compute overhead, which is the quantity under test.
  tce::TileSpaceSpec s;
  s.n_occ_alpha = 1;
  s.n_occ_beta = 1;
  s.n_virt_alpha = 2;
  s.n_virt_beta = 2;
  s.tile_size = 2;
  return s;
}

tce::TileSpaceSpec full_spec() {
  // The test suite's physical t2_7 size: enough chains that all 8 ranks
  // hold work, so the full-iteration numbers include real compute.
  tce::TileSpaceSpec s;
  s.n_occ_alpha = 3;
  s.n_occ_beta = 3;
  s.n_virt_alpha = 5;
  s.n_virt_beta = 5;
  s.tile_size = 2;
  return s;
}

std::shared_ptr<tce::PtgTemplate> build_template(tce::TemplateCache& cache,
                                                 Problem& p) {
  tce::TemplateKey key;
  key.subroutine = "t2_7";
  key.tile_fingerprint = tce::fingerprint_tile_space(p.space.spec());
  key.variant = tce::variant_signature(tce::VariantConfig::v5());
  key.nranks = kRanks;
  return cache.get_or_build(key, p.plan, p.storage.stores(),
                            tce::VariantConfig::v5());
}

struct Timings {
  std::vector<double> inspect_ms, build_x8_ms;
  std::vector<double> cold_overhead_ms, steady_overhead_ms;
  std::vector<double> cold_iteration_ms, steady_iteration_ms;
};

Timings measure(int cold_reps, int steady_reps) {
  Timings t;

  // -- inspection + graph build at the workload's size --
  Problem full(full_spec());
  for (int i = 0; i < cold_reps; ++i) {
    auto t0 = Clock::now();
    auto plan = tce::inspect_t2_7(full.space,
                                  {&full.v_shape, &full.t_shape,
                                   &full.r_shape});
    t.inspect_ms.push_back(ms_since(t0));
    t0 = Clock::now();
    for (int r = 0; r < kRanks; ++r) {
      auto build = tce::build_ptg(plan, full.storage.stores(),
                                  tce::VariantConfig::v5(), kRanks);
      (void)build;
    }
    t.build_x8_ms.push_back(ms_since(t0));
  }

  // -- thread-lifecycle overhead on the near-empty graph --
  Problem tiny(tiny_spec());
  for (int i = 0; i < cold_reps; ++i) {
    const auto t0 = Clock::now();
    tiny.run_cold();
    t.cold_overhead_ms.push_back(ms_since(t0));
  }
  {
    tce::TemplateCache cache;
    auto tpl = build_template(cache, tiny);
    tce::PtgSession session(tiny.cluster, tpl, tiny.exec_options());
    (void)session.submit(tiny.storage.stores());  // warm-up: first arm
    for (int i = 0; i < steady_reps; ++i) {
      tiny.r_ga.zero();
      const auto t0 = Clock::now();
      (void)session.submit(tiny.storage.stores());
      t.steady_overhead_ms.push_back(ms_since(t0));
    }
  }

  // -- full iterations on the physical size (informational) --
  for (int i = 0; i < cold_reps; ++i) {
    const auto t0 = Clock::now();
    auto plan = tce::inspect_t2_7(full.space,
                                  {&full.v_shape, &full.t_shape,
                                   &full.r_shape});
    (void)plan;
    full.run_cold();
    t.cold_iteration_ms.push_back(ms_since(t0));
  }
  {
    tce::TemplateCache cache;
    auto tpl = build_template(cache, full);
    tce::PtgSession session(full.cluster, tpl, full.exec_options());
    (void)session.submit(full.storage.stores());
    for (int i = 0; i < steady_reps; ++i) {
      full.r_ga.zero();
      const auto t0 = Clock::now();
      (void)session.submit(full.storage.stores());
      t.steady_iteration_ms.push_back(ms_since(t0));
    }
  }
  return t;
}

mp::bench::BenchCase make_case(const std::string& name,
                               std::vector<double> samples,
                               double ref_median = 0.0) {
  mp::bench::BenchCase c;
  c.name = name;
  c.kind = "resubmit";
  c.metric = "ms";
  c.samples = std::move(samples);
  c.ref_median = ref_median;
  c.params = {{"nranks", kRanks}, {"workers_per_rank", kWorkers}};
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_resubmit.json";
  bool quick = false, smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--resubmit-smoke") == 0) {
      smoke = true;
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out FILE] [--quick] [--resubmit-smoke]\n",
                   argv[0]);
      return 2;
    }
  }

  const Timings t = measure(quick ? 3 : 7, quick ? 7 : 15);

  const double inspect = mp::bench::percentile(t.inspect_ms, 50.0);
  const double build = mp::bench::percentile(t.build_x8_ms, 50.0);
  const double cold_ovh = mp::bench::percentile(t.cold_overhead_ms, 50.0);
  const double steady_ovh =
      mp::bench::percentile(t.steady_overhead_ms, 50.0);
  const double cold_total = inspect + build + cold_ovh;
  const double overhead_ratio =
      steady_ovh > 0.0 ? cold_total / steady_ovh : 0.0;
  const double cold_iter = mp::bench::percentile(t.cold_iteration_ms, 50.0);
  // The acceptance ratio: what one steady-state submission costs in
  // non-compute overhead vs what the cold first iteration cost.
  const double ratio = steady_ovh > 0.0 ? cold_iter / steady_ovh : 0.0;

  mp::bench::BenchReport report;
  report.set_schema("mp-bench-resubmit-v1");
#ifdef MP_GIT_SHA
  report.set_config("git_sha", MP_GIT_SHA);
#endif
#ifdef MP_BUILD_TYPE
  report.set_config("build_type", MP_BUILD_TYPE);
#endif
  report.set_config("mode", quick ? "quick" : "full");
  report.add(make_case("inspect", t.inspect_ms));
  report.add(make_case("build_ptg_x8", t.build_x8_ms));
  report.add(make_case("cold_overhead", t.cold_overhead_ms));
  // ref_median = the cold total it replaces, so "speedup" < 1 here means
  // the steady path is cheaper by 1/speedup.
  report.add(make_case("steady_overhead", t.steady_overhead_ms, cold_total));
  report.add(
      make_case("cold_iteration_full", t.cold_iteration_ms));
  report.add(make_case("steady_iteration_full", t.steady_iteration_ms,
                       mp::bench::percentile(t.cold_iteration_ms, 50.0)));

  std::string why;
  if (!report.validate(&why)) {
    std::fprintf(stderr, "bench_resubmit: invalid report: %s\n",
                 why.c_str());
    return 1;
  }
  if (!report.write(out)) {
    std::fprintf(stderr, "bench_resubmit: cannot write %s\n", out.c_str());
    return 1;
  }

  std::printf(
      "bench_resubmit @ %d ranks: cold overhead = %.3f ms "
      "(inspect %.3f + build_x8 %.3f + spin-up/run %.3f), "
      "steady overhead = %.3f ms (%.1fx)\n",
      kRanks, cold_total, inspect, build, cold_ovh, steady_ovh,
      overhead_ratio);
  std::printf(
      "full t2_7 iteration: cold %.3f ms, steady %.3f ms; "
      "steady overhead vs cold first iteration = %.1fx\n",
      cold_iter, mp::bench::percentile(t.steady_iteration_ms, 50.0), ratio);

  if (smoke && ratio < 10.0) {
    std::fprintf(stderr,
                 "resubmit-smoke FAILED: steady-state non-compute overhead "
                 "must be >= 10x lower than the cold first iteration "
                 "(got %.1fx)\n",
                 ratio);
    return 1;
  }
  return 0;
}
