// Termination & shutdown stress suite (ctest label: stress).
//
// Exercises the comm thread, the stealing scheduler and the deposit/
// activation path concurrently while the fabric injects faults — dropped,
// duplicated and reordered messages — and verifies that the runtime never
// hangs: it either completes with the correct result or unwinds with a
// clean exception (the watchdog's StateError at worst). Designed to run
// under -DMP_SANITIZE=thread and =address.
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <string>
#include <vector>

#include "ptg/context.h"
#include "support/rng.h"
#include "vc/cluster.h"

namespace mp::ptg {
namespace {

using std::chrono::seconds;
using std::chrono::steady_clock;

/// A reproducible random layered DAG (same shape as test_ptg_stress, kept
/// local so this suite stays self-contained).
struct StressDag {
  int layers, width;
  std::vector<std::vector<std::vector<int>>> parents;
  std::vector<std::vector<std::vector<std::pair<int, int>>>> children;

  static StressDag make(int layers, int width, uint64_t seed) {
    StressDag d;
    d.layers = layers;
    d.width = width;
    Rng rng(seed);
    d.parents.assign(static_cast<size_t>(layers),
                     std::vector<std::vector<int>>(
                         static_cast<size_t>(width)));
    d.children.assign(
        static_cast<size_t>(layers),
        std::vector<std::vector<std::pair<int, int>>>(
            static_cast<size_t>(width)));
    for (int l = 1; l < layers; ++l) {
      for (int i = 0; i < width; ++i) {
        const int nparents = 1 + static_cast<int>(rng.next_below(3));
        for (int p = 0; p < nparents; ++p) {
          const int parent =
              static_cast<int>(rng.next_below(static_cast<uint64_t>(width)));
          auto& plist =
              d.parents[static_cast<size_t>(l)][static_cast<size_t>(i)];
          bool dup = false;
          for (int existing : plist) dup |= (existing == parent);
          if (dup) continue;
          const int slot = static_cast<int>(plist.size());
          plist.push_back(parent);
          d.children[static_cast<size_t>(l - 1)][static_cast<size_t>(parent)]
              .emplace_back(i, slot);
        }
      }
    }
    return d;
  }

  static double combine(int l, int i, double input_sum) {
    return input_sum * 0.5 + static_cast<double>((l * 131 + i * 17) % 97) +
           1.0;
  }

  std::vector<std::vector<double>> evaluate() const {
    std::vector<std::vector<double>> val(
        static_cast<size_t>(layers),
        std::vector<double>(static_cast<size_t>(width), 0.0));
    for (int l = 0; l < layers; ++l) {
      for (int i = 0; i < width; ++i) {
        double s = 0.0;
        for (int p : parents[static_cast<size_t>(l)][static_cast<size_t>(i)]) {
          s += val[static_cast<size_t>(l - 1)][static_cast<size_t>(p)];
        }
        val[static_cast<size_t>(l)][static_cast<size_t>(i)] = combine(l, i, s);
      }
    }
    return val;
  }
};

/// Build the Taskpool for `dag` inside an SPMD region and run it. Returns
/// the final-layer values via `got`.
void run_dag(const StressDag& dag, vc::RankCtx& rctx, Options opts,
             std::vector<double>* got, std::mutex* mu) {
  const int nranks = rctx.nranks();
  const int layers = dag.layers, width = dag.width;
  auto owner = [nranks](int l, int i) { return (l * 7 + i * 13) % nranks; };

  Taskpool pool;
  TaskClass node;
  node.name = "NODE";
  node.rank_of = [owner](const Params& p) { return owner(p[0], p[1]); };
  node.num_task_inputs = [&dag](const Params& p) {
    return static_cast<int>(
        dag.parents[static_cast<size_t>(p[0])][static_cast<size_t>(p[1])]
            .size());
  };
  node.enumerate_rank = [&dag, owner, layers, width](int rank) {
    std::vector<Params> out;
    for (int l = 0; l < layers; ++l) {
      for (int i = 0; i < width; ++i) {
        if (owner(l, i) == rank) out.push_back(params_of(l, i));
      }
    }
    return out;
  };
  node.body = [&dag, got, mu, layers](TaskCtx& t) {
    const int l = t.params()[0], i = t.params()[1];
    double s = 0.0;
    const auto& plist =
        dag.parents[static_cast<size_t>(l)][static_cast<size_t>(i)];
    for (size_t slot = 0; slot < plist.size(); ++slot) {
      s += (*t.input(static_cast<int>(slot)))[0];
    }
    const double v = StressDag::combine(l, i, s);
    if (l == layers - 1) {
      std::lock_guard lock(*mu);
      (*got)[static_cast<size_t>(i)] = v;
    }
    t.set_output(0, make_buf(1, v));
  };
  const auto node_id = pool.add_class(std::move(node));
  pool.mutable_cls(node_id).route_outputs =
      [&dag, node_id](const Params& p, std::vector<OutRoute>& r) {
        const auto& kids = dag.children[static_cast<size_t>(p[0])]
                                       [static_cast<size_t>(p[1])];
        for (const auto& [child, slot] : kids) {
          r.push_back({TaskKey{node_id, params_of(p[0] + 1, child)},
                       static_cast<int8_t>(slot), 0});
        }
      };

  Context ctx(rctx, pool, opts);
  ctx.run();
  // Self-check the scheduler counters on every completed run: the snapshot
  // must satisfy the SchedStats invariants even right after quiescence.
  EXPECT_EQ(ctx.scheduler_stats().validate(), "") << "rank " << rctx.rank();
}

// --- lost activations: the watchdog must end the run, never a hang ---

TEST(ShutdownStress, DropFaultsEndInCleanStateErrorNotHang) {
  // Acceptance: with drop_prob > 0 high enough that activations are lost,
  // every stalled rank's watchdog fires and the job terminates with a
  // clean StateError carrying diagnostics — within seconds, not never.
  vc::FabricConfig cfg;
  cfg.faults.drop_prob = 0.8;
  cfg.fault_seed = 7;
  vc::Cluster cluster(3, cfg);
  const StressDag dag = StressDag::make(8, 9, 11);
  std::vector<double> got(static_cast<size_t>(dag.width), 0.0);
  std::mutex mu;

  const auto t0 = steady_clock::now();
  try {
    cluster.run([&](vc::RankCtx& rctx) {
      Options opts;
      opts.num_workers = 3;
      opts.policy = SchedPolicy::kStealing;
      opts.watchdog_timeout_ms = 250.0;
      run_dag(dag, rctx, opts, &got, &mu);
    });
    FAIL() << "80% drop rate cannot complete an 8-layer cross-rank DAG";
  } catch (const StateError& e) {
    // Rank 0 reports either its own watchdog dump or — if another rank's
    // watchdog fired first and its abort broadcast survived the drops —
    // the relayed abort. Both are watchdog-driven clean terminations.
    const std::string msg = e.what();
    EXPECT_TRUE(msg.find("PTG watchdog") != std::string::npos ||
                msg.find("aborted") != std::string::npos)
        << msg;
  }
  EXPECT_LT(steady_clock::now() - t0, seconds(30));
  // Even a fault-riddled aborted run must leave the fabric counters
  // internally consistent (faults <= messages, bytes imply messages).
  EXPECT_EQ(cluster.fabric().stats().validate(), "");
}

// --- mixed faults: complete correctly or unwind cleanly, seed sweep ---

class MixedFaultStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MixedFaultStress, CompletesOrUnwindsCleanly) {
  const uint64_t seed = GetParam();
  vc::FabricConfig cfg;
  cfg.latency_us = 100.0;
  cfg.faults.drop_prob = 0.02;
  cfg.faults.dup_prob = 0.02;
  cfg.faults.reorder_jitter_us = 150.0;
  cfg.fault_seed = seed;
  vc::Cluster cluster(3, cfg);
  const StressDag dag = StressDag::make(10, 8, seed * 31 + 1);
  const auto expected = dag.evaluate();
  std::vector<double> got(static_cast<size_t>(dag.width), 0.0);
  std::mutex mu;

  const auto t0 = steady_clock::now();
  bool completed = false;
  try {
    cluster.run([&](vc::RankCtx& rctx) {
      Options opts;
      opts.num_workers = 3;
      opts.policy = SchedPolicy::kStealing;
      opts.watchdog_timeout_ms = 300.0;
      run_dag(dag, rctx, opts, &got, &mu);
    });
    completed = true;
  } catch (const std::exception&) {
    // A dropped activation tripped the watchdog, or a duplicated one was
    // diagnosed as a double deposit. Unwinding cleanly is the contract.
  }
  EXPECT_LT(steady_clock::now() - t0, seconds(30));
  EXPECT_EQ(cluster.fabric().stats().validate(), "") << "seed " << seed;
  if (completed) {
    for (int i = 0; i < dag.width; ++i) {
      EXPECT_DOUBLE_EQ(got[static_cast<size_t>(i)],
                       expected[static_cast<size_t>(dag.layers - 1)]
                               [static_cast<size_t>(i)])
          << "sink " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedFaultStress,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- reordering alone must not break correctness ---

TEST(ShutdownStress, ReorderJitterOnlyComputesCorrectResult) {
  // Deposits are slot-addressed, so delivery order must not matter. Run a
  // wide DAG with heavy jitter (no drops/dups) and check against serial.
  vc::FabricConfig cfg;
  cfg.faults.reorder_jitter_us = 300.0;
  cfg.fault_seed = 99;
  vc::Cluster cluster(4, cfg);
  const StressDag dag = StressDag::make(12, 10, 21);
  const auto expected = dag.evaluate();
  std::vector<double> got(static_cast<size_t>(dag.width), 0.0);
  std::mutex mu;

  cluster.run([&](vc::RankCtx& rctx) {
    Options opts;
    opts.num_workers = 4;
    opts.policy = SchedPolicy::kStealing;
    run_dag(dag, rctx, opts, &got, &mu);
  });
  EXPECT_EQ(cluster.fabric().stats().validate(), "");
  for (int i = 0; i < dag.width; ++i) {
    EXPECT_DOUBLE_EQ(got[static_cast<size_t>(i)],
                     expected[static_cast<size_t>(dag.layers - 1)]
                             [static_cast<size_t>(i)])
        << "sink " << i;
  }
}

// --- abort propagation under delay + jitter ---

TEST(ShutdownStress, AbortUnderDelayedJitteryFabricUnwindsEveryRank) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    vc::FabricConfig cfg;
    cfg.latency_us = 200.0;
    cfg.faults.reorder_jitter_us = 100.0;
    cfg.fault_seed = seed;
    vc::Cluster cluster(3, cfg);
    const auto t0 = steady_clock::now();
    EXPECT_THROW(
        cluster.run([&](vc::RankCtx& rctx) {
          Taskpool pool;
          TaskClass c;
          c.name = "failing_hop";
          c.rank_of = [](const Params& p) { return p[0] % 3; };
          c.num_task_inputs = [](const Params& p) {
            return p[0] == 0 ? 0 : 1;
          };
          c.enumerate_rank = [](int rank) {
            std::vector<Params> out;
            for (int i = rank; i < 9; i += 3) out.push_back(params_of(i));
            return out;
          };
          c.body = [&](TaskCtx& t) {
            if (t.params()[0] == static_cast<int>(3 + seed % 3)) {
              throw std::runtime_error("injected failure");
            }
            t.set_output(0, make_buf(1, 1.0));
          };
          const auto id = pool.add_class(std::move(c));
          pool.mutable_cls(id).route_outputs =
              [id](const Params& p, std::vector<OutRoute>& r) {
                if (p[0] < 8) {
                  r.push_back({TaskKey{id, params_of(p[0] + 1)}, 0, 0});
                }
              };
          Options opts;
          opts.num_workers = 2;
          Context ctx(rctx, pool, opts);
          ctx.run();
        }),
        std::exception);
    EXPECT_LT(steady_clock::now() - t0, seconds(20)) << "seed " << seed;
  }
}

// --- repeated full lifecycles shake shutdown races (TSan's job) ---

TEST(ShutdownStress, RepeatedLifecyclesQuiesceCleanly) {
  for (int iter = 0; iter < 10; ++iter) {
    vc::FabricConfig cfg;
    cfg.latency_us = 50.0;
    cfg.faults.reorder_jitter_us = 50.0;
    cfg.fault_seed = static_cast<uint64_t>(iter);
    vc::Cluster cluster(2, cfg);
    const StressDag dag = StressDag::make(5, 6,
                                          static_cast<uint64_t>(iter) + 101);
    std::vector<double> got(static_cast<size_t>(dag.width), 0.0);
    std::mutex mu;
    cluster.run([&](vc::RankCtx& rctx) {
      Options opts;
      opts.num_workers = 2;
      run_dag(dag, rctx, opts, &got, &mu);
    });
    EXPECT_EQ(cluster.fabric().stats().validate(), "") << "iter " << iter;
    // Cluster + Fabric destructors run here; a stuck delivery or comm
    // thread would hang the test.
  }
}

}  // namespace
}  // namespace mp::ptg
