// Tests for the persistent-runtime + template-cache path (DESIGN.md §11):
// repeated cache-hit submissions through one parked runtime must reproduce
// the serial reference to 1e-12 (claim C9 under resubmission) — including
// the stealing and failure-detection runtime variants — the mp-verify pass
// must run once per template rather than once per submission, and the
// between-submission reset must leave no per-submission state behind.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "cc/ccsd.h"
#include "cc/integration.h"
#include "cc/model.h"
#include "support/rng.h"
#include "tce/template_cache.h"

namespace mp::cc {
namespace {

/// Enough iterations that any per-submission state leaking across the reset
/// (stale dependency counters, undrained mailboxes, leftover ready tasks)
/// would corrupt a later result or trip a runtime invariant.
constexpr int kIterations = 4;

class ResubmitLadder : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = make_synthetic(2, 3, 1.5, 0.1, 23);
    ladder_ = std::make_unique<DistributedLadder>(sys_, /*tile_size=*/2,
                                                  /*nranks=*/2);
    const int O = sys_.n_occ(), V = sys_.n_virt();
    tau_.resize(static_cast<size_t>(V) * V * O * O);
    // Physically-shaped tau (MP2 doubles): antisymmetric, as the canonical
    // block reconstruction relies on.
    for (int a = 0; a < V; ++a)
      for (int b = 0; b < V; ++b)
        for (int i = 0; i < O; ++i)
          for (int j = 0; j < O; ++j) {
            const double d =
                sys_.f(i) + sys_.f(j) - sys_.f(O + a) - sys_.f(O + b);
            tau_[((static_cast<size_t>(a) * V + b) * O + i) * O + j] =
                sys_.v(i, j, O + a, O + b) / d;
          }
    pp_expected_.assign(tau_.size(), 0.0);
    dense_ladder(sys_, tau_, pp_expected_);
    hh_expected_.assign(tau_.size(), 0.0);
    dense_hh_ladder(sys_, tau_, hh_expected_);
  }

  static double max_diff(const std::vector<double>& got,
                         const std::vector<double>& want) {
    double m = 0.0;
    for (size_t i = 0; i < got.size(); ++i) {
      m = std::max(m, std::fabs(got[i] - want[i]));
    }
    return m;
  }

  /// kIterations cache-hit submissions under `opts`; every one must match
  /// the dense reference for the selected contraction to 1e-12.
  void run_iterations(LadderRunOptions opts, const char* what) {
    opts.kind = ExecKind::kPtg;
    opts.reuse_runtime = true;
    const auto& want =
        opts.contraction == Contraction::kHhLadder ? hh_expected_ : pp_expected_;
    for (int it = 0; it < kIterations; ++it) {
      const auto res = ladder_->run(tau_, opts);
      EXPECT_LT(max_diff(res.r_dense, want), 1e-12)
          << what << " iteration " << it;
    }
  }

  SpinOrbitalSystem sys_;
  std::unique_ptr<DistributedLadder> ladder_;
  std::vector<double> tau_;
  std::vector<double> pp_expected_, hh_expected_;
};

// Claim C9 under resubmission: every PTG variant, executed repeatedly
// through one cached template and parked runtime, reproduces the dense
// particle-particle ladder each time.
TEST_F(ResubmitLadder, AllVariantsMatchDenseAcrossCacheHits) {
  for (const auto& variant : tce::VariantConfig::all()) {
    LadderRunOptions opts;
    opts.variant = variant;
    run_iterations(opts, variant.name.c_str());
  }
  const auto st = ladder_->template_cache_stats();
  // One build per variant; every later iteration is a hit.
  EXPECT_EQ(st.misses, tce::VariantConfig::all().size());
  EXPECT_EQ(st.hits,
            tce::VariantConfig::all().size() * (kIterations - 1));
}

TEST_F(ResubmitLadder, HhLadderMatchesDenseAcrossCacheHits) {
  LadderRunOptions opts;
  opts.contraction = Contraction::kHhLadder;
  run_iterations(opts, "hh_ladder");
}

TEST_F(ResubmitLadder, StealingRuntimeMatchesDenseAcrossCacheHits) {
  LadderRunOptions opts;
  opts.enable_stealing = true;
  run_iterations(opts, "stealing");
}

TEST_F(ResubmitLadder, FailureDetectionRuntimeMatchesDenseAcrossCacheHits) {
  LadderRunOptions opts;
  opts.enable_failure_detection = true;
  opts.on_rank_failure = ptg::FailurePolicy::kRetry;
  run_iterations(opts, "failure-detection");
}

// Acceptance: cache-hit and cache-miss submissions are numerically
// indistinguishable for every variant.
TEST_F(ResubmitLadder, CacheHitAndColdPathsAgreeForEveryVariant) {
  for (const auto& variant : tce::VariantConfig::all()) {
    LadderRunOptions opts;
    opts.kind = ExecKind::kPtg;
    opts.variant = variant;
    opts.reuse_runtime = false;
    const auto cold = ladder_->run(tau_, opts);
    opts.reuse_runtime = true;
    const auto warm = ladder_->run(tau_, opts);   // miss: builds template
    const auto warm2 = ladder_->run(tau_, opts);  // hit: parked runtime
    ASSERT_EQ(cold.r_dense.size(), warm.r_dense.size());
    for (size_t i = 0; i < cold.r_dense.size(); ++i) {
      EXPECT_NEAR(cold.r_dense[i], warm.r_dense[i], 1e-12)
          << "variant " << variant.name << " elem " << i;
      EXPECT_NEAR(cold.r_dense[i], warm2.r_dense[i], 1e-12)
          << "variant " << variant.name << " elem " << i;
    }
  }
}

// The between-submission reset must reclaim every piece of per-submission
// state (this is what bounds retention to one submission) and the parked
// runtime must be reused rather than respawned.
TEST_F(ResubmitLadder, ResetReclaimsAllPerSubmissionState) {
  LadderRunOptions opts;
  opts.kind = ExecKind::kPtg;
  opts.reuse_runtime = true;
  // Failure tolerance on: its activation-dedup set and lineage log are the
  // documented O(total activations) retention the reset exists to bound.
  opts.enable_failure_detection = true;
  opts.on_rank_failure = ptg::FailurePolicy::kRetry;
  for (int it = 0; it < 3; ++it) ladder_->run(tau_, opts);

  auto& ses = ladder_->session_for(opts);
  EXPECT_EQ(ses.submissions(), 3u);
  bool any_activated = false, any_lineage = false;
  for (int r = 0; r < ses.nranks(); ++r) {
    const auto& ctx = ses.context(r);
    EXPECT_EQ(ctx.submissions(), 3u) << "rank " << r;
    const auto& rep = ctx.last_reset_report();
    // The reset before submission 3 ran over submission 2's state.
    EXPECT_EQ(rep.submission, 2u) << "rank " << r;
    // The retention being reclaimed: one submission's worth, not three.
    any_activated = any_activated || rep.activated_keys > 0;
    any_lineage = any_lineage || rep.lineage_entries > 0;
    // Everything else must have fully drained at the end of the previous
    // submission: leftovers here are per-submission state leaks.
    EXPECT_EQ(rep.pending_deposits, 0u) << "rank " << r;
    EXPECT_EQ(rep.held_ready, 0u) << "rank " << r;
    EXPECT_EQ(rep.adopted_keys, 0u) << "rank " << r;
    EXPECT_EQ(rep.outstanding_migrations, 0u) << "rank " << r;
    EXPECT_EQ(rep.outbox_messages, 0u) << "rank " << r;
    // Heartbeats keep flying until the closing barrier, so a handful may
    // land after the run and be drained by the reset; a pile of them (or
    // any data-plane traffic) would be a leak.
    EXPECT_LE(rep.stale_messages, 64u) << "rank " << r;
  }
  EXPECT_TRUE(any_activated)
      << "fault-tolerant runs must have dedup entries for the reset to free";
  EXPECT_TRUE(any_lineage)
      << "fault-tolerant runs must have lineage entries for the reset to free";
}

// mp-verify runs once per template (at build), not once per submission.
TEST_F(ResubmitLadder, VerifyRunsOncePerTemplate) {
  ::setenv("MP_VERIFY", "1", 1);
  struct Unset {
    ~Unset() { ::unsetenv("MP_VERIFY"); }
  } unset_on_exit;

  // Fresh ladder so the fixture's env-off state cannot be cached.
  DistributedLadder ladder(sys_, /*tile_size=*/2, /*nranks=*/2);
  LadderRunOptions opts;
  opts.kind = ExecKind::kPtg;
  opts.reuse_runtime = true;
  const auto& want = pp_expected_;
  for (int it = 0; it < 3; ++it) {
    const auto res = ladder.run(tau_, opts);
    EXPECT_LT(max_diff(res.r_dense, want), 1e-12) << "iteration " << it;
  }
  const auto st = ladder.template_cache_stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 2u);
  EXPECT_EQ(st.verifies_run, 1u)
      << "the static verifier must run exactly once per template";
}

// The full CC iteration through the persistent runtime: same energy as the
// dense kernel to the 14th digit, with the cache amortizing every iteration
// after the first.
TEST(ResubmitCcsd, EnergyMatchesDenseAndIterationsHitTheCache) {
  const auto sys = make_synthetic(2, 3, 1.5, 0.1, 31);
  const auto dense = run_ccsd(sys);
  ASSERT_TRUE(dense.converged);

  DistributedLadder ladder(sys, /*tile_size=*/2, /*nranks=*/2);
  LadderRunOptions lopts;
  lopts.kind = ExecKind::kPtg;
  lopts.reuse_runtime = true;
  CcsdOptions copts;
  copts.ladder = ladder.make_kernel(lopts);
  const auto res = run_ccsd(sys, copts);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.e_corr, dense.e_corr, 1e-13);

  const auto st = ladder.template_cache_stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_GE(st.hits, static_cast<uint64_t>(res.iterations - 1))
      << "every CCSD iteration after the first must reuse the template";
}

// --- template-cache unit tests (no runtime) ---

TEST(TemplateKey, FingerprintDistinguishesEverySpecField) {
  tce::TileSpaceSpec base;
  base.n_occ_alpha = 3;
  base.n_occ_beta = 3;
  base.n_virt_alpha = 5;
  base.n_virt_beta = 5;
  base.tile_size = 2;
  const uint64_t fp = tce::fingerprint_tile_space(base);
  EXPECT_EQ(fp, tce::fingerprint_tile_space(base)) << "must be deterministic";

  auto differs = [&](tce::TileSpaceSpec s) {
    return tce::fingerprint_tile_space(s) != fp;
  };
  tce::TileSpaceSpec s = base;
  s.n_occ_alpha = 4;
  EXPECT_TRUE(differs(s));
  s = base;
  s.n_occ_beta = 2;
  EXPECT_TRUE(differs(s));
  s = base;
  s.n_virt_alpha = 6;
  EXPECT_TRUE(differs(s));
  s = base;
  s.n_virt_beta = 4;
  EXPECT_TRUE(differs(s));
  s = base;
  s.tile_size = 3;
  EXPECT_TRUE(differs(s));
}

TEST(TemplateKey, VariantSignatureSeparatesAllVariantsAndFlagTweaks) {
  std::vector<std::string> sigs;
  for (const auto& v : tce::VariantConfig::all()) {
    sigs.push_back(tce::variant_signature(v));
  }
  for (size_t i = 0; i < sigs.size(); ++i) {
    for (size_t j = i + 1; j < sigs.size(); ++j) {
      EXPECT_NE(sigs[i], sigs[j]);
    }
  }
  // A hand-built config reusing a stock name must not alias it.
  tce::VariantConfig forged = tce::VariantConfig::v5();
  forged.priorities = !forged.priorities;
  EXPECT_NE(tce::variant_signature(forged),
            tce::variant_signature(tce::VariantConfig::v5()));
}

TEST(TemplateKey, KeyEqualityAndHashRespectEveryField) {
  tce::TemplateKey a{"t2_7", 42u, "v5:g1s0w0p1", 8};
  tce::TemplateKey b = a;
  EXPECT_TRUE(a == b);
  EXPECT_EQ(tce::TemplateKeyHash{}(a), tce::TemplateKeyHash{}(b));
  b = a;
  b.subroutine = "hh_ladder";
  EXPECT_FALSE(a == b);
  b = a;
  b.tile_fingerprint = 43u;
  EXPECT_FALSE(a == b);
  b = a;
  b.variant = "v1:g0s1w1p1";
  EXPECT_FALSE(a == b);
  b = a;
  b.nranks = 4;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace mp::cc
