// Tests for the discrete-event cluster simulator: graph construction per
// variant, owner mapping consistency with GlobalArray, engine invariants
// (determinism, conservation, monotonicity in resources), the original-code
// simulator, and the qualitative behaviours the paper's traces show
// (priorities shrink the startup bubble; the original never overlaps
// communication within a process).
#include <gtest/gtest.h>

#include <cmath>

#include "ga/global_array.h"
#include "sim/original_sim.h"
#include "sim/presets.h"
#include "sim/ptg_sim.h"
#include "sim/task_graph.h"
#include "vc/cluster.h"

namespace mp::sim {
namespace {

PresetPlan tiny() { return make_preset("tiny"); }

TEST(Presets, AllNamedPresetsBuild) {
  for (const auto& name : preset_names()) {
    if (name == "beta_carotene_full") continue;  // large; covered separately
    const auto p = make_preset(name);
    EXPECT_GT(p.plan.chains.size(), 0u) << name;
    EXPECT_FALSE(p.description.empty());
  }
}

TEST(Presets, UnknownNameThrows) {
  EXPECT_THROW(make_preset("nope"), InvalidArgument);
}

TEST(BlockOwner, MatchesGlobalArrayFormula) {
  vc::Cluster cluster(5);
  ga::GlobalArray g(&cluster, 1003);
  for (int64_t i = 0; i < 1003; i += 13) {
    EXPECT_EQ(block_owner(i, 1003, 5), g.owner_of(i));
  }
}

// --- graph construction ---

size_t count_kind(const SimGraph& g, SimTaskKind k) {
  size_t n = 0;
  for (const auto& t : g.tasks) n += (t.kind == k);
  return n;
}

TEST(TaskGraph, V5Structure) {
  const auto p = tiny();
  GraphOptions opts;
  opts.variant = tce::VariantConfig::v5();
  opts.nodes = 4;
  const auto g = build_graph(p.plan, opts);

  const auto st = p.plan.stats();
  EXPECT_EQ(count_kind(g, SimTaskKind::kReadA), st.num_gemms);
  EXPECT_EQ(count_kind(g, SimTaskKind::kReadB), st.num_gemms);
  EXPECT_EQ(count_kind(g, SimTaskKind::kGemm), st.num_gemms);
  EXPECT_EQ(count_kind(g, SimTaskKind::kSort), st.num_chains);   // serial sort
  EXPECT_EQ(count_kind(g, SimTaskKind::kWrite), st.num_chains);  // single write
  EXPECT_EQ(count_kind(g, SimTaskKind::kDfill), 0u);
  size_t reduces = 0;
  for (const auto& c : p.plan.chains) {
    if (c.gemms.size() > 1) reduces += c.gemms.size() - 1;
  }
  EXPECT_EQ(count_kind(g, SimTaskKind::kReduce), reduces);
}

TEST(TaskGraph, V3HasParallelWrites) {
  const auto p = tiny();
  GraphOptions opts;
  opts.variant = tce::VariantConfig::v3();
  opts.nodes = 4;
  const auto g = build_graph(p.plan, opts);
  const auto st = p.plan.stats();
  EXPECT_EQ(count_kind(g, SimTaskKind::kSort), st.num_sorts);
  EXPECT_EQ(count_kind(g, SimTaskKind::kWrite), st.num_sorts);
}

TEST(TaskGraph, V1IsSerialChainWithDfill) {
  const auto p = tiny();
  GraphOptions opts;
  opts.variant = tce::VariantConfig::v1();
  opts.nodes = 4;
  const auto g = build_graph(p.plan, opts);
  EXPECT_EQ(count_kind(g, SimTaskKind::kReduce), 0u);  // one segment
  size_t multi_gemm_chains = 0;
  for (const auto& c : p.plan.chains) multi_gemm_chains += c.gemms.size() > 1;
  EXPECT_EQ(count_kind(g, SimTaskKind::kDfill), multi_gemm_chains);
}

TEST(TaskGraph, EdgeCountMatchesDependencyCount) {
  const auto p = tiny();
  for (const auto& v : tce::VariantConfig::all()) {
    GraphOptions opts;
    opts.variant = v;
    opts.nodes = 3;
    const auto g = build_graph(p.plan, opts);
    size_t total_deps = 0;
    for (const auto& t : g.tasks) total_deps += static_cast<size_t>(t.ndeps);
    EXPECT_EQ(g.num_edges(), total_deps) << v.name;
  }
}

TEST(TaskGraph, SegmentationAblation) {
  const auto p = tiny();
  GraphOptions opts;
  opts.variant = tce::VariantConfig::v5();
  opts.nodes = 2;
  opts.segment_height = 2;
  const auto g = build_graph(p.plan, opts);
  // Segments of height 2: chains of length L produce ceil(L/2) segments,
  // each multi-GEMM segment gets a DFILL.
  size_t expect_reduce = 0, expect_dfill = 0;
  for (const auto& c : p.plan.chains) {
    const size_t L = c.gemms.size();
    const size_t segs = (L + 1) / 2;
    if (segs > 1) expect_reduce += segs - 1;
    if (L > 1) expect_dfill += segs;  // height-2 heads carry DFILLs
  }
  EXPECT_EQ(count_kind(g, SimTaskKind::kReduce), expect_reduce);
  EXPECT_EQ(count_kind(g, SimTaskKind::kDfill), expect_dfill);
}

TEST(TaskGraph, PrioritiesFollowPaperFormula) {
  const auto p = tiny();
  GraphOptions opts;
  opts.variant = tce::VariantConfig::v4();
  opts.nodes = 8;
  const auto g = build_graph(p.plan, opts);
  const int max_l1 = static_cast<int>(p.plan.chains.size());
  for (const auto& t : g.tasks) {
    if (t.kind == SimTaskKind::kReadA || t.kind == SimTaskKind::kReadB) {
      EXPECT_DOUBLE_EQ(t.priority, max_l1 - t.l1 + 5 * 8);
    } else if (t.kind == SimTaskKind::kGemm) {
      EXPECT_DOUBLE_EQ(t.priority, max_l1 - t.l1 + 1 * 8);
    } else {
      EXPECT_DOUBLE_EQ(t.priority, max_l1 - t.l1);
    }
  }
}

TEST(TaskGraph, NoPrioritiesForV2) {
  // Without priorities the scheduler order is effectively arbitrary; the
  // builder models that with a deterministic pseudo-random key in [0, 1),
  // far below any real priority value (which are >= 1).
  const auto p = tiny();
  GraphOptions opts;
  opts.variant = tce::VariantConfig::v2();
  opts.nodes = 8;
  const auto g = build_graph(p.plan, opts);
  for (const auto& t : g.tasks) {
    EXPECT_GE(t.priority, 0.0);
    EXPECT_LT(t.priority, 1.0);
  }
  // Deterministic across builds.
  const auto g2 = build_graph(p.plan, opts);
  for (size_t i = 0; i < g.tasks.size(); ++i) {
    EXPECT_EQ(g.tasks[i].priority, g2.tasks[i].priority);
  }
}

// --- PTG simulation ---

SimResult run_sim(const tce::VariantConfig& v, int nodes, int cores,
                  bool trace = false) {
  const auto p = tiny();
  GraphOptions gopts;
  gopts.variant = v;
  gopts.nodes = nodes;
  const auto g = build_graph(p.plan, gopts);
  SimOptions sopts;
  sopts.cores_per_node = cores;
  sopts.record_trace = trace;
  return simulate_ptg(g, sopts);
}

TEST(PtgSim, CompletesWithPositiveMakespan) {
  const auto r = run_sim(tce::VariantConfig::v5(), 4, 2);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_GT(r.core_busy_time, 0.0);
  EXPECT_GE(r.idle_fraction, 0.0);
  EXPECT_LT(r.idle_fraction, 1.0);
  EXPECT_GT(r.transfers, 0u);
}

TEST(PtgSim, IsDeterministic) {
  const auto a = run_sim(tce::VariantConfig::v4(), 4, 3);
  const auto b = run_sim(tce::VariantConfig::v4(), 4, 3);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.core_busy_time, b.core_busy_time);
  EXPECT_EQ(a.transfers, b.transfers);
}

TEST(PtgSim, MoreCoresNeverSlower) {
  for (const auto& v : tce::VariantConfig::all()) {
    const auto slow = run_sim(v, 2, 1);
    const auto fast = run_sim(v, 2, 8);
    EXPECT_LE(fast.makespan, slow.makespan * 1.01) << v.name;
  }
}

TEST(PtgSim, ComputeWorkIndependentOfVariantGemms) {
  // GEMM busy time is the same physics in every variant.
  const auto a = run_sim(tce::VariantConfig::v1(), 4, 2);
  const auto b = run_sim(tce::VariantConfig::v5(), 4, 2);
  EXPECT_NEAR(a.busy_by_kind[static_cast<size_t>(SimTaskKind::kGemm)],
              b.busy_by_kind[static_cast<size_t>(SimTaskKind::kGemm)], 1e-9);
}

TEST(PtgSim, SerialChainHasLongerMakespanAtHighCoreCount) {
  // The paper's C2/C6: v1's restricted parallelism hurts at saturation.
  const auto v1 = run_sim(tce::VariantConfig::v1(), 4, 8);
  const auto v5 = run_sim(tce::VariantConfig::v5(), 4, 8);
  EXPECT_GT(v1.makespan, v5.makespan);
}

TEST(PtgSim, TraceRecordsTasksAndTransfers) {
  const auto r = run_sim(tce::VariantConfig::v4(), 3, 2, true);
  EXPECT_GT(r.trace.size(), 0u);
  bool saw_comm = false, saw_gemm = false;
  for (const auto& e : r.trace.events()) {
    saw_comm |= e.is_comm;
    saw_gemm |= (!e.is_comm &&
                 e.cls == static_cast<int16_t>(SimTaskKind::kGemm));
  }
  EXPECT_TRUE(saw_comm);
  EXPECT_TRUE(saw_gemm);
}

TEST(PtgSim, PrioritiesShrinkStartupBubble) {
  // The paper's Figs. 10 vs 11: without priorities reads flood the network
  // in arbitrary order and compute starves; priorities pipeline reads and
  // compute. Needs a communication-intensive workload, so use the paper's
  // scaled beta-carotene structure rather than the tiny fixture.
  const auto p = make_preset("beta_carotene_32");
  auto run = [&](const tce::VariantConfig& v) {
    GraphOptions gopts;
    gopts.variant = v;
    gopts.nodes = 32;
    const auto g = build_graph(p.plan, gopts);
    SimOptions sopts;
    sopts.cores_per_node = 15;
    return simulate_ptg(g, sopts);
  };
  const auto with = run(tce::VariantConfig::v4());
  const auto without = run(tce::VariantConfig::v2());
  EXPECT_LT(with.makespan, without.makespan * 0.95);
}

TEST(PtgSim, Figure9OrderingAtSaturation) {
  // Claim C6 at 15 cores/node on 32 nodes: v1 slowest, then v2, then v3,
  // then v4, v5 fastest.
  const auto p = make_preset("beta_carotene_32");
  std::vector<double> t;
  for (const auto& v : tce::VariantConfig::all()) {
    GraphOptions gopts;
    gopts.variant = v;
    gopts.nodes = 32;
    const auto g = build_graph(p.plan, gopts);
    SimOptions sopts;
    sopts.cores_per_node = 15;
    t.push_back(simulate_ptg(g, sopts).makespan);
  }
  EXPECT_GT(t[0], t[1]);            // v1 slowest
  EXPECT_GT(t[1], t[2]);            // v2 next
  EXPECT_GE(t[2], t[3] * 0.9999);   // v3 >= v4 (small but real gap)
  EXPECT_GE(t[3], t[4] * 0.9999);   // v4 >= v5
  EXPECT_GT(t[0] / t[4], 1.3);      // fastest/slowest spread (paper: 1.73x)
}

TEST(OriginalSim, PeaksNearSevenCoresThenDegrades) {
  // Claim C1: the original improves to ~7 cores/node, then deteriorates.
  const auto p = make_preset("beta_carotene_32");
  auto run = [&](int cores) {
    OriginalSimOptions opts;
    opts.nodes = 32;
    opts.cores_per_node = cores;
    return simulate_original(p.plan, opts).makespan;
  };
  const double t1 = run(1), t3 = run(3), t7 = run(7), t15 = run(15);
  EXPECT_GT(t1 / t3, 2.0);   // paper: 2.35x by 3 cores
  EXPECT_LT(t7, t3);         // still improving to 7
  EXPECT_GT(t15, t7);        // degrades past the peak
}

TEST(PtgSim, MutexWaitHigherWithParallelWrites) {
  // v3's many small critical sections pay more lock cycles than v5's one
  // per chain (paper Section V discussion).
  const auto v3 = run_sim(tce::VariantConfig::v3(), 4, 8);
  const auto v5 = run_sim(tce::VariantConfig::v5(), 4, 8);
  const auto w3 = v3.busy_by_kind[static_cast<size_t>(SimTaskKind::kWrite)];
  const auto w5 = v5.busy_by_kind[static_cast<size_t>(SimTaskKind::kWrite)];
  EXPECT_GT(w3, w5);
}

TEST(PtgSim, RejectsBadOptions) {
  const auto p = tiny();
  GraphOptions gopts;
  gopts.nodes = 0;
  EXPECT_THROW(build_graph(p.plan, gopts), InvalidArgument);
  gopts.nodes = 2;
  const auto g = build_graph(p.plan, gopts);
  SimOptions sopts;
  sopts.cores_per_node = 0;
  EXPECT_THROW(simulate_ptg(g, sopts), InvalidArgument);
}

TEST(PtgSim, ClassNamesAndGlyphsCover) {
  EXPECT_EQ(sim_class_names().size(), 7u);
  EXPECT_EQ(sim_class_glyphs().size(), 7u);
}

// --- original-code simulation ---

OriginalSimResult run_orig(int nodes, int cores, bool trace = false,
                           bool static_dist = false) {
  const auto p = tiny();
  OriginalSimOptions opts;
  opts.nodes = nodes;
  opts.cores_per_node = cores;
  opts.record_trace = trace;
  opts.static_distribution = static_dist;
  return simulate_original(p.plan, opts);
}

TEST(OriginalSim, CompletesAndIsDeterministic) {
  const auto a = run_orig(4, 2);
  const auto b = run_orig(4, 2);
  EXPECT_GT(a.makespan, 0.0);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_GT(a.compute_time, 0.0);
  EXPECT_GT(a.blocked_comm_time, 0.0);
  EXPECT_GT(a.nxtval_time, 0.0);
}

TEST(OriginalSim, StaticDistributionSkipsCounter) {
  const auto r = run_orig(4, 2, false, true);
  EXPECT_EQ(r.nxtval_time, 0.0);
  EXPECT_GT(r.makespan, 0.0);
}

TEST(OriginalSim, CommNeverOverlapsWithinProcess) {
  // The paper's Fig. 13: blocking GETs leave no same-thread overlap.
  auto r = run_orig(2, 2, true);
  r.trace.normalize();
  EXPECT_LT(r.trace.comm_overlap_same_worker_fraction(), 1e-9);
  EXPECT_GT(r.trace.size(), 0u);
}

TEST(OriginalSim, ComputeTimeMatchesPlanPhysics) {
  // At fixed cores/node (fixed memory contention), compute (GEMM+SORT)
  // seconds must not depend on the node count.
  const auto a = run_orig(2, 2);
  const auto b = run_orig(8, 2);
  EXPECT_NEAR(a.compute_time, b.compute_time, a.compute_time * 1e-9);
  // More cores per node -> socket contention -> compute time can only grow.
  const auto c = run_orig(2, 8);
  EXPECT_GE(c.compute_time, a.compute_time);
}

TEST(OriginalSim, RejectsBadShape) {
  const auto p = tiny();
  OriginalSimOptions opts;
  opts.nodes = 0;
  EXPECT_THROW(simulate_original(p.plan, opts), InvalidArgument);
}

TEST(HybridSim, AcceleratorsSpeedUpGemmHeavyWork) {
  const auto p = make_preset("beta_carotene_32");
  GraphOptions gopts;
  gopts.variant = tce::VariantConfig::v5();
  gopts.nodes = 8;
  const auto g = build_graph(p.plan, gopts);

  SimOptions cpu;
  cpu.cores_per_node = 7;
  const auto r_cpu = simulate_ptg(g, cpu);
  EXPECT_EQ(r_cpu.offloaded_gemms, 0u);

  SimOptions gpu = cpu;
  gpu.cost.accels_per_node = 1;
  const auto r_gpu = simulate_ptg(g, gpu);
  EXPECT_GT(r_gpu.offloaded_gemms, 0u);
  EXPECT_LT(r_gpu.makespan, r_cpu.makespan);
}

TEST(HybridSim, ThresholdKeepsSmallGemmsOnCores) {
  const auto p = tiny();  // tiny blocks: every GEMM under the threshold
  GraphOptions gopts;
  gopts.variant = tce::VariantConfig::v5();
  gopts.nodes = 2;
  const auto g = build_graph(p.plan, gopts);
  SimOptions sopts;
  sopts.cores_per_node = 2;
  sopts.cost.accels_per_node = 2;
  const auto r = simulate_ptg(g, sopts);
  EXPECT_EQ(r.offloaded_gemms, 0u);
}

TEST(HybridSim, OverwhelminglyFastDeviceTakesEverything) {
  // With no threshold, free launches and a near-infinite device, the
  // opportunistic policy offloads every GEMM.
  const auto p = tiny();
  GraphOptions gopts;
  gopts.variant = tce::VariantConfig::v5();
  gopts.nodes = 2;
  const auto g = build_graph(p.plan, gopts);
  SimOptions sopts;
  sopts.cores_per_node = 2;
  sopts.cost.accels_per_node = 1;
  sopts.cost.accel_offload_threshold_flops = 0.0;
  sopts.cost.accel_launch_overhead_s = 0.0;
  sopts.cost.accel_flops_per_sec = 1e18;
  sopts.cost.accel_pcie_bw_Bps = 1e18;
  const auto r = simulate_ptg(g, sopts);
  EXPECT_EQ(r.offloaded_gemms, p.plan.stats().num_gemms);
}

TEST(HybridSim, SlowDeviceIsNeverChosen) {
  // Opportunistic selection: a device slower than a core gets no work, so
  // adding it can never hurt (the regression the naive policy had).
  const auto p = make_preset("beta_carotene_32");
  GraphOptions gopts;
  gopts.variant = tce::VariantConfig::v5();
  gopts.nodes = 8;
  const auto g = build_graph(p.plan, gopts);
  SimOptions cpu;
  cpu.cores_per_node = 4;
  const auto base = simulate_ptg(g, cpu);
  SimOptions slow = cpu;
  slow.cost.accels_per_node = 1;
  slow.cost.accel_flops_per_sec = 1e6;  // uselessly slow device
  const auto r = simulate_ptg(g, slow);
  EXPECT_EQ(r.offloaded_gemms, 0u);
  EXPECT_DOUBLE_EQ(r.makespan, base.makespan);
}

TEST(Protocol, RendezvousAddsLatencyForLargeMessages) {
  CostModel cm;
  EXPECT_EQ(cm.protocol_latency(1024.0), 0.0);
  EXPECT_GT(cm.protocol_latency(1e6), 0.0);
  EXPECT_DOUBLE_EQ(cm.protocol_latency(1e6), 2.0 * cm.net_latency_s);
}

TEST(Presets, FullBetaCaroteneStructureBuilds) {
  const auto p = make_preset("beta_carotene_full");
  const auto st = p.plan.stats();
  // The true 148o/324v tiling: thousands of chains, O(10^5) GEMMs.
  EXPECT_GT(st.num_chains, 1000u);
  EXPECT_GT(st.num_gemms, 100000u);
  EXPECT_GT(st.total_flops, 1e14);  // ~hundreds of TF, the real t2_7 scale
}

}  // namespace
}  // namespace mp::sim
