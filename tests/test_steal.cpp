// Inter-node work stealing: functional suite (ctest label: steal).
//
// Covers the steal protocol end to end on a healthy fabric — an
// imbalanced two-layer job whose heavy tasks all live on one rank must
// complete correctly while tasks migrate, with every cross-rank counter
// pair (migrations out/in, credits sent/received) matching exactly and
// the ga-layer MigrationLedger quiescent. Also the watchdog regression
// pair for the outstanding-work deadline scaling, the simulator's
// skewed-tile acceptance gate, and the imbalance generators' invariants.
// The fault-injection half of the story lives in test_steal_stress.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "ga/migration.h"
#include "ptg/context.h"
#include "sim/presets.h"
#include "sim/ptg_sim.h"
#include "tce/imbalance.h"
#include "vc/cluster.h"

namespace mp::ptg {
namespace {

/// Burn wall-clock time so a rank's ready queue stays non-empty long
/// enough for thieves to ask. A sleep would do, but a spin keeps the
/// worker thread runnable, which is closer to a real GEMM body.
void spin_for_us(int us) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  volatile double sink = 1.0;
  while (std::chrono::steady_clock::now() < until) sink = sink * 1.0000001;
  (void)sink;
}

double feed_val(int i) { return 0.25 * i + 3.0; }

/// Everything one rank reports after its Context quiesced.
struct RankReport {
  uint64_t executed = 0;   ///< bodies run here (own + stolen-in)
  uint64_t completed = 0;  ///< own tasks finished anywhere
  uint64_t expected = 0;
  StealStats steal;
  std::string sched_validate = "unset";
  std::string steal_validate = "unset";
};

/// Two-layer imbalanced job: FEED(i) is spread round-robin over the
/// ranks; every HEAVY(i) (one input, `spin_us` of compute) is homed on
/// rank 0. With stealing enabled the other ranks should pull HEAVY work
/// over; `exec_rank` records where each HEAVY body actually ran.
void run_imbalanced(vc::RankCtx& rctx, int width, int spin_us,
                    bool heavy_migratable, Options opts,
                    std::vector<double>* got, std::vector<int>* exec_rank,
                    std::mutex* mu, std::vector<RankReport>* reports) {
  const int nranks = rctx.nranks();
  const int my_rank = rctx.rank();

  Taskpool pool;
  TaskClass feed;
  feed.name = "FEED";
  feed.rank_of = [nranks](const Params& p) { return p[0] % nranks; };
  feed.num_task_inputs = [](const Params&) { return 0; };
  feed.enumerate_rank = [nranks, width](int rank) {
    std::vector<Params> out;
    for (int i = rank; i < width; i += nranks) out.push_back(params_of(i));
    return out;
  };
  feed.body = [](TaskCtx& t) {
    t.set_output(0, make_buf(1, feed_val(t.params()[0])));
  };
  const auto feed_id = pool.add_class(std::move(feed));

  TaskClass heavy;
  heavy.name = "HEAVY";
  heavy.migratable = heavy_migratable;
  heavy.rank_of = [](const Params&) { return 0; };
  heavy.num_task_inputs = [](const Params&) { return 1; };
  heavy.enumerate_rank = [width](int rank) {
    std::vector<Params> out;
    if (rank == 0) {
      for (int i = 0; i < width; ++i) out.push_back(params_of(i));
    }
    return out;
  };
  heavy.body = [spin_us, got, exec_rank, mu, my_rank](TaskCtx& t) {
    const int i = t.params()[0];
    spin_for_us(spin_us);
    const double v = (*t.input(0))[0] * 3.0 + i;
    {
      std::lock_guard lock(*mu);
      (*got)[static_cast<size_t>(i)] = v;
      (*exec_rank)[static_cast<size_t>(i)] = my_rank;
    }
    t.set_output(0, make_buf(1, v));
  };
  const auto heavy_id = pool.add_class(std::move(heavy));
  pool.mutable_cls(feed_id).route_outputs =
      [heavy_id](const Params& p, std::vector<OutRoute>& r) {
        r.push_back({TaskKey{heavy_id, p}, 0, 0});
      };
  pool.mutable_cls(heavy_id).route_outputs =
      [](const Params&, std::vector<OutRoute>&) {};

  Context ctx(rctx, pool, opts);
  ctx.run();

  RankReport rep;
  rep.executed = ctx.tasks_executed();
  rep.completed = ctx.tasks_completed();
  rep.expected = ctx.expected_tasks();
  rep.steal = ctx.steal_stats();
  rep.sched_validate = ctx.scheduler_stats().validate();
  rep.steal_validate = rep.steal.validate();
  {
    std::lock_guard lock(*mu);
    (*reports)[static_cast<size_t>(my_rank)] = rep;
  }
}

// --- the protocol moves work, completes correctly, and every counter
//     pair matches across ranks ---

TEST(StealFunctional, ImbalancedJobCompletesMigratesAndCountersPair) {
  const int nranks = 4, width = 160, spin_us = 400;
  vc::Cluster cluster(nranks);
  ga::MigrationLedger ledger;
  std::vector<double> got(static_cast<size_t>(width), 0.0);
  std::vector<int> exec_rank(static_cast<size_t>(width), -1);
  std::vector<RankReport> reports(static_cast<size_t>(nranks));
  std::mutex mu;

  cluster.run([&](vc::RankCtx& rctx) {
    Options opts;
    opts.num_workers = 2;
    opts.enable_stealing = true;
    opts.steal_cooldown_ms = 0.5;
    opts.steal_backoff_ms = 2.0;
    opts.migration_observer = &ledger;
    run_imbalanced(rctx, width, spin_us, /*heavy_migratable=*/true, opts,
                   &got, &exec_rank, &mu, &reports);
  });

  // Correct values regardless of where each body ran.
  for (int i = 0; i < width; ++i) {
    EXPECT_DOUBLE_EQ(got[static_cast<size_t>(i)], feed_val(i) * 3.0 + i)
        << "HEAVY(" << i << ") ran on rank "
        << exec_rank[static_cast<size_t>(i)];
  }

  // Per-rank: all own tasks accounted for, all self-checks clean.
  uint64_t sum_exec = 0, sum_expected = 0;
  uint64_t out = 0, in = 0, cs = 0, cr = 0;
  for (int r = 0; r < nranks; ++r) {
    const RankReport& rep = reports[static_cast<size_t>(r)];
    EXPECT_EQ(rep.completed, rep.expected) << "rank " << r;
    EXPECT_EQ(rep.sched_validate, "") << "rank " << r;
    EXPECT_EQ(rep.steal_validate, "") << "rank " << r;
    sum_exec += rep.executed;
    sum_expected += rep.expected;
    out += rep.steal.tasks_migrated_out;
    in += rep.steal.tasks_migrated_in;
    cs += rep.steal.credits_sent;
    cr += rep.steal.credits_received;
  }
  // Every body ran exactly once somewhere; 160 FEED + 160 HEAVY.
  EXPECT_EQ(sum_expected, static_cast<uint64_t>(2 * width));
  EXPECT_EQ(sum_exec, sum_expected);

  // Cross-rank pairing on a reliable fabric: nothing shipped is lost,
  // every foreign execution was credited home.
  EXPECT_EQ(out, in);
  EXPECT_EQ(cs, cr);
  EXPECT_EQ(in, cs) << "every stolen task must send exactly one credit";
  EXPECT_GT(in, 0u) << "the imbalance is the point: work must migrate";

  // A HEAVY body off its home rank is possible only via migration.
  uint64_t off_home = 0;
  for (int i = 0; i < width; ++i) {
    if (exec_rank[static_cast<size_t>(i)] != 0) ++off_home;
  }
  EXPECT_LE(off_home, in);

  // The ownership ledger drained: one record per migration, one credit
  // per record, nothing left in flight.
  EXPECT_EQ(ledger.validate(), "");
  EXPECT_EQ(ledger.recorded(), out);
  EXPECT_EQ(ledger.completed(), ledger.recorded());
  EXPECT_EQ(ledger.in_flight(), 0u);
}

// --- classes marked non-migratable never leave home ---

TEST(StealFunctional, NonMigratableClassAlwaysRunsAtHome) {
  const int nranks = 3, width = 60, spin_us = 200;
  vc::Cluster cluster(nranks);
  std::vector<double> got(static_cast<size_t>(width), 0.0);
  std::vector<int> exec_rank(static_cast<size_t>(width), -1);
  std::vector<RankReport> reports(static_cast<size_t>(nranks));
  std::mutex mu;

  cluster.run([&](vc::RankCtx& rctx) {
    Options opts;
    opts.num_workers = 2;
    opts.enable_stealing = true;
    opts.steal_cooldown_ms = 0.5;
    run_imbalanced(rctx, width, spin_us, /*heavy_migratable=*/false, opts,
                   &got, &exec_rank, &mu, &reports);
  });

  for (int i = 0; i < width; ++i) {
    EXPECT_DOUBLE_EQ(got[static_cast<size_t>(i)], feed_val(i) * 3.0 + i);
    EXPECT_EQ(exec_rank[static_cast<size_t>(i)], 0)
        << "non-migratable HEAVY(" << i << ") left its home rank";
  }
  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(reports[static_cast<size_t>(r)].steal_validate, "")
        << "rank " << r;
  }
}

// --- the ga-layer ledger in isolation ---

TEST(MigrationLedger, RecordsHolderUntilCredited) {
  ga::MigrationLedger ledger;
  const TaskKey key{0, params_of(3, 1)};
  EXPECT_EQ(ledger.holder_of(key, /*home=*/1), 1);

  ledger.migrated(key, /*home=*/1, /*holder=*/2);
  EXPECT_EQ(ledger.holder_of(key, 1), 2);
  EXPECT_EQ(ledger.in_flight(), 1u);
  EXPECT_EQ(ledger.recorded(), 1u);
  EXPECT_NE(ledger.describe(), "");

  ledger.credited(key, 1, 2);
  EXPECT_EQ(ledger.holder_of(key, 1), 1);
  EXPECT_EQ(ledger.in_flight(), 0u);
  EXPECT_EQ(ledger.completed(), 1u);
  EXPECT_EQ(ledger.validate(), "");
  // The summary keeps the cumulative counts for watchdog dumps; only a
  // ledger that never saw a migration stays silent.
  EXPECT_NE(ledger.describe().find("in_flight=0"), std::string::npos);
}

// --- watchdog regression: the deadline scales with outstanding work ---
//
// The spurious-fire scenario the scaling exists for: rank 1 owns a batch
// of sink tasks whose single input comes from the tail of a slow serial
// chain on rank 0. While the chain grinds, rank 1 has idle workers, an
// empty queue and zero progress — indistinguishable, to a flat deadline,
// from a lost activation. The outstanding-work estimate (16 queued
// sinks) must stretch rank 1's deadline past the chain's makespan.

void run_remote_chain(vc::RankCtx& rctx, int chain_len, int sinks,
                      int sleep_ms, Options opts, std::vector<double>* got,
                      std::mutex* mu) {
  Taskpool pool;
  TaskClass chain;
  chain.name = "SLOW";
  chain.rank_of = [](const Params&) { return 0; };
  chain.num_task_inputs = [](const Params& p) { return p[0] == 0 ? 0 : 1; };
  chain.enumerate_rank = [chain_len](int rank) {
    std::vector<Params> out;
    if (rank == 0) {
      for (int k = 0; k < chain_len; ++k) out.push_back(params_of(k));
    }
    return out;
  };
  chain.body = [sleep_ms](TaskCtx& t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    const int k = t.params()[0];
    const double v = (k == 0 ? 1.0 : (*t.input(0))[0]) + 1.0;
    t.set_output(0, make_buf(1, v));
  };
  const auto chain_id = pool.add_class(std::move(chain));

  TaskClass sink;
  sink.name = "SINK";
  sink.rank_of = [](const Params&) { return 1; };
  sink.num_task_inputs = [](const Params&) { return 1; };
  sink.enumerate_rank = [sinks](int rank) {
    std::vector<Params> out;
    if (rank == 1) {
      for (int j = 0; j < sinks; ++j) out.push_back(params_of(j));
    }
    return out;
  };
  sink.body = [got, mu](TaskCtx& t) {
    const int j = t.params()[0];
    const double v = (*t.input(0))[0] + j;
    {
      std::lock_guard lock(*mu);
      (*got)[static_cast<size_t>(j)] = v;
    }
    t.set_output(0, make_buf(1, v));
  };
  const auto sink_id = pool.add_class(std::move(sink));
  pool.mutable_cls(chain_id).route_outputs =
      [chain_id, sink_id, chain_len, sinks](const Params& p,
                                            std::vector<OutRoute>& r) {
        if (p[0] + 1 < chain_len) {
          r.push_back({TaskKey{chain_id, params_of(p[0] + 1)}, 0, 0});
        } else {
          for (int j = 0; j < sinks; ++j) {
            r.push_back({TaskKey{sink_id, params_of(j)}, 0, 0});
          }
        }
      };
  pool.mutable_cls(sink_id).route_outputs =
      [](const Params&, std::vector<OutRoute>&) {};
  Context ctx(rctx, pool, opts);
  ctx.run();
}

TEST(StealWatchdog, ScaledDeadlineToleratesSlowRemoteChain) {
  // Rank 1 waits ~400 ms (8 x 50 ms) with a 30 ms base timeout; its 16
  // outstanding sinks scale the deadline to 30 * (1 + 4 * 16) ≈ 2 s, so
  // the run must complete without a spurious fire.
  vc::Cluster cluster(2);
  std::vector<double> got(16, 0.0);
  std::mutex mu;
  cluster.run([&](vc::RankCtx& rctx) {
    Options opts;
    opts.num_workers = 2;
    opts.watchdog_timeout_ms = 30.0;
    opts.watchdog_scale_per_task = 4.0;
    run_remote_chain(rctx, /*chain_len=*/8, /*sinks=*/16, /*sleep_ms=*/50,
                     opts, &got, &mu);
  });
  for (int j = 0; j < 16; ++j) {
    EXPECT_DOUBLE_EQ(got[static_cast<size_t>(j)], 9.0 + j) << "sink " << j;
  }
}

TEST(StealWatchdog, FlatDeadlineFiresOnTheSameWait) {
  // Sensitivity check for the test above: with the per-task scaling off
  // the identical topology and base timeout must trip rank 1's watchdog
  // during the wait, proving the scaled deadline — not timing luck — is
  // what kept it quiet.
  vc::Cluster cluster(2);
  std::vector<double> got(16, 0.0);
  std::mutex mu;
  try {
    cluster.run([&](vc::RankCtx& rctx) {
      Options opts;
      opts.num_workers = 2;
      opts.watchdog_timeout_ms = 30.0;
      opts.watchdog_scale_per_task = 0.0;
      run_remote_chain(rctx, /*chain_len=*/8, /*sinks=*/16, /*sleep_ms=*/50,
                       opts, &got, &mu);
    });
    FAIL() << "a flat 30 ms deadline cannot sit out a 400 ms remote chain";
  } catch (const StateError& e) {
    const std::string msg = e.what();
    EXPECT_TRUE(msg.find("PTG watchdog") != std::string::npos ||
                msg.find("aborted") != std::string::npos)
        << msg;
  }
}

// --- simulator: the acceptance gate and the do-no-harm check ---

TEST(StealSim, SkewedTileGainsAtLeastThirtyPercentAtEightNodes) {
  const auto p = sim::make_preset("skewed_tile");
  sim::GraphOptions gopts;
  gopts.variant = tce::VariantConfig::v5();
  gopts.nodes = 8;
  const auto g = sim::build_graph(p.plan, gopts);

  sim::SimOptions base;
  base.cores_per_node = 8;
  const double t_static = sim::simulate_ptg(g, base).makespan;

  sim::SimOptions steal = base;
  steal.enable_stealing = true;
  const sim::SimResult rs = sim::simulate_ptg(g, steal);

  EXPECT_GT(rs.tasks_migrated, 0u);
  EXPECT_GE(t_static / rs.makespan, 1.3)
      << "static " << t_static << " s vs steal " << rs.makespan << " s";
}

TEST(StealSim, BalancedWorkloadIsNotHurtByStealing) {
  const auto p = sim::make_preset("tiny");
  sim::GraphOptions gopts;
  gopts.variant = tce::VariantConfig::v5();
  gopts.nodes = 4;
  const auto g = sim::build_graph(p.plan, gopts);

  sim::SimOptions base;
  base.cores_per_node = 4;
  const double t_static = sim::simulate_ptg(g, base).makespan;

  sim::SimOptions steal = base;
  steal.enable_stealing = true;
  const double t_steal = sim::simulate_ptg(g, steal).makespan;

  // Fully-idle-only thief activation: on a balanced workload stealing
  // must be near-free (small tiles make any migration a net loss, so
  // the agent should barely trigger).
  EXPECT_LE(t_steal, t_static * 1.05);
}

// --- the imbalance generators: conservation, determinism, skew ---

TEST(Imbalance, SkewedPlanConservesWorkAndConcentratesIt) {
  const auto p = sim::make_preset("tiny");
  tce::ImbalanceSpec spec;
  spec.nranks = 4;
  spec.zipf_alpha = 1.5;
  ASSERT_NO_THROW(spec.validate());

  const auto count = [](const tce::ChainPlan& plan) {
    size_t g = 0;
    for (const auto& c : plan.chains) g += c.gemms.size();
    return g;
  };

  const auto skewed = tce::make_skewed_plan(p.plan, spec);
  EXPECT_EQ(skewed.chains.size(), p.plan.chains.size());
  EXPECT_EQ(count(skewed), count(p.plan))
      << "the transform reshapes the distribution, never the total";

  // Deterministic for a fixed seed.
  const auto again = tce::make_skewed_plan(p.plan, spec);
  ASSERT_EQ(again.chains.size(), skewed.chains.size());
  for (size_t i = 0; i < skewed.chains.size(); ++i) {
    EXPECT_EQ(again.chains[i].gemms.size(), skewed.chains[i].gemms.size())
        << "chain " << i;
  }

  // The point of the exercise: one rank ends up far above the mean.
  const auto work = tce::work_per_rank(skewed, spec.nranks);
  const int64_t total =
      std::accumulate(work.begin(), work.end(), static_cast<int64_t>(0));
  const double mean =
      static_cast<double>(total) / static_cast<double>(spec.nranks);
  const int64_t peak = *std::max_element(work.begin(), work.end());
  EXPECT_GE(static_cast<double>(peak), 2.0 * mean)
      << "hot rank holds " << peak << " of " << total << " GEMMs";
}

TEST(Imbalance, NestedPlanConservesWorkAndSkewsEveryTier) {
  const auto p = sim::make_preset("tiny");
  tce::ImbalanceSpec spec;
  spec.nranks = 4;
  spec.zipf_alpha = 1.5;

  const auto count = [](const tce::ChainPlan& plan) {
    size_t g = 0;
    for (const auto& c : plan.chains) g += c.gemms.size();
    return g;
  };
  const auto nested = tce::make_nested_imbalance_plan(p.plan, spec);
  EXPECT_EQ(nested.chains.size(), p.plan.chains.size());
  EXPECT_EQ(count(nested), count(p.plan));

  const auto work = tce::work_per_rank(nested, spec.nranks);
  const int64_t total =
      std::accumulate(work.begin(), work.end(), static_cast<int64_t>(0));
  const double mean =
      static_cast<double>(total) / static_cast<double>(spec.nranks);
  const int64_t peak = *std::max_element(work.begin(), work.end());
  EXPECT_GE(static_cast<double>(peak), 1.5 * mean);

  // Inner-tier skew: within some rank the longest chain dominates the
  // rank's mean chain length (the two-tier Zipf's second tier).
  std::vector<std::vector<size_t>> by_rank(
      static_cast<size_t>(spec.nranks));
  for (const auto& c : nested.chains) {
    by_rank[static_cast<size_t>(c.id % spec.nranks)].push_back(
        c.gemms.size());
  }
  bool inner_skew = false;
  for (const auto& lens : by_rank) {
    if (lens.size() < 2) continue;
    const size_t longest = *std::max_element(lens.begin(), lens.end());
    const double avg =
        static_cast<double>(
            std::accumulate(lens.begin(), lens.end(), size_t{0})) /
        static_cast<double>(lens.size());
    inner_skew |= static_cast<double>(longest) >= 1.5 * avg;
  }
  EXPECT_TRUE(inner_skew)
      << "no rank shows a dominant chain; inner Zipf tier is flat";
}

}  // namespace
}  // namespace mp::ptg
