# mp-explore schedule v1
workload t2_7
nranks 2
stealing 1
heartbeats 0
crash_victim -1
submissions 1
drop_budget 1
dup_budget 0
max_steps 200
max_messages 100
mutations skip_watchdog_progress_rule
steps:
exec 0 0
deliver 0 1 101 1
exec 0 2
deliver 0 1 101 2
exec 1 1
deliver 1 0 101 1
exec 0 4
exec 1 3
exec 1 5
deliver 1 0 106 2
steal 1
deliver 1 0 103 3
deliver 0 1 104 4
steal 1
deliver 1 0 103 4
deliver 0 1 104 5
