# mp-explore schedule v1
workload t2_7
nranks 2
stealing 0
heartbeats 0
crash_victim -1
submissions 2
drop_budget 1
dup_budget 0
max_steps 200
max_messages 40
mutations skip_seqwindow_rebase
steps:
exec 0 0
deliver 0 1 101 1
exec 0 2
deliver 0 1 101 2
exec 1 1
deliver 1 0 101 1
exec 0 4
exec 1 3
exec 1 5
deliver 1 0 106 2
drop 0 1 107 3
resend 1
deliver 1 0 106 3
deliver 0 1 107 4
reset
