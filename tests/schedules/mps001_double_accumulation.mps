# mp-explore schedule v1
workload t2_7
nranks 2
stealing 0
heartbeats 0
crash_victim 1
submissions 1
drop_budget 0
dup_budget 0
max_steps 200
max_messages 40
mutations skip_recovery_zero_reset
steps:
exec 0 0
exec 0 2
deliver 0 1 101 2
exec 1 1
deliver 1 0 101 1
exec 0 4
exec 1 5
crash 1
confirm 0 1
exec 0 1
exec 0 3
exec 0 5
