// Rank-failure tolerance under fabric faults (ctest labels: stress, fault).
//
// The recovery protocol's control messages (HEARTBEAT, probes, the
// dead-set-carrying LOCAL_DONE) and its replayed activations ride the same
// fault-injecting fabric as everything else, so a death can coincide with
// dropped, duplicated and reordered messages — and with work stealing
// moving tasks toward (or away from) the rank about to die. The contract
// across the whole matrix: the job either completes with the correct
// result or unwinds with a clean StateError; it never hangs, never
// double-counts a replayed deposit, and every per-rank and process-wide
// counter self-check (FailureStats, StealStats, SchedStats, FabricStats,
// MigrationLedger) holds afterwards. Designed to run under
// -DMP_SANITIZE=thread and =address.
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <string>
#include <vector>

#include "ga/migration.h"
#include "ptg/context.h"
#include "vc/cluster.h"
#include "vc/fabric.h"

namespace mp::ptg {
namespace {

void spin_for_us(int us) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  volatile double sink = 1.0;
  while (std::chrono::steady_clock::now() < until) sink = sink * 1.0000001;
  (void)sink;
}

double feed_val(int i) { return 0.25 * i + 3.0; }

int heavy_home(int i, int nranks) { return (i * 7 + 3) % nranks; }

struct FaultReport {
  bool killed = false;
  uint64_t dead_mask = 0;
  FailureStats failure;
  StealStats steal;
  std::string sched_validate = "unset";
};

/// The spread two-layer job from test_failure.cpp: FEED(i) round-robin,
/// HEAVY(i) homed by an affine map, so the victim owns roots and
/// dependents alike.
void run_spread(vc::RankCtx& rctx, int width, int spin_us, Options opts,
                std::vector<double>* got, std::mutex* mu,
                std::vector<FaultReport>* reports) {
  const int nranks = rctx.nranks();
  const int my_rank = rctx.rank();

  Taskpool pool;
  TaskClass feed;
  feed.name = "FEED";
  feed.rank_of = [nranks](const Params& p) { return p[0] % nranks; };
  feed.num_task_inputs = [](const Params&) { return 0; };
  feed.enumerate_rank = [nranks, width](int rank) {
    std::vector<Params> out;
    for (int i = rank; i < width; i += nranks) out.push_back(params_of(i));
    return out;
  };
  feed.body = [](TaskCtx& t) {
    t.set_output(0, make_buf(1, feed_val(t.params()[0])));
  };
  const auto feed_id = pool.add_class(std::move(feed));

  TaskClass heavy;
  heavy.name = "HEAVY";
  heavy.migratable = true;
  heavy.rank_of = [nranks](const Params& p) {
    return heavy_home(p[0], nranks);
  };
  heavy.num_task_inputs = [](const Params&) { return 1; };
  heavy.enumerate_rank = [nranks, width](int rank) {
    std::vector<Params> out;
    for (int i = 0; i < width; ++i) {
      if (heavy_home(i, nranks) == rank) out.push_back(params_of(i));
    }
    return out;
  };
  heavy.body = [spin_us, got, mu](TaskCtx& t) {
    const int i = t.params()[0];
    spin_for_us(spin_us);
    const double v = (*t.input(0))[0] * 3.0 + i;
    {
      std::lock_guard lock(*mu);
      (*got)[static_cast<size_t>(i)] = v;
    }
    t.set_output(0, make_buf(1, v));
  };
  const auto heavy_id = pool.add_class(std::move(heavy));
  pool.mutable_cls(feed_id).route_outputs =
      [heavy_id](const Params& p, std::vector<OutRoute>& r) {
        r.push_back({TaskKey{heavy_id, p}, 0, 0});
      };
  pool.mutable_cls(heavy_id).route_outputs =
      [](const Params&, std::vector<OutRoute>&) {};

  Context ctx(rctx, pool, opts);
  ctx.run();

  FaultReport rep;
  rep.killed = ctx.killed();
  rep.dead_mask = ctx.confirmed_dead_mask();
  rep.failure = ctx.failure_stats();
  rep.steal = ctx.steal_stats();
  rep.sched_validate = ctx.scheduler_stats().validate();
  {
    std::lock_guard lock(*mu);
    (*reports)[static_cast<size_t>(my_rank)] = rep;
  }
}

struct StressOutcome {
  bool completed = false;       ///< cluster.run returned without throwing
  bool values_correct = false;  ///< every HEAVY value matches (if completed)
  std::string error;            ///< what() of the StateError (if any)
};

/// One stressed run: CrashPlan on `victim`, message faults per `faults`,
/// policy kRetry, optional stealing. Asserts the never-hang/never-corrupt
/// contract and every counter self-check; returns the outcome so callers
/// can assert completion on configurations where it is guaranteed.
StressOutcome stressed_run(uint64_t seed, vc::FaultConfig faults,
                           bool stealing, int width = 72,
                           uint64_t kill_after = 50) {
  const int nranks = 4, victim = 1;
  vc::FabricConfig cfg;
  cfg.faults = faults;
  cfg.fault_seed = seed;
  cfg.crash_plans.push_back({victim, kill_after});
  vc::Cluster cluster(nranks, cfg);
  ga::MigrationLedger ledger;
  std::vector<double> got(static_cast<size_t>(width), 0.0);
  std::vector<FaultReport> reports(static_cast<size_t>(nranks));
  std::mutex mu;

  StressOutcome out;
  try {
    cluster.run([&](vc::RankCtx& rctx) {
      Options opts;
      opts.num_workers = 2;
      opts.enable_failure_detection = true;
      opts.heartbeat_interval_ms = 2.0;
      // Wide suspicion/confirmation windows: on an oversubscribed CI box
      // (this repo's reference runner has a single core) a live peer's
      // comm thread can be starved for tens of milliseconds, and a false
      // confirmation would escalate "retry limit exhausted" spuriously.
      opts.suspect_after_ms = 60.0;
      opts.confirm_after_ms = 200.0;
      opts.on_rank_failure = FailurePolicy::kRetry;
      opts.retry_limit = 1;
      opts.termination_resend_ms = 20.0;
      // Keep a real watchdog as the never-hang backstop: generous enough
      // for recovery, far below the ctest timeout.
      opts.watchdog_timeout_ms = 1500.0;
      if (stealing) {
        opts.enable_stealing = true;
        opts.steal_cooldown_ms = 0.5;
        opts.steal_backoff_ms = 2.0;
        opts.steal_reply_timeout_ms = 20.0;
        opts.migration_observer = &ledger;
      }
      run_spread(rctx, width, /*spin_us=*/400, opts, &got, &mu, &reports);
    });
    out.completed = true;
  } catch (const StateError& e) {
    out.error = e.what();
  }

  // Whether the run completed or unwound, every self-check must hold.
  EXPECT_EQ(cluster.fabric().stats().validate(), "") << "seed " << seed;
  EXPECT_EQ(ledger.validate(), "") << "seed " << seed;
  for (int r = 0; r < nranks; ++r) {
    if (reports[static_cast<size_t>(r)].sched_validate == "unset") {
      continue;  // this rank never got to report (unwound early / killed)
    }
    EXPECT_EQ(reports[static_cast<size_t>(r)].failure.validate(), "")
        << "seed " << seed << " rank " << r;
    EXPECT_EQ(reports[static_cast<size_t>(r)].steal.validate(), "")
        << "seed " << seed << " rank " << r;
    EXPECT_EQ(reports[static_cast<size_t>(r)].sched_validate, "")
        << "seed " << seed << " rank " << r;
  }

  if (out.completed) {
    out.values_correct = true;
    for (int i = 0; i < width; ++i) {
      if (got[static_cast<size_t>(i)] != feed_val(i) * 3.0 + i) {
        out.values_correct = false;
        ADD_FAILURE() << "seed " << seed << ": HEAVY(" << i
                      << ") = " << got[static_cast<size_t>(i)] << ", want "
                      << feed_val(i) * 3.0 + i;
      }
    }
  }
  return out;
}

// --- reliable links + a death: completion is guaranteed, stealing or not ---

TEST(FailureStress, CleanFabricDeathCompletesAcrossSeeds) {
  for (const uint64_t seed : {11ull, 12ull, 13ull}) {
    const StressOutcome out =
        stressed_run(seed, vc::FaultConfig{}, /*stealing=*/false);
    EXPECT_TRUE(out.completed) << "seed " << seed << ": " << out.error;
    EXPECT_TRUE(out.values_correct) << "seed " << seed;
  }
}

TEST(FailureStress, DeathDuringActiveStealingCompletes) {
  // The victim both serves steal requests and (being loaded like everyone
  // else) can hold migrated-in work when it dies; the home ranks must
  // re-inject those tasks and the ledger must retire the corpse's entries
  // via reassigned(), not credits.
  for (const uint64_t seed : {21ull, 22ull, 23ull}) {
    const StressOutcome out =
        stressed_run(seed, vc::FaultConfig{}, /*stealing=*/true);
    EXPECT_TRUE(out.completed) << "seed " << seed << ": " << out.error;
    EXPECT_TRUE(out.values_correct) << "seed " << seed;
  }
}

// --- duplicated and reordered messages + a death: still exactly-once ---

TEST(FailureStress, DuplicationAndReorderAcrossADeath) {
  // Dups and reordering never lose information, so completion stays
  // guaranteed; the exactly-once filters (mailbox seq window, recovery
  // dup-deposit set) must absorb replayed activations racing the
  // originals.
  vc::FaultConfig faults;
  faults.dup_prob = 0.3;
  faults.reorder_jitter_us = 300.0;
  for (const uint64_t seed : {31ull, 32ull, 33ull}) {
    for (const bool stealing : {false, true}) {
      const StressOutcome out = stressed_run(seed, faults, stealing);
      EXPECT_TRUE(out.completed)
          << "seed " << seed << " stealing=" << stealing << ": " << out.error;
      EXPECT_TRUE(out.values_correct)
          << "seed " << seed << " stealing=" << stealing;
    }
  }
}

// --- dropped messages + a death: complete or unwind cleanly, never hang ---

TEST(FailureStress, DropsAcrossADeathNeverHangOrCorrupt) {
  // A dropped activation is unrecoverable by design (lineage replay fires
  // on deaths, not on silent message loss), so the watchdog StateError is
  // an acceptable outcome; a hang or a counter inconsistency is not. When
  // the run does complete, the values must be exact.
  vc::FaultConfig faults;
  faults.drop_prob = 0.02;
  faults.dup_prob = 0.1;
  faults.reorder_jitter_us = 200.0;
  for (const uint64_t seed : {41ull, 42ull, 43ull, 44ull}) {
    const StressOutcome out = stressed_run(seed, faults, /*stealing=*/true);
    if (out.completed) {
      EXPECT_TRUE(out.values_correct) << "seed " << seed;
    } else {
      EXPECT_TRUE(out.error.find("watchdog") != std::string::npos ||
                  out.error.find("aborted") != std::string::npos ||
                  out.error.find("confirmed dead") != std::string::npos)
          << "seed " << seed << ": unexpected error: " << out.error;
    }
  }
  // No completed-count floor: which messages hit the 2% drop window
  // shifts with host timing, so whether any given seed survives is not
  // deterministic. Guaranteed completion across a death is covered by
  // the clean-fabric and dup/reorder tests above; this test's contract
  // is strictly never-hang, never-corrupt, clean unwind.
}

// --- a second death exhausts retry_limit=1: structured escalation ---

TEST(FailureStress, SecondDeathEscalatesCleanly) {
  const int nranks = 5, width = 80;
  vc::FabricConfig cfg;
  cfg.crash_plans.push_back({1, 40});
  cfg.crash_plans.push_back({3, 120});
  vc::Cluster cluster(nranks, cfg);
  std::vector<double> got(static_cast<size_t>(width), 0.0);
  std::vector<FaultReport> reports(static_cast<size_t>(nranks));
  std::mutex mu;

  try {
    cluster.run([&](vc::RankCtx& rctx) {
      Options opts;
      opts.num_workers = 2;
      opts.enable_failure_detection = true;
      opts.heartbeat_interval_ms = 2.0;
      opts.suspect_after_ms = 60.0;
      opts.confirm_after_ms = 200.0;
      opts.on_rank_failure = FailurePolicy::kRetry;
      opts.retry_limit = 1;
      opts.watchdog_timeout_ms = 1500.0;
      run_spread(rctx, width, /*spin_us=*/800, opts, &got, &mu, &reports);
    });
    // Both kills fire well inside the run, so the second death must have
    // been seen — reaching here means it was tolerated, which breaks the
    // retry_limit contract.
    FAIL() << "a second death with retry_limit=1 must escalate";
  } catch (const StateError& e) {
    const std::string msg = e.what();
    EXPECT_TRUE(msg.find("confirmed dead") != std::string::npos ||
                msg.find("aborted") != std::string::npos)
        << msg;
  }
  EXPECT_EQ(cluster.fabric().stats().validate(), "");
  EXPECT_EQ(cluster.fabric().stats().ranks_killed, 2u);
}

}  // namespace
}  // namespace mp::ptg
