// Unit tests for src/support: RNG determinism and distribution sanity,
// online statistics, percentiles, error macros, logging levels.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "support/error.h"
#include "support/log.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/timing.h"

namespace mp {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform(-2.5, 3.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(Rng, UniformMeanApproximatelyCentered) {
  Rng r(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowInRange) {
  Rng r(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = r.next_below(17);
    EXPECT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);  // all residues hit in 1000 draws
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.25);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.25);
  EXPECT_EQ(s.max(), 3.25);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, Extremes) {
  std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  // sorted: 0, 10 -> p50 = 5
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 50.0), 5.0);
}

TEST(Percentile, RejectsOutOfRangeP) {
  EXPECT_THROW(percentile({1.0}, -1.0), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 101.0), InvalidArgument);
}

TEST(Error, RequireThrowsInvalidArgument) {
  EXPECT_THROW(MP_REQUIRE(false, "boom"), InvalidArgument);
  EXPECT_NO_THROW(MP_REQUIRE(true, "fine"));
}

TEST(Log, LevelRoundTrips) {
  const auto old = log::level();
  log::set_level(log::Level::kError);
  EXPECT_EQ(log::level(), log::Level::kError);
  // Messages below the level are dropped (no crash, no output assertions).
  MP_LOG_DEBUG("dropped %d", 1);
  MP_LOG_INFO("dropped %s", "too");
  log::set_level(old);
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.seconds(), 0.009);
  t.reset();
  EXPECT_LT(t.seconds(), 0.5);
}

}  // namespace
}  // namespace mp
