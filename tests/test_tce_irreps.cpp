// Tests for the point-group (irrep) symmetry extension of the tile
// machinery: real TCE carries spatial symmetry labels (beta-carotene is
// C2h); blocks must conserve the irrep product in addition to spin.
#include <gtest/gtest.h>

#include "sim/presets.h"
#include "sim/ptg_sim.h"
#include "tce/block_tensor.h"
#include "tce/inspector.h"
#include "tce/tiles.h"

namespace mp::tce {
namespace {

TEST(Irreps, XorGuardIsTotallySymmetricProduct) {
  EXPECT_TRUE(irrep_conserving(0, 0, 0, 0));
  EXPECT_TRUE(irrep_conserving(1, 1, 0, 0));
  EXPECT_TRUE(irrep_conserving(1, 0, 1, 0));
  EXPECT_TRUE(irrep_conserving(1, 0, 0, 1));
  EXPECT_FALSE(irrep_conserving(1, 0, 0, 0));
  EXPECT_TRUE(irrep_conserving(3, 2, 1, 0));  // 3^2=1, 1^0=1
  EXPECT_FALSE(irrep_conserving(3, 2, 1, 1));
}

TEST(Irreps, TilesGetCyclicLabels) {
  TileSpaceSpec spec;
  spec.n_occ_alpha = spec.n_occ_beta = 8;
  spec.n_virt_alpha = spec.n_virt_beta = 8;
  spec.tile_size = 2;
  spec.num_irreps = 4;
  TileSpace space(spec);
  // 4 tiles per spin per range -> irreps 0,1,2,3 cycle.
  const auto& occ = space.occ_tiles();
  EXPECT_EQ(occ[0].irrep, 0);
  EXPECT_EQ(occ[1].irrep, 1);
  EXPECT_EQ(occ[2].irrep, 2);
  EXPECT_EQ(occ[3].irrep, 3);
  EXPECT_EQ(occ[4].irrep, 0);  // beta range restarts
}

TEST(Irreps, RejectsNonAbelianCounts) {
  TileSpaceSpec spec;
  spec.n_occ_alpha = spec.n_occ_beta = 4;
  spec.n_virt_alpha = spec.n_virt_beta = 4;
  spec.tile_size = 2;
  spec.num_irreps = 3;
  EXPECT_THROW(TileSpace{spec}, InvalidArgument);
}

TEST(Irreps, SymmetryThinsBlockStructure) {
  TileSpaceSpec spec;
  spec.n_occ_alpha = spec.n_occ_beta = 8;
  spec.n_virt_alpha = spec.n_virt_beta = 16;
  spec.tile_size = 4;

  spec.num_irreps = 1;
  TileSpace c1(spec);
  BlockTensor4 t_c1(c1, {RangeKind::kVirt, RangeKind::kVirt, RangeKind::kOcc,
                         RangeKind::kOcc});
  spec.num_irreps = 2;
  TileSpace c2h(spec);
  BlockTensor4 t_c2h(c2h, {RangeKind::kVirt, RangeKind::kVirt,
                           RangeKind::kOcc, RangeKind::kOcc});
  // Two irreps keep roughly half the spin-allowed blocks.
  EXPECT_LT(t_c2h.index().num_blocks(), t_c1.index().num_blocks());
  EXPECT_GT(t_c2h.index().num_blocks(), t_c1.index().num_blocks() / 3);
}

TEST(Irreps, EveryRegisteredBlockSatisfiesBothGuards) {
  TileSpaceSpec spec;
  spec.n_occ_alpha = spec.n_occ_beta = 6;
  spec.n_virt_alpha = spec.n_virt_beta = 6;
  spec.tile_size = 3;
  spec.num_irreps = 2;
  TileSpace space(spec);
  BlockTensor4 t(space, {RangeKind::kVirt, RangeKind::kVirt, RangeKind::kOcc,
                         RangeKind::kOcc});
  const auto& vt = space.virt_tiles();
  const auto& ot = space.occ_tiles();
  for (const uint64_t key : t.index().keys()) {
    const auto& a = vt[(key >> 48) & 0xFFFF];
    const auto& b = vt[(key >> 32) & 0xFFFF];
    const auto& c = ot[(key >> 16) & 0xFFFF];
    const auto& d = ot[key & 0xFFFF];
    EXPECT_TRUE(spin_conserving(a.spin, b.spin, c.spin, d.spin));
    EXPECT_TRUE(irrep_conserving(a.irrep, b.irrep, c.irrep, d.irrep));
  }
}

TEST(Irreps, C2hPresetHasWiderChainLengthSpread) {
  const auto c1 = sim::make_preset("beta_carotene_32");
  const auto c2h = sim::make_preset("beta_carotene_c2h");
  const auto s1 = c1.plan.stats();
  const auto s2 = c2h.plan.stats();
  // Symmetry removes work and increases relative length variance.
  EXPECT_LT(s2.num_gemms, s1.num_gemms);
  const double rel1 = static_cast<double>(s1.max_chain_len - s1.min_chain_len) /
                      s1.mean_chain_len;
  const double rel2 = static_cast<double>(s2.max_chain_len - s2.min_chain_len) /
                      s2.mean_chain_len;
  EXPECT_GT(rel2, rel1);
}

TEST(Irreps, C2hPresetSimulates) {
  const auto p = sim::make_preset("beta_carotene_c2h");
  sim::GraphOptions gopts;
  gopts.variant = VariantConfig::v5();
  gopts.nodes = 8;
  const auto g = sim::build_graph(p.plan, gopts);
  sim::SimOptions sopts;
  sopts.cores_per_node = 4;
  const auto res = sim::simulate_ptg(g, sopts);
  EXPECT_GT(res.makespan, 0.0);
}

}  // namespace
}  // namespace mp::tce
