// mp-explore model-checker tests (DESIGN.md §12).
//
// Three kinds of coverage:
//  - exhaustive exploration of the small protocol configs must be CLEAN
//    and COMPLETE on the current tree (the protocols as shipped have no
//    reachable MPS violation at these sizes);
//  - each seeded protocol mutation must produce its DISTINCT MPS code,
//    with a minimized schedule that replays deterministically;
//  - the pinned schedules under tests/schedules/ are regression anchors:
//    they re-execute byte-for-byte identically on every run.
#include "analysis/explore.h"

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "analysis/explore_model.h"
#include "gtest/gtest.h"

namespace mp::analysis {
namespace {

#ifndef MP_TEST_SCHEDULE_DIR
#error "build must define MP_TEST_SCHEDULE_DIR (tests/CMakeLists.txt)"
#endif

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

Schedule load_schedule(const std::string& name) {
  return Schedule::from_text(read_file(std::string(MP_TEST_SCHEDULE_DIR) +
                                       "/" + name));
}

// ---------------------------------------------------------------------------
// Model workload sanity

TEST(ExploreModel, WorkloadTasksIndexedById) {
  for (const char* kind : {"t2_7", "hh"}) {
    const ModelWorkload w = build_model_workload(kind, 2);
    ASSERT_FALSE(w.tasks.empty());
    EXPECT_EQ(w.tasks.size(), 2 * w.num_chains);
    double total = 0;
    for (size_t i = 0; i < w.tasks.size(); ++i) {
      EXPECT_EQ(w.tasks[i].id, static_cast<int>(i));
      if (i < w.num_chains) {
        EXPECT_TRUE(w.tasks[i].migratable);
        EXPECT_EQ(w.tasks[i].ndeps, 0);
        ASSERT_EQ(w.tasks[i].outs.size(), 1u);
      } else {
        EXPECT_FALSE(w.tasks[i].migratable);
        EXPECT_EQ(w.tasks[i].ndeps, 1);
        EXPECT_GE(w.tasks[i].cell, 0);
        total += w.tasks[i].value;
      }
    }
    double ref = 0;
    for (const auto& [cell, v] : w.reference) ref += v;
    EXPECT_EQ(total, ref);
  }
}

TEST(ExploreModel, WorkloadRejectsUnknownKind) {
  EXPECT_THROW(build_model_workload("nope", 2), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Exhaustive exploration: the shipped protocols are clean

TEST(ExploreExhaustive, CleanTwoRankT27) {
  ExploreConfig cfg;
  cfg.nranks = 2;
  const ExploreResult res = explore_exhaustive(cfg);
  EXPECT_TRUE(res.findings.empty())
      << (res.findings.empty() ? "" : render({res.findings[0].diag}));
  EXPECT_TRUE(res.complete);
  EXPECT_GT(res.stats.states, 50u);
  RecordProperty("explored_states", static_cast<int>(res.stats.states));
}

TEST(ExploreExhaustive, CleanTwoRankStealing) {
  ExploreConfig cfg;
  cfg.nranks = 2;
  cfg.stealing = true;
  const ExploreResult res = explore_exhaustive(cfg);
  EXPECT_TRUE(res.findings.empty());
  EXPECT_TRUE(res.complete);
  EXPECT_GT(res.stats.states, 1000u);
}

TEST(ExploreExhaustive, CleanCrashRecovery) {
  ExploreConfig cfg;
  cfg.nranks = 2;
  cfg.crash_victim = 1;
  const ExploreResult res = explore_exhaustive(cfg);
  EXPECT_TRUE(res.findings.empty());
  EXPECT_TRUE(res.complete);
}

TEST(ExploreExhaustive, CleanResetWithDrop) {
  ExploreConfig cfg;
  cfg.nranks = 2;
  cfg.submissions = 2;
  cfg.drop_budget = 1;
  const ExploreResult res = explore_exhaustive(cfg);
  EXPECT_TRUE(res.findings.empty());
  EXPECT_TRUE(res.complete);
  // Some stalls are expected: a dropped message can strand the job, which
  // the production watchdog (not the checker) handles.
  EXPECT_GT(res.stats.diagnosed, 0u);
}

TEST(ExploreExhaustive, CleanThreeRanksHH) {
  ExploreConfig cfg;
  cfg.workload = "hh";
  cfg.nranks = 3;
  const ExploreResult res = explore_exhaustive(cfg);
  EXPECT_TRUE(res.findings.empty());
  EXPECT_TRUE(res.complete);
}

TEST(ExploreExhaustive, TransitionBudgetCutsSearch) {
  ExploreConfig cfg;
  cfg.nranks = 2;
  cfg.stealing = true;
  cfg.max_transitions = 500;
  const ExploreResult res = explore_exhaustive(cfg);
  EXPECT_FALSE(res.complete);
  // The budget is checked between steps; a backtrack re-execution may
  // overshoot it by at most one path depth.
  EXPECT_GE(res.stats.transitions, 500u);
  EXPECT_LE(res.stats.transitions,
            500u + static_cast<uint64_t>(res.stats.max_depth) + 1);
}

// ---------------------------------------------------------------------------
// Seeded mutations: distinct MPS codes

ExploreConfig watchdog_cfg() {
  ExploreConfig cfg;
  cfg.nranks = 2;
  cfg.stealing = true;
  cfg.drop_budget = 1;
  cfg.max_messages = 100;
  cfg.mutations.skip_watchdog_progress_rule = true;
  return cfg;
}

ExploreConfig recovery_cfg() {
  ExploreConfig cfg;
  cfg.nranks = 2;
  cfg.crash_victim = 1;
  cfg.mutations.skip_recovery_zero_reset = true;
  return cfg;
}

ExploreConfig rebase_cfg() {
  ExploreConfig cfg;
  cfg.nranks = 2;
  cfg.submissions = 2;
  cfg.drop_budget = 1;
  cfg.mutations.skip_seqwindow_rebase = true;
  return cfg;
}

TEST(ExploreMutation, WatchdogProgressRuleYieldsLivelock) {
  const ExploreResult res = explore_exhaustive(watchdog_cfg());
  ASSERT_FALSE(res.findings.empty());
  EXPECT_EQ(res.findings[0].diag.code, "MPS006");
  // The same config WITHOUT the mutation is clean.
  ExploreConfig clean = watchdog_cfg();
  clean.mutations = {};
  const ExploreResult control = explore_exhaustive(clean);
  EXPECT_TRUE(control.findings.empty());
}

TEST(ExploreMutation, RecoveryZeroResetYieldsDoubleAccumulation) {
  const ExploreResult res = explore_exhaustive(recovery_cfg());
  ASSERT_FALSE(res.findings.empty());
  EXPECT_EQ(res.findings[0].diag.code, "MPS001");
  ExploreConfig clean = recovery_cfg();
  clean.mutations = {};
  const ExploreResult control = explore_exhaustive(clean);
  EXPECT_TRUE(control.findings.empty());
  EXPECT_TRUE(control.complete);
}

TEST(ExploreMutation, SeqWindowRebaseYieldsWindowLeak) {
  const ExploreResult res = explore_exhaustive(rebase_cfg());
  ASSERT_FALSE(res.findings.empty());
  EXPECT_EQ(res.findings[0].diag.code, "MPS005");
  ExploreConfig clean = rebase_cfg();
  clean.mutations = {};
  const ExploreResult control = explore_exhaustive(clean);
  EXPECT_TRUE(control.findings.empty());
  EXPECT_TRUE(control.complete);
}

TEST(ExploreMutation, ThreeMutationsYieldThreeDistinctCodes) {
  std::set<std::string> codes;
  for (const ExploreConfig& cfg :
       {watchdog_cfg(), recovery_cfg(), rebase_cfg()}) {
    const ExploreResult res = explore_exhaustive(cfg);
    ASSERT_FALSE(res.findings.empty());
    codes.insert(res.findings[0].diag.code);
  }
  EXPECT_EQ(codes.size(), 3u);
}

TEST(ExploreMutation, FindingScheduleReplaysToSameCode) {
  const ExploreResult res = explore_exhaustive(recovery_cfg());
  ASSERT_FALSE(res.findings.empty());
  const ReplayResult rr = replay_schedule(res.findings[0].schedule);
  ASSERT_TRUE(rr.ok) << rr.error;
  EXPECT_TRUE(has_code(rr.findings, "MPS001"));
}

TEST(ExploreMutation, MinimizationPreservesCodeAndLegality) {
  const ExploreResult res = explore_exhaustive(recovery_cfg());
  ASSERT_FALSE(res.findings.empty());
  const Schedule minimized =
      minimize_schedule(res.findings[0].schedule, "MPS001");
  EXPECT_LE(minimized.steps.size(), res.findings[0].schedule.steps.size());
  const ReplayResult rr = replay_schedule(minimized);
  ASSERT_TRUE(rr.ok) << rr.error;
  EXPECT_TRUE(has_code(rr.findings, "MPS001"));
}

// ---------------------------------------------------------------------------
// Pinned regression schedules

struct Pinned {
  const char* file;
  const char* code;
};

const Pinned kPinned[] = {
    {"mps001_double_accumulation.mps", "MPS001"},
    {"mps005_window_leak.mps", "MPS005"},
    {"mps006_watchdog_livelock.mps", "MPS006"},
};

TEST(ExplorePinned, SchedulesReplayToTheirCode) {
  for (const Pinned& p : kPinned) {
    const Schedule sched = load_schedule(p.file);
    const ReplayResult rr = replay_schedule(sched);
    ASSERT_TRUE(rr.ok) << p.file << ": " << rr.error;
    EXPECT_TRUE(has_code(rr.findings, p.code))
        << p.file << " expected " << p.code << " got\n" << render(rr.findings);
  }
}

TEST(ExplorePinned, ReplayIsDeterministicAcrossRuns) {
  for (const Pinned& p : kPinned) {
    const Schedule sched = load_schedule(p.file);
    const ReplayResult first = replay_schedule(sched);
    ASSERT_TRUE(first.ok) << first.error;
    const std::string rendered = render(first.findings);
    for (int run = 1; run < 5; ++run) {
      const ReplayResult again = replay_schedule(sched);
      ASSERT_TRUE(again.ok);
      EXPECT_EQ(render(again.findings), rendered) << p.file;
      EXPECT_EQ(again.fingerprint, first.fingerprint) << p.file;
    }
  }
}

// ---------------------------------------------------------------------------
// Schedule format

TEST(ExploreSchedule, TextRoundTrip) {
  const Schedule sched = load_schedule("mps006_watchdog_livelock.mps");
  const Schedule back = Schedule::from_text(sched.to_text());
  EXPECT_EQ(back.steps.size(), sched.steps.size());
  for (size_t i = 0; i < sched.steps.size(); ++i) {
    EXPECT_TRUE(back.steps[i] == sched.steps[i]) << "step " << i;
  }
  EXPECT_EQ(back.to_text(), sched.to_text());
}

TEST(ExploreSchedule, ChoiceStrParseRoundTrip) {
  const Choice samples[] = {
      {ChoiceKind::kDeliver, 0, 1, 101, 7},
      {ChoiceKind::kDrop, 1, 0, 106, 3},
      {ChoiceKind::kDuplicate, 1, 0, 104, 9},
      {ChoiceKind::kExecute, 0, 5, 0, 0},
      {ChoiceKind::kStealTick, 1, -1, 0, 0},
      {ChoiceKind::kStealTimeout, 0, -1, 0, 0},
      {ChoiceKind::kResendTick, 1, -1, 0, 0},
      {ChoiceKind::kHeartbeatTick, 0, -1, 0, 0},
      {ChoiceKind::kConfirmDeath, 0, 1, 0, 0},
      {ChoiceKind::kCrash, 1, -1, 0, 0},
      {ChoiceKind::kReset, -1, -1, 0, 0},
  };
  for (const Choice& c : samples) {
    const std::optional<Choice> back = Choice::parse(c.str());
    ASSERT_TRUE(back.has_value()) << c.str();
    EXPECT_TRUE(*back == c) << c.str();
  }
  EXPECT_FALSE(Choice::parse("frobnicate 1 2").has_value());
  EXPECT_FALSE(Choice::parse("deliver 0 1").has_value());
}

TEST(ExploreSchedule, FromTextRejectsMalformedInput) {
  EXPECT_THROW(Schedule::from_text("steps:\nexec 0 0\n"), InvalidArgument);
  EXPECT_THROW(Schedule::from_text("# mp-explore schedule v1\nnranks 2\n"),
               InvalidArgument);
  EXPECT_THROW(
      Schedule::from_text(
          "# mp-explore schedule v1\nsteps:\nnot-a-choice 1 2\n"),
      InvalidArgument);
}

TEST(ExploreSchedule, ReplayRejectsIllegalStep) {
  Schedule sched;
  sched.config.nranks = 2;
  sched.steps.push_back({ChoiceKind::kExecute, 0, 999, 0, 0});
  const ReplayResult rr = replay_schedule(sched);
  EXPECT_FALSE(rr.ok);
  EXPECT_NE(rr.error.find("step 1"), std::string::npos) << rr.error;
}

// ---------------------------------------------------------------------------
// Random walk fallback

TEST(ExploreRandomWalk, FindsSeededBugWithinBudget) {
  // The recovery mutation has dense failing paths: a modest seeded walk
  // budget finds it without exhaustion.
  const ExploreResult res =
      explore_random_walk(recovery_cfg(), /*walks=*/2000, /*seed=*/42);
  ASSERT_FALSE(res.findings.empty());
  EXPECT_EQ(res.findings[0].diag.code, "MPS001");
  EXPECT_FALSE(res.complete);  // sampling never proves absence
  const ReplayResult rr = replay_schedule(res.findings[0].schedule);
  ASSERT_TRUE(rr.ok) << rr.error;
  EXPECT_TRUE(has_code(rr.findings, "MPS001"));
}

TEST(ExploreRandomWalk, CleanConfigStaysClean) {
  ExploreConfig cfg;
  cfg.nranks = 2;
  cfg.stealing = true;
  const ExploreResult res = explore_random_walk(cfg, 200, 7);
  EXPECT_TRUE(res.findings.empty());
}

TEST(ExploreRandomWalk, BudgetEnvOverridesFallback) {
  ASSERT_EQ(unsetenv("MP_EXPLORE_BUDGET"), 0);
  EXPECT_EQ(explore_walk_budget(123), 123u);
  ASSERT_EQ(setenv("MP_EXPLORE_BUDGET", "456", 1), 0);
  EXPECT_EQ(explore_walk_budget(123), 456u);
  ASSERT_EQ(setenv("MP_EXPLORE_BUDGET", "0", 1), 0);
  EXPECT_EQ(explore_walk_budget(123), 1u);  // clamped low
  ASSERT_EQ(setenv("MP_EXPLORE_BUDGET", "99999999", 1), 0);
  EXPECT_EQ(explore_walk_budget(123), 1000000u);  // clamped high
  ASSERT_EQ(unsetenv("MP_EXPLORE_BUDGET"), 0);
}

// ---------------------------------------------------------------------------
// Config validation

TEST(ExploreConfigChecks, RejectsBadConfigs) {
  {
    ExploreConfig cfg;
    cfg.nranks = 1;
    EXPECT_THROW(explore_exhaustive(cfg), InvalidArgument);
  }
  {
    ExploreConfig cfg;
    cfg.crash_victim = 0;  // the coordinator cannot crash in the model
    EXPECT_THROW(explore_exhaustive(cfg), InvalidArgument);
  }
  {
    ExploreConfig cfg;
    cfg.crash_victim = 5;  // out of range for 2 ranks
    EXPECT_THROW(explore_exhaustive(cfg), InvalidArgument);
  }
}

}  // namespace
}  // namespace mp::analysis
