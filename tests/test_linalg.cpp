// Unit + property tests for src/linalg: GEMM against a naive reference over
// all transpose combinations and a size sweep, sort_4 permutation algebra,
// and the BLAS-1 helpers.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

#include "linalg/gemm.h"
#include "linalg/matrix.h"
#include "linalg/sort4.h"
#include "support/aligned_buf.h"
#include "support/rng.h"

namespace mp::linalg {
namespace {

// Naive triple-loop reference GEMM (column-major, same semantics as dgemm).
void ref_gemm(bool ta, bool tb, size_t m, size_t n, size_t k, double alpha,
              const double* a, size_t lda, const double* b, size_t ldb,
              double beta, double* c, size_t ldc) {
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (size_t kk = 0; kk < k; ++kk) {
        const double av = ta ? a[i * lda + kk] : a[kk * lda + i];
        const double bv = tb ? b[kk * ldb + j] : b[j * ldb + kk];
        acc += av * bv;
      }
      c[j * ldc + i] = alpha * acc + beta * c[j * ldc + i];
    }
  }
}

std::vector<double> random_vec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

struct GemmCase {
  char ta, tb;
  size_t m, n, k;
};

class GemmVsReference : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmVsReference, Matches) {
  const auto [ta, tb, m, n, k] = GetParam();
  const bool is_ta = (ta == 'T');
  const bool is_tb = (tb == 'T');
  // op(A) is m x k: stored as (m x k) if 'N', (k x m) if 'T'.
  const size_t lda = is_ta ? k : m;
  const size_t ldb = is_tb ? n : k;
  const size_t ldc = m;
  const auto a = random_vec(lda * (is_ta ? m : k), 1);
  const auto b = random_vec(ldb * (is_tb ? k : n), 2);
  auto c1 = random_vec(ldc * n, 3);
  auto c2 = c1;

  const double alpha = 1.25, beta = -0.5;
  dgemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta, c1.data(),
        ldc);
  ref_gemm(is_ta, is_tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
           c2.data(), ldc);
  for (size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1[i], c2[i], 1e-11) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, GemmVsReference,
    ::testing::Values(
        GemmCase{'N', 'N', 1, 1, 1}, GemmCase{'N', 'N', 5, 7, 3},
        GemmCase{'N', 'N', 64, 64, 64}, GemmCase{'N', 'N', 65, 63, 129},
        GemmCase{'T', 'N', 5, 7, 3}, GemmCase{'T', 'N', 64, 48, 130},
        GemmCase{'N', 'T', 5, 7, 3}, GemmCase{'N', 'T', 33, 65, 17},
        GemmCase{'T', 'T', 5, 7, 3}, GemmCase{'T', 'T', 70, 70, 70},
        GemmCase{'T', 'N', 128, 1, 128}, GemmCase{'N', 'N', 1, 128, 128}),
    [](const auto& info) {
      const auto& p = info.param;
      return std::string(1, p.ta) + p.tb + "_" + std::to_string(p.m) + "x" +
             std::to_string(p.n) + "x" + std::to_string(p.k);
    });

TEST(Gemm, BetaZeroOverwritesNaN) {
  // beta == 0 must overwrite even NaN garbage in C (BLAS convention).
  std::vector<double> a{1.0}, b{1.0};
  std::vector<double> c{std::nan("")};
  dgemm('N', 'N', 1, 1, 1, 1.0, a.data(), 1, b.data(), 1, 0.0, c.data(), 1);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
}

TEST(Gemm, AlphaZeroOnlyScalesC) {
  auto a = random_vec(16, 4);
  auto b = random_vec(16, 5);
  std::vector<double> c(16, 2.0);
  dgemm('N', 'N', 4, 4, 4, 0.0, a.data(), 4, b.data(), 4, 0.5, c.data(), 4);
  for (double v : c) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Gemm, EmptyKIsScaleOnly) {
  std::vector<double> c(4, 3.0);
  dgemm('N', 'N', 2, 2, 0, 1.0, nullptr, 2, nullptr, 2, 2.0, c.data(), 2);
  for (double v : c) EXPECT_DOUBLE_EQ(v, 6.0);
}

TEST(Gemm, RejectsBadTransposeFlag) {
  std::vector<double> x(1, 0.0);
  EXPECT_THROW(
      dgemm('X', 'N', 1, 1, 1, 1.0, x.data(), 1, x.data(), 1, 0.0, x.data(), 1),
      InvalidArgument);
}

TEST(Gemm, AccumulatesAcrossCalls) {
  // The CC chains rely on C += A*B across many calls: check associativity
  // of the accumulation against a single big reference GEMM.
  const size_t m = 12, n = 10, k = 40, pieces = 4;
  const auto a = random_vec(m * k, 6);
  const auto b = random_vec(k * n, 7);
  std::vector<double> c_chain(m * n, 0.0), c_once(m * n, 0.0);
  ref_gemm(false, false, m, n, k, 1.0, a.data(), m, b.data(), k, 1.0,
           c_once.data(), m);
  const size_t kb = k / pieces;
  for (size_t p = 0; p < pieces; ++p) {
    dgemm('N', 'N', m, n, kb, 1.0, a.data() + p * kb * m, m,
          b.data() + p * kb, k, 1.0, c_chain.data(), m);
  }
  for (size_t i = 0; i < c_chain.size(); ++i) {
    EXPECT_NEAR(c_chain[i], c_once[i], 1e-11);
  }
}

TEST(Blas1, DfillSetsAll) {
  std::vector<double> x(100, 1.0);
  dfill(x.size(), -2.5, x.data());
  for (double v : x) EXPECT_DOUBLE_EQ(v, -2.5);
}

TEST(Blas1, DaxpyAccumulates) {
  std::vector<double> x{1.0, 2.0, 3.0}, y{10.0, 20.0, 30.0};
  daxpy(3, 2.0, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
}

TEST(Blas1, DdotMatchesManual) {
  std::vector<double> x{1.0, -2.0, 3.0}, y{4.0, 5.0, -6.0};
  EXPECT_DOUBLE_EQ(ddot(3, x.data(), y.data()), 4.0 - 10.0 - 18.0);
}

TEST(Matrix, IndexingIsColumnMajor) {
  Matrix m(3, 2);
  m(2, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.data()[1 * 3 + 2], 7.0);
}

TEST(Matrix, NormAndDiff) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 3.0;
  a(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  b(0, 0) = 3.5;
  b(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, b), 0.5);
}

TEST(Matrix, DiffRejectsShapeMismatch) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(Matrix::max_abs_diff(a, b), InvalidArgument);
}

// ---- sort_4 ----

using Perm = std::array<int, 4>;
using Dims = std::array<size_t, 4>;

// All 24 permutations of {0,1,2,3}.
std::vector<Perm> all_perms() {
  Perm p{0, 1, 2, 3};
  std::vector<Perm> out;
  do {
    out.push_back(p);
  } while (std::next_permutation(p.begin(), p.end()));
  return out;
}

size_t lin4(const Dims& d, size_t i0, size_t i1, size_t i2, size_t i3) {
  return ((i0 * d[1] + i1) * d[2] + i2) * d[3] + i3;
}

class Sort4AllPerms : public ::testing::TestWithParam<int> {};

TEST_P(Sort4AllPerms, PermutesCorrectly) {
  const Perm perm = all_perms()[static_cast<size_t>(GetParam())];
  const Dims d{3, 4, 2, 5};
  const auto in = random_vec(sort4_elems(d), 42);
  std::vector<double> out(in.size(), 0.0);
  sort_4(in.data(), out.data(), d, perm, 2.0);

  Dims od;
  for (int j = 0; j < 4; ++j) od[static_cast<size_t>(j)] = d[static_cast<size_t>(perm[static_cast<size_t>(j)])];
  for (size_t i0 = 0; i0 < d[0]; ++i0)
    for (size_t i1 = 0; i1 < d[1]; ++i1)
      for (size_t i2 = 0; i2 < d[2]; ++i2)
        for (size_t i3 = 0; i3 < d[3]; ++i3) {
          const std::array<size_t, 4> idx{i0, i1, i2, i3};
          const size_t o = lin4(od, idx[static_cast<size_t>(perm[0])],
                                idx[static_cast<size_t>(perm[1])],
                                idx[static_cast<size_t>(perm[2])],
                                idx[static_cast<size_t>(perm[3])]);
          EXPECT_DOUBLE_EQ(out[o], 2.0 * in[lin4(d, i0, i1, i2, i3)]);
        }
}

INSTANTIATE_TEST_SUITE_P(All24, Sort4AllPerms, ::testing::Range(0, 24));

TEST(Sort4, IdentityPermIsScaledCopy) {
  const Dims d{2, 3, 4, 5};
  const auto in = random_vec(sort4_elems(d), 1);
  std::vector<double> out(in.size());
  sort_4(in.data(), out.data(), d, {0, 1, 2, 3}, -1.5);
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], -1.5 * in[i]);
  }
}

TEST(Sort4, InverseRoundTrip) {
  // Applying a permutation then its inverse restores the input.
  const Dims d{4, 3, 5, 2};
  const Perm p{2, 0, 3, 1};
  Perm pinv{};
  for (int j = 0; j < 4; ++j) pinv[static_cast<size_t>(p[static_cast<size_t>(j)])] = j;
  const auto in = random_vec(sort4_elems(d), 2);
  std::vector<double> mid(in.size()), back(in.size());
  sort_4(in.data(), mid.data(), d, p, 2.0);
  Dims dmid;
  for (int j = 0; j < 4; ++j) dmid[static_cast<size_t>(j)] = d[static_cast<size_t>(p[static_cast<size_t>(j)])];
  sort_4(mid.data(), back.data(), dmid, pinv, 0.5);
  for (size_t i = 0; i < in.size(); ++i) EXPECT_DOUBLE_EQ(back[i], in[i]);
}

TEST(Sort4, AccumulatingFlavourAdds) {
  const Dims d{2, 2, 2, 2};
  const auto in = random_vec(16, 3);
  std::vector<double> out(16, 1.0);
  sort_4_acc(in.data(), out.data(), d, {0, 1, 2, 3}, 1.0);
  for (size_t i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(out[i], 1.0 + in[i]);
}

TEST(Sort4, RejectsNonPermutation) {
  const Dims d{2, 2, 2, 2};
  std::vector<double> in(16), out(16);
  EXPECT_THROW(sort_4(in.data(), out.data(), d, {0, 0, 1, 2}, 1.0),
               InvalidArgument);
  EXPECT_THROW(sort_4(in.data(), out.data(), d, {0, 1, 2, 4}, 1.0),
               InvalidArgument);
}

TEST(Sort4, PreservesSumUnderPermutation) {
  const Dims d{3, 5, 2, 4};
  const auto in = random_vec(sort4_elems(d), 5);
  std::vector<double> out(in.size());
  sort_4(in.data(), out.data(), d, {3, 1, 0, 2}, 1.0);
  const double s_in = std::accumulate(in.begin(), in.end(), 0.0);
  const double s_out = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_NEAR(s_in, s_out, 1e-12);
}

// Every perm, both flavours, must agree bit-for-bit with the generic
// reference path — the rotation fast paths reorder only the iteration, not
// the arithmetic (one multiply per element), so exact equality is required.
TEST_P(Sort4AllPerms, FastPathsMatchReferenceBitForBit) {
  const Perm perm = all_perms()[static_cast<size_t>(GetParam())];
  // Mixed dims so rows/cols of the rotation transposes exercise tile edges.
  const Dims d{5, 8, 3, 33};
  const auto in = random_vec(sort4_elems(d), 77);
  const auto seed = random_vec(sort4_elems(d), 78);

  std::vector<double> got(in.size()), want(in.size());
  sort_4(in.data(), got.data(), d, perm, -1.75);
  sort_4_reference(in.data(), want.data(), d, perm, -1.75);
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "plain flavour at " << i;
  }

  got = seed;
  want = seed;
  sort_4_acc(in.data(), got.data(), d, perm, 0.375);
  sort_4_acc_reference(in.data(), want.data(), d, perm, 0.375);
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "accumulate flavour at " << i;
  }
}

TEST(Sort4, FastPathPredicateCoversExactlyTheRotations) {
  int fast = 0;
  for (const Perm& p : all_perms()) fast += sort4_is_fast_path(p) ? 1 : 0;
  EXPECT_EQ(fast, 4);  // identity + the three rotations
  EXPECT_TRUE(sort4_is_fast_path({0, 1, 2, 3}));
  EXPECT_TRUE(sort4_is_fast_path({1, 2, 3, 0}));
  EXPECT_TRUE(sort4_is_fast_path({2, 3, 0, 1}));
  EXPECT_TRUE(sort4_is_fast_path({3, 0, 1, 2}));
  EXPECT_FALSE(sort4_is_fast_path({1, 0, 3, 2}));
}

// ---- exhaustive GEMM sweep --------------------------------------------------

// All transpose combos x odd/prime sizes x alpha/beta grid against the
// naive reference: catches packing edge cases (partial register tiles,
// kb < kKc) and the beta=0 / beta=1 store fast paths.
TEST(Gemm, ExhaustiveShapeAndScalarSweep) {
  const size_t sizes[] = {1, 3, 7, 17, 63, 65};
  const double scalars[] = {0.0, 1.0, -0.5};
  const char flags[] = {'N', 'T'};
  for (char ta : flags) {
    for (char tb : flags) {
      for (size_t m : sizes) {
        for (size_t n : sizes) {
          for (size_t k : sizes) {
            const size_t lda = (ta == 'T') ? k : m;
            const size_t ldb = (tb == 'T') ? n : k;
            const auto a = random_vec(lda * ((ta == 'T') ? m : k),
                                      1000 + m * 7 + n * 3 + k);
            const auto b = random_vec(ldb * ((tb == 'T') ? k : n),
                                      2000 + m + n * 5 + k * 11);
            const auto c0 = random_vec(m * n, 3000 + m + n + k);
            for (double alpha : scalars) {
              for (double beta : scalars) {
                std::vector<double> c1 = c0, c2 = c0;
                dgemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb,
                      beta, c1.data(), m);
                ref_gemm(ta == 'T', tb == 'T', m, n, k, alpha, a.data(), lda,
                         b.data(), ldb, beta, c2.data(), m);
                for (size_t i = 0; i < c1.size(); ++i) {
                  ASSERT_NEAR(c1[i], c2[i], 1e-11)
                      << ta << tb << " m=" << m << " n=" << n << " k=" << k
                      << " alpha=" << alpha << " beta=" << beta << " at "
                      << i;
                }
              }
            }
          }
        }
      }
    }
  }
}

// The packing workspaces come from the thread-local pool: after warm-up, a
// long GEMM loop must perform no heap allocations at all (the regression
// this guards against is a per-call pack-buffer malloc on the hot path).
TEST(Gemm, ZeroSteadyStateAllocations) {
  const size_t n = 96;
  const auto a = random_vec(n * n, 11);
  const auto b = random_vec(n * n, 12);
  std::vector<double> c(n * n, 0.0);
  // Warm-up sizes the pool slots for this shape.
  dgemm('N', 'N', n, n, n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n);
  dgemm('T', 'T', n, n, n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n);

  const uint64_t before = support::WorkspacePool::allocation_count();
  for (int iter = 0; iter < 1000; ++iter) {
    dgemm('N', 'N', n, n, n, 1.0, a.data(), n, b.data(), n, 1.0, c.data(),
          n);
  }
  EXPECT_EQ(support::WorkspacePool::allocation_count(), before)
      << "dgemm allocated on the steady-state hot path";
}

}  // namespace
}  // namespace mp::linalg
