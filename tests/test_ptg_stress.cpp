// Stress and property tests for the PTG runtime:
//  * randomized layered DAGs executed distributed and checked against a
//    serial evaluation of the same graph (parameterized over cluster
//    shape, scheduler policy and graph size);
//  * failure injection on a remote rank (the abort protocol must unwind
//    every rank instead of deadlocking);
//  * execution over a fabric with injected latency and bandwidth limits.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>

#include "ptg/context.h"
#include "support/rng.h"
#include "vc/cluster.h"

namespace mp::ptg {
namespace {

/// A reproducible random layered DAG. Task (l, i) combines its parents'
/// values; parents live in layer l-1.
struct RandomDag {
  int layers;
  int width;
  // parents[l][i] = parent indexes in layer l-1 (empty for l == 0).
  std::vector<std::vector<std::vector<int>>> parents;
  // children[l][i] = child indexes in layer l+1 with the input slot this
  // parent feeds.
  std::vector<std::vector<std::vector<std::pair<int, int>>>> children;

  static RandomDag make(int layers, int width, uint64_t seed) {
    RandomDag d;
    d.layers = layers;
    d.width = width;
    Rng rng(seed);
    d.parents.assign(static_cast<size_t>(layers),
                     std::vector<std::vector<int>>(
                         static_cast<size_t>(width)));
    d.children.assign(
        static_cast<size_t>(layers),
        std::vector<std::vector<std::pair<int, int>>>(
            static_cast<size_t>(width)));
    for (int l = 1; l < layers; ++l) {
      for (int i = 0; i < width; ++i) {
        const int nparents = 1 + static_cast<int>(rng.next_below(3));
        for (int p = 0; p < nparents; ++p) {
          const int parent = static_cast<int>(rng.next_below(
              static_cast<uint64_t>(width)));
          auto& plist = d.parents[static_cast<size_t>(l)][static_cast<size_t>(i)];
          // avoid duplicate edges into the same slot structure
          bool dup = false;
          for (int existing : plist) dup |= (existing == parent);
          if (dup) continue;
          const int slot = static_cast<int>(plist.size());
          plist.push_back(parent);
          d.children[static_cast<size_t>(l - 1)][static_cast<size_t>(parent)]
              .emplace_back(i, slot);
        }
      }
    }
    return d;
  }

  /// Node-local combine function, deterministic in (l, i).
  static double combine(int l, int i, double input_sum) {
    return input_sum * 0.5 + static_cast<double>((l * 131 + i * 17) % 97) +
           1.0;
  }

  /// Serial evaluation of every node value.
  std::vector<std::vector<double>> evaluate() const {
    std::vector<std::vector<double>> val(
        static_cast<size_t>(layers),
        std::vector<double>(static_cast<size_t>(width), 0.0));
    for (int l = 0; l < layers; ++l) {
      for (int i = 0; i < width; ++i) {
        double s = 0.0;
        for (int p : parents[static_cast<size_t>(l)][static_cast<size_t>(i)]) {
          s += val[static_cast<size_t>(l - 1)][static_cast<size_t>(p)];
        }
        val[static_cast<size_t>(l)][static_cast<size_t>(i)] =
            combine(l, i, s);
      }
    }
    return val;
  }
};

struct StressCase {
  int nranks, workers, layers, width;
  SchedPolicy policy;
  uint64_t seed;
};

class RandomDagStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(RandomDagStress, DistributedMatchesSerial) {
  const auto c = GetParam();
  const RandomDag dag = RandomDag::make(c.layers, c.width, c.seed);
  const auto expected = dag.evaluate();

  std::vector<double> got(static_cast<size_t>(c.width), 0.0);
  std::mutex mu;

  vc::Cluster cluster(c.nranks);
  cluster.run([&](vc::RankCtx& rctx) {
    const int nranks = rctx.nranks();
    auto owner = [nranks](int l, int i) { return (l * 7 + i * 13) % nranks; };

    Taskpool pool;
    TaskClass node;
    node.name = "NODE";
    node.rank_of = [owner](const Params& p) { return owner(p[0], p[1]); };
    node.num_task_inputs = [&dag](const Params& p) {
      return static_cast<int>(
          dag.parents[static_cast<size_t>(p[0])][static_cast<size_t>(p[1])]
              .size());
    };
    node.enumerate_rank = [&dag, owner, &c](int rank) {
      std::vector<Params> out;
      for (int l = 0; l < c.layers; ++l) {
        for (int i = 0; i < c.width; ++i) {
          if (owner(l, i) == rank) out.push_back(params_of(l, i));
        }
      }
      return out;
    };
    node.body = [&dag, &got, &mu, &c](TaskCtx& t) {
      const int l = t.params()[0], i = t.params()[1];
      double s = 0.0;
      const auto& plist =
          dag.parents[static_cast<size_t>(l)][static_cast<size_t>(i)];
      for (size_t slot = 0; slot < plist.size(); ++slot) {
        s += (*t.input(static_cast<int>(slot)))[0];
      }
      const double v = RandomDag::combine(l, i, s);
      if (l == c.layers - 1) {
        std::lock_guard lock(mu);
        got[static_cast<size_t>(i)] = v;
      }
      t.set_output(0, make_buf(1, v));
    };
    const auto node_id = pool.add_class(std::move(node));
    pool.mutable_cls(node_id).route_outputs =
        [&dag, node_id](const Params& p, std::vector<OutRoute>& r) {
          const auto& kids = dag.children[static_cast<size_t>(p[0])]
                                         [static_cast<size_t>(p[1])];
          for (const auto& [child, slot] : kids) {
            r.push_back({TaskKey{node_id, params_of(p[0] + 1, child)},
                         static_cast<int8_t>(slot), 0});
          }
        };

    Options opts;
    opts.num_workers = c.workers;
    opts.policy = c.policy;
    Context ctx(rctx, pool, opts);
    ctx.run();
    EXPECT_EQ(ctx.tasks_executed(), ctx.expected_tasks());
  });

  for (int i = 0; i < c.width; ++i) {
    EXPECT_DOUBLE_EQ(got[static_cast<size_t>(i)],
                     expected[static_cast<size_t>(c.layers - 1)]
                             [static_cast<size_t>(i)])
        << "sink " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomDagStress,
    ::testing::Values(
        StressCase{1, 1, 4, 6, SchedPolicy::kPriority, 1},
        StressCase{1, 4, 8, 10, SchedPolicy::kPriority, 2},
        StressCase{2, 2, 6, 8, SchedPolicy::kFifo, 3},
        StressCase{3, 2, 10, 12, SchedPolicy::kPriority, 4},
        StressCase{4, 3, 12, 16, SchedPolicy::kLifo, 5},
        StressCase{4, 2, 20, 8, SchedPolicy::kStealing, 6},
        StressCase{5, 2, 5, 25, SchedPolicy::kPriority, 7},
        StressCase{2, 4, 30, 6, SchedPolicy::kStealing, 8}),
    [](const auto& info) {
      const auto& c = info.param;
      return "r" + std::to_string(c.nranks) + "w" +
             std::to_string(c.workers) + "L" + std::to_string(c.layers) +
             "W" + std::to_string(c.width) + "s" + std::to_string(c.seed);
    });

// --- failure injection ---

TEST(FailureInjection, RemoteTaskFailureUnwindsAllRanks) {
  // A task on rank 1 throws mid-DAG. Without abort propagation rank 0
  // would wait forever for activations; the runtime must unwind everywhere
  // and surface an exception. This test completing (quickly) is the point.
  vc::Cluster cluster(3);
  EXPECT_THROW(
      cluster.run([&](vc::RankCtx& rctx) {
        Taskpool pool;
        TaskClass c;
        c.name = "maybe_fail";
        c.rank_of = [](const Params& p) { return p[0] % 3; };
        c.num_task_inputs = [](const Params& p) { return p[0] == 0 ? 0 : 1; };
        c.enumerate_rank = [](int rank) {
          std::vector<Params> out;
          for (int i = rank; i < 9; i += 3) out.push_back(params_of(i));
          return out;
        };
        c.body = [](TaskCtx& t) {
          if (t.params()[0] == 1) {
            throw std::runtime_error("injected failure");
          }
          t.set_output(0, make_buf(1, 1.0));
        };
        const auto id = pool.add_class(std::move(c));
        // One chain 0 -> 1 -> ... -> 8 hopping across ranks: when task 1
        // dies on rank 1, every downstream rank would starve without the
        // abort broadcast.
        pool.mutable_cls(id).route_outputs =
            [id](const Params& p, std::vector<OutRoute>& r) {
              if (p[0] < 8) {
                r.push_back({TaskKey{id, params_of(p[0] + 1)}, 0, 0});
              }
            };
        Context ctx(rctx, pool);
        ctx.run();
      }),
      std::exception);
}

TEST(FailureInjection, FirstErrorWinsOverAbortNoise) {
  // The originating rank reports the real error, not the secondary
  // "aborted by remote" StateError.
  vc::Cluster cluster(2);
  try {
    cluster.run([&](vc::RankCtx& rctx) {
      Taskpool pool;
      TaskClass c;
      c.name = "fail0";
      c.rank_of = [](const Params&) { return 0; };
      c.num_task_inputs = [](const Params&) { return 0; };
      c.enumerate_rank = [](int rank) {
        return rank == 0 ? std::vector<Params>{params_of(0)}
                         : std::vector<Params>{};
      };
      c.body = [](TaskCtx&) { throw DataError("the real problem"); };
      pool.add_class(std::move(c));
      Context ctx(rctx, pool);
      ctx.run();
    });
    FAIL() << "expected an exception";
  } catch (const DataError& e) {
    EXPECT_STREQ(e.what(), "the real problem");
  }
}

// --- slow-fabric execution ---

TEST(SlowFabric, ChainSurvivesLatencyAndBandwidthLimits) {
  vc::FabricConfig cfg;
  cfg.latency_us = 300.0;
  cfg.bandwidth_Bps = 50e6;
  vc::Cluster cluster(3, cfg);

  std::vector<double> finals(4, 0.0);
  std::mutex mu;
  cluster.run([&](vc::RankCtx& rctx) {
    Taskpool pool;
    TaskClass step;
    step.name = "STEP";
    step.rank_of = [](const Params& p) { return (p[0] + p[1]) % 3; };
    step.num_task_inputs = [](const Params& p) { return p[1] == 0 ? 0 : 1; };
    step.enumerate_rank = [](int rank) {
      std::vector<Params> out;
      for (int l1 = 0; l1 < 4; ++l1) {
        for (int l2 = 0; l2 < 6; ++l2) {
          if ((l1 + l2) % 3 == rank) out.push_back(params_of(l1, l2));
        }
      }
      return out;
    };
    step.body = [&](TaskCtx& t) {
      DataBuf buf = t.params()[1] == 0 ? make_buf(512, 1.0)
                                       : t.take_input(0);
      for (auto& x : *buf) x += 1.0;
      if (t.params()[1] == 5) {
        std::lock_guard lock(mu);
        finals[static_cast<size_t>(t.params()[0])] = (*buf)[0];
      } else {
        t.set_output(0, std::move(buf));
      }
    };
    const auto id = pool.add_class(std::move(step));
    pool.mutable_cls(id).route_outputs =
        [id](const Params& p, std::vector<OutRoute>& r) {
          if (p[1] < 5) {
            r.push_back({TaskKey{id, params_of(p[0], p[1] + 1)}, 0, 0});
          }
        };
    Context ctx(rctx, pool);
    ctx.run();
  });
  for (double v : finals) EXPECT_DOUBLE_EQ(v, 7.0);  // 1.0 + 6 increments
}

// size() is a relaxed atomic counter, safe to read from any thread with no
// locks. Hammer it from a dedicated reader while workers push/pop/steal,
// under every policy — TSan (the stress job) proves the absence of races,
// and the bounds check proves the counter never drifts outside [0, pushed].
TEST(SchedulerConcurrency, SizeIsLockFreeUnderConcurrentPushPop) {
  for (auto policy : {SchedPolicy::kPriority, SchedPolicy::kFifo,
                      SchedPolicy::kLifo, SchedPolicy::kStealing}) {
    SCOPED_TRACE(to_string(policy));
    constexpr int kWorkers = 3;
    constexpr int kPerWorker = 4000;
    auto sched = Scheduler::create(policy, kWorkers);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> popped{0};
    std::thread reader([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const size_t s = sched->size();
        ASSERT_LE(s, static_cast<size_t>(kWorkers) * kPerWorker);
      }
    });

    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        ReadyTask t;
        for (int i = 0; i < kPerWorker; ++i) {
          t.priority = i & 15;
          t.seq = static_cast<uint64_t>(w * kPerWorker + i);
          t.key = TaskKey{0, params_of(w, i)};
          sched->push(t, w);
          ReadyTask out;
          if ((i & 3) == 0 && sched->try_pop(out, w)) {
            popped.fetch_add(1, std::memory_order_relaxed);
          }
        }
        // Drain whatever is left, cooperatively with the other workers.
        ReadyTask out;
        while (sched->try_pop(out, w)) {
          popped.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& th : workers) th.join();
    // Stragglers: a worker can miss tasks pushed after its drain finished.
    ReadyTask out;
    while (sched->try_pop(out, 0)) {
      popped.fetch_add(1, std::memory_order_relaxed);
    }
    stop.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(popped.load(), static_cast<uint64_t>(kWorkers) * kPerWorker);
    EXPECT_EQ(sched->size(), 0u);
  }
}

}  // namespace
}  // namespace mp::ptg
