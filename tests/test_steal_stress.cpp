// Work-stealing under fabric faults (ctest labels: stress, steal).
//
// The steal protocol adds five message kinds (STEAL_REQUEST, STEAL_REPLY,
// CREDIT, LOCAL_DONE, JOB_DONE) to the activation traffic, and each of
// them can be dropped, duplicated or reordered by the fault-injecting
// fabric. The contract is the same as the shutdown stress suite's:
// either the job completes with the correct result — stolen tasks
// included — or it unwinds with a clean watchdog StateError; it never
// hangs, never double-executes a duplicated steal message, and always
// leaves the fabric, scheduler, steal and ledger counters internally
// consistent. Designed to run under -DMP_SANITIZE=thread and =address.
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <string>
#include <vector>

#include "ga/migration.h"
#include "ptg/context.h"
#include "support/rng.h"
#include "vc/cluster.h"

namespace mp::ptg {
namespace {

using std::chrono::seconds;
using std::chrono::steady_clock;

/// Reproducible random layered DAG (the shutdown-stress shape, kept local
/// so this suite stays self-contained). Ownership is deliberately skewed:
/// most of each layer lands on rank 0 so the steal agent has a victim.
struct StealDag {
  int layers, width;
  std::vector<std::vector<std::vector<int>>> parents;
  std::vector<std::vector<std::vector<std::pair<int, int>>>> children;

  static StealDag make(int layers, int width, uint64_t seed) {
    StealDag d;
    d.layers = layers;
    d.width = width;
    Rng rng(seed);
    d.parents.assign(static_cast<size_t>(layers),
                     std::vector<std::vector<int>>(
                         static_cast<size_t>(width)));
    d.children.assign(
        static_cast<size_t>(layers),
        std::vector<std::vector<std::pair<int, int>>>(
            static_cast<size_t>(width)));
    for (int l = 1; l < layers; ++l) {
      for (int i = 0; i < width; ++i) {
        const int nparents = 1 + static_cast<int>(rng.next_below(3));
        for (int p = 0; p < nparents; ++p) {
          const int parent =
              static_cast<int>(rng.next_below(static_cast<uint64_t>(width)));
          auto& plist =
              d.parents[static_cast<size_t>(l)][static_cast<size_t>(i)];
          bool dup = false;
          for (int existing : plist) dup |= (existing == parent);
          if (dup) continue;
          const int slot = static_cast<int>(plist.size());
          plist.push_back(parent);
          d.children[static_cast<size_t>(l - 1)][static_cast<size_t>(parent)]
              .emplace_back(i, slot);
        }
      }
    }
    return d;
  }

  /// Two thirds of every layer is homed on rank 0, the rest round-robin.
  static int owner(int l, int i, int nranks) {
    return i % 3 != 2 ? 0 : (l + i) % nranks;
  }

  static double combine(int l, int i, double input_sum) {
    return input_sum * 0.5 + static_cast<double>((l * 131 + i * 17) % 97) +
           1.0;
  }

  std::vector<std::vector<double>> evaluate() const {
    std::vector<std::vector<double>> val(
        static_cast<size_t>(layers),
        std::vector<double>(static_cast<size_t>(width), 0.0));
    for (int l = 0; l < layers; ++l) {
      for (int i = 0; i < width; ++i) {
        double s = 0.0;
        for (int p : parents[static_cast<size_t>(l)][static_cast<size_t>(i)]) {
          s += val[static_cast<size_t>(l - 1)][static_cast<size_t>(p)];
        }
        val[static_cast<size_t>(l)][static_cast<size_t>(i)] = combine(l, i, s);
      }
    }
    return val;
  }
};

/// Busy-wait so ready queues stay populated long enough to be stolen from.
void spin_for_us(int us) {
  const auto until = steady_clock::now() + std::chrono::microseconds(us);
  volatile double sink = 1.0;
  while (steady_clock::now() < until) sink = sink * 1.0000001;
  (void)sink;
}

/// Build and run the taskpool for `dag` with stealing enabled. Sink-layer
/// values land in `got`. Post-run, every rank's counter self-checks must
/// hold whether the run completed or unwound.
void run_dag_stealing(const StealDag& dag, vc::RankCtx& rctx, Options opts,
                      ga::MigrationLedger* ledger, std::vector<double>* got,
                      std::mutex* mu, int spin_us = 100) {
  const int nranks = rctx.nranks();
  const int layers = dag.layers, width = dag.width;

  Taskpool pool;
  TaskClass node;
  node.name = "NODE";
  node.rank_of = [nranks](const Params& p) {
    return StealDag::owner(p[0], p[1], nranks);
  };
  node.num_task_inputs = [&dag](const Params& p) {
    return static_cast<int>(
        dag.parents[static_cast<size_t>(p[0])][static_cast<size_t>(p[1])]
            .size());
  };
  node.enumerate_rank = [&dag, nranks, layers, width](int rank) {
    std::vector<Params> out;
    for (int l = 0; l < layers; ++l) {
      for (int i = 0; i < width; ++i) {
        if (StealDag::owner(l, i, nranks) == rank) {
          out.push_back(params_of(l, i));
        }
      }
    }
    return out;
  };
  node.body = [&dag, got, mu, layers, spin_us](TaskCtx& t) {
    const int l = t.params()[0], i = t.params()[1];
    spin_for_us(spin_us);
    double s = 0.0;
    const auto& plist =
        dag.parents[static_cast<size_t>(l)][static_cast<size_t>(i)];
    for (size_t slot = 0; slot < plist.size(); ++slot) {
      s += (*t.input(static_cast<int>(slot)))[0];
    }
    const double v = StealDag::combine(l, i, s);
    if (l == layers - 1) {
      std::lock_guard lock(*mu);
      (*got)[static_cast<size_t>(i)] = v;
    }
    t.set_output(0, make_buf(1, v));
  };
  const auto node_id = pool.add_class(std::move(node));
  pool.mutable_cls(node_id).route_outputs =
      [&dag, node_id](const Params& p, std::vector<OutRoute>& r) {
        const auto& kids = dag.children[static_cast<size_t>(p[0])]
                                       [static_cast<size_t>(p[1])];
        for (const auto& [child, slot] : kids) {
          r.push_back({TaskKey{node_id, params_of(p[0] + 1, child)},
                       static_cast<int8_t>(slot), 0});
        }
      };

  opts.enable_stealing = true;
  opts.migration_observer = ledger;
  Context ctx(rctx, pool, opts);
  try {
    ctx.run();
  } catch (...) {
    // Even an unwound rank must leave consistent counter snapshots.
    EXPECT_EQ(ctx.scheduler_stats().validate(), "") << "rank " << rctx.rank();
    EXPECT_EQ(ctx.steal_stats().validate(), "") << "rank " << rctx.rank();
    throw;
  }
  EXPECT_EQ(ctx.scheduler_stats().validate(), "") << "rank " << rctx.rank();
  EXPECT_EQ(ctx.steal_stats().validate(), "") << "rank " << rctx.rank();
}

// --- mixed drop/dup/reorder faults, seed sweep: complete or unwind ---

class StealFaultStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StealFaultStress, CompletesOrUnwindsCleanly) {
  const uint64_t seed = GetParam();
  vc::FabricConfig cfg;
  cfg.latency_us = 100.0;
  cfg.faults.drop_prob = 0.02;
  cfg.faults.dup_prob = 0.03;
  cfg.faults.reorder_jitter_us = 150.0;
  cfg.fault_seed = seed;
  vc::Cluster cluster(3, cfg);
  ga::MigrationLedger ledger;
  const StealDag dag = StealDag::make(9, 9, seed * 37 + 5);
  const auto expected = dag.evaluate();
  std::vector<double> got(static_cast<size_t>(dag.width), 0.0);
  std::mutex mu;

  const auto t0 = steady_clock::now();
  bool completed = false;
  try {
    cluster.run([&](vc::RankCtx& rctx) {
      Options opts;
      opts.num_workers = 3;
      opts.steal_cooldown_ms = 0.5;
      opts.watchdog_timeout_ms = 300.0;
      run_dag_stealing(dag, rctx, opts, &ledger, &got, &mu);
    });
    completed = true;
  } catch (const std::exception&) {
    // A dropped activation, steal reply or credit tripped a watchdog
    // somewhere; unwinding cleanly is the contract.
  }
  EXPECT_LT(steady_clock::now() - t0, seconds(30)) << "seed " << seed;
  EXPECT_EQ(cluster.fabric().stats().validate(), "") << "seed " << seed;
  EXPECT_EQ(ledger.validate(), "") << "seed " << seed;
  if (completed) {
    // Global completion implies every migration was credited home.
    EXPECT_EQ(ledger.in_flight(), 0u) << "seed " << seed;
    for (int i = 0; i < dag.width; ++i) {
      EXPECT_DOUBLE_EQ(got[static_cast<size_t>(i)],
                       expected[static_cast<size_t>(dag.layers - 1)]
                               [static_cast<size_t>(i)])
          << "sink " << i << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StealFaultStress,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// --- duplication + reordering alone must not cost correctness ---

TEST(StealStress, DupAndReorderOnlyCompletesCorrectly) {
  // No drops: the wire-sequence dedup makes every duplicated message —
  // activations, steal requests, steal replies with whole task batches,
  // credits — land exactly once, so the run must complete and match the
  // serial evaluation. A double-absorbed STEAL_REPLY would double-run
  // tasks and show up here as a wrong sink value or a diagnostic.
  for (uint64_t seed = 11; seed <= 13; ++seed) {
    vc::FabricConfig cfg;
    cfg.faults.dup_prob = 0.05;
    cfg.faults.reorder_jitter_us = 300.0;
    cfg.fault_seed = seed;
    vc::Cluster cluster(3, cfg);
    ga::MigrationLedger ledger;
    const StealDag dag = StealDag::make(8, 9, seed + 70);
    const auto expected = dag.evaluate();
    std::vector<double> got(static_cast<size_t>(dag.width), 0.0);
    std::mutex mu;

    cluster.run([&](vc::RankCtx& rctx) {
      Options opts;
      opts.num_workers = 3;
      opts.steal_cooldown_ms = 0.5;
      run_dag_stealing(dag, rctx, opts, &ledger, &got, &mu);
    });
    EXPECT_EQ(cluster.fabric().stats().validate(), "") << "seed " << seed;
    EXPECT_EQ(ledger.validate(), "") << "seed " << seed;
    EXPECT_EQ(ledger.in_flight(), 0u) << "seed " << seed;
    for (int i = 0; i < dag.width; ++i) {
      EXPECT_DOUBLE_EQ(got[static_cast<size_t>(i)],
                       expected[static_cast<size_t>(dag.layers - 1)]
                               [static_cast<size_t>(i)])
          << "sink " << i << " seed " << seed;
    }
  }
}

// --- heavy drops with stealing active: watchdog, never a hang ---

TEST(StealStress, HeavyDropsEndInCleanStateErrorNotHang) {
  // 80% drop swallows steal replies (losing migrated tasks in flight)
  // and completion credits (stranding the termination scheme); every
  // stalled rank's scaled watchdog must still end the run in seconds.
  vc::FabricConfig cfg;
  cfg.faults.drop_prob = 0.8;
  cfg.fault_seed = 17;
  vc::Cluster cluster(3, cfg);
  ga::MigrationLedger ledger;
  const StealDag dag = StealDag::make(8, 9, 23);
  std::vector<double> got(static_cast<size_t>(dag.width), 0.0);
  std::mutex mu;

  const auto t0 = steady_clock::now();
  try {
    cluster.run([&](vc::RankCtx& rctx) {
      Options opts;
      opts.num_workers = 3;
      opts.steal_cooldown_ms = 0.5;
      opts.watchdog_timeout_ms = 250.0;
      run_dag_stealing(dag, rctx, opts, &ledger, &got, &mu);
    });
    FAIL() << "an 80% drop rate cannot complete a cross-rank DAG";
  } catch (const StateError& e) {
    const std::string msg = e.what();
    EXPECT_TRUE(msg.find("PTG watchdog") != std::string::npos ||
                msg.find("aborted") != std::string::npos)
        << msg;
  }
  EXPECT_LT(steady_clock::now() - t0, seconds(30));
  EXPECT_EQ(cluster.fabric().stats().validate(), "");
  EXPECT_EQ(ledger.validate(), "");
}

// --- concurrent shutdown: a task failure while migrations are in flight ---

TEST(StealStress, TaskFailureDuringActiveStealingUnwindsEveryRank) {
  // One body throws mid-job while the steal agent is moving its
  // neighbours between ranks; the abort must reach every rank whether
  // the failing task ran at home or on a thief.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    vc::FabricConfig cfg;
    cfg.latency_us = 100.0;
    cfg.faults.reorder_jitter_us = 100.0;
    cfg.fault_seed = seed;
    vc::Cluster cluster(3, cfg);
    const auto t0 = steady_clock::now();
    EXPECT_THROW(
        cluster.run([&](vc::RankCtx& rctx) {
          Taskpool pool;
          TaskClass c;
          c.name = "FLAKY";
          c.rank_of = [](const Params&) { return 0; };
          c.num_task_inputs = [](const Params&) { return 0; };
          c.enumerate_rank = [](int rank) {
            std::vector<Params> out;
            if (rank == 0) {
              for (int i = 0; i < 60; ++i) out.push_back(params_of(i));
            }
            return out;
          };
          c.body = [seed](TaskCtx& t) {
            spin_for_us(200);
            if (t.params()[0] == static_cast<int>(30 + seed)) {
              throw std::runtime_error("injected failure");
            }
            t.set_output(0, make_buf(1, 1.0));
          };
          const auto id = pool.add_class(std::move(c));
          pool.mutable_cls(id).route_outputs =
              [](const Params&, std::vector<OutRoute>&) {};
          Options opts;
          opts.num_workers = 2;
          opts.enable_stealing = true;
          opts.steal_cooldown_ms = 0.5;
          Context ctx(rctx, pool, opts);
          ctx.run();
        }),
        std::exception);
    EXPECT_LT(steady_clock::now() - t0, seconds(20)) << "seed " << seed;
    EXPECT_EQ(cluster.fabric().stats().validate(), "") << "seed " << seed;
  }
}

// --- repeated full lifecycles with stealing shake shutdown races ---

TEST(StealStress, RepeatedStealingLifecyclesQuiesceCleanly) {
  for (int iter = 0; iter < 8; ++iter) {
    vc::FabricConfig cfg;
    cfg.latency_us = 50.0;
    cfg.faults.reorder_jitter_us = 50.0;
    cfg.fault_seed = static_cast<uint64_t>(iter);
    vc::Cluster cluster(3, cfg);
    ga::MigrationLedger ledger;
    const StealDag dag = StealDag::make(6, 7,
                                        static_cast<uint64_t>(iter) + 211);
    const auto expected = dag.evaluate();
    std::vector<double> got(static_cast<size_t>(dag.width), 0.0);
    std::mutex mu;
    cluster.run([&](vc::RankCtx& rctx) {
      Options opts;
      opts.num_workers = 2;
      opts.steal_cooldown_ms = 0.5;
      run_dag_stealing(dag, rctx, opts, &ledger, &got, &mu, /*spin_us=*/50);
    });
    EXPECT_EQ(cluster.fabric().stats().validate(), "") << "iter " << iter;
    EXPECT_EQ(ledger.validate(), "") << "iter " << iter;
    EXPECT_EQ(ledger.in_flight(), 0u) << "iter " << iter;
    for (int i = 0; i < dag.width; ++i) {
      EXPECT_DOUBLE_EQ(got[static_cast<size_t>(i)],
                       expected[static_cast<size_t>(dag.layers - 1)]
                               [static_cast<size_t>(i)])
          << "iter " << iter << " sink " << i;
    }
    // Cluster + Fabric destructors run here; a stuck steal reply or
    // comm thread would hang the test.
  }
}

}  // namespace
}  // namespace mp::ptg
