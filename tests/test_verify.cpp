// Tests for the mp-verify static passes (analysis/): positive runs over
// every variant and workload must verify clean, and seeded corruptions —
// dropped edges, duplicate writers, broken reduction fan-in, leaked
// buffers, cycles, duplicate tasks — must each be detected with their
// distinct stable diagnostic code.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "analysis/graph_verify.h"
#include "analysis/plan_verify.h"
#include "analysis/tce_verify.h"
#include "ga/global_array.h"
#include "ptg/context.h"
#include "support/error.h"
#include "tce/inspector.h"
#include "tce/ptg_build.h"
#include "tce/ptg_exec.h"
#include "tce/storage.h"
#include "tce/variants.h"
#include "vc/cluster.h"

namespace mp {
namespace {

using analysis::has_code;
using tce::RangeKind;

tce::TileSpaceSpec small_spec() {
  tce::TileSpaceSpec s;
  s.n_occ_alpha = 3;
  s.n_occ_beta = 3;
  s.n_virt_alpha = 5;
  s.n_virt_beta = 5;
  s.tile_size = 2;
  return s;
}

/// Owns the t2_7 workload every test verifies against: tile space, shapes,
/// (unfilled) Global Arrays, inspected plan. Cheap enough to build per test.
struct Workload {
  explicit Workload(int nranks = 3, tce::TileSpaceSpec spec = small_spec())
      : cluster(nranks),
        space(spec),
        v(space, {RangeKind::kVirt, RangeKind::kVirt, RangeKind::kVirt,
                  RangeKind::kVirt}),
        t(space, {RangeKind::kVirt, RangeKind::kVirt, RangeKind::kOcc,
                  RangeKind::kOcc}),
        r(space,
          {RangeKind::kVirt, RangeKind::kVirt, RangeKind::kOcc,
           RangeKind::kOcc},
          true, true),
        v_ga(&cluster, v.ga_size()),
        t_ga(&cluster, t.ga_size()),
        r_ga(&cluster, r.ga_size()),
        plan(tce::inspect_t2_7(space, {&v, &t, &r})),
        stores({{&v, &v_ga}, {&t, &t_ga}, {&r, &r_ga}}) {}

  vc::Cluster cluster;
  tce::TileSpace space;
  tce::BlockTensor4 v, t, r;
  ga::GlobalArray v_ga, t_ga, r_ga;
  tce::ChainPlan plan;
  tce::StoreList stores;
};

/// First chain with at least two GEMMs (needed by the corruption tests).
const tce::Chain& long_chain(const tce::ChainPlan& plan) {
  for (const auto& ch : plan.chains) {
    if (ch.gemms.size() >= 2) return ch;
  }
  throw StateError("test workload has no multi-GEMM chain");
}

// ---- positive: every variant of every workload verifies clean -------------

TEST(VerifyClean, AllVariantsOnT27) {
  Workload w;
  for (const auto& var : tce::VariantConfig::all()) {
    const auto rep = analysis::verify_variant(w.plan, w.stores, var, 3);
    EXPECT_TRUE(rep.clean()) << var.name << ":\n"
                             << analysis::render(rep.diags);
    EXPECT_GT(rep.num_tasks, 0u) << var.name;
    EXPECT_GT(rep.num_edges, 0u) << var.name;
  }
}

TEST(VerifyClean, AllVariantsOnIrrepsWorkload) {
  tce::TileSpaceSpec spec = small_spec();
  spec.n_virt_alpha = 6;
  spec.n_virt_beta = 6;
  spec.num_irreps = 4;
  Workload w(3, spec);
  for (const auto& var : tce::VariantConfig::all()) {
    const auto rep = analysis::verify_variant(w.plan, w.stores, var, 3);
    EXPECT_TRUE(rep.clean()) << var.name << ":\n"
                             << analysis::render(rep.diags);
  }
}

TEST(VerifyClean, HhLadderAndFused) {
  Workload base;
  tce::BlockTensor4 wshape(base.space, {RangeKind::kOcc, RangeKind::kOcc,
                                        RangeKind::kOcc, RangeKind::kOcc});
  ga::GlobalArray w_ga(&base.cluster, wshape.ga_size());
  const auto hh =
      tce::inspect_hh_ladder(base.space, {&wshape, &base.t, &base.r});
  const tce::StoreList hh_stores = {
      {&wshape, &w_ga}, {&base.t, &base.t_ga}, {&base.r, &base.r_ga}};

  const auto fused = tce::fuse_plans(base.plan, hh, {3, 1, 2});
  tce::StoreList fused_stores = base.stores;
  fused_stores.push_back({&wshape, &w_ga});

  for (const auto& var : tce::VariantConfig::all()) {
    const auto hh_rep = analysis::verify_variant(hh, hh_stores, var, 3);
    EXPECT_TRUE(hh_rep.clean()) << "hh_ladder " << var.name << ":\n"
                                << analysis::render(hh_rep.diags);
    const auto fu_rep = analysis::verify_variant(fused, fused_stores, var, 3);
    EXPECT_TRUE(fu_rep.clean()) << "fused " << var.name << ":\n"
                                << analysis::render(fu_rep.diags);
  }
}

TEST(VerifyClean, VariousRankCounts) {
  Workload w(1);
  for (int nranks : {1, 2, 5}) {
    const auto rep = analysis::verify_variant(w.plan, w.stores,
                                              tce::VariantConfig::v5(), nranks);
    EXPECT_TRUE(rep.clean()) << "nranks=" << nranks << ":\n"
                             << analysis::render(rep.diags);
  }
}

// ---- plan-layer corruptions ----------------------------------------------

TEST(VerifyNegative, DroppedGemmLinkIsMPP003) {
  Workload w;
  tce::ChainPlan bad = w.plan;
  for (auto& ch : bad.chains) {
    if (ch.gemms.size() >= 2) {
      ch.gemms.erase(ch.gemms.begin() + 1);  // L2 sequence now 0,2,3,...
      break;
    }
  }
  const auto diags = analysis::verify_plan(bad);
  ASSERT_FALSE(diags.empty());
  EXPECT_TRUE(has_code(diags, "MPP003")) << analysis::render(diags);
  EXPECT_TRUE(analysis::verify_plan(w.plan).empty()) << "pristine plan dirty";
}

TEST(VerifyNegative, DuplicateChainWriterIsMPP002) {
  Workload w;
  tce::ChainPlan bad = w.plan;
  tce::Chain dup = bad.chains.front();  // same c_key, same store triple
  dup.id = static_cast<int>(bad.chains.size());
  bad.chains.push_back(dup);
  const auto diags = analysis::verify_plan(bad);
  EXPECT_TRUE(has_code(diags, "MPP002")) << analysis::render(diags);
}

// ---- graph-layer corruptions ---------------------------------------------

TEST(VerifyNegative, DroppedEdgeIsMPV007) {
  Workload w;
  auto build = tce::build_ptg(w.plan, w.stores, tce::VariantConfig::v3(), 3);
  // Drop one READ_A instance outright: its GEMM's slot 0 is never fed.
  const auto victim = ptg::params_of(long_chain(w.plan).id, 0);
  auto& cls = build.pool.mutable_cls(build.ids.read_a);
  const auto old_enum = cls.enumerate_rank;
  cls.enumerate_rank = [old_enum, victim](int rank) {
    auto out = old_enum(rank);
    std::erase(out, victim);
    return out;
  };
  const auto diags = analysis::verify_graph(build.pool, 3);
  EXPECT_TRUE(has_code(diags, "MPV007")) << analysis::render(diags);
  EXPECT_FALSE(has_code(diags, "MPV001")) << "dropped edge is not a cycle";
}

TEST(VerifyNegative, DuplicateEdgeIsMPV006) {
  Workload w;
  auto build = tce::build_ptg(w.plan, w.stores, tce::VariantConfig::v3(), 3);
  // READ_A of one instance deposits its output twice into the same slot.
  const auto victim = ptg::params_of(long_chain(w.plan).id, 0);
  auto& cls = build.pool.mutable_cls(build.ids.read_a);
  const auto old_routes = cls.route_outputs;
  cls.route_outputs = [old_routes, victim](const ptg::Params& p,
                                           std::vector<ptg::OutRoute>& r) {
    old_routes(p, r);
    if (p == victim) old_routes(p, r);  // duplicate deposit
  };
  const auto diags = analysis::verify_graph(build.pool, 3);
  EXPECT_TRUE(has_code(diags, "MPV006")) << analysis::render(diags);
}

TEST(VerifyNegative, LeakedDataBufIsMPV010) {
  Workload w;
  auto build = tce::build_ptg(w.plan, w.stores, tce::VariantConfig::v2(), 3);
  // One SORT instance declares an output but routes it nowhere: its DataBuf
  // retain would never be released by a consumer.
  const auto victim = ptg::params_of(long_chain(w.plan).id);
  auto& cls = build.pool.mutable_cls(build.ids.sort);
  const auto old_routes = cls.route_outputs;
  cls.route_outputs = [old_routes, victim](const ptg::Params& p,
                                           std::vector<ptg::OutRoute>& r) {
    if (p == victim) return;  // leak: declared output, no consumer
    old_routes(p, r);
  };
  const auto diags = analysis::verify_graph(build.pool, 3);
  EXPECT_TRUE(has_code(diags, "MPV010")) << analysis::render(diags);
}

TEST(VerifyNegative, CycleIsMPV001) {
  Workload w;
  auto build = tce::build_ptg(w.plan, w.stores, tce::VariantConfig::v2(), 3);
  // Close a loop: READ_A(c,0) now waits on an input that SORT(c) provides,
  // so READ_A -> GEMM -> ... -> SORT -> READ_A can never start. Every slot
  // is fed (no dropped edge), so this must be reported as a cycle.
  const auto ra_victim = ptg::params_of(long_chain(w.plan).id, 0);
  auto& ra = build.pool.mutable_cls(build.ids.read_a);
  const auto old_inputs = ra.num_task_inputs;
  ra.num_task_inputs = [old_inputs, ra_victim](const ptg::Params& p) {
    return p == ra_victim ? 1 : old_inputs(p);
  };
  auto& sort = build.pool.mutable_cls(build.ids.sort);
  const auto old_routes = sort.route_outputs;
  const auto read_a_id = build.ids.read_a;
  sort.route_outputs = [old_routes, ra_victim, read_a_id](
                           const ptg::Params& p,
                           std::vector<ptg::OutRoute>& r) {
    old_routes(p, r);
    if (p[0] == ra_victim[0]) {
      r.push_back({ptg::TaskKey{read_a_id, ra_victim}, 0, 0});
    }
  };
  const auto diags = analysis::verify_graph(build.pool, 3);
  EXPECT_TRUE(has_code(diags, "MPV001")) << analysis::render(diags);
}

TEST(VerifyNegative, DuplicateTaskIsMPV002) {
  Workload w;
  auto build = tce::build_ptg(w.plan, w.stores, tce::VariantConfig::v5(), 3);
  auto& cls = build.pool.mutable_cls(build.ids.gemm);
  const auto old_enum = cls.enumerate_rank;
  cls.enumerate_rank = [old_enum](int rank) {
    auto out = old_enum(rank);
    if (rank == 0 && !out.empty()) out.push_back(out.front());
    return out;
  };
  const auto diags = analysis::verify_graph(build.pool, 3);
  EXPECT_TRUE(has_code(diags, "MPV002")) << analysis::render(diags);
}

// ---- TCE-layer corruption ------------------------------------------------

TEST(VerifyNegative, BadReductionFanInIsMPT001) {
  Workload w;
  const auto var = tce::VariantConfig::v3();
  auto build = tce::build_ptg(w.plan, w.stores, var, 3);
  // Drop one REDUCE node of a multi-GEMM chain: the reduction tree no
  // longer matches the chain's segmentation (len leaves need len-1 nodes).
  const auto victim = ptg::params_of(long_chain(w.plan).id, 0);
  auto& cls = build.pool.mutable_cls(build.ids.reduce);
  const auto old_enum = cls.enumerate_rank;
  cls.enumerate_rank = [old_enum, victim](int rank) {
    auto out = old_enum(rank);
    std::erase(out, victim);
    return out;
  };
  const auto graph = analysis::materialize_graph(build.pool, 3);
  const auto diags = analysis::verify_tce_graph(w.plan, var, build, graph);
  EXPECT_TRUE(has_code(diags, "MPT001")) << analysis::render(diags);
}

// ---- runtime integration: Context::validate_plan + the MP_VERIFY gate ----

TEST(MpVerifyGate, ValidatePlanIsCleanOnHealthyGraph) {
  Workload w(1);
  auto build = tce::build_ptg(w.plan, w.stores, tce::VariantConfig::v5(), 1);
  w.cluster.run([&](vc::RankCtx& rctx) {
    ptg::Context ctx(rctx, build.pool);
    const auto diags = ctx.validate_plan();
    EXPECT_TRUE(diags.empty()) << analysis::render(diags);
  });
}

TEST(MpVerifyGate, RunAbortsOnCorruptGraphWhenEnvSet) {
  Workload w(1);
  auto build = tce::build_ptg(w.plan, w.stores, tce::VariantConfig::v5(), 1);
  // Same corruption as DroppedEdgeIsMPV007: without the gate this graph
  // would deadlock the runtime (GEMM waits forever); with MP_VERIFY set
  // run() must refuse to start executing at all.
  const auto victim = ptg::params_of(long_chain(w.plan).id, 0);
  auto& cls = build.pool.mutable_cls(build.ids.read_a);
  const auto old_enum = cls.enumerate_rank;
  cls.enumerate_rank = [old_enum, victim](int rank) {
    auto out = old_enum(rank);
    std::erase(out, victim);
    return out;
  };
  ::setenv("MP_VERIFY", "1", 1);
  w.cluster.run([&](vc::RankCtx& rctx) {
    ptg::Context ctx(rctx, build.pool);
    EXPECT_THROW(ctx.run(), StateError);
  });
  ::unsetenv("MP_VERIFY");
}

TEST(MpVerifyGate, HealthyExecutionPassesWithEnvSet) {
  Workload w(2);
  ::setenv("MP_VERIFY", "1", 1);
  tce::PtgExecOptions opts;
  opts.variant = tce::VariantConfig::v3();
  opts.workers_per_rank = 2;
  w.cluster.run([&](vc::RankCtx& rctx) {
    const auto res = tce::execute_ptg(rctx, w.plan, w.stores, opts);
    EXPECT_GT(res.tasks_executed, 0u);
  });
  ::unsetenv("MP_VERIFY");
}

}  // namespace
}  // namespace mp
