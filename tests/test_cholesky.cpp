// Tests for the tiled-Cholesky app (the generality demonstration of the
// PTG runtime) and its unblocked kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/cholesky.h"
#include "linalg/cholesky.h"
#include "linalg/gemm.h"
#include "support/rng.h"
#include "vc/cluster.h"

namespace mp {
namespace {

TEST(PotrfKernel, FactorsKnownMatrix) {
  // A = [[4,2],[2,3]] -> L = [[2,0],[1,sqrt(2)]]
  std::vector<double> a{4.0, 2.0, 2.0, 3.0};  // column-major 2x2
  linalg::potrf_lower(2, a.data(), 2);
  EXPECT_DOUBLE_EQ(a[0], 2.0);
  EXPECT_DOUBLE_EQ(a[1], 1.0);
  EXPECT_DOUBLE_EQ(a[2], 0.0);  // upper zeroed
  EXPECT_NEAR(a[3], std::sqrt(2.0), 1e-14);
}

TEST(PotrfKernel, RejectsIndefiniteMatrix) {
  std::vector<double> a{1.0, 2.0, 2.0, 1.0};  // eigenvalues 3, -1
  EXPECT_THROW(linalg::potrf_lower(2, a.data(), 2), DataError);
}

TEST(PotrfKernel, ReconstructsRandomSpd) {
  const size_t n = 12;
  const auto a = apps::make_spd_matrix(n, 3);
  auto l = a;
  linalg::potrf_lower(n, l.data(), n);
  EXPECT_LT(apps::cholesky_residual(a, l, n), 1e-10);
}

TEST(TrsmKernel, SolvesAgainstTriangularFactor) {
  // L = [[2,0],[1,1]]; B = X * L^T  with X = [[1,2],[3,4]] (column-major).
  const std::vector<double> l{2.0, 1.0, 0.0, 1.0};
  const std::vector<double> x{1.0, 3.0, 2.0, 4.0};
  // B = X * L^T: B(i,j) = sum_k X(i,k) * L(j,k)
  std::vector<double> bmat(4, 0.0);
  linalg::dgemm('N', 'T', 2, 2, 2, 1.0, x.data(), 2, l.data(), 2, 0.0,
                bmat.data(), 2);
  linalg::trsm_rlt(2, 2, l.data(), 2, bmat.data(), 2);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(bmat[i], x[i], 1e-13);
}

TEST(SyrkKernel, UpdatesLowerTriangle) {
  // C -= A * A^T with A = I: diagonal decreases by 1, upper untouched.
  std::vector<double> a{1.0, 0.0, 0.0, 1.0};
  std::vector<double> c{5.0, 2.0, 99.0, 5.0};  // c[2] is upper (0,1)
  linalg::syrk_ln(2, 2, a.data(), 2, c.data(), 2);
  EXPECT_DOUBLE_EQ(c[0], 4.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
  EXPECT_DOUBLE_EQ(c[2], 99.0);  // upper triangle not referenced
  EXPECT_DOUBLE_EQ(c[3], 4.0);
}

struct CholeskyCase {
  int tiles, tile_size, nranks, workers;
};

class TiledCholesky : public ::testing::TestWithParam<CholeskyCase> {};

TEST_P(TiledCholesky, MatchesDirectFactorization) {
  const auto [tiles, tile_size, nranks, workers] = GetParam();
  const size_t n = static_cast<size_t>(tiles) * tile_size;
  const auto a = apps::make_spd_matrix(n, 7);

  vc::Cluster cluster(nranks);
  apps::TiledCholeskyOptions opts;
  opts.tiles = tiles;
  opts.tile_size = tile_size;
  opts.workers_per_rank = workers;
  const auto res = apps::tiled_cholesky(cluster, a, opts);

  EXPECT_LT(apps::cholesky_residual(a, res.l, n), 1e-9);

  auto direct = a;
  linalg::potrf_lower(n, direct.data(), n);
  double md = 0.0;
  for (size_t i = 0; i < n * n; ++i) {
    md = std::max(md, std::fabs(direct[i] - res.l[i]));
  }
  EXPECT_LT(md, 1e-10);

  // Task count: T potrf + T(T-1)/2 trsm + T(T-1)/2 syrk + C(T,3) gemm.
  const uint64_t T = static_cast<uint64_t>(tiles);
  const uint64_t expect =
      T + T * (T - 1) / 2 + T * (T - 1) / 2 + T * (T - 1) * (T - 2) / 6;
  EXPECT_EQ(res.tasks_executed, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TiledCholesky,
    ::testing::Values(CholeskyCase{1, 8, 1, 1}, CholeskyCase{2, 6, 1, 2},
                      CholeskyCase{4, 5, 2, 2}, CholeskyCase{5, 4, 3, 2},
                      CholeskyCase{6, 4, 4, 3}, CholeskyCase{8, 3, 2, 4}),
    [](const auto& info) {
      const auto& c = info.param;
      return "T" + std::to_string(c.tiles) + "b" +
             std::to_string(c.tile_size) + "r" + std::to_string(c.nranks) +
             "w" + std::to_string(c.workers);
    });

TEST(TiledCholeskyMisc, TracingRecordsAllTasks) {
  const size_t n = 4 * 4;
  const auto a = apps::make_spd_matrix(n, 11);
  vc::Cluster cluster(2);
  apps::TiledCholeskyOptions opts;
  opts.tiles = 4;
  opts.tile_size = 4;
  opts.enable_tracing = true;
  const auto res = apps::tiled_cholesky(cluster, a, opts);
  size_t compute_events = 0;
  for (const auto& e : res.trace.events()) compute_events += !e.is_comm;
  EXPECT_EQ(compute_events, res.tasks_executed);
}

TEST(TiledCholeskyMisc, RejectsBadArguments) {
  vc::Cluster cluster(1);
  apps::TiledCholeskyOptions opts;
  opts.tiles = 2;
  opts.tile_size = 4;
  std::vector<double> wrong_size(10, 0.0);
  EXPECT_THROW(apps::tiled_cholesky(cluster, wrong_size, opts),
               InvalidArgument);
}

TEST(TiledCholeskyMisc, IndefiniteMatrixSurfacesError) {
  const size_t n = 8;
  std::vector<double> a(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) a[i * n + i] = -1.0;  // negative definite
  vc::Cluster cluster(2);
  apps::TiledCholeskyOptions opts;
  opts.tiles = 2;
  opts.tile_size = 4;
  EXPECT_THROW(apps::tiled_cholesky(cluster, a, opts), DataError);
}

}  // namespace
}  // namespace mp
