// Tests for the CC module: model Hamiltonian integrity, MP2, CCSD
// convergence, exactness against FCI for two-electron systems, DIIS, the
// dense ladder kernel, and the paper's headline correctness claim (C9):
// CCSD driven through the distributed t2_7 kernel — original executor and
// all five PTG variants — reproduces the dense correlation energy to the
// 14th digit.
#include <gtest/gtest.h>

#include <cmath>

#include "cc/ccsd.h"
#include "cc/integration.h"
#include "cc/model.h"
#include "linalg/solve.h"
#include "support/rng.h"

namespace mp::cc {
namespace {

TEST(Model, SyntheticIntegralsAreValid) {
  const auto sys = make_synthetic(2, 3, 1.5, 0.08, 7);
  EXPECT_NO_THROW(sys.check_integrals());
  EXPECT_EQ(sys.n_occ(), 4);
  EXPECT_EQ(sys.n_virt(), 6);
  EXPECT_EQ(sys.n_spin_orbitals(), 10);
}

TEST(Model, PairingIntegralsAreValid) {
  const auto sys = make_pairing(4, 2, 1.0, 0.4);
  EXPECT_NO_THROW(sys.check_integrals());
  EXPECT_EQ(sys.n_occ(), 4);
  EXPECT_EQ(sys.n_virt(), 4);
}

TEST(Model, SpinLabelsFollowLayout) {
  const auto sys = make_synthetic(2, 2, 1.0, 0.05, 1);
  // occ: [0,1] alpha, [2,3] beta; virt: [4,5] alpha, [6,7] beta.
  EXPECT_EQ(sys.spin_of(0), 0);
  EXPECT_EQ(sys.spin_of(2), 1);
  EXPECT_EQ(sys.spin_of(4), 0);
  EXPECT_EQ(sys.spin_of(6), 1);
}

TEST(Model, FockIsCanonicalForPairing) {
  const auto sys = make_pairing(5, 2, 1.0, 0.3);
  // Occupied levels are shifted down by the pairing self-energy.
  EXPECT_DOUBLE_EQ(sys.f(0), 0.0 - 0.3);
  EXPECT_DOUBLE_EQ(sys.f(1), 1.0 - 0.3);
  // HOMO below LUMO.
  EXPECT_LT(sys.f(sys.n_occ() - 1), sys.f(sys.n_occ()));
}

TEST(Model, DeterministicInSeed) {
  const auto a = make_synthetic(2, 3, 1.5, 0.08, 42);
  const auto b = make_synthetic(2, 3, 1.5, 0.08, 42);
  EXPECT_EQ(a.eri, b.eri);
  const auto c = make_synthetic(2, 3, 1.5, 0.08, 43);
  EXPECT_NE(a.eri, c.eri);
}

TEST(Model, RejectsBadArguments) {
  EXPECT_THROW(make_synthetic(0, 3, 1.0, 0.1, 1), InvalidArgument);
  EXPECT_THROW(make_pairing(3, 3, 1.0, 0.1), InvalidArgument);
}

TEST(Mp2, NegativeCorrelationEnergy) {
  const auto sys = make_synthetic(2, 4, 1.5, 0.1, 3);
  EXPECT_LT(mp2_energy(sys), 0.0);
}

TEST(Mp2, ZeroCouplingGivesZero) {
  const auto sys = make_synthetic(2, 3, 1.5, 0.0, 3);
  EXPECT_DOUBLE_EQ(mp2_energy(sys), 0.0);
}

TEST(Mp2, ScalesQuadraticallyWithCoupling) {
  const auto weak = make_synthetic(2, 3, 2.0, 0.01, 5);
  const auto strong = make_synthetic(2, 3, 2.0, 0.02, 5);
  const double ratio = mp2_energy(strong) / mp2_energy(weak);
  EXPECT_NEAR(ratio, 4.0, 1e-9);  // same random stream scaled by 2
}

TEST(Ccsd, ConvergesOnSyntheticSystem) {
  const auto sys = make_synthetic(2, 4, 1.5, 0.1, 3);
  const auto res = run_ccsd(sys);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.e_corr, 0.0);
  EXPECT_NEAR(res.e_mp2, mp2_energy(sys), 1e-12);
}

TEST(Ccsd, MatchesMp2ForWeakCoupling) {
  // In the perturbative regime CCSD ~ MP2 to leading order.
  const auto sys = make_synthetic(2, 3, 2.0, 0.005, 9);
  const auto res = run_ccsd(sys);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.e_corr / res.e_mp2, 1.0, 0.05);
}

TEST(Ccsd, ExactForTwoElectrons_Synthetic) {
  // CCSD == FCI for 2-electron systems: the strongest end-to-end check of
  // the amplitude equations.
  const auto sys = make_synthetic(1, 4, 1.2, 0.15, 21);
  const auto res = run_ccsd(sys);
  ASSERT_TRUE(res.converged);
  const double e_fci = fci_two_electron_energy(sys);
  const double e_hf = sys.hf_energy();
  EXPECT_NEAR(e_hf + res.e_corr, e_fci, 1e-9);
}

TEST(Ccsd, ExactForTwoElectrons_Pairing) {
  const auto sys = make_pairing(4, 1, 1.0, 0.5);
  const auto res = run_ccsd(sys);
  ASSERT_TRUE(res.converged);
  const double e_fci = fci_two_electron_energy(sys);
  EXPECT_NEAR(sys.hf_energy() + res.e_corr, e_fci, 1e-9);
}

TEST(Ccsd, PairingModelConverges) {
  const auto sys = make_pairing(6, 3, 1.0, 0.4);
  const auto res = run_ccsd(sys);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.e_corr, 0.0);
}

TEST(Ccsd, DiisAcceleratesConvergence) {
  const auto sys = make_synthetic(2, 4, 1.2, 0.12, 13);
  CcsdOptions with, without;
  with.use_diis = true;
  without.use_diis = false;
  const auto r1 = run_ccsd(sys, with);
  const auto r2 = run_ccsd(sys, without);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_NEAR(r1.e_corr, r2.e_corr, 1e-9);
  EXPECT_LE(r1.iterations, r2.iterations);
}

TEST(Ccd, ConvergesWithZeroSingles) {
  const auto sys = make_synthetic(2, 4, 1.5, 0.12, 19);
  CcsdOptions opts;
  opts.ccd_only = true;
  const auto ccd = run_ccsd(sys, opts);
  ASSERT_TRUE(ccd.converged);
  for (double t : ccd.t1) EXPECT_EQ(t, 0.0);
  // CCD differs from CCSD (singles contribute), but both are correlation
  // energies of the same order.
  const auto ccsd = run_ccsd(sys);
  ASSERT_TRUE(ccsd.converged);
  EXPECT_NE(ccd.e_corr, ccsd.e_corr);
  EXPECT_NEAR(ccd.e_corr / ccsd.e_corr, 1.0, 0.2);
}

TEST(Ccd, DistributedLadderWorksInCcdToo) {
  const auto sys = make_synthetic(2, 3, 1.5, 0.1, 61);
  CcsdOptions dense_opts;
  dense_opts.ccd_only = true;
  const auto dense = run_ccsd(sys, dense_opts);
  ASSERT_TRUE(dense.converged);

  DistributedLadder ladder(sys, 2, 2);
  CcsdOptions opts;
  opts.ccd_only = true;
  LadderRunOptions l;
  l.kind = ExecKind::kPtg;
  opts.ladder = ladder.make_kernel(l);
  const auto res = run_ccsd(sys, opts);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.e_corr, dense.e_corr, 1e-13);
}

TEST(Ccsd, EnergyHistoryIsRecorded) {
  const auto sys = make_synthetic(1, 3, 1.5, 0.1, 2);
  const auto res = run_ccsd(sys);
  EXPECT_EQ(static_cast<int>(res.iteration_energies.size()), res.iterations);
}

TEST(DenseLadder, MatchesBruteForce) {
  const auto sys = make_synthetic(2, 3, 1.5, 0.1, 17);
  const int O = sys.n_occ(), V = sys.n_virt();
  const size_t n2 = static_cast<size_t>(V) * V * O * O;
  std::vector<double> tau(n2);
  Rng rng(5);
  for (auto& x : tau) x = rng.uniform(-1.0, 1.0);
  std::vector<double> out(n2, 0.0);
  dense_ladder(sys, tau, out);
  // spot check a few entries
  auto t2i = [&](int a, int b, int i, int j) {
    return ((static_cast<size_t>(a) * V + b) * O + i) * O + j;
  };
  for (int a : {0, 2}) {
    for (int i : {0, 3}) {
      double s = 0.0;
      for (int e = 0; e < V; ++e)
        for (int f = 0; f < V; ++f) {
          s += 0.5 * sys.v(O + e, O + f, O + a, O + 1) *
               tau[t2i(e, f, i, 2)];
        }
      EXPECT_NEAR(out[t2i(a, 1, i, 2)], s, 1e-12);
    }
  }
}

// --- distributed integration (paper Fig. 3 + claim C9) ---

class DistributedLadderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = make_synthetic(2, 3, 1.5, 0.1, 23);
    ladder_ = std::make_unique<DistributedLadder>(sys_, /*tile_size=*/2,
                                                  /*nranks=*/2);
    const int O = sys_.n_occ(), V = sys_.n_virt();
    tau_.resize(static_cast<size_t>(V) * V * O * O);
    // Use a physically-shaped tau: the MP2 doubles (antisymmetric), which
    // the reconstruction of canonical blocks relies on.
    for (int a = 0; a < V; ++a)
      for (int b = 0; b < V; ++b)
        for (int i = 0; i < O; ++i)
          for (int j = 0; j < O; ++j) {
            const double d = sys_.f(i) + sys_.f(j) - sys_.f(O + a) -
                             sys_.f(O + b);
            tau_[((static_cast<size_t>(a) * V + b) * O + i) * O + j] =
                sys_.v(i, j, O + a, O + b) / d;
          }
    expected_.assign(tau_.size(), 0.0);
    dense_ladder(sys_, tau_, expected_);
  }

  double max_diff(const std::vector<double>& got) const {
    double m = 0.0;
    for (size_t i = 0; i < got.size(); ++i) {
      m = std::max(m, std::fabs(got[i] - expected_[i]));
    }
    return m;
  }

  SpinOrbitalSystem sys_;
  std::unique_ptr<DistributedLadder> ladder_;
  std::vector<double> tau_;
  std::vector<double> expected_;
};

TEST_F(DistributedLadderTest, PlanIsNonTrivial) {
  EXPECT_GT(ladder_->plan().chains.size(), 4u);
}

TEST_F(DistributedLadderTest, ReferenceExecutorMatchesDense) {
  LadderRunOptions opts;
  opts.kind = ExecKind::kReference;
  const auto res = ladder_->run(tau_, opts);
  EXPECT_LT(max_diff(res.r_dense), 1e-12);
}

TEST_F(DistributedLadderTest, OriginalExecutorMatchesDense) {
  LadderRunOptions opts;
  opts.kind = ExecKind::kOriginal;
  opts.workers_per_rank = 2;
  const auto res = ladder_->run(tau_, opts);
  EXPECT_LT(max_diff(res.r_dense), 1e-12);
}

TEST_F(DistributedLadderTest, AllPtgVariantsMatchDense) {
  for (const auto& variant : tce::VariantConfig::all()) {
    LadderRunOptions opts;
    opts.kind = ExecKind::kPtg;
    opts.variant = variant;
    const auto res = ladder_->run(tau_, opts);
    EXPECT_LT(max_diff(res.r_dense), 1e-12) << "variant " << variant.name;
  }
}

TEST_F(DistributedLadderTest, RepeatedRunsAreIndependent) {
  LadderRunOptions opts;
  opts.kind = ExecKind::kPtg;
  opts.variant = tce::VariantConfig::v5();
  const auto r1 = ladder_->run(tau_, opts);
  const auto r2 = ladder_->run(tau_, opts);
  for (size_t i = 0; i < r1.r_dense.size(); ++i) {
    EXPECT_NEAR(r1.r_dense[i], r2.r_dense[i], 1e-13);
  }
}

// The paper's C9: the full CC iteration gives the same correlation energy
// no matter which executor computes the ported subroutine.
TEST(CcsdIntegration, AllExecutorsGiveSameEnergyTo14Digits) {
  const auto sys = make_synthetic(2, 3, 1.5, 0.1, 31);
  const auto dense = run_ccsd(sys);
  ASSERT_TRUE(dense.converged);

  DistributedLadder ladder(sys, /*tile_size=*/2, /*nranks=*/2);

  std::vector<LadderRunOptions> configs;
  {
    LadderRunOptions o;
    o.kind = ExecKind::kReference;
    configs.push_back(o);
    o.kind = ExecKind::kOriginal;
    configs.push_back(o);
    for (const auto& v : tce::VariantConfig::all()) {
      o.kind = ExecKind::kPtg;
      o.variant = v;
      configs.push_back(o);
    }
  }

  for (const auto& cfg : configs) {
    CcsdOptions copts;
    copts.ladder = ladder.make_kernel(cfg);
    const auto res = run_ccsd(sys, copts);
    ASSERT_TRUE(res.converged);
    EXPECT_NEAR(res.e_corr, dense.e_corr, 1e-13)
        << "executor kind " << static_cast<int>(cfg.kind) << " variant "
        << cfg.variant.name;
  }
}

TEST(LinalgSolve, SolvesKnownSystem) {
  linalg::Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const auto x = linalg::solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinalgSolve, ThrowsOnSingular) {
  linalg::Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(linalg::solve_linear(a, {1.0, 2.0}), DataError);
}

TEST(LinalgSolve, JacobiEigenvaluesOfDiagonal) {
  linalg::Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  const auto ev = linalg::symmetric_eigenvalues(a);
  EXPECT_NEAR(ev[0], 1.0, 1e-12);
  EXPECT_NEAR(ev[1], 2.0, 1e-12);
  EXPECT_NEAR(ev[2], 3.0, 1e-12);
}

TEST(LinalgSolve, JacobiMatchesCharacteristicPolynomial) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  linalg::Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  linalg::Matrix vecs;
  const auto ev = linalg::symmetric_eigenvalues(a, &vecs);
  EXPECT_NEAR(ev[0], 1.0, 1e-12);
  EXPECT_NEAR(ev[1], 3.0, 1e-12);
  // Eigenvector of eigenvalue 1 is (1,-1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(vecs(0, 0)), 1.0 / std::sqrt(2.0), 1e-10);
}

}  // namespace
}  // namespace mp::cc
