// Tests for the dynamic lifecycle/lockset checker (support/analysis.h):
// each MPA finding class is driven directly through the LifecycleChecker
// API (so the tests work in every build, instrumented or not), a healthy
// instrumented PTG run must come out with zero findings, and the
// SchedStats/FabricStats self-checks are exercised.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>

#include "ptg/scheduler.h"
#include "support/analysis.h"
#include "tce/inspector.h"
#include "tce/ptg_exec.h"
#include "vc/cluster.h"
#include "vc/fabric.h"

namespace mp {
namespace {

using analysis::FindingKind;
using analysis::LifecycleChecker;

class CheckerTest : public ::testing::Test {
 protected:
  void SetUp() override { C().reset(); }
  void TearDown() override { C().reset(); }

  static LifecycleChecker& C() { return LifecycleChecker::instance(); }

  /// Run annotations on a separate thread (fresh dense tid, usually).
  static void in_thread(const std::function<void()>& fn) {
    std::thread t(fn);
    t.join();
  }

  /// Run `first` then `second` on two threads that are alive at the same
  /// time. Sequential std::threads routinely recycle the previous thread's
  /// id (and so its dense tid in the checker); keeping both alive forces
  /// two distinct threads, which cross-thread tests depend on.
  static void in_two_threads(const std::function<void()>& first,
                             const std::function<void()>& second) {
    std::atomic<bool> first_done{false};
    std::thread t1([&] {
      first();
      first_done.store(true, std::memory_order_release);
    });
    std::thread t2([&] {
      while (!first_done.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      second();
    });
    t1.join();
    t2.join();
  }

  /// Bump the calling thread's own vector clock so epochs recorded next are
  /// strictly newer than anything a recycled thread id may have published
  /// in an earlier test (the checker deliberately survives reset()s).
  static void fresh_epoch() {
    static const char dummy = 0;
    C().channel_send(&dummy);
  }

  static size_t count_kind(FindingKind k) {
    size_t n = 0;
    for (const auto& f : C().findings()) {
      if (f.kind == k) ++n;
    }
    return n;
  }
};

TEST_F(CheckerTest, DoubleReleaseIsMPA001) {
  int obj = 0;
  C().obj_create(&obj, "DataBuf");
  C().obj_destroy(&obj, "DataBuf");
  C().obj_destroy(&obj, "DataBuf");
  EXPECT_EQ(count_kind(FindingKind::kDoubleRelease), 1u);
  EXPECT_NE(C().report().find("MPA001"), std::string::npos);
}

TEST_F(CheckerTest, UseAfterReleaseIsMPA002) {
  int obj = 0;
  C().obj_create(&obj, "DataBuf");
  C().obj_destroy(&obj, "DataBuf");
  C().obj_read(&obj, "DataBuf");
  C().obj_write(&obj, "DataBuf");
  EXPECT_EQ(count_kind(FindingKind::kUseAfterRelease), 2u);
}

TEST_F(CheckerTest, PoolRecycleRearmsTracking) {
  // The pool pattern: destroy then re-create at the same address is clean,
  // and accesses to the NEW incarnation are clean too.
  int obj = 0;
  C().obj_create(&obj, "DataBuf");
  C().obj_destroy(&obj, "DataBuf");
  C().obj_create(&obj, "DataBuf");
  C().obj_read(&obj, "DataBuf");
  EXPECT_EQ(C().finding_count(), 0u) << C().report();
}

TEST_F(CheckerTest, LivePoolHandoutIsMPA003) {
  int obj = 0;
  C().obj_create(&obj, "DataBuf");
  C().obj_create(&obj, "DataBuf");  // handed out again while still live
  EXPECT_EQ(count_kind(FindingKind::kLivePoolHandout), 1u);
}

TEST_F(CheckerTest, UnorderedCrossThreadWriteIsMPA004) {
  int obj = 0;
  in_two_threads(
      [&] {
        fresh_epoch();
        C().obj_create(&obj, "DataBuf");
        C().obj_write(&obj, "DataBuf");
      },
      [&] {
        fresh_epoch();
        C().obj_write(&obj, "DataBuf");  // no channel, no common lock
      });
  EXPECT_GE(count_kind(FindingKind::kDataRace), 1u);
}

TEST_F(CheckerTest, ChannelHandoffSuppressesRace) {
  int obj = 0;
  int channel = 0;
  in_two_threads(
      [&] {
        fresh_epoch();
        C().obj_create(&obj, "DataBuf");
        C().obj_write(&obj, "DataBuf");
        C().channel_send(&channel);  // mailbox push / scheduler enqueue
      },
      [&] {
        C().channel_recv(&channel);  // matching pop
        C().obj_write(&obj, "DataBuf");
      });
  EXPECT_EQ(C().finding_count(), 0u) << C().report();
}

TEST_F(CheckerTest, CommonLockSuppressesRace) {
  int obj = 0;
  int mu = 0;
  in_two_threads(
      [&] {
        fresh_epoch();
        C().lock_acquired(&mu);
        C().obj_create(&obj, "DataBuf");
        C().obj_write(&obj, "DataBuf");
        // Deliberately no release: the epochs stay unordered, only the
        // common lockset suppresses the report (the hybrid-detector branch).
      },
      [&] {
        fresh_epoch();
        C().lock_acquired(&mu);
        C().obj_write(&obj, "DataBuf");
        C().lock_released(&mu);
      });
  EXPECT_EQ(count_kind(FindingKind::kDataRace), 0u) << C().report();
}

TEST_F(CheckerTest, ForeignOwnerOpIsMPA005) {
  int dq = 0;
  C().deque_create(&dq);
  in_two_threads([&] { C().deque_owner_op(&dq); },   // first use claims
                 [&] { C().deque_owner_op(&dq); });  // foreign bottom-end op
  EXPECT_EQ(count_kind(FindingKind::kStealViolation), 1u);
}

TEST_F(CheckerTest, StealEndIsOpenToAllThreadsAndRecreateResets) {
  int dq = 0;
  C().deque_create(&dq);
  in_two_threads([&] { C().deque_owner_op(&dq); },
                 [&] { C().deque_steal_op(&dq); });  // thieves are fine
  C().deque_create(&dq);                        // teardown / address reuse
  in_thread([&] { C().deque_owner_op(&dq); });  // new owner claims
  EXPECT_EQ(C().finding_count(), 0u) << C().report();
}

TEST_F(CheckerTest, ForeignTlsAccessIsMPA006) {
  int pool = 0;
  in_two_threads([&] { C().tls_guard(&pool); },
                 [&] { C().tls_guard(&pool); });
  EXPECT_EQ(count_kind(FindingKind::kTlsViolation), 1u);
}

TEST_F(CheckerTest, TlsReleaseAllowsAddressReuse) {
  int pool = 0;
  in_two_threads(
      [&] {
        C().tls_guard(&pool);
        C().tls_release(&pool);  // thread-exit destructor
      },
      [&] { C().tls_guard(&pool); });
  EXPECT_EQ(C().finding_count(), 0u) << C().report();
}

TEST_F(CheckerTest, UseAfterMigrateIsMPA007) {
  // Hand-off to the fabric is not a release: the local reference still
  // owns the allocation, but the remote side owns the *data* — any
  // later read or write here is a stale access.
  int obj = 0;
  C().obj_create(&obj, "DataBuf");
  C().obj_migrate(&obj, "DataBuf");
  C().obj_read(&obj, "DataBuf");
  C().obj_write(&obj, "DataBuf");
  EXPECT_EQ(count_kind(FindingKind::kMigratedAccess), 2u);
  EXPECT_NE(C().report().find("MPA007"), std::string::npos);
}

TEST_F(CheckerTest, DoubleMigrateIsMPA007) {
  int obj = 0;
  C().obj_create(&obj, "DataBuf");
  C().obj_migrate(&obj, "DataBuf");
  C().obj_migrate(&obj, "DataBuf");
  EXPECT_EQ(count_kind(FindingKind::kMigratedAccess), 1u);
}

TEST_F(CheckerTest, MigratedBufStillReleasesExactlyOnce) {
  // The victim's serialize-then-free path: migrate, then destroy the
  // local reference. Clean — and the destroy re-arms the address, so a
  // pool recycle after migration tracks the NEW incarnation cleanly.
  int obj = 0;
  C().obj_create(&obj, "DataBuf");
  C().obj_migrate(&obj, "DataBuf");
  C().obj_destroy(&obj, "DataBuf");
  EXPECT_EQ(C().finding_count(), 0u) << C().report();
  C().obj_create(&obj, "DataBuf");
  C().obj_read(&obj, "DataBuf");
  C().obj_write(&obj, "DataBuf");
  EXPECT_EQ(C().finding_count(), 0u) << C().report();
}

TEST_F(CheckerTest, UnorderedAccessAfterRehomeIsMPA008) {
  // Rank-failure recovery re-homes a buffer from a dead holder; any access
  // not ordered after the re-home may be stale pre-death machinery still
  // holding the old handout.
  int obj = 0;
  in_thread([&] {
    fresh_epoch();
    C().obj_create(&obj, "DataBuf");
    C().obj_write(&obj, "DataBuf");
    C().obj_rehome(&obj, "DataBuf");
  });
  fresh_epoch();
  C().obj_read(&obj, "DataBuf");  // no channel edge from the recovery
  EXPECT_EQ(count_kind(FindingKind::kUseAfterRecovery), 1u);
  EXPECT_NE(C().report().find("MPA008"), std::string::npos);
}

TEST_F(CheckerTest, ChannelOrderedRehomeAccessIsClean) {
  // The runtime's actual shape: the comm thread adopts + re-homes, then
  // hands the task to a worker through the scheduler (a channel edge), so
  // the worker's accesses happen-after the re-home.
  int obj = 0;
  int channel = 0;
  in_two_threads(
      [&] {
        fresh_epoch();
        C().obj_create(&obj, "DataBuf");
        C().obj_rehome(&obj, "DataBuf");
        C().channel_send(&channel);  // scheduler push
      },
      [&] {
        C().channel_recv(&channel);  // worker pop
        C().obj_read(&obj, "DataBuf");
        C().obj_write(&obj, "DataBuf");
      });
  EXPECT_EQ(C().finding_count(), 0u) << C().report();
}

TEST_F(CheckerTest, CommonLockSuppressesRehomeReport) {
  // Hybrid-detector branch: epochs unordered, but both sides hold the same
  // lock across the re-home and the access.
  int obj = 0;
  int mu = 0;
  in_two_threads(
      [&] {
        fresh_epoch();
        C().lock_acquired(&mu);
        C().obj_create(&obj, "DataBuf");
        C().obj_rehome(&obj, "DataBuf");
        // No release: only the common lockset suppresses the report.
      },
      [&] {
        fresh_epoch();
        C().lock_acquired(&mu);
        C().obj_write(&obj, "DataBuf");
        C().lock_released(&mu);
      });
  EXPECT_EQ(count_kind(FindingKind::kUseAfterRecovery), 0u) << C().report();
}

TEST_F(CheckerTest, RehomeOfReleasedBufIsMPA008) {
  int obj = 0;
  C().obj_create(&obj, "DataBuf");
  C().obj_destroy(&obj, "DataBuf");
  C().obj_rehome(&obj, "DataBuf");
  EXPECT_EQ(count_kind(FindingKind::kUseAfterRecovery), 1u);
  EXPECT_NE(C().report().find("MPA008"), std::string::npos);
}

TEST_F(CheckerTest, RehomeClearsMigratedStateForTheNewOwner) {
  // A buffer migrated to a thief that then died: the home rank re-owns the
  // data, so its own (ordered) accesses are clean — no MPA007, no MPA008.
  int obj = 0;
  C().obj_create(&obj, "DataBuf");
  C().obj_migrate(&obj, "DataBuf");
  C().obj_rehome(&obj, "DataBuf");
  C().obj_read(&obj, "DataBuf");
  C().obj_write(&obj, "DataBuf");
  EXPECT_EQ(C().finding_count(), 0u) << C().report();
}

TEST_F(CheckerTest, FindingsCarrySymbolicTaskNames) {
  int obj = 0;
  const int32_t params[2] = {3, 1};
  C().task_begin("GEMM", params, 2);
  C().obj_create(&obj, "DataBuf");
  C().obj_destroy(&obj, "DataBuf");
  C().obj_destroy(&obj, "DataBuf");
  C().task_end();
  ASSERT_EQ(C().finding_count(), 1u);
  const auto f = C().findings().front();
  EXPECT_EQ(f.task, "GEMM(3,1)");
  EXPECT_NE(f.message.find("GEMM(3,1)"), std::string::npos);
}

// ---- healthy instrumented execution must be finding-free ------------------

TEST_F(CheckerTest, HealthyPtgRunHasZeroFindings) {
  // With -DMP_ANALYSIS=ON every runtime hot path is annotated and this
  // test is the "no false positives" acceptance check; without it the
  // macros are no-ops and the run must trivially stay clean.
  tce::TileSpaceSpec spec;
  spec.n_occ_alpha = 2;
  spec.n_occ_beta = 2;
  spec.n_virt_alpha = 4;
  spec.n_virt_beta = 4;
  spec.tile_size = 2;
  tce::TileSpace space(spec);
  using tce::RangeKind;
  tce::BlockTensor4 v(space, {RangeKind::kVirt, RangeKind::kVirt,
                              RangeKind::kVirt, RangeKind::kVirt});
  tce::BlockTensor4 t(space, {RangeKind::kVirt, RangeKind::kVirt,
                              RangeKind::kOcc, RangeKind::kOcc});
  tce::BlockTensor4 r(space,
                      {RangeKind::kVirt, RangeKind::kVirt, RangeKind::kOcc,
                       RangeKind::kOcc},
                      true, true);
  vc::Cluster cluster(2);
  ga::GlobalArray v_ga(&cluster, v.ga_size());
  ga::GlobalArray t_ga(&cluster, t.ga_size());
  ga::GlobalArray r_ga(&cluster, r.ga_size());
  const auto plan = tce::inspect_t2_7(space, {&v, &t, &r});
  const tce::StoreList stores = {{&v, &v_ga}, {&t, &t_ga}, {&r, &r_ga}};

  for (const auto policy :
       {ptg::SchedPolicy::kPriority, ptg::SchedPolicy::kStealing}) {
    C().reset();
    tce::PtgExecOptions opts;
    opts.variant = tce::VariantConfig::v3();
    opts.workers_per_rank = 2;
    opts.policy = policy;
    cluster.run([&](vc::RankCtx& rctx) {
      (void)tce::execute_ptg(rctx, plan, stores, opts);
    });
    EXPECT_EQ(C().finding_count(), 0u)
        << "policy " << ptg::to_string(policy) << ":\n"
        << C().report();
  }
}

// ---- stats self-checks ----------------------------------------------------

TEST(StatsValidate, SchedStatsCatchesInconsistentSnapshot) {
  ptg::SchedStats ok;
  ok.steal_attempts = 10;
  ok.steals = 10;
  EXPECT_EQ(ok.validate(), "");

  ptg::SchedStats bad;
  bad.steals = 3;
  bad.steal_attempts = 2;
  EXPECT_NE(bad.validate(), "");
}

TEST(StatsValidate, FabricStatsCatchesInconsistentSnapshot) {
  vc::FabricStats ok;
  ok.messages_sent = 5;
  ok.bytes_sent = 40;
  ok.faults_dropped = 2;
  EXPECT_EQ(ok.validate(), "");

  vc::FabricStats bad1;
  bad1.faults_dropped = 1;
  EXPECT_NE(bad1.validate(), "");

  vc::FabricStats bad2;
  bad2.bytes_sent = 8;
  EXPECT_NE(bad2.validate(), "");

  vc::FabricStats bad3;
  bad3.messages_sent = 1;
  bad3.faults_duplicated = 2;
  EXPECT_NE(bad3.validate(), "");
}

TEST(StatsValidate, LiveSchedulerSnapshotsAreConsistent) {
  auto sched = ptg::Scheduler::create(ptg::SchedPolicy::kStealing, 2);
  for (int i = 0; i < 64; ++i) {
    ptg::ReadyTask t;
    t.seq = static_cast<uint64_t>(i);
    sched->push(std::move(t), -1);
  }
  ptg::ReadyTask out;
  while (sched->try_pop(out, 0)) {
  }
  EXPECT_EQ(sched->stats().validate(), "") << "live scheduler stats";
}

}  // namespace
}  // namespace mp
