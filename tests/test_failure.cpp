// Rank-failure tolerance: functional suite (ctest label: fault).
//
// Exercises the full failure story on a healthy-until-killed fabric: a
// seeded CrashPlan kills a non-root rank mid-run and the job must either
// recover (kRetry re-homes the victim's work ring-wise, kDegrade re-hashes
// it over the survivors) and still produce bit-correct results, or unwind
// promptly with a structured StateError naming the dead rank (kAbort,
// retry-limit exhaustion) — never hang. Also the detector's
// suspicion/probe/clear path on a merely-slow peer, the watchdog
// regression pair (heartbeat chatter is not progress; exactly one deadline
// reset per confirmed death), the t2_7 numerical acceptance run at eight
// ranks, the simulator's death/recovery model, and the MigrationLedger
// reassignment hook. The fault x message-fault matrix lives in
// test_failure_stress.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ga/global_array.h"
#include "ga/migration.h"
#include "ptg/context.h"
#include "sim/presets.h"
#include "sim/ptg_sim.h"
#include "support/rng.h"
#include "tce/block_tensor.h"
#include "tce/inspector.h"
#include "tce/ptg_exec.h"
#include "tce/reference_exec.h"
#include "tce/tiles.h"
#include "tce/variants.h"
#include "vc/cluster.h"
#include "vc/fabric.h"

namespace mp::ptg {
namespace {

/// Burn wall-clock time keeping the worker runnable (closer to a GEMM
/// body than a sleep), so the job is still in flight when the CrashPlan
/// fires.
void spin_for_us(int us) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  volatile double sink = 1.0;
  while (std::chrono::steady_clock::now() < until) sink = sink * 1.0000001;
  (void)sink;
}

double feed_val(int i) { return 0.25 * i + 3.0; }

int heavy_home(int i, int nranks) { return (i * 7 + 3) % nranks; }

/// Everything one rank reports after its Context returned.
struct FaultReport {
  bool killed = false;
  uint64_t executed = 0;
  uint64_t dead_mask = 0;
  FailureStats failure;
  StealStats steal;
  std::string sched_validate = "unset";
};

/// Detector timings shared by the fast tests: total detection latency
/// ~160 ms — far above the victim's post-kill quiesce window (its workers
/// notice done_ within microseconds) and above the comm-thread scheduling
/// jitter of an oversubscribed single-core CI box (a live peer must never
/// be falsely confirmed just because its comm thread was starved), yet far
/// below any test timeout.
void fast_detector(Options& opts) {
  opts.enable_failure_detection = true;
  opts.heartbeat_interval_ms = 2.0;
  opts.suspect_after_ms = 40.0;
  opts.confirm_after_ms = 120.0;
}

/// Two-layer job where every rank owns real work: FEED(i) (no inputs) is
/// homed round-robin, HEAVY(i) (one input, `spin_us` of compute) is homed
/// by a fixed affine map so a victim rank owns both roots and dependents.
/// Values land in `got` regardless of where each body ran. When
/// `heavy_group` is given, HEAVY instances carry it as recovery_key and
/// `group_adopted` observes every on_adopt invocation (the hooks the
/// co-adoption tests below count).
void run_spread(vc::RankCtx& rctx, int width, int spin_us, Options opts,
                std::vector<double>* got, std::mutex* mu,
                std::vector<FaultReport>* reports,
                const std::function<int64_t(int)>& heavy_group = nullptr,
                const std::function<void(int64_t)>& group_adopted = nullptr) {
  const int nranks = rctx.nranks();
  const int my_rank = rctx.rank();

  Taskpool pool;
  TaskClass feed;
  feed.name = "FEED";
  feed.rank_of = [nranks](const Params& p) { return p[0] % nranks; };
  feed.num_task_inputs = [](const Params&) { return 0; };
  feed.enumerate_rank = [nranks, width](int rank) {
    std::vector<Params> out;
    for (int i = rank; i < width; i += nranks) out.push_back(params_of(i));
    return out;
  };
  feed.body = [](TaskCtx& t) {
    t.set_output(0, make_buf(1, feed_val(t.params()[0])));
  };
  const auto feed_id = pool.add_class(std::move(feed));

  TaskClass heavy;
  heavy.name = "HEAVY";
  heavy.rank_of = [nranks](const Params& p) {
    return heavy_home(p[0], nranks);
  };
  heavy.num_task_inputs = [](const Params&) { return 1; };
  heavy.enumerate_rank = [nranks, width](int rank) {
    std::vector<Params> out;
    for (int i = 0; i < width; ++i) {
      if (heavy_home(i, nranks) == rank) out.push_back(params_of(i));
    }
    return out;
  };
  heavy.body = [spin_us, got, mu](TaskCtx& t) {
    const int i = t.params()[0];
    spin_for_us(spin_us);
    const double v = (*t.input(0))[0] * 3.0 + i;
    {
      std::lock_guard lock(*mu);
      (*got)[static_cast<size_t>(i)] = v;
    }
    t.set_output(0, make_buf(1, v));
  };
  if (heavy_group) {
    heavy.recovery_key = [heavy_group](const Params& p) {
      return heavy_group(p[0]);
    };
    heavy.on_adopt = [heavy_group, group_adopted](const Params& p,
                                                  int /*dead_rank*/) {
      if (group_adopted) group_adopted(heavy_group(p[0]));
    };
  }
  const auto heavy_id = pool.add_class(std::move(heavy));
  pool.mutable_cls(feed_id).route_outputs =
      [heavy_id](const Params& p, std::vector<OutRoute>& r) {
        r.push_back({TaskKey{heavy_id, p}, 0, 0});
      };
  pool.mutable_cls(heavy_id).route_outputs =
      [](const Params&, std::vector<OutRoute>&) {};

  Context ctx(rctx, pool, opts);
  ctx.run();

  FaultReport rep;
  rep.killed = ctx.killed();
  rep.executed = ctx.tasks_executed();
  rep.dead_mask = ctx.confirmed_dead_mask();
  rep.failure = ctx.failure_stats();
  rep.steal = ctx.steal_stats();
  rep.sched_validate = ctx.scheduler_stats().validate();
  {
    std::lock_guard lock(*mu);
    (*reports)[static_cast<size_t>(my_rank)] = rep;
  }
}

/// Count of task instances homed on `victim` in the run_spread job.
int victim_instances(int width, int nranks, int victim) {
  int n = 0;
  for (int i = 0; i < width; ++i) {
    if (i % nranks == victim) ++n;
    if (heavy_home(i, nranks) == victim) ++n;
  }
  return n;
}

// --- recovery policies complete the job correctly across a seeded kill ---

void expect_values_correct(const std::vector<double>& got) {
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], feed_val(static_cast<int>(i)) * 3.0 +
                                 static_cast<double>(i))
        << "HEAVY(" << i << ")";
  }
}

void run_policy_recovery(FailurePolicy policy) {
  const int nranks = 4, width = 96, victim = 2;
  vc::FabricConfig cfg;
  cfg.crash_plans.push_back({victim, /*after_messages=*/60});
  vc::Cluster cluster(nranks, cfg);
  std::vector<double> got(static_cast<size_t>(width), 0.0);
  std::vector<FaultReport> reports(static_cast<size_t>(nranks));
  std::mutex mu;

  cluster.run([&](vc::RankCtx& rctx) {
    Options opts;
    opts.num_workers = 2;
    fast_detector(opts);
    opts.on_rank_failure = policy;
    opts.retry_limit = 1;
    run_spread(rctx, width, /*spin_us=*/500, opts, &got, &mu, &reports);
  });

  expect_values_correct(got);
  EXPECT_TRUE(reports[victim].killed) << "the CrashPlan must have fired";

  uint64_t adopted = 0, replayed = 0;
  for (int r = 0; r < nranks; ++r) {
    if (r == victim) continue;
    const FaultReport& rep = reports[static_cast<size_t>(r)];
    EXPECT_FALSE(rep.killed) << "rank " << r;
    EXPECT_EQ(rep.failure.validate(), "") << "rank " << r;
    EXPECT_EQ(rep.sched_validate, "") << "rank " << r;
    EXPECT_EQ(rep.steal.validate(), "") << "rank " << r;
    EXPECT_EQ(rep.failure.deaths_confirmed, 1u) << "rank " << r;
    EXPECT_EQ(rep.failure.watchdog_resets_on_death, 1u) << "rank " << r;
    EXPECT_EQ(rep.dead_mask, 1ULL << victim) << "rank " << r;
    adopted += rep.failure.tasks_adopted;
    replayed += rep.failure.lineage_replayed;
  }
  // Adoption is a deterministic partition of the victim's instances over
  // the survivors: every instance is adopted exactly once.
  EXPECT_EQ(adopted,
            static_cast<uint64_t>(victim_instances(width, nranks, victim)));
  // The kill fires during the activation burst, so some FEED outputs bound
  // for the victim were already logged and must be replayed.
  EXPECT_GT(replayed, 0u);
}

TEST(FailureRecovery, RetryCompletesAfterSeededCrash) {
  run_policy_recovery(FailurePolicy::kRetry);
}

TEST(FailureRecovery, DegradeCompletesAfterSeededCrash) {
  run_policy_recovery(FailurePolicy::kDegrade);
}

// --- degrade keeps every co-adoption group on exactly one adopter ---

/// Recovery group of HEAVY(i). Members share i % 4, so they share a home
/// (heavy_home depends on i mod nranks only at nranks=4) — mirroring the
/// real constraint that all accumulators into one GA block are homed on
/// the block's owner. Groups of four instances each.
int64_t co_group(int i) { return i % 4 + 4 * (i / 16); }

TEST(FailureRecovery, DegradeAdoptsEachRecoveryGroupExactlyOnce) {
  // The co-adoption invariant (taskpool.h): all lost instances sharing a
  // recovery_key must land on ONE survivor, so the group's on_adopt reset
  // runs exactly once cluster-wide. Hashing individual keys over the
  // survivor list scatters a group across adopters, and each of them runs
  // on_adopt at its own confirmation time — a late zero of the shared GA
  // block wipes contributions another adopter already re-executed. Count
  // on_adopt invocations per group across all ranks; every group with a
  // member homed on the victim must see exactly one.
  const int nranks = 4, width = 96, victim = 2;
  vc::FabricConfig cfg;
  cfg.crash_plans.push_back({victim, /*after_messages=*/60});
  vc::Cluster cluster(nranks, cfg);
  std::vector<double> got(static_cast<size_t>(width), 0.0);
  std::vector<FaultReport> reports(static_cast<size_t>(nranks));
  std::mutex mu;
  std::map<int64_t, int> adopt_counts;

  cluster.run([&](vc::RankCtx& rctx) {
    Options opts;
    opts.num_workers = 2;
    fast_detector(opts);
    opts.on_rank_failure = FailurePolicy::kDegrade;
    run_spread(rctx, width, /*spin_us=*/500, opts, &got, &mu, &reports,
               /*heavy_group=*/co_group,
               /*group_adopted=*/[&](int64_t g) {
                 std::lock_guard lock(mu);
                 ++adopt_counts[g];
               });
  });

  expect_values_correct(got);
  EXPECT_TRUE(reports[victim].killed) << "the CrashPlan must have fired";
  std::map<int64_t, int> expected;
  for (int i = 0; i < width; ++i) {
    if (heavy_home(i, nranks) == victim) expected[co_group(i)] = 1;
  }
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(adopt_counts, expected)
      << "a group adopted on several ranks re-runs its external-state "
         "reset once per adopter — the degrade wrong-sum seed";
}

// --- a second death re-homes work adopted by the first victim's adopter ---

TEST(FailureRecovery, RetrySurvivesDeathOfTheFirstVictimsAdopter) {
  // kRetry ring order sends all of rank 2's keys to rank 3. Kill rank 3
  // after it has started adopting: its own keys AND the re-homed keys of
  // rank 2 are both lost. The adoption sweep at the second confirmed death
  // must cover every rank in the cumulative dead mask — enumerating only
  // the just-dead rank leaves rank 2's chains parked in held_ready_
  // forever while every live rank reports done, i.e. a "successful" run
  // with silently missing results.
  const int nranks = 4, width = 96, victim1 = 2, victim2 = 3;
  vc::FabricConfig cfg;
  cfg.crash_plans.push_back({victim1, /*after_messages=*/60});
  vc::Cluster cluster(nranks, cfg);
  std::vector<double> got(static_cast<size_t>(width), 0.0);
  std::vector<FaultReport> reports(static_cast<size_t>(nranks));
  std::mutex mu;
  std::atomic<bool> first_adoption{false};

  // Second kill fires a moment after the first adoption began on rank 3
  // (on_adopt runs on the adopter's comm thread), landing mid-recovery
  // while the re-homed work is still executing there.
  std::thread second_killer([&] {
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!first_adoption.load(std::memory_order_acquire)) {
      if (std::chrono::steady_clock::now() > give_up) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(8));
    cluster.kill_rank(victim2);
  });

  cluster.run([&](vc::RankCtx& rctx) {
    Options opts;
    opts.num_workers = 2;
    fast_detector(opts);
    opts.on_rank_failure = FailurePolicy::kRetry;
    opts.retry_limit = 2;
    run_spread(rctx, width, /*spin_us=*/4000, opts, &got, &mu, &reports,
               /*heavy_group=*/co_group,
               /*group_adopted=*/[&](int64_t) {
                 first_adoption.store(true, std::memory_order_release);
               });
  });
  second_killer.join();

  expect_values_correct(got);
  EXPECT_TRUE(reports[victim1].killed) << "the CrashPlan must have fired";
  EXPECT_TRUE(reports[victim2].killed)
      << "the second kill must land before the job finished";
  const uint64_t dead_mask = (1ULL << victim1) | (1ULL << victim2);
  for (int r = 0; r < nranks; ++r) {
    if (r == victim1 || r == victim2) continue;
    const FaultReport& rep = reports[static_cast<size_t>(r)];
    EXPECT_FALSE(rep.killed) << "rank " << r;
    EXPECT_EQ(rep.failure.validate(), "") << "rank " << r;
    EXPECT_EQ(rep.sched_validate, "") << "rank " << r;
    EXPECT_EQ(rep.failure.deaths_confirmed, 2u) << "rank " << r;
    EXPECT_EQ(rep.dead_mask, dead_mask) << "rank " << r;
  }
}

// --- escalation: structured error, never a hang ---

void expect_escalation(FailurePolicy policy, int retry_limit) {
  const int nranks = 4, width = 96, victim = 2;
  vc::FabricConfig cfg;
  cfg.crash_plans.push_back({victim, /*after_messages=*/60});
  vc::Cluster cluster(nranks, cfg);
  std::vector<double> got(static_cast<size_t>(width), 0.0);
  std::vector<FaultReport> reports(static_cast<size_t>(nranks));
  std::mutex mu;

  try {
    cluster.run([&](vc::RankCtx& rctx) {
      Options opts;
      opts.num_workers = 2;
      fast_detector(opts);
      opts.on_rank_failure = policy;
      opts.retry_limit = retry_limit;
      run_spread(rctx, width, /*spin_us=*/500, opts, &got, &mu, &reports);
    });
    FAIL() << "a confirmed death under policy=" << to_string(policy)
           << " (retry_limit=" << retry_limit << ") must raise a StateError";
  } catch (const StateError& e) {
    const std::string msg = e.what();
    EXPECT_TRUE(msg.find("confirmed dead") != std::string::npos ||
                msg.find("aborted") != std::string::npos)
        << msg;
  }
}

TEST(FailureEscalation, AbortPolicyRaisesStructuredStateError) {
  expect_escalation(FailurePolicy::kAbort, /*retry_limit=*/1);
}

TEST(FailureEscalation, RetryLimitExhaustedEscalates) {
  expect_escalation(FailurePolicy::kRetry, /*retry_limit=*/0);
}

// --- detector: a slow (silent but alive) peer is probed and cleared ---

TEST(FailureDetector, SilentPeerSuspectedProbedAndCleared) {
  // Explicit heartbeats are effectively off (500 ms interval), so once a
  // rank runs out of traffic it goes silent past the 8 ms suspicion
  // threshold. The probe must clear it — confirmation (at 5 s) must never
  // be reached, and the job must complete normally.
  const int nranks = 2, width = 4;
  vc::Cluster cluster(nranks);
  std::vector<double> got(static_cast<size_t>(width), 0.0);
  std::vector<FaultReport> reports(static_cast<size_t>(nranks));
  std::mutex mu;

  cluster.run([&](vc::RankCtx& rctx) {
    Options opts;
    opts.num_workers = 1;
    opts.enable_failure_detection = true;
    opts.heartbeat_interval_ms = 500.0;
    opts.suspect_after_ms = 8.0;
    opts.confirm_after_ms = 5000.0;
    run_spread(rctx, width, /*spin_us=*/40000, opts, &got, &mu, &reports);
  });

  expect_values_correct(got);
  uint64_t suspicions = 0, cleared = 0, probes = 0;
  for (int r = 0; r < nranks; ++r) {
    const FaultReport& rep = reports[static_cast<size_t>(r)];
    EXPECT_EQ(rep.failure.deaths_confirmed, 0u) << "rank " << r;
    EXPECT_EQ(rep.failure.validate(), "") << "rank " << r;
    suspicions += rep.failure.suspicions;
    cleared += rep.failure.suspicions_cleared;
    probes += rep.failure.probes_sent;
  }
  EXPECT_GT(suspicions, 0u) << "40 ms silent gaps must raise suspicion";
  EXPECT_GT(probes, 0u);
  EXPECT_EQ(cleared, suspicions)
      << "every suspicion of a live rank must clear";
}

// --- watchdog regression pair ---

/// A serial chain of `chain_len` sleeps on rank 0 feeding `sinks` tasks on
/// rank 1 (the steal suite's topology): rank 1 waits a long time with zero
/// local progress.
void run_remote_chain(vc::RankCtx& rctx, int chain_len, int sinks,
                      int sleep_ms, Options opts, std::vector<double>* got,
                      std::mutex* mu) {
  Taskpool pool;
  TaskClass chain;
  chain.name = "SLOW";
  chain.rank_of = [](const Params&) { return 0; };
  chain.num_task_inputs = [](const Params& p) { return p[0] == 0 ? 0 : 1; };
  chain.enumerate_rank = [chain_len](int rank) {
    std::vector<Params> out;
    if (rank == 0) {
      for (int k = 0; k < chain_len; ++k) out.push_back(params_of(k));
    }
    return out;
  };
  chain.body = [sleep_ms](TaskCtx& t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    const int k = t.params()[0];
    const double v = (k == 0 ? 1.0 : (*t.input(0))[0]) + 1.0;
    t.set_output(0, make_buf(1, v));
  };
  const auto chain_id = pool.add_class(std::move(chain));

  TaskClass sink;
  sink.name = "SINK";
  sink.rank_of = [](const Params&) { return 1; };
  sink.num_task_inputs = [](const Params&) { return 1; };
  sink.enumerate_rank = [sinks](int rank) {
    std::vector<Params> out;
    if (rank == 1) {
      for (int j = 0; j < sinks; ++j) out.push_back(params_of(j));
    }
    return out;
  };
  sink.body = [got, mu](TaskCtx& t) {
    const int j = t.params()[0];
    const double v = (*t.input(0))[0] + j;
    {
      std::lock_guard lock(*mu);
      (*got)[static_cast<size_t>(j)] = v;
    }
    t.set_output(0, make_buf(1, v));
  };
  const auto sink_id = pool.add_class(std::move(sink));
  pool.mutable_cls(chain_id).route_outputs =
      [chain_id, sink_id, chain_len, sinks](const Params& p,
                                            std::vector<OutRoute>& r) {
        if (p[0] + 1 < chain_len) {
          r.push_back({TaskKey{chain_id, params_of(p[0] + 1)}, 0, 0});
        } else {
          for (int j = 0; j < sinks; ++j) {
            r.push_back({TaskKey{sink_id, params_of(j)}, 0, 0});
          }
        }
      };
  pool.mutable_cls(sink_id).route_outputs =
      [](const Params&, std::vector<OutRoute>&) {};
  Context ctx(rctx, pool, opts);
  ctx.run();
}

TEST(FailureWatchdog, HeartbeatChatterIsNotProgress) {
  // With 2 ms heartbeats flowing both ways throughout the wait, rank 1's
  // flat 30 ms deadline must still fire exactly as it does without the
  // detector (test_steal's FlatDeadlineFiresOnTheSameWait): inbound
  // liveness traffic refreshes the peer's aliveness, never the progress
  // counter. A regression here would let a genuinely lost activation hide
  // behind the detector's chatter forever.
  vc::Cluster cluster(2);
  std::vector<double> got(16, 0.0);
  std::mutex mu;
  try {
    cluster.run([&](vc::RankCtx& rctx) {
      Options opts;
      opts.num_workers = 2;
      opts.watchdog_timeout_ms = 30.0;
      opts.watchdog_scale_per_task = 0.0;
      opts.enable_failure_detection = true;
      opts.heartbeat_interval_ms = 2.0;
      opts.suspect_after_ms = 10000.0;  // nobody is ever suspect
      opts.confirm_after_ms = 10000.0;
      run_remote_chain(rctx, /*chain_len=*/8, /*sinks=*/16, /*sleep_ms=*/50,
                       opts, &got, &mu);
    });
    FAIL() << "heartbeat chatter must not reset the flat 30 ms deadline";
  } catch (const StateError& e) {
    const std::string msg = e.what();
    EXPECT_TRUE(msg.find("PTG watchdog") != std::string::npos ||
                msg.find("aborted") != std::string::npos)
        << msg;
  }
}

TEST(FailureWatchdog, ScaledDeadlineStillToleratesSlowChainWithDetectorOn) {
  // Companion: the outstanding-work scaling keeps the same wait quiet with
  // the detector running, and a fault-free detector run ends with zero
  // deaths and zero death-attributed deadline resets (the exactly-once
  // pairing is enforced by FailureStats::validate on every run).
  vc::Cluster cluster(2);
  std::vector<double> got(16, 0.0);
  std::mutex mu;
  cluster.run([&](vc::RankCtx& rctx) {
    Options opts;
    opts.num_workers = 2;
    opts.watchdog_timeout_ms = 30.0;
    opts.watchdog_scale_per_task = 4.0;
    opts.enable_failure_detection = true;
    opts.heartbeat_interval_ms = 2.0;
    opts.suspect_after_ms = 10000.0;
    opts.confirm_after_ms = 10000.0;
    run_remote_chain(rctx, /*chain_len=*/8, /*sinks=*/16, /*sleep_ms=*/50,
                     opts, &got, &mu);
  });
  for (int j = 0; j < 16; ++j) {
    EXPECT_DOUBLE_EQ(got[static_cast<size_t>(j)], 9.0 + j) << "sink " << j;
  }
}

// --- t2_7 at eight ranks: the numerical acceptance run ---

tce::TileSpaceSpec small_spec() {
  tce::TileSpaceSpec s;
  s.n_occ_alpha = 3;
  s.n_occ_beta = 3;
  s.n_virt_alpha = 5;
  s.n_virt_beta = 5;
  s.tile_size = 2;
  return s;
}

/// Eight-rank t2_7 with a seeded kill of rank 5 mid-activation-burst; the
/// result must still match the serial reference to 1e-12 (recovery zeroes
/// each adopted accumulator block, then re-executes its chains, so every
/// contribution lands exactly once).
class FailureT27 : public ::testing::Test {
 protected:
  static constexpr int kVictim = 5;

  void SetUp() override {
    space_ = std::make_unique<tce::TileSpace>(small_spec());
    v_ = std::make_unique<tce::BlockTensor4>(
        *space_, std::array<tce::RangeKind, 4>{
                     tce::RangeKind::kVirt, tce::RangeKind::kVirt,
                     tce::RangeKind::kVirt, tce::RangeKind::kVirt});
    t_ = std::make_unique<tce::BlockTensor4>(
        *space_, std::array<tce::RangeKind, 4>{
                     tce::RangeKind::kVirt, tce::RangeKind::kVirt,
                     tce::RangeKind::kOcc, tce::RangeKind::kOcc});
    r_ = std::make_unique<tce::BlockTensor4>(
        *space_,
        std::array<tce::RangeKind, 4>{
            tce::RangeKind::kVirt, tce::RangeKind::kVirt,
            tce::RangeKind::kOcc, tce::RangeKind::kOcc},
        true, true);
    plan_ = tce::inspect_t2_7(*space_, {v_.get(), t_.get(), r_.get()});

    vc::FabricConfig cfg;
    cfg.crash_plans.push_back({kVictim, /*after_messages=*/80});
    cluster_ = std::make_unique<vc::Cluster>(8, cfg);
    v_ga_ = std::make_unique<ga::GlobalArray>(cluster_.get(), v_->ga_size());
    t_ga_ = std::make_unique<ga::GlobalArray>(cluster_.get(), t_->ga_size());
    r_ga_ = std::make_unique<ga::GlobalArray>(cluster_.get(), r_->ga_size());

    Rng rng(11);
    fill_random(*v_ga_, rng);
    fill_random(*t_ga_, rng);

    storage_.v = {v_.get(), v_ga_.get()};
    storage_.t = {t_.get(), t_ga_.get()};
    storage_.r = {r_.get(), r_ga_.get()};

    reference_.assign(static_cast<size_t>(r_->ga_size()), 0.0);
    tce::execute_reference(plan_, storage_);
    r_ga_->get(0, r_->ga_size(), reference_.data());
  }

  static void fill_random(ga::GlobalArray& g, Rng& rng) {
    std::vector<double> data(static_cast<size_t>(g.size()));
    for (auto& x : data) x = rng.uniform(-1.0, 1.0);
    g.put(0, g.size(), data.data());
  }

  double max_diff_vs_reference() {
    std::vector<double> out(reference_.size());
    r_ga_->get(0, r_ga_->size(), out.data());
    double m = 0.0;
    for (size_t i = 0; i < out.size(); ++i) {
      m = std::max(m, std::fabs(out[i] - reference_[i]));
    }
    return m;
  }

  /// Run the PTG executor under `policy` on the crash-planned cluster.
  /// Fills per-rank kill flags and failure stats for the survivors.
  void run_with_policy(FailurePolicy policy) {
    r_ga_->zero();
    killed_.assign(8, false);
    failure_.assign(8, FailureStats{});
    std::mutex mu;
    cluster_->run([&](vc::RankCtx& rctx) {
      tce::PtgExecOptions opts;
      opts.variant = tce::VariantConfig::v5();
      opts.workers_per_rank = 2;
      opts.enable_failure_detection = true;
      opts.heartbeat_interval_ms = 2.0;
      opts.suspect_after_ms = 40.0;
      opts.confirm_after_ms = 120.0;
      opts.on_rank_failure = policy;
      opts.retry_limit = 1;
      const auto res = tce::execute_ptg(rctx, plan_, storage_, opts);
      std::lock_guard lock(mu);
      killed_[static_cast<size_t>(rctx.rank())] = res.killed;
      if (!res.killed) {
        failure_[static_cast<size_t>(rctx.rank())] = res.failure;
      }
    });
  }

  void expect_recovered_and_correct() {
    EXPECT_TRUE(killed_[kVictim]) << "the CrashPlan must have fired";
    for (int r = 0; r < 8; ++r) {
      if (r == kVictim) continue;
      EXPECT_FALSE(killed_[static_cast<size_t>(r)]) << "rank " << r;
      EXPECT_EQ(failure_[static_cast<size_t>(r)].validate(), "")
          << "rank " << r;
      EXPECT_EQ(failure_[static_cast<size_t>(r)].deaths_confirmed, 1u)
          << "rank " << r;
    }
    EXPECT_LT(max_diff_vs_reference(), 1e-12)
        << "recovery must reproduce the reference exactly";
  }

  std::unique_ptr<tce::TileSpace> space_;
  std::unique_ptr<tce::BlockTensor4> v_, t_, r_;
  tce::ChainPlan plan_;
  std::unique_ptr<vc::Cluster> cluster_;
  std::unique_ptr<ga::GlobalArray> v_ga_, t_ga_, r_ga_;
  tce::T2_7Storage storage_;
  std::vector<double> reference_;
  std::vector<bool> killed_;
  std::vector<FailureStats> failure_;
};

TEST_F(FailureT27, RetryMatchesReferenceAcrossAKill) {
  run_with_policy(FailurePolicy::kRetry);
  expect_recovered_and_correct();
}

TEST_F(FailureT27, DegradeMatchesReferenceAcrossAKill) {
  run_with_policy(FailurePolicy::kDegrade);
  expect_recovered_and_correct();
}

TEST_F(FailureT27, AbortRaisesInsteadOfHanging) {
  r_ga_->zero();
  try {
    cluster_->run([&](vc::RankCtx& rctx) {
      tce::PtgExecOptions opts;
      opts.variant = tce::VariantConfig::v5();
      opts.workers_per_rank = 2;
      opts.enable_failure_detection = true;
      opts.heartbeat_interval_ms = 2.0;
      opts.suspect_after_ms = 40.0;
      opts.confirm_after_ms = 120.0;
      opts.on_rank_failure = FailurePolicy::kAbort;
      (void)tce::execute_ptg(rctx, plan_, storage_, opts);
    });
    FAIL() << "policy=abort must raise a StateError on a confirmed death";
  } catch (const StateError& e) {
    const std::string msg = e.what();
    EXPECT_TRUE(msg.find("confirmed dead") != std::string::npos ||
                msg.find("aborted") != std::string::npos)
        << msg;
  }
}

// --- simulator: the death/recovery model ---

TEST(FailureSim, DeathMidRunRecoversEveryTask) {
  const auto p = sim::make_preset("tiny");
  sim::GraphOptions gopts;
  gopts.variant = tce::VariantConfig::v5();
  gopts.nodes = 4;
  const auto g = sim::build_graph(p.plan, gopts);

  sim::SimOptions base;
  base.cores_per_node = 4;
  const sim::SimResult clean = sim::simulate_ptg(g, base);

  sim::SimOptions fault = base;
  fault.fail_node = 2;
  fault.fail_time_s = clean.makespan * 0.5;
  const sim::SimResult rec = sim::simulate_ptg(g, fault);

  EXPECT_GT(rec.tasks_recovered, 0u);
  EXPECT_TRUE(std::isfinite(rec.makespan));
  // Re-executing a whole node's partition on the survivors costs time.
  EXPECT_GE(rec.makespan, clean.makespan * 0.999);
  // Recovery starts exactly one detection window after the death.
  EXPECT_NEAR(rec.recovery_started_at, fault.fail_time_s + fault.detect_delay_s,
              1e-9);

  // Deterministic: the same seeded death reproduces the same schedule.
  const sim::SimResult rec2 = sim::simulate_ptg(g, fault);
  EXPECT_DOUBLE_EQ(rec2.makespan, rec.makespan);
  EXPECT_EQ(rec2.tasks_recovered, rec.tasks_recovered);
  EXPECT_EQ(rec2.lineage_replays, rec.lineage_replays);
}

TEST(FailureSim, DetectDelayShiftsRecoveryStart) {
  const auto p = sim::make_preset("tiny");
  sim::GraphOptions gopts;
  gopts.variant = tce::VariantConfig::v5();
  gopts.nodes = 4;
  const auto g = sim::build_graph(p.plan, gopts);

  sim::SimOptions a;
  a.cores_per_node = 4;
  a.fail_node = 1;
  a.fail_time_s = 1e-4;
  a.detect_delay_s = 500e-6;
  sim::SimOptions b = a;
  b.detect_delay_s = 5e-3;

  const sim::SimResult ra = sim::simulate_ptg(g, a);
  const sim::SimResult rb = sim::simulate_ptg(g, b);
  EXPECT_NEAR(rb.recovery_started_at - ra.recovery_started_at,
              b.detect_delay_s - a.detect_delay_s, 1e-9);
  // A slower detector can only delay completion.
  EXPECT_GE(rb.makespan, ra.makespan * 0.999);
}

TEST(FailureSim, DeathDuringStealingStillCompletes) {
  const auto p = sim::make_preset("skewed_tile");
  sim::GraphOptions gopts;
  gopts.variant = tce::VariantConfig::v5();
  gopts.nodes = 8;
  const auto g = sim::build_graph(p.plan, gopts);

  sim::SimOptions opts;
  opts.cores_per_node = 8;
  opts.enable_stealing = true;
  const double clean = sim::simulate_ptg(g, opts).makespan;
  opts.fail_node = 3;
  opts.fail_time_s = clean * 0.3;  // during the steal-heavy ramp
  const sim::SimResult rec = sim::simulate_ptg(g, opts);
  EXPECT_GT(rec.tasks_recovered, 0u);
  EXPECT_TRUE(std::isfinite(rec.makespan));
  EXPECT_GT(rec.makespan, 0.0);
}

// --- the ga-layer ledger reassignment hook ---

TEST(MigrationLedgerFT, ReassignmentRetiresDeadThiefEntry) {
  ga::MigrationLedger ledger;
  const TaskKey key{0, params_of(7, 2)};
  ledger.migrated(key, /*home=*/1, /*holder=*/2);
  EXPECT_EQ(ledger.holder_of(key, 1), 2);

  // Rank 2 is confirmed dead; the home rank re-injects the task itself.
  ledger.reassigned(key, /*home=*/1, /*new_holder=*/1);
  EXPECT_EQ(ledger.holder_of(key, 1), 1);
  EXPECT_EQ(ledger.in_flight(), 0u);
  EXPECT_EQ(ledger.reassigned_count(), 1u);
  EXPECT_EQ(ledger.completed(), 0u) << "no credit ever arrives for a corpse";
  EXPECT_EQ(ledger.validate(), "");
  EXPECT_NE(ledger.describe().find("reassigned=1"), std::string::npos);
}

TEST(MigrationLedgerFT, ReassignmentWithoutRecordIsFlagged) {
  ga::MigrationLedger ledger;
  const TaskKey key{0, params_of(1)};
  ledger.reassigned(key, /*home=*/0, /*new_holder=*/0);
  EXPECT_NE(ledger.validate(), "")
      << "a reassignment must retire a recorded migration";
}

}  // namespace
}  // namespace mp::ptg
