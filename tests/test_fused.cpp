// Tests for the second ported subroutine (the hole-hole ladder) and for
// fused multi-subroutine execution — the paper's future-work direction:
// several CC subroutines running under one runtime context with no
// synchronization between them, sharing tensors directly.
#include <gtest/gtest.h>

#include <cmath>

#include "cc/ccsd.h"
#include "cc/integration.h"
#include "cc/model.h"
#include "sim/ptg_sim.h"
#include "sim/task_graph.h"
#include "support/rng.h"
#include "tce/chain_plan.h"
#include "tce/inspector.h"

namespace mp::cc {
namespace {

std::vector<double> mp2_tau(const SpinOrbitalSystem& sys) {
  const int O = sys.n_occ(), V = sys.n_virt();
  std::vector<double> tau(static_cast<size_t>(V) * V * O * O);
  for (int a = 0; a < V; ++a)
    for (int b = 0; b < V; ++b)
      for (int i = 0; i < O; ++i)
        for (int j = 0; j < O; ++j) {
          const double d = sys.f(i) + sys.f(j) - sys.f(O + a) - sys.f(O + b);
          tau[((static_cast<size_t>(a) * V + b) * O + i) * O + j] =
              sys.v(i, j, O + a, O + b) / d;
        }
  return tau;
}

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

TEST(DenseHhLadder, MatchesBruteForce) {
  const auto sys = make_synthetic(3, 3, 1.5, 0.1, 5);
  const int O = sys.n_occ(), V = sys.n_virt();
  const size_t n2 = static_cast<size_t>(V) * V * O * O;
  std::vector<double> tau(n2);
  Rng rng(9);
  for (auto& x : tau) x = rng.uniform(-1.0, 1.0);
  std::vector<double> out(n2, 0.0);
  dense_hh_ladder(sys, tau, out);
  auto t2i = [&](int a, int b, int i, int j) {
    return ((static_cast<size_t>(a) * V + b) * O + i) * O + j;
  };
  for (int b : {0, 2}) {
    for (int j : {1, 4}) {
      double s = 0.0;
      for (int m = 0; m < O; ++m)
        for (int n = 0; n < O; ++n) {
          s += 0.5 * sys.v(m, n, 0, j) * tau[t2i(1, b, m, n)];
        }
      EXPECT_NEAR(out[t2i(1, b, 0, j)], s, 1e-12);
    }
  }
}

TEST(DenseHhLadder, SizeValidation) {
  const auto sys = make_synthetic(1, 2, 1.0, 0.1, 1);
  std::vector<double> small(3, 0.0), out(3, 0.0);
  EXPECT_THROW(dense_hh_ladder(sys, small, out), InvalidArgument);
}

TEST(FusePlans, RemapsStoresAndRenumbersChains) {
  tce::ChainPlan p1;
  p1.store_sizes = {100, 200, 300};
  tce::Chain c1;
  c1.id = 0;
  c1.gemms.resize(1);
  p1.chains.push_back(c1);

  tce::ChainPlan p2;
  p2.store_sizes = {400, 200, 300};
  tce::Chain c2;
  c2.id = 0;
  c2.gemms.resize(2);
  p2.chains.push_back(c2);
  p2.chains.push_back(c2);

  const auto fused = tce::fuse_plans(p1, p2, {3, 1, 2});
  ASSERT_EQ(fused.store_sizes.size(), 4u);
  EXPECT_EQ(fused.store_sizes[3], 400);
  ASSERT_EQ(fused.chains.size(), 3u);
  EXPECT_EQ(fused.chains[0].id, 0);
  EXPECT_EQ(fused.chains[1].id, 1);
  EXPECT_EQ(fused.chains[2].id, 2);
  EXPECT_EQ(fused.chains[1].a_store, 3);
  EXPECT_EQ(fused.chains[1].b_store, 1);
  EXPECT_EQ(fused.chains[1].r_store, 2);
  EXPECT_EQ(fused.chains[0].a_store, 0);  // p1 chains unchanged
}

TEST(FusePlans, RejectsMismatchedSharedStore) {
  tce::ChainPlan p1;
  p1.store_sizes = {100, 200, 300};
  tce::ChainPlan p2;
  p2.store_sizes = {400, 999, 300};  // store 1 shared but different size
  EXPECT_THROW(tce::fuse_plans(p1, p2, {3, 1, 2}), InvalidArgument);
}

TEST(FusePlans, RejectsNonDenseStoreIds) {
  tce::ChainPlan p1;
  p1.store_sizes = {100, 200, 300};
  tce::ChainPlan p2;
  p2.store_sizes = {400, 200, 300};
  EXPECT_THROW(tce::fuse_plans(p1, p2, {5, 1, 2}), InvalidArgument);
}

class HhLadderIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = make_synthetic(3, 3, 1.5, 0.1, 41);
    ladder_ = std::make_unique<DistributedLadder>(sys_, 2, 2);
    tau_ = mp2_tau(sys_);
    pp_expected_.assign(tau_.size(), 0.0);
    dense_ladder(sys_, tau_, pp_expected_);
    hh_expected_.assign(tau_.size(), 0.0);
    dense_hh_ladder(sys_, tau_, hh_expected_);
  }

  SpinOrbitalSystem sys_;
  std::unique_ptr<DistributedLadder> ladder_;
  std::vector<double> tau_;
  std::vector<double> pp_expected_, hh_expected_;
};

TEST_F(HhLadderIntegration, PlansAreDistinct) {
  EXPECT_GT(ladder_->plan(Contraction::kHhLadder).chains.size(), 0u);
  EXPECT_EQ(ladder_->plan(Contraction::kFused).chains.size(),
            ladder_->plan(Contraction::kT2_7).chains.size() +
                ladder_->plan(Contraction::kHhLadder).chains.size());
  // hh chains use 'N','N' GEMMs; pp chains 'N','T'.
  EXPECT_EQ(ladder_->plan(Contraction::kHhLadder).chains[0].gemms[0].transb,
            'N');
  EXPECT_EQ(ladder_->plan(Contraction::kT2_7).chains[0].gemms[0].transb, 'T');
}

TEST_F(HhLadderIntegration, ReferenceMatchesDense) {
  LadderRunOptions opts;
  opts.kind = ExecKind::kReference;
  opts.contraction = Contraction::kHhLadder;
  const auto res = ladder_->run(tau_, opts);
  EXPECT_LT(max_abs_diff(res.r_dense, hh_expected_), 1e-12);
}

TEST_F(HhLadderIntegration, OriginalMatchesDense) {
  LadderRunOptions opts;
  opts.kind = ExecKind::kOriginal;
  opts.contraction = Contraction::kHhLadder;
  const auto res = ladder_->run(tau_, opts);
  EXPECT_LT(max_abs_diff(res.r_dense, hh_expected_), 1e-12);
}

TEST_F(HhLadderIntegration, AllPtgVariantsMatchDense) {
  for (const auto& variant : tce::VariantConfig::all()) {
    LadderRunOptions opts;
    opts.kind = ExecKind::kPtg;
    opts.contraction = Contraction::kHhLadder;
    opts.variant = variant;
    const auto res = ladder_->run(tau_, opts);
    EXPECT_LT(max_abs_diff(res.r_dense, hh_expected_), 1e-12)
        << "variant " << variant.name;
  }
}

TEST_F(HhLadderIntegration, FusedComputesBothContributions) {
  std::vector<double> both(tau_.size());
  for (size_t i = 0; i < both.size(); ++i) {
    both[i] = pp_expected_[i] + hh_expected_[i];
  }
  for (const auto kind : {ExecKind::kReference, ExecKind::kOriginal,
                          ExecKind::kPtg}) {
    LadderRunOptions opts;
    opts.kind = kind;
    opts.contraction = Contraction::kFused;
    const auto res = ladder_->run(tau_, opts);
    EXPECT_LT(max_abs_diff(res.r_dense, both), 1e-12)
        << "exec kind " << static_cast<int>(kind);
  }
}

TEST_F(HhLadderIntegration, FusedPtgRunsBothSubroutinesInOneContext) {
  LadderRunOptions opts;
  opts.kind = ExecKind::kPtg;
  opts.contraction = Contraction::kFused;
  opts.enable_tracing = true;
  const auto res = ladder_->run(tau_, opts);
  // Tasks from chains of both subroutines must appear.
  const auto& pp = ladder_->plan(Contraction::kT2_7);
  bool saw_pp = false, saw_hh = false;
  for (const auto& e : res.trace.events()) {
    if (e.is_comm) continue;
    if (e.p[0] < static_cast<int32_t>(pp.chains.size())) saw_pp = true;
    if (e.p[0] >= static_cast<int32_t>(pp.chains.size())) saw_hh = true;
  }
  EXPECT_TRUE(saw_pp);
  EXPECT_TRUE(saw_hh);
}

TEST(CcsdFused, AllKernelRoutesGiveSameEnergy) {
  const auto sys = make_synthetic(2, 3, 1.5, 0.1, 77);
  const auto dense = run_ccsd(sys);
  ASSERT_TRUE(dense.converged);

  DistributedLadder ladder(sys, 2, 2);

  // Route 1: pp distributed, hh dense.
  {
    CcsdOptions o;
    LadderRunOptions l;
    l.kind = ExecKind::kPtg;
    l.contraction = Contraction::kT2_7;
    o.ladder = ladder.make_kernel(l);
    const auto r = run_ccsd(sys, o);
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.e_corr, dense.e_corr, 1e-13);
  }
  // Route 2: both distributed separately.
  {
    CcsdOptions o;
    LadderRunOptions lp, lh;
    lp.kind = lh.kind = ExecKind::kPtg;
    lp.contraction = Contraction::kT2_7;
    lh.contraction = Contraction::kHhLadder;
    o.ladder = ladder.make_kernel(lp);
    o.hh_ladder = ladder.make_kernel(lh);
    const auto r = run_ccsd(sys, o);
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.e_corr, dense.e_corr, 1e-13);
  }
  // Route 3: fused — both subroutines under one runtime context.
  {
    CcsdOptions o;
    LadderRunOptions lf;
    lf.kind = ExecKind::kPtg;
    lf.contraction = Contraction::kFused;
    o.combined_ladders = ladder.make_kernel(lf);
    const auto r = run_ccsd(sys, o);
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.e_corr, dense.e_corr, 1e-13);
  }
}

TEST(FusedSim, FusedPlanSimulates) {
  // The simulator accepts fused plans directly (store-aware owner mapping).
  const auto sys = make_synthetic(3, 4, 1.5, 0.1, 55);
  DistributedLadder ladder(sys, 2, 2);
  const auto& fused = ladder.plan(Contraction::kFused);

  sim::GraphOptions gopts;
  gopts.variant = tce::VariantConfig::v5();
  gopts.nodes = 4;
  const auto g = sim::build_graph(fused, gopts);
  sim::SimOptions sopts;
  sopts.cores_per_node = 2;
  const auto res = sim::simulate_ptg(g, sopts);
  EXPECT_GT(res.makespan, 0.0);

  // Fused execution never exceeds the barrier-separated sum.
  auto one = [&](Contraction c) {
    const auto gg = sim::build_graph(ladder.plan(c), gopts);
    return sim::simulate_ptg(gg, sopts).makespan;
  };
  EXPECT_LE(res.makespan,
            (one(Contraction::kT2_7) + one(Contraction::kHhLadder)) * 1.001);
}

}  // namespace
}  // namespace mp::cc
