// Tests for the mini-TCE: tile spaces, block tensors, the inspection phase,
// and — most importantly — the equivalence of every executor (serial
// reference, original NXTVAL-style, all five PTG variants) on the same
// ChainPlan: the paper's claim that all variants compute identical results.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cc/integration.h"
#include "ga/global_array.h"
#include "support/rng.h"
#include "tce/block_tensor.h"
#include "tce/inspector.h"
#include "tce/original_exec.h"
#include "tce/ptg_exec.h"
#include "tce/reference_exec.h"
#include "tce/tiles.h"
#include "tce/variants.h"
#include "vc/cluster.h"

namespace mp::tce {
namespace {

TileSpaceSpec small_spec() {
  TileSpaceSpec s;
  s.n_occ_alpha = 3;
  s.n_occ_beta = 3;
  s.n_virt_alpha = 5;
  s.n_virt_beta = 5;
  s.tile_size = 2;
  return s;
}

TEST(TileSpace, TileCountsAndSizes) {
  TileSpace space(small_spec());
  // occ: 3 alpha -> tiles of 2+1, 3 beta -> 2+1 => 4 tiles
  EXPECT_EQ(space.num_occ_tiles(), 4);
  // virt: 5 -> 2+2+1 per spin => 6 tiles
  EXPECT_EQ(space.num_virt_tiles(), 6);
  EXPECT_EQ(space.n_occ(), 6);
  EXPECT_EQ(space.n_virt(), 10);
  int total = 0;
  for (const Tile& t : space.occ_tiles()) total += t.size;
  EXPECT_EQ(total, 6);
}

TEST(TileSpace, SpinLabelsPartition) {
  TileSpace space(small_spec());
  int alpha_orbs = 0, beta_orbs = 0;
  for (const Tile& t : space.virt_tiles()) {
    (t.spin == Spin::kAlpha ? alpha_orbs : beta_orbs) += t.size;
  }
  EXPECT_EQ(alpha_orbs, 5);
  EXPECT_EQ(beta_orbs, 5);
}

TEST(TileSpace, DenseOffsetsAreDisjointAndOrdered) {
  TileSpace space(small_spec());
  std::set<int> seen;
  for (int t = 0; t < space.num_virt_tiles(); ++t) {
    const int off = space.virt_dense_offset(t);
    const int sz = space.virt_tiles()[static_cast<size_t>(t)].size;
    for (int k = 0; k < sz; ++k) {
      EXPECT_TRUE(seen.insert(off + k).second) << "overlap at " << off + k;
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), space.n_virt());
}

TEST(TileSpace, RejectsBadSpec) {
  TileSpaceSpec s = small_spec();
  s.tile_size = 0;
  EXPECT_THROW(TileSpace{s}, InvalidArgument);
}

TEST(BlockTensor, SpinGuardFiltersBlocks) {
  TileSpace space(small_spec());
  BlockTensor4 t(space, {RangeKind::kVirt, RangeKind::kVirt, RangeKind::kOcc,
                         RangeKind::kOcc});
  const auto& vt = space.virt_tiles();
  const auto& ot = space.occ_tiles();
  for (const Tile& a : vt)
    for (const Tile& b : vt)
      for (const Tile& i : ot)
        for (const Tile& j : ot) {
          const bool expect =
              spin_conserving(a.spin, b.spin, i.spin, j.spin);
          EXPECT_EQ(t.has_block(a.index, b.index, i.index, j.index), expect);
        }
}

TEST(BlockTensor, TriangularRestrictionApplies) {
  TileSpace space(small_spec());
  BlockTensor4 r(space,
                 {RangeKind::kVirt, RangeKind::kVirt, RangeKind::kOcc,
                  RangeKind::kOcc},
                 true, true);
  EXPECT_FALSE(r.has_block(1, 0, 0, 0));
  EXPECT_FALSE(r.has_block(0, 1, 1, 0));
  EXPECT_TRUE(r.has_block(0, 1, 0, 1));
}

TEST(BlockTensor, GaSizeMatchesSumOfBlocks) {
  TileSpace space(small_spec());
  BlockTensor4 t(space, {RangeKind::kVirt, RangeKind::kVirt, RangeKind::kOcc,
                         RangeKind::kOcc});
  int64_t total = 0;
  for (const uint64_t k : t.index().keys()) {
    total += t.index().find(k)->size;
  }
  EXPECT_EQ(total, t.ga_size());
  EXPECT_GT(total, 0);
}

TEST(BlockTensor, ScatterGatherRoundTrip) {
  TileSpace space(small_spec());
  vc::Cluster cluster(2);
  BlockTensor4 t(space, {RangeKind::kVirt, RangeKind::kVirt, RangeKind::kOcc,
                         RangeKind::kOcc});
  ga::GlobalArray gga(&cluster, t.ga_size());

  const auto nd = t.dense_dims();
  std::vector<double> dense(
      static_cast<size_t>(nd[0]) * nd[1] * nd[2] * nd[3]);
  Rng rng(3);
  for (auto& x : dense) x = rng.uniform(-1.0, 1.0);

  t.scatter_dense(dense, gga);
  const auto back = t.gather_dense(gga);
  // Existing blocks round-trip; spin-forbidden entries come back zero.
  size_t nonzero = 0;
  for (size_t i = 0; i < dense.size(); ++i) {
    if (back[i] != 0.0) {
      EXPECT_DOUBLE_EQ(back[i], dense[i]);
      ++nonzero;
    }
  }
  EXPECT_GT(nonzero, 0u);
  EXPECT_LT(nonzero, dense.size());  // spin guard really filtered some
}

// --- inspection ---

struct PlanFixture {
  TileSpace space{small_spec()};
  BlockTensor4 v{space,
                 {RangeKind::kVirt, RangeKind::kVirt, RangeKind::kVirt,
                  RangeKind::kVirt}};
  BlockTensor4 t{space,
                 {RangeKind::kVirt, RangeKind::kVirt, RangeKind::kOcc,
                  RangeKind::kOcc}};
  BlockTensor4 r{space,
                 {RangeKind::kVirt, RangeKind::kVirt, RangeKind::kOcc,
                  RangeKind::kOcc},
                 true,
                 true};
  ChainPlan plan = inspect_t2_7(space, {&v, &t, &r});
};

TEST(Inspector, ProducesChains) {
  PlanFixture fx;
  EXPECT_GT(fx.plan.chains.size(), 0u);
  const auto st = fx.plan.stats();
  EXPECT_EQ(st.num_chains, fx.plan.chains.size());
  EXPECT_GT(st.num_gemms, st.num_chains);  // chains have multiple GEMMs
  EXPECT_GT(st.total_flops, 0.0);
  EXPECT_FALSE(st.describe().empty());
}

TEST(Inspector, ChainIdsAreDense) {
  PlanFixture fx;
  for (size_t i = 0; i < fx.plan.chains.size(); ++i) {
    EXPECT_EQ(fx.plan.chains[i].id, static_cast<int>(i));
  }
}

TEST(Inspector, SortCountIsOneTwoOrFour) {
  PlanFixture fx;
  bool saw1 = false, saw2 = false, saw4 = false;
  for (const Chain& c : fx.plan.chains) {
    const size_t ns = c.sorts.size();
    EXPECT_TRUE(ns == 1 || ns == 2 || ns == 4) << "chain " << c.id;
    saw1 |= (ns == 1);
    saw2 |= (ns == 2);
    saw4 |= (ns == 4);
    // Guard structure: diagonal pairs <=> extra sorts.
    const auto& ot = c.out_tiles;
    const size_t expect = 1u + (ot[0] == ot[1] ? 1u : 0u) +
                          (ot[2] == ot[3] ? 1u : 0u) +
                          (ot[0] == ot[1] && ot[2] == ot[3] ? 1u : 0u);
    EXPECT_EQ(ns, expect);
  }
  EXPECT_TRUE(saw1);
  EXPECT_TRUE(saw2);
  EXPECT_TRUE(saw4);
}

TEST(Inspector, ChainLengthsVaryWithSpin) {
  PlanFixture fx;
  const auto st = fx.plan.stats();
  EXPECT_LT(st.min_chain_len, st.max_chain_len)
      << "spin guards should make chains of different lengths";
}

TEST(Inspector, GemmDimsMatchBlocks) {
  PlanFixture fx;
  for (const Chain& c : fx.plan.chains) {
    for (const GemmOp& g : c.gemms) {
      EXPECT_EQ(g.m, c.m);
      EXPECT_EQ(g.n, c.n);
      EXPECT_GT(g.k, 0);
      EXPECT_DOUBLE_EQ(g.alpha, 0.5);
      // a block is m*k elements, b block is n*k elements
      EXPECT_EQ(fx.v.index().find(g.a_key)->size,
                static_cast<int64_t>(g.m) * g.k);
      EXPECT_EQ(fx.t.index().find(g.b_key)->size,
                static_cast<int64_t>(g.n) * g.k);
    }
    EXPECT_EQ(static_cast<int64_t>(c.c_dims[0] * c.c_dims[1]),
              static_cast<int64_t>(c.n));
    EXPECT_EQ(static_cast<int64_t>(c.c_dims[2] * c.c_dims[3]),
              static_cast<int64_t>(c.m));
  }
}

TEST(Variants, ConfigsAreConsistent) {
  for (const auto& v : VariantConfig::all()) {
    EXPECT_NO_THROW(v.validate());
  }
  EXPECT_FALSE(VariantConfig::v1().parallel_gemms);
  EXPECT_FALSE(VariantConfig::v2().priorities);
  EXPECT_TRUE(VariantConfig::v3().parallel_writes);
  EXPECT_FALSE(VariantConfig::v5().parallel_sorts);
  VariantConfig bad = VariantConfig::v3();
  bad.parallel_sorts = false;  // parallel writes without parallel sorts
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(Variants, PrioritySchemeMatchesPaperFormula) {
  const PriorityScheme p{100, 32};
  // max_L1 - L1 + offset*P
  EXPECT_DOUBLE_EQ(p.reader(10), 100 - 10 + 5 * 32);
  EXPECT_DOUBLE_EQ(p.gemm(10), 100 - 10 + 1 * 32);
  EXPECT_DOUBLE_EQ(p.other(10), 100 - 10);
  // Priorities decrease with chain number within a class.
  EXPECT_GT(p.gemm(3), p.gemm(4));
}

// --- executor equivalence (the paper's 14-digit agreement, claim C9) ---

class ExecutorEquivalence : public ::testing::Test {
 protected:
  void SetUp() override {
    fx_ = std::make_unique<PlanFixture>();
    cluster_ = std::make_unique<vc::Cluster>(3);
    v_ga_ = std::make_unique<ga::GlobalArray>(cluster_.get(), fx_->v.ga_size());
    t_ga_ = std::make_unique<ga::GlobalArray>(cluster_.get(), fx_->t.ga_size());
    r_ga_ = std::make_unique<ga::GlobalArray>(cluster_.get(), fx_->r.ga_size());

    // Random (non-symmetric) data: executor equivalence must hold for any
    // inputs since all executors perform the same arithmetic.
    Rng rng(11);
    fill_random(*v_ga_, rng);
    fill_random(*t_ga_, rng);

    storage_.v = {&fx_->v, v_ga_.get()};
    storage_.t = {&fx_->t, t_ga_.get()};
    storage_.r = {&fx_->r, r_ga_.get()};

    reference_.assign(static_cast<size_t>(fx_->r.ga_size()), 0.0);
    execute_reference(fx_->plan, storage_);
    r_ga_->get(0, fx_->r.ga_size(), reference_.data());
  }

  static void fill_random(ga::GlobalArray& g, Rng& rng) {
    std::vector<double> data(static_cast<size_t>(g.size()));
    for (auto& x : data) x = rng.uniform(-1.0, 1.0);
    g.put(0, g.size(), data.data());
  }

  double max_diff_vs_reference() {
    std::vector<double> out(reference_.size());
    r_ga_->get(0, r_ga_->size(), out.data());
    double m = 0.0;
    for (size_t i = 0; i < out.size(); ++i) {
      m = std::max(m, std::fabs(out[i] - reference_[i]));
    }
    return m;
  }

  std::unique_ptr<PlanFixture> fx_;
  std::unique_ptr<vc::Cluster> cluster_;
  std::unique_ptr<ga::GlobalArray> v_ga_, t_ga_, r_ga_;
  T2_7Storage storage_;
  std::vector<double> reference_;
};

TEST_F(ExecutorEquivalence, ReferenceIsDeterministic) {
  r_ga_->zero();
  execute_reference(fx_->plan, storage_);
  EXPECT_EQ(max_diff_vs_reference(), 0.0);
}

TEST_F(ExecutorEquivalence, OriginalMatchesReference) {
  r_ga_->zero();
  ga::NxtVal nxtval(cluster_.get(), 1);
  OriginalExecOptions opts;
  opts.workers_per_rank = 2;
  cluster_->run([&](vc::RankCtx& rctx) {
    execute_original(rctx, fx_->plan, storage_, nxtval, opts);
  });
  EXPECT_LT(max_diff_vs_reference(), 1e-12);
}

class PtgVariantEquivalence
    : public ExecutorEquivalence,
      public ::testing::WithParamInterface<int> {};

TEST_P(PtgVariantEquivalence, MatchesReference) {
  const auto variant = VariantConfig::all()[static_cast<size_t>(GetParam())];
  r_ga_->zero();
  PtgExecOptions opts;
  opts.variant = variant;
  opts.workers_per_rank = 2;
  uint64_t total_tasks = 0, total_expected = 0;
  std::mutex mu;
  cluster_->run([&](vc::RankCtx& rctx) {
    const auto res = execute_ptg(rctx, fx_->plan, storage_, opts);
    std::lock_guard lock(mu);
    total_tasks += res.tasks_executed;
    total_expected += res.expected_tasks;
  });
  EXPECT_EQ(total_tasks, total_expected);
  EXPECT_LT(max_diff_vs_reference(), 1e-12)
      << "variant " << variant.name << " diverged from reference";
}

INSTANTIATE_TEST_SUITE_P(AllVariants, PtgVariantEquivalence,
                         ::testing::Range(0, 5), [](const auto& info) {
                           return VariantConfig::all()[static_cast<size_t>(
                                                           info.param)]
                               .name;
                         });

TEST_F(ExecutorEquivalence, PtgTaskCountsMatchVariantStructure) {
  // For v5: tasks = 2*gemms (reads) + gemms + (gemms - 1 per chain with
  // len>1 reduces) + 1 sort + 1 write per chain.
  const auto st = fx_->plan.stats();
  uint64_t expect = 3 * st.num_gemms + st.num_chains * 2;
  for (const Chain& c : fx_->plan.chains) {
    if (c.gemms.size() > 1) expect += c.gemms.size() - 1;
  }
  r_ga_->zero();
  PtgExecOptions opts;
  opts.variant = VariantConfig::v5();
  uint64_t total_tasks = 0;
  std::mutex mu;
  cluster_->run([&](vc::RankCtx& rctx) {
    const auto res = execute_ptg(rctx, fx_->plan, storage_, opts);
    std::lock_guard lock(mu);
    total_tasks += res.tasks_executed;
  });
  EXPECT_EQ(total_tasks, expect);
}

TEST_F(ExecutorEquivalence, TracingProducesEventsForAllClasses) {
  r_ga_->zero();
  PtgExecOptions opts;
  opts.variant = VariantConfig::v4();
  opts.enable_tracing = true;
  std::set<int16_t> classes_seen;
  std::mutex mu;
  cluster_->run([&](vc::RankCtx& rctx) {
    const auto res = execute_ptg(rctx, fx_->plan, storage_, opts);
    std::lock_guard lock(mu);
    for (const auto& e : res.trace.events()) {
      if (!e.is_comm) classes_seen.insert(e.cls);
    }
  });
  // v4: READ_A, READ_B, GEMM, REDUCE, SORT_i, WRITE_C = 6 classes.
  EXPECT_EQ(classes_seen.size(), 6u);
}

}  // namespace
}  // namespace mp::tce
