// Tests for the virtual cluster: mailboxes, wire serialization, fabric
// routing (immediate and delayed), SPMD execution, collectives, counters.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "vc/cluster.h"
#include "vc/fabric.h"
#include "vc/mailbox.h"
#include "vc/message.h"

namespace mp::vc {
namespace {

using namespace std::chrono_literals;

TEST(Wire, PodRoundTrip) {
  WireWriter w;
  w.put<int32_t>(-7);
  w.put<uint64_t>(123456789ULL);
  w.put<double>(3.5);
  const Payload p = w.take();
  WireReader r(p);
  EXPECT_EQ(r.get<int32_t>(), -7);
  EXPECT_EQ(r.get<uint64_t>(), 123456789ULL);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.5);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, DoubleArrayRoundTrip) {
  WireWriter w;
  std::vector<double> xs{1.0, -2.0, 0.25};
  w.put_doubles(xs.data(), xs.size());
  const Payload p = w.take();
  WireReader r(p);
  EXPECT_EQ(r.get_doubles(), xs);
}

TEST(Wire, TruncatedMessageThrows) {
  WireWriter w;
  w.put<int32_t>(1);
  const Payload p = w.take();
  WireReader r(p);
  EXPECT_THROW(r.get<uint64_t>(), InvalidArgument);
}

TEST(Mailbox, PushPopFifo) {
  Mailbox mb;
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.tag = i;
    EXPECT_TRUE(mb.push(std::move(m)));
  }
  for (int i = 0; i < 5; ++i) {
    auto m = mb.try_pop();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->tag, i);
  }
  EXPECT_FALSE(mb.try_pop().has_value());
}

TEST(Mailbox, PopWaitTimesOut) {
  Mailbox mb;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(mb.pop_wait(5ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 4ms);
}

TEST(Mailbox, PopWaitWakesOnPush) {
  Mailbox mb;
  std::thread t([&] {
    std::this_thread::sleep_for(2ms);
    Message m;
    m.tag = 42;
    mb.push(std::move(m));
  });
  auto m = mb.pop_wait(500ms);
  t.join();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->tag, 42);
}

TEST(Mailbox, CloseWakesWaitersAndRejectsPush) {
  Mailbox mb;
  std::thread t([&] {
    std::this_thread::sleep_for(2ms);
    mb.close();
  });
  EXPECT_FALSE(mb.pop_wait(1s).has_value());
  t.join();
  Message m;
  EXPECT_FALSE(mb.push(std::move(m)));
  EXPECT_TRUE(mb.closed());
}

TEST(Mailbox, DrainAfterClose) {
  Mailbox mb;
  Message m;
  m.tag = 1;
  mb.push(std::move(m));
  mb.close();
  EXPECT_TRUE(mb.try_pop().has_value());
}

// --- per-source wire-sequence dedup (idempotent delivery) ---

TEST(Mailbox, DuplicateSeqFilteredButPushSucceeds) {
  Mailbox box;
  Message m;
  m.src = 1;
  m.tag = 7;
  m.seq = 5;
  EXPECT_TRUE(box.push(m));
  // The redundant copy reports success — from the fabric's point of view
  // it was delivered — but never reaches the queue.
  EXPECT_TRUE(box.push(m));
  EXPECT_EQ(box.size(), 1u);
  EXPECT_EQ(box.duplicates_filtered(), 1u);
}

TEST(Mailbox, SeqZeroIsNeverFiltered) {
  // seq 0 marks unstamped messages (tests, local control paths); they
  // bypass the exactly-once window entirely.
  Mailbox box;
  Message m;
  m.src = 1;
  m.seq = 0;
  EXPECT_TRUE(box.push(m));
  EXPECT_TRUE(box.push(m));
  EXPECT_EQ(box.size(), 2u);
  EXPECT_EQ(box.duplicates_filtered(), 0u);
}

TEST(Mailbox, OutOfOrderSeqsAcceptedOnceEach) {
  // Reordered delivery (3, 1, 2) is fine — each seq passes once — and a
  // full replay of the same window is discarded wholesale.
  Mailbox box;
  for (uint64_t seq : {3u, 1u, 2u}) {
    Message m;
    m.src = 2;
    m.seq = seq;
    EXPECT_TRUE(box.push(std::move(m)));
  }
  EXPECT_EQ(box.size(), 3u);
  for (uint64_t seq : {1u, 2u, 3u}) {
    Message m;
    m.src = 2;
    m.seq = seq;
    EXPECT_TRUE(box.push(std::move(m)));
  }
  EXPECT_EQ(box.size(), 3u);
  EXPECT_EQ(box.duplicates_filtered(), 3u);
}

TEST(Mailbox, SeqWindowsArePerSource) {
  // The same seq from two different sources is two distinct messages.
  Mailbox box;
  for (int src : {0, 1}) {
    Message m;
    m.src = src;
    m.seq = 9;
    EXPECT_TRUE(box.push(std::move(m)));
  }
  EXPECT_EQ(box.size(), 2u);
  EXPECT_EQ(box.duplicates_filtered(), 0u);
}

TEST(Fabric, InjectedDuplicateOfStampedMessageReachesRuntimeOnce) {
  // End-to-end: the fabric stamps seq before the fault draw, so a dup
  // fault produces two copies with the same seq and the destination
  // mailbox keeps exactly one. (Contrast InjectedDuplicatesDeliverTwice
  // below, whose src-less messages bypass stamping.)
  std::vector<Mailbox> boxes(2);
  FabricConfig cfg;
  cfg.faults.dup_prob = 1.0;
  Fabric f(&boxes, cfg);
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.tag = i;
    f.send(std::move(m));
  }
  EXPECT_EQ(f.stats().faults_duplicated, 5u);
  EXPECT_EQ(boxes[1].size(), 5u);
  EXPECT_EQ(boxes[1].duplicates_filtered(), 5u);
}

TEST(Fabric, ImmediateDelivery) {
  std::vector<Mailbox> boxes(2);
  Fabric f(&boxes, {});
  Message m;
  m.src = 0;
  m.dst = 1;
  m.tag = 9;
  f.send(std::move(m));
  auto got = boxes[1].try_pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tag, 9);
  EXPECT_EQ(f.messages_sent(), 1u);
}

TEST(Fabric, RejectsBadDestination) {
  std::vector<Mailbox> boxes(2);
  Fabric f(&boxes, {});
  Message m;
  m.dst = 5;
  EXPECT_THROW(f.send(std::move(m)), InvalidArgument);
}

TEST(Fabric, DelayedDeliveryPreservesOrder) {
  std::vector<Mailbox> boxes(1);
  FabricConfig cfg;
  cfg.latency_us = 200.0;
  Fabric f(&boxes, cfg);
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.dst = 0;
    m.tag = i;
    f.send(std::move(m));
  }
  for (int i = 0; i < 10; ++i) {
    auto m = boxes[0].pop_wait(1s);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->tag, i);
  }
}

TEST(Fabric, DelayedDeliveryAddsLatency) {
  std::vector<Mailbox> boxes(1);
  FabricConfig cfg;
  cfg.latency_us = 3000.0;
  Fabric f(&boxes, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  Message m;
  m.dst = 0;
  f.send(std::move(m));
  auto got = boxes[0].pop_wait(1s);
  ASSERT_TRUE(got.has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 2500us);
}

TEST(Fabric, ShutdownFlushesPending) {
  std::vector<Mailbox> boxes(1);
  FabricConfig cfg;
  cfg.latency_us = 50000.0;  // long enough that shutdown happens first
  auto f = std::make_unique<Fabric>(&boxes, cfg);
  Message m;
  m.dst = 0;
  m.tag = 77;
  f->send(std::move(m));
  f->shutdown();
  auto got = boxes[0].try_pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tag, 77);
}

TEST(Fabric, ShutdownReturnsPromptlyAndLosesNothing) {
  // Regression: the delivery loop used to keep sleeping until every
  // simulated delivery deadline elapsed, so shutdown() on a 2-second-latency
  // fabric took 2 seconds. It must be bounded by the flush, not the delays.
  std::vector<Mailbox> boxes(2);
  FabricConfig cfg;
  cfg.latency_us = 2e6;  // 2 s
  Fabric f(&boxes, cfg);
  const int n = 25;
  for (int i = 0; i < n; ++i) {
    Message m;
    m.dst = i % 2;
    m.tag = i;
    f.send(std::move(m));
  }
  const auto t0 = std::chrono::steady_clock::now();
  f.shutdown();
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 1s);
  EXPECT_EQ(boxes[0].size() + boxes[1].size(), static_cast<size_t>(n));
  const FabricStats s = f.stats();
  EXPECT_EQ(s.messages_sent, static_cast<uint64_t>(n));
  EXPECT_EQ(s.messages_dropped, 0u);
}

TEST(Fabric, SendAfterShutdownCountsDroppedNotSent) {
  // Regression: messages refused during shutdown were still counted as
  // sent. They must land in messages_dropped instead.
  std::vector<Mailbox> boxes(1);
  FabricConfig cfg;
  cfg.latency_us = 100.0;
  Fabric f(&boxes, cfg);
  f.shutdown();
  Message m;
  m.dst = 0;
  m.payload.assign(16, 0);
  f.send(std::move(m));
  const FabricStats s = f.stats();
  EXPECT_EQ(s.messages_sent, 0u);
  EXPECT_EQ(s.bytes_sent, 0u);
  EXPECT_EQ(s.messages_dropped, 1u);
  EXPECT_EQ(s.bytes_dropped, 16u);
  EXPECT_EQ(f.messages_dropped(), 1u);
  EXPECT_FALSE(boxes[0].try_pop().has_value());
}

TEST(Fabric, InjectedDropsCountedAndNotDelivered) {
  std::vector<Mailbox> boxes(1);
  FabricConfig cfg;
  cfg.faults.drop_prob = 1.0;
  Fabric f(&boxes, cfg);
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.dst = 0;
    f.send(std::move(m));
  }
  EXPECT_FALSE(boxes[0].try_pop().has_value());
  const FabricStats s = f.stats();
  EXPECT_EQ(s.messages_sent, 10u);
  EXPECT_EQ(s.faults_dropped, 10u);
  EXPECT_EQ(s.messages_dropped, 0u);  // faults are not shutdown drops
}

TEST(Fabric, InjectedDuplicatesDeliverTwice) {
  std::vector<Mailbox> boxes(1);
  FabricConfig cfg;
  cfg.faults.dup_prob = 1.0;
  Fabric f(&boxes, cfg);
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.dst = 0;
    m.tag = i;
    f.send(std::move(m));
  }
  EXPECT_EQ(boxes[0].size(), 10u);
  EXPECT_EQ(f.stats().faults_duplicated, 5u);
  EXPECT_EQ(f.stats().messages_sent, 5u);
}

TEST(Fabric, FaultPatternIsSeedDeterministic) {
  auto run_once = [](uint64_t seed) {
    std::vector<Mailbox> boxes(1);
    FabricConfig cfg;
    cfg.faults.drop_prob = 0.5;
    cfg.fault_seed = seed;
    Fabric f(&boxes, cfg);
    for (int i = 0; i < 100; ++i) {
      Message m;
      m.dst = 0;
      m.tag = i;
      f.send(std::move(m));
    }
    std::vector<int> delivered;
    while (auto m = boxes[0].try_pop()) delivered.push_back(m->tag);
    return delivered;
  };
  const auto a = run_once(42), b = run_once(42), c = run_once(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_GT(a.size(), 0u);
  EXPECT_LT(a.size(), 100u);
}

TEST(Fabric, PerLinkFaultOverride) {
  std::vector<Mailbox> boxes(2);
  FabricConfig cfg;
  cfg.link_faults[{0, 1}] = FaultConfig{/*drop_prob=*/1.0, 0.0, 0.0};
  Fabric f(&boxes, cfg);
  for (int dst = 0; dst < 2; ++dst) {
    Message m;
    m.src = 0;
    m.dst = dst;
    f.send(std::move(m));
  }
  EXPECT_TRUE(boxes[0].try_pop().has_value());   // healthy link
  EXPECT_FALSE(boxes[1].try_pop().has_value());  // faulty link
  EXPECT_EQ(f.stats().faults_dropped, 1u);
}

TEST(Fabric, ReorderJitterStillDeliversEverything) {
  std::vector<Mailbox> boxes(1);
  FabricConfig cfg;
  cfg.faults.reorder_jitter_us = 500.0;  // jitter alone forces delayed mode
  Fabric f(&boxes, cfg);
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    Message m;
    m.dst = 0;
    m.tag = i;
    f.send(std::move(m));
  }
  std::vector<bool> seen(n, false);
  for (int i = 0; i < n; ++i) {
    auto m = boxes[0].pop_wait(1s);
    ASSERT_TRUE(m.has_value());
    ASSERT_GE(m->tag, 0);
    ASSERT_LT(m->tag, n);
    EXPECT_FALSE(seen[static_cast<size_t>(m->tag)]);
    seen[static_cast<size_t>(m->tag)] = true;
  }
  EXPECT_GT(f.stats().faults_reordered, 0u);
}

TEST(Cluster, RunExecutesEveryRank) {
  Cluster c(4);
  std::atomic<int> mask{0};
  c.run([&](RankCtx& ctx) { mask.fetch_or(1 << ctx.rank()); });
  EXPECT_EQ(mask.load(), 0xF);
}

TEST(Cluster, SendRecvAcrossRanks) {
  Cluster c(2);
  c.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      WireWriter w;
      w.put<int>(123);
      ctx.send(1, 7, w.take());
    } else {
      auto m = ctx.mailbox().pop_wait(2s);
      ASSERT_TRUE(m.has_value());
      EXPECT_EQ(m->src, 0);
      EXPECT_EQ(m->tag, 7);
      WireReader r(m->payload);
      EXPECT_EQ(r.get<int>(), 123);
    }
  });
}

TEST(Cluster, BarrierSynchronizes) {
  Cluster c(3);
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  c.run([&](RankCtx& ctx) {
    before.fetch_add(1);
    ctx.barrier();
    if (before.load() != 3) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

TEST(Cluster, AllreduceSum) {
  Cluster c(4);
  std::vector<double> results(4, 0.0);
  c.run([&](RankCtx& ctx) {
    results[static_cast<size_t>(ctx.rank())] =
        ctx.allreduce_sum(static_cast<double>(ctx.rank() + 1));
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 10.0);
}

TEST(Cluster, AllreduceMax) {
  Cluster c(3);
  std::vector<double> results(3, 0.0);
  c.run([&](RankCtx& ctx) {
    results[static_cast<size_t>(ctx.rank())] =
        ctx.allreduce_max(static_cast<double>((ctx.rank() * 7) % 5));
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 4.0);
}

TEST(Cluster, BackToBackAllreducesDontInterfere) {
  Cluster c(4);
  std::atomic<bool> bad{false};
  c.run([&](RankCtx& ctx) {
    for (int i = 0; i < 20; ++i) {
      const double s = ctx.allreduce_sum(1.0);
      if (s != 4.0) bad.store(true);
    }
  });
  EXPECT_FALSE(bad.load());
}

TEST(Cluster, AllreduceSkipsDeadRankSlotsAfterKill) {
  // A killed rank's reduce slot keeps its contribution from the last
  // pre-crash reduction. Survivors are allowed to keep reducing after a
  // kill (only the victim stops joining collectives), so the rank-0 fold
  // must skip dead ranks' slots or every post-kill allreduce silently
  // includes the stale value.
  Cluster c(3);
  std::vector<double> pre(3, -1.0), post(3, -1.0);
  c.run([&](RankCtx& ctx) {
    pre[static_cast<size_t>(ctx.rank())] =
        ctx.allreduce_sum(static_cast<double>(ctx.rank() + 1));
    ctx.barrier();
    if (ctx.rank() == 0) c.kill_rank(2);
    ctx.barrier();  // kill visible to everyone past this point
    if (ctx.rank() == 2) {
      ctx.barrier_drop();
      return;
    }
    post[static_cast<size_t>(ctx.rank())] =
        ctx.allreduce_sum(static_cast<double>(ctx.rank() + 1));
  });
  for (double r : pre) EXPECT_DOUBLE_EQ(r, 6.0);
  EXPECT_DOUBLE_EQ(post[0], 3.0) << "stale dead-rank slot folded in";
  EXPECT_DOUBLE_EQ(post[1], 3.0) << "stale dead-rank slot folded in";
  EXPECT_DOUBLE_EQ(post[2], -1.0) << "a dead rank must not keep reducing";
}

TEST(Cluster, SharedCounterIsMonotonicAcrossRanks) {
  Cluster c(4);
  std::mutex mu;
  std::vector<long> tickets;
  c.run([&](RankCtx& ctx) {
    for (int i = 0; i < 100; ++i) {
      const long t = ctx.cluster().fetch_add_counter(0, 1);
      std::lock_guard lock(mu);
      tickets.push_back(t);
    }
  });
  std::sort(tickets.begin(), tickets.end());
  for (size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(tickets[i], static_cast<long>(i));  // unique & dense
  }
}

TEST(Cluster, ExceptionInRankPropagates) {
  Cluster c(2);
  EXPECT_THROW(c.run([&](RankCtx& ctx) {
    if (ctx.rank() == 1) throw std::runtime_error("rank 1 failed");
  }),
               std::runtime_error);
}

TEST(Cluster, RejectsZeroRanks) {
  EXPECT_THROW(Cluster c(0), InvalidArgument);
}

// --- endpoint failures: crashes, partitions, incarnations ---

TEST(Mailbox, ResetSourceDropsTheDedupWindow) {
  Mailbox box;
  for (uint64_t s = 1; s <= 3; ++s) {
    Message m;
    m.src = 1;
    m.seq = s;
    EXPECT_TRUE(box.push(std::move(m)));
  }
  EXPECT_EQ(box.size(), 3u);

  // The old incarnation's seqs are now duplicates...
  Message dup;
  dup.src = 1;
  dup.seq = 2;
  EXPECT_TRUE(box.push(std::move(dup)));
  EXPECT_EQ(box.size(), 3u);
  EXPECT_EQ(box.duplicates_filtered(), 1u);

  // ...until the source is declared a new incarnation. A fresh wire
  // sequence restarting at 1 must flow, and other sources' windows are
  // untouched.
  box.reset_source(1);
  Message fresh;
  fresh.src = 1;
  fresh.seq = 1;
  EXPECT_TRUE(box.push(std::move(fresh)));
  EXPECT_EQ(box.size(), 4u);
  EXPECT_EQ(box.duplicates_filtered(), 1u);
}

TEST(Fabric, KilledRankBlackholesBothDirections) {
  std::vector<Mailbox> boxes(2);
  Fabric f(&boxes, {});
  f.kill_rank(1);
  EXPECT_TRUE(f.is_dead(1));

  Message to_dead;
  to_dead.src = 0;
  to_dead.dst = 1;
  f.send(std::move(to_dead));
  Message from_dead;
  from_dead.src = 1;
  from_dead.dst = 0;
  f.send(std::move(from_dead));

  EXPECT_FALSE(boxes[0].try_pop().has_value());
  EXPECT_FALSE(boxes[1].try_pop().has_value());
  const FabricStats s = f.stats();
  EXPECT_EQ(s.faults_crashed, 2u);
  EXPECT_EQ(s.ranks_killed, 1u);
  EXPECT_EQ(s.validate(), "");
}

TEST(Fabric, KillRankIsIdempotent) {
  std::vector<Mailbox> boxes(2);
  Fabric f(&boxes, {});
  f.kill_rank(1);
  f.kill_rank(1);
  EXPECT_EQ(f.stats().ranks_killed, 1u);
}

TEST(Fabric, CrashPlanFiresAtTheExactAcceptCount) {
  std::vector<Mailbox> boxes(2);
  FabricConfig cfg;
  cfg.crash_plans.push_back({/*victim=*/1, /*after_messages=*/3});
  Fabric f(&boxes, cfg);
  int killed = -1, calls = 0;
  f.set_kill_callback([&](int r) {
    killed = r;
    ++calls;
  });

  for (int i = 0; i < 2; ++i) {
    Message m;
    m.src = 0;
    m.dst = 1;
    f.send(std::move(m));
  }
  EXPECT_FALSE(f.is_dead(1)) << "two accepted messages must not trigger";

  Message third;
  third.src = 0;
  third.dst = 1;
  f.send(std::move(third));
  EXPECT_TRUE(f.is_dead(1));
  EXPECT_EQ(killed, 1);
  EXPECT_EQ(calls, 1);

  // Post-crash traffic to the victim is blackholed; the first three
  // messages were delivered before it fired.
  Message late;
  late.src = 0;
  late.dst = 1;
  f.send(std::move(late));
  EXPECT_EQ(boxes[1].size(), 3u);
  EXPECT_EQ(f.stats().faults_crashed, 1u);
  EXPECT_EQ(f.stats().validate(), "");
}

TEST(Fabric, OneSidedPartitionSwallowsOnlyThatDirection) {
  std::vector<Mailbox> boxes(2);
  Fabric f(&boxes, {});
  f.partition(0, 1);
  EXPECT_TRUE(f.partitioned(0, 1));
  EXPECT_FALSE(f.partitioned(1, 0));

  Message fwd;
  fwd.src = 0;
  fwd.dst = 1;
  fwd.tag = 7;
  f.send(std::move(fwd));
  Message rev;
  rev.src = 1;
  rev.dst = 0;
  rev.tag = 8;
  f.send(std::move(rev));

  EXPECT_FALSE(boxes[1].try_pop().has_value());
  auto got = boxes[0].try_pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tag, 8);
  EXPECT_EQ(f.stats().faults_partitioned, 1u);
  EXPECT_EQ(f.stats().validate(), "");

  f.heal(0, 1);
  Message healed;
  healed.src = 0;
  healed.dst = 1;
  healed.tag = 9;
  f.send(std::move(healed));
  auto got2 = boxes[1].try_pop();
  ASSERT_TRUE(got2.has_value());
  EXPECT_EQ(got2->tag, 9);
}

TEST(Fabric, RevivedRankIsANewIncarnationNeedingResetSource) {
  // The revived rank's wire sequence restarts, so without reset_source the
  // receiver's dedup window silently blackholes the new incarnation — the
  // exact trap the Mailbox API exists for.
  std::vector<Mailbox> boxes(2);
  Fabric f(&boxes, {});
  for (int i = 0; i < 3; ++i) {
    Message m;
    m.src = 1;
    m.dst = 0;
    f.send(std::move(m));
  }
  EXPECT_EQ(boxes[0].size(), 3u);

  f.kill_rank(1);
  f.revive_rank(1);

  Message stale;
  stale.src = 1;
  stale.dst = 0;
  f.send(std::move(stale));  // stamped seq 1 again
  EXPECT_EQ(boxes[0].size(), 3u) << "filtered as a duplicate of the corpse";
  EXPECT_EQ(boxes[0].duplicates_filtered(), 1u);

  boxes[0].reset_source(1);
  Message fresh;
  fresh.src = 1;
  fresh.dst = 0;
  f.send(std::move(fresh));
  EXPECT_EQ(boxes[0].size(), 4u);
}

TEST(Cluster, KillRankClosesMailboxAndReviveRestoresDelivery) {
  Cluster c(3);
  c.kill_rank(1);
  EXPECT_TRUE(c.is_dead(1));
  EXPECT_TRUE(c.mailbox(1).closed());
  c.kill_rank(1);  // idempotent
  EXPECT_EQ(c.fabric().stats().ranks_killed, 1u);

  // revive_rank resets every survivor's dedup window for the new
  // incarnation, so rank 1 can speak again end to end.
  c.revive_rank(1);
  EXPECT_FALSE(c.is_dead(1));
  EXPECT_FALSE(c.mailbox(1).closed());
  Message m;
  m.src = 1;
  m.dst = 0;
  m.tag = 42;
  c.fabric().send(std::move(m));
  auto got = c.mailbox(0).try_pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tag, 42);
}

// ---------------------------------------------------------------------------
// SeqWindow direct property tests (the exactly-once object shared by the
// runtime mailboxes and the mp-explore model checker).

TEST(SeqWindow, AcceptsEachSeqExactlyOnce) {
  SeqWindow w;
  EXPECT_TRUE(w.accept(1));
  EXPECT_TRUE(w.accept(2));
  EXPECT_FALSE(w.accept(1));
  EXPECT_FALSE(w.accept(2));
  EXPECT_EQ(w.watermark, 2u);
  EXPECT_EQ(w.backlog(), 0u);
}

TEST(SeqWindow, ReorderBeyondContiguousPrefixParksAbove) {
  SeqWindow w;
  // Arbitrary reorder: the contiguous prefix drains into the watermark,
  // everything past a gap is remembered individually.
  EXPECT_TRUE(w.accept(3));
  EXPECT_TRUE(w.accept(7));
  EXPECT_TRUE(w.accept(1));
  EXPECT_EQ(w.watermark, 1u);
  EXPECT_EQ(w.backlog(), 2u);  // 3 and 7 parked
  EXPECT_FALSE(w.accept(3));   // parked seqs are still duplicates
  EXPECT_FALSE(w.accept(7));
  EXPECT_TRUE(w.accept(2));  // fills the gap: drains 2,3 -> watermark 3
  EXPECT_EQ(w.watermark, 3u);
  EXPECT_EQ(w.backlog(), 1u);  // 7 remains
  EXPECT_TRUE(w.accept(4));
  EXPECT_TRUE(w.accept(5));
  EXPECT_TRUE(w.accept(6));
  EXPECT_EQ(w.watermark, 7u);  // 7 drained with the prefix
  EXPECT_EQ(w.backlog(), 0u);
}

TEST(SeqWindow, RebaseCollapsesGapsToHighWater) {
  SeqWindow w;
  EXPECT_TRUE(w.accept(1));
  EXPECT_TRUE(w.accept(5));  // gap: 2..4 dropped by the fabric
  EXPECT_TRUE(w.accept(9));
  EXPECT_EQ(w.watermark, 1u);
  EXPECT_EQ(w.backlog(), 2u);
  w.rebase();
  EXPECT_EQ(w.watermark, 9u);
  EXPECT_EQ(w.backlog(), 0u);
  // Everything at or below the high-water mark is now a duplicate...
  EXPECT_FALSE(w.accept(3));
  EXPECT_FALSE(w.accept(9));
  // ...and fresh seqs continue from there.
  EXPECT_TRUE(w.accept(10));
  EXPECT_EQ(w.watermark, 10u);
}

TEST(SeqWindow, RebaseOnEmptyAboveIsANoOp) {
  SeqWindow w;
  EXPECT_TRUE(w.accept(1));
  EXPECT_TRUE(w.accept(2));
  w.rebase();
  EXPECT_EQ(w.watermark, 2u);
  EXPECT_TRUE(w.accept(3));
}

TEST(SeqWindow, DuplicateAfterRebaseStaysFiltered) {
  SeqWindow w;
  EXPECT_TRUE(w.accept(2));  // seq 1 still in flight
  w.rebase();                // quiescent-point collapse: watermark = 2
  // The straggler arrives after the rebase. Its seq is below the new
  // watermark, so the window (conservatively, and correctly for same-
  // incarnation traffic) treats it as already seen.
  EXPECT_FALSE(w.accept(1));
  EXPECT_FALSE(w.accept(2));
  EXPECT_TRUE(w.accept(3));
}

TEST(SeqWindow, RebaseAroundWrapKeepsMonotonicity) {
  // Near the top of the 64-bit seq space the window must stay monotone:
  // rebase jumps to the maximum accepted seq and near-max arithmetic does
  // not overflow back to small watermarks.
  const uint64_t top = ~0ULL;
  SeqWindow w;
  w.watermark = top - 5;
  EXPECT_TRUE(w.accept(top - 3));  // gap at top-4
  EXPECT_TRUE(w.accept(top - 1));
  EXPECT_EQ(w.watermark, top - 5);
  EXPECT_EQ(w.backlog(), 2u);
  w.rebase();
  EXPECT_EQ(w.watermark, top - 1);
  EXPECT_EQ(w.backlog(), 0u);
  EXPECT_FALSE(w.accept(top - 4));  // the dropped seq can never re-arrive
  EXPECT_TRUE(w.accept(top));       // the last representable seq still lands
  EXPECT_EQ(w.watermark, top);
  EXPECT_FALSE(w.accept(top));
}

TEST(SeqWindow, EqualityComparesWatermarkAndBacklog) {
  SeqWindow a;
  SeqWindow b;
  EXPECT_TRUE(a == b);
  ASSERT_TRUE(a.accept(2));
  EXPECT_FALSE(a == b);
  ASSERT_TRUE(b.accept(2));
  EXPECT_TRUE(a == b);
  a.rebase();
  b.rebase();
  EXPECT_TRUE(a == b);
}

TEST(SeqWindow, MailboxWindowSnapshotMirrorsAccepts) {
  Mailbox box;
  auto push = [&](int src, uint64_t seq) {
    Message m;
    m.src = src;
    m.dst = 0;
    m.tag = 7;
    m.seq = seq;
    return box.push(std::move(m));
  };
  EXPECT_TRUE(push(1, 1));
  EXPECT_TRUE(push(1, 3));  // out of order: parked above
  EXPECT_TRUE(push(2, 1));
  const auto snap = box.window_snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, 1);
  EXPECT_EQ(snap[0].second.watermark, 1u);
  EXPECT_EQ(snap[0].second.backlog(), 1u);
  EXPECT_EQ(snap[1].first, 2);
  EXPECT_EQ(snap[1].second.watermark, 1u);
  EXPECT_EQ(snap[1].second.backlog(), 0u);
}

}  // namespace
}  // namespace mp::vc
