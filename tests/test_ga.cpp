// Tests for the Global Arrays substrate: one-sided ops, distribution and
// access queries, accumulate atomicity under concurrency, the hash-block
// index / GET_HASH_BLOCK / ADD_HASH_BLOCK pair, and NXTVAL.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "ga/global_array.h"
#include "ga/hash_block.h"
#include "vc/cluster.h"

namespace mp::ga {
namespace {

TEST(GlobalArray, StartsZeroed) {
  vc::Cluster c(2);
  GlobalArray ga(&c, 100);
  std::vector<double> buf(100, 1.0);
  ga.get(0, 100, buf.data());
  for (double v : buf) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(GlobalArray, PutThenGetRoundTrip) {
  vc::Cluster c(3);
  GlobalArray ga(&c, 64);
  std::vector<double> in(64);
  std::iota(in.begin(), in.end(), 0.0);
  ga.put(0, 64, in.data());
  std::vector<double> out(64);
  ga.get(0, 64, out.data());
  EXPECT_EQ(in, out);
}

TEST(GlobalArray, PartialRangeOps) {
  vc::Cluster c(2);
  GlobalArray ga(&c, 10);
  std::vector<double> in{1.0, 2.0, 3.0};
  ga.put(4, 3, in.data());
  std::vector<double> out(3);
  ga.get(4, 3, out.data());
  EXPECT_EQ(in, out);
  double untouched;
  ga.get(0, 1, &untouched);
  EXPECT_DOUBLE_EQ(untouched, 0.0);
}

TEST(GlobalArray, AccAddsWithAlpha) {
  vc::Cluster c(2);
  GlobalArray ga(&c, 4);
  std::vector<double> ones(4, 1.0);
  ga.put(0, 4, ones.data());
  ga.acc(0, 4, ones.data(), 2.5);
  std::vector<double> out(4);
  ga.get(0, 4, out.data());
  for (double v : out) EXPECT_DOUBLE_EQ(v, 3.5);
}

TEST(GlobalArray, RangeValidation) {
  vc::Cluster c(2);
  GlobalArray ga(&c, 8);
  double x = 0.0;
  EXPECT_THROW(ga.get(-1, 1, &x), InvalidArgument);
  EXPECT_THROW(ga.get(8, 1, &x), InvalidArgument);
  EXPECT_THROW(ga.get(7, 2, &x), InvalidArgument);
  EXPECT_NO_THROW(ga.get(7, 1, &x));
}

TEST(GlobalArray, DistributionCoversArrayExactly) {
  vc::Cluster c(4);
  GlobalArray ga(&c, 103);  // deliberately not divisible by 4
  int64_t covered = 0;
  int64_t prev_hi = 0;
  for (int r = 0; r < 4; ++r) {
    const auto [lo, hi] = ga.distribution(r);
    EXPECT_EQ(lo, prev_hi);
    EXPECT_LE(lo, hi);
    covered += hi - lo;
    prev_hi = hi;
  }
  EXPECT_EQ(covered, 103);
}

TEST(GlobalArray, OwnerMatchesDistribution) {
  vc::Cluster c(3);
  GlobalArray ga(&c, 50);
  for (int64_t i = 0; i < 50; ++i) {
    const int o = ga.owner_of(i);
    const auto [lo, hi] = ga.distribution(o);
    EXPECT_GE(i, lo);
    EXPECT_LT(i, hi);
  }
}

TEST(GlobalArray, AccessGivesWritableLocalChunk) {
  vc::Cluster c(2);
  GlobalArray ga(&c, 10);
  auto span0 = ga.access(0);
  ASSERT_FALSE(span0.empty());
  span0[0] = 42.0;
  double v;
  ga.get(0, 1, &v);
  EXPECT_DOUBLE_EQ(v, 42.0);
}

TEST(GlobalArray, ConcurrentAccIsAtomic) {
  // Many threads accumulate overlapping ranges; the final content must be
  // the exact sum (no lost updates). This is the property ADD_HASH_BLOCK
  // depends on.
  vc::Cluster c(4);
  const int64_t n = 5000;  // spans multiple lock stripes
  GlobalArray ga(&c, n);
  const int threads = 8, reps = 50;
  std::vector<double> ones(static_cast<size_t>(n), 1.0);
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < reps; ++i) ga.acc(0, n, ones.data(), 1.0);
    });
  }
  for (auto& t : ts) t.join();
  std::vector<double> out(static_cast<size_t>(n));
  ga.get(0, n, out.data());
  for (double v : out) EXPECT_DOUBLE_EQ(v, threads * reps);
}

TEST(GlobalArray, OpCountersTrack) {
  vc::Cluster c(2);
  GlobalArray ga(&c, 4);
  double buf[4] = {0, 0, 0, 0};
  ga.get(0, 4, buf);
  ga.put(0, 4, buf);
  ga.acc(0, 4, buf);
  EXPECT_EQ(ga.ops_get(), 1u);
  EXPECT_EQ(ga.ops_put(), 1u);
  EXPECT_EQ(ga.ops_acc(), 1u);
  EXPECT_EQ(ga.bytes_moved(), 3u * 4u * sizeof(double));
}

TEST(GlobalArray, ZeroClears) {
  vc::Cluster c(2);
  GlobalArray ga(&c, 8);
  std::vector<double> in(8, 5.0);
  ga.put(0, 8, in.data());
  ga.zero();
  std::vector<double> out(8);
  ga.get(0, 8, out.data());
  for (double v : out) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(NxtVal, TicketsAreDense) {
  vc::Cluster c(2);
  NxtVal nv(&c);
  EXPECT_EQ(nv.next(), 0);
  EXPECT_EQ(nv.next(), 1);
  nv.reset();
  EXPECT_EQ(nv.next(), 0);
}

TEST(NxtVal, ConcurrentTicketsUnique) {
  vc::Cluster c(4);
  NxtVal nv(&c, 1);
  std::mutex mu;
  std::vector<long> got;
  c.run([&](vc::RankCtx&) {
    for (int i = 0; i < 200; ++i) {
      const long t = nv.next();
      std::lock_guard lock(mu);
      got.push_back(t);
    }
  });
  std::sort(got.begin(), got.end());
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], static_cast<long>(i));
}

// ---- hash blocks ----

TEST(HashBlockIndex, Key4IsInjectiveOnSmallIndices) {
  EXPECT_NE(HashBlockIndex::key4(0, 0, 0, 1), HashBlockIndex::key4(0, 0, 1, 0));
  EXPECT_NE(HashBlockIndex::key4(1, 2, 3, 4), HashBlockIndex::key4(4, 3, 2, 1));
  EXPECT_EQ(HashBlockIndex::key4(1, 2, 3, 4), HashBlockIndex::key4(1, 2, 3, 4));
}

TEST(HashBlockIndex, OffsetsAreDense) {
  HashBlockIndex idx;
  const auto e1 = idx.add(HashBlockIndex::key4(0, 0, 0, 0), 10);
  const auto e2 = idx.add(HashBlockIndex::key4(0, 0, 0, 1), 6);
  EXPECT_EQ(e1.offset, 0);
  EXPECT_EQ(e2.offset, 10);
  EXPECT_EQ(idx.total_size(), 16);
  EXPECT_EQ(idx.num_blocks(), 2u);
}

TEST(HashBlockIndex, DuplicateKeyRejected) {
  HashBlockIndex idx;
  idx.add(1, 4);
  EXPECT_THROW(idx.add(1, 4), InvalidArgument);
}

TEST(HashBlockIndex, FindUnknownReturnsNullopt) {
  HashBlockIndex idx;
  EXPECT_FALSE(idx.find(99).has_value());
}

TEST(HashBlock, GetAddRoundTrip) {
  vc::Cluster c(2);
  HashBlockIndex idx;
  idx.add(HashBlockIndex::key4(1, 1, 0, 0), 8);
  idx.add(HashBlockIndex::key4(1, 1, 0, 1), 8);
  GlobalArray ga(&c, idx.total_size());

  std::vector<double> block(8, 2.0);
  add_hash_block(ga, idx, HashBlockIndex::key4(1, 1, 0, 1), block.data());
  add_hash_block(ga, idx, HashBlockIndex::key4(1, 1, 0, 1), block.data(), 0.5);

  std::vector<double> out(8);
  get_hash_block(ga, idx, HashBlockIndex::key4(1, 1, 0, 1), out.data());
  for (double v : out) EXPECT_DOUBLE_EQ(v, 3.0);
  // The other block must be untouched.
  get_hash_block(ga, idx, HashBlockIndex::key4(1, 1, 0, 0), out.data());
  for (double v : out) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(HashBlock, PutOverwrites) {
  vc::Cluster c(2);
  HashBlockIndex idx;
  idx.add(7, 4);
  GlobalArray ga(&c, idx.total_size());
  std::vector<double> a(4, 1.0), b(4, 9.0), out(4);
  put_hash_block(ga, idx, 7, a.data());
  put_hash_block(ga, idx, 7, b.data());
  get_hash_block(ga, idx, 7, out.data());
  for (double v : out) EXPECT_DOUBLE_EQ(v, 9.0);
}

TEST(HashBlock, UnknownKeyThrowsDataError) {
  vc::Cluster c(2);
  HashBlockIndex idx;
  idx.add(1, 2);
  GlobalArray ga(&c, idx.total_size());
  double buf[2];
  EXPECT_THROW(get_hash_block(ga, idx, 999, buf), DataError);
  EXPECT_THROW(add_hash_block(ga, idx, 999, buf), DataError);
}

}  // namespace
}  // namespace mp::ga
