// Property tests over the inspection phase: for a sweep of tile-space
// shapes (sizes, tile widths, open/closed shell, point groups), every
// generated ChainPlan must satisfy the structural invariants the executors
// and the simulator rely on — for both ported subroutines and their fusion.
#include <gtest/gtest.h>

#include <set>

#include "tce/block_tensor.h"
#include "tce/chain_plan.h"
#include "tce/inspector.h"
#include "tce/tiles.h"

namespace mp::tce {
namespace {

struct SpaceCase {
  int oa, ob, va, vb, tile, irreps;
};

class PlanProperties : public ::testing::TestWithParam<SpaceCase> {
 protected:
  void SetUp() override {
    const auto c = GetParam();
    TileSpaceSpec spec;
    spec.n_occ_alpha = c.oa;
    spec.n_occ_beta = c.ob;
    spec.n_virt_alpha = c.va;
    spec.n_virt_beta = c.vb;
    spec.tile_size = c.tile;
    spec.num_irreps = c.irreps;
    space_ = std::make_unique<TileSpace>(spec);
    v_ = std::make_unique<BlockTensor4>(
        *space_, std::array{RangeKind::kVirt, RangeKind::kVirt,
                            RangeKind::kVirt, RangeKind::kVirt});
    w_ = std::make_unique<BlockTensor4>(
        *space_, std::array{RangeKind::kOcc, RangeKind::kOcc,
                            RangeKind::kOcc, RangeKind::kOcc});
    t_ = std::make_unique<BlockTensor4>(
        *space_, std::array{RangeKind::kVirt, RangeKind::kVirt,
                            RangeKind::kOcc, RangeKind::kOcc});
    r_ = std::make_unique<BlockTensor4>(
        *space_,
        std::array{RangeKind::kVirt, RangeKind::kVirt, RangeKind::kOcc,
                   RangeKind::kOcc},
        true, true);
  }

  void check_invariants(const ChainPlan& plan, const BlockTensor4& a_shape,
                        const BlockTensor4& b_shape) {
    std::set<uint64_t> seen_targets;
    for (size_t i = 0; i < plan.chains.size(); ++i) {
      const Chain& ch = plan.chains[i];
      EXPECT_EQ(ch.id, static_cast<int>(i));  // dense ids
      EXPECT_GE(ch.gemms.size(), 1u);
      EXPECT_GE(ch.sorts.size(), 1u);
      EXPECT_LE(ch.sorts.size(), 4u);
      EXPECT_EQ(static_cast<int64_t>(ch.c_dims[0] * ch.c_dims[1] *
                                     ch.c_dims[2] * ch.c_dims[3]),
                ch.c_elems());

      // One chain per target block.
      EXPECT_TRUE(seen_targets.insert(ch.c_key).second);
      const auto r_entry = r_->index().find(ch.c_key);
      ASSERT_TRUE(r_entry.has_value());
      EXPECT_EQ(r_entry->offset, ch.c_offset);
      EXPECT_EQ(r_entry->size, ch.c_elems());

      int expect_l2 = 0;
      for (const GemmOp& g : ch.gemms) {
        EXPECT_EQ(g.l2, expect_l2++);  // dense chain positions
        EXPECT_EQ(g.m, ch.m);
        EXPECT_EQ(g.n, ch.n);
        EXPECT_GT(g.k, 0);
        // Input block sizes must match the GEMM shape.
        const auto ae = a_shape.index().find(g.a_key);
        const auto be = b_shape.index().find(g.b_key);
        ASSERT_TRUE(ae.has_value());
        ASSERT_TRUE(be.has_value());
        EXPECT_EQ(ae->size, static_cast<int64_t>(g.m) * g.k);
        EXPECT_EQ(be->size, static_cast<int64_t>(g.n) * g.k);
        EXPECT_EQ(ae->offset, g.a_offset);
        EXPECT_EQ(be->offset, g.b_offset);
      }

      // Guard structure: extra sorts exactly for coinciding tile pairs.
      const size_t expect_sorts =
          1u + (ch.out_tiles[0] == ch.out_tiles[1] ? 1u : 0u) +
          (ch.out_tiles[2] == ch.out_tiles[3] ? 1u : 0u) +
          (ch.out_tiles[0] == ch.out_tiles[1] &&
                   ch.out_tiles[2] == ch.out_tiles[3]
               ? 1u
               : 0u);
      EXPECT_EQ(ch.sorts.size(), expect_sorts);
      for (const SortOp& so : ch.sorts) {
        // Every sort permutation is a valid permutation with sign +-1.
        int mask = 0;
        for (int p : so.perm) mask |= 1 << p;
        EXPECT_EQ(mask, 0xF);
        EXPECT_TRUE(so.factor == 1.0 || so.factor == -1.0);
      }
    }
  }

  std::unique_ptr<TileSpace> space_;
  std::unique_ptr<BlockTensor4> v_, w_, t_, r_;
};

TEST_P(PlanProperties, T2_7PlanIsWellFormed) {
  const auto plan = inspect_t2_7(*space_, {v_.get(), t_.get(), r_.get()});
  ASSERT_EQ(plan.store_sizes.size(), 3u);
  EXPECT_EQ(plan.store_sizes[0], v_->ga_size());
  EXPECT_EQ(plan.store_sizes[1], t_->ga_size());
  EXPECT_EQ(plan.store_sizes[2], r_->ga_size());
  check_invariants(plan, *v_, *t_);
  for (const Chain& ch : plan.chains) {
    for (const GemmOp& g : ch.gemms) {
      EXPECT_EQ(g.transa, 'N');
      EXPECT_EQ(g.transb, 'T');
    }
  }
}

TEST_P(PlanProperties, HhLadderPlanIsWellFormed) {
  const auto plan =
      inspect_hh_ladder(*space_, {w_.get(), t_.get(), r_.get()});
  check_invariants(plan, *w_, *t_);
  for (const Chain& ch : plan.chains) {
    for (const GemmOp& g : ch.gemms) {
      EXPECT_EQ(g.transa, 'N');
      EXPECT_EQ(g.transb, 'N');
    }
  }
}

TEST_P(PlanProperties, InspectionIsDeterministic) {
  const auto p1 = inspect_t2_7(*space_, {v_.get(), t_.get(), r_.get()});
  const auto p2 = inspect_t2_7(*space_, {v_.get(), t_.get(), r_.get()});
  ASSERT_EQ(p1.chains.size(), p2.chains.size());
  for (size_t i = 0; i < p1.chains.size(); ++i) {
    EXPECT_EQ(p1.chains[i].c_key, p2.chains[i].c_key);
    EXPECT_EQ(p1.chains[i].gemms.size(), p2.chains[i].gemms.size());
  }
}

TEST_P(PlanProperties, FusedPlanPreservesBothSubroutines) {
  const auto pp = inspect_t2_7(*space_, {v_.get(), t_.get(), r_.get()});
  const auto hh = inspect_hh_ladder(*space_, {w_.get(), t_.get(), r_.get()});
  const auto fused = fuse_plans(pp, hh, {3, 1, 2});
  EXPECT_EQ(fused.chains.size(), pp.chains.size() + hh.chains.size());
  ASSERT_EQ(fused.store_sizes.size(), 4u);
  EXPECT_EQ(fused.store_sizes[3], w_->ga_size());
  for (const Chain& ch : fused.chains) {
    EXPECT_LT(ch.a_store, 4);
    EXPECT_EQ(ch.b_store, 1);
    EXPECT_EQ(ch.r_store, 2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Spaces, PlanProperties,
    ::testing::Values(SpaceCase{2, 2, 4, 4, 2, 1},   // minimal closed shell
                      SpaceCase{3, 3, 5, 5, 2, 1},   // ragged tiles
                      SpaceCase{4, 4, 8, 8, 3, 2},   // C2h-style irreps
                      SpaceCase{4, 4, 8, 8, 2, 4},   // 4-irrep group
                      SpaceCase{3, 2, 6, 5, 2, 1},   // open shell
                      SpaceCase{6, 6, 10, 10, 5, 2}, // coarser tiles
                      SpaceCase{2, 2, 12, 12, 3, 1}),
    [](const auto& info) {
      const auto& c = info.param;
      return "o" + std::to_string(c.oa) + "_" + std::to_string(c.ob) + "v" +
             std::to_string(c.va) + "_" + std::to_string(c.vb) + "t" +
             std::to_string(c.tile) + "g" + std::to_string(c.irreps);
    });

}  // namespace
}  // namespace mp::tce
