// Tests for the PTG runtime: dataflow correctness for chain and
// fan-out/reduction graphs (the paper's Fig. 1 / Fig. 2 shapes), remote
// activations across ranks, priorities, scheduler policies, tracing, and
// API misuse detection.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <string>
#include <vector>

#include "ptg/context.h"
#include "ptg/scheduler.h"
#include "ptg/taskpool.h"
#include "ptg/trace.h"
#include "vc/cluster.h"

namespace mp::ptg {
namespace {

// Helper: enumerate instances p0 in [0, n) owned by round-robin rank.
std::function<std::vector<Params>(int)> round_robin(int n, int nranks) {
  return [n, nranks](int rank) {
    std::vector<Params> out;
    for (int i = rank; i < n; i += nranks) out.push_back(params_of(i));
    return out;
  };
}

TEST(Taskpool, ValidateCatchesMissingPieces) {
  Taskpool pool;
  TaskClass c;
  c.name = "broken";
  c.rank_of = [](const Params&) { return 0; };
  c.num_task_inputs = [](const Params&) { return 0; };
  // missing enumerate_rank and body
  pool.add_class(std::move(c));
  EXPECT_THROW(pool.validate(), InvalidArgument);
}

TEST(Taskpool, FindByName) {
  Taskpool pool;
  TaskClass c;
  c.name = "alpha";
  c.rank_of = [](const Params&) { return 0; };
  c.num_task_inputs = [](const Params&) { return 0; };
  c.enumerate_rank = [](int) { return std::vector<Params>{}; };
  c.body = [](TaskCtx&) {};
  const auto id = pool.add_class(std::move(c));
  EXPECT_EQ(pool.find("alpha"), id);
  EXPECT_EQ(pool.find("beta"), -1);
}

TEST(TaskKey, HashAndEquality) {
  TaskKey a{1, params_of(2, 3, 4)};
  TaskKey b{1, params_of(2, 3, 4)};
  TaskKey c{1, params_of(2, 3, 5)};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(TaskKeyHash{}(a), TaskKeyHash{}(b));
}

// --- single-rank independent tasks ---

TEST(Context, ExecutesAllStartupTasks) {
  vc::Cluster cluster(1);
  std::atomic<int> count{0};
  cluster.run([&](vc::RankCtx& rctx) {
    Taskpool pool;
    TaskClass c;
    c.name = "work";
    c.rank_of = [](const Params&) { return 0; };
    c.num_task_inputs = [](const Params&) { return 0; };
    c.enumerate_rank = round_robin(100, 1);
    c.body = [&](TaskCtx&) { count.fetch_add(1); };
    pool.add_class(std::move(c));
    Options opts;
    opts.num_workers = 4;
    Context ctx(rctx, pool, opts);
    ctx.run();
    EXPECT_EQ(ctx.tasks_executed(), 100u);
    EXPECT_EQ(ctx.expected_tasks(), 100u);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(Context, EmptyPoolTerminates) {
  vc::Cluster cluster(2);
  cluster.run([&](vc::RankCtx& rctx) {
    Taskpool pool;
    TaskClass c;
    c.name = "none";
    c.rank_of = [](const Params&) { return 0; };
    c.num_task_inputs = [](const Params&) { return 0; };
    c.enumerate_rank = [](int) { return std::vector<Params>{}; };
    c.body = [](TaskCtx&) {};
    pool.add_class(std::move(c));
    Context ctx(rctx, pool);
    ctx.run();
    EXPECT_EQ(ctx.tasks_executed(), 0u);
  });
}

// --- the Fig. 1 shape: DFILL -> chain of GEMM-like steps -> SINK ---

struct ChainFixtureResult {
  std::vector<double> finals;
};

ChainFixtureResult run_chain(int nranks, int chains, int len,
                             bool spread_ranks, Options opts = {}) {
  ChainFixtureResult result;
  result.finals.assign(static_cast<size_t>(chains), 0.0);
  std::mutex mu;

  vc::Cluster cluster(nranks);
  cluster.run([&](vc::RankCtx& rctx) {
    Taskpool pool;
    // Ownership: whole chain on one rank, or each step on (L1+L2)%nranks.
    auto step_rank = [=](const Params& p) {
      return spread_ranks ? (p[0] + p[1]) % nranks : p[0] % nranks;
    };

    TaskClass step;
    step.name = "STEP";
    step.rank_of = step_rank;
    step.num_task_inputs = [](const Params& p) { return p[1] == 0 ? 0 : 1; };
    step.enumerate_rank = [=](int rank) {
      std::vector<Params> out;
      for (int l1 = 0; l1 < chains; ++l1) {
        for (int l2 = 0; l2 < len; ++l2) {
          const Params p = params_of(l1, l2);
          if (step_rank(p) == rank) out.push_back(p);
        }
      }
      return out;
    };
    step.priority = [=](const Params& p) {
      return static_cast<double>(chains - p[0]);
    };
    step.body = [](TaskCtx& t) {
      DataBuf buf;
      if (t.params()[1] == 0) {
        buf = make_buf(1, static_cast<double>(t.params()[0]));
      } else {
        buf = t.take_input(0);
        (*buf)[0] += 1.0;
      }
      t.set_output(0, std::move(buf));
    };

    TaskClass sink;
    sink.name = "SINK";
    sink.rank_of = [=](const Params& p) { return p[0] % nranks; };
    sink.num_task_inputs = [](const Params&) { return 1; };
    sink.enumerate_rank = [=](int rank) {
      std::vector<Params> out;
      for (int l1 = rank; l1 < chains; l1 += nranks) out.push_back(params_of(l1));
      return out;
    };
    sink.body = [&](TaskCtx& t) {
      std::lock_guard lock(mu);
      result.finals[static_cast<size_t>(t.params()[0])] = (*t.input(0))[0];
    };

    const auto step_id = pool.add_class(std::move(step));
    const auto sink_id = pool.add_class(std::move(sink));
    auto& step_ref = pool.mutable_cls(step_id);
    step_ref.route_outputs = [=](const Params& p, std::vector<OutRoute>& r) {
      if (p[1] < len - 1) {
        r.push_back({TaskKey{step_id, params_of(p[0], p[1] + 1)}, 0, 0});
      } else {
        r.push_back({TaskKey{sink_id, params_of(p[0])}, 0, 0});
      }
    };

    Context ctx(rctx, pool, opts);
    ctx.run();
  });
  return result;
}

TEST(Context, ChainDataflowSingleRank) {
  const auto r = run_chain(1, 5, 10, false);
  for (int l1 = 0; l1 < 5; ++l1) {
    EXPECT_DOUBLE_EQ(r.finals[static_cast<size_t>(l1)], l1 + 9.0);
  }
}

TEST(Context, ChainDataflowMultiRankLocalChains) {
  const auto r = run_chain(4, 8, 20, false);
  for (int l1 = 0; l1 < 8; ++l1) {
    EXPECT_DOUBLE_EQ(r.finals[static_cast<size_t>(l1)], l1 + 19.0);
  }
}

TEST(Context, ChainDataflowCrossRankEveryStep) {
  // Every hop crosses ranks: stresses remote activation payloads.
  const auto r = run_chain(3, 6, 12, true);
  for (int l1 = 0; l1 < 6; ++l1) {
    EXPECT_DOUBLE_EQ(r.finals[static_cast<size_t>(l1)], l1 + 11.0);
  }
}

TEST(Context, ChainWithManyWorkersAndStealing) {
  Options opts;
  opts.num_workers = 4;
  opts.policy = SchedPolicy::kStealing;
  const auto r = run_chain(2, 16, 30, false, opts);
  EXPECT_DOUBLE_EQ(r.finals[0], 29.0);
  EXPECT_DOUBLE_EQ(r.finals[1], 30.0);
}

// --- the Fig. 2 shape: parallel producers -> reduction ---

TEST(Context, FanInReduction) {
  const int nranks = 2, producers = 32;
  std::atomic<double> total{0.0};
  vc::Cluster cluster(nranks);
  cluster.run([&](vc::RankCtx& rctx) {
    Taskpool pool;
    TaskClass prod;
    prod.name = "PROD";
    prod.rank_of = [=](const Params& p) { return p[0] % nranks; };
    prod.num_task_inputs = [](const Params&) { return 0; };
    prod.enumerate_rank = round_robin(producers, nranks);
    prod.body = [](TaskCtx& t) {
      t.set_output(0, make_buf(1, static_cast<double>(t.params()[0])));
    };

    TaskClass red;
    red.name = "RED";
    red.rank_of = [](const Params&) { return 0; };
    red.num_task_inputs = [=](const Params&) { return producers; };
    red.enumerate_rank = [](int rank) {
      return rank == 0 ? std::vector<Params>{params_of(0)}
                       : std::vector<Params>{};
    };
    red.body = [&](TaskCtx& t) {
      double s = 0.0;
      for (int i = 0; i < producers; ++i) s += (*t.input(i))[0];
      total.store(s);
    };

    const auto prod_id = pool.add_class(std::move(prod));
    const auto red_id = pool.add_class(std::move(red));
    auto& pr = pool.mutable_cls(prod_id);
    pr.route_outputs = [=](const Params& p, std::vector<OutRoute>& r) {
      r.push_back({TaskKey{red_id, params_of(0)},
                   static_cast<int8_t>(p[0]), 0});
    };

    Options opts;
    opts.num_workers = 3;
    Context ctx(rctx, pool, opts);
    ctx.run();
  });
  EXPECT_DOUBLE_EQ(total.load(), producers * (producers - 1) / 2.0);
}

// --- priorities & scheduling order ---

std::vector<int> run_priority_order(SchedPolicy policy, bool use_priorities) {
  std::vector<int> order;
  vc::Cluster cluster(1);
  cluster.run([&](vc::RankCtx& rctx) {
    Taskpool pool;
    TaskClass c;
    c.name = "T";
    c.rank_of = [](const Params&) { return 0; };
    c.num_task_inputs = [](const Params&) { return 0; };
    c.enumerate_rank = round_robin(10, 1);
    c.priority = [](const Params& p) { return static_cast<double>(p[0]); };
    c.body = [&](TaskCtx& t) { order.push_back(t.params()[0]); };
    pool.add_class(std::move(c));
    Options opts;
    opts.num_workers = 1;  // deterministic execution order
    opts.policy = policy;
    opts.use_priorities = use_priorities;
    Context ctx(rctx, pool, opts);
    ctx.run();
  });
  return order;
}

TEST(Context, PrioritySchedulerRunsHighFirst) {
  const auto order = run_priority_order(SchedPolicy::kPriority, true);
  std::vector<int> expect{9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
  EXPECT_EQ(order, expect);
}

TEST(Context, DisabledPrioritiesFallBackToFifo) {
  const auto order = run_priority_order(SchedPolicy::kPriority, false);
  std::vector<int> expect{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(order, expect);
}

TEST(Context, FifoPolicyIgnoresPriorities) {
  const auto order = run_priority_order(SchedPolicy::kFifo, true);
  std::vector<int> expect{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(order, expect);
}

TEST(Context, LifoPolicyRunsNewestFirst) {
  const auto order = run_priority_order(SchedPolicy::kLifo, true);
  std::vector<int> expect{9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
  EXPECT_EQ(order, expect);
}

TEST(Scheduler, StealingMovesWorkBetweenWorkers) {
  auto s = Scheduler::create(SchedPolicy::kStealing, 2);
  ReadyTask t;
  t.key = TaskKey{0, params_of(1)};
  s->push(std::move(t), 0);  // homed on worker 0
  ReadyTask out;
  EXPECT_TRUE(s->try_pop(out, 1));  // worker 1 steals it
  EXPECT_EQ(s->steals(), 1u);
  EXPECT_FALSE(s->try_pop(out, 1));
}

TEST(Scheduler, PolicyNames) {
  EXPECT_STREQ(to_string(SchedPolicy::kPriority), "priority");
  EXPECT_STREQ(to_string(SchedPolicy::kFifo), "fifo");
  EXPECT_STREQ(to_string(SchedPolicy::kLifo), "lifo");
  EXPECT_STREQ(to_string(SchedPolicy::kStealing), "stealing");
}

// --- tracing ---

TEST(Context, TracingRecordsEveryTask) {
  vc::Cluster cluster(1);
  cluster.run([&](vc::RankCtx& rctx) {
    Taskpool pool;
    TaskClass c;
    c.name = "traced";
    c.rank_of = [](const Params&) { return 0; };
    c.num_task_inputs = [](const Params&) { return 0; };
    c.enumerate_rank = round_robin(25, 1);
    c.body = [](TaskCtx&) {};
    pool.add_class(std::move(c));
    Options opts;
    opts.enable_tracing = true;
    opts.num_workers = 2;
    Context ctx(rctx, pool, opts);
    ctx.run();
    EXPECT_EQ(ctx.trace().size(), 25u);
    for (const auto& e : ctx.trace().events()) {
      EXPECT_LE(e.t_start, e.t_end);
      EXPECT_EQ(e.cls, 0);
      EXPECT_FALSE(e.is_comm);
    }
  });
}

TEST(Context, TracingDisabledByDefault) {
  vc::Cluster cluster(1);
  cluster.run([&](vc::RankCtx& rctx) {
    Taskpool pool;
    TaskClass c;
    c.name = "untraced";
    c.rank_of = [](const Params&) { return 0; };
    c.num_task_inputs = [](const Params&) { return 0; };
    c.enumerate_rank = round_robin(5, 1);
    c.body = [](TaskCtx&) {};
    pool.add_class(std::move(c));
    Context ctx(rctx, pool);
    ctx.run();
    EXPECT_TRUE(ctx.trace().empty());
  });
}

// --- error paths ---

TEST(Context, RunTwiceThrows) {
  vc::Cluster cluster(1);
  cluster.run([&](vc::RankCtx& rctx) {
    Taskpool pool;
    TaskClass c;
    c.name = "once";
    c.rank_of = [](const Params&) { return 0; };
    c.num_task_inputs = [](const Params&) { return 0; };
    c.enumerate_rank = [](int) { return std::vector<Params>{}; };
    c.body = [](TaskCtx&) {};
    pool.add_class(std::move(c));
    Context ctx(rctx, pool);
    ctx.run();
    EXPECT_THROW(ctx.run(), InvalidArgument);
  });
}

TEST(Context, MissingOutputIsDiagnosed) {
  vc::Cluster cluster(1);
  EXPECT_THROW(
      cluster.run([&](vc::RankCtx& rctx) {
        Taskpool pool;
        TaskClass a;
        a.name = "forgetful";
        a.rank_of = [](const Params&) { return 0; };
        a.num_task_inputs = [](const Params&) { return 0; };
        a.enumerate_rank = [](int) {
          return std::vector<Params>{params_of(0)};
        };
        a.body = [](TaskCtx&) { /* forgot set_output */ };

        TaskClass b;
        b.name = "victim";
        b.rank_of = [](const Params&) { return 0; };
        b.num_task_inputs = [](const Params&) { return 1; };
        b.enumerate_rank = [](int) {
          return std::vector<Params>{params_of(0)};
        };
        b.body = [](TaskCtx&) {};

        const auto a_id = pool.add_class(std::move(a));
        const auto b_id = pool.add_class(std::move(b));
        auto& ar = pool.mutable_cls(a_id);
        ar.route_outputs = [=](const Params&, std::vector<OutRoute>& r) {
          r.push_back({TaskKey{b_id, params_of(0)}, 0, 0});
        };
        Context ctx(rctx, pool);
        ctx.run();
      }),
      InvalidArgument);
}

TEST(Context, AbortPropagationUnderHighLatencyFabric) {
  // A task fails on one rank while every activation and the abort
  // broadcast itself crawl through a high-latency fabric. All ranks must
  // still unwind promptly instead of hanging in their comm loops.
  vc::FabricConfig cfg;
  cfg.latency_us = 500.0;
  vc::Cluster cluster(3, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(
      cluster.run([&](vc::RankCtx& rctx) {
        Taskpool pool;
        TaskClass c;
        c.name = "hop";
        c.rank_of = [](const Params& p) { return p[0] % 3; };
        c.num_task_inputs = [](const Params& p) { return p[0] == 0 ? 0 : 1; };
        c.enumerate_rank = [](int rank) {
          std::vector<Params> out;
          for (int i = rank; i < 12; i += 3) out.push_back(params_of(i));
          return out;
        };
        c.body = [](TaskCtx& t) {
          if (t.params()[0] == 4) throw std::runtime_error("injected");
          t.set_output(0, make_buf(1, 1.0));
        };
        const auto id = pool.add_class(std::move(c));
        pool.mutable_cls(id).route_outputs =
            [id](const Params& p, std::vector<OutRoute>& r) {
              if (p[0] < 11) {
                r.push_back({TaskKey{id, params_of(p[0] + 1)}, 0, 0});
              }
            };
        Context ctx(rctx, pool);
        ctx.run();
      }),
      std::exception);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(20));
}

TEST(Context, WatchdogTurnsLostActivationIntoStateError) {
  // Every cross-rank activation is dropped by the fabric, so without the
  // watchdog both ranks would wait for activations forever. The watchdog
  // must surface a StateError carrying a diagnostic dump instead.
  vc::FabricConfig cfg;
  cfg.faults.drop_prob = 1.0;
  vc::Cluster cluster(2, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    cluster.run([&](vc::RankCtx& rctx) {
      Taskpool pool;
      TaskClass c;
      c.name = "hop";
      c.rank_of = [](const Params& p) { return p[0] % 2; };
      c.num_task_inputs = [](const Params& p) { return p[0] == 0 ? 0 : 1; };
      c.enumerate_rank = [](int rank) {
        std::vector<Params> out;
        for (int i = rank; i < 6; i += 2) out.push_back(params_of(i));
        return out;
      };
      c.body = [](TaskCtx& t) {
        t.set_output(0, make_buf(1, static_cast<double>(t.params()[0])));
      };
      const auto id = pool.add_class(std::move(c));
      pool.mutable_cls(id).route_outputs =
          [id](const Params& p, std::vector<OutRoute>& r) {
            if (p[0] < 5) {
              r.push_back({TaskKey{id, params_of(p[0] + 1)}, 0, 0});
            }
          };
      Options opts;
      opts.watchdog_timeout_ms = 200.0;
      Context ctx(rctx, pool, opts);
      ctx.run();
    });
    FAIL() << "expected the watchdog to raise StateError";
  } catch (const StateError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("PTG watchdog"), std::string::npos) << msg;
    EXPECT_NE(msg.find("executed="), std::string::npos) << msg;
    EXPECT_NE(msg.find("pending_deposit_keys="), std::string::npos) << msg;
    EXPECT_NE(msg.find("outbox_depth="), std::string::npos) << msg;
  }
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(20));
}

TEST(Context, ZeroWorkersRejected) {
  vc::Cluster cluster(1);
  cluster.run([&](vc::RankCtx& rctx) {
    Taskpool pool;
    TaskClass c;
    c.name = "x";
    c.rank_of = [](const Params&) { return 0; };
    c.num_task_inputs = [](const Params&) { return 0; };
    c.enumerate_rank = [](int) { return std::vector<Params>{}; };
    c.body = [](TaskCtx&) {};
    pool.add_class(std::move(c));
    Options opts;
    opts.num_workers = 0;
    EXPECT_THROW(Context(rctx, pool, opts), InvalidArgument);
  });
}

// --- trace analysis unit tests ---

TEST(Trace, SpanAndBusy) {
  Trace tr;
  tr.add({0, 0, 0, {0, 0, 0}, 0.0, 1.0, false});
  tr.add({0, 1, 0, {0, 0, 0}, 0.5, 2.0, false});
  EXPECT_DOUBLE_EQ(tr.span(), 2.0);
  EXPECT_DOUBLE_EQ(tr.busy_time(), 2.5);
  EXPECT_EQ(tr.num_rows(), 2u);
  EXPECT_NEAR(tr.idle_fraction(), 1.0 - 2.5 / 4.0, 1e-12);
}

TEST(Trace, NormalizeShiftsToZero) {
  Trace tr;
  tr.add({0, 0, 0, {0, 0, 0}, 10.0, 11.0, false});
  tr.normalize();
  EXPECT_DOUBLE_EQ(tr.events()[0].t_start, 0.0);
  EXPECT_DOUBLE_EQ(tr.events()[0].t_end, 1.0);
}

TEST(Trace, StartupIdleMeasuresLateFirstTasks) {
  Trace tr;
  tr.add({0, 0, 0, {0, 0, 0}, 0.0, 1.0, false});
  tr.add({0, 1, 0, {0, 0, 0}, 4.0, 5.0, false});
  EXPECT_DOUBLE_EQ(tr.mean_startup_idle(), 2.0);
}

TEST(Trace, CommOverlapFraction) {
  Trace tr;
  // comm event [0,2] on rank 0; compute [1,2] covers half of it.
  tr.add({0, -1, -1, {0, 0, 0}, 0.0, 2.0, true});
  tr.add({0, 0, 0, {0, 0, 0}, 1.0, 2.0, false});
  EXPECT_NEAR(tr.comm_overlap_fraction(), 0.5, 1e-12);
}

TEST(Trace, CommOverlapIgnoresOtherRanksCompute) {
  Trace tr;
  tr.add({0, -1, -1, {0, 0, 0}, 0.0, 2.0, true});
  tr.add({1, 0, 0, {0, 0, 0}, 0.0, 2.0, false});  // different rank
  EXPECT_DOUBLE_EQ(tr.comm_overlap_fraction(), 0.0);
}

TEST(Trace, AsciiGanttRendersRowsPerWorker) {
  Trace tr;
  tr.add({0, 0, 0, {0, 0, 0}, 0.0, 1.0, false});
  tr.add({0, 1, 1, {0, 0, 0}, 1.0, 2.0, false});
  tr.add({1, 0, 0, {0, 0, 0}, 0.0, 2.0, false});
  const std::string g = tr.ascii_gantt(20, {'G', 'S'});
  EXPECT_NE(g.find("node 0:"), std::string::npos);
  EXPECT_NE(g.find("node 1:"), std::string::npos);
  EXPECT_NE(g.find('G'), std::string::npos);
  EXPECT_NE(g.find('S'), std::string::npos);
}

TEST(Trace, TimeByClassAggregates) {
  Trace tr;
  tr.add({0, 0, 0, {0, 0, 0}, 0.0, 1.0, false});
  tr.add({0, 0, 0, {0, 0, 0}, 1.0, 3.0, false});
  tr.add({0, 0, 1, {0, 0, 0}, 3.0, 4.0, false});
  const auto by = tr.time_by_class();
  EXPECT_DOUBLE_EQ(by.at(0), 3.0);
  EXPECT_DOUBLE_EQ(by.at(1), 1.0);
}

TEST(Trace, JsonContainsClassNames)
{
  Trace tr;
  tr.add({0, 0, 0, {1, 2, 3}, 0.0, 1.0, false});
  std::ostringstream os;
  tr.to_json(os, {"GEMM"});
  EXPECT_NE(os.str().find("\"GEMM\""), std::string::npos);
  EXPECT_NE(os.str().find("[1,2,3]"), std::string::npos);
}

}  // namespace
}  // namespace mp::ptg
