// Persistent-session resubmission under fabric faults (ctest labels:
// stress, resubmit). A PtgSession keeps one runtime alive across many
// submissions, so every fault mode now has a *second* axis: it must not
// only be survived within a submission, it must not leak into the next
// one. The contract across the matrix — duplicated/reordered/dropped
// messages, one-sided partitions, rank kills mid-submission and between
// submissions, revival of a killed rank — is that each submit() either
// returns the exact reference result on every live rank or unwinds with a
// clean StateError, the session stays usable afterwards, every counter
// self-check holds, and per-submission state (mailbox dedup windows,
// lineage, adoption sets) stays bounded instead of accumulating across the
// stream. Designed to run under -DMP_SANITIZE=thread and =address.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "ga/global_array.h"
#include "support/rng.h"
#include "tce/block_tensor.h"
#include "tce/inspector.h"
#include "tce/ptg_session.h"
#include "tce/reference_exec.h"
#include "tce/template_cache.h"
#include "tce/tiles.h"
#include "vc/cluster.h"
#include "vc/fabric.h"

namespace mp::tce {
namespace {

constexpr int kRanks = 4;

TileSpaceSpec small_spec() {
  TileSpaceSpec s;
  s.n_occ_alpha = 3;
  s.n_occ_beta = 3;
  s.n_virt_alpha = 5;
  s.n_virt_beta = 5;
  s.tile_size = 2;
  return s;
}

/// t2_7 on a fault-configurable cluster, executed through a TemplateCache +
/// PtgSession instead of per-call cluster.run/execute_ptg.
class SessionHarness {
 public:
  explicit SessionHarness(const vc::FabricConfig& cfg,
                          bool failure_detection = false,
                          double watchdog_ms = 30000.0) {
    space_ = std::make_unique<TileSpace>(small_spec());
    v_shape_ = std::make_unique<BlockTensor4>(
        *space_, std::array<RangeKind, 4>{RangeKind::kVirt, RangeKind::kVirt,
                                          RangeKind::kVirt, RangeKind::kVirt});
    t_shape_ = std::make_unique<BlockTensor4>(
        *space_, std::array<RangeKind, 4>{RangeKind::kVirt, RangeKind::kVirt,
                                          RangeKind::kOcc, RangeKind::kOcc});
    r_shape_ = std::make_unique<BlockTensor4>(
        *space_,
        std::array<RangeKind, 4>{RangeKind::kVirt, RangeKind::kVirt,
                                 RangeKind::kOcc, RangeKind::kOcc},
        true, true);
    plan_ = inspect_t2_7(*space_, {v_shape_.get(), t_shape_.get(),
                                   r_shape_.get()});

    cluster_ = std::make_unique<vc::Cluster>(kRanks, cfg);
    v_ga_ = std::make_unique<ga::GlobalArray>(cluster_.get(),
                                              v_shape_->ga_size());
    t_ga_ = std::make_unique<ga::GlobalArray>(cluster_.get(),
                                              t_shape_->ga_size());
    r_ga_ = std::make_unique<ga::GlobalArray>(cluster_.get(),
                                              r_shape_->ga_size());
    Rng rng(11);
    fill_random(*v_ga_, rng);
    fill_random(*t_ga_, rng);
    storage_.v = {v_shape_.get(), v_ga_.get()};
    storage_.t = {t_shape_.get(), t_ga_.get()};
    storage_.r = {r_shape_.get(), r_ga_.get()};

    reference_.assign(static_cast<size_t>(r_shape_->ga_size()), 0.0);
    execute_reference(plan_, storage_);
    r_ga_->get(0, r_shape_->ga_size(), reference_.data());

    PtgExecOptions opts;
    opts.variant = VariantConfig::v5();
    opts.workers_per_rank = 2;
    opts.watchdog_timeout_ms = watchdog_ms;
    if (failure_detection) {
      opts.enable_failure_detection = true;
      opts.heartbeat_interval_ms = 2.0;
      // Wide windows, as in test_failure_stress.cpp: an oversubscribed CI
      // box can starve a live peer's comm thread for tens of ms.
      opts.suspect_after_ms = 60.0;
      opts.confirm_after_ms = 200.0;
      opts.on_rank_failure = ptg::FailurePolicy::kRetry;
      opts.retry_limit = 1;
    }

    TemplateKey key;
    key.subroutine = "t2_7";
    key.tile_fingerprint = fingerprint_tile_space(space_->spec());
    key.variant = variant_signature(opts.variant);
    key.nranks = kRanks;
    tpl_ = cache_.get_or_build(key, plan_, storage_.stores(), opts.variant);
    session_ = std::make_unique<PtgSession>(*cluster_, tpl_, opts);
  }

  /// One submission. Returns "" on a correct completed run, the error
  /// string if submit() raised, or a description of the first mismatch.
  std::string submit_once() {
    r_ga_->zero();
    const std::vector<PtgExecResult>* results = nullptr;
    try {
      results = &session_->submit(storage_.stores());
    } catch (const StateError& e) {
      return e.what();
    }
    for (int r = 0; r < kRanks; ++r) {
      const auto& res = (*results)[static_cast<size_t>(r)];
      if (res.killed) continue;
      const std::string f = res.failure.validate();
      if (!f.empty()) return "failure stats rank " + std::to_string(r) + ": " + f;
      const std::string s = res.steal.validate();
      if (!s.empty()) return "steal stats rank " + std::to_string(r) + ": " + s;
      const std::string c = res.sched.validate();
      if (!c.empty()) return "sched stats rank " + std::to_string(r) + ": " + c;
    }
    std::vector<double> out(reference_.size());
    r_ga_->get(0, r_ga_->size(), out.data());
    for (size_t i = 0; i < out.size(); ++i) {
      if (std::fabs(out[i] - reference_[i]) >= 1e-12) {
        return "element " + std::to_string(i) + " off by " +
               std::to_string(out[i] - reference_[i]);
      }
    }
    return "";
  }

  /// Sum of undelivered out-of-order dedup entries across every rank's
  /// mailbox. The reset's rebase_windows() must keep this bounded per
  /// submission instead of letting it grow with the whole stream.
  size_t total_window_backlog() const {
    size_t total = 0;
    for (int r = 0; r < kRanks; ++r) {
      total += cluster_->mailbox(r).window_backlog();
    }
    return total;
  }

  vc::Cluster& cluster() { return *cluster_; }
  PtgSession& session() { return *session_; }
  const std::vector<double>& reference() const { return reference_; }

 private:
  static void fill_random(ga::GlobalArray& g, Rng& rng) {
    std::vector<double> data(static_cast<size_t>(g.size()));
    for (auto& x : data) x = rng.uniform(-1.0, 1.0);
    g.put(0, g.size(), data.data());
  }

  std::unique_ptr<TileSpace> space_;
  std::unique_ptr<BlockTensor4> v_shape_, t_shape_, r_shape_;
  ChainPlan plan_;
  std::unique_ptr<vc::Cluster> cluster_;
  std::unique_ptr<ga::GlobalArray> v_ga_, t_ga_, r_ga_;
  T2_7Storage storage_;
  std::vector<double> reference_;
  TemplateCache cache_;
  std::shared_ptr<PtgTemplate> tpl_;
  std::unique_ptr<PtgSession> session_;
};

// --- dup + reorder: lossless faults, every submission must be exact ---

TEST(ResubmitStress, DupReorderFaultsAcrossSubmissions) {
  vc::FabricConfig cfg;
  cfg.faults.dup_prob = 0.25;
  cfg.faults.reorder_jitter_us = 300.0;
  cfg.fault_seed = 71;
  SessionHarness h(cfg);

  size_t first_backlog = 0;
  for (int s = 0; s < 6; ++s) {
    EXPECT_EQ(h.submit_once(), "") << "submission " << s;
    // The dedup windows legitimately hold one submission's out-of-order
    // tail (messages still in the delayed-delivery queue at the closing
    // barrier). Six submissions' worth accumulating is what the
    // between-run rebase exists to prevent.
    const size_t backlog = h.total_window_backlog();
    if (s == 0) first_backlog = backlog;
    EXPECT_LE(backlog, 2 * first_backlog + 256) << "submission " << s;
  }
  EXPECT_EQ(h.session().submissions(), 6u);
  EXPECT_EQ(h.cluster().fabric().stats().validate(), "");
  // The reset before the last submission must have reclaimed everything
  // the faults left behind.
  for (int r = 0; r < kRanks; ++r) {
    const auto& rep = h.session().context(r).last_reset_report();
    EXPECT_EQ(rep.pending_deposits, 0u) << "rank " << r;
    EXPECT_EQ(rep.held_ready, 0u) << "rank " << r;
    EXPECT_EQ(rep.outstanding_migrations, 0u) << "rank " << r;
    EXPECT_EQ(rep.outbox_messages, 0u) << "rank " << r;
  }
}

// --- drops: each submission completes exactly or unwinds cleanly ---

TEST(ResubmitStress, DropFaultsNeverHangAndSessionStaysUsable) {
  // A silently dropped activation is unrecoverable by design (lineage
  // replay fires on deaths, not message loss), so a watchdog StateError is
  // an acceptable per-submission outcome; a hang, a wrong result, or a
  // submission poisoned by its predecessor's abort is not.
  vc::FabricConfig cfg;
  cfg.faults.drop_prob = 0.02;
  cfg.faults.dup_prob = 0.1;
  cfg.faults.reorder_jitter_us = 200.0;
  cfg.fault_seed = 83;
  // Short watchdog (scaled by outstanding work internally): a drop-stalled
  // submission must abort in seconds, not wedge the stream.
  SessionHarness h(cfg, /*failure_detection=*/true, /*watchdog_ms=*/150.0);

  for (int s = 0; s < 4; ++s) {
    const std::string out = h.submit_once();
    if (!out.empty()) {
      EXPECT_TRUE(out.find("watchdog") != std::string::npos ||
                  out.find("aborted") != std::string::npos ||
                  out.find("confirmed dead") != std::string::npos)
          << "submission " << s << ": unexpected failure: " << out;
    }
  }
  EXPECT_EQ(h.session().submissions(), 4u)
      << "an aborted submission must not wedge the session";
  EXPECT_EQ(h.cluster().fabric().stats().validate(), "");
}

// --- partition: a deterministic mid-stream abort, then full recovery ---

TEST(ResubmitStress, PartitionAbortsOneSubmissionSessionRecoversAfterHeal) {
  vc::FabricConfig cfg;
  SessionHarness h(cfg, /*failure_detection=*/false, /*watchdog_ms=*/400.0);

  EXPECT_EQ(h.submit_once(), "") << "clean fabric must be exact";

  // Swallow every 0->1 message: rank 1 starves for activations and the
  // watchdog must abort the submission collectively.
  h.cluster().fabric().partition(0, 1);
  const std::string err = h.submit_once();
  ASSERT_NE(err, "") << "partitioned submission must not appear to succeed";
  EXPECT_TRUE(err.find("watchdog") != std::string::npos ||
              err.find("aborted") != std::string::npos)
      << "unexpected failure: " << err;

  // Heal and resubmit: the reset must have drained the aborted run's
  // leftovers, so the same session produces the exact result again.
  h.cluster().fabric().heal(0, 1);
  EXPECT_EQ(h.submit_once(), "") << "healed fabric must be exact again";
  EXPECT_EQ(h.submit_once(), "") << "and stay exact";
  EXPECT_EQ(h.session().submissions(), 4u);
}

// --- a CrashPlan fires inside the first submission of the stream ---

TEST(ResubmitStress, CrashMidSubmissionRecoversAndStreamContinues) {
  constexpr int kVictim = 1;
  vc::FabricConfig cfg;
  cfg.crash_plans.push_back({kVictim, /*after_messages=*/60});
  SessionHarness h(cfg, /*failure_detection=*/true);

  // Submission 0: the kill fires mid-run; recovery must still deliver the
  // exact result, and the victim's slot must report killed.
  EXPECT_EQ(h.submit_once(), "") << "recovered submission must be exact";
  EXPECT_TRUE(h.session().rank_killed(kVictim));

  // The stream continues on the survivors: each later submission
  // re-detects the silent rank and re-recovers its statically-homed work.
  for (int s = 1; s < 3; ++s) {
    EXPECT_EQ(h.submit_once(), "") << "submission " << s;
    EXPECT_TRUE(h.session().rank_killed(kVictim)) << "submission " << s;
  }
  EXPECT_EQ(h.session().submissions(), 3u);
}

// --- kill between submissions, then revive the rank mid-stream ---

TEST(ResubmitStress, MidStreamKillThenReviveKeepsStreamExact) {
  constexpr int kVictim = 2;
  vc::FabricConfig cfg;
  SessionHarness h(cfg, /*failure_detection=*/true);

  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(h.submit_once(), "") << "pre-kill submission " << s;
  }
  EXPECT_FALSE(h.session().rank_killed(kVictim));

  // Fail-stop the rank between submissions: its parked runtime notices on
  // the next arm, goes silent, and the survivors recover its work.
  h.cluster().kill_rank(kVictim);
  for (int s = 2; s < 4; ++s) {
    EXPECT_EQ(h.submit_once(), "") << "post-kill submission " << s;
    EXPECT_TRUE(h.session().rank_killed(kVictim)) << "submission " << s;
  }

  // Revive the rank (a new incarnation at the fabric level). A dropped-out
  // runtime can never rejoin the cluster barrier, so the session keeps
  // running on the survivors — revival must simply not corrupt anything.
  h.cluster().revive_rank(kVictim);
  for (int s = 4; s < 6; ++s) {
    EXPECT_EQ(h.submit_once(), "") << "post-revive submission " << s;
    EXPECT_TRUE(h.session().rank_killed(kVictim)) << "submission " << s;
  }
  EXPECT_EQ(h.session().submissions(), 6u);
  EXPECT_EQ(h.cluster().fabric().stats().validate(), "");
}

}  // namespace
}  // namespace mp::tce
