// Quickstart: the paper's Figure 1 example written against the mp::ptg
// API — chains of GEMM-like tasks expressed as a Parameterized Task Graph.
//
// Each chain L1 runs:  DFILL(L1) -> GEMM(L1,0) -> ... -> GEMM(L1,len-1)
//                        -> SORT(L1)
// with the C "matrix" (here a small vector) flowing through the chain, and
// the one-line change of Figure 2 — parallel GEMMs feeding a reduction —
// shown side by side. Run it with:  ./quickstart [nranks]
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "ptg/context.h"
#include "vc/cluster.h"

using namespace mp;
using namespace mp::ptg;

namespace {

constexpr int kChains = 6;
constexpr int kLen = 5;
constexpr int kElems = 8;

// Stand-in for the GEMM kernel body: C += (L1+1) * (L2+1) on every element.
void fake_gemm(std::vector<double>& c, int l1, int l2) {
  for (double& x : c) x += (l1 + 1) * (l2 + 1);
}

double expected_value(int l1) {
  double v = 0.0;
  for (int l2 = 0; l2 < kLen; ++l2) v += (l1 + 1) * (l2 + 1);
  return v;
}

// ---- Figure 1: serial chain ----
void run_serial_chains(vc::Cluster& cluster) {
  std::vector<double> finals(kChains, 0.0);
  std::mutex mu;

  cluster.run([&](vc::RankCtx& rctx) {
    const int nranks = rctx.nranks();
    Taskpool pool;

    TaskClass dfill;
    dfill.name = "DFILL";
    dfill.rank_of = [nranks](const Params& p) { return p[0] % nranks; };
    dfill.num_task_inputs = [](const Params&) { return 0; };
    dfill.priority = [](const Params& p) {
      return static_cast<double>(kChains - p[0]);
    };
    dfill.enumerate_rank = [nranks](int rank) {
      std::vector<Params> out;
      for (int l1 = rank; l1 < kChains; l1 += nranks)
        out.push_back(params_of(l1));
      return out;
    };
    dfill.body = [](TaskCtx& t) { t.set_output(0, make_buf(kElems)); };

    TaskClass gemm;
    gemm.name = "GEMM";
    gemm.rank_of = [nranks](const Params& p) { return p[0] % nranks; };
    gemm.num_task_inputs = [](const Params&) { return 1; };  // the C flow
    gemm.priority = [](const Params& p) {
      return static_cast<double>(kChains - p[0] + 1);
    };
    gemm.enumerate_rank = [nranks](int rank) {
      std::vector<Params> out;
      for (int l1 = rank; l1 < kChains; l1 += nranks)
        for (int l2 = 0; l2 < kLen; ++l2) out.push_back(params_of(l1, l2));
      return out;
    };
    gemm.body = [](TaskCtx& t) {
      DataBuf c = t.take_input(0);  // RW flow: we own the only copy
      fake_gemm(*c, t.params()[0], t.params()[1]);
      t.set_output(0, std::move(c));
    };

    TaskClass sort;
    sort.name = "SORT";
    sort.rank_of = [nranks](const Params& p) { return p[0] % nranks; };
    sort.num_task_inputs = [](const Params&) { return 1; };
    sort.enumerate_rank = [nranks](int rank) {
      std::vector<Params> out;
      for (int l1 = rank; l1 < kChains; l1 += nranks)
        out.push_back(params_of(l1));
      return out;
    };
    sort.body = [&](TaskCtx& t) {
      std::lock_guard lock(mu);
      finals[static_cast<size_t>(t.params()[0])] = (*t.input(0))[0];
    };

    const auto dfill_id = pool.add_class(std::move(dfill));
    const auto gemm_id = pool.add_class(std::move(gemm));
    const auto sort_id = pool.add_class(std::move(sort));

    // The dataflow of Figure 1: DFILL seeds the chain, C flows from
    // GEMM(L1, L2) to GEMM(L1, L2+1), the last GEMM feeds SORT.
    pool.mutable_cls(dfill_id).route_outputs =
        [gemm_id](const Params& p, std::vector<OutRoute>& r) {
          r.push_back({TaskKey{gemm_id, params_of(p[0], 0)}, 0, 0});
        };
    pool.mutable_cls(gemm_id).route_outputs =
        [gemm_id, sort_id](const Params& p, std::vector<OutRoute>& r) {
          if (p[1] < kLen - 1) {
            r.push_back({TaskKey{gemm_id, params_of(p[0], p[1] + 1)}, 0, 0});
          } else {
            r.push_back({TaskKey{sort_id, params_of(p[0])}, 0, 0});
          }
        };

    Context ctx(rctx, pool);
    ctx.run();
  });

  std::printf("Figure 1 (serial chains):\n");
  for (int l1 = 0; l1 < kChains; ++l1) {
    std::printf("  chain %d: C[0] = %6.1f (expected %6.1f) %s\n", l1,
                finals[static_cast<size_t>(l1)], expected_value(l1),
                finals[static_cast<size_t>(l1)] == expected_value(l1)
                    ? "ok"
                    : "WRONG");
  }
}

// ---- Figure 2: parallel GEMMs + reduction ----
void run_parallel_chains(vc::Cluster& cluster) {
  std::vector<double> finals(kChains, 0.0);
  std::mutex mu;

  cluster.run([&](vc::RankCtx& rctx) {
    const int nranks = rctx.nranks();
    Taskpool pool;

    TaskClass gemm;
    gemm.name = "GEMM";
    gemm.rank_of = [nranks](const Params& p) { return p[0] % nranks; };
    gemm.num_task_inputs = [](const Params&) { return 0; };  // independent!
    gemm.enumerate_rank = [nranks](int rank) {
      std::vector<Params> out;
      for (int l1 = rank; l1 < kChains; l1 += nranks)
        for (int l2 = 0; l2 < kLen; ++l2) out.push_back(params_of(l1, l2));
      return out;
    };
    gemm.body = [](TaskCtx& t) {
      auto c = make_buf(kElems);
      fake_gemm(*c, t.params()[0], t.params()[1]);
      t.set_output(0, std::move(c));
    };

    TaskClass red;
    red.name = "REDUCTION";
    red.rank_of = [nranks](const Params& p) { return p[0] % nranks; };
    red.num_task_inputs = [](const Params&) { return kLen; };
    red.enumerate_rank = [nranks](int rank) {
      std::vector<Params> out;
      for (int l1 = rank; l1 < kChains; l1 += nranks)
        out.push_back(params_of(l1));
      return out;
    };
    red.body = [&](TaskCtx& t) {
      double sum = 0.0;
      for (int i = 0; i < kLen; ++i) sum += (*t.input(i))[0];
      std::lock_guard lock(mu);
      finals[static_cast<size_t>(t.params()[0])] = sum;
    };

    const auto gemm_id = pool.add_class(std::move(gemm));
    const auto red_id = pool.add_class(std::move(red));

    // The one-line dataflow change of Figure 2:
    //   WRITE C -> A REDUCTION(L1, L2)
    pool.mutable_cls(gemm_id).route_outputs =
        [red_id](const Params& p, std::vector<OutRoute>& r) {
          r.push_back({TaskKey{red_id, params_of(p[0])},
                       static_cast<int8_t>(p[1]), 0});
        };

    Context ctx(rctx, pool);
    ctx.run();
  });

  std::printf("Figure 2 (parallel GEMMs + reduction):\n");
  for (int l1 = 0; l1 < kChains; ++l1) {
    std::printf("  chain %d: sum  = %6.1f (expected %6.1f) %s\n", l1,
                finals[static_cast<size_t>(l1)], expected_value(l1),
                finals[static_cast<size_t>(l1)] == expected_value(l1)
                    ? "ok"
                    : "WRONG");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 3;
  std::printf("PTG quickstart on %d virtual ranks\n\n", nranks);
  vc::Cluster cluster(nranks);
  run_serial_chains(cluster);
  std::printf("\n");
  run_parallel_chains(cluster);
  return 0;
}
