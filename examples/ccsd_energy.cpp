// CCSD end-to-end example: computes the CCSD correlation energy of two
// model systems with the t2_7 particle-particle-ladder term evaluated
// through the distributed PTG executor (variant v5), exactly the paper's
// integration pattern — and cross-checks the result against the all-dense
// iteration and, for a two-electron system, against full CI.
//
// Usage: ccsd_energy [nranks]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "cc/ccsd.h"
#include "cc/integration.h"
#include "cc/model.h"

using namespace mp;
using namespace mp::cc;

namespace {

void run_system(const char* title, const SpinOrbitalSystem& sys, int nranks,
                bool fci_check) {
  std::printf("---- %s ----\n", title);
  std::printf("%d occupied + %d virtual spin orbitals\n", sys.n_occ(),
              sys.n_virt());

  // All-dense CCSD (the unmodified "NWChem").
  const auto dense = run_ccsd(sys);
  std::printf("MP2  correlation energy : %+.14f\n", dense.e_mp2);
  std::printf("CCSD correlation energy : %+.14f  (%d iterations, dense)\n",
              dense.e_corr, dense.iterations);

  // CCSD with icsd_t2_7 running over the PTG runtime (paper Fig. 3).
  DistributedLadder ladder(sys, /*tile_size=*/3, nranks);
  LadderRunOptions lopts;
  lopts.kind = ExecKind::kPtg;
  lopts.variant = tce::VariantConfig::v5();
  CcsdOptions copts;
  copts.ladder = ladder.make_kernel(lopts);
  const auto hybrid = run_ccsd(sys, copts);
  std::printf("CCSD via PTG t2_7 (v5)  : %+.14f  (%d iterations, %zu "
              "chains over %d ranks)\n",
              hybrid.e_corr, hybrid.iterations, ladder.plan().chains.size(),
              nranks);
  std::printf("dense vs distributed    : |dE| = %.2e (paper: agreement to "
              "the 14th digit)\n",
              std::fabs(hybrid.e_corr - dense.e_corr));

  if (fci_check) {
    const double e_fci = fci_two_electron_energy(sys);
    const double e_tot = sys.hf_energy() + hybrid.e_corr;
    std::printf("FCI check (2 electrons) : E_FCI = %+.14f, E_HF+E_CCSD = "
                "%+.14f, |diff| = %.2e\n",
                e_fci, e_tot, std::fabs(e_fci - e_tot));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 2;

  run_system("synthetic closed-shell molecule (weak coupling)",
             make_synthetic(2, 4, 1.5, 0.1, 7), nranks, false);

  run_system("pairing (Richardson) Hamiltonian, 5 levels / 2 pairs",
             make_pairing(5, 2, 1.0, 0.35), nranks, false);

  run_system("two-electron system (CCSD must equal FCI)",
             make_synthetic(1, 5, 1.2, 0.15, 21), nranks, true);
  return 0;
}
