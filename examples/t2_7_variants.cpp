// Variant explorer: runs the icsd_t2_7 kernel through every executor —
// serial reference, original NXTVAL-style, and the five PaRSEC variants —
// on the real runtime over the in-process cluster, printing the result
// agreement and a trace-derived per-class task census for each variant
// (the structures of the paper's Figures 4-7).
//
// Usage: t2_7_variants [nranks] [workers_per_rank]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "cc/ccsd.h"
#include "cc/integration.h"
#include "cc/model.h"

using namespace mp;
using namespace mp::cc;

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 3;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 2;

  const auto sys = make_synthetic(2, 5, 1.4, 0.12, 99);
  DistributedLadder ladder(sys, /*tile_size=*/2, nranks);
  std::printf("icsd_t2_7 on %d ranks x %d workers\n", nranks, workers);
  std::printf("plan: %s\n\n", ladder.plan().stats().describe().c_str());

  // MP2 tau as the input amplitudes.
  const int O = sys.n_occ(), V = sys.n_virt();
  std::vector<double> tau(static_cast<size_t>(V) * V * O * O);
  for (int a = 0; a < V; ++a)
    for (int b = 0; b < V; ++b)
      for (int i = 0; i < O; ++i)
        for (int j = 0; j < O; ++j) {
          const double d =
              sys.f(i) + sys.f(j) - sys.f(O + a) - sys.f(O + b);
          tau[((static_cast<size_t>(a) * V + b) * O + i) * O + j] =
              sys.v(i, j, O + a, O + b) / d;
        }

  std::vector<double> reference(tau.size(), 0.0);
  dense_ladder(sys, tau, reference);

  auto report = [&](const char* name, const LadderRunResult& res) {
    double err = 0.0;
    for (size_t i = 0; i < reference.size(); ++i) {
      err = std::max(err, std::fabs(res.r_dense[i] - reference[i]));
    }
    std::map<std::string, int> census;
    for (const auto& e : res.trace.events()) {
      if (!e.is_comm && e.cls >= 0 &&
          static_cast<size_t>(e.cls) < res.class_names.size()) {
        census[res.class_names[static_cast<size_t>(e.cls)]]++;
      }
    }
    std::printf("%-9s max|err|=%.2e  tasks=%llu  remote=%llu  ", name, err,
                static_cast<unsigned long long>(res.tasks_executed),
                static_cast<unsigned long long>(res.remote_activations));
    for (const auto& [cls, n] : census) std::printf("%s:%d ", cls.c_str(), n);
    std::printf("\n");
  };

  {
    LadderRunOptions opts;
    opts.kind = ExecKind::kReference;
    report("reference", ladder.run(tau, opts));
  }
  {
    LadderRunOptions opts;
    opts.kind = ExecKind::kOriginal;
    opts.workers_per_rank = workers;
    opts.enable_tracing = true;
    report("original", ladder.run(tau, opts));
  }
  for (const auto& variant : tce::VariantConfig::all()) {
    LadderRunOptions opts;
    opts.kind = ExecKind::kPtg;
    opts.variant = variant;
    opts.workers_per_rank = workers;
    opts.enable_tracing = true;
    report(variant.name.c_str(), ladder.run(tau, opts));
  }

  std::printf("\nEvery executor computes the same tensor (max|err| ~ 1e-15 "
              "level): the paper's \"matched up to the 14th digit\".\n");
  return 0;
}
