// Tiled Cholesky over the PTG runtime — the DPLASMA-style dense linear
// algebra workload PaRSEC was originally built for, demonstrating that the
// runtime developed for the CC port is general-purpose.
//
// Usage: tiled_cholesky [tiles] [tile_size] [nranks]
#include <cstdio>
#include <cstdlib>

#include "apps/cholesky.h"
#include "linalg/cholesky.h"
#include "support/timing.h"
#include "vc/cluster.h"

using namespace mp;

int main(int argc, char** argv) {
  apps::TiledCholeskyOptions opts;
  opts.tiles = argc > 1 ? std::atoi(argv[1]) : 6;
  opts.tile_size = argc > 2 ? std::atoi(argv[2]) : 16;
  const int nranks = argc > 3 ? std::atoi(argv[3]) : 3;
  opts.enable_tracing = true;

  const size_t n =
      static_cast<size_t>(opts.tiles) * static_cast<size_t>(opts.tile_size);
  std::printf("tiled Cholesky: %zux%zu matrix, %dx%d tiles of %d, %d ranks\n",
              n, n, opts.tiles, opts.tiles, opts.tile_size, nranks);

  const auto a = apps::make_spd_matrix(n, 2015);
  vc::Cluster cluster(nranks);

  WallTimer t;
  const auto res = apps::tiled_cholesky(cluster, a, opts);
  const double ms = t.millis();

  const double residual = apps::cholesky_residual(a, res.l, n);
  std::printf("tasks executed     : %llu (%llu remote activations)\n",
              static_cast<unsigned long long>(res.tasks_executed),
              static_cast<unsigned long long>(res.remote_activations));
  std::printf("||L L^T - A||_max  : %.3e %s\n", residual,
              residual < 1e-9 ? "(ok)" : "(WRONG)");
  std::printf("wall time          : %.1f ms\n", ms);

  // Show the task mix, like the CC variant explorer does.
  std::printf("\ntask census:");
  const auto by_class = res.trace.time_by_class();
  const char* names[] = {"POTRF", "TRSM", "SYRK", "GEMM"};
  for (const auto& [cls, time] : by_class) {
    if (cls >= 0 && cls < 4) {
      std::printf(" %s=%.2fms", names[cls], time * 1e3);
    }
  }
  std::printf("\n");
  return 0;
}
