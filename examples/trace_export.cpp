// Export a simulated execution trace as JSON lines for external tooling —
// the equivalent of PaRSEC's binary trace files that the paper's Figures
// 10-13 were rendered from.
//
// Usage: trace_export [out.jsonl] [variant|original] [nodes] [cores]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "sim/original_sim.h"
#include "sim/presets.h"
#include "sim/ptg_sim.h"

using namespace mp;
using namespace mp::sim;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "trace.jsonl";
  const std::string which = argc > 2 ? argv[2] : "v4";
  const int nodes = argc > 3 ? std::atoi(argv[3]) : 8;
  const int cores = argc > 4 ? std::atoi(argv[4]) : 7;

  const auto p = make_preset("beta_carotene_32");
  ptg::Trace trace;
  std::vector<std::string> names;

  if (which == "original") {
    OriginalSimOptions opts;
    opts.nodes = nodes;
    opts.cores_per_node = cores;
    opts.record_trace = true;
    auto res = simulate_original(p.plan, opts);
    trace = std::move(res.trace);
    names = original_class_names();
  } else {
    tce::VariantConfig variant;
    bool found = false;
    for (const auto& v : tce::VariantConfig::all()) {
      if (v.name == which) {
        variant = v;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown variant '%s'\n", which.c_str());
      return 1;
    }
    GraphOptions gopts;
    gopts.variant = variant;
    gopts.nodes = nodes;
    const auto g = build_graph(p.plan, gopts);
    SimOptions sopts;
    sopts.cores_per_node = cores;
    sopts.record_trace = true;
    auto res = simulate_ptg(g, sopts);
    trace = std::move(res.trace);
    names = sim_class_names();
  }

  trace.normalize();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  trace.to_json(out, names);
  std::printf("wrote %zu events (%s, %d nodes x %d cores, span %.3fs) to %s\n",
              trace.size(), which.c_str(), nodes, cores, trace.span(),
              path.c_str());
  return 0;
}
