// Interactive front end to the cluster simulator: pick a workload preset,
// cluster shape and variant, get the simulated execution time, resource
// breakdown, and an ASCII trace.
//
// Usage: cluster_sim [preset] [nodes] [cores] [variant|original]
//   e.g.  cluster_sim beta_carotene_32 32 15 v5
//         cluster_sim beta_carotene_32 32 7 original
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/original_sim.h"
#include "sim/presets.h"
#include "sim/ptg_sim.h"

using namespace mp;
using namespace mp::sim;

int main(int argc, char** argv) {
  const std::string preset = argc > 1 ? argv[1] : "beta_carotene_32";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 32;
  const int cores = argc > 3 ? std::atoi(argv[3]) : 15;
  const std::string which = argc > 4 ? argv[4] : "v5";

  const auto p = make_preset(preset);
  std::printf("workload: %s\n  %s\n", p.description.c_str(),
              p.plan.stats().describe().c_str());
  std::printf("cluster : %d nodes x %d cores (+1 comm thread/node)\n\n",
              nodes, cores);

  if (which == "original") {
    OriginalSimOptions opts;
    opts.nodes = nodes;
    opts.cores_per_node = cores;
    opts.record_trace = true;
    auto res = simulate_original(p.plan, opts);
    res.trace.normalize();
    std::printf("original TCE structure: makespan %.3fs\n", res.makespan);
    std::printf("  compute %.1fs | blocked comm %.1fs | nxtval %.3fs | "
                "idle %.1f%%\n",
                res.compute_time, res.blocked_comm_time, res.nxtval_time,
                100.0 * res.idle_fraction);
    ptg::Trace clipped;
    for (const auto& e : res.trace.events()) {
      if (e.rank < 2) clipped.add(e);
    }
    std::printf("%s\n",
                clipped.ascii_gantt(100, original_class_glyphs()).c_str());
    return 0;
  }

  tce::VariantConfig variant;
  bool found = false;
  for (const auto& v : tce::VariantConfig::all()) {
    if (v.name == which) {
      variant = v;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr,
                 "unknown variant '%s' (use v1..v5 or original)\n",
                 which.c_str());
    return 1;
  }

  GraphOptions gopts;
  gopts.variant = variant;
  gopts.nodes = nodes;
  const auto g = build_graph(p.plan, gopts);
  SimOptions sopts;
  sopts.cores_per_node = cores;
  sopts.record_trace = true;
  auto res = simulate_ptg(g, sopts);
  res.trace.normalize();

  std::printf("PaRSEC %s: makespan %.3fs\n", variant.name.c_str(),
              res.makespan);
  std::printf("  core busy %.1fs | idle %.1f%% | NIC busy %.1fs | "
              "mutex wait %.3fs | %llu transfers (%.2f GB)\n",
              res.core_busy_time, 100.0 * res.idle_fraction,
              res.comm_busy_time, res.mutex_wait_time,
              static_cast<unsigned long long>(res.transfers),
              res.bytes_transferred / 1e9);
  const auto names = sim_class_names();
  std::printf("  busy by class:");
  for (size_t k = 0; k < names.size(); ++k) {
    std::printf(" %s=%.2fs", names[k].c_str(), res.busy_by_kind[k]);
  }
  std::printf("\n\n");

  ptg::Trace clipped;
  for (const auto& e : res.trace.events()) {
    if (e.rank < 2) clipped.add(e);
  }
  std::printf("%s\n", clipped.ascii_gantt(100, sim_class_glyphs()).c_str());
  return 0;
}
