#include "cc/integration.h"

#include <mutex>

#include "support/error.h"

namespace mp::cc {

DistributedLadder::DistributedLadder(const SpinOrbitalSystem& sys,
                                     int tile_size, int nranks)
    : sys_(&sys) {
  MP_REQUIRE(tile_size >= 1, "DistributedLadder: tile_size must be >= 1");
  cluster_ = std::make_unique<vc::Cluster>(nranks);

  tce::TileSpaceSpec spec;
  spec.n_occ_alpha = sys.n_occ_alpha;
  spec.n_occ_beta = sys.n_occ_beta;
  spec.n_virt_alpha = sys.n_virt_alpha;
  spec.n_virt_beta = sys.n_virt_beta;
  spec.tile_size = tile_size;
  space_ = std::make_unique<tce::TileSpace>(spec);

  using tce::BlockTensor4;
  using tce::RangeKind;
  const std::array<RangeKind, 4> vvvv{RangeKind::kVirt, RangeKind::kVirt,
                                      RangeKind::kVirt, RangeKind::kVirt};
  const std::array<RangeKind, 4> vvoo{RangeKind::kVirt, RangeKind::kVirt,
                                      RangeKind::kOcc, RangeKind::kOcc};
  const std::array<RangeKind, 4> oooo{RangeKind::kOcc, RangeKind::kOcc,
                                      RangeKind::kOcc, RangeKind::kOcc};
  v_shape_ = std::make_unique<BlockTensor4>(*space_, vvvv);
  t_shape_ = std::make_unique<BlockTensor4>(*space_, vvoo);
  r_shape_ = std::make_unique<BlockTensor4>(*space_, vvoo, /*tri01=*/true,
                                            /*tri23=*/true);
  w_shape_ = std::make_unique<BlockTensor4>(*space_, oooo);

  v_ga_ = std::make_unique<ga::GlobalArray>(cluster_.get(),
                                            v_shape_->ga_size());
  t_ga_ = std::make_unique<ga::GlobalArray>(cluster_.get(),
                                            t_shape_->ga_size());
  r_ga_ = std::make_unique<ga::GlobalArray>(cluster_.get(),
                                            r_shape_->ga_size());
  w_ga_ = std::make_unique<ga::GlobalArray>(cluster_.get(),
                                            w_shape_->ga_size());

  // Scatter the integral tensors once: v_dense[c,d,a,b] = <cd||ab> (all
  // virtual) and w_dense[m,n,i,j] = <mn||ij> (all occupied).
  const int O = sys.n_occ(), V = sys.n_virt();
  {
    std::vector<double> v_dense(static_cast<size_t>(V) * V * V * V);
    size_t at = 0;
    for (int c = 0; c < V; ++c)
      for (int d = 0; d < V; ++d)
        for (int a = 0; a < V; ++a)
          for (int b = 0; b < V; ++b) {
            v_dense[at++] = sys.v(O + c, O + d, O + a, O + b);
          }
    v_shape_->scatter_dense(v_dense, *v_ga_);
  }
  {
    std::vector<double> w_dense(static_cast<size_t>(O) * O * O * O);
    size_t at = 0;
    for (int m = 0; m < O; ++m)
      for (int n = 0; n < O; ++n)
        for (int i = 0; i < O; ++i)
          for (int j = 0; j < O; ++j) {
            w_dense[at++] = sys.v(m, n, i, j);
          }
    w_shape_->scatter_dense(w_dense, *w_ga_);
  }

  // Inspection phase for both subroutines, plus the fused plan (the hh
  // chains' A store becomes fused store 3; t and r are shared).
  pp_plan_ = tce::inspect_t2_7(
      *space_, {v_shape_.get(), t_shape_.get(), r_shape_.get()});
  hh_plan_ = tce::inspect_hh_ladder(
      *space_, {w_shape_.get(), t_shape_.get(), r_shape_.get()});
  fused_plan_ = tce::fuse_plans(pp_plan_, hh_plan_, {3, 1, 2});
}

const tce::ChainPlan& DistributedLadder::plan(Contraction c) const {
  switch (c) {
    case Contraction::kT2_7: return pp_plan_;
    case Contraction::kHhLadder: return hh_plan_;
    case Contraction::kFused: return fused_plan_;
  }
  throw InvalidArgument("unknown contraction");
}

const char* DistributedLadder::subroutine_name(Contraction c) {
  switch (c) {
    case Contraction::kT2_7: return "t2_7";
    case Contraction::kHhLadder: return "hh_ladder";
    case Contraction::kFused: return "fused";
  }
  return "unknown";
}

tce::PtgSession& DistributedLadder::session_for(const LadderRunOptions& opts) {
  tce::PtgExecOptions popts;
  popts.variant = opts.variant;
  popts.policy = opts.policy;
  popts.workers_per_rank = opts.workers_per_rank;
  popts.enable_tracing = opts.enable_tracing;
  popts.enable_stealing = opts.enable_stealing;
  popts.enable_failure_detection = opts.enable_failure_detection;
  popts.on_rank_failure = opts.on_rank_failure;

  // Sessions are keyed by everything that shapes the runtime, not just the
  // template: two runs with the same graph but different scheduler policy
  // or worker count need different persistent Contexts.
  std::string skey = subroutine_name(opts.contraction);
  skey += '/';
  skey += tce::variant_signature(opts.variant);
  skey += "/p" + std::to_string(static_cast<int>(opts.policy));
  skey += "w" + std::to_string(opts.workers_per_rank);
  skey += opts.enable_tracing ? "t1" : "t0";
  skey += opts.enable_stealing ? "s1" : "s0";
  skey += opts.enable_failure_detection
              ? "f" + std::to_string(static_cast<int>(opts.on_rank_failure))
              : "f-";

  // Look up the template every run (a hit after the first) so the cache's
  // hit/miss counters mirror the amortization the paper's iterative driver
  // would see; a hit is a hash-map probe plus a pointer-compare re-bind.
  tce::TemplateKey tkey;
  tkey.subroutine = subroutine_name(opts.contraction);
  tkey.tile_fingerprint = tce::fingerprint_tile_space(space_->spec());
  tkey.variant = tce::variant_signature(opts.variant);
  tkey.nranks = cluster_->nranks();
  auto tpl = tpl_cache_.get_or_build(tkey, plan(opts.contraction),
                                     stores_for(opts.contraction),
                                     opts.variant);

  std::lock_guard lock(session_mu_);
  auto it = sessions_.find(skey);
  if (it == sessions_.end()) {
    it = sessions_
             .emplace(skey, std::make_unique<tce::PtgSession>(*cluster_, tpl,
                                                              popts))
             .first;
  }
  return *it->second;
}

tce::StoreList DistributedLadder::stores_for(Contraction c) const {
  const tce::TensorStore v{v_shape_.get(), v_ga_.get()};
  const tce::TensorStore t{t_shape_.get(), t_ga_.get()};
  const tce::TensorStore r{r_shape_.get(), r_ga_.get()};
  const tce::TensorStore w{w_shape_.get(), w_ga_.get()};
  switch (c) {
    case Contraction::kT2_7: return {v, t, r};
    case Contraction::kHhLadder: return {w, t, r};
    case Contraction::kFused: return {v, t, r, w};
  }
  throw InvalidArgument("unknown contraction");
}

LadderRunResult DistributedLadder::run(const std::vector<double>& tau,
                                       const LadderRunOptions& opts) {
  t_shape_->scatter_dense(tau, *t_ga_);
  r_ga_->zero();

  const tce::ChainPlan& the_plan = plan(opts.contraction);
  const tce::StoreList storage = stores_for(opts.contraction);

  LadderRunResult result;
  std::mutex merge_mu;

  switch (opts.kind) {
    case ExecKind::kReference:
      tce::execute_reference(the_plan, storage);
      break;
    case ExecKind::kOriginal: {
      ga::NxtVal nxtval(cluster_.get(), 1);
      tce::OriginalExecOptions oopts;
      oopts.workers_per_rank = opts.workers_per_rank;
      oopts.enable_tracing = opts.enable_tracing;
      cluster_->run([&](vc::RankCtx& rctx) {
        ptg::Trace local;
        tce::execute_original(rctx, the_plan, storage, nxtval, oopts,
                              opts.enable_tracing ? &local : nullptr);
        if (opts.enable_tracing) {
          std::lock_guard lock(merge_mu);
          result.trace.append(local);
        }
      });
      result.class_names = {"GET", "GEMM", "SORT", "ADD", "NXTVAL"};
      break;
    }
    case ExecKind::kPtg: {
      const auto merge = [&](const tce::PtgExecResult& res) {
        if (res.killed) return;
        std::lock_guard lock(merge_mu);
        result.trace.append(res.trace);
        result.tasks_executed += res.tasks_executed;
        result.remote_activations += res.remote_activations;
        result.sched.steals += res.sched.steals;
        result.sched.steal_attempts += res.sched.steal_attempts;
        result.sched.contended_pushes += res.sched.contended_pushes;
        result.sched.contended_pops += res.sched.contended_pops;
        if (result.class_names.empty()) result.class_names = res.class_names;
      };
      if (opts.reuse_runtime) {
        // Persistent path (DESIGN.md §11): graph build, verification and
        // thread spin-up were paid once when the session was created; this
        // submission only re-binds store pointers and wakes parked threads.
        tce::PtgSession& ses = session_for(opts);
        for (const auto& res : ses.submit(stores_for(opts.contraction))) {
          merge(res);
        }
      } else {
        tce::PtgExecOptions popts;
        popts.variant = opts.variant;
        popts.policy = opts.policy;
        popts.workers_per_rank = opts.workers_per_rank;
        popts.enable_tracing = opts.enable_tracing;
        popts.enable_stealing = opts.enable_stealing;
        popts.enable_failure_detection = opts.enable_failure_detection;
        popts.on_rank_failure = opts.on_rank_failure;
        cluster_->run([&](vc::RankCtx& rctx) {
          merge(tce::execute_ptg(rctx, the_plan, storage, popts));
        });
      }
      break;
    }
  }

  result.trace.normalize();
  result.r_dense = reconstruct_dense_residual(*space_, *r_shape_, *r_ga_);
  return result;
}

LadderKernel DistributedLadder::make_kernel(LadderRunOptions opts) {
  return [this, opts](const std::vector<double>& tau,
                      std::vector<double>& out) {
    const auto res = run(tau, opts);
    MP_ASSERT(res.r_dense.size() == out.size(),
              "distributed ladder produced wrong-size result");
    for (size_t i = 0; i < out.size(); ++i) out[i] += res.r_dense[i];
  };
}

std::vector<double> reconstruct_dense_residual(const tce::TileSpace& space,
                                               const tce::BlockTensor4& r_shape,
                                               const ga::GlobalArray& r_ga) {
  const int O = space.n_occ(), V = space.n_virt();
  std::vector<double> dense(static_cast<size_t>(V) * V * O * O, 0.0);
  auto dense_at = [&](int a, int b, int i, int j) -> double& {
    return dense[((static_cast<size_t>(a) * V + b) * O + i) * O + j];
  };

  const auto& vt = space.virt_tiles();
  const auto& ot = space.occ_tiles();
  std::vector<double> blk;
  for (const uint64_t key : r_shape.index().keys()) {
    const int ta = static_cast<int>((key >> 48) & 0xFFFF);
    const int tb = static_cast<int>((key >> 32) & 0xFFFF);
    const int ti = static_cast<int>((key >> 16) & 0xFFFF);
    const int tj = static_cast<int>(key & 0xFFFF);
    const auto bd = r_shape.block_dims(ta, tb, ti, tj);
    blk.resize(bd[0] * bd[1] * bd[2] * bd[3]);
    ga::get_hash_block(r_ga, r_shape.index(), key, blk.data());

    // Blocks with coinciding tile pairs accumulated 2^d copies through the
    // guarded sorts; divide the factor back out.
    const int d = (ta == tb ? 1 : 0) + (ti == tj ? 1 : 0);
    const double scale = 1.0 / static_cast<double>(1 << d);

    const int oa = space.virt_dense_offset(ta), ob = space.virt_dense_offset(tb);
    const int oi = space.occ_dense_offset(ti), oj = space.occ_dense_offset(tj);
    (void)vt;
    (void)ot;

    size_t at = 0;
    for (size_t xa = 0; xa < bd[0]; ++xa)
      for (size_t xb = 0; xb < bd[1]; ++xb)
        for (size_t xi = 0; xi < bd[2]; ++xi)
          for (size_t xj = 0; xj < bd[3]; ++xj) {
            const double val = blk[at++] * scale;
            const int a = oa + static_cast<int>(xa);
            const int b = ob + static_cast<int>(xb);
            const int i = oi + static_cast<int>(xi);
            const int j = oj + static_cast<int>(xj);
            dense_at(a, b, i, j) = val;
            if (ta != tb) dense_at(b, a, i, j) = -val;
            if (ti != tj) dense_at(a, b, j, i) = -val;
            if (ta != tb && ti != tj) dense_at(b, a, j, i) = val;
          }
  }
  return dense;
}

}  // namespace mp::cc
