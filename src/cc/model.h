// Model electronic-structure systems in a canonical spin-orbital basis.
//
// The paper runs CCSD on beta-carotene through NWChem's integral machinery;
// we have no integral code or basis-set data, so we substitute model
// Hamiltonians that exercise the identical CC equations (see DESIGN.md):
//   * a synthetic closed-shell "molecule": diagonal Fock with a HOMO-LUMO
//     gap plus weak random antisymmetrized two-electron integrals — the CC
//     iteration converges for small coupling;
//   * the pairing (Richardson) Hamiltonian, a standard coupled-cluster
//     test system.
// Spin-orbital ordering matches tce::TileSpace's dense layout: within the
// occupied and virtual ranges, all alpha orbitals come before all beta.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mp::cc {

struct SpinOrbitalSystem {
  int n_occ_alpha = 0;
  int n_occ_beta = 0;
  int n_virt_alpha = 0;
  int n_virt_beta = 0;

  /// Diagonal of the Fock operator, length n_spin_orbitals(): occupied
  /// orbitals first (alpha, then beta), then virtuals (alpha, then beta).
  std::vector<double> fock_diag;

  /// Antisymmetrized two-electron integrals <pq||rs>, dense N^4 row-major.
  std::vector<double> eri;

  int n_occ() const { return n_occ_alpha + n_occ_beta; }
  int n_virt() const { return n_virt_alpha + n_virt_beta; }
  int n_spin_orbitals() const { return n_occ() + n_virt(); }

  double f(int p) const { return fock_diag[static_cast<size_t>(p)]; }

  /// <pq||rs> with global spin-orbital indices.
  double v(int p, int q, int r, int s) const {
    const size_t n = static_cast<size_t>(n_spin_orbitals());
    return eri[((static_cast<size_t>(p) * n + static_cast<size_t>(q)) * n +
                static_cast<size_t>(r)) *
                   n +
               static_cast<size_t>(s)];
  }

  /// Spin of a global spin-orbital index (0 = alpha, 1 = beta).
  int spin_of(int p) const;

  /// One-electron integral h[p][q] implied by the diagonal Fock:
  /// h = f - sum_i <pi||qi>. Needed only by the FCI checker.
  double h(int p, int q) const;

  /// Hartree-Fock reference energy implied by h and the ERIs.
  double hf_energy() const;

  /// Verify the antisymmetry/hermiticity/spin structure of the ERIs; throws
  /// InvalidArgument on violation (used by tests and as a model self-check).
  void check_integrals() const;
};

/// Closed-shell synthetic system: no_a occupied and nv_a virtual orbitals
/// per spin. Occupied levels spread below 0, virtuals above `gap`. Random
/// antisymmetrized ERIs of magnitude `coupling` (deterministic in `seed`).
SpinOrbitalSystem make_synthetic(int no_a, int nv_a, double gap,
                                 double coupling, uint64_t seed);

/// Pairing (Richardson) Hamiltonian: `levels` doubly-degenerate levels with
/// spacing `delta`, the lowest `pairs` levels filled, pair-hopping strength
/// `g` (attractive for g > 0).
SpinOrbitalSystem make_pairing(int levels, int pairs, double delta, double g);

/// Exact ground-state energy by full CI for two-electron systems
/// (n_occ() == 2). CCSD is exact for two electrons, so this provides an
/// independent end-to-end check of the CC machinery.
double fci_two_electron_energy(const SpinOrbitalSystem& sys);

}  // namespace mp::cc
