// Spin-orbital CCSD (singles and doubles) with Stanton-style intermediates,
// MP2 initial guess and optional DIIS acceleration.
//
// This is the dense reference implementation of the CC iteration the paper
// accelerates. The particle-particle ladder term
//     1/2 sum_ef <ab||ef> tau^ef_ij
// — NWChem's icsd_t2_7, the subroutine the paper ports to PaRSEC — is
// factored out behind a LadderKernel hook: by default it is computed
// densely in place, and the integration layer (cc/integration.h) swaps in
// kernels that run it through the original-style or PTG executors instead,
// mirroring exactly how the paper re-integrates the ported subroutine into
// an otherwise unmodified NWChem.
//
// Dense tensor layouts (row-major):
//   t1[a,i]        V x O
//   t2[a,b,i,j]    V x V x O x O   (same layout as tce VVOO tensors)
//   tau[e,f,i,j]   V x V x O x O
#pragma once

#include <functional>
#include <vector>

#include "cc/model.h"

namespace mp::cc {

/// Computes out[a,b,i,j] += 1/2 sum_ef <ef||ab> tau[e,f,i,j].
/// `tau` and `out` are VVOO dense tensors.
using LadderKernel =
    std::function<void(const std::vector<double>& tau, std::vector<double>& out)>;

struct CcsdOptions {
  int max_iter = 100;
  double tol = 1e-11;       ///< convergence on |dE| and amplitude rms
  bool use_diis = true;
  int diis_dim = 6;
  /// CCD: keep the singles amplitudes at zero and iterate doubles only.
  bool ccd_only = false;
  /// Particle-particle ladder 1/2 sum_ef <ef||ab> tau^ef_ij (icsd_t2_7).
  /// Empty = dense in-process evaluation.
  LadderKernel ladder;
  /// Hole-hole ladder 1/2 sum_mn <mn||ij> tau^ab_mn (the pure-integral
  /// part of Wmnij) — the second ported subroutine. Empty = dense.
  LadderKernel hh_ladder;
  /// When set, replaces BOTH ladder terms with one kernel invocation —
  /// used for fused multi-subroutine execution under a single runtime
  /// context (the paper's future-work direction).
  LadderKernel combined_ladders;
};

struct CcsdResult {
  bool converged = false;
  int iterations = 0;
  double e_mp2 = 0.0;       ///< MP2 correlation energy (initial guess)
  double e_corr = 0.0;      ///< CCSD correlation energy
  std::vector<double> t1;
  std::vector<double> t2;
  std::vector<double> iteration_energies;  ///< E_corr after each iteration
};

CcsdResult run_ccsd(const SpinOrbitalSystem& sys, const CcsdOptions& opts = {});

/// The dense ladder evaluations used when no kernel is injected; exposed
/// for tests and for validating distributed kernels against them.
/// out[a,b,i,j] += 1/2 sum_ef <ef||ab> tau[e,f,i,j].
void dense_ladder(const SpinOrbitalSystem& sys, const std::vector<double>& tau,
                  std::vector<double>& out);
/// out[a,b,i,j] += 1/2 sum_mn <mn||ij> tau[a,b,m,n].
void dense_hh_ladder(const SpinOrbitalSystem& sys,
                     const std::vector<double>& tau,
                     std::vector<double>& out);

/// MP2 correlation energy in the canonical basis.
double mp2_energy(const SpinOrbitalSystem& sys);

}  // namespace mp::cc
