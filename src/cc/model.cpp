#include "cc/model.h"

#include <cmath>

#include "linalg/matrix.h"
#include "linalg/solve.h"
#include "support/error.h"
#include "support/rng.h"

namespace mp::cc {
namespace {

size_t eri_index(int n, int p, int q, int r, int s) {
  return ((static_cast<size_t>(p) * n + static_cast<size_t>(q)) * n +
          static_cast<size_t>(r)) *
             n +
         static_cast<size_t>(s);
}

/// Write <pq||rs> = v and the seven symmetry partners.
void set_antisym(std::vector<double>* eri, int n, int p, int q, int r, int s,
                 double v) {
  (*eri)[eri_index(n, p, q, r, s)] = v;
  (*eri)[eri_index(n, q, p, r, s)] = -v;
  (*eri)[eri_index(n, p, q, s, r)] = -v;
  (*eri)[eri_index(n, q, p, s, r)] = v;
  (*eri)[eri_index(n, r, s, p, q)] = v;
  (*eri)[eri_index(n, s, r, p, q)] = -v;
  (*eri)[eri_index(n, r, s, q, p)] = -v;
  (*eri)[eri_index(n, s, r, q, p)] = v;
}

}  // namespace

int SpinOrbitalSystem::spin_of(int p) const {
  if (p < n_occ()) return p < n_occ_alpha ? 0 : 1;
  return (p - n_occ()) < n_virt_alpha ? 0 : 1;
}

double SpinOrbitalSystem::h(int p, int q) const {
  double s = (p == q) ? f(p) : 0.0;
  for (int i = 0; i < n_occ(); ++i) s -= v(p, i, q, i);
  return s;
}

double SpinOrbitalSystem::hf_energy() const {
  double e = 0.0;
  for (int i = 0; i < n_occ(); ++i) {
    e += h(i, i);
    for (int j = 0; j < n_occ(); ++j) e += 0.5 * v(i, j, i, j);
  }
  return e;
}

void SpinOrbitalSystem::check_integrals() const {
  const int n = n_spin_orbitals();
  MP_REQUIRE(fock_diag.size() == static_cast<size_t>(n),
             "SpinOrbitalSystem: fock_diag size mismatch");
  MP_REQUIRE(eri.size() == static_cast<size_t>(n) * n * n * n,
             "SpinOrbitalSystem: eri size mismatch");
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      for (int r = 0; r < n; ++r) {
        for (int s = 0; s < n; ++s) {
          const double x = v(p, q, r, s);
          MP_REQUIRE(std::fabs(x + v(q, p, r, s)) < 1e-12,
                     "ERI not antisymmetric in bra");
          MP_REQUIRE(std::fabs(x + v(p, q, s, r)) < 1e-12,
                     "ERI not antisymmetric in ket");
          MP_REQUIRE(std::fabs(x - v(r, s, p, q)) < 1e-12,
                     "ERI not hermitian");
          if (spin_of(p) + spin_of(q) != spin_of(r) + spin_of(s)) {
            MP_REQUIRE(x == 0.0, "ERI violates spin conservation");
          }
        }
      }
    }
  }
}

SpinOrbitalSystem make_synthetic(int no_a, int nv_a, double gap,
                                 double coupling, uint64_t seed) {
  MP_REQUIRE(no_a >= 1 && nv_a >= 1, "make_synthetic: need orbitals");
  MP_REQUIRE(gap > 0.0, "make_synthetic: gap must be positive");
  SpinOrbitalSystem sys;
  sys.n_occ_alpha = sys.n_occ_beta = no_a;
  sys.n_virt_alpha = sys.n_virt_beta = nv_a;
  const int n = sys.n_spin_orbitals();

  // Closed shell: alpha and beta share spatial levels. Occupied levels
  // descend from -1, virtuals ascend from +gap.
  sys.fock_diag.resize(static_cast<size_t>(n));
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < no_a; ++i) {
      sys.fock_diag[static_cast<size_t>(s * no_a + i)] =
          -1.0 - 0.17 * (no_a - 1 - i);
    }
    for (int a = 0; a < nv_a; ++a) {
      sys.fock_diag[static_cast<size_t>(sys.n_occ() + s * nv_a + a)] =
          gap - 1.0 + 0.23 * a;
    }
  }

  sys.eri.assign(static_cast<size_t>(n) * n * n * n, 0.0);
  Rng rng(seed);
  for (int p = 0; p < n; ++p) {
    for (int q = p + 1; q < n; ++q) {
      for (int r = 0; r < n; ++r) {
        for (int s = r + 1; s < n; ++s) {
          // Enumerate canonical representatives once: (p<q), (r<s) and
          // bra-pair <= ket-pair lexicographically.
          if (std::make_pair(p, q) > std::make_pair(r, s)) continue;
          if (sys.spin_of(p) + sys.spin_of(q) !=
              sys.spin_of(r) + sys.spin_of(s)) {
            continue;
          }
          const double val = coupling * rng.uniform(-1.0, 1.0);
          set_antisym(&sys.eri, n, p, q, r, s, val);
        }
      }
    }
  }
  return sys;
}

SpinOrbitalSystem make_pairing(int levels, int pairs, double delta, double g) {
  MP_REQUIRE(levels >= 1 && pairs >= 1 && pairs < levels,
             "make_pairing: need 1 <= pairs < levels");
  SpinOrbitalSystem sys;
  sys.n_occ_alpha = sys.n_occ_beta = pairs;
  sys.n_virt_alpha = sys.n_virt_beta = levels - pairs;
  const int n = sys.n_spin_orbitals();

  // Global index of level l with spin s (alpha block first in each range).
  auto so = [&](int level, int spin) {
    if (level < pairs) return spin * pairs + level;  // occupied range
    return sys.n_occ() + spin * (levels - pairs) + (level - pairs);
  };

  sys.eri.assign(static_cast<size_t>(n) * n * n * n, 0.0);
  for (int p = 0; p < levels; ++p) {
    for (int q = 0; q < levels; ++q) {
      // Pair-hopping: <p_alpha p_beta || q_alpha q_beta> = -g.
      const int pa = so(p, 0), pb = so(p, 1);
      const int qa = so(q, 0), qb = so(q, 1);
      // set_antisym writes both (pq|rs) and (rs|pq); enumerate p <= q so
      // each pair of level pairs is written exactly once.
      if (p > q) continue;
      set_antisym(&sys.eri, n, pa, pb, qa, qb, -g);
    }
  }

  // Fock diagonal: level spacing plus the pairing self-interaction for
  // occupied levels (f_p = delta*p + <p sigma, p sigma'||...> summed over
  // occupied partners; only the same-level pair term survives).
  sys.fock_diag.resize(static_cast<size_t>(n));
  for (int l = 0; l < levels; ++l) {
    for (int s = 0; s < 2; ++s) {
      double fval = delta * l;
      if (l < pairs) fval += -g;  // <p up, p dn || p up, p dn> = -g
      sys.fock_diag[static_cast<size_t>(so(l, s))] = fval;
    }
  }
  return sys;
}

double fci_two_electron_energy(const SpinOrbitalSystem& sys) {
  MP_REQUIRE(sys.n_occ() == 2, "fci_two_electron_energy: needs 2 electrons");
  const int n = sys.n_spin_orbitals();

  // Basis: ordered determinants |pq>, p < q.
  std::vector<std::pair<int, int>> dets;
  for (int p = 0; p < n; ++p) {
    for (int q = p + 1; q < n; ++q) dets.emplace_back(p, q);
  }
  const size_t dim = dets.size();
  linalg::Matrix H(dim, dim);
  for (size_t a = 0; a < dim; ++a) {
    const auto [p, q] = dets[a];
    for (size_t b = a; b < dim; ++b) {
      const auto [r, s] = dets[b];
      // Two-electron Slater-Condon in first-quantized antisymmetrized form:
      // <pq|H|rs> = h_pr d_qs - h_ps d_qr + h_qs d_pr - h_qr d_ps + <pq||rs>
      double el = sys.v(p, q, r, s);
      if (q == s) el += sys.h(p, r);
      if (q == r) el -= sys.h(p, s);
      if (p == r) el += sys.h(q, s);
      if (p == s) el -= sys.h(q, r);
      H(a, b) = el;
      H(b, a) = el;
    }
  }
  const auto evals = linalg::symmetric_eigenvalues(std::move(H));
  return evals.front();
}

}  // namespace mp::cc
