// Integration layer: runs the ladder terms of the CC iteration through the
// distributed executors, exactly mirroring the paper's structure (Fig. 3):
// the surrounding CCSD iteration is oblivious to whether a term is computed
// densely in-process, by the original NWChem-style executor, or by any PTG
// variant.
//
// Two ported subroutines are available — the paper's icsd_t2_7
// (particle-particle ladder) and the hole-hole ladder (the next subroutine
// to port, per the paper's conclusions) — plus their *fused* execution: one
// runtime context runs both subroutines' task graphs with no
// synchronization in between, the paper's future-work direction.
//
// A DistributedLadder owns the virtual cluster, the tiled tensors, their
// Global Arrays and the inspected ChainPlans. Each kernel invocation
// scatters tau into the t GA, zeroes the result GA, executes the plan SPMD
// over the cluster, gathers the canonical blocks and reconstructs the dense
// antisymmetric residual contribution.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cc/ccsd.h"
#include "cc/model.h"
#include "ga/global_array.h"
#include "ptg/trace.h"
#include "tce/block_tensor.h"
#include "tce/chain_plan.h"
#include "tce/inspector.h"
#include "tce/original_exec.h"
#include "tce/ptg_exec.h"
#include "tce/ptg_session.h"
#include "tce/reference_exec.h"
#include "tce/template_cache.h"
#include "tce/storage.h"
#include "tce/tiles.h"
#include "vc/cluster.h"

namespace mp::cc {

/// Which executor computes the term.
enum class ExecKind { kReference, kOriginal, kPtg };

/// Which ported subroutine(s) to run.
enum class Contraction { kT2_7, kHhLadder, kFused };

struct LadderRunOptions {
  ExecKind kind = ExecKind::kReference;
  Contraction contraction = Contraction::kT2_7;
  tce::VariantConfig variant = tce::VariantConfig::v5();  // kPtg only
  ptg::SchedPolicy policy = ptg::SchedPolicy::kPriority;  // kPtg only
  int workers_per_rank = 2;
  bool enable_tracing = false;
  /// kPtg only: route the run through the ladder's TemplateCache and a
  /// persistent PtgSession (DESIGN.md §11). The first call per
  /// (contraction, variant, runtime-config) pays graph build + thread
  /// spin-up; every later call is a cheap re-bound resubmission. Off, each
  /// call rebuilds the graph and spawns fresh threads (the pre-cache path,
  /// kept for comparison benchmarks).
  bool reuse_runtime = true;
  /// kPtg only: forwarded to the runtime (see PtgExecOptions).
  bool enable_stealing = false;
  bool enable_failure_detection = false;
  ptg::FailurePolicy on_rank_failure = ptg::FailurePolicy::kAbort;
};

struct LadderRunResult {
  std::vector<double> r_dense;  ///< VVOO, full antisymmetric reconstruction
  ptg::Trace trace;             ///< merged over ranks (if tracing)
  std::vector<std::string> class_names;
  uint64_t tasks_executed = 0;
  uint64_t remote_activations = 0;
  ptg::SchedStats sched;        ///< summed over ranks (kPtg only)
};

class DistributedLadder {
 public:
  /// Builds the tile space (tile_size orbitals per tile), the block
  /// tensors, the Global Arrays over `nranks` virtual ranks, scatters the
  /// integral tensors once, and runs the inspection phase for both
  /// subroutines (plus their fusion).
  DistributedLadder(const SpinOrbitalSystem& sys, int tile_size, int nranks);

  const tce::TileSpace& space() const { return *space_; }
  int nranks() const { return cluster_->nranks(); }

  const tce::ChainPlan& plan(Contraction c = Contraction::kT2_7) const;

  /// Execute the selected contraction(s) once for the given tau (dense
  /// VVOO); the result is the dense sum of the selected contributions.
  LadderRunResult run(const std::vector<double>& tau,
                      const LadderRunOptions& opts);

  /// Adapt to the CCSD LadderKernel interface: use contraction kT2_7 for
  /// CcsdOptions::ladder, kHhLadder for ::hh_ladder, kFused for
  /// ::combined_ladders.
  LadderKernel make_kernel(LadderRunOptions opts);

  /// Template-cache counters of this ladder's kPtg runs (hits grow once
  /// per iteration after the first when reuse_runtime is on).
  tce::TemplateCache::Stats template_cache_stats() const {
    return tpl_cache_.stats();
  }
  /// The persistent session behind `opts` (created on first use); exposed
  /// so tests can read per-rank reset reports. kPtg/reuse_runtime only.
  tce::PtgSession& session_for(const LadderRunOptions& opts);

 private:
  tce::StoreList stores_for(Contraction c) const;
  static const char* subroutine_name(Contraction c);

  const SpinOrbitalSystem* sys_;
  std::unique_ptr<vc::Cluster> cluster_;
  std::unique_ptr<tce::TileSpace> space_;
  std::unique_ptr<tce::BlockTensor4> v_shape_, t_shape_, r_shape_, w_shape_;
  std::unique_ptr<ga::GlobalArray> v_ga_, t_ga_, r_ga_, w_ga_;
  tce::ChainPlan pp_plan_, hh_plan_, fused_plan_;

  // Declared after the cluster/tensors: sessions reference both and must
  // be destroyed first (members are destroyed in reverse order).
  tce::TemplateCache tpl_cache_;
  std::mutex session_mu_;
  std::map<std::string, std::unique_ptr<tce::PtgSession>> sessions_;
};

/// Reconstruct the dense antisymmetric VVOO tensor from the canonical
/// blocks stored by the guarded-sort scheme (dividing out the 2^d factor on
/// blocks with coinciding tile pairs). Exposed for tests.
std::vector<double> reconstruct_dense_residual(const tce::TileSpace& space,
                                               const tce::BlockTensor4& r_shape,
                                               const ga::GlobalArray& r_ga);

}  // namespace mp::cc
