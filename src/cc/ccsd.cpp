#include "cc/ccsd.h"

#include <cmath>
#include <deque>

#include "linalg/matrix.h"
#include "linalg/solve.h"
#include "support/error.h"
#include "support/log.h"

namespace mp::cc {
namespace {

/// Index helpers over the dense layouts. O = occupied, V = virtual counts.
struct Idx {
  int O, V;
  size_t t1(int a, int i) const {
    return static_cast<size_t>(a) * O + static_cast<size_t>(i);
  }
  size_t t2(int a, int b, int i, int j) const {
    return ((static_cast<size_t>(a) * V + b) * O + i) * O + j;
  }
  size_t oo(int m, int i) const { return static_cast<size_t>(m) * O + i; }
  size_t vv(int a, int e) const { return static_cast<size_t>(a) * V + e; }
  size_t ov(int m, int e) const { return static_cast<size_t>(m) * V + e; }
  size_t oooo(int m, int n, int i, int j) const {
    return ((static_cast<size_t>(m) * O + n) * O + i) * O + j;
  }
  size_t ovvo(int m, int b, int e, int j) const {
    return ((static_cast<size_t>(m) * V + b) * V + e) * O + j;
  }
};

struct Work {
  const SpinOrbitalSystem* sys;
  Idx ix;
  int O, V;

  // Global orbital index of virtual a / occupied i.
  int vo(int a) const { return O + a; }

  double f_occ(int i) const { return sys->f(i); }
  double f_virt(int a) const { return sys->f(O + a); }

  double v_oovv(int m, int n, int e, int f) const {
    return sys->v(m, n, vo(e), vo(f));
  }
};

double amplitude_rms(const std::vector<double>& a,
                     const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

double correlation_energy(const Work& w, const std::vector<double>& t1,
                          const std::vector<double>& t2) {
  const int O = w.O, V = w.V;
  double e = 0.0;
  for (int i = 0; i < O; ++i)
    for (int j = 0; j < O; ++j)
      for (int a = 0; a < V; ++a)
        for (int b = 0; b < V; ++b) {
          const double vij = w.sys->v(i, j, w.vo(a), w.vo(b));
          e += 0.25 * vij * t2[w.ix.t2(a, b, i, j)] +
               0.5 * vij * t1[w.ix.t1(a, i)] * t1[w.ix.t1(b, j)];
        }
  return e;
}

/// Simple DIIS accelerator over the stacked (t1, t2) amplitude vector.
class Diis {
 public:
  explicit Diis(int dim) : dim_(static_cast<size_t>(dim)) {}

  void push(std::vector<double> amps, std::vector<double> error) {
    amps_.push_back(std::move(amps));
    errs_.push_back(std::move(error));
    if (amps_.size() > dim_) {
      amps_.pop_front();
      errs_.pop_front();
    }
  }

  /// Extrapolated amplitudes; falls back to the latest iterate if the DIIS
  /// system is singular or history is too short.
  std::vector<double> extrapolate() const {
    const size_t k = amps_.size();
    if (k < 2) return amps_.back();
    linalg::Matrix B(k + 1, k + 1);
    std::vector<double> rhs(k + 1, 0.0);
    for (size_t p = 0; p < k; ++p) {
      for (size_t q = 0; q < k; ++q) {
        double dot = 0.0;
        for (size_t t = 0; t < errs_[p].size(); ++t) {
          dot += errs_[p][t] * errs_[q][t];
        }
        B(p, q) = dot;
      }
      B(p, k) = B(k, p) = -1.0;
    }
    B(k, k) = 0.0;
    rhs[k] = -1.0;
    std::vector<double> coeff;
    try {
      coeff = linalg::solve_linear(std::move(B), std::move(rhs));
    } catch (const DataError&) {
      return amps_.back();
    }
    std::vector<double> out(amps_.back().size(), 0.0);
    for (size_t p = 0; p < k; ++p) {
      for (size_t t = 0; t < out.size(); ++t) out[t] += coeff[p] * amps_[p][t];
    }
    return out;
  }

 private:
  size_t dim_;
  std::deque<std::vector<double>> amps_;
  std::deque<std::vector<double>> errs_;
};

}  // namespace

void dense_ladder(const SpinOrbitalSystem& sys, const std::vector<double>& tau,
                  std::vector<double>& out) {
  const int O = sys.n_occ(), V = sys.n_virt();
  Idx ix{O, V};
  MP_REQUIRE(tau.size() == static_cast<size_t>(V) * V * O * O,
             "dense_ladder: tau size mismatch");
  MP_REQUIRE(out.size() == tau.size(), "dense_ladder: out size mismatch");
  for (int a = 0; a < V; ++a)
    for (int b = 0; b < V; ++b)
      for (int i = 0; i < O; ++i)
        for (int j = 0; j < O; ++j) {
          double s = 0.0;
          for (int e = 0; e < V; ++e)
            for (int f = 0; f < V; ++f) {
              s += sys.v(O + e, O + f, O + a, O + b) * tau[ix.t2(e, f, i, j)];
            }
          out[ix.t2(a, b, i, j)] += 0.5 * s;
        }
}

void dense_hh_ladder(const SpinOrbitalSystem& sys,
                     const std::vector<double>& tau,
                     std::vector<double>& out) {
  const int O = sys.n_occ(), V = sys.n_virt();
  Idx ix{O, V};
  MP_REQUIRE(tau.size() == static_cast<size_t>(V) * V * O * O,
             "dense_hh_ladder: tau size mismatch");
  MP_REQUIRE(out.size() == tau.size(), "dense_hh_ladder: out size mismatch");
  for (int a = 0; a < V; ++a)
    for (int b = 0; b < V; ++b)
      for (int i = 0; i < O; ++i)
        for (int j = 0; j < O; ++j) {
          double s = 0.0;
          for (int m = 0; m < O; ++m)
            for (int n = 0; n < O; ++n) {
              s += sys.v(m, n, i, j) * tau[ix.t2(a, b, m, n)];
            }
          out[ix.t2(a, b, i, j)] += 0.5 * s;
        }
}

double mp2_energy(const SpinOrbitalSystem& sys) {
  const int O = sys.n_occ(), V = sys.n_virt();
  double e = 0.0;
  for (int i = 0; i < O; ++i)
    for (int j = 0; j < O; ++j)
      for (int a = 0; a < V; ++a)
        for (int b = 0; b < V; ++b) {
          const double vij = sys.v(i, j, O + a, O + b);
          const double d =
              sys.f(i) + sys.f(j) - sys.f(O + a) - sys.f(O + b);
          e += 0.25 * vij * vij / d;
        }
  return e;
}

CcsdResult run_ccsd(const SpinOrbitalSystem& sys, const CcsdOptions& opts) {
  sys.check_integrals();
  const int O = sys.n_occ(), V = sys.n_virt();
  MP_REQUIRE(O >= 1 && V >= 1, "run_ccsd: need occupied and virtual orbitals");
  Work w{&sys, Idx{O, V}, O, V};
  const Idx& ix = w.ix;

  const size_t n1 = static_cast<size_t>(V) * O;
  const size_t n2 = static_cast<size_t>(V) * V * O * O;

  // MP2 initial guess.
  std::vector<double> t1(n1, 0.0), t2(n2, 0.0);
  for (int a = 0; a < V; ++a)
    for (int b = 0; b < V; ++b)
      for (int i = 0; i < O; ++i)
        for (int j = 0; j < O; ++j) {
          const double d = sys.f(i) + sys.f(j) - sys.f(O + a) - sys.f(O + b);
          t2[ix.t2(a, b, i, j)] = sys.v(i, j, O + a, O + b) / d;
        }

  CcsdResult res;
  res.e_mp2 = correlation_energy(w, t1, t2);
  double e_prev = res.e_mp2;

  Diis diis(opts.diis_dim);
  std::vector<double> Fae(static_cast<size_t>(V) * V);
  std::vector<double> Fmi(static_cast<size_t>(O) * O);
  std::vector<double> Fme(static_cast<size_t>(O) * V);
  std::vector<double> Wmnij(static_cast<size_t>(O) * O * O * O);
  std::vector<double> Wmbej(static_cast<size_t>(O) * V * V * O);
  std::vector<double> tau(n2), taut(n2);
  std::vector<double> t1n(n1), t2n(n2), ladder(n2);

  for (int iter = 1; iter <= opts.max_iter; ++iter) {
    // tau and tau-tilde.
    for (int a = 0; a < V; ++a)
      for (int b = 0; b < V; ++b)
        for (int i = 0; i < O; ++i)
          for (int j = 0; j < O; ++j) {
            const double tt = t1[ix.t1(a, i)] * t1[ix.t1(b, j)] -
                              t1[ix.t1(b, i)] * t1[ix.t1(a, j)];
            tau[ix.t2(a, b, i, j)] = t2[ix.t2(a, b, i, j)] + tt;
            taut[ix.t2(a, b, i, j)] = t2[ix.t2(a, b, i, j)] + 0.5 * tt;
          }

    // --- one-particle intermediates (canonical basis: f offdiag = 0) ---
    for (int a = 0; a < V; ++a)
      for (int e = 0; e < V; ++e) {
        double s = 0.0;
        for (int m = 0; m < O; ++m)
          for (int f = 0; f < V; ++f) {
            s += t1[ix.t1(f, m)] * sys.v(m, O + a, O + f, O + e);
          }
        for (int m = 0; m < O; ++m)
          for (int n = 0; n < O; ++n)
            for (int f = 0; f < V; ++f) {
              s -= 0.5 * taut[ix.t2(a, f, m, n)] * w.v_oovv(m, n, e, f);
            }
        Fae[ix.vv(a, e)] = s;
      }

    for (int m = 0; m < O; ++m)
      for (int i = 0; i < O; ++i) {
        double s = 0.0;
        for (int e = 0; e < V; ++e)
          for (int n = 0; n < O; ++n) {
            s += t1[ix.t1(e, n)] * sys.v(m, n, i, O + e);
          }
        for (int n = 0; n < O; ++n)
          for (int e = 0; e < V; ++e)
            for (int f = 0; f < V; ++f) {
              s += 0.5 * taut[ix.t2(e, f, i, n)] * w.v_oovv(m, n, e, f);
            }
        Fmi[ix.oo(m, i)] = s;
      }

    for (int m = 0; m < O; ++m)
      for (int e = 0; e < V; ++e) {
        double s = 0.0;
        for (int n = 0; n < O; ++n)
          for (int f = 0; f < V; ++f) {
            s += t1[ix.t1(f, n)] * w.v_oovv(m, n, e, f);
          }
        Fme[ix.ov(m, e)] = s;
      }

    // --- two-particle intermediates ---
    // Wmnij minus its bare-integral part <mn||ij>: that part is the
    // hole-hole ladder, computed through the (possibly distributed) kernel
    // below just like the particle-particle one.
    for (int m = 0; m < O; ++m)
      for (int n = 0; n < O; ++n)
        for (int i = 0; i < O; ++i)
          for (int j = 0; j < O; ++j) {
            double s = 0.0;
            for (int e = 0; e < V; ++e) {
              s += t1[ix.t1(e, j)] * sys.v(m, n, i, O + e) -
                   t1[ix.t1(e, i)] * sys.v(m, n, j, O + e);
            }
            for (int e = 0; e < V; ++e)
              for (int f = 0; f < V; ++f) {
                s += 0.25 * tau[ix.t2(e, f, i, j)] * w.v_oovv(m, n, e, f);
              }
            Wmnij[ix.oooo(m, n, i, j)] = s;
          }

    for (int m = 0; m < O; ++m)
      for (int b = 0; b < V; ++b)
        for (int e = 0; e < V; ++e)
          for (int j = 0; j < O; ++j) {
            double s = sys.v(m, O + b, O + e, j);
            for (int f = 0; f < V; ++f) {
              s += t1[ix.t1(f, j)] * sys.v(m, O + b, O + e, O + f);
            }
            for (int n = 0; n < O; ++n) {
              s -= t1[ix.t1(b, n)] * sys.v(m, n, O + e, j);
            }
            for (int n = 0; n < O; ++n)
              for (int f = 0; f < V; ++f) {
                s -= (0.5 * t2[ix.t2(f, b, j, n)] +
                      t1[ix.t1(f, j)] * t1[ix.t1(b, n)]) *
                     w.v_oovv(m, n, e, f);
              }
            Wmbej[ix.ovvo(m, b, e, j)] = s;
          }

    // --- T1 equations (skipped in CCD mode: t1 stays zero) ---
    if (opts.ccd_only) {
      std::fill(t1n.begin(), t1n.end(), 0.0);
    } else
    for (int a = 0; a < V; ++a)
      for (int i = 0; i < O; ++i) {
        double s = 0.0;
        for (int e = 0; e < V; ++e) s += t1[ix.t1(e, i)] * Fae[ix.vv(a, e)];
        for (int m = 0; m < O; ++m) s -= t1[ix.t1(a, m)] * Fmi[ix.oo(m, i)];
        for (int m = 0; m < O; ++m)
          for (int e = 0; e < V; ++e) {
            s += t2[ix.t2(a, e, i, m)] * Fme[ix.ov(m, e)];
          }
        for (int n = 0; n < O; ++n)
          for (int f = 0; f < V; ++f) {
            s -= t1[ix.t1(f, n)] * sys.v(n, O + a, i, O + f);
          }
        for (int m = 0; m < O; ++m)
          for (int e = 0; e < V; ++e)
            for (int f = 0; f < V; ++f) {
              s -= 0.5 * t2[ix.t2(e, f, i, m)] *
                   sys.v(m, O + a, O + e, O + f);
            }
        for (int m = 0; m < O; ++m)
          for (int n = 0; n < O; ++n)
            for (int e = 0; e < V; ++e) {
              s -= 0.5 * t2[ix.t2(a, e, m, n)] * sys.v(n, m, O + e, i);
            }
        t1n[ix.t1(a, i)] = s / (sys.f(i) - sys.f(O + a));
      }

    // --- T2 equations ---
    // The two pure-integral ladder terms (pp = icsd_t2_7, hh = Wmnij's
    // bare part) go through the (possibly distributed) kernels; everything
    // else is evaluated densely here.
    std::fill(ladder.begin(), ladder.end(), 0.0);
    if (opts.combined_ladders) {
      opts.combined_ladders(tau, ladder);
    } else {
      if (opts.ladder) {
        opts.ladder(tau, ladder);
      } else {
        dense_ladder(sys, tau, ladder);
      }
      if (opts.hh_ladder) {
        opts.hh_ladder(tau, ladder);
      } else {
        dense_hh_ladder(sys, tau, ladder);
      }
    }

    for (int a = 0; a < V; ++a)
      for (int b = 0; b < V; ++b)
        for (int i = 0; i < O; ++i)
          for (int j = 0; j < O; ++j) {
            double s = sys.v(i, j, O + a, O + b);

            // P(ab) sum_e t2(ae,ij) * [Fae(b,e) - 1/2 sum_m t1(b,m)Fme(m,e)]
            for (int e = 0; e < V; ++e) {
              double xbe = Fae[ix.vv(b, e)];
              double xae = Fae[ix.vv(a, e)];
              for (int m = 0; m < O; ++m) {
                xbe -= 0.5 * t1[ix.t1(b, m)] * Fme[ix.ov(m, e)];
                xae -= 0.5 * t1[ix.t1(a, m)] * Fme[ix.ov(m, e)];
              }
              s += t2[ix.t2(a, e, i, j)] * xbe - t2[ix.t2(b, e, i, j)] * xae;
            }

            // -P(ij) sum_m t2(ab,im) * [Fmi(m,j) + 1/2 sum_e t1(e,j)Fme(m,e)]
            for (int m = 0; m < O; ++m) {
              double ymj = Fmi[ix.oo(m, j)];
              double ymi = Fmi[ix.oo(m, i)];
              for (int e = 0; e < V; ++e) {
                ymj += 0.5 * t1[ix.t1(e, j)] * Fme[ix.ov(m, e)];
                ymi += 0.5 * t1[ix.t1(e, i)] * Fme[ix.ov(m, e)];
              }
              s -= t2[ix.t2(a, b, i, m)] * ymj - t2[ix.t2(a, b, j, m)] * ymi;
            }

            // 1/2 sum_mn tau(ab,mn) Wmnij
            for (int m = 0; m < O; ++m)
              for (int n = 0; n < O; ++n) {
                s += 0.5 * tau[ix.t2(a, b, m, n)] * Wmnij[ix.oooo(m, n, i, j)];
              }

            // 1/2 sum_ef tau(ef,ij) * (Wabef - <ab||ef>): the <ab||ef> part
            // is `ladder`, added below.
            for (int e = 0; e < V; ++e)
              for (int f = 0; f < V; ++f) {
                double wrest = 0.0;
                for (int m = 0; m < O; ++m) {
                  wrest -= t1[ix.t1(b, m)] * sys.v(O + a, m, O + e, O + f) -
                           t1[ix.t1(a, m)] * sys.v(O + b, m, O + e, O + f);
                }
                for (int m = 0; m < O; ++m)
                  for (int n = 0; n < O; ++n) {
                    wrest += 0.25 * tau[ix.t2(a, b, m, n)] *
                             w.v_oovv(m, n, e, f);
                  }
                s += 0.5 * tau[ix.t2(e, f, i, j)] * wrest;
              }

            // P(ij)P(ab) sum_me [ t2(ae,im) Wmbej - t1(e,i)t1(a,m)<mb||ej> ]
            for (int m = 0; m < O; ++m)
              for (int e = 0; e < V; ++e) {
                s += t2[ix.t2(a, e, i, m)] * Wmbej[ix.ovvo(m, b, e, j)] -
                     t1[ix.t1(e, i)] * t1[ix.t1(a, m)] *
                         sys.v(m, O + b, O + e, j);
                s -= t2[ix.t2(b, e, i, m)] * Wmbej[ix.ovvo(m, a, e, j)] -
                     t1[ix.t1(e, i)] * t1[ix.t1(b, m)] *
                         sys.v(m, O + a, O + e, j);
                s -= t2[ix.t2(a, e, j, m)] * Wmbej[ix.ovvo(m, b, e, i)] -
                     t1[ix.t1(e, j)] * t1[ix.t1(a, m)] *
                         sys.v(m, O + b, O + e, i);
                s += t2[ix.t2(b, e, j, m)] * Wmbej[ix.ovvo(m, a, e, i)] -
                     t1[ix.t1(e, j)] * t1[ix.t1(b, m)] *
                         sys.v(m, O + a, O + e, i);
              }

            // P(ij) sum_e t1(e,i) <ab||ej>
            for (int e = 0; e < V; ++e) {
              s += t1[ix.t1(e, i)] * sys.v(O + a, O + b, O + e, j) -
                   t1[ix.t1(e, j)] * sys.v(O + a, O + b, O + e, i);
            }
            // -P(ab) sum_m t1(a,m) <mb||ij>
            for (int m = 0; m < O; ++m) {
              s -= t1[ix.t1(a, m)] * sys.v(m, O + b, i, j) -
                   t1[ix.t1(b, m)] * sys.v(m, O + a, i, j);
            }

            s += ladder[ix.t2(a, b, i, j)];

            const double d =
                sys.f(i) + sys.f(j) - sys.f(O + a) - sys.f(O + b);
            t2n[ix.t2(a, b, i, j)] = s / d;
          }

    // --- convergence & DIIS ---
    const double rms =
        amplitude_rms(t1, t1n) + amplitude_rms(t2, t2n);

    if (opts.use_diis) {
      std::vector<double> amps(n1 + n2), err(n1 + n2);
      for (size_t k = 0; k < n1; ++k) {
        amps[k] = t1n[k];
        err[k] = t1n[k] - t1[k];
      }
      for (size_t k = 0; k < n2; ++k) {
        amps[n1 + k] = t2n[k];
        err[n1 + k] = t2n[k] - t2[k];
      }
      diis.push(std::move(amps), std::move(err));
      const auto ex = diis.extrapolate();
      for (size_t k = 0; k < n1; ++k) t1[k] = ex[k];
      for (size_t k = 0; k < n2; ++k) t2[k] = ex[n1 + k];
    } else {
      t1 = t1n;
      t2 = t2n;
    }

    const double e = correlation_energy(w, t1, t2);
    res.iteration_energies.push_back(e);
    res.iterations = iter;
    if (std::fabs(e - e_prev) < opts.tol && rms < opts.tol * 100) {
      res.converged = true;
      res.e_corr = e;
      break;
    }
    e_prev = e;
    res.e_corr = e;
  }

  res.t1 = std::move(t1);
  res.t2 = std::move(t2);
  return res;
}

}  // namespace mp::cc
