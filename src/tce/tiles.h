// Orbital tile spaces, following NWChem's Tensor Contraction Engine.
//
// The TCE splits the spin-orbital basis into *tiles*: contiguous groups of
// orbitals sharing occupation (occupied/virtual) and spin (alpha/beta)
// labels. Block-sparse tensors are stored per tile-block, and a block
// exists only when the spin labels conserve total spin. Chain lengths in
// the generated GEMM chains vary with how many tile pairs satisfy the spin
// guards — the source of the load imbalance the paper discusses.
//
// (Real TCE also carries point-group spatial symmetry; we reproduce spin
// symmetry only, which already yields the guarded-IF structure. Documented
// as a substitution in DESIGN.md.)
#pragma once

#include <string>
#include <vector>

namespace mp::tce {

enum class Spin : int { kAlpha = 0, kBeta = 1 };

struct Tile {
  int index = 0;     ///< global tile index
  int offset = 0;    ///< first spin-orbital of the tile within its space
  int size = 0;      ///< number of spin-orbitals in the tile
  Spin spin = Spin::kAlpha;
  bool occupied = false;
  int irrep = 0;     ///< point-group irreducible representation label
};

/// Parameters of a tiled spin-orbital space.
struct TileSpaceSpec {
  int n_occ_alpha = 0;
  int n_occ_beta = 0;
  int n_virt_alpha = 0;
  int n_virt_beta = 0;
  int tile_size = 0;  ///< target tile size (last tile of a range may be smaller)
  /// Number of point-group irreps (abelian groups: 1 = C1, 2 = Cs/C2/C2h-
  /// style, 4 = C2v/D2, 8 = D2h). Tiles are assigned irreps cyclically
  /// within each spin/occupation range; blocks must conserve the irrep
  /// product (XOR for abelian groups) in addition to spin.
  int num_irreps = 1;
};

class TileSpace {
 public:
  explicit TileSpace(const TileSpaceSpec& spec);

  const TileSpaceSpec& spec() const { return spec_; }

  /// Occupied tiles (alpha tiles first, then beta), TCE ordering.
  const std::vector<Tile>& occ_tiles() const { return occ_; }
  /// Virtual tiles (alpha first, then beta).
  const std::vector<Tile>& virt_tiles() const { return virt_; }

  int num_occ_tiles() const { return static_cast<int>(occ_.size()); }
  int num_virt_tiles() const { return static_cast<int>(virt_.size()); }

  /// Total spin orbitals.
  int n_occ() const { return spec_.n_occ_alpha + spec_.n_occ_beta; }
  int n_virt() const { return spec_.n_virt_alpha + spec_.n_virt_beta; }

  /// Offset of an occupied/virtual tile within the *dense* occupied/virtual
  /// spin-orbital range (alpha orbitals first, then beta).
  int occ_dense_offset(int tile_idx) const;
  int virt_dense_offset(int tile_idx) const;

  std::string describe() const;

 private:
  TileSpaceSpec spec_;
  std::vector<Tile> occ_;
  std::vector<Tile> virt_;
};

/// Spin conservation guard for a 2-in/2-out tensor block: the generated
/// TCE code only touches blocks where spin is conserved.
inline bool spin_conserving(Spin a, Spin b, Spin c, Spin d) {
  return static_cast<int>(a) + static_cast<int>(b) ==
         static_cast<int>(c) + static_cast<int>(d);
}

/// Spatial (point-group) symmetry guard: the product of the four irreps
/// must contain the totally symmetric representation. For abelian groups
/// the product is the bitwise XOR of the labels.
inline bool irrep_conserving(int a, int b, int c, int d) {
  return ((a ^ b) ^ (c ^ d)) == 0;
}

/// Combined TCE block guard.
inline bool block_allowed(const Tile& a, const Tile& b, const Tile& c,
                          const Tile& d) {
  return spin_conserving(a.spin, b.spin, c.spin, d.spin) &&
         irrep_conserving(a.irrep, b.irrep, c.irrep, d.irrep);
}

}  // namespace mp::tce
