#include "tce/variants.h"

#include "support/error.h"

namespace mp::tce {

std::vector<VariantConfig> VariantConfig::all() {
  return {v1(), v2(), v3(), v4(), v5()};
}

void VariantConfig::validate() const {
  MP_REQUIRE(!name.empty(), "VariantConfig: empty name");
  MP_REQUIRE(!parallel_writes || parallel_sorts,
             "VariantConfig: parallel writes require parallel sorts");
}

}  // namespace mp::tce
