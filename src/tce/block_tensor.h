// Block-sparse 4-index tensors over a TileSpace, stored in a Global Array
// through the TCE hash-block layout.
//
// A block (t0,t1,t2,t3) exists iff
//   * spin is conserved: spin(t0)+spin(t1) == spin(t2)+spin(t3), and
//   * the canonical (triangular) restrictions hold where enabled:
//     t0 <= t1 and/or t2 <= t3 (used for antisymmetric index pairs).
// Elements within a block are laid out row-major over (x0,x1,x2,x3).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ga/global_array.h"
#include "ga/hash_block.h"
#include "tce/tiles.h"

namespace mp::tce {

enum class RangeKind { kOcc, kVirt };

class BlockTensor4 {
 public:
  BlockTensor4(const TileSpace& space, std::array<RangeKind, 4> ranges,
               bool triangular01 = false, bool triangular23 = false);

  const ga::HashBlockIndex& index() const { return index_; }
  const TileSpace& space() const { return *space_; }

  const std::vector<Tile>& tiles(int dim) const;
  int num_tiles(int dim) const { return static_cast<int>(tiles(dim).size()); }

  /// Whether a tile-block exists (spin guard + canonical restriction).
  bool has_block(int t0, int t1, int t2, int t3) const;

  /// Hash key of a block (valid whether or not the block exists).
  static uint64_t key(int t0, int t1, int t2, int t3) {
    return ga::HashBlockIndex::key4(t0, t1, t2, t3);
  }

  /// Dims of a block: sizes of the four tiles.
  std::array<size_t, 4> block_dims(int t0, int t1, int t2, int t3) const;

  /// Elements in a block.
  int64_t block_size(int t0, int t1, int t2, int t3) const;

  /// Total GA elements needed to store this tensor.
  int64_t ga_size() const { return index_.total_size(); }

  /// Dense extents (total spin-orbitals per dimension).
  std::array<int, 4> dense_dims() const;

  /// Dense offset of tile `t` along dimension `dim`.
  int dense_offset(int dim, int t) const;

  /// Write every existing block of `dense` (row-major, dense_dims extents)
  /// into the GA. Non-existing (spin-forbidden / non-canonical) dense
  /// entries are ignored.
  void scatter_dense(const std::vector<double>& dense,
                     ga::GlobalArray& ga) const;

  /// Read all existing blocks from the GA into a dense tensor; entries with
  /// no backing block are zero.
  std::vector<double> gather_dense(const ga::GlobalArray& ga) const;

 private:
  const TileSpace* space_;
  std::array<RangeKind, 4> ranges_;
  bool tri01_;
  bool tri23_;
  ga::HashBlockIndex index_;
};

}  // namespace mp::tce
