#include "tce/ptg_build.h"

#include <memory>
#include <mutex>

#include "ga/hash_block.h"
#include "linalg/gemm.h"
#include "ptg/context.h"
#include "linalg/sort4.h"
#include "support/analysis.h"
#include "support/error.h"

namespace mp::tce {

using ptg::DataBuf;
using ptg::OutRoute;
using ptg::Params;
using ptg::params_of;
using ptg::TaskClass;
using ptg::TaskCtx;
using ptg::TaskKey;

namespace {

/// Binary-heap reduction tree over `len` leaves: internal nodes are
/// 0..len-2, leaf i sits at heap position len-1+i. Every internal node has
/// exactly two children. parent_slot is 0 for odd positions, 1 for even.
struct ReduceTree {
  int len;
  int parent_of(int pos) const { return (pos - 1) / 2; }
  int slot_of(int pos) const { return (pos - 1) % 2; }
  int leaf_pos(int leaf) const { return len - 1 + leaf; }
};

}  // namespace

PtgBuild build_ptg(const ChainPlan& plan, const StoreList& stores,
                   const VariantConfig& var, int nranks) {
  var.validate();
  MP_REQUIRE(nranks >= 1, "build_ptg: need at least one rank");
  MP_REQUIRE(stores.size() >= plan.store_sizes.size(),
             "build_ptg: missing tensor stores");
  for (const TensorStore& ts : stores) {
    MP_REQUIRE(ts.shape && ts.ga, "build_ptg: null storage");
  }

  const int nchains = static_cast<int>(plan.chains.size());
  const PriorityScheme prio{nchains, nranks};

  const ChainPlan* pl = &plan;
  const StoreList* st = &stores;
  auto home = [nranks](int l1) { return l1 % nranks; };

  // Node-level mutexes protecting the WRITE critical region (Section IV-A):
  // one per rank, shared by every WRITE task executing on that rank. The
  // array is indexed by the *executing* rank because one materialized pool
  // may be shared by every rank's Context (the template-cache path): a
  // single mutex would silently widen the paper's per-node critical region
  // into a global one. Indexing by executing rank also keeps an adopted
  // WRITE (rank-failure recovery) serialized with its adopter's own writes.
  auto write_mutexes =
      std::make_shared<std::vector<std::mutex>>(static_cast<size_t>(nranks));

  PtgBuild b;
  ptg::Taskpool& pool = b.pool;
  const auto one_output = [](const Params&) { return 1; };

  // ---- READ_A / READ_B -------------------------------------------------
  auto make_reader = [&](const char* name, bool is_a) {
    TaskClass c;
    c.name = name;
    c.rank_of = [pl, st, is_a](const Params& p) {
      const Chain& ch = pl->chains[static_cast<size_t>(p[0])];
      const GemmOp& g = ch.gemms[static_cast<size_t>(p[1])];
      const TensorStore& ts =
          (*st)[static_cast<size_t>(is_a ? ch.a_store : ch.b_store)];
      return ts.ga->owner_of(is_a ? g.a_offset : g.b_offset);
    };
    c.num_task_inputs = [](const Params&) { return 0; };
    c.num_outputs = one_output;
    c.priority = [prio](const Params& p) { return prio.reader(p[0]); };
    c.enumerate_rank = [pl, st, is_a](int rank) {
      std::vector<Params> out;
      for (const Chain& ch : pl->chains) {
        const TensorStore& ts =
            (*st)[static_cast<size_t>(is_a ? ch.a_store : ch.b_store)];
        for (const GemmOp& g : ch.gemms) {
          const int owner = ts.ga->owner_of(is_a ? g.a_offset : g.b_offset);
          if (owner == rank) out.push_back(params_of(ch.id, g.l2));
        }
      }
      return out;
    };
    c.body = [pl, st, is_a](TaskCtx& t) {
      const Chain& ch = pl->chains[static_cast<size_t>(t.params()[0])];
      const GemmOp& g = ch.gemms[static_cast<size_t>(t.params()[1])];
      const TensorStore& ts =
          (*st)[static_cast<size_t>(is_a ? ch.a_store : ch.b_store)];
      const size_t elems = is_a ? static_cast<size_t>(g.m) * g.k
                                : static_cast<size_t>(g.n) * g.k;
      auto buf = ptg::make_buf_pooled(elems);
      ga::get_hash_block(*ts.ga, ts.shape->index(),
                         is_a ? g.a_key : g.b_key, buf->data());
      t.set_output(0, std::move(buf));
    };
    return c;
  };

  b.ids.read_a = pool.add_class(make_reader("READ_A", true));
  b.ids.read_b = pool.add_class(make_reader("READ_B", false));

  // ---- DFILL (serial-chain variant only) --------------------------------
  if (!var.parallel_gemms) {
    TaskClass c;
    c.name = "DFILL";
    c.rank_of = [home](const Params& p) { return home(p[0]); };
    c.num_task_inputs = [](const Params&) { return 0; };
    c.num_outputs = one_output;
    c.priority = [prio](const Params& p) { return prio.other(p[0]); };
    c.enumerate_rank = [pl, home](int rank) {
      std::vector<Params> out;
      for (const Chain& ch : pl->chains) {
        if (home(ch.id) == rank) out.push_back(params_of(ch.id));
      }
      return out;
    };
    c.body = [pl](TaskCtx& t) {
      const Chain& ch = pl->chains[static_cast<size_t>(t.params()[0])];
      t.set_output(0, ptg::make_buf_pooled(static_cast<size_t>(ch.c_elems())));
    };
    b.ids.dfill = pool.add_class(std::move(c));
  }

  // ---- GEMM --------------------------------------------------------------
  {
    TaskClass c;
    c.name = "GEMM";
    c.rank_of = [home](const Params& p) { return home(p[0]); };
    c.num_task_inputs = [parallel = var.parallel_gemms](const Params&) {
      return parallel ? 2 : 3;  // A, B [, C carried along chain]
    };
    c.num_outputs = one_output;
    c.priority = [prio](const Params& p) { return prio.gemm(p[0]); };
    c.enumerate_rank = [pl, home](int rank) {
      std::vector<Params> out;
      for (const Chain& ch : pl->chains) {
        if (home(ch.id) != rank) continue;
        for (const GemmOp& g : ch.gemms) out.push_back(params_of(ch.id, g.l2));
      }
      return out;
    };
    const bool parallel = var.parallel_gemms;
    c.body = [pl, parallel](TaskCtx& t) {
      const Chain& ch = pl->chains[static_cast<size_t>(t.params()[0])];
      const GemmOp& g = ch.gemms[static_cast<size_t>(t.params()[1])];
      const DataBuf& a = t.input(0);
      const DataBuf& b = t.input(1);
      DataBuf cbuf = parallel
                         ? ptg::make_buf_pooled(static_cast<size_t>(ch.c_elems()))
                         : t.take_input(2);
      linalg::dgemm(g.transa, g.transb, static_cast<size_t>(g.m),
                    static_cast<size_t>(g.n), static_cast<size_t>(g.k),
                    g.alpha, a->data(), static_cast<size_t>(g.lda()),
                    b->data(), static_cast<size_t>(g.ldb()), 1.0,
                    cbuf->data(), static_cast<size_t>(g.m));
      t.set_output(0, std::move(cbuf));
    };
    b.ids.gemm = pool.add_class(std::move(c));
  }
  const int16_t gemm_id = b.ids.gemm;

  // ---- REDUCE (parallel-GEMM variants) -----------------------------------
  if (var.parallel_gemms) {
    TaskClass c;
    c.name = "REDUCE";
    c.rank_of = [home](const Params& p) { return home(p[0]); };
    c.num_task_inputs = [](const Params&) { return 2; };
    c.num_outputs = one_output;
    c.priority = [prio](const Params& p) { return prio.other(p[0]); };
    c.enumerate_rank = [pl, home](int rank) {
      std::vector<Params> out;
      for (const Chain& ch : pl->chains) {
        if (home(ch.id) != rank) continue;
        const int len = static_cast<int>(ch.gemms.size());
        for (int node = 0; node < len - 1; ++node) {
          out.push_back(params_of(ch.id, node));
        }
      }
      return out;
    };
    c.body = [](TaskCtx& t) {
      DataBuf acc = t.take_input(0);
      const DataBuf& other = t.input(1);
      linalg::daxpy(acc->size(), 1.0, other->data(), acc->data());
      t.set_output(0, std::move(acc));
    };
    b.ids.reduce = pool.add_class(std::move(c));
  }
  const int16_t reduce_id = b.ids.reduce;

  // ---- SORT --------------------------------------------------------------
  {
    TaskClass c;
    c.name = var.parallel_sorts ? "SORT_i" : "SORT";
    c.rank_of = [home](const Params& p) { return home(p[0]); };
    c.num_task_inputs = [](const Params&) { return 1; };
    c.num_outputs = one_output;
    c.priority = [prio](const Params& p) { return prio.other(p[0]); };
    const bool psorts = var.parallel_sorts;
    c.enumerate_rank = [pl, home, psorts](int rank) {
      std::vector<Params> out;
      for (const Chain& ch : pl->chains) {
        if (home(ch.id) != rank) continue;
        if (psorts) {
          for (size_t i = 0; i < ch.sorts.size(); ++i) {
            out.push_back(params_of(ch.id, static_cast<int32_t>(i)));
          }
        } else {
          out.push_back(params_of(ch.id));
        }
      }
      return out;
    };
    c.body = [pl, psorts](TaskCtx& t) {
      const Chain& ch = pl->chains[static_cast<size_t>(t.params()[0])];
      const DataBuf& cin = t.input(0);
      auto out = ptg::make_buf_pooled(cin->size());
      if (psorts) {
        const SortOp& so = ch.sorts[static_cast<size_t>(t.params()[1])];
        linalg::sort_4(cin->data(), out->data(), ch.c_dims, so.perm,
                       so.factor);
      } else {
        // One task, all guarded sorts accumulated into a master Csorted
        // (Fig. 5): valid because every fired guard targets the same
        // canonical block.
        for (const SortOp& so : ch.sorts) {
          linalg::sort_4_acc(cin->data(), out->data(), ch.c_dims, so.perm,
                             so.factor);
        }
      }
      t.set_output(0, std::move(out));
    };
    b.ids.sort = pool.add_class(std::move(c));
  }
  const int16_t sort_id = b.ids.sort;

  // ---- WRITE_C -----------------------------------------------------------
  {
    TaskClass c;
    c.name = var.parallel_writes ? "WRITE_C_i" : "WRITE_C";
    // The body serializes through this rank's node-level write mutex and
    // accumulates into locally-owned GA blocks — both are rank-local state
    // the steal agent must not ship to another node.
    c.migratable = false;
    // Placed on the rank that owns the target block in the GA (Fig. 8).
    c.rank_of = [pl, st](const Params& p) {
      const Chain& ch = pl->chains[static_cast<size_t>(p[0])];
      return (*st)[static_cast<size_t>(ch.r_store)].ga->owner_of(
          ch.c_offset);
    };
    const bool pwrites = var.parallel_writes;
    const bool psorts = var.parallel_sorts;
    c.num_task_inputs = [pl, pwrites, psorts](const Params& p) {
      if (pwrites || !psorts) return 1;
      return static_cast<int>(
          pl->chains[static_cast<size_t>(p[0])].sorts.size());
    };
    c.num_outputs = [](const Params&) { return 0; };  // sink
    c.priority = [prio](const Params& p) { return prio.other(p[0]); };
    c.enumerate_rank = [pl, st, pwrites](int rank) {
      std::vector<Params> out;
      for (const Chain& ch : pl->chains) {
        const TensorStore& ts = (*st)[static_cast<size_t>(ch.r_store)];
        if (ts.ga->owner_of(ch.c_offset) != rank) continue;
        if (pwrites) {
          for (size_t i = 0; i < ch.sorts.size(); ++i) {
            out.push_back(params_of(ch.id, static_cast<int32_t>(i)));
          }
        } else {
          out.push_back(params_of(ch.id));
        }
      }
      return out;
    };
    c.body = [pl, st, write_mutexes, pwrites, psorts](TaskCtx& t) {
      const Chain& ch = pl->chains[static_cast<size_t>(t.params()[0])];
      const TensorStore& ts = (*st)[static_cast<size_t>(ch.r_store)];
      // The node-level critical region of Section IV-A: every WRITE on this
      // rank serializes on one mutex, exactly like the pthread mutex in the
      // paper's implementation.
      std::mutex* write_mutex =
          &(*write_mutexes)[static_cast<size_t>(t.runtime().rank())];
      // mp-lint: allow(lock-in-task-body) — the paper's WRITE critical region
      std::lock_guard lock(*write_mutex);
      MP_ANNOTATE_LOCK_ACQUIRED(write_mutex);
      if (pwrites || !psorts) {
        ga::add_hash_block(*ts.ga, ts.shape->index(), ch.c_key,
                           t.input(0)->data());
      } else {
        for (size_t i = 0; i < ch.sorts.size(); ++i) {
          ga::add_hash_block(*ts.ga, ts.shape->index(), ch.c_key,
                             t.input(static_cast<int>(i))->data());
        }
      }
      MP_ANNOTATE_LOCK_RELEASED(write_mutex);
    };
    // Rank-failure recovery (DESIGN.md §10): WRITE_C accumulates into the
    // GA, so a dead rank may have already added some chains' contributions
    // to a block before crashing. All writers of one target block recover
    // as one co-adoption group (keyed by block offset, salted with the
    // store id so fused plans with several R tensors never collide), and
    // on_adopt zeroes the block once before the group is re-executed —
    // full re-execution then accumulates exactly once. Survivors can zero
    // a block the dead rank owned because the virtual-cluster GA is
    // process-shared memory; a real GA would use GA_Put the same way.
    c.recovery_key = [pl](const Params& p) {
      const Chain& ch = pl->chains[static_cast<size_t>(p[0])];
      return (static_cast<int64_t>(ch.r_store) << 48) ^ ch.c_offset;
    };
    c.on_adopt = [pl, st](const Params& p, int /*dead_rank*/) {
      const Chain& ch = pl->chains[static_cast<size_t>(p[0])];
      const TensorStore& ts = (*st)[static_cast<size_t>(ch.r_store)];
      const auto entry = ts.shape->index().find(ch.c_key);
      if (!entry) return;
      std::vector<double> zeros(static_cast<size_t>(entry->size), 0.0);
      ga::put_hash_block(*ts.ga, ts.shape->index(), ch.c_key, zeros.data());
    };
    b.ids.write = pool.add_class(std::move(c));
  }
  const int16_t write_id = b.ids.write;

  // ---- dataflow wiring ----------------------------------------------------
  // Route the chain result (from the last GEMM of a serial chain, the
  // reduction root, or the single GEMM of a length-1 chain) into the sort
  // stage.
  auto route_to_sorts = [pl, sort_id, psorts = var.parallel_sorts](
                            int l1, std::vector<OutRoute>& r) {
    const Chain& ch = pl->chains[static_cast<size_t>(l1)];
    if (psorts) {
      for (size_t i = 0; i < ch.sorts.size(); ++i) {
        r.push_back({TaskKey{sort_id, params_of(l1, static_cast<int32_t>(i))},
                     0, 0});
      }
    } else {
      r.push_back({TaskKey{sort_id, params_of(l1)}, 0, 0});
    }
  };

  pool.mutable_cls(b.ids.read_a).route_outputs =
      [gemm_id](const Params& p, std::vector<OutRoute>& r) {
        r.push_back({TaskKey{gemm_id, p}, 0, 0});
      };
  pool.mutable_cls(b.ids.read_b).route_outputs =
      [gemm_id](const Params& p, std::vector<OutRoute>& r) {
        r.push_back({TaskKey{gemm_id, p}, 1, 0});
      };

  if (b.ids.dfill >= 0) {
    pool.mutable_cls(b.ids.dfill).route_outputs =
        [gemm_id](const Params& p, std::vector<OutRoute>& r) {
          r.push_back({TaskKey{gemm_id, params_of(p[0], 0)}, 2, 0});
        };
  }

  pool.mutable_cls(gemm_id).route_outputs =
      [pl, gemm_id, reduce_id, route_to_sorts,
       parallel = var.parallel_gemms](const Params& p,
                                      std::vector<OutRoute>& r) {
        const Chain& ch = pl->chains[static_cast<size_t>(p[0])];
        const int len = static_cast<int>(ch.gemms.size());
        if (!parallel) {
          // Serial chain: C flows to the next GEMM, the last one feeds the
          // sort stage (the dataflow of Fig. 1).
          if (p[1] < len - 1) {
            r.push_back({TaskKey{gemm_id, params_of(p[0], p[1] + 1)}, 2, 0});
          } else {
            route_to_sorts(p[0], r);
          }
          return;
        }
        if (len == 1) {
          route_to_sorts(p[0], r);
          return;
        }
        // Parallel GEMMs: partial C goes into the reduction tree (Fig. 2 /
        // Fig. 4).
        const ReduceTree tree{len};
        const int pos = tree.leaf_pos(p[1]);
        r.push_back({TaskKey{reduce_id, params_of(p[0], tree.parent_of(pos))},
                     static_cast<int8_t>(tree.slot_of(pos)), 0});
      };

  if (reduce_id >= 0) {
    pool.mutable_cls(reduce_id).route_outputs =
        [pl, reduce_id, route_to_sorts](const Params& p,
                                        std::vector<OutRoute>& r) {
          const Chain& ch = pl->chains[static_cast<size_t>(p[0])];
          const ReduceTree tree{static_cast<int>(ch.gemms.size())};
          if (p[1] == 0) {
            route_to_sorts(p[0], r);
          } else {
            r.push_back(
                {TaskKey{reduce_id, params_of(p[0], tree.parent_of(p[1]))},
                 static_cast<int8_t>(tree.slot_of(p[1])), 0});
          }
        };
  }

  pool.mutable_cls(sort_id).route_outputs =
      [write_id, pwrites = var.parallel_writes,
       psorts = var.parallel_sorts](const Params& p,
                                    std::vector<OutRoute>& r) {
        if (pwrites) {
          r.push_back({TaskKey{write_id, p}, 0, 0});
        } else if (psorts) {
          r.push_back({TaskKey{write_id, params_of(p[0])},
                       static_cast<int8_t>(p[1]), 0});
        } else {
          r.push_back({TaskKey{write_id, params_of(p[0])}, 0, 0});
        }
      };

  return b;
}

}  // namespace mp::tce
