// Serial reference executor: replays a ChainPlan directly, one chain after
// another, on the calling thread. This is the ground truth every parallel
// executor (original-style and all PTG variants) is validated against.
#pragma once

#include "tce/chain_plan.h"
#include "tce/storage.h"

namespace mp::tce {

/// Execute the plan serially, accumulating into the chains' result stores.
/// Deterministic.
void execute_reference(const ChainPlan& plan, const StoreList& stores);

inline void execute_reference(const ChainPlan& plan, const T2_7Storage& s) {
  execute_reference(plan, s.stores());
}

}  // namespace mp::tce
