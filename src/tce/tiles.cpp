#include "tce/tiles.h"

#include <sstream>

#include "support/error.h"

namespace mp::tce {
namespace {

void add_range(std::vector<Tile>* tiles, int n, Spin spin, bool occupied,
               int tile_size, int num_irreps, int* next_index) {
  int off = 0;
  int irrep = 0;
  while (off < n) {
    Tile t;
    t.index = (*next_index)++;
    t.offset = off;
    t.size = std::min(tile_size, n - off);
    t.spin = spin;
    t.occupied = occupied;
    t.irrep = irrep;
    irrep = (irrep + 1) % num_irreps;
    tiles->push_back(t);
    off += t.size;
  }
}

}  // namespace

TileSpace::TileSpace(const TileSpaceSpec& spec) : spec_(spec) {
  MP_REQUIRE(spec.tile_size >= 1, "TileSpace: tile_size must be >= 1");
  MP_REQUIRE(spec.n_occ_alpha >= 0 && spec.n_occ_beta >= 0 &&
                 spec.n_virt_alpha >= 0 && spec.n_virt_beta >= 0,
             "TileSpace: negative orbital count");
  MP_REQUIRE(spec.num_irreps == 1 || spec.num_irreps == 2 ||
                 spec.num_irreps == 4 || spec.num_irreps == 8,
             "TileSpace: num_irreps must be 1, 2, 4 or 8 (abelian groups)");
  int next = 0;
  add_range(&occ_, spec.n_occ_alpha, Spin::kAlpha, true, spec.tile_size,
            spec.num_irreps, &next);
  add_range(&occ_, spec.n_occ_beta, Spin::kBeta, true, spec.tile_size,
            spec.num_irreps, &next);
  next = 0;
  add_range(&virt_, spec.n_virt_alpha, Spin::kAlpha, false, spec.tile_size,
            spec.num_irreps, &next);
  add_range(&virt_, spec.n_virt_beta, Spin::kBeta, false, spec.tile_size,
            spec.num_irreps, &next);
}

int TileSpace::occ_dense_offset(int tile_idx) const {
  MP_REQUIRE(tile_idx >= 0 && tile_idx < num_occ_tiles(),
             "occ_dense_offset: bad tile");
  const Tile& t = occ_[static_cast<size_t>(tile_idx)];
  return t.spin == Spin::kAlpha ? t.offset : spec_.n_occ_alpha + t.offset;
}

int TileSpace::virt_dense_offset(int tile_idx) const {
  MP_REQUIRE(tile_idx >= 0 && tile_idx < num_virt_tiles(),
             "virt_dense_offset: bad tile");
  const Tile& t = virt_[static_cast<size_t>(tile_idx)];
  return t.spin == Spin::kAlpha ? t.offset : spec_.n_virt_alpha + t.offset;
}

std::string TileSpace::describe() const {
  std::ostringstream os;
  os << "TileSpace{occ " << n_occ() << " orbitals in " << num_occ_tiles()
     << " tiles, virt " << n_virt() << " orbitals in " << num_virt_tiles()
     << " tiles, tile_size " << spec_.tile_size << "}";
  return os.str();
}

}  // namespace mp::tce
