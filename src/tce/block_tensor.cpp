#include "tce/block_tensor.h"

#include "support/error.h"

namespace mp::tce {

BlockTensor4::BlockTensor4(const TileSpace& space,
                           std::array<RangeKind, 4> ranges, bool triangular01,
                           bool triangular23)
    : space_(&space), ranges_(ranges), tri01_(triangular01),
      tri23_(triangular23) {
  // Register every existing block; offsets are assigned in loop order,
  // which mirrors how TCE's offset arrays are laid out.
  for (const Tile& a : tiles(0)) {
    for (const Tile& b : tiles(1)) {
      if (tri01_ && a.index > b.index) continue;
      for (const Tile& c : tiles(2)) {
        for (const Tile& d : tiles(3)) {
          if (tri23_ && c.index > d.index) continue;
          if (!block_allowed(a, b, c, d)) continue;
          index_.add(key(a.index, b.index, c.index, d.index),
                     static_cast<int64_t>(a.size) * b.size * c.size * d.size);
        }
      }
    }
  }
}

const std::vector<Tile>& BlockTensor4::tiles(int dim) const {
  MP_REQUIRE(dim >= 0 && dim < 4, "BlockTensor4: bad dimension");
  return ranges_[static_cast<size_t>(dim)] == RangeKind::kOcc
             ? space_->occ_tiles()
             : space_->virt_tiles();
}

bool BlockTensor4::has_block(int t0, int t1, int t2, int t3) const {
  return index_.find(key(t0, t1, t2, t3)).has_value();
}

std::array<size_t, 4> BlockTensor4::block_dims(int t0, int t1, int t2,
                                               int t3) const {
  const std::array<int, 4> ts{t0, t1, t2, t3};
  std::array<size_t, 4> dims{};
  for (int d = 0; d < 4; ++d) {
    const auto& tl = tiles(d);
    const int t = ts[static_cast<size_t>(d)];
    MP_REQUIRE(t >= 0 && t < static_cast<int>(tl.size()),
               "BlockTensor4: tile index out of range");
    dims[static_cast<size_t>(d)] = static_cast<size_t>(tl[static_cast<size_t>(t)].size);
  }
  return dims;
}

int64_t BlockTensor4::block_size(int t0, int t1, int t2, int t3) const {
  const auto d = block_dims(t0, t1, t2, t3);
  return static_cast<int64_t>(d[0] * d[1] * d[2] * d[3]);
}

std::array<int, 4> BlockTensor4::dense_dims() const {
  std::array<int, 4> out{};
  for (int d = 0; d < 4; ++d) {
    out[static_cast<size_t>(d)] =
        ranges_[static_cast<size_t>(d)] == RangeKind::kOcc ? space_->n_occ()
                                                           : space_->n_virt();
  }
  return out;
}

int BlockTensor4::dense_offset(int dim, int t) const {
  return ranges_[static_cast<size_t>(dim)] == RangeKind::kOcc
             ? space_->occ_dense_offset(t)
             : space_->virt_dense_offset(t);
}

void BlockTensor4::scatter_dense(const std::vector<double>& dense,
                                 ga::GlobalArray& ga) const {
  const auto nd = dense_dims();
  MP_REQUIRE(dense.size() == static_cast<size_t>(nd[0]) * nd[1] * nd[2] * nd[3],
             "scatter_dense: dense size mismatch");
  std::vector<double> buf;
  for (const uint64_t k : index_.keys()) {
    const int t0 = static_cast<int>((k >> 48) & 0xFFFF);
    const int t1 = static_cast<int>((k >> 32) & 0xFFFF);
    const int t2 = static_cast<int>((k >> 16) & 0xFFFF);
    const int t3 = static_cast<int>(k & 0xFFFF);
    const auto bd = block_dims(t0, t1, t2, t3);
    const int o0 = dense_offset(0, t0), o1 = dense_offset(1, t1),
              o2 = dense_offset(2, t2), o3 = dense_offset(3, t3);
    buf.resize(bd[0] * bd[1] * bd[2] * bd[3]);
    size_t at = 0;
    for (size_t x0 = 0; x0 < bd[0]; ++x0)
      for (size_t x1 = 0; x1 < bd[1]; ++x1)
        for (size_t x2 = 0; x2 < bd[2]; ++x2)
          for (size_t x3 = 0; x3 < bd[3]; ++x3) {
            const size_t di =
                (((o0 + x0) * static_cast<size_t>(nd[1]) + (o1 + x1)) *
                     static_cast<size_t>(nd[2]) +
                 (o2 + x2)) *
                    static_cast<size_t>(nd[3]) +
                (o3 + x3);
            buf[at++] = dense[di];
          }
    ga::put_hash_block(ga, index_, k, buf.data());
  }
}

std::vector<double> BlockTensor4::gather_dense(
    const ga::GlobalArray& ga) const {
  const auto nd = dense_dims();
  std::vector<double> dense(
      static_cast<size_t>(nd[0]) * nd[1] * nd[2] * nd[3], 0.0);
  std::vector<double> buf;
  for (const uint64_t k : index_.keys()) {
    const int t0 = static_cast<int>((k >> 48) & 0xFFFF);
    const int t1 = static_cast<int>((k >> 32) & 0xFFFF);
    const int t2 = static_cast<int>((k >> 16) & 0xFFFF);
    const int t3 = static_cast<int>(k & 0xFFFF);
    const auto bd = block_dims(t0, t1, t2, t3);
    const int o0 = dense_offset(0, t0), o1 = dense_offset(1, t1),
              o2 = dense_offset(2, t2), o3 = dense_offset(3, t3);
    buf.resize(bd[0] * bd[1] * bd[2] * bd[3]);
    ga::get_hash_block(ga, index_, k, buf.data());
    size_t at = 0;
    for (size_t x0 = 0; x0 < bd[0]; ++x0)
      for (size_t x1 = 0; x1 < bd[1]; ++x1)
        for (size_t x2 = 0; x2 < bd[2]; ++x2)
          for (size_t x3 = 0; x3 < bd[3]; ++x3) {
            const size_t di =
                (((o0 + x0) * static_cast<size_t>(nd[1]) + (o1 + x1)) *
                     static_cast<size_t>(nd[2]) +
                 (o2 + x2)) *
                    static_cast<size_t>(nd[3]) +
                (o3 + x3);
            dense[di] = buf[at++];
          }
  }
  return dense;
}

}  // namespace mp::tce
