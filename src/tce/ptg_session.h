// Persistent submission API over a cached PTG template (DESIGN.md §11),
// in the spirit of TaskTorrent's lightweight resubmission model: one
// PtgSession owns a persistent ptg::Context per rank — worker and comm
// threads spin up once and park between runs — plus one long-lived driver
// thread per rank standing in for the SPMD region that vc::Cluster::run
// would otherwise re-create per call.
//
// submit() is the steady-state fast path of the CCSD iteration: re-bind the
// template's store pointers (usually a no-op — same GAs, new contents),
// wake the parked drivers, and collect per-rank results. No inspection, no
// graph build, no verification, no thread creation.
//
// Failure semantics: a crash-injected rank's Context drops out of the
// cluster barrier permanently (std::barrier), so its driver parks forever
// and later submissions run on the survivors; submit() keeps returning a
// result with killed=true for that rank. A submission that raises (task
// error, watchdog, failed verification) unwinds collectively inside the
// runtime — all live ranks synchronize before rethrowing — so the session
// remains usable for the next submit().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "tce/ptg_exec.h"
#include "tce/template_cache.h"

namespace mp::tce {

class PtgSession {
 public:
  /// Builds one persistent Context per rank over the template's pool and
  /// parks a driver thread for each. `opts.variant` must be the template's
  /// variant; stealing/failure-detection options apply to every submission.
  PtgSession(vc::Cluster& cluster, std::shared_ptr<PtgTemplate> tpl,
             const PtgExecOptions& opts);
  ~PtgSession();

  PtgSession(const PtgSession&) = delete;
  PtgSession& operator=(const PtgSession&) = delete;

  /// One collective submission: re-bind the template to `stores`, run the
  /// graph on every live rank, and return the per-rank results (indexed by
  /// rank; a dead rank's entry has killed=true). Blocks until all live
  /// ranks finish; rethrows the first error any rank raised (after every
  /// rank has unwound, so the session stays consistent). The returned
  /// reference is valid until the next submit().
  const std::vector<PtgExecResult>& submit(const StoreList& stores);

  uint64_t submissions() const { return submissions_; }
  const PtgTemplate& tpl() const { return *tpl_; }
  int nranks() const { return cluster_.nranks(); }
  /// Rank r's persistent runtime — tests read last_reset_report() here.
  const ptg::Context& context(int r) const { return *ctxs_[static_cast<size_t>(r)]; }
  bool rank_killed(int r) const;

 private:
  void driver_main(int r);

  vc::Cluster& cluster_;
  std::shared_ptr<PtgTemplate> tpl_;
  PtgExecOptions opts_;
  /// Stable per-rank handles; RankCtx must outlive its Context.
  std::vector<std::unique_ptr<vc::RankCtx>> rctxs_;
  std::vector<std::unique_ptr<ptg::Context>> ctxs_;

  /// mu_ guards the submit handshake and everything below it.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t epoch_ = 0;
  int done_count_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
  std::vector<PtgExecResult> results_;
  std::vector<uint8_t> dead_;
  uint64_t submissions_ = 0;

  std::vector<std::thread> drivers_;
};

}  // namespace mp::tce
