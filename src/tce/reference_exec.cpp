#include "tce/reference_exec.h"

#include <vector>

#include "ga/hash_block.h"
#include "linalg/gemm.h"
#include "linalg/sort4.h"
#include "support/error.h"

namespace mp::tce {

void execute_reference(const ChainPlan& plan, const StoreList& stores) {
  MP_REQUIRE(stores.size() >= plan.store_sizes.size(),
             "execute_reference: missing tensor stores");
  std::vector<double> a, b, c, sorted;

  for (const Chain& chain : plan.chains) {
    const TensorStore& sa = stores[static_cast<size_t>(chain.a_store)];
    const TensorStore& sb = stores[static_cast<size_t>(chain.b_store)];
    const TensorStore& sr = stores[static_cast<size_t>(chain.r_store)];

    c.assign(static_cast<size_t>(chain.c_elems()), 0.0);  // DFILL
    for (const GemmOp& g : chain.gemms) {
      a.resize(static_cast<size_t>(g.m) * g.k);
      b.resize(static_cast<size_t>(g.n) * g.k);
      ga::get_hash_block(*sa.ga, sa.shape->index(), g.a_key, a.data());
      ga::get_hash_block(*sb.ga, sb.shape->index(), g.b_key, b.data());
      linalg::dgemm(g.transa, g.transb, static_cast<size_t>(g.m),
                    static_cast<size_t>(g.n), static_cast<size_t>(g.k),
                    g.alpha, a.data(), static_cast<size_t>(g.lda()), b.data(),
                    static_cast<size_t>(g.ldb()), 1.0, c.data(),
                    static_cast<size_t>(g.m));
    }
    sorted.resize(c.size());
    for (const SortOp& so : chain.sorts) {
      linalg::sort_4(c.data(), sorted.data(), chain.c_dims, so.perm,
                     so.factor);
      ga::add_hash_block(*sr.ga, sr.shape->index(), chain.c_key,
                         sorted.data());
    }
  }
}

}  // namespace mp::tce
