// Bundles a tensor's block shape with the Global Array holding its data.
#pragma once

#include <vector>

#include "ga/global_array.h"
#include "tce/block_tensor.h"

namespace mp::tce {

struct TensorStore {
  const BlockTensor4* shape = nullptr;
  ga::GlobalArray* ga = nullptr;
};

/// The tensor stores a plan's chains reference via Chain::{a,b,r}_store.
using StoreList = std::vector<TensorStore>;

/// Convenience adapter for single-contraction plans (store ids 0/1/2 =
/// A operand / B operand / result), e.g. the t2_7 contraction.
struct T2_7Storage {
  TensorStore v;  ///< A operand (VVVV integrals for t2_7)
  TensorStore t;  ///< B operand (VVOO amplitudes)
  TensorStore r;  ///< result (canonical VVOO residual blocks)

  StoreList stores() const { return {v, t, r}; }
};

}  // namespace mp::tce
