// Builds the Parameterized Task Graph for a ChainPlan + variant without
// executing it. Split out of execute_ptg() so the static verifier
// (analysis/tce_verify.h, tools/mp-verify) can materialize and check the
// *exact* taskpool the executor would run — same lambdas, same placement,
// same dataflow — before a single task body fires.
#pragma once

#include <cstdint>

#include "ptg/taskpool.h"
#include "tce/chain_plan.h"
#include "tce/storage.h"
#include "tce/variants.h"

namespace mp::tce {

/// Class ids of the registered task classes; -1 where the variant does not
/// instantiate the class (DFILL only exists for serial chains, REDUCE only
/// for parallel GEMMs).
struct PtgClassIds {
  int16_t read_a = -1;
  int16_t read_b = -1;
  int16_t dfill = -1;
  int16_t gemm = -1;
  int16_t reduce = -1;
  int16_t sort = -1;
  int16_t write = -1;
};

struct PtgBuild {
  ptg::Taskpool pool;
  PtgClassIds ids;
};

/// Construct the PTG for `plan` under `variant` on `nranks` ranks. The
/// returned taskpool's lambdas capture `plan` and `stores` by reference:
/// both must outlive the taskpool (and any Context running it). Prefer
/// PtgTemplate (tce/template_cache.h), which owns both and removes the
/// lifetime hazard — this raw entry point remains for the one-shot
/// executor and the static verifier.
PtgBuild build_ptg(const ChainPlan& plan, const StoreList& stores,
                   const VariantConfig& variant, int nranks);

}  // namespace mp::tce
