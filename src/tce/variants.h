// The five algorithmic variants of Section V of the paper.
//
//  | variant | GEMMs        | SORT     | WRITE    | priorities |
//  |---------|--------------|----------|----------|------------|
//  | v1      | serial chain | parallel | parallel | yes        |
//  | v2      | parallel     | parallel | single   | no         |
//  | v3      | parallel     | parallel | parallel | yes        |
//  | v4      | parallel     | parallel | single   | yes        |
//  | v5      | parallel     | single   | single   | yes        |
#pragma once

#include <string>
#include <vector>

namespace mp::tce {

struct VariantConfig {
  std::string name;
  bool parallel_gemms = true;   ///< false: serial chain with DFILL (Fig. 1)
  bool parallel_sorts = true;   ///< one SORT_i task per fired guard (Fig. 6)
  bool parallel_writes = false; ///< one WRITE_C_i per SORT_i (Fig. 7)
  bool priorities = true;       ///< decreasing function of chain number

  static VariantConfig v1() { return {"v1", false, true, true, true}; }
  static VariantConfig v2() { return {"v2", true, true, false, false}; }
  static VariantConfig v3() { return {"v3", true, true, true, true}; }
  static VariantConfig v4() { return {"v4", true, true, false, true}; }
  static VariantConfig v5() { return {"v5", true, false, false, true}; }
  static std::vector<VariantConfig> all();

  /// Throws InvalidArgument on inconsistent combinations
  /// (parallel writes require parallel sorts).
  void validate() const;
};

/// The paper's priority expression: max_L1 - L1 + offset * P, with offset
/// +5 for reader tasks, +1 for GEMMs, 0 otherwise (Section IV-C). The +5
/// reader offset creates the 5*P-deep prefetch pipeline.
struct PriorityScheme {
  int max_l1 = 0;  ///< total number of chains
  int nranks = 1;  ///< P

  double reader(int l1) const { return value(l1, 5); }
  double gemm(int l1) const { return value(l1, 1); }
  double other(int l1) const { return value(l1, 0); }

 private:
  double value(int l1, int offset) const {
    return static_cast<double>(max_l1 - l1 + offset * nranks);
  }
};

}  // namespace mp::tce
