#include "tce/chain_plan.h"

#include <algorithm>
#include <sstream>

#include "support/error.h"

namespace mp::tce {

PlanStats ChainPlan::stats() const {
  PlanStats s;
  s.num_chains = chains.size();
  if (chains.empty()) return s;
  s.min_chain_len = chains.front().gemms.size();
  for (const Chain& c : chains) {
    s.num_gemms += c.gemms.size();
    s.num_sorts += c.sorts.size();
    s.min_chain_len = std::min(s.min_chain_len, c.gemms.size());
    s.max_chain_len = std::max(s.max_chain_len, c.gemms.size());
    for (const GemmOp& g : c.gemms) {
      s.total_flops += 2.0 * g.m * g.n * g.k;
      s.read_bytes += 8.0 * (static_cast<double>(g.m) * g.k +
                             static_cast<double>(g.k) * g.n);
    }
    s.write_bytes +=
        8.0 * static_cast<double>(c.c_elems()) * static_cast<double>(c.sorts.size());
  }
  s.mean_chain_len =
      static_cast<double>(s.num_gemms) / static_cast<double>(s.num_chains);
  return s;
}

ChainPlan fuse_plans(const ChainPlan& p1, const ChainPlan& p2,
                     const std::array<int, 3>& map2) {
  ChainPlan out;
  out.store_sizes = p1.store_sizes;
  for (int s = 0; s < 3; ++s) {
    const int dst = map2[static_cast<size_t>(s)];
    MP_REQUIRE(dst >= 0 && dst <= static_cast<int>(out.store_sizes.size()),
               "fuse_plans: store map must extend the store list densely");
    if (dst == static_cast<int>(out.store_sizes.size())) {
      out.store_sizes.push_back(p2.store_sizes[static_cast<size_t>(s)]);
    } else {
      MP_REQUIRE(out.store_sizes[static_cast<size_t>(dst)] ==
                     p2.store_sizes[static_cast<size_t>(s)],
                 "fuse_plans: shared store sizes disagree");
    }
  }

  out.chains = p1.chains;
  for (Chain ch : p2.chains) {
    ch.a_store = static_cast<int8_t>(map2[static_cast<size_t>(ch.a_store)]);
    ch.b_store = static_cast<int8_t>(map2[static_cast<size_t>(ch.b_store)]);
    ch.r_store = static_cast<int8_t>(map2[static_cast<size_t>(ch.r_store)]);
    out.chains.push_back(std::move(ch));
  }
  for (size_t i = 0; i < out.chains.size(); ++i) {
    out.chains[i].id = static_cast<int>(i);
  }
  return out;
}

std::string PlanStats::describe() const {
  std::ostringstream os;
  os << "chains=" << num_chains << " gemms=" << num_gemms
     << " sorts=" << num_sorts << " chain_len[min/mean/max]=" << min_chain_len
     << "/" << mean_chain_len << "/" << max_chain_len
     << " gflops=" << total_flops / 1e9 << " read_MB=" << read_bytes / 1e6
     << " write_MB=" << write_bytes / 1e6;
  return os.str();
}

}  // namespace mp::tce
