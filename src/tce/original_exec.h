// The original NWChem/TCE execution structure (Section III-A):
//   * the unit of work is a whole chain;
//   * global dynamic load balancing: each worker atomically acquires the
//     next chain ticket via the NXTVAL shared counter;
//   * GET_HASH_BLOCK is issued immediately before each GEMM — blocking, so
//     communication is interleaved with but never overlapped by compute
//     (the Fig. 12/13 behaviour);
//   * the guarded SORTs and ADD_HASH_BLOCK accumulates run serially at the
//     end of the chain;
//   * an explicit synchronization (barrier) ends the work level.
//
// Each rank runs `workers_per_rank` threads, modelling the paper's
// "cores per node" for the original code (one MPI rank per core).
#pragma once

#include "ga/global_array.h"
#include "ptg/trace.h"
#include "tce/chain_plan.h"
#include "tce/storage.h"
#include "vc/cluster.h"

namespace mp::tce {

struct OriginalExecOptions {
  int workers_per_rank = 1;
  bool enable_tracing = false;
  /// Simulated NXTVAL round-trip cost in microseconds (0 = free). Lets
  /// real-execution experiments exhibit the counter bottleneck the paper
  /// attributes to GA's global read-modify-write.
  double nxtval_delay_us = 0.0;
};

/// Trace class ids used by the original executor (for gantt glyphs).
enum OriginalTraceClass : int16_t {
  kOrigGet = 0,   // blocking GET_HASH_BLOCK (comm)
  kOrigGemm = 1,
  kOrigSort = 2,
  kOrigAdd = 3,   // ADD_HASH_BLOCK
  kOrigNxtval = 4
};

/// Execute the plan SPMD-style; collective over the cluster. Appends this
/// rank's events to *trace when tracing is enabled.
void execute_original(vc::RankCtx& rctx, const ChainPlan& plan,
                      const StoreList& stores, ga::NxtVal& nxtval,
                      const OriginalExecOptions& opts,
                      ptg::Trace* trace = nullptr);

inline void execute_original(vc::RankCtx& rctx, const ChainPlan& plan,
                             const T2_7Storage& s, ga::NxtVal& nxtval,
                             const OriginalExecOptions& opts,
                             ptg::Trace* trace = nullptr) {
  execute_original(rctx, plan, s.stores(), nxtval, opts, trace);
}

}  // namespace mp::tce
