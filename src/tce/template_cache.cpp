#include "tce/template_cache.h"

#include <cstdlib>

#include "analysis/graph_verify.h"
#include "support/error.h"

namespace mp::tce {

namespace {

uint64_t fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool env_verify_enabled() {
  const char* e = std::getenv("MP_VERIFY");
  return e != nullptr && *e != '\0' && std::string(e) != "0";
}

}  // namespace

uint64_t fingerprint_tile_space(const TileSpaceSpec& spec) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  h = fnv1a(h, static_cast<uint64_t>(spec.n_occ_alpha));
  h = fnv1a(h, static_cast<uint64_t>(spec.n_occ_beta));
  h = fnv1a(h, static_cast<uint64_t>(spec.n_virt_alpha));
  h = fnv1a(h, static_cast<uint64_t>(spec.n_virt_beta));
  h = fnv1a(h, static_cast<uint64_t>(spec.tile_size));
  h = fnv1a(h, static_cast<uint64_t>(spec.num_irreps));
  return h;
}

std::string variant_signature(const VariantConfig& var) {
  std::string sig = var.name;
  sig += ":g";
  sig += var.parallel_gemms ? '1' : '0';
  sig += 's';
  sig += var.parallel_sorts ? '1' : '0';
  sig += 'w';
  sig += var.parallel_writes ? '1' : '0';
  sig += 'p';
  sig += var.priorities ? '1' : '0';
  return sig;
}

size_t TemplateKeyHash::operator()(const TemplateKey& k) const {
  uint64_t h = k.tile_fingerprint;
  h = fnv1a(h, static_cast<uint64_t>(k.nranks));
  h = fnv1a(h, std::hash<std::string>{}(k.subroutine));
  h = fnv1a(h, std::hash<std::string>{}(k.variant));
  return static_cast<size_t>(h);
}

PtgTemplate::PtgTemplate(TemplateKey key, ChainPlan plan,
                         const StoreList& stores, const VariantConfig& variant)
    : key_(std::move(key)),
      plan_(std::make_unique<ChainPlan>(std::move(plan))),
      stores_(std::make_unique<StoreList>(stores)),
      variant_(variant) {
  MP_REQUIRE(key_.nranks >= 1, "PtgTemplate: need at least one rank");
  // The build captures &*plan_ / &*stores_ — the template's own heap
  // storage — which is exactly the lifetime fix for build_ptg's documented
  // capture-by-reference footgun.
  build_ = build_ptg(*plan_, *stores_, variant_, key_.nranks);
}

bool PtgTemplate::rebind(const StoreList& stores) {
  StoreList& bound = *stores_;
  MP_REQUIRE(stores.size() == bound.size(),
             "PtgTemplate::rebind: store count changed (" +
                 std::to_string(stores.size()) + " vs " +
                 std::to_string(bound.size()) +
                 ") — this is a different subroutine, not a re-bind");
  bool changed = false;
  for (size_t i = 0; i < bound.size(); ++i) {
    const TensorStore& next = stores[i];
    TensorStore& cur = bound[i];
    MP_REQUIRE(next.shape && next.ga, "PtgTemplate::rebind: null storage");
    if (next.shape == cur.shape && next.ga == cur.ga) continue;
    // Stale-rebind guard: the graph's placement (rank_of/enumerate_rank)
    // and block addressing were materialized against the original stores.
    // A replacement tensor must be structurally interchangeable — same
    // block shape object semantics and same GA extent (the owner map is a
    // pure function of extent and nranks) — or the cached template would
    // silently compute with the wrong placement. That is a keying bug in
    // the caller, not a data change.
    MP_DCHECK(next.ga->size() == cur.ga->size(),
              "PtgTemplate::rebind: GA extent changed for store " +
                  std::to_string(i) + " (" + std::to_string(next.ga->size()) +
                  " vs " + std::to_string(cur.ga->size()) +
                  ") — stale re-bind, the TemplateKey should differ");
    MP_DCHECK(next.shape->index().num_blocks() == cur.shape->index().num_blocks(),
              "PtgTemplate::rebind: block index changed for store " +
                  std::to_string(i) + " — stale re-bind");
    cur = next;
    changed = true;
  }
  if (changed) rebinds_.fetch_add(1, std::memory_order_relaxed);
  return changed;
}

std::shared_ptr<PtgTemplate> TemplateCache::get_or_build(
    const TemplateKey& key, const ChainPlan& plan, const StoreList& stores,
    const VariantConfig& variant) {
  std::shared_ptr<PtgTemplate> tpl;
  bool built = false;
  {
    std::lock_guard lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      tpl = it->second;
      ++stats_.hits;
    } else {
      tpl = std::make_shared<PtgTemplate>(key, plan, stores, variant);
      map_.emplace(key, tpl);
      ++stats_.misses;
      built = true;
    }
  }
  if (built && env_verify_enabled()) {
    // mp-verify once per template instead of once per submission: the
    // graph is a pure function of the key, so the verified bit is valid
    // for every future hit.
    const auto diags = analysis::verify_graph(tpl->pool(), key.nranks);
    if (!diags.empty()) {
      invalidate(key);
      throw StateError(
          "MP_VERIFY: cached PTG template failed static verification; " +
          analysis::render(diags));
    }
    {
      std::lock_guard lock(mu_);
      ++stats_.verifies_run;
    }
  }
  if (built) {
    tpl->mark_verified();  // verified now, or verification is off
  } else if (tpl->rebind(stores)) {
    std::lock_guard lock(mu_);
    ++stats_.rebinds;
  }
  return tpl;
}

void TemplateCache::invalidate(const TemplateKey& key) {
  std::lock_guard lock(mu_);
  if (map_.erase(key) > 0) ++stats_.invalidations;
}

void TemplateCache::clear() {
  std::lock_guard lock(mu_);
  stats_.invalidations += map_.size();
  map_.clear();
}

size_t TemplateCache::size() const {
  std::lock_guard lock(mu_);
  return map_.size();
}

TemplateCache::Stats TemplateCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace mp::tce
