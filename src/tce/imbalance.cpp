#include "tce/imbalance.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.h"
#include "support/rng.h"

namespace mp::tce {

void ImbalanceSpec::validate() const {
  MP_REQUIRE(nranks >= 1, "ImbalanceSpec: nranks must be >= 1");
  MP_REQUIRE(min_len >= 1, "ImbalanceSpec: min_len must be >= 1");
  MP_REQUIRE(max_len == 0 || max_len >= min_len,
             "ImbalanceSpec: max_len must be 0 (uncapped) or >= min_len");
  MP_REQUIRE(zipf_alpha >= 0.0, "ImbalanceSpec: zipf_alpha must be >= 0");
  MP_REQUIRE(!hot_ranks.empty(), "ImbalanceSpec: hot_ranks must be non-empty");
}

namespace {

/// Rebuild `base` at length `len` by cycling through its own GEMM list,
/// renumbering L2 densely. Every emitted GEMM is a copy of one the chain
/// already performs, so operand keys/offsets/shapes all stay valid.
Chain retarget(const Chain& base, int len) {
  MP_REQUIRE(!base.gemms.empty(), "imbalance: base chain has no GEMMs");
  Chain c = base;
  c.gemms.clear();
  c.gemms.reserve(static_cast<size_t>(len));
  const size_t blen = base.gemms.size();
  for (int j = 0; j < len; ++j) {
    GemmOp g = base.gemms[static_cast<size_t>(j) % blen];
    g.l2 = j;
    c.gemms.push_back(g);
  }
  return c;
}

/// Zipf weight of 1-based position `pos`.
double zipf_w(size_t pos, double alpha) {
  return std::pow(static_cast<double>(pos), -alpha);
}

/// Integer lengths proportional to `weights`, clamped to [min_len,
/// max_len], summing to exactly `total` when the bounds allow it (the
/// residual is walked off one unit at a time, heaviest slots first).
std::vector<int> apportion(const std::vector<double>& weights, int64_t total,
                           int min_len, int max_len) {
  const size_t n = weights.size();
  const double sum_w = std::accumulate(weights.begin(), weights.end(), 0.0);
  const int cap = max_len > 0 ? max_len : std::numeric_limits<int>::max();
  std::vector<int> len(n);
  int64_t have = 0;
  for (size_t i = 0; i < n; ++i) {
    const double share = static_cast<double>(total) * weights[i] / sum_w;
    len[i] = std::clamp(static_cast<int>(std::lround(share)), min_len, cap);
    have += len[i];
  }
  // Heaviest-first index order for the residual walk.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return weights[a] > weights[b];
  });
  while (have != total) {
    bool moved = false;
    for (size_t i : order) {
      if (have < total && len[i] < cap) {
        ++len[i], ++have, moved = true;
      } else if (have > total && len[i] > min_len) {
        --len[i], --have, moved = true;
      }
      if (have == total) break;
    }
    if (!moved) break;  // bounds make `total` unreachable; best effort
  }
  return len;
}

ChainPlan rebuild(const ChainPlan& base, const std::vector<int>& len_of) {
  ChainPlan out;
  out.store_sizes = base.store_sizes;
  out.chains.reserve(base.chains.size());
  for (size_t i = 0; i < base.chains.size(); ++i) {
    out.chains.push_back(retarget(base.chains[i], len_of[i]));
  }
  return out;
}

int64_t total_gemms(const ChainPlan& p) {
  int64_t t = 0;
  for (const Chain& c : p.chains) t += static_cast<int64_t>(c.gemms.size());
  return t;
}

}  // namespace

ChainPlan make_skewed_plan(const ChainPlan& base, const ImbalanceSpec& spec) {
  spec.validate();
  MP_REQUIRE(!base.chains.empty(), "make_skewed_plan: empty base plan");
  const size_t n = base.chains.size();

  // Slot order: every chain homed on a hot residue first (by id), then the
  // rest — so the k-th largest Zipf length lands on the k-th hot slot.
  std::vector<bool> hot(static_cast<size_t>(spec.nranks), false);
  for (int r : spec.hot_ranks) {
    hot[static_cast<size_t>(((r % spec.nranks) + spec.nranks) % spec.nranks)] =
        true;
  }
  std::vector<size_t> slots;
  slots.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (hot[i % static_cast<size_t>(spec.nranks)]) slots.push_back(i);
  }
  for (size_t i = 0; i < n; ++i) {
    if (!hot[i % static_cast<size_t>(spec.nranks)]) slots.push_back(i);
  }

  std::vector<double> w(n);
  for (size_t k = 0; k < n; ++k) w[slots[k]] = zipf_w(k + 1, spec.zipf_alpha);
  return rebuild(base,
                 apportion(w, total_gemms(base), spec.min_len, spec.max_len));
}

ChainPlan make_nested_imbalance_plan(const ChainPlan& base,
                                     const ImbalanceSpec& spec) {
  spec.validate();
  MP_REQUIRE(!base.chains.empty(), "make_nested_imbalance_plan: empty base");
  const size_t n = base.chains.size();
  const auto nr = static_cast<size_t>(spec.nranks);

  // Seeded permutation decides which rank sits where on the outer Zipf
  // curve (different seeds move the hot spot around the cluster).
  std::vector<size_t> rank_pos(nr);
  std::iota(rank_pos.begin(), rank_pos.end(), size_t{0});
  mp::Rng rng(spec.seed);
  for (size_t i = nr; i > 1; --i) {
    std::swap(rank_pos[i - 1], rank_pos[rng.next_below(i)]);
  }

  // Composite weight: outer Zipf over the rank, inner Zipf over the
  // chain's position within its rank — one global apportion then conserves
  // total work while realizing both tiers of the skew.
  std::vector<size_t> pos_in_rank(nr, 0);
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t r = i % nr;
    w[i] = zipf_w(rank_pos[r] + 1, spec.zipf_alpha) *
           zipf_w(++pos_in_rank[r], spec.zipf_alpha);
  }
  return rebuild(base,
                 apportion(w, total_gemms(base), spec.min_len, spec.max_len));
}

std::vector<int64_t> work_per_rank(const ChainPlan& plan, int nranks) {
  std::vector<int64_t> acc(static_cast<size_t>(nranks), 0);
  for (const Chain& c : plan.chains) {
    acc[static_cast<size_t>(c.id % nranks)] +=
        static_cast<int64_t>(c.gemms.size());
  }
  return acc;
}

}  // namespace mp::tce
