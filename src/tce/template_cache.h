// Template-cached PTG materialization (DESIGN.md §11). The CCSD driver
// iterates the *same* contraction dozens of times per calculation with only
// the tensor data changing — block keys, offsets and placement are all
// functions of the tile space, not of the data. A PtgTemplate therefore
// owns the inspected ChainPlan and the materialized PtgBuild once, keyed by
// everything the graph actually depends on (subroutine, tile-space
// fingerprint, variant, nranks), and each subsequent submission only
// re-binds the StoreList base pointers — fixing, as a side effect, the
// build_ptg capture-by-reference lifetime footgun: the template's lambdas
// capture storage the template itself owns.
//
// The mp-verify static verifier runs once per template (at build, when
// MP_VERIFY is set) instead of once per submission; Contexts running a
// cached template skip their own pass via Options::assume_verified.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "tce/chain_plan.h"
#include "tce/ptg_build.h"
#include "tce/storage.h"
#include "tce/tiles.h"
#include "tce/variants.h"

namespace mp::tce {

/// FNV-1a over every field of the spec. Two TileSpaces with equal specs
/// produce identical block indices, offsets and owner maps, so the
/// fingerprint (with the other key fields) fully determines the graph.
uint64_t fingerprint_tile_space(const TileSpaceSpec& spec);

/// The variant's identity for keying: name plus the flag bits, so a
/// hand-built config with a reused name cannot alias a cached template.
std::string variant_signature(const VariantConfig& var);

/// Everything the materialized graph depends on. Submissions whose key
/// matches may share one template; any mismatch is a different template.
struct TemplateKey {
  std::string subroutine;        ///< e.g. "t2_7", "hh_ladder", "fused"
  uint64_t tile_fingerprint = 0; ///< fingerprint_tile_space()
  std::string variant;           ///< variant_signature()
  int nranks = 0;

  bool operator==(const TemplateKey& o) const {
    return nranks == o.nranks && tile_fingerprint == o.tile_fingerprint &&
           subroutine == o.subroutine && variant == o.variant;
  }
};

struct TemplateKeyHash {
  size_t operator()(const TemplateKey& k) const;
};

/// One cached materialization: the ChainPlan and StoreList live on the heap
/// inside the template, and build_ptg's lambdas capture *those*, so the
/// taskpool can never dangle while the template is alive. rebind() points
/// the owned StoreList at a new submission's tensors in place — the pool's
/// captured pointer-to-StoreList stays valid — and debug-asserts that the
/// new stores are structurally interchangeable with the ones the graph was
/// built against (same shapes, same GA extent, hence same placement).
class PtgTemplate {
 public:
  PtgTemplate(TemplateKey key, ChainPlan plan, const StoreList& stores,
              const VariantConfig& variant);

  PtgTemplate(const PtgTemplate&) = delete;
  PtgTemplate& operator=(const PtgTemplate&) = delete;

  const TemplateKey& key() const { return key_; }
  const ChainPlan& plan() const { return *plan_; }
  const VariantConfig& variant() const { return variant_; }
  const ptg::Taskpool& pool() const { return build_.pool; }
  const PtgClassIds& ids() const { return build_.ids; }
  const StoreList& stores() const { return *stores_; }

  /// Point the owned StoreList at this submission's tensors. Must not race
  /// a running Context (the session rebinds before arming any rank).
  /// Already-bound entries are compared first and skipped when unchanged,
  /// so the steady-state CCSD iteration (same GAs, new contents) writes
  /// nothing at all. Returns true when any pointer actually changed.
  bool rebind(const StoreList& stores);

  bool verified() const { return verified_.load(std::memory_order_acquire); }
  void mark_verified() { verified_.store(true, std::memory_order_release); }

  uint64_t rebinds() const {
    return rebinds_.load(std::memory_order_relaxed);
  }

 private:
  TemplateKey key_;
  /// unique_ptr for address stability: the pool's lambdas capture &*plan_
  /// and &*stores_, which must survive moves of the template handle.
  std::unique_ptr<ChainPlan> plan_;
  std::unique_ptr<StoreList> stores_;
  VariantConfig variant_;
  PtgBuild build_;
  std::atomic<bool> verified_{false};
  std::atomic<uint64_t> rebinds_{0};
};

/// Process-wide (or per-driver) cache of PtgTemplates. get_or_build() is
/// thread-safe; the returned shared_ptr keeps a template alive across
/// invalidate()/clear(), so running submissions are never pulled out from
/// under their pool.
class TemplateCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;      ///< templates built (inspection + build paid)
    uint64_t rebinds = 0;     ///< rebind() calls that changed any pointer
    uint64_t verifies_run = 0;///< mp-verify passes executed at build
    uint64_t invalidations = 0;
  };

  /// Return the template for `key`, building (and, when MP_VERIFY is set,
  /// verifying — throws StateError on diagnostics) on first use. On a hit
  /// the plan/variant arguments are ignored; on every call the template is
  /// re-bound to `stores`.
  std::shared_ptr<PtgTemplate> get_or_build(const TemplateKey& key,
                                            const ChainPlan& plan,
                                            const StoreList& stores,
                                            const VariantConfig& variant);

  /// Drop the cached template for `key` (if any); the next get_or_build
  /// re-inspects, re-builds and re-verifies. Live shared_ptrs stay valid.
  void invalidate(const TemplateKey& key);
  void clear();

  size_t size() const;
  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<TemplateKey, std::shared_ptr<PtgTemplate>,
                     TemplateKeyHash>
      map_;
  Stats stats_;
};

}  // namespace mp::tce
