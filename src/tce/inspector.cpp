#include "tce/inspector.h"

#include "support/error.h"

namespace mp::tce {
namespace {

/// Shared outer loop: enumerate canonical output blocks (p3b <= p4b,
/// h1b <= h2b, spin conserving), fill in the chain skeleton, call
/// `emit_gemms(chain, p3, p4, h1, h2)` for the subroutine-specific inner
/// loop, and attach the four guarded sorts.
template <typename EmitGemms>
ChainPlan inspect_common(const TileSpace& space, const BlockTensor4& r,
                         const std::array<int, 4>& guard0_perm,
                         EmitGemms&& emit_gemms) {
  ChainPlan plan;
  const auto& vt = space.virt_tiles();
  const auto& ot = space.occ_tiles();
  int next_chain = 0;

  for (const Tile& p3 : vt) {
    for (const Tile& p4 : vt) {
      if (p3.index > p4.index) continue;  // canonical storage of R
      for (const Tile& h1 : ot) {
        for (const Tile& h2 : ot) {
          if (h1.index > h2.index) continue;
          if (!r.has_block(p3.index, p4.index, h1.index, h2.index)) continue;

          Chain chain;
          chain.out_tiles = {p3.index, p4.index, h1.index, h2.index};
          chain.c_key =
              BlockTensor4::key(p3.index, p4.index, h1.index, h2.index);
          chain.c_offset = r.index().find(chain.c_key)->offset;

          emit_gemms(chain, p3, p4, h1, h2);
          if (chain.gemms.empty()) continue;  // nothing contributes

          // The four IF-guarded SORTs of the generated code. Guard 0
          // always fires for canonical output; the others fire when tile
          // indices coincide — "one, two, or four SORT operations". The
          // permutations are guard0's composed with the (h1,h2) and/or
          // (p3,p4) swap; signs are the antisymmetry factors.
          const auto& g0 = guard0_perm;
          // Find which output axes carry (p3,p4) and (h1,h2): output order
          // is always [p3,p4,h1,h2], so swapping p-axes permutes slots 0,1
          // and swapping h-axes permutes slots 2,3.
          chain.sorts.push_back(SortOp{0, g0, +1.0});
          if (h2.index <= h1.index) {
            chain.sorts.push_back(SortOp{1, {g0[0], g0[1], g0[3], g0[2]},
                                         -1.0});
          }
          if (p4.index <= p3.index) {
            chain.sorts.push_back(SortOp{2, {g0[1], g0[0], g0[2], g0[3]},
                                         -1.0});
          }
          if (p4.index <= p3.index && h2.index <= h1.index) {
            chain.sorts.push_back(SortOp{3, {g0[1], g0[0], g0[3], g0[2]},
                                         +1.0});
          }

          chain.id = next_chain++;
          plan.chains.push_back(std::move(chain));
        }
      }
    }
  }
  return plan;
}

}  // namespace

ChainPlan inspect_t2_7(const TileSpace& space, const T2_7Operands& ops) {
  MP_REQUIRE(ops.v && ops.t && ops.r, "inspect_t2_7: null operand");
  const BlockTensor4& v = *ops.v;
  const BlockTensor4& t = *ops.t;
  const auto& vt = space.virt_tiles();

  // Chain C buffer is column-major (p3*p4) x (h1*h2), i.e. row-major
  // [h1, h2, p3, p4]; guard-0 sort remaps it to [p3, p4, h1, h2].
  ChainPlan plan = inspect_common(
      space, *ops.r, {2, 3, 0, 1},
      [&](Chain& chain, const Tile& p3, const Tile& p4, const Tile& h1,
          const Tile& h2) {
        chain.m = p3.size * p4.size;
        chain.n = h1.size * h2.size;
        chain.c_dims = {static_cast<size_t>(h1.size),
                        static_cast<size_t>(h2.size),
                        static_cast<size_t>(p3.size),
                        static_cast<size_t>(p4.size)};
        int l2 = 0;
        for (const Tile& p5 : vt) {
          for (const Tile& p6 : vt) {
            if (!v.has_block(p5.index, p6.index, p3.index, p4.index)) {
              continue;  // spin guard on the v block
            }
            if (!t.has_block(p5.index, p6.index, h1.index, h2.index)) {
              continue;  // spin guard on the t block
            }
            GemmOp g;
            g.l2 = l2++;
            g.a_key =
                BlockTensor4::key(p5.index, p6.index, p3.index, p4.index);
            g.b_key =
                BlockTensor4::key(p5.index, p6.index, h1.index, h2.index);
            g.a_offset = v.index().find(g.a_key)->offset;
            g.b_offset = t.index().find(g.b_key)->offset;
            g.m = chain.m;
            g.n = chain.n;
            g.k = p5.size * p6.size;
            g.alpha = 0.5;  // the 1/2 of the ladder term
            g.transa = 'N';
            g.transb = 'T';
            chain.gemms.push_back(g);
          }
        }
      });
  plan.store_sizes = {v.ga_size(), t.ga_size(), ops.r->ga_size()};
  return plan;
}

ChainPlan inspect_hh_ladder(const TileSpace& space,
                            const HhLadderOperands& ops) {
  MP_REQUIRE(ops.w && ops.t && ops.r, "inspect_hh_ladder: null operand");
  const BlockTensor4& w = *ops.w;
  const BlockTensor4& t = *ops.t;
  const auto& ot = space.occ_tiles();

  // Chain C buffer is column-major (h1*h2) x (p3*p4), i.e. row-major
  // [p3, p4, h1, h2]; guard-0 sort is the identity remap.
  ChainPlan plan = inspect_common(
      space, *ops.r, {0, 1, 2, 3},
      [&](Chain& chain, const Tile& p3, const Tile& p4, const Tile& h1,
          const Tile& h2) {
        chain.m = h1.size * h2.size;
        chain.n = p3.size * p4.size;
        chain.c_dims = {static_cast<size_t>(p3.size),
                        static_cast<size_t>(p4.size),
                        static_cast<size_t>(h1.size),
                        static_cast<size_t>(h2.size)};
        int l2 = 0;
        for (const Tile& h5 : ot) {
          for (const Tile& h6 : ot) {
            if (!w.has_block(h5.index, h6.index, h1.index, h2.index)) {
              continue;
            }
            if (!t.has_block(p3.index, p4.index, h5.index, h6.index)) {
              continue;
            }
            GemmOp g;
            g.l2 = l2++;
            g.a_key =
                BlockTensor4::key(h5.index, h6.index, h1.index, h2.index);
            g.b_key =
                BlockTensor4::key(p3.index, p4.index, h5.index, h6.index);
            g.a_offset = w.index().find(g.a_key)->offset;
            g.b_offset = t.index().find(g.b_key)->offset;
            g.m = chain.m;
            g.n = chain.n;
            g.k = h5.size * h6.size;
            g.alpha = 0.5;
            g.transa = 'N';
            g.transb = 'N';
            chain.gemms.push_back(g);
          }
        }
      });
  plan.store_sizes = {w.ga_size(), t.ga_size(), ops.r->ga_size()};
  return plan;
}

}  // namespace mp::tce
