// The product of the inspection phase: a ChainPlan describing every chain
// of GEMMs the TCE-generated loop nest would execute, with the guarded
// SORT/WRITE operations that terminate each chain.
//
// The same plan object drives all executors — the serial reference, the
// original NWChem-style executor, the PaRSEC-style PTG executor — and the
// discrete-event simulator, guaranteeing they all run the same task graph.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace mp::tce {

/// One GEMM of a chain (position L2 within chain L1).
struct GemmOp {
  int l2 = 0;           ///< position in the chain
  uint64_t a_key = 0;   ///< hash-block key of the A input
  uint64_t b_key = 0;   ///< hash-block key of the B input
  int64_t a_offset = 0; ///< element offset of A's block in its GA
  int64_t b_offset = 0;
  int m = 0;            ///< C is m x n (column-major)
  int n = 0;
  int k = 0;
  double alpha = 1.0;
  char transa = 'N';    ///< BLAS transpose flags of the generated call
  char transb = 'T';

  /// Leading dimensions implied by the flags (column-major storage).
  int lda() const { return (transa == 'T' || transa == 't') ? k : m; }
  int ldb() const { return (transb == 'T' || transb == 't') ? n : k; }
};

/// One guarded SORT (index remap + scale) writing into the target block.
struct SortOp {
  int guard_id = 0;            ///< which of the four IF branches (0..3)
  std::array<int, 4> perm{};   ///< sort_4 permutation
  double factor = 1.0;         ///< antisymmetry sign
};

/// A full chain: DFILL -> GEMM* -> SORT{1,2,4} -> WRITE.
struct Chain {
  int id = 0;                        ///< chain number L1
  std::array<int, 4> out_tiles{};    ///< output tile quadruple, canonical
  uint64_t c_key = 0;                ///< target block key in the R tensor
  int64_t c_offset = 0;              ///< element offset of the target block
  std::array<size_t, 4> c_dims{};    ///< dims of the chain output C buffer
                                     ///< in its row-major 4-index reading
  int m = 0;                         ///< C matrix rows (column-major)
  int n = 0;                         ///< C matrix cols
  /// Which tensor store each operand lives in (index into the executor's
  /// store list / plan.store_sizes). Chains of different subroutines in a
  /// fused plan reference different stores.
  int8_t a_store = 0;
  int8_t b_store = 1;
  int8_t r_store = 2;
  std::vector<GemmOp> gemms;
  std::vector<SortOp> sorts;

  int64_t c_elems() const { return static_cast<int64_t>(m) * n; }
};

struct PlanStats {
  size_t num_chains = 0;
  size_t num_gemms = 0;
  size_t num_sorts = 0;
  size_t min_chain_len = 0;
  size_t max_chain_len = 0;
  double mean_chain_len = 0.0;
  double total_flops = 0.0;       ///< 2*m*n*k summed over GEMMs
  double read_bytes = 0.0;        ///< A+B bytes fetched (once per GEMM)
  double write_bytes = 0.0;       ///< bytes accumulated into the GA
  std::string describe() const;
};

struct ChainPlan {
  std::vector<Chain> chains;
  /// GA element counts per tensor store, indexed by Chain::{a,b,r}_store —
  /// enables owner-mapping without materializing data (the simulator needs
  /// this at paper scale). A single-contraction plan has three stores:
  /// 0 = A operand, 1 = B operand, 2 = result.
  std::vector<int64_t> store_sizes;

  int64_t store_size(int8_t s) const { return store_sizes[static_cast<size_t>(s)]; }

  PlanStats stats() const;
};

/// Fuse two plans into one (the paper's future-work direction: several
/// ported subroutines executing under one runtime context with no
/// synchronization between them). `map2[s]` gives the fused store id of
/// p2's store s; new ids must extend the store list densely, and ids mapped
/// onto existing stores must have matching sizes (shared tensors, e.g. a
/// common result accumulator). Chains are re-numbered densely.
ChainPlan fuse_plans(const ChainPlan& p1, const ChainPlan& p2,
                     const std::array<int, 3>& map2);

}  // namespace mp::tce
