// The PaRSEC-style executor: turns a ChainPlan into a Parameterized Task
// Graph and runs it on the ptg runtime (Section III-B / IV of the paper).
//
// Task classes, by variant configuration:
//   READ_A(L1,L2), READ_B(L1,L2)  — pull input blocks from the GA; placed
//                                   on the rank owning the data, the
//                                   runtime ships the buffer to the GEMM.
//   DFILL(L1)                     — zero-initialize the chain's C buffer
//                                   (serial-chain variant only, Fig. 1).
//   GEMM(L1,L2)                   — serial chain: RW flow of C through the
//                                   chain; parallel: private partial C.
//   REDUCE(L1,node)               — binary reduction tree of partial Cs
//                                   (parallel-GEMM variants, Fig. 4).
//   SORT(L1) / SORT_i(L1,i)       — guarded index remaps (Figs. 5/6).
//   WRITE_C(L1) / WRITE_C_i(L1,i) — accumulate into the GA under the
//                                   node-level mutex (Figs. 5/6/7), placed
//                                   on the rank owning the target block
//                                   (Fig. 8).
//
// Inter-node distribution is static round-robin over chains; intra-node
// scheduling is dynamic (Section IV-D). Priorities follow the paper's
// max_L1 - L1 + offset*P scheme (Section IV-C).
#pragma once

#include <string>
#include <vector>

#include "ga/migration.h"
#include "ptg/context.h"
#include "tce/chain_plan.h"
#include "tce/storage.h"
#include "tce/variants.h"
#include "vc/cluster.h"

namespace mp::tce {

class PtgTemplate;

struct PtgExecOptions {
  VariantConfig variant = VariantConfig::v5();
  int workers_per_rank = 2;
  ptg::SchedPolicy policy = ptg::SchedPolicy::kPriority;
  bool enable_tracing = false;
  /// Inter-node work stealing (DESIGN.md §9): idle ranks pull ready,
  /// migratable tasks from loaded victims. Static placement stays the
  /// common case; stealing only moves work once a rank runs dry.
  bool enable_stealing = false;
  int steal_max_batch = 16;
  /// Optional process-wide ownership-transfer ledger, shared by every
  /// rank's executor so holder_of() answers coherently across the job.
  ga::MigrationLedger* ledger = nullptr;
  /// Rank-failure tolerance (DESIGN.md §10): heartbeat failure detection on
  /// the comm thread plus policy-driven recovery of a dead rank's work.
  /// Off by default — fault-free jobs pay nothing.
  bool enable_failure_detection = false;
  ptg::FailurePolicy on_rank_failure = ptg::FailurePolicy::kAbort;
  int retry_limit = 1;
  double heartbeat_interval_ms = 20.0;
  double suspect_after_ms = 150.0;
  double confirm_after_ms = 300.0;
  /// Never-hang backstop, forwarded to ptg::Options::watchdog_timeout_ms
  /// (0 disables). Persistent sessions rely on it: a submission stalled by
  /// message loss must unwind with a StateError so the session stays
  /// usable for the next submit().
  double watchdog_timeout_ms = 30000.0;
  /// Optional cached materialization (tce/template_cache.h): when set, the
  /// executor runs the template's pool — already re-bound to this
  /// submission's stores by the caller — instead of paying build_ptg, and
  /// skips the per-run MP_VERIFY pass when the template was verified at
  /// build time. The template's key (variant, nranks) must match `variant`
  /// and the cluster. Not owned; must outlive the call.
  const PtgTemplate* tpl = nullptr;
};

struct PtgExecResult {
  ptg::Trace trace;                     ///< this rank's events
  std::vector<std::string> class_names; ///< class id -> name (for rendering)
  uint64_t tasks_executed = 0;          ///< bodies run here (incl. stolen-in)
  uint64_t tasks_completed = 0;         ///< own tasks finished anywhere
  uint64_t expected_tasks = 0;
  uint64_t remote_activations = 0;
  ptg::SchedStats sched;                ///< steal/contention counters
  ptg::StealStats steal;                ///< inter-node migration counters
  ptg::FailureStats failure;            ///< detector / recovery counters
  /// This rank was crash-injected mid-run: the runtime exited silently and
  /// every post-run collective was skipped, so every field above is
  /// meaningless here. Callers must check this before touching the result
  /// (and before issuing any further collectives on this rank).
  bool killed = false;
};

/// Map executor options onto runtime options. Shared by execute_ptg and
/// the persistent PtgSession so both paths configure the runtime the same
/// way (persistent/assume_verified are left at their defaults).
ptg::Options runtime_options(const PtgExecOptions& opts);

/// Extract the per-rank result block from a Context whose run() returned
/// without this rank being killed.
PtgExecResult result_from_context(const ptg::Context& ctx,
                                  const ptg::Taskpool& pool);

/// Execute the plan over the PTG runtime. Collective across ranks. Works
/// for single-contraction plans and fused multi-subroutine plans alike —
/// `stores` must cover every store id the plan's chains reference. With
/// `opts.tpl` set the materialized template pool is reused (no build, no
/// re-verification); `plan` is then ignored.
PtgExecResult execute_ptg(vc::RankCtx& rctx, const ChainPlan& plan,
                          const StoreList& stores,
                          const PtgExecOptions& opts);

inline PtgExecResult execute_ptg(vc::RankCtx& rctx, const ChainPlan& plan,
                                 const T2_7Storage& s,
                                 const PtgExecOptions& opts) {
  return execute_ptg(rctx, plan, s.stores(), opts);
}

}  // namespace mp::tce
