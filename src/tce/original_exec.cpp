#include "tce/original_exec.h"

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "ga/hash_block.h"
#include "linalg/gemm.h"
#include "linalg/sort4.h"
#include "support/aligned_buf.h"
#include "support/error.h"

namespace mp::tce {

using clock_type = std::chrono::steady_clock;

namespace {

double since(const clock_type::time_point& epoch) {
  return std::chrono::duration<double>(clock_type::now() - epoch).count();
}

void process_chain(const Chain& chain, const StoreList& stores,
                   const OriginalExecOptions& opts, int rank, int worker,
                   const clock_type::time_point& epoch, ptg::Trace* trace,
                   std::mutex* trace_mu) {
  auto record = [&](int16_t cls, int l2, double t0, bool comm) {
    if (!trace) return;
    const double t1 = since(epoch);
    std::lock_guard lock(*trace_mu);
    trace->add(ptg::TraceEvent{rank, worker, cls,
                               ptg::params_of(chain.id, l2), t0, t1, comm});
  };

  const TensorStore& sa = stores[static_cast<size_t>(chain.a_store)];
  const TensorStore& sb = stores[static_cast<size_t>(chain.b_store)];
  const TensorStore& sr = stores[static_cast<size_t>(chain.r_store)];

  // Per-worker staging buffers from the thread-local workspace pool: the
  // chain loop reaches a steady state with no per-chain heap traffic.
  auto& ws = support::WorkspacePool::tls();
  const size_t c_elems = static_cast<size_t>(chain.c_elems());
  double* c = ws.get(support::WorkspacePool::kExecC, c_elems);
  linalg::dfill(c_elems, 0.0, c);

  for (const GemmOp& g : chain.gemms) {
    // Blocking GET_HASH_BLOCK immediately before the GEMM: by construction
    // there is no compute to overlap it with (paper Section V, Fig. 13).
    double t0 = opts.enable_tracing ? since(epoch) : 0.0;
    double* a = ws.get(support::WorkspacePool::kExecA,
                       static_cast<size_t>(g.m) * g.k);
    double* b = ws.get(support::WorkspacePool::kExecB,
                       static_cast<size_t>(g.n) * g.k);
    ga::get_hash_block(*sa.ga, sa.shape->index(), g.a_key, a);
    ga::get_hash_block(*sb.ga, sb.shape->index(), g.b_key, b);
    record(kOrigGet, g.l2, t0, true);

    t0 = opts.enable_tracing ? since(epoch) : 0.0;
    linalg::dgemm(g.transa, g.transb, static_cast<size_t>(g.m),
                  static_cast<size_t>(g.n), static_cast<size_t>(g.k), g.alpha,
                  a, static_cast<size_t>(g.lda()), b,
                  static_cast<size_t>(g.ldb()), 1.0, c,
                  static_cast<size_t>(g.m));
    record(kOrigGemm, g.l2, t0, false);
  }

  double* sorted = ws.get(support::WorkspacePool::kExecSorted, c_elems);
  for (const SortOp& so : chain.sorts) {
    double t0 = opts.enable_tracing ? since(epoch) : 0.0;
    linalg::sort_4(c, sorted, chain.c_dims, so.perm, so.factor);
    record(kOrigSort, so.guard_id, t0, false);

    t0 = opts.enable_tracing ? since(epoch) : 0.0;
    ga::add_hash_block(*sr.ga, sr.shape->index(), chain.c_key, sorted);
    record(kOrigAdd, so.guard_id, t0, true);
  }
}

}  // namespace

void execute_original(vc::RankCtx& rctx, const ChainPlan& plan,
                      const StoreList& stores, ga::NxtVal& nxtval,
                      const OriginalExecOptions& opts, ptg::Trace* trace) {
  MP_REQUIRE(opts.workers_per_rank >= 1,
             "execute_original: need >= 1 worker");
  const auto epoch = clock_type::now();
  const long nchains = static_cast<long>(plan.chains.size());
  std::mutex trace_mu;

  auto worker_fn = [&](int worker) {
    for (;;) {
      const double t0 = opts.enable_tracing ? since(epoch) : 0.0;
      const long ticket = nxtval.next();
      if (opts.nxtval_delay_us > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(
            opts.nxtval_delay_us));
      }
      if (trace && opts.enable_tracing) {
        std::lock_guard lock(trace_mu);
        trace->add(ptg::TraceEvent{rctx.rank(), worker, kOrigNxtval,
                                   ptg::params_of(static_cast<int32_t>(ticket)),
                                   t0, since(epoch), true});
      }
      if (ticket >= nchains) return;
      process_chain(plan.chains[static_cast<size_t>(ticket)], stores, opts,
                    rctx.rank(), worker, epoch,
                    opts.enable_tracing ? trace : nullptr, &trace_mu);
    }
  };

  std::vector<std::thread> threads;
  for (int w = 1; w < opts.workers_per_rank; ++w) {
    threads.emplace_back(worker_fn, w);
  }
  worker_fn(0);
  for (auto& th : threads) th.join();

  // The explicit synchronization step between work levels (Section III-A).
  rctx.barrier();
}

}  // namespace mp::tce
