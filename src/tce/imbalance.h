// Imbalanced-workload generators for the work-stealing experiments
// (DESIGN.md §9). Both transform a *base* ChainPlan — typically the t2_7
// inspection product — into a plan with the same chains (same output
// blocks, same operand keys, same stores) but deliberately skewed chain
// lengths, by cycling each chain through its own GEMM list. Because every
// GEMM of the result is a copy of a GEMM the base chain already performed,
// all block keys, offsets and matrix shapes stay valid: the transformed
// plan passes the static verifier and executes against the original tensor
// stores unchanged. Total GEMM count is normalized to the base plan's, so
// throughput comparisons across plans measure *distribution*, not volume.
//
// Placement leverage: the PTG executor homes chain L1 on rank L1 % nranks,
// so skew aligned to id residues translates directly into inter-node load
// imbalance.
//
//   make_skewed_plan      — "skewed-tile": Zipf(alpha) chain lengths with
//                           the heaviest chains clustered on hot_ranks'
//                           residues. A few hot nodes own nearly all the
//                           work; everyone else idles — the best case for
//                           steal-half migration.
//   make_nested_imbalance — two-tier skew: rank work budgets are Zipf over
//                           a seeded rank permutation, and *within* each
//                           rank its chains are Zipf again. No single
//                           steal-half fixes this shape; the steal agent
//                           must keep re-targeting as the residual
//                           imbalance shifts.
#pragma once

#include <cstdint>
#include <vector>

#include "tce/chain_plan.h"

namespace mp::tce {

struct ImbalanceSpec {
  /// Ranks the transformed plan will be executed on (the residue classes
  /// the generator aims at). Must match the run's actual nranks for the
  /// skew to land where intended.
  int nranks = 8;
  /// Residues receiving the heaviest chains (skewed-tile only). Entries
  /// are taken mod nranks.
  std::vector<int> hot_ranks = {0};
  /// Zipf exponent; larger = more extreme skew. 0 degenerates to uniform.
  double zipf_alpha = 1.2;
  /// Floor/cap on transformed chain lengths (cap 0 = uncapped).
  int min_len = 1;
  int max_len = 0;
  /// Seed for the nested generator's rank permutation.
  uint64_t seed = 42;

  void validate() const;
};

/// Skewed-tile workload: Zipf chain lengths, heaviest chains on hot ranks.
ChainPlan make_skewed_plan(const ChainPlan& base, const ImbalanceSpec& spec);

/// Nested imbalance: Zipf budget across ranks, Zipf lengths within a rank.
ChainPlan make_nested_imbalance_plan(const ChainPlan& base,
                                     const ImbalanceSpec& spec);

/// Work (GEMM count) per residue class, i.e. per rank under the executor's
/// L1 % nranks placement — what the generators skew and the steal agent
/// re-balances. Exposed for tests and bench reporting.
std::vector<int64_t> work_per_rank(const ChainPlan& plan, int nranks);

}  // namespace mp::tce
