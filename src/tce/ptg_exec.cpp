#include "tce/ptg_exec.h"

#include "support/error.h"
#include "tce/ptg_build.h"

namespace mp::tce {

PtgExecResult execute_ptg(vc::RankCtx& rctx, const ChainPlan& plan,
                          const StoreList& stores,
                          const PtgExecOptions& opts) {
  // The taskpool is rebuilt per rank from the same symbolic description;
  // every rank therefore evaluates the identical graph (ptg_build.h). The
  // static verifier can check that graph before this call ever runs — see
  // tools/mp-verify and Context::validate_plan().
  PtgBuild build = build_ptg(plan, stores, opts.variant, rctx.nranks());

  ptg::Options ropts;
  ropts.num_workers = opts.workers_per_rank;
  ropts.policy = opts.policy;
  ropts.use_priorities = opts.variant.priorities;
  ropts.enable_tracing = opts.enable_tracing;
  ropts.enable_stealing = opts.enable_stealing;
  ropts.steal_max_batch = opts.steal_max_batch;
  ropts.migration_observer = opts.ledger;
  ropts.enable_failure_detection = opts.enable_failure_detection;
  ropts.on_rank_failure = opts.on_rank_failure;
  ropts.retry_limit = opts.retry_limit;
  ropts.heartbeat_interval_ms = opts.heartbeat_interval_ms;
  ropts.suspect_after_ms = opts.suspect_after_ms;
  ropts.confirm_after_ms = opts.confirm_after_ms;

  ptg::Context ctx(rctx, build.pool, ropts);
  ctx.run();

  PtgExecResult res;
  if (ctx.killed()) {
    // Crash-injected rank: run() already dropped out of the cluster barrier.
    // Report nothing and issue no further collectives from here.
    res.killed = true;
    return res;
  }
  res.trace = ctx.trace();
  res.tasks_executed = ctx.tasks_executed();
  res.tasks_completed = ctx.tasks_completed();
  res.expected_tasks = ctx.expected_tasks();
  res.remote_activations = ctx.remote_activations_sent();
  res.sched = ctx.scheduler_stats();
  res.steal = ctx.steal_stats();
  res.failure = ctx.failure_stats();
  for (size_t i = 0; i < build.pool.num_classes(); ++i) {
    res.class_names.push_back(build.pool.cls(static_cast<int16_t>(i)).name);
  }
  return res;
}

}  // namespace mp::tce
