#include "tce/ptg_exec.h"

#include "support/error.h"
#include "tce/ptg_build.h"
#include "tce/template_cache.h"

namespace mp::tce {

ptg::Options runtime_options(const PtgExecOptions& opts) {
  ptg::Options ropts;
  ropts.num_workers = opts.workers_per_rank;
  ropts.policy = opts.policy;
  ropts.use_priorities = opts.variant.priorities;
  ropts.enable_tracing = opts.enable_tracing;
  ropts.enable_stealing = opts.enable_stealing;
  ropts.steal_max_batch = opts.steal_max_batch;
  ropts.migration_observer = opts.ledger;
  ropts.enable_failure_detection = opts.enable_failure_detection;
  ropts.on_rank_failure = opts.on_rank_failure;
  ropts.retry_limit = opts.retry_limit;
  ropts.heartbeat_interval_ms = opts.heartbeat_interval_ms;
  ropts.suspect_after_ms = opts.suspect_after_ms;
  ropts.confirm_after_ms = opts.confirm_after_ms;
  ropts.watchdog_timeout_ms = opts.watchdog_timeout_ms;
  return ropts;
}

PtgExecResult result_from_context(const ptg::Context& ctx,
                                  const ptg::Taskpool& pool) {
  PtgExecResult res;
  res.trace = ctx.trace();
  res.tasks_executed = ctx.tasks_executed();
  res.tasks_completed = ctx.tasks_completed();
  res.expected_tasks = ctx.expected_tasks();
  res.remote_activations = ctx.remote_activations_sent();
  res.sched = ctx.scheduler_stats();
  res.steal = ctx.steal_stats();
  res.failure = ctx.failure_stats();
  for (size_t i = 0; i < pool.num_classes(); ++i) {
    res.class_names.push_back(pool.cls(static_cast<int16_t>(i)).name);
  }
  return res;
}

PtgExecResult execute_ptg(vc::RankCtx& rctx, const ChainPlan& plan,
                          const StoreList& stores,
                          const PtgExecOptions& opts) {
  ptg::Options ropts = runtime_options(opts);

  // Template-cache fast path: the pool is already materialized (and, when
  // MP_VERIFY was set at build time, already statically verified once for
  // this key) — the per-call build below is skipped entirely. The caller
  // re-bound the template to `stores` before entering the SPMD region.
  if (opts.tpl != nullptr) {
    MP_REQUIRE(opts.tpl->key().nranks == rctx.nranks(),
               "execute_ptg: template/cluster rank-count mismatch");
    ropts.assume_verified = opts.tpl->verified();
    ptg::Context ctx(rctx, opts.tpl->pool(), ropts);
    ctx.run();
    if (ctx.killed()) {
      PtgExecResult res;
      res.killed = true;
      return res;
    }
    return result_from_context(ctx, opts.tpl->pool());
  }

  // The taskpool is rebuilt per rank from the same symbolic description;
  // every rank therefore evaluates the identical graph (ptg_build.h). The
  // static verifier can check that graph before this call ever runs — see
  // tools/mp-verify and Context::validate_plan().
  PtgBuild build = build_ptg(plan, stores, opts.variant, rctx.nranks());

  ptg::Context ctx(rctx, build.pool, ropts);
  ctx.run();

  if (ctx.killed()) {
    // Crash-injected rank: run() already dropped out of the cluster barrier.
    // Report nothing and issue no further collectives from here.
    PtgExecResult res;
    res.killed = true;
    return res;
  }
  return result_from_context(ctx, build.pool);
}

}  // namespace mp::tce
