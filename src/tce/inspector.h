// The inspection phase (Section III.B of the paper).
//
// NWChem's TCE-generated CC subroutines are deep FORTRAN loop nests: DO
// loops over output tile quadruples, IF guards from spin symmetry and
// canonical (triangular) index ordering, an inner loop over contracted
// tile pairs forming a serial chain of GEMMs, and four guarded
// SORT_4/ADD_HASH_BLOCK calls that scatter the chain result back to the
// Global Array.
//
// Our inspectors are the "slice" of that control flow the paper describes:
// they walk the same loops and IF guards but, instead of calling GEMM(),
// record the iteration metadata — which blocks, which sizes, which chain,
// which position in the chain — into a ChainPlan (the paper's meta-data
// arrays). Executors replay the plan; nothing is recomputed.
//
// Two subroutines are provided:
//
//  inspect_t2_7 — the particle-particle ladder (the subroutine the paper
//  ports):
//     R[p3,p4,h1,h2] += 1/2 * sum_{p5,p6} v[p5,p6,p3,p4] * t[p5,p6,h1,h2]
//
//  inspect_hh_ladder — the hole-hole (occupied-occupied) ladder, the
//  pure-integral part of the Wmnij intermediate; the natural next
//  subroutine to port (the paper's "larger part of the application"):
//     R[p3,p4,h1,h2] += 1/2 * sum_{h5,h6} t[p3,p4,h5,h6] * w[h5,h6,h1,h2]
//
// Both store R canonically (p3b <= p4b, h1b <= h2b) with the four guarded
// sorts applying the antisymmetry signs; blocks whose tile pairs coincide
// accumulate 2^d times the raw contraction (d = number of coinciding
// pairs), and consumers divide the factor back out (cc/integration.h).
//
// Plan store ids: 0 = A operand, 1 = B operand, 2 = result.
#pragma once

#include "tce/block_tensor.h"
#include "tce/chain_plan.h"
#include "tce/tiles.h"

namespace mp::tce {

/// Tensor operands of the pp-ladder (t2_7) contraction.
struct T2_7Operands {
  const BlockTensor4* v = nullptr;  ///< VVVV, unrestricted blocks (store 0)
  const BlockTensor4* t = nullptr;  ///< VVOO, unrestricted blocks (store 1)
  const BlockTensor4* r = nullptr;  ///< VVOO, canonical pairs (store 2)
};

/// Tensor operands of the hh-ladder contraction.
struct HhLadderOperands {
  const BlockTensor4* w = nullptr;  ///< OOOO, unrestricted blocks (store 0)
  const BlockTensor4* t = nullptr;  ///< VVOO, unrestricted blocks (store 1)
  const BlockTensor4* r = nullptr;  ///< VVOO, canonical pairs (store 2)
};

ChainPlan inspect_t2_7(const TileSpace& space, const T2_7Operands& ops);
ChainPlan inspect_hh_ladder(const TileSpace& space,
                            const HhLadderOperands& ops);

}  // namespace mp::tce
