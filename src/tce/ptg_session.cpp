#include "tce/ptg_session.h"

#include "support/error.h"

namespace mp::tce {

PtgSession::PtgSession(vc::Cluster& cluster, std::shared_ptr<PtgTemplate> tpl,
                       const PtgExecOptions& opts)
    : cluster_(cluster), tpl_(std::move(tpl)), opts_(opts) {
  MP_REQUIRE(tpl_ != nullptr, "PtgSession: null template");
  MP_REQUIRE(tpl_->key().nranks == cluster_.nranks(),
             "PtgSession: template was built for " +
                 std::to_string(tpl_->key().nranks) + " ranks, cluster has " +
                 std::to_string(cluster_.nranks()));
  MP_REQUIRE(variant_signature(opts_.variant) == tpl_->key().variant,
             "PtgSession: options variant does not match the template's");

  ptg::Options ropts = runtime_options(opts_);
  ropts.persistent = true;
  // mp-verify already ran (or was off) when the template was built; the
  // runtime must not repeat it per Context, let alone per submission.
  ropts.assume_verified = tpl_->verified();

  const int n = cluster_.nranks();
  results_.resize(static_cast<size_t>(n));
  dead_.assign(static_cast<size_t>(n), 0);
  rctxs_.reserve(static_cast<size_t>(n));
  ctxs_.reserve(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    rctxs_.push_back(std::make_unique<vc::RankCtx>(&cluster_, r));
    ctxs_.push_back(
        std::make_unique<ptg::Context>(*rctxs_.back(), tpl_->pool(), ropts));
  }
  drivers_.reserve(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    drivers_.emplace_back([this, r] { driver_main(r); });
  }
}

PtgSession::~PtgSession() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : drivers_) {
    if (t.joinable()) t.join();
  }
  // Contexts (and their persistent worker/comm threads) are torn down by
  // the unique_ptrs after every driver has left run().
}

bool PtgSession::rank_killed(int r) const {
  std::lock_guard lock(mu_);
  return dead_[static_cast<size_t>(r)] != 0;
}

void PtgSession::driver_main(int r) {
  uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] { return shutdown_ || epoch_ > seen; });
      if (shutdown_) return;
      seen = epoch_;
    }
    PtgExecResult res;
    bool is_dead;
    {
      std::lock_guard lock(mu_);
      is_dead = dead_[static_cast<size_t>(r)] != 0;
    }
    if (is_dead) {
      // This rank's Context dropped out of the cluster barrier when it was
      // crash-injected; it can never rejoin a collective. Report killed.
      res.killed = true;
    } else {
      ptg::Context& ctx = *ctxs_[static_cast<size_t>(r)];
      try {
        ctx.run();
        if (ctx.killed()) {
          res.killed = true;
          std::lock_guard lock(mu_);
          dead_[static_cast<size_t>(r)] = 1;
        } else {
          res = result_from_context(ctx, tpl_->pool());
        }
      } catch (...) {
        std::lock_guard lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      // Steady-state fast path: after a clean run on an undisturbed
      // fabric the between-runs reset needs no collectives, so do it now
      // (results are already extracted) instead of paying the collective
      // quiesce-and-drain at the start of the next submission. submit()'s
      // all-ranks rendezvous below orders it before the next epoch. A
      // no-op whenever the preconditions don't hold (error, kill, faults,
      // stealing, failure detection).
      ctx.try_reset_in_band();
    }
    {
      std::lock_guard lock(mu_);
      results_[static_cast<size_t>(r)] = std::move(res);
      ++done_count_;
    }
    cv_.notify_all();
  }
}

const std::vector<PtgExecResult>& PtgSession::submit(const StoreList& stores) {
  // Re-bind on the caller's thread, strictly before any driver wakes: the
  // drivers' Contexts read the template's StoreList concurrently once armed.
  tpl_->rebind(stores);
  {
    std::lock_guard lock(mu_);
    MP_REQUIRE(!shutdown_, "PtgSession::submit after shutdown");
    MP_REQUIRE(epoch_ == 0 || done_count_ == cluster_.nranks(),
               "PtgSession::submit: previous submission still in flight");
    first_error_ = nullptr;
    done_count_ = 0;
    ++epoch_;
  }
  cv_.notify_all();
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return done_count_ == cluster_.nranks(); });
  ++submissions_;
  if (first_error_) std::rethrow_exception(first_error_);
  return results_;
}

}  // namespace mp::tce
