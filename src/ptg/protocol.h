// Pure, shared decision rules of the distributed runtime protocols.
//
// The comm thread (src/ptg/context.cpp) and the mp-explore protocol model
// (src/analysis/explore_model.cpp) must make the *same* decisions — which
// rank a key re-homes to after a death, which messages count as watchdog
// progress — or the model checker would verify a protocol the runtime does
// not run. Every rule here is a free function of its inputs with no runtime
// state, so both sides call the one definition.
#pragma once

#include <cstdint>

namespace mp::ptg {

/// Wire tags of every message the runtime exchanges over the fabric.
/// Context exposes them as kTag* aliases; switches over a message tag in
/// src/ptg / src/vc must handle every enumerator or carry a default that
/// raises (tools/lint.py: wire-tag-exhaustiveness) — a silently dropped
/// tag is the PR 6 livelock class.
enum WireTag : int {
  /// Remote activation: a producer deposits into a consumer's input slot.
  kWireActivate = 101,
  /// A rank failed; everyone must unwind (payload: reason).
  kWireAbort = 102,
  /// Idle rank asks a victim for work (payload: thief load hint).
  kWireStealRequest = 103,
  /// Victim's answer, possibly carrying migrated tasks.
  kWireStealReply = 104,
  /// A migrated task retired at its holder; credit its home rank.
  kWireCredit = 105,
  /// A rank reports local completion to the coordinator (rank 0).
  kWireLocalDone = 106,
  /// Coordinator broadcast: the whole job is done.
  kWireJobDone = 107,
  /// Failure-detector beat / probe / probe answer.
  kWireHeartbeat = 108,
};

namespace protocol {

/// The watchdog progress rule (DESIGN.md §9, the PR 6 livelock fix): only
/// messages that MOVE WORK may reset the progress watchdog. Activations
/// and credits always do; a steal request/reply only when tasks actually
/// shipped (`moved_tasks`); a LOCAL_DONE only on the first report from its
/// rank (`fresh_report`) — periodic resends must not keep a stalled job
/// alive. Heartbeat, abort and job-done chatter never count: the idle
/// steal/heartbeat traffic of a job stalled on a lost activation would
/// otherwise reset the deadline forever and the loss would hang the run
/// instead of tripping the watchdog. mp-explore uses this same predicate
/// as its livelock oracle (MPS006).
inline bool work_moving(int tag, bool moved_tasks, bool fresh_report) {
  switch (tag) {
    case kWireActivate:
    case kWireCredit:
      return true;
    case kWireStealRequest:
    case kWireStealReply:
      return moved_tasks;
    case kWireLocalDone:
      return fresh_report;
    case kWireAbort:
    case kWireJobDone:
    case kWireHeartbeat:
      return false;
    default:
      return false;  // unknown tags are dropped with a warning, not progress
  }
}

/// kRetry re-home: the next live rank after `home` in ring order. Keeps the
/// original distribution for everything except the dead rank's keys.
inline int retry_standin(int home, uint64_t dead_mask, int nranks) {
  for (int i = 1; i < nranks; ++i) {
    const int cand = (home + i) % nranks;
    if (((dead_mask >> cand) & 1ULL) == 0) return cand;
  }
  return home;
}

/// FNV-1a fold of (class, recovery-group id). kDegrade hashes the *group*,
/// not the individual key — the co-adoption invariant (taskpool.h): every
/// lost instance of one group must land on the same adopter, or each
/// adopter runs the group's on_adopt reset independently and a late reset
/// wipes another adopter's already re-executed contributions.
inline uint64_t recovery_group_hash(int16_t cls, int64_t group) {
  uint64_t g = 1469598103934665603ULL;
  g ^= static_cast<uint64_t>(static_cast<uint16_t>(cls));
  g *= 1099511628211ULL;
  g ^= static_cast<uint64_t>(group);
  g *= 1099511628211ULL;
  return g;
}

/// kDegrade re-home: rebuild the distribution over the surviving
/// communicator by indexing the ordered survivor list with `hash` (a
/// recovery_group_hash, or a plain key hash for group-less classes).
/// Deterministic in (hash, dead set) only. Returns -1 when nobody
/// survives.
inline int degrade_standin(uint64_t hash, uint64_t dead_mask, int nranks) {
  int survivors[64];
  int ns = 0;
  for (int r = 0; r < nranks; ++r) {
    if (((dead_mask >> r) & 1ULL) == 0) survivors[ns++] = r;
  }
  if (ns == 0) return -1;
  return survivors[hash % static_cast<uint64_t>(ns)];
}

}  // namespace protocol
}  // namespace mp::ptg
