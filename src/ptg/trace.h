// Execution tracing, the stand-in for PaRSEC's native performance
// instrumentation module used to produce the paper's Figures 10-13. Both
// the real runtime (src/ptg) and the discrete-event simulator (src/sim)
// emit the same TraceEvent records, so the same analysis and rendering
// works for either. Like the paper, arbitrary (non-PTG) code can also be
// instrumented by pushing events by hand — the original-NWChem executor
// does exactly that to produce the Fig. 12/13 analogue.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "ptg/types.h"

namespace mp::ptg {

struct TraceEvent {
  int rank = 0;
  int worker = 0;  ///< worker thread id within the rank; -1 = comm thread
  int16_t cls = -1;
  Params p{0, 0, 0};
  double t_start = 0.0;  ///< seconds
  double t_end = 0.0;
  bool is_comm = false;  ///< true for data-transfer / blocking-get events
};

class Trace {
 public:
  void add(TraceEvent e) { events_.push_back(e); }
  void append(const Trace& other);
  void clear() { events_.clear(); }

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Shift all timestamps so the earliest start is 0.
  void normalize();

  /// Wall span [min start, max end] in seconds (0 if empty).
  double span() const;

  /// Sum of event durations (busy time across all rows).
  double busy_time() const;

  /// Distinct (rank, worker) rows present in the trace.
  size_t num_rows() const;

  /// 1 - busy/(span * rows): the grey area of the paper's trace figures.
  double idle_fraction() const;

  /// Mean over rows of the first event's start time — large for the
  /// paper's v2 (startup communication flood), small for v4.
  double mean_startup_idle() const;

  /// Busy seconds per class id.
  std::map<int16_t, double> time_by_class() const;

  /// Fraction of communication-event time during which at least one
  /// same-rank worker is executing a compute event. ~0 for the original
  /// NWChem structure (C8), high for prioritized PaRSEC variants (C7).
  double comm_overlap_fraction() const;

  /// Same, but only counting compute on the *same* (rank, worker) row as
  /// the comm event. Structurally zero for the original code's sequential
  /// GET->GEMM timeline; meaningful for schedulers that interleave within
  /// a thread.
  double comm_overlap_same_worker_fraction() const;

  /// Render an ASCII Gantt chart: one row per (rank, worker), `width`
  /// character-columns over the full span. glyphs[cls] is the mark for a
  /// class ('.' = idle). Rows are grouped by rank like Figs. 10-12.
  std::string ascii_gantt(int width, const std::vector<char>& glyphs) const;

  /// Dump as JSON lines (one event per line) for external tooling.
  void to_json(std::ostream& os,
               const std::vector<std::string>& class_names) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace mp::ptg
