#include "ptg/trace.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "support/error.h"

namespace mp::ptg {

void Trace::append(const Trace& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
}

void Trace::normalize() {
  if (events_.empty()) return;
  double t0 = std::numeric_limits<double>::infinity();
  for (const auto& e : events_) t0 = std::min(t0, e.t_start);
  for (auto& e : events_) {
    e.t_start -= t0;
    e.t_end -= t0;
  }
}

double Trace::span() const {
  if (events_.empty()) return 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& e : events_) {
    lo = std::min(lo, e.t_start);
    hi = std::max(hi, e.t_end);
  }
  return hi - lo;
}

double Trace::busy_time() const {
  double s = 0.0;
  for (const auto& e : events_) s += e.t_end - e.t_start;
  return s;
}

size_t Trace::num_rows() const {
  std::set<std::pair<int, int>> rows;
  for (const auto& e : events_) rows.insert({e.rank, e.worker});
  return rows.size();
}

double Trace::idle_fraction() const {
  const double sp = span();
  const size_t rows = num_rows();
  if (sp <= 0.0 || rows == 0) return 0.0;
  // Busy time as the union of intervals per row: events on the same row
  // may overlap (e.g. concurrent transfers on a comm-thread row) and must
  // not be double-counted.
  std::map<std::pair<int, int>, std::vector<std::pair<double, double>>>
      per_row;
  for (const auto& e : events_) {
    per_row[{e.rank, e.worker}].emplace_back(e.t_start, e.t_end);
  }
  double busy = 0.0;
  for (auto& [row, ivals] : per_row) {
    std::sort(ivals.begin(), ivals.end());
    double cur_lo = ivals.front().first, cur_hi = ivals.front().second;
    for (const auto& [lo, hi] : ivals) {
      if (lo > cur_hi) {
        busy += cur_hi - cur_lo;
        cur_lo = lo;
        cur_hi = hi;
      } else {
        cur_hi = std::max(cur_hi, hi);
      }
    }
    busy += cur_hi - cur_lo;
  }
  return 1.0 - busy / (sp * static_cast<double>(rows));
}

double Trace::mean_startup_idle() const {
  if (events_.empty()) return 0.0;
  double t0 = std::numeric_limits<double>::infinity();
  std::map<std::pair<int, int>, double> first;
  for (const auto& e : events_) {
    t0 = std::min(t0, e.t_start);
    const auto row = std::make_pair(e.rank, e.worker);
    const auto it = first.find(row);
    if (it == first.end() || e.t_start < it->second) first[row] = e.t_start;
  }
  double acc = 0.0;
  for (const auto& [row, t] : first) acc += t - t0;
  return acc / static_cast<double>(first.size());
}

std::map<int16_t, double> Trace::time_by_class() const {
  std::map<int16_t, double> out;
  for (const auto& e : events_) out[e.cls] += e.t_end - e.t_start;
  return out;
}

double Trace::comm_overlap_fraction() const {
  // Collect compute intervals per rank, then measure each comm event's
  // coverage by the union of same-rank compute intervals.
  std::map<int, std::vector<std::pair<double, double>>> compute;
  for (const auto& e : events_) {
    if (!e.is_comm) compute[e.rank].emplace_back(e.t_start, e.t_end);
  }
  for (auto& [rank, ivals] : compute) {
    std::sort(ivals.begin(), ivals.end());
    // Merge into disjoint intervals.
    std::vector<std::pair<double, double>> merged;
    for (const auto& iv : ivals) {
      if (!merged.empty() && iv.first <= merged.back().second) {
        merged.back().second = std::max(merged.back().second, iv.second);
      } else {
        merged.push_back(iv);
      }
    }
    ivals = std::move(merged);
  }

  double comm_total = 0.0, comm_covered = 0.0;
  for (const auto& e : events_) {
    if (!e.is_comm) continue;
    comm_total += e.t_end - e.t_start;
    const auto it = compute.find(e.rank);
    if (it == compute.end()) continue;
    for (const auto& [lo, hi] : it->second) {
      const double a = std::max(lo, e.t_start);
      const double b = std::min(hi, e.t_end);
      if (b > a) comm_covered += b - a;
    }
  }
  if (comm_total <= 0.0) return 0.0;
  return comm_covered / comm_total;
}

double Trace::comm_overlap_same_worker_fraction() const {
  std::map<std::pair<int, int>, std::vector<std::pair<double, double>>>
      compute;
  for (const auto& e : events_) {
    if (!e.is_comm) compute[{e.rank, e.worker}].emplace_back(e.t_start, e.t_end);
  }
  for (auto& [row, ivals] : compute) std::sort(ivals.begin(), ivals.end());

  double comm_total = 0.0, comm_covered = 0.0;
  for (const auto& e : events_) {
    if (!e.is_comm) continue;
    comm_total += e.t_end - e.t_start;
    const auto it = compute.find({e.rank, e.worker});
    if (it == compute.end()) continue;
    for (const auto& [lo, hi] : it->second) {
      const double a = std::max(lo, e.t_start);
      const double b = std::min(hi, e.t_end);
      if (b > a) comm_covered += b - a;
    }
  }
  return comm_total > 0.0 ? comm_covered / comm_total : 0.0;
}

std::string Trace::ascii_gantt(int width,
                               const std::vector<char>& glyphs) const {
  MP_REQUIRE(width > 0, "ascii_gantt: width must be positive");
  if (events_.empty()) return "(empty trace)\n";

  double t0 = std::numeric_limits<double>::infinity();
  double t1 = -std::numeric_limits<double>::infinity();
  std::set<std::pair<int, int>> row_set;
  for (const auto& e : events_) {
    t0 = std::min(t0, e.t_start);
    t1 = std::max(t1, e.t_end);
    row_set.insert({e.rank, e.worker});
  }
  const double sp = std::max(t1 - t0, 1e-12);
  std::vector<std::pair<int, int>> rows(row_set.begin(), row_set.end());

  // For each cell keep the class covering it the longest.
  const size_t w = static_cast<size_t>(width);
  std::vector<std::vector<double>> coverage(rows.size(),
                                            std::vector<double>(w, 0.0));
  std::vector<std::string> grid(rows.size(), std::string(w, '.'));
  for (const auto& e : events_) {
    const size_t row = static_cast<size_t>(
        std::lower_bound(rows.begin(), rows.end(),
                         std::make_pair(e.rank, e.worker)) -
        rows.begin());
    const double fs = (e.t_start - t0) / sp * static_cast<double>(width);
    const double fe = (e.t_end - t0) / sp * static_cast<double>(width);
    const size_t cs = static_cast<size_t>(std::clamp<double>(fs, 0, width - 1));
    const size_t ce = static_cast<size_t>(std::clamp<double>(fe, 0, width - 1));
    const char g = (e.cls >= 0 && static_cast<size_t>(e.cls) < glyphs.size())
                       ? glyphs[static_cast<size_t>(e.cls)]
                       : (e.is_comm ? '~' : '#');
    for (size_t c = cs; c <= ce; ++c) {
      const double cell_lo = t0 + static_cast<double>(c) / width * sp;
      const double cell_hi = t0 + static_cast<double>(c + 1) / width * sp;
      const double cov = std::min(cell_hi, e.t_end) -
                         std::max(cell_lo, e.t_start);
      if (cov > coverage[row][c]) {
        coverage[row][c] = cov;
        grid[row][c] = g;
      }
    }
  }

  std::string out;
  int last_rank = std::numeric_limits<int>::min();
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].first != last_rank) {
      last_rank = rows[r].first;
      out += "node " + std::to_string(last_rank) + ":\n";
    }
    std::string label = rows[r].second < 0 ? "comm" : "w";
    if (rows[r].second >= 0) label += std::to_string(rows[r].second);
    label.resize(6, ' ');
    out += "  " + label + "|" + grid[r] + "|\n";
  }
  return out;
}

void Trace::to_json(std::ostream& os,
                    const std::vector<std::string>& class_names) const {
  for (const auto& e : events_) {
    const std::string name =
        (e.cls >= 0 && static_cast<size_t>(e.cls) < class_names.size())
            ? class_names[static_cast<size_t>(e.cls)]
            : (e.is_comm ? "comm" : "unknown");
    os << "{\"rank\":" << e.rank << ",\"worker\":" << e.worker
       << ",\"class\":\"" << name << "\",\"params\":[" << e.p[0] << ","
       << e.p[1] << "," << e.p[2] << "],\"start\":" << e.t_start
       << ",\"end\":" << e.t_end << ",\"comm\":" << (e.is_comm ? 1 : 0)
       << "}\n";
  }
}

}  // namespace mp::ptg
