#include "ptg/scheduler.h"

#include <atomic>
#include <mutex>
#include <queue>

#include "support/error.h"

namespace mp::ptg {

const char* to_string(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kPriority: return "priority";
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kLifo: return "lifo";
    case SchedPolicy::kStealing: return "stealing";
  }
  return "?";
}

namespace {

// Ordering: highest priority first; among equals, policy decides by seq.
struct Cmp {
  bool lifo = false;
  bool use_priority = true;
  // Returns true when a is WORSE than b (so b pops first).
  bool operator()(const ReadyTask& a, const ReadyTask& b) const {
    if (use_priority && a.priority != b.priority) {
      return a.priority < b.priority;
    }
    return lifo ? a.seq < b.seq : a.seq > b.seq;
  }
};

using Queue = std::priority_queue<ReadyTask, std::vector<ReadyTask>, Cmp>;

ReadyTask pop_top(Queue& q) {
  // priority_queue::top() is const; moving out is safe because we pop
  // immediately after and never observe the moved-from element.
  ReadyTask t = std::move(const_cast<ReadyTask&>(q.top()));
  q.pop();
  return t;
}

class CentralScheduler final : public Scheduler {
 public:
  explicit CentralScheduler(Cmp cmp) : queue_(cmp) {}

  void push(ReadyTask t, int /*worker*/) override {
    std::lock_guard lock(mu_);
    queue_.push(std::move(t));
  }

  bool try_pop(ReadyTask& out, int /*worker*/) override {
    std::lock_guard lock(mu_);
    if (queue_.empty()) return false;
    out = pop_top(queue_);
    return true;
  }

  size_t size() const override {
    std::lock_guard lock(mu_);
    return queue_.size();
  }

 private:
  mutable std::mutex mu_;
  Queue queue_;
};

class StealingScheduler final : public Scheduler {
 public:
  explicit StealingScheduler(int num_workers)
      : shards_(static_cast<size_t>(num_workers)) {
    MP_REQUIRE(num_workers >= 1, "StealingScheduler: need >= 1 worker");
    for (auto& s : shards_) s = std::make_unique<Shard>();
  }

  void push(ReadyTask t, int worker) override {
    const size_t home =
        worker >= 0 ? static_cast<size_t>(worker) % shards_.size()
                    : next_.fetch_add(1, std::memory_order_relaxed) %
                          shards_.size();
    std::lock_guard lock(shards_[home]->mu);
    shards_[home]->queue.push(std::move(t));
  }

  bool try_pop(ReadyTask& out, int worker) override {
    const size_t n = shards_.size();
    const size_t me = worker >= 0 ? static_cast<size_t>(worker) % n : 0;
    {
      std::lock_guard lock(shards_[me]->mu);
      if (!shards_[me]->queue.empty()) {
        out = pop_top(shards_[me]->queue);
        return true;
      }
    }
    for (size_t i = 1; i < n; ++i) {
      const size_t victim = (me + i) % n;
      std::lock_guard lock(shards_[victim]->mu);
      if (!shards_[victim]->queue.empty()) {
        out = pop_top(shards_[victim]->queue);
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  size_t size() const override {
    size_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard lock(s->mu);
      total += s->queue.size();
    }
    return total;
  }

  uint64_t steals() const override { return steals_.load(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    Queue queue{Cmp{false, true}};
  };
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> next_{0};
  std::atomic<uint64_t> steals_{0};
};

}  // namespace

std::unique_ptr<Scheduler> Scheduler::create(SchedPolicy policy,
                                             int num_workers) {
  switch (policy) {
    case SchedPolicy::kPriority:
      return std::make_unique<CentralScheduler>(Cmp{false, true});
    case SchedPolicy::kFifo:
      return std::make_unique<CentralScheduler>(Cmp{false, false});
    case SchedPolicy::kLifo:
      return std::make_unique<CentralScheduler>(Cmp{true, false});
    case SchedPolicy::kStealing:
      return std::make_unique<StealingScheduler>(num_workers);
  }
  throw InvalidArgument("unknown scheduler policy");
}

}  // namespace mp::ptg
