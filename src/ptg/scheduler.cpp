#include "ptg/scheduler.h"

#include <array>
#include <atomic>
#include <mutex>
#include <queue>

#include "support/analysis.h"
#include "support/error.h"

namespace mp::ptg {

const char* to_string(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kPriority: return "priority";
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kLifo: return "lifo";
    case SchedPolicy::kStealing: return "stealing";
  }
  return "?";
}

namespace {

// Ordering: highest priority first; among equals, policy decides by seq.
struct Cmp {
  bool lifo = false;
  bool use_priority = true;
  // Returns true when a is WORSE than b (so b pops first).
  bool operator()(const ReadyTask& a, const ReadyTask& b) const {
    if (use_priority && a.priority != b.priority) {
      return a.priority < b.priority;
    }
    return lifo ? a.seq < b.seq : a.seq > b.seq;
  }
};

using Queue = std::priority_queue<ReadyTask, std::vector<ReadyTask>, Cmp>;

ReadyTask pop_top(Queue& q) {
  // priority_queue::top() is const; moving out is safe because we pop
  // immediately after and never observe the moved-from element.
  ReadyTask t = std::move(const_cast<ReadyTask&>(q.top()));
  q.pop();
  return t;
}

/// Locks `mu`, counting acquisitions that had to block in `contended`.
std::unique_lock<std::mutex> counted_lock(std::mutex& mu,
                                          std::atomic<uint64_t>& contended) {
  std::unique_lock lock(mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    contended.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

class CentralScheduler final : public Scheduler {
 public:
  explicit CentralScheduler(Cmp cmp) : queue_(cmp) {}

  void push(ReadyTask t, int /*worker*/) override {
    auto lock = counted_lock(mu_, contended_pushes_);
    queue_.push(std::move(t));
    MP_ANNOTATE_CHANNEL_SEND(this);
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  void push_batch(std::vector<ReadyTask>&& ts, int /*worker*/) override {
    if (ts.empty()) return;
    auto lock = counted_lock(mu_, contended_pushes_);
    for (auto& t : ts) queue_.push(std::move(t));
    MP_ANNOTATE_CHANNEL_SEND(this);
    size_.fetch_add(ts.size(), std::memory_order_relaxed);
    ts.clear();
  }

  bool try_pop(ReadyTask& out, int /*worker*/) override {
    // The counter gives a lock-free empty fast path for idle polling.
    if (size_.load(std::memory_order_acquire) == 0) return false;
    auto lock = counted_lock(mu_, contended_pops_);
    if (queue_.empty()) return false;
    out = pop_top(queue_);
    MP_ANNOTATE_CHANNEL_RECV(this);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  size_t size() const override {
    return size_.load(std::memory_order_acquire);
  }

  SchedStats stats() const override {
    // Counters are bumped relaxed on the hot paths (monotonic, no ordering
    // needed there); the snapshot uses acquire loads so a reader that saw a
    // later counter also sees every increment that preceded it.
    SchedStats s;
    s.contended_pushes = contended_pushes_.load(std::memory_order_acquire);
    s.contended_pops = contended_pops_.load(std::memory_order_acquire);
    return s;
  }

 private:
  mutable std::mutex mu_;
  Queue queue_;
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> contended_pushes_{0};
  std::atomic<uint64_t> contended_pops_{0};
};

/// A bounded Chase-Lev work-stealing deque of ReadyTask* (Le et al.,
/// "Correct and Efficient Work-Stealing for Weak Memory Models", PPoPP'13,
/// minus the dynamic resize: overflow spills to the shared injection
/// queue). The owner pushes/pops `bottom` without locks; thieves CAS `top`.
class ChaseLevDeque {
 public:
  static constexpr size_t kCap = 4096;  // power of two
  static constexpr size_t kMask = kCap - 1;

  // TSan cannot model standalone fences (GCC-12 rejects atomic_thread_fence
  // outright under -fsanitize=thread), so sanitizer builds compile the
  // fences out and run the whole protocol on sequentially-consistent
  // accesses instead: same algorithm, slower, and every happens-before
  // edge the fences provided is visible to the race detector.
#if defined(__SANITIZE_THREAD__)
  static constexpr std::memory_order kProtocolRelaxed =
      std::memory_order_seq_cst;
  static void fence(std::memory_order) {}
#else
  static constexpr std::memory_order kProtocolRelaxed =
      std::memory_order_relaxed;
  static void fence(std::memory_order o) { std::atomic_thread_fence(o); }
#endif

  ChaseLevDeque() {
    // Registers the deque with the lifecycle checker (and clears any stale
    // ownership left by a previous deque at the same recycled address).
    MP_ANNOTATE_DEQUE_CREATE(this);
  }

  /// Resets the checker's owner claim; called before the destroying thread
  /// drains the bottom end during single-threaded teardown.
  void reset_owner_for_teardown() { MP_ANNOTATE_DEQUE_CREATE(this); }

  /// Owner only. False when full (caller reroutes to the overflow queue).
  bool push_bottom(ReadyTask* t) {
    MP_ANNOTATE_DEQUE_OWNER_OP(this);
    const int64_t b = bottom_.load(kProtocolRelaxed);
    const int64_t tp = top_.load(std::memory_order_acquire);
    if (b - tp >= static_cast<int64_t>(kCap)) return false;
    slots_[static_cast<size_t>(b) & kMask].store(t, kProtocolRelaxed);
    fence(std::memory_order_release);
    bottom_.store(b + 1, kProtocolRelaxed);
    // Publish a happens-before edge for a future thief's steal_top().
    MP_ANNOTATE_CHANNEL_SEND(this);
    return true;
  }

  /// Owner only. LIFO end; nullptr when empty (or lost the final-element
  /// race to a thief).
  ReadyTask* pop_bottom() {
    MP_ANNOTATE_DEQUE_OWNER_OP(this);
    const int64_t b = bottom_.load(kProtocolRelaxed) - 1;
    bottom_.store(b, kProtocolRelaxed);
    fence(std::memory_order_seq_cst);
    int64_t tp = top_.load(kProtocolRelaxed);
    ReadyTask* res = nullptr;
    if (tp <= b) {
      res = slots_[static_cast<size_t>(b) & kMask].load(kProtocolRelaxed);
      if (tp == b) {
        // Last element: race the thieves for it.
        if (!top_.compare_exchange_strong(tp, tp + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          res = nullptr;
        }
        bottom_.store(b + 1, kProtocolRelaxed);
      }
    } else {
      bottom_.store(b + 1, kProtocolRelaxed);
    }
    return res;
  }

  /// Any thread. FIFO end; nullptr when empty or when the CAS race was
  /// lost (the caller just moves on to the next victim). A slot value read
  /// here can only have been overwritten by the owner after `top` moved,
  /// which makes the CAS fail, so a stale task is never returned.
  ReadyTask* steal_top() {
    MP_ANNOTATE_DEQUE_STEAL_OP(this);
    int64_t tp = top_.load(std::memory_order_acquire);
    fence(std::memory_order_seq_cst);
    const int64_t b = bottom_.load(std::memory_order_acquire);
    if (tp >= b) return nullptr;
    ReadyTask* t =
        slots_[static_cast<size_t>(tp) & kMask].load(kProtocolRelaxed);
    if (!top_.compare_exchange_strong(tp, tp + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    // Adopt the owner's happens-before edge published at push_bottom().
    MP_ANNOTATE_CHANNEL_RECV(this);
    return t;
  }

 private:
  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::array<std::atomic<ReadyTask*>, kCap> slots_{};
};

class StealingScheduler final : public Scheduler {
 public:
  explicit StealingScheduler(int num_workers)
      : deques_(static_cast<size_t>(num_workers)),
        injection_(Cmp{false, true}) {
    MP_REQUIRE(num_workers >= 1, "StealingScheduler: need >= 1 worker");
    for (auto& d : deques_) d = std::make_unique<ChaseLevDeque>();
  }

  ~StealingScheduler() override {
    // Single-threaded by the time the scheduler dies; reclaim stragglers.
    // The destroying thread is usually not the owning worker, which is fine
    // only because every worker has joined — tell the checker the protocol
    // restarts here rather than report a bogus steal violation.
    for (auto& d : deques_) {
      d->reset_owner_for_teardown();
      while (ReadyTask* t = d->pop_bottom()) delete t;
    }
  }

  void push(ReadyTask t, int worker) override {
    push_one(std::move(t), worker);
    size_.fetch_add(1, std::memory_order_release);
  }

  void push_batch(std::vector<ReadyTask>&& ts, int worker) override {
    if (ts.empty()) return;
    for (auto& t : ts) push_one(std::move(t), worker);
    size_.fetch_add(ts.size(), std::memory_order_release);
    ts.clear();
  }

  bool try_pop(ReadyTask& out, int worker) override {
    if (size_.load(std::memory_order_acquire) == 0) return false;
    const size_t n = deques_.size();
    const size_t me =
        worker >= 0 ? static_cast<size_t>(worker) % n : 0;

    // 1. Own bottom (lock-free LIFO: the task this worker just spawned).
    if (worker >= 0) {
      if (ReadyTask* t = deques_[me]->pop_bottom()) return take(t, out);
    }

    // 2. The shared injection queue (priority-ordered startup/comm tasks).
    {
      auto lock = counted_lock(inj_mu_, contended_pops_);
      if (!injection_.empty()) {
        out = pop_top(injection_);
        MP_ANNOTATE_CHANNEL_RECV(&injection_);
        size_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }

    // 3. Steal the top (oldest task) of another worker's deque. A worker
    // starts with its peers (i = 1; its own bottom was tried above); a
    // non-worker caller (comm-thread harvest for inter-node migration)
    // must scan every deque including deque 0, which the old i = 1 start
    // silently skipped — tasks parked there were invisible to harvesting.
    for (size_t i = worker >= 0 ? 1 : 0; i < n; ++i) {
      const size_t victim = (me + i) % n;
      steal_attempts_.fetch_add(1, std::memory_order_relaxed);
      if (ReadyTask* t = deques_[victim]->steal_top()) {
        // Release pairs with the acquire in stats(): a snapshot observing
        // this steal also observes the attempts counted before it.
        steals_.fetch_add(1, std::memory_order_release);
        return take(t, out);
      }
    }
    return false;
  }

  size_t size() const override {
    return size_.load(std::memory_order_acquire);
  }

  uint64_t steals() const override {
    return steals_.load(std::memory_order_acquire);
  }

  SchedStats stats() const override {
    // Same convention as CentralScheduler::stats(): relaxed increments on
    // the hot paths, acquire loads for the snapshot. steals_ is read
    // *first*: its increment is a release, so the acquire load that saw S
    // steals also sees the >= S attempt increments sequenced before them —
    // SchedStats::validate()'s steals <= steal_attempts invariant holds
    // even for a mid-run snapshot.
    SchedStats s;
    s.steals = steals_.load(std::memory_order_acquire);
    s.steal_attempts = steal_attempts_.load(std::memory_order_acquire);
    s.contended_pushes = contended_pushes_.load(std::memory_order_acquire);
    s.contended_pops = contended_pops_.load(std::memory_order_acquire);
    return s;
  }

 private:
  void push_one(ReadyTask&& t, int worker) {
    if (worker >= 0) {
      const size_t me = static_cast<size_t>(worker) % deques_.size();
      auto* owned = new ReadyTask(std::move(t));
      if (deques_[me]->push_bottom(owned)) return;
      // Deque full: spill to the injection queue.
      t = std::move(*owned);
      delete owned;
    }
    auto lock = counted_lock(inj_mu_, contended_pushes_);
    injection_.push(std::move(t));
    MP_ANNOTATE_CHANNEL_SEND(&injection_);
  }

  bool take(ReadyTask* t, ReadyTask& out) {
    out = std::move(*t);
    delete t;
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  std::vector<std::unique_ptr<ChaseLevDeque>> deques_;
  mutable std::mutex inj_mu_;
  Queue injection_;
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> steal_attempts_{0};
  std::atomic<uint64_t> contended_pushes_{0};
  std::atomic<uint64_t> contended_pops_{0};
};

}  // namespace

std::unique_ptr<Scheduler> Scheduler::create(SchedPolicy policy,
                                             int num_workers) {
  switch (policy) {
    case SchedPolicy::kPriority:
      return std::make_unique<CentralScheduler>(Cmp{false, true});
    case SchedPolicy::kFifo:
      return std::make_unique<CentralScheduler>(Cmp{false, false});
    case SchedPolicy::kLifo:
      return std::make_unique<CentralScheduler>(Cmp{true, false});
    case SchedPolicy::kStealing:
      return std::make_unique<StealingScheduler>(num_workers);
  }
  throw InvalidArgument("unknown scheduler policy");
}

}  // namespace mp::ptg
