#include "ptg/context.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <set>
#include <sstream>
#include <thread>

#include "analysis/graph_verify.h"
#include "support/analysis.h"
#include "support/error.h"
#include "support/log.h"
#include "vc/message.h"

namespace mp::ptg {

using namespace std::chrono_literals;

Context::Context(vc::RankCtx& rank_ctx, const Taskpool& pool, Options opts)
    : rctx_(rank_ctx),
      pool_(pool),
      opts_(opts),
      epoch_(std::chrono::steady_clock::now()) {
  MP_REQUIRE(opts_.num_workers >= 1, "Context: need at least one worker");
  pool_.validate();
  sched_ = Scheduler::create(opts_.policy, opts_.num_workers);
  worker_events_.resize(static_cast<size_t>(opts_.num_workers));
  load_hints_.assign(static_cast<size_t>(nranks()), -1);
  steal_rng_ = Rng(opts_.steal_seed ^
                   (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(rank() + 1)));
  if (rank() == 0) {
    rank_done_seen_.assign(static_cast<size_t>(nranks()), 0);
    rank_done_mask_.assign(static_cast<size_t>(nranks()), 0);
  }
  if (failure_active()) {
    MP_REQUIRE(nranks() <= 64,
               "failure detection supports at most 64 ranks (dead-set mask)");
    lineage_.resize(static_cast<size_t>(nranks()));
    last_heard_.resize(static_cast<size_t>(nranks()));
    peer_suspect_.assign(static_cast<size_t>(nranks()), 0);
    suspect_since_.resize(static_cast<size_t>(nranks()));
  }
}

StealStats Context::steal_stats() const {
  // Counter-pair discipline (cf. FabricStats/SchedStats): each bounded
  // counter is read with acquire BEFORE the counter that bounds it, and its
  // increments are release-ordered after the bound's, so validate() holds
  // on a mid-run snapshot.
  StealStats s;
  s.credits_received = st_credits_received_.load(std::memory_order_acquire);
  s.credits_sent = st_credits_sent_.load(std::memory_order_acquire);
  s.tasks_migrated_out = st_migrated_out_.load(std::memory_order_acquire);
  s.tasks_migrated_in = st_migrated_in_.load(std::memory_order_acquire);
  s.replies_received = st_replies_received_.load(std::memory_order_acquire);
  s.replies_sent = st_replies_sent_.load(std::memory_order_acquire);
  s.requests_received = st_requests_received_.load(std::memory_order_acquire);
  s.requests_sent = st_requests_sent_.load(std::memory_order_acquire);
  return s;
}

FailureStats Context::failure_stats() const {
  // Recovery-work counters are read before deaths_confirmed (and are
  // incremented after it, release-ordered), so "adopted > 0 with deaths ==
  // 0" can never be observed. The equality invariants are meaningful for
  // post-run snapshots only (see the struct's comment).
  FailureStats s;
  s.tasks_adopted = fs_tasks_adopted_.load(std::memory_order_acquire);
  s.lineage_replayed = fs_lineage_replayed_.load(std::memory_order_acquire);
  s.tasks_reinjected = fs_tasks_reinjected_.load(std::memory_order_acquire);
  s.suspicions_cleared =
      fs_suspicions_cleared_.load(std::memory_order_acquire);
  s.deaths_confirmed = fs_deaths_confirmed_.load(std::memory_order_acquire);
  s.watchdog_resets_on_death =
      fs_watchdog_resets_on_death_.load(std::memory_order_acquire);
  s.suspicions = fs_suspicions_.load(std::memory_order_acquire);
  s.probes_answered = fs_probes_answered_.load(std::memory_order_acquire);
  s.probes_sent = fs_probes_sent_.load(std::memory_order_acquire);
  s.heartbeats_sent = fs_heartbeats_sent_.load(std::memory_order_acquire);
  s.heartbeats_received =
      fs_heartbeats_received_.load(std::memory_order_acquire);
  s.fenced_dropped = fs_fenced_dropped_.load(std::memory_order_acquire);
  s.dup_deposits_dropped =
      fs_dup_deposits_dropped_.load(std::memory_order_acquire);
  return s;
}

std::vector<analysis::Diag> Context::validate_plan() const {
  return analysis::verify_graph(pool_, nranks());
}

namespace {

bool env_verify_enabled() {
  const char* e = std::getenv("MP_VERIFY");
  return e != nullptr && *e != '\0' && std::string(e) != "0";
}

}  // namespace

double Context::effective_priority(const TaskClass& c,
                                   const Params& p) const {
  if (!opts_.use_priorities || !c.priority) return 0.0;
  return c.priority(p);
}

void Context::enumerate_startup() {
  for (size_t ci = 0; ci < pool_.num_classes(); ++ci) {
    const TaskClass& c = pool_.cls(static_cast<int16_t>(ci));
    for (const Params& p : c.enumerate_rank(rank())) {
      MP_DCHECK(c.rank_of(p) == rank(),
                "enumerate_rank returned instance not owned by this rank");
      expected_.fetch_add(1, std::memory_order_relaxed);
      if (c.num_task_inputs(p) == 0) {
        make_ready(TaskKey{c.cls, p}, {}, /*worker_hint=*/-1);
      }
    }
  }
}

void Context::wake_one() {
  // Taking wake_mu_ orders this notify against a worker's predicate check,
  // closing the lost-wakeup window between its failed try_pop and its wait.
  std::lock_guard lock(wake_mu_);
  wake_cv_.notify_one();
}

void Context::wake_all() {
  std::lock_guard lock(wake_mu_);
  wake_cv_.notify_all();
}

ReadyTask Context::build_task(const TaskKey& key,
                              std::vector<DataBuf> inputs) {
  ReadyTask t;
  t.key = key;
  t.inputs = std::move(inputs);
  t.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  t.priority = effective_priority(pool_.cls(key.cls), key.p);
  return t;
}

void Context::make_ready(const TaskKey& key, std::vector<DataBuf> inputs,
                         int worker_hint) {
  sched_->push(build_task(key, std::move(inputs)), worker_hint);
  wake_one();
}

void Context::deposit(const TaskKey& key, int slot, DataBuf buf,
                      std::vector<ReadyTask>* batch) {
  MP_REQUIRE(slot >= 0 && slot < 128, "deposit: bad input slot");
  const bool ft = failure_active();
  Shard& shard = shards_[TaskKeyHash{}(key) % kShards];
  std::vector<DataBuf> ready_inputs;
  {
    std::lock_guard lock(shard.mu);
    // Recovery re-executes whole chains, so a replayed activation can race
    // (or trail) the original delivery. With the failure machinery on,
    // deposits are idempotent: a second copy — for an already-activated key
    // or an already-filled slot — is dropped and counted, not fatal.
    if (ft && shard.activated.count(key) != 0) {
      fs_dup_deposits_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Pending& e = shard.map[key];
    if (!e.initialized) {
      e.threshold = pool_.cls(key.cls).num_task_inputs(key.p);
      e.initialized = true;
      MP_REQUIRE(e.threshold > 0,
                 "deposit into a task class with no task inputs");
    }
    if (e.inputs.size() <= static_cast<size_t>(slot)) {
      e.inputs.resize(static_cast<size_t>(slot) + 1);
    }
    if (e.inputs[static_cast<size_t>(slot)] != nullptr) {
      if (ft) {
        fs_dup_deposits_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      MP_REQUIRE(false, "double deposit into the same input slot");
    }
    e.inputs[static_cast<size_t>(slot)] = std::move(buf);
    // The shard is a hand-off point: the depositing thread publishes the
    // buffer, the thread completing the threshold takes the whole set over.
    MP_ANNOTATE_CHANNEL_SEND(&shard);
    progress_.fetch_add(1, std::memory_order_relaxed);
    if (++e.arrived < e.threshold) return;
    MP_ANNOTATE_CHANNEL_RECV(&shard);
    ready_inputs = std::move(e.inputs);
    shard.map.erase(key);
    if (ft) shard.activated.insert(key);
  }
  if (ft) {
    // A completed key homed on another rank reached us through recovery
    // rerouting. It must not run (or count) before this rank has formally
    // adopted it — park it until handle_confirmed_death's sweep; if the
    // adoption already happened, fall through and schedule normally.
    const int home = pool_.cls(key.cls).rank_of(key.p);
    if (home != rank()) {
      std::lock_guard lock(adopt_mu_);
      if (adopted_keys_.count(key) == 0) {
        held_ready_.emplace(key, std::move(ready_inputs));
        return;
      }
    }
  }
  if (batch) {
    batch->push_back(build_task(key, std::move(ready_inputs)));
  } else {
    make_ready(key, std::move(ready_inputs), /*worker_hint=*/-1);
  }
}

void Context::execute_task(ReadyTask t, int wid) {
  const TaskClass& c = pool_.cls(t.key.cls);
  TaskCtx tctx(this, t.key, std::move(t.inputs), wid);

  MP_ANNOTATE_TASK_BEGIN(c.name.c_str(), t.key.p.data(), 3);
  for (const DataBuf& in : tctx.inputs_view()) {
    if (in) MP_ANNOTATE_BUF_READ(in.get());
  }
  const double t0 = opts_.enable_tracing ? now() : 0.0;
  c.body(tctx);
  for (const DataBuf& out : tctx.outputs()) {
    if (out) MP_ANNOTATE_BUF_WRITE(out.get());
  }
  if (opts_.enable_tracing) {
    worker_events_[static_cast<size_t>(wid)].push_back(
        TraceEvent{rank(), wid, t.key.cls, t.key.p, t0, now(), false});
  }

  // Route outputs to consumers. Locally-completed activations are gathered
  // into one batch and published with a single push_batch onto this
  // worker's own deque (one size/notify round trip for all siblings).
  if (c.route_outputs) {
    std::vector<ReadyTask> batch;
    std::vector<OutRoute> routes;
    c.route_outputs(t.key.p, routes);
    for (const OutRoute& r : routes) {
      const TaskClass& cc = pool_.cls(r.consumer.cls);
      MP_REQUIRE(static_cast<size_t>(r.out_slot) < tctx.outputs().size() &&
                     tctx.outputs()[static_cast<size_t>(r.out_slot)] != nullptr,
                 "task '" + c.name + "' routed output slot " +
                     std::to_string(r.out_slot) + " but never set it");
      const DataBuf& buf = tctx.outputs()[static_cast<size_t>(r.out_slot)];
      // Under failure tolerance the consumer may live on a stand-in rank
      // (its home is confirmed dead); route to wherever it lives *now*.
      const int dst = failure_active() ? effective_rank(r.consumer)
                                       : cc.rank_of(r.consumer.p);
      if (dst == rank()) {
        deposit(r.consumer, r.in_slot, buf, &batch);
      } else {
        if (failure_active()) record_lineage(dst, r.consumer, r.in_slot, buf);
        vc::WireWriter w;
        // Load hint piggybacked on every activation: receivers feed it to
        // their steal agent's victim selection.
        w.put<int64_t>(static_cast<int64_t>(sched_->size()));
        w.put<int16_t>(r.consumer.cls);
        for (int32_t x : r.consumer.p) w.put<int32_t>(x);
        w.put<int8_t>(r.in_slot);
        w.put_doubles(buf->data(), buf->size());
        vc::Message m;
        m.src = rank();
        m.dst = dst;
        m.tag = kTagActivate;
        m.payload = w.take();
        {
          std::lock_guard lock(out_mu_);
          outbox_.push_back(std::move(m));
        }
        remote_sent_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!batch.empty()) {
      const size_t n = batch.size();
      sched_->push_batch(std::move(batch), wid);
      // This worker keeps one task for itself (it pops its own bottom
      // next); any extra siblings are worth waking peers for.
      if (n > 1) {
        wake_all();
      } else {
        wake_one();
      }
    }
  }

  MP_ANNOTATE_TASK_END();
  progress_.fetch_add(1, std::memory_order_relaxed);
  if (t.origin >= 0 && t.origin != rank()) {
    // A migrated-in task: its completion belongs to the home rank's
    // termination count. Send a credit instead of counting it here.
    vc::WireWriter w;
    w.put<int64_t>(static_cast<int64_t>(sched_->size()));
    w.put<int16_t>(t.key.cls);
    for (int32_t x : t.key.p) w.put<int32_t>(x);
    vc::Message m;
    m.src = rank();
    m.dst = t.origin;
    m.tag = kTagCredit;
    m.payload = w.take();
    {
      std::lock_guard lock(out_mu_);
      outbox_.push_back(std::move(m));
    }
    foreign_pending_.fetch_sub(1, std::memory_order_relaxed);
    // Release after the migrated-in count it is bounded by (the bound was
    // incremented before this task was even visible to pop).
    st_credits_sent_.fetch_add(1, std::memory_order_release);
    return;
  }
  executed_.fetch_add(1, std::memory_order_acq_rel);
  maybe_local_complete();
}

void Context::maybe_local_complete() {
  // Each own/adopted task bumps exactly one of executed_ /
  // st_credits_received_ (post-confirmation credits from a dead holder are
  // fenced before reaching the counter), so the sum is monotone; expected_
  // only grows (adoption), and it grows before the adopted work can run.
  // `<` rather than `!=`: after a death expands expected_, a transient
  // equality at the *old* value must not be mistaken for completion twice —
  // the latch below plus the epoch reset in handle_confirmed_death handle
  // re-reporting.
  if (executed_.load(std::memory_order_acquire) +
          st_credits_received_.load(std::memory_order_acquire) <
      expected_.load(std::memory_order_acquire)) {
    return;
  }
  if (local_complete_.exchange(true, std::memory_order_acq_rel)) return;
  if (!global_termination()) {
    done_.store(true, std::memory_order_release);
    wake_all();
    return;
  }
  // Global termination: report local completion to the coordinator, tagged
  // with this rank's confirmed-dead mask (the termination epoch). This rank
  // keeps its comm thread (steal agent, failure detector) running until
  // JOB_DONE — an idle-but-done rank still serves steals and heartbeats.
  const uint64_t mask = confirmed_dead_mask_.load(std::memory_order_acquire);
  if (rank() == 0) {
    note_rank_done(0, mask);
  } else {
    vc::WireWriter w;
    w.put<uint64_t>(mask);
    rctx_.send(0, kTagLocalDone, w.take());
  }
}

bool Context::termination_check_locked() {
  // A rank counts as done when it is dead (its lost work was adopted and is
  // counted by the adopters) or when it has reported local completion with
  // a dead-set view covering rank 0's: a pre-death report is stale — the
  // reporter has since adopted work or must re-check against replays.
  const uint64_t my_dead = confirmed_dead_mask_.load(std::memory_order_acquire);
  for (int r = 0; r < nranks(); ++r) {
    if ((my_dead >> r) & 1ULL) continue;
    if (!rank_done_seen_[static_cast<size_t>(r)]) return false;
    if ((rank_done_mask_[static_cast<size_t>(r)] & my_dead) != my_dead) {
      return false;
    }
  }
  return true;
}

bool Context::note_rank_done(int r, uint64_t dead_mask) {
  bool broadcast = false;
  bool fresh = false;
  {
    std::lock_guard lock(term_mu_);
    if (r < 0 || static_cast<size_t>(r) >= rank_done_seen_.size()) {
      return false;
    }
    fresh = rank_done_seen_[static_cast<size_t>(r)] == 0;
    rank_done_seen_[static_cast<size_t>(r)] = 1;
    rank_done_mask_[static_cast<size_t>(r)] |= dead_mask;
    if (termination_check_locked() && !job_done_broadcast_) {
      job_done_broadcast_ = true;
      broadcast = true;
    }
  }
  if (broadcast) {
    // Every live rank is locally done at the current epoch; by the credit
    // scheme no migrated task is uncounted anywhere, and by the epoch
    // reconciliation no adopted task is unexecuted — the whole DAG ran.
    for (int p = 1; p < nranks(); ++p) {
      if ((confirmed_dead_mask_.load(std::memory_order_acquire) >> p) & 1ULL) {
        continue;
      }
      rctx_.send(p, kTagJobDone, {});
    }
    done_.store(true, std::memory_order_release);
    wake_all();
  }
  return fresh;
}

namespace {

std::chrono::microseconds ms_to_us(double v) {
  return std::chrono::microseconds(static_cast<int64_t>(v * 1000.0));
}

}  // namespace

void Context::steal_agent_tick(std::chrono::steady_clock::time_point now_tp) {
  if (done_.load(std::memory_order_acquire)) return;
  if (steal_outstanding_.load(std::memory_order_relaxed) != 0) {
    if (now_tp < steal_reply_deadline_) return;
    // The reply was probably lost in the fabric; allow a fresh request. A
    // late reply, should it still arrive, is absorbed normally.
    steal_outstanding_.store(0, std::memory_order_relaxed);
  }
  if (sched_->size() > 0 ||
      active_workers_.load(std::memory_order_relaxed) > 0 ||
      now_tp < next_steal_at_) {
    return;
  }
  // Victim selection: the best (largest) load hint heard so far, falling
  // back to a seeded random peer when nobody advertised work. A hint of 1
  // is not worth a request — the victim keeps its last task. Confirmed-dead
  // peers are never victims: the request would blackhole and the reply
  // timeout would throttle stealing for everyone.
  const uint64_t dead = confirmed_dead_mask_.load(std::memory_order_acquire);
  int victim = -1;
  int64_t best = 1;
  for (int p = 0; p < nranks(); ++p) {
    if (p == rank() || ((dead >> p) & 1ULL)) continue;
    if (load_hints_[static_cast<size_t>(p)] > best) {
      best = load_hints_[static_cast<size_t>(p)];
      victim = p;
    }
  }
  if (victim < 0) {
    for (int tries = 0; tries < 4 && victim < 0; ++tries) {
      const auto off =
          1 + steal_rng_.next_below(static_cast<uint64_t>(nranks() - 1));
      const int cand = (rank() + static_cast<int>(off)) % nranks();
      if (((dead >> cand) & 1ULL) == 0) victim = cand;
    }
    if (victim < 0) return;  // everyone drawn was dead; try next tick
  }
  // Consume the hint so an empty-handed victim is not hammered while its
  // next reply (which refreshes the hint) is in flight.
  if (load_hints_[static_cast<size_t>(victim)] > 0) {
    load_hints_[static_cast<size_t>(victim)] = 0;
  }
  st_requests_sent_.fetch_add(1, std::memory_order_relaxed);
  steal_outstanding_.store(1, std::memory_order_relaxed);
  vc::WireWriter w;
  w.put<int64_t>(static_cast<int64_t>(sched_->size()));
  rctx_.send(victim, kTagStealRequest, w.take());
  next_steal_at_ = now_tp + ms_to_us(opts_.steal_cooldown_ms);
  steal_reply_deadline_ = now_tp + ms_to_us(opts_.steal_reply_timeout_ms);
}

void Context::serve_steal_request(const vc::Message& msg) {
  st_requests_received_.fetch_add(1, std::memory_order_relaxed);
  try {
    vc::WireReader r(msg.payload);
    const int64_t thief_load = r.get<int64_t>();
    if (msg.src >= 0 && static_cast<size_t>(msg.src) < load_hints_.size()) {
      load_hints_[static_cast<size_t>(msg.src)] = thief_load;
    }
  } catch (...) {
    // Malformed request: answer empty-handed rather than unwind.
  }
  // Steal-half policy: give away at most half of the ready queue (capped),
  // and only tasks that are locally owned and migratable. Whatever the
  // harvest popped but cannot ship goes straight back.
  std::vector<ReadyTask> batch;
  const size_t avail = sched_->size();
  if (!done_.load(std::memory_order_acquire) && avail >= 2) {
    const size_t want = std::min<size_t>(
        avail / 2, static_cast<size_t>(opts_.steal_max_batch));
    std::vector<ReadyTask> popped, keep;
    sched_->harvest(popped, want);
    for (auto& t : popped) {
      const bool foreign = t.origin >= 0 && t.origin != rank();
      if (!foreign && pool_.cls(t.key.cls).migratable) {
        batch.push_back(std::move(t));
      } else {
        keep.push_back(std::move(t));
      }
    }
    if (!keep.empty()) {
      sched_->push_batch(std::move(keep), -1);
      // A worker could have observed an empty queue during the harvest
      // window and gone to sleep; the re-push must not be lost.
      wake_all();
    }
  }
  vc::WireWriter w;
  w.put<int64_t>(static_cast<int64_t>(sched_->size()));
  w.put<uint32_t>(static_cast<uint32_t>(batch.size()));
  for (const ReadyTask& t : batch) {
    w.put<int16_t>(t.key.cls);
    for (int32_t x : t.key.p) w.put<int32_t>(x);
    w.put<double>(t.priority);
    w.put<uint32_t>(static_cast<uint32_t>(t.inputs.size()));
    for (const DataBuf& in : t.inputs) {
      w.put<uint8_t>(in ? 1 : 0);
      if (in) w.put_doubles(in->data(), in->size());
    }
  }
  for (const ReadyTask& t : batch) {
    if (opts_.migration_observer) {
      opts_.migration_observer->migrated(t.key, rank(), msg.src);
    }
    // The contents now belong to the thief: any further local access until
    // the (legal) release below is an MPA007 finding.
    for (const DataBuf& in : t.inputs) {
      if (in) MP_ANNOTATE_BUF_MIGRATE(in.get());
    }
    if (failure_active()) {
      // Retain the handles (not the contents) so the task can be re-injected
      // locally if the thief dies before its credit arrives. The buffers
      // stay annotated as migrated; re-injection REHOMEs them first.
      OutstandingMig om;
      om.holder = msg.src;
      om.priority = t.priority;
      om.inputs = t.inputs;
      outstanding_migs_[t.key] = std::move(om);
    }
  }
  // Reply counted before the tasks it carries (release), so a snapshot
  // observing migrated-out tasks always observes the reply too.
  st_replies_sent_.fetch_add(1, std::memory_order_relaxed);
  st_migrated_out_.fetch_add(batch.size(), std::memory_order_release);
  rctx_.send(msg.src, kTagStealReply, w.take());
  if (!batch.empty()) progress_.fetch_add(1, std::memory_order_relaxed);
}

void Context::absorb_steal_reply(const vc::Message& msg) {
  st_replies_received_.fetch_add(1, std::memory_order_relaxed);
  steal_outstanding_.store(0, std::memory_order_relaxed);
  size_t n = 0;
  try {
    vc::WireReader r(msg.payload);
    const int64_t victim_load = r.get<int64_t>();
    if (msg.src >= 0 && static_cast<size_t>(msg.src) < load_hints_.size()) {
      load_hints_[static_cast<size_t>(msg.src)] = victim_load;
    }
    n = r.get<uint32_t>();
    std::vector<ReadyTask> tasks;
    tasks.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      ReadyTask t;
      t.key.cls = r.get<int16_t>();
      for (auto& x : t.key.p) x = r.get<int32_t>();
      t.priority = r.get<double>();
      t.origin = msg.src;
      t.seq = seq_.fetch_add(1, std::memory_order_relaxed);
      const auto nin = r.get<uint32_t>();
      t.inputs.resize(nin);
      for (uint32_t s = 0; s < nin; ++s) {
        if (r.get<uint8_t>() != 0) {
          auto data = make_buf_pooled(0);
          *data = r.get_doubles();
          t.inputs[s] = std::move(data);
        }
      }
      tasks.push_back(std::move(t));
    }
    if (!tasks.empty()) {
      foreign_pending_.fetch_add(static_cast<int64_t>(tasks.size()),
                                 std::memory_order_relaxed);
      // Bound for credits_sent: incremented (release) before the tasks
      // become poppable, so a credit can never be observed without it.
      st_migrated_in_.fetch_add(tasks.size(), std::memory_order_release);
      sched_->push_batch(std::move(tasks), -1);
      wake_all();
      progress_.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (...) {
    record_error();
    return;
  }
  if (n == 0) {
    next_steal_at_ =
        std::chrono::steady_clock::now() + ms_to_us(opts_.steal_backoff_ms);
  }
}

void Context::record_error(const std::string& reason) {
  {
    std::lock_guard lock(error_mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  // Tell every other rank: their remaining tasks may depend on activations
  // this rank will never send, so they must unwind too or the job
  // deadlocks at scale. The reason (when given) rides in the payload so
  // peers surface the actual cause, not a generic task failure.
  if (!abort_broadcast_.exchange(true)) {
    vc::Payload payload(reason.begin(), reason.end());
    for (int r = 0; r < nranks(); ++r) {
      if (r == rank()) continue;
      rctx_.send(r, kTagAbort, payload);
    }
  }
  // Force a shutdown: remaining tasks will never run, but every thread
  // must unwind cleanly so run() can rethrow.
  done_.store(true, std::memory_order_release);
  wake_all();
}

int Context::effective_rank(const TaskKey& key) const {
  // The re-homing rules themselves live in ptg/protocol.h so the
  // mp-explore model checker adopts with exactly this arithmetic.
  const int home = pool_.cls(key.cls).rank_of(key.p);
  const uint64_t dead = confirmed_dead_mask_.load(std::memory_order_acquire);
  if (dead == 0 || ((dead >> home) & 1ULL) == 0) return home;
  switch (opts_.on_rank_failure) {
    case FailurePolicy::kRetry:
      // Next live rank after the home in ring order: keeps the original
      // distribution for everything except the dead rank's keys.
      return protocol::retry_standin(home, dead, nranks());
    case FailurePolicy::kDegrade: {
      // Rebuild over the surviving communicator: hash over the ordered
      // survivor list. Deterministic in (key, dead set) only. Classes with
      // a recovery_key hash the *group* id, not the individual key (see
      // protocol::recovery_group_hash on the co-adoption invariant).
      const TaskClass& c = pool_.cls(key.cls);
      const uint64_t h =
          c.recovery_key
              ? protocol::recovery_group_hash(key.cls, c.recovery_key(key.p))
              : static_cast<uint64_t>(TaskKeyHash{}(key));
      const int cand = protocol::degrade_standin(h, dead, nranks());
      return cand < 0 ? home : cand;
    }
    case FailurePolicy::kAbort:
      break;  // escalating anyway; keep routes stable
  }
  return home;
}

void Context::record_lineage(int dst, const TaskKey& consumer, int slot,
                             const DataBuf& buf) {
  std::lock_guard lock(lin_mu_);
  lineage_[static_cast<size_t>(dst)].push_back(
      LineageEntry{consumer, static_cast<int8_t>(slot), buf});
}

namespace {
// Heartbeat payload flags.
constexpr uint8_t kBeat = 0;
constexpr uint8_t kProbe = 1;
constexpr uint8_t kProbeAnswer = 2;
}  // namespace

void Context::send_heartbeat(int dst, uint8_t flag) {
  vc::WireWriter w;
  w.put<int64_t>(static_cast<int64_t>(sched_->size()));
  w.put<uint8_t>(flag);
  rctx_.send(dst, kTagHeartbeat, w.take());
  fs_heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
}

void Context::on_heartbeat(const vc::Message& msg) {
  fs_heartbeats_received_.fetch_add(1, std::memory_order_relaxed);
  try {
    vc::WireReader r(msg.payload);
    const int64_t load = r.get<int64_t>();
    if (msg.src >= 0 && static_cast<size_t>(msg.src) < load_hints_.size()) {
      load_hints_[static_cast<size_t>(msg.src)] = load;
    }
    const uint8_t flag = r.get<uint8_t>();
    if (flag == kProbe) {
      // Answer instantly: a slow-but-alive peer clears its suspicion at
      // the prober, a dead one cannot answer — that asymmetry is the whole
      // suspicion protocol.
      send_heartbeat(msg.src, kProbeAnswer);
    } else if (flag == kProbeAnswer) {
      fs_probes_answered_.fetch_add(1, std::memory_order_release);
    }
  } catch (...) {
    // Malformed heartbeat: liveness was already refreshed at pop; ignore.
  }
}

void Context::detector_tick(std::chrono::steady_clock::time_point now_tp) {
  if (done_.load(std::memory_order_acquire)) return;
  const uint64_t dead = confirmed_dead_mask_.load(std::memory_order_acquire);
  if (now_tp >= next_heartbeat_) {
    for (int p = 0; p < nranks(); ++p) {
      if (p == rank() || ((dead >> p) & 1ULL)) continue;
      send_heartbeat(p, kBeat);
    }
    next_heartbeat_ = now_tp + ms_to_us(opts_.heartbeat_interval_ms);
  }
  for (int p = 0; p < nranks(); ++p) {
    if (p == rank() || ((dead >> p) & 1ULL)) continue;
    const size_t sp = static_cast<size_t>(p);
    if (peer_suspect_[sp] == 0) {
      const double silent_ms =
          std::chrono::duration<double, std::milli>(now_tp - last_heard_[sp])
              .count();
      if (silent_ms > opts_.suspect_after_ms) {
        peer_suspect_[sp] = 1;
        suspect_since_[sp] = now_tp;
        fs_suspicions_.fetch_add(1, std::memory_order_release);
        fs_probes_sent_.fetch_add(1, std::memory_order_release);
        send_heartbeat(p, kProbe);
      }
    } else {
      const double suspect_ms =
          std::chrono::duration<double, std::milli>(now_tp - suspect_since_[sp])
              .count();
      if (suspect_ms > opts_.confirm_after_ms) {
        peer_suspect_[sp] = 0;
        handle_confirmed_death(p);
      }
    }
  }
}

void Context::escalate_failure(int dead, uint64_t lost_chains,
                               const char* why) {
  std::ostringstream os;
  os << "rank failure: rank " << dead << " confirmed dead; " << lost_chains
     << " task instance(s) homed there are lost; policy="
     << to_string(opts_.on_rank_failure) << "; decision: abort (" << why
     << ")";
  const std::string msg = os.str();
  MP_LOG_ERROR("%s", msg.c_str());
  try {
    throw StateError(msg);
  } catch (...) {
    record_error(msg);
  }
}

void Context::handle_confirmed_death(int dead) {
  const uint64_t bit = 1ULL << dead;
  const uint64_t prev =
      confirmed_dead_mask_.fetch_or(bit, std::memory_order_acq_rel);
  if ((prev & bit) != 0) return;
  const uint64_t mask = prev | bit;
  // deaths_confirmed bounds every recovery-work counter: increment it (and
  // the paired watchdog-reset counter) before any adoption/replay below.
  fs_watchdog_resets_on_death_.fetch_add(1, std::memory_order_relaxed);
  fs_deaths_confirmed_.fetch_add(1, std::memory_order_release);
  // Exactly one watchdog reset per confirmed death: the death itself is
  // progress (recovery starts), but must not mask a stuck recovery.
  progress_.fetch_add(1, std::memory_order_relaxed);

  uint64_t lost = 0;
  for (size_t ci = 0; ci < pool_.num_classes(); ++ci) {
    lost += pool_.cls(static_cast<int16_t>(ci)).enumerate_rank(dead).size();
  }
  MP_LOG_WARN(
      "rank %d: confirmed death of rank %d (%llu instance(s) homed there, "
      "policy=%s)",
      rank(), dead, static_cast<unsigned long long>(lost),
      to_string(opts_.on_rank_failure));

  const int ndead = std::popcount(mask);
  if (dead == 0) {
    escalate_failure(dead, lost,
                     "rank 0 coordinates termination; the fail-stop model "
                     "covers non-root ranks only");
    return;
  }
  if (opts_.on_rank_failure == FailurePolicy::kAbort) {
    escalate_failure(dead, lost, "policy is abort");
    return;
  }
  if (opts_.on_rank_failure == FailurePolicy::kRetry &&
      ndead > std::max(0, opts_.retry_limit)) {
    escalate_failure(dead, lost, "retry limit exhausted");
    return;
  }
  if (opts_.on_rank_failure == FailurePolicy::kDegrade && ndead > 1) {
    escalate_failure(dead, lost, "degrade tolerates a single death");
    return;
  }

  // -- recovery --
  // 1) Adoption: deterministically partition the lost instances over the
  // survivors; this rank takes the ones effective_rank maps here. The
  // sweep covers every rank in the *cumulative* dead mask, not just the
  // rank confirmed now: under kRetry a second death must also re-home
  // keys whose stand-in (an earlier victim's adopter) just died, or their
  // replays park in held_ready_ forever while every live rank reports
  // done — a silently incomplete "successful" run. Keys this rank already
  // adopted are filtered out up front (before on_adopt runs) so neither
  // expected_ nor a group's external-state reset can double-fire.
  std::vector<std::pair<const TaskClass*, Params>> mine;
  {
    std::lock_guard lock(adopt_mu_);
    for (size_t ci = 0; ci < pool_.num_classes(); ++ci) {
      const TaskClass& c = pool_.cls(static_cast<int16_t>(ci));
      for (int dr = 0; dr < nranks(); ++dr) {
        if (((mask >> dr) & 1ULL) == 0) continue;
        for (const Params& p : c.enumerate_rank(dr)) {
          const TaskKey key{c.cls, p};
          if (effective_rank(key) != rank()) continue;
          if (adopted_keys_.count(key) != 0) continue;
          mine.emplace_back(&c, p);
        }
      }
    }
  }
  // Two-pass adoption: reset external side effects (on_adopt, once per
  // recovery group) BEFORE any adopted instance can become ready — a
  // re-executed writer must never race its own group's reset.
  std::set<std::pair<int16_t, int64_t>> groups_done;
  for (const auto& [c, p] : mine) {
    if (!c->on_adopt) continue;
    if (c->recovery_key) {
      if (!groups_done.emplace(c->cls, c->recovery_key(p)).second) continue;
    }
    c->on_adopt(p, dead);
  }
  if (!mine.empty()) {
    // Grow expected_ BEFORE publishing adoption below: the instant a key
    // appears in adopted_keys_, a worker depositing its final input falls
    // through the park-until-adopted check and executes it, and that
    // execution must never be compared against the pre-adoption target
    // (a rank one own-task short of done would transiently see
    // sum == expected_ and latch completion at the new epoch).
    expected_.fetch_add(mine.size(), std::memory_order_release);
    fs_tasks_adopted_.fetch_add(mine.size(), std::memory_order_release);
  }
  std::vector<std::pair<TaskKey, std::vector<DataBuf>>> drained;
  {
    std::lock_guard lock(adopt_mu_);
    for (const auto& [c, p] : mine) {
      const TaskKey key{c->cls, p};
      adopted_keys_.insert(key);
      auto it = held_ready_.find(key);
      if (it != held_ready_.end()) {
        drained.emplace_back(key, std::move(it->second));
        held_ready_.erase(it);
      }
    }
  }
  for (const auto& [c, p] : mine) {
    if (c->num_task_inputs(p) == 0) {
      make_ready(TaskKey{c->cls, p}, {}, /*worker_hint=*/-1);
    }
  }
  for (auto& [key, inputs] : drained) {
    make_ready(key, std::move(inputs), /*worker_hint=*/-1);
  }

  // 2) Lineage replay: re-deliver every activation this rank ever sent
  // toward the victim, to wherever its consumer lives now. Entries are
  // re-recorded under the new destination so a second death stays covered.
  std::vector<LineageEntry> replay;
  {
    std::lock_guard lock(lin_mu_);
    replay.swap(lineage_[static_cast<size_t>(dead)]);
  }
  for (LineageEntry& e : replay) {
    const int dst = effective_rank(e.consumer);
    fs_lineage_replayed_.fetch_add(1, std::memory_order_release);
    if (dst == rank()) {
      deposit(e.consumer, e.slot, e.buf);
      continue;
    }
    record_lineage(dst, e.consumer, e.slot, e.buf);
    vc::WireWriter w;
    w.put<int64_t>(static_cast<int64_t>(sched_->size()));
    w.put<int16_t>(e.consumer.cls);
    for (int32_t x : e.consumer.p) w.put<int32_t>(x);
    w.put<int8_t>(e.slot);
    w.put_doubles(e.buf->data(), e.buf->size());
    vc::Message m;
    m.src = rank();
    m.dst = dst;
    m.tag = kTagActivate;
    m.payload = w.take();
    {
      std::lock_guard lock(out_mu_);
      outbox_.push_back(std::move(m));
    }
    remote_sent_.fetch_add(1, std::memory_order_relaxed);
  }

  // 3) Re-inject own tasks that were migrated to the victim and never
  // credited: no credit will ever come, so they run here after all. The
  // retained input handles are re-homed (recovery's ownership epoch) —
  // accessing them without that annotation is exactly finding MPA008.
  std::vector<ReadyTask> reinject;
  for (auto it = outstanding_migs_.begin(); it != outstanding_migs_.end();) {
    if (it->second.holder != dead) {
      ++it;
      continue;
    }
    for (const DataBuf& in : it->second.inputs) {
      if (in) MP_ANNOTATE_BUF_REHOME(in.get());
    }
    if (opts_.migration_observer) {
      opts_.migration_observer->reassigned(it->first, rank(), rank());
    }
    ReadyTask t;
    t.key = it->first;
    t.priority = it->second.priority;
    t.inputs = std::move(it->second.inputs);
    t.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    reinject.push_back(std::move(t));
    it = outstanding_migs_.erase(it);
  }
  if (!reinject.empty()) {
    fs_tasks_reinjected_.fetch_add(reinject.size(),
                                   std::memory_order_release);
    sched_->push_batch(std::move(reinject), /*worker=*/-1);
    wake_all();
  }

  // 4) Per-epoch termination reconciliation: any completion latched before
  // this death is stale (this rank may have just adopted work, and rank 0
  // now requires reports covering the new dead set). Re-enter the
  // completion protocol at the new epoch.
  local_complete_.store(false, std::memory_order_release);
  if (rank() == 0) {
    bool broadcast = false;
    {
      std::lock_guard lock(term_mu_);
      if (termination_check_locked() && !job_done_broadcast_) {
        job_done_broadcast_ = true;
        broadcast = true;
      }
    }
    if (broadcast) {
      for (int p = 1; p < nranks(); ++p) {
        if ((mask >> p) & 1ULL) continue;
        rctx_.send(p, kTagJobDone, {});
      }
      done_.store(true, std::memory_order_release);
      wake_all();
    }
  }
  maybe_local_complete();
}

void Context::worker_loop(int wid) {
  ReadyTask t;
  while (true) {
    if (!done_.load(std::memory_order_acquire) && sched_->try_pop(t, wid)) {
      active_workers_.fetch_add(1, std::memory_order_relaxed);
      try {
        execute_task(std::move(t), wid);
      } catch (...) {
        active_workers_.fetch_sub(1, std::memory_order_relaxed);
        record_error();
        return;
      }
      active_workers_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    if (done_.load(std::memory_order_acquire)) return;
    // Block until woken: every push and every done_ transition notifies
    // while holding wake_mu_, so an idle runtime is fully quiescent (no
    // periodic polling) and no wakeup can be lost.
    std::unique_lock lock(wake_mu_);
    wake_cv_.wait(lock, [&] {
      return done_.load(std::memory_order_acquire) || sched_->size() > 0;
    });
  }
}

double Context::watchdog_deadline_ms() const {
  // Outstanding local work scales the deadline: a rank with many tasks
  // still queued behind a slow remote chain is making no *local* progress
  // but is not stuck, and the base interval alone fires spuriously on
  // 1-worker configs running long GEMM chains.
  const uint64_t completed =
      executed_.load(std::memory_order_relaxed) +
      st_credits_received_.load(std::memory_order_relaxed);
  const uint64_t expected = expected_.load(std::memory_order_relaxed);
  const uint64_t outstanding = expected > completed ? expected - completed
                                                    : 0;
  double scale =
      1.0 + opts_.watchdog_scale_per_task *
                static_cast<double>(std::min<uint64_t>(outstanding, 32));
  if (global_termination() &&
      local_complete_.load(std::memory_order_relaxed)) {
    // Locally complete, waiting for the global JOB_DONE: that can trail
    // the slowest rank's tail arbitrarily; be patient before declaring a
    // lost control message.
    scale = std::max(scale, opts_.watchdog_global_scale);
  }
  return opts_.watchdog_timeout_ms * scale;
}

std::string Context::watchdog_dump() {
  size_t pending_keys = 0, pending_arrived = 0;
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    pending_keys += shard.map.size();
    for (const auto& kv : shard.map) {
      pending_arrived += static_cast<size_t>(kv.second.arrived);
    }
  }
  size_t outbox_depth = 0;
  {
    std::lock_guard lock(out_mu_);
    outbox_depth = outbox_.size();
  }
  const StealStats ss = steal_stats();
  // Distinguish "chain migrated, credit pending" from "activation lost":
  // with stealing, a stall with migrated-out tasks uncredited points at a
  // lost STEAL_REPLY/CREDIT, not at the classic lost activation.
  const char* likely = "likely a lost activation";
  if (failure_active() &&
      fs_deaths_confirmed_.load(std::memory_order_relaxed) > 0) {
    likely = "recovering from a confirmed rank death — adopted or replayed "
             "chain(s) still outstanding";
  } else if (stealing_active()) {
    if (ss.credits_received < ss.tasks_migrated_out) {
      likely = "chain(s) migrated out await credits — STEAL_REPLY or "
               "CREDIT lost in the fabric";
    } else if (local_complete_.load(std::memory_order_relaxed)) {
      likely = "locally complete, awaiting global termination — "
               "LOCAL_DONE or JOB_DONE lost in the fabric";
    }
  }
  std::ostringstream os;
  os << "PTG watchdog: rank " << rank() << " made no progress for "
     << watchdog_deadline_ms() << " ms with tasks outstanding (" << likely
     << ")."
     << " executed=" << executed_.load() << "/" << expected_.load()
     << " pending_deposit_keys=" << pending_keys
     << " pending_deposits_arrived=" << pending_arrived
     << " ready_queue=" << sched_->size()
     << " outbox_depth=" << outbox_depth
     << " mailbox_depth=" << rctx_.mailbox().size()
     << " remote_activations_sent=" << remote_sent_.load();
  if (stealing_active()) {
    os << " credits=" << ss.credits_received << "/" << ss.tasks_migrated_out
       << " migrated_in=" << ss.tasks_migrated_in
       << " credits_sent=" << ss.credits_sent
       << " foreign_pending=" << foreign_pending_.load()
       << " steal_outstanding=" << steal_outstanding_.load();
    if (opts_.migration_observer) {
      const std::string ledger = opts_.migration_observer->describe();
      if (!ledger.empty()) os << " ledger={" << ledger << "}";
    }
  }
  if (failure_active()) {
    size_t held = 0;
    {
      std::lock_guard lock(adopt_mu_);
      held = held_ready_.size();
    }
    os << " dead_mask=0x" << std::hex
       << confirmed_dead_mask_.load(std::memory_order_relaxed) << std::dec
       << " held_ready=" << held << " failure={" << failure_stats().describe()
       << "}";
  }
  return os.str();
}

void Context::comm_loop() {
  vc::Mailbox& mb = rctx_.mailbox();
  uint64_t watchdog_progress = progress_.load(std::memory_order_relaxed);
  auto watchdog_mark = std::chrono::steady_clock::now();
  if (failure_active()) {
    const auto start = std::chrono::steady_clock::now();
    for (auto& t : last_heard_) t = start;
    next_heartbeat_ = start + ms_to_us(opts_.heartbeat_interval_ms);
  }
  while (true) {
    // Fail-stop self check: if this rank was crash-injected, go silent
    // immediately — no drain, no abort broadcast, no logging. From the
    // survivors' point of view this rank simply stopped talking.
    if (rctx_.is_dead()) {
      killed_.store(true, std::memory_order_release);
      done_.store(true, std::memory_order_release);
      wake_all();
      return;
    }
    // Drain the outbox: workers enqueue remote activations, the comm thread
    // performs the actual transfers (the paper's dedicated comm core).
    bool sent_any = false;
    for (;;) {
      vc::Message m;
      {
        std::lock_guard lock(out_mu_);
        if (outbox_.empty()) break;
        m = std::move(outbox_.front());
        outbox_.pop_front();
      }
      const double t0 = opts_.enable_tracing ? now() : 0.0;
      rctx_.send(m.dst, m.tag, std::move(m.payload));
      if (opts_.enable_tracing) {
        comm_events_.push_back(
            TraceEvent{rank(), -1, -1, {0, 0, 0}, t0, now(), true});
      }
      progress_.fetch_add(1, std::memory_order_relaxed);
      sent_any = true;
    }

    // Poll for inbound activations. Only messages that move real work —
    // activations (deposit() bumps), credits, steal replies that carry
    // tasks, shipments out of serve_steal_request — count as watchdog
    // progress. Counting every pop would let the idle steal chatter of a
    // stalled job (requests and empty replies bouncing between ranks
    // whose ready queues are all empty) reset the deadline forever, and
    // a lost activation would hang the run instead of tripping the
    // watchdog.
    auto msg = sent_any ? mb.try_pop() : mb.pop_wait(100us);
    while (msg) {
      if (failure_active() && msg->src >= 0 && msg->src < nranks()) {
        const size_t s = static_cast<size_t>(msg->src);
        if ((confirmed_dead_mask_.load(std::memory_order_acquire) >> s) &
            1ULL) {
          // Fence the dead epoch: anything a confirmed-dead rank sent is
          // superseded by recovery (its chains are re-executed wholly), and
          // letting a straggler credit/activation through would double
          // count against the reconciled termination state.
          fs_fenced_dropped_.fetch_add(1, std::memory_order_relaxed);
          msg = mb.try_pop();
          continue;
        }
        // Piggybacked liveness: ANY message is proof of life.
        last_heard_[s] = std::chrono::steady_clock::now();
        if (peer_suspect_[s] != 0) {
          peer_suspect_[s] = 0;
          fs_suspicions_cleared_.fetch_add(1, std::memory_order_release);
        }
      }
      // One case per WireTag enumerator (tools/lint.py enforces the switch
      // stays exhaustive as tags are added — a silently dropped tag is the
      // PR 6 livelock class); the default catches garbage off the wire.
      switch (msg->tag) {
      case kTagActivate: {
        try {
          vc::WireReader r(msg->payload);
          const int64_t load = r.get<int64_t>();  // piggybacked load hint
          if (msg->src >= 0 &&
              static_cast<size_t>(msg->src) < load_hints_.size()) {
            load_hints_[static_cast<size_t>(msg->src)] = load;
          }
          TaskKey key;
          key.cls = r.get<int16_t>();
          for (auto& x : key.p) x = r.get<int32_t>();
          const int slot = r.get<int8_t>();
          // Pooled (annotated) buffer so the lifecycle checker tracks the
          // received copy exactly like a locally-produced one; the move
          // assignment also recycles the vector's allocation.
          auto data = make_buf_pooled(0);
          *data = r.get_doubles();
          deposit(key, slot, std::move(data));
        } catch (...) {
          record_error();
        }
        break;
      }
      case kTagAbort: {
        try {
          const std::string reason(msg->payload.begin(), msg->payload.end());
          throw StateError(
              reason.empty()
                  ? "PTG run aborted: task failure on rank " +
                        std::to_string(msg->src)
                  : "PTG run aborted by rank " + std::to_string(msg->src) +
                        ": " + reason);
        } catch (...) {
          record_error();
        }
        break;
      }
      case kTagStealRequest:
        serve_steal_request(*msg);
        break;
      case kTagStealReply:
        absorb_steal_reply(*msg);
        break;
      case kTagCredit: {
        try {
          vc::WireReader r(msg->payload);
          const int64_t load = r.get<int64_t>();
          if (msg->src >= 0 &&
              static_cast<size_t>(msg->src) < load_hints_.size()) {
            load_hints_[static_cast<size_t>(msg->src)] = load;
          }
          TaskKey key;
          key.cls = r.get<int16_t>();
          for (auto& x : key.p) x = r.get<int32_t>();
          if (opts_.migration_observer) {
            opts_.migration_observer->credited(key, rank(), msg->src);
          }
          // The migrated task retired at its holder; release the retained
          // re-injection copy (failure runs only).
          outstanding_migs_.erase(key);
          st_credits_received_.fetch_add(1, std::memory_order_release);
          // A migrated task retired somewhere: real forward progress.
          progress_.fetch_add(1, std::memory_order_relaxed);
          maybe_local_complete();
        } catch (...) {
          record_error();
        }
        break;
      }
      case kTagLocalDone: {
        if (rank() == 0) {
          uint64_t sender_dead_mask = 0;
          if (!msg->payload.empty()) {
            try {
              vc::WireReader r(msg->payload);
              sender_dead_mask = r.get<uint64_t>();
            } catch (...) {
              // Malformed mask: treat as a pre-death (epoch 0) report.
            }
          }
          const bool fresh = note_rank_done(msg->src, sender_dead_mask);
          // Only a FIRST report is progress: the periodic resends of an
          // already-counted rank must not keep resetting the watchdog.
          if (fresh) progress_.fetch_add(1, std::memory_order_relaxed);
          // A repeated report after JOB_DONE means the src missed the
          // broadcast (dropped in the fabric): replay it point-to-point.
          if (!fresh && done_.load(std::memory_order_acquire)) {
            rctx_.send(msg->src, kTagJobDone, {});
          }
        } else {
          MP_LOG_WARN("comm thread: rank %d got LOCAL_DONE but is not the "
                      "coordinator",
                      rank());
        }
        break;
      }
      case kTagJobDone:
        done_.store(true, std::memory_order_release);
        wake_all();
        break;
      case kTagHeartbeat:
        // Liveness was refreshed above; answer probes / count answers.
        // Deliberately NOT progress: heartbeat chatter from a stalled job
        // must not reset the watchdog (same discipline as steal chatter;
        // protocol::work_moving is the canonical rule).
        on_heartbeat(*msg);
        break;
      default:
        MP_LOG_WARN("comm thread: dropping message with unknown tag %d",
                    msg->tag);
        break;
      }
      msg = mb.try_pop();
    }

    if (global_termination()) {
      const auto now_tp = std::chrono::steady_clock::now();
      if (stealing_active()) steal_agent_tick(now_tp);
      if (failure_active()) detector_tick(now_tp);
      // Periodically repeat the local-done report until JOB_DONE arrives:
      // together with rank 0's replay above this makes global termination
      // survive dropped control messages. The report always carries the
      // current dead mask — after a death the resend IS the new epoch's
      // report.
      if (rank() != 0 && !done_.load(std::memory_order_acquire) &&
          local_complete_.load(std::memory_order_acquire) &&
          now_tp >= next_done_resend_) {
        vc::WireWriter w;
        w.put<uint64_t>(confirmed_dead_mask_.load(std::memory_order_acquire));
        rctx_.send(0, kTagLocalDone, w.take());
        next_done_resend_ = now_tp + ms_to_us(opts_.termination_resend_ms);
      }
    }

    // Watchdog: if tasks are outstanding but nothing has moved — no task
    // executed, no deposit, no message in or out, no worker busy, nothing
    // queued — for the (outstanding-work-scaled) deadline, an activation
    // was lost somewhere. Surface a diagnostic StateError instead of
    // hanging forever.
    if (opts_.watchdog_timeout_ms > 0.0 &&
        !done_.load(std::memory_order_acquire)) {
      const uint64_t p = progress_.load(std::memory_order_relaxed);
      const auto now_tp = std::chrono::steady_clock::now();
      if (p != watchdog_progress ||
          active_workers_.load(std::memory_order_relaxed) > 0 ||
          sched_->size() > 0) {
        watchdog_progress = p;
        watchdog_mark = now_tp;
      } else if (std::chrono::duration<double, std::milli>(
                     now_tp - watchdog_mark)
                     .count() > watchdog_deadline_ms()) {
        const std::string dump = watchdog_dump();
        MP_LOG_ERROR("%s", dump.c_str());
        try {
          throw StateError(dump);
        } catch (...) {
          record_error();
        }
      }
    }

    if (comm_stop_.load(std::memory_order_acquire)) {
      bool outbox_empty;
      {
        std::lock_guard lock(out_mu_);
        outbox_empty = outbox_.empty();
      }
      if (!outbox_empty) continue;  // flush remaining transfers first
      // Workers are gone and the outbox is flushed. Drain the mailbox one
      // final time so late inbound messages (e.g. aborts or activations
      // still in flight from peers) are logged, not silently abandoned.
      // Steal-protocol control traffic (a request racing shutdown, an
      // empty reply, a JOB_DONE replay) is expected to straggle and is not
      // worth a warning.
      size_t discarded = 0;
      while (auto late = mb.try_pop()) {
        if (late->tag == kTagStealRequest || late->tag == kTagStealReply ||
            late->tag == kTagLocalDone || late->tag == kTagJobDone ||
            late->tag == kTagHeartbeat) {
          continue;
        }
        ++discarded;
        MP_LOG_WARN(
            "comm thread: rank %d discarding late message at shutdown "
            "(src=%d tag=%d, %zu bytes)",
            rank(), late->src, late->tag, late->payload.size());
      }
      if (discarded > 0) {
        MP_LOG_WARN("comm thread: rank %d discarded %zu late message(s)",
                    rank(), discarded);
      }
      return;
    }
  }
}

Context::~Context() {
  if (!threads_started_) return;
  {
    std::lock_guard lock(submit_mu_);
    shutdown_ = true;
  }
  submit_cv_.notify_all();
  for (auto& t : persistent_workers_) {
    if (t.joinable()) t.join();
  }
  if (comm_thread_.joinable()) comm_thread_.join();
}

void Context::start_persistent_threads() {
  if (threads_started_) return;
  threads_started_ = true;
  comm_thread_ = std::thread([this] { persistent_comm_main(); });
  for (int w = 1; w < opts_.num_workers; ++w) {
    persistent_workers_.emplace_back([this, w] { persistent_worker_main(w); });
  }
}

void Context::arm_submission() {
  {
    std::lock_guard lock(submit_mu_);
    workers_parked_ = 0;
    comm_parked_ = false;
    ++submit_epoch_;
  }
  submit_cv_.notify_all();
}

void Context::wait_workers_parked() {
  std::unique_lock lock(submit_mu_);
  submit_cv_.wait(lock, [&] { return workers_parked_ == opts_.num_workers - 1; });
}

void Context::wait_comm_parked() {
  std::unique_lock lock(submit_mu_);
  submit_cv_.wait(lock, [&] { return comm_parked_; });
}

void Context::persistent_worker_main(int wid) {
  uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock lock(submit_mu_);
      submit_cv_.wait(lock, [&] { return shutdown_ || submit_epoch_ > seen; });
      if (shutdown_) return;
      seen = submit_epoch_;
    }
    worker_loop(wid);
    {
      std::lock_guard lock(submit_mu_);
      ++workers_parked_;
    }
    submit_cv_.notify_all();
  }
}

void Context::persistent_comm_main() {
  uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock lock(submit_mu_);
      submit_cv_.wait(lock, [&] { return shutdown_ || submit_epoch_ > seen; });
      if (shutdown_) return;
      seen = submit_epoch_;
    }
    comm_loop();
    {
      std::lock_guard lock(submit_mu_);
      comm_parked_ = true;
    }
    submit_cv_.notify_all();
  }
}

void Context::reset_for_resubmission() {
  // ---- collective quiesce. The previous run's closing barrier proves no
  // rank is still sending, but the fabric's delayed-delivery queue may hold
  // messages whose simulated arrival time lies beyond that barrier (latency
  // / reorder jitter). Rank 0 flushes them so the mailboxes hold everything
  // the finished job will ever produce, then every rank drains its own
  // stragglers (late JOB_DONE replays, credits, heartbeats) and rebases its
  // dedup windows — otherwise drop gaps pin the watermark and the windows
  // grow O(submissions) on a lossy fabric.
  if (rank() == 0) rctx_.cluster().fabric().quiesce();
  rctx_.barrier();

  reset_local_state(runs_completed_.load(std::memory_order_relaxed));

  // ---- everyone is reset before anyone may send into the fresh windows.
  rctx_.barrier();
}

void Context::reset_local_state(uint64_t submission) {
  // ---- stats discipline first: snapshot every counter pair with its
  // acquire-ordered reader and validate, BEFORE any counter below is zeroed
  // (tools/lint.py: reset-stats-discipline). A persistent Context must
  // never carry an inconsistent pair — or a torn one — into the next
  // submission.
  if (!prev_submission_errored_) {
    const StealStats steal_snap = steal_stats();
    const std::string steal_bad = steal_snap.validate();
    MP_REQUIRE(steal_bad.empty(), "reset_for_resubmission: " + steal_bad);
    const FailureStats failure_snap = failure_stats();
    const std::string failure_bad = failure_snap.validate();
    MP_REQUIRE(failure_bad.empty(), "reset_for_resubmission: " + failure_bad);
    const SchedStats sched_snap = sched_->stats();
    const std::string sched_bad = sched_snap.validate();
    MP_REQUIRE(sched_bad.empty(), "reset_for_resubmission: " + sched_bad);
  }
  // else: the previous submission unwound mid-flight, so its counter pairs
  // are legitimately torn (a push whose pop never happened); the reset's
  // whole job is to discard that state, not to certify it.

  ResetReport rep;
  rep.submission = submission;

  // ---- drain stragglers (late JOB_DONE replays, credits, heartbeats) and
  // rebase the dedup windows — otherwise drop gaps pin the watermark and
  // the windows grow O(submissions) on a lossy fabric. The caller has
  // guaranteed the mailbox holds everything the finished job will ever
  // produce, so this drain is complete.
  vc::Mailbox& mb = rctx_.mailbox();
  while (mb.try_pop()) ++rep.stale_messages;
  mb.rebase_windows();

  // ---- per-submission dependency + recovery state
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    rep.pending_deposits += shard.map.size();
    rep.activated_keys += shard.activated.size();
    shard.map.clear();
    shard.activated.clear();
  }
  {
    std::lock_guard lock(adopt_mu_);
    rep.adopted_keys = adopted_keys_.size();
    rep.held_ready = held_ready_.size();
    adopted_keys_.clear();
    held_ready_.clear();
  }
  {
    std::lock_guard lock(lin_mu_);
    for (auto& per_dst : lineage_) {
      rep.lineage_entries += per_dst.size();
      per_dst.clear();  // bounds the O(activations) retention to one run
    }
  }
  rep.outstanding_migrations = outstanding_migs_.size();
  outstanding_migs_.clear();
  {
    std::lock_guard lock(out_mu_);
    rep.outbox_messages = outbox_.size();
    outbox_.clear();
  }
  reset_report_ = rep;

  // ---- scheduler: recreate rather than drain — after a clean run the
  // queues are empty, after an aborted one the leftover ReadyTasks (and
  // their pooled DataBufs) are released here, and either way the contention
  // counters restart from zero (validated above).
  sched_ = Scheduler::create(opts_.policy, opts_.num_workers);

  // ---- re-arm counters and latches. Parked threads give these stores no
  // one to race; release keeps the counter-pair discipline's edges intact
  // for the next submission's first acquire snapshot.
  expected_.store(0, std::memory_order_release);
  executed_.store(0, std::memory_order_release);
  seq_.store(0, std::memory_order_relaxed);
  remote_sent_.store(0, std::memory_order_relaxed);
  progress_.store(0, std::memory_order_relaxed);
  st_requests_sent_.store(0, std::memory_order_release);
  st_requests_received_.store(0, std::memory_order_release);
  st_replies_sent_.store(0, std::memory_order_release);
  st_replies_received_.store(0, std::memory_order_release);
  st_migrated_out_.store(0, std::memory_order_release);
  st_migrated_in_.store(0, std::memory_order_release);
  st_credits_sent_.store(0, std::memory_order_release);
  st_credits_received_.store(0, std::memory_order_release);
  fs_heartbeats_sent_.store(0, std::memory_order_release);
  fs_heartbeats_received_.store(0, std::memory_order_release);
  fs_probes_sent_.store(0, std::memory_order_release);
  fs_probes_answered_.store(0, std::memory_order_release);
  fs_suspicions_.store(0, std::memory_order_release);
  fs_suspicions_cleared_.store(0, std::memory_order_release);
  fs_deaths_confirmed_.store(0, std::memory_order_release);
  fs_tasks_adopted_.store(0, std::memory_order_release);
  fs_lineage_replayed_.store(0, std::memory_order_release);
  fs_tasks_reinjected_.store(0, std::memory_order_release);
  fs_fenced_dropped_.store(0, std::memory_order_release);
  fs_dup_deposits_dropped_.store(0, std::memory_order_release);
  fs_watchdog_resets_on_death_.store(0, std::memory_order_release);
  foreign_pending_.store(0, std::memory_order_relaxed);
  steal_outstanding_.store(0, std::memory_order_relaxed);
  done_.store(false, std::memory_order_relaxed);
  local_complete_.store(false, std::memory_order_relaxed);
  comm_stop_.store(false, std::memory_order_relaxed);
  abort_broadcast_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard lock(error_mu_);
    first_error_ = nullptr;  // a failed submission may be retried
  }
  // The confirmed-dead set is re-discovered each submission: the detector
  // re-confirms still-dead peers from scratch, which also re-runs adoption
  // so the new submission's instances get recovered too.
  confirmed_dead_mask_.store(0, std::memory_order_release);
  if (rank() == 0) {
    std::lock_guard lock(term_mu_);
    std::fill(rank_done_seen_.begin(), rank_done_seen_.end(), uint8_t{0});
    std::fill(rank_done_mask_.begin(), rank_done_mask_.end(), uint64_t{0});
    job_done_broadcast_ = false;
  }
  load_hints_.assign(static_cast<size_t>(nranks()), -1);
  next_steal_at_ = {};
  steal_reply_deadline_ = {};
  next_done_resend_ = {};
  // last_heard_ / suspect_since_ / next_heartbeat_ are re-initialized at
  // comm_loop entry; the sticky suspicion flags are not.
  std::fill(peer_suspect_.begin(), peer_suspect_.end(), uint8_t{0});

  epoch_ = std::chrono::steady_clock::now();
  for (auto& evs : worker_events_) evs.clear();
  comm_events_.clear();
  trace_.clear();
}

void Context::run() {
  if (opts_.persistent) {
    MP_REQUIRE(!killed_.load(std::memory_order_acquire),
               "Context::run: this rank was crash-injected; a killed Context "
               "cannot be resubmitted (std::barrier drop is permanent)");
    MP_REQUIRE(!running_.exchange(true),
               "Context::run: concurrent run() on one Context");
    struct Guard {
      std::atomic<bool>& flag;
      ~Guard() { flag.store(false); }
    } guard{running_};
    if (needs_reset_) reset_for_resubmission();
    // Mark dirty *before* running: if run_submission unwinds (watchdog,
    // task error, abort broadcast) the next submission must still reset —
    // that unwind is collective across live ranks, so they all will.
    needs_reset_ = true;
    prev_submission_errored_ = true;
    run_submission();
    prev_submission_errored_ = false;
    runs_completed_.fetch_add(1, std::memory_order_release);
    return;
  }
  MP_REQUIRE(!ran_.exchange(true), "Context::run may only be called once");
  run_submission();
  runs_completed_.fetch_add(1, std::memory_order_release);
}

void Context::run_submission() {
  // Pre-execution graph verification (mp-verify pass 1). The graph is the
  // same on every rank, so rank 0 checks it for the whole job; a malformed
  // graph fails fast here instead of silently corrupting results. In
  // persistent mode the pass runs once per Context — the pool and cluster
  // size are fixed for its lifetime — and a template that was already
  // verified at cache-build time skips it entirely (assume_verified).
  if (rank() == 0 && env_verify_enabled() && !opts_.assume_verified &&
      !verified_once_) {
    verified_once_ = true;
    const auto diags = validate_plan();
    if (!diags.empty()) {
      StateError err("MP_VERIFY: task graph failed static verification; " +
                     analysis::render(diags));
      if (opts_.persistent) {
        // Unwind collectively: record_error broadcasts the abort, every
        // rank's threads drain out, and all live ranks meet the error
        // path's barrier below before rethrowing — the Context (and the
        // cluster's barrier) stay usable for a corrected resubmission.
        try {
          throw err;
        } catch (...) {
          record_error(err.what());
        }
      } else {
        // The other ranks are already entering their comm loops; without an
        // abort broadcast they would sit out their full watchdog timeout
        // waiting for activations this rank will never send.
        if (!abort_broadcast_.exchange(true)) {
          for (int r = 0; r < nranks(); ++r) {
            if (r != rank()) rctx_.send(r, kTagAbort, {});
          }
        }
        throw err;
      }
    }
  }

  enumerate_startup();
  if (global_termination()) {
    // A rank with no own tasks is *locally* done immediately but must not
    // exit: it keeps serving the fabric (steal agent, failure detector)
    // until the coordinator's JOB_DONE — that idle capacity is the whole
    // point of inter-node stealing, and under failure detection every rank
    // must keep heartbeating until the job ends globally.
    maybe_local_complete();
  } else if (expected_.load() == 0) {
    done_.store(true);
  }

  if (!opts_.persistent) {
    std::thread comm([this] { comm_loop(); });
    std::vector<std::thread> workers;
    for (int w = 1; w < opts_.num_workers; ++w) {
      workers.emplace_back([this, w] { worker_loop(w); });
    }
    if (!done_.load()) {
      worker_loop(0);  // the calling thread is worker 0
    }
    for (auto& t : workers) t.join();

    comm_stop_.store(true, std::memory_order_release);
    comm.join();
  } else {
    // Steady-state resubmission: no thread churn. The long-lived threads
    // (spawned once, on the first submission) are parked on the submission
    // epoch; arming wakes them straight into their loops.
    start_persistent_threads();
    arm_submission();
    if (!done_.load()) {
      worker_loop(0);  // the calling thread is still worker 0
    }
    wait_workers_parked();
    comm_stop_.store(true, std::memory_order_release);
    wait_comm_parked();
  }

  if (killed_.load(std::memory_order_acquire)) {
    // This rank was crash-injected: stay silent. No rethrow, no result
    // flush, and no final barrier — drop out of all future barriers so the
    // survivors' collectives keep completing without us. The caller must
    // check killed() and skip any further collectives on this rank.
    rctx_.barrier_drop();
    return;
  }

  {
    std::lock_guard lock(error_mu_);
    if (first_error_) {
      // Let the other ranks out of the final barrier before unwinding; the
      // Cluster maps an unwinding rank to arrive_and_drop.
      rctx_.barrier();
      std::rethrow_exception(first_error_);
    }
  }

  if (opts_.enable_tracing) {
    for (auto& evs : worker_events_) {
      for (const auto& e : evs) trace_.add(e);
    }
    for (const auto& e : comm_events_) trace_.add(e);
  }

  // All outputs flushed; synchronize the job before returning control to
  // the embedding application (NWChem in the paper).
  rctx_.barrier();
}

bool Context::try_reset_in_band() {
  // Steady-state fast path: after a *clean* persistent run on a fabric
  // that has never been able to disturb or delay a message, the closing
  // barrier already proves the mailbox is final — every send was delivered
  // synchronously before its sender reached the barrier, and with
  // stealing and failure detection off no control traffic (heartbeats,
  // straggling STEAL_REQUESTs, aborts) can arrive afterwards. The local
  // reset is therefore safe right now, with no quiesce and no extra
  // barriers: the caller (PtgSession) orders it before the next
  // submission by its own all-ranks completion rendezvous. This turns the
  // three collectives of the lazy reset-then-run sequence into one.
  if (!opts_.persistent) return false;
  if (!needs_reset_ || prev_submission_errored_) return false;
  if (killed_.load(std::memory_order_acquire)) return false;
  if (stealing_active() || failure_active()) return false;
  if (!rctx_.cluster().fabric().lossless_immediate()) return false;
  MP_REQUIRE(!running_.exchange(true),
             "Context::try_reset_in_band: concurrent with run()");
  struct Guard {
    std::atomic<bool>& flag;
    ~Guard() { flag.store(false); }
  } guard{running_};
  reset_local_state(runs_completed_.load(std::memory_order_relaxed));
  needs_reset_ = false;
  return true;
}

}  // namespace mp::ptg
