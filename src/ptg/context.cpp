#include "ptg/context.h"

#include <cstdlib>
#include <sstream>
#include <thread>

#include "analysis/graph_verify.h"
#include "support/analysis.h"
#include "support/error.h"
#include "support/log.h"
#include "vc/message.h"

namespace mp::ptg {

using namespace std::chrono_literals;

Context::Context(vc::RankCtx& rank_ctx, const Taskpool& pool, Options opts)
    : rctx_(rank_ctx),
      pool_(pool),
      opts_(opts),
      epoch_(std::chrono::steady_clock::now()) {
  MP_REQUIRE(opts_.num_workers >= 1, "Context: need at least one worker");
  pool_.validate();
  sched_ = Scheduler::create(opts_.policy, opts_.num_workers);
  worker_events_.resize(static_cast<size_t>(opts_.num_workers));
}

std::vector<analysis::Diag> Context::validate_plan() const {
  return analysis::verify_graph(pool_, nranks());
}

namespace {

bool env_verify_enabled() {
  const char* e = std::getenv("MP_VERIFY");
  return e != nullptr && *e != '\0' && std::string(e) != "0";
}

}  // namespace

double Context::effective_priority(const TaskClass& c,
                                   const Params& p) const {
  if (!opts_.use_priorities || !c.priority) return 0.0;
  return c.priority(p);
}

void Context::enumerate_startup() {
  for (size_t ci = 0; ci < pool_.num_classes(); ++ci) {
    const TaskClass& c = pool_.cls(static_cast<int16_t>(ci));
    for (const Params& p : c.enumerate_rank(rank())) {
      MP_DCHECK(c.rank_of(p) == rank(),
                "enumerate_rank returned instance not owned by this rank");
      ++expected_;
      if (c.num_task_inputs(p) == 0) {
        make_ready(TaskKey{c.cls, p}, {}, /*worker_hint=*/-1);
      }
    }
  }
}

void Context::wake_one() {
  // Taking wake_mu_ orders this notify against a worker's predicate check,
  // closing the lost-wakeup window between its failed try_pop and its wait.
  std::lock_guard lock(wake_mu_);
  wake_cv_.notify_one();
}

void Context::wake_all() {
  std::lock_guard lock(wake_mu_);
  wake_cv_.notify_all();
}

ReadyTask Context::build_task(const TaskKey& key,
                              std::vector<DataBuf> inputs) {
  ReadyTask t;
  t.key = key;
  t.inputs = std::move(inputs);
  t.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  t.priority = effective_priority(pool_.cls(key.cls), key.p);
  return t;
}

void Context::make_ready(const TaskKey& key, std::vector<DataBuf> inputs,
                         int worker_hint) {
  sched_->push(build_task(key, std::move(inputs)), worker_hint);
  wake_one();
}

void Context::deposit(const TaskKey& key, int slot, DataBuf buf,
                      std::vector<ReadyTask>* batch) {
  MP_REQUIRE(slot >= 0 && slot < 128, "deposit: bad input slot");
  Shard& shard = shards_[TaskKeyHash{}(key) % kShards];
  std::vector<DataBuf> ready_inputs;
  {
    std::lock_guard lock(shard.mu);
    Pending& e = shard.map[key];
    if (!e.initialized) {
      e.threshold = pool_.cls(key.cls).num_task_inputs(key.p);
      e.initialized = true;
      MP_REQUIRE(e.threshold > 0,
                 "deposit into a task class with no task inputs");
    }
    if (e.inputs.size() <= static_cast<size_t>(slot)) {
      e.inputs.resize(static_cast<size_t>(slot) + 1);
    }
    MP_REQUIRE(e.inputs[static_cast<size_t>(slot)] == nullptr,
               "double deposit into the same input slot");
    e.inputs[static_cast<size_t>(slot)] = std::move(buf);
    // The shard is a hand-off point: the depositing thread publishes the
    // buffer, the thread completing the threshold takes the whole set over.
    MP_ANNOTATE_CHANNEL_SEND(&shard);
    progress_.fetch_add(1, std::memory_order_relaxed);
    if (++e.arrived < e.threshold) return;
    MP_ANNOTATE_CHANNEL_RECV(&shard);
    ready_inputs = std::move(e.inputs);
    shard.map.erase(key);
  }
  if (batch) {
    batch->push_back(build_task(key, std::move(ready_inputs)));
  } else {
    make_ready(key, std::move(ready_inputs), /*worker_hint=*/-1);
  }
}

void Context::execute_task(ReadyTask t, int wid) {
  const TaskClass& c = pool_.cls(t.key.cls);
  TaskCtx tctx(this, t.key, std::move(t.inputs), wid);

  MP_ANNOTATE_TASK_BEGIN(c.name.c_str(), t.key.p.data(), 3);
  for (const DataBuf& in : tctx.inputs_view()) {
    if (in) MP_ANNOTATE_BUF_READ(in.get());
  }
  const double t0 = opts_.enable_tracing ? now() : 0.0;
  c.body(tctx);
  for (const DataBuf& out : tctx.outputs()) {
    if (out) MP_ANNOTATE_BUF_WRITE(out.get());
  }
  if (opts_.enable_tracing) {
    worker_events_[static_cast<size_t>(wid)].push_back(
        TraceEvent{rank(), wid, t.key.cls, t.key.p, t0, now(), false});
  }

  // Route outputs to consumers. Locally-completed activations are gathered
  // into one batch and published with a single push_batch onto this
  // worker's own deque (one size/notify round trip for all siblings).
  if (c.route_outputs) {
    std::vector<ReadyTask> batch;
    std::vector<OutRoute> routes;
    c.route_outputs(t.key.p, routes);
    for (const OutRoute& r : routes) {
      const TaskClass& cc = pool_.cls(r.consumer.cls);
      MP_REQUIRE(static_cast<size_t>(r.out_slot) < tctx.outputs().size() &&
                     tctx.outputs()[static_cast<size_t>(r.out_slot)] != nullptr,
                 "task '" + c.name + "' routed output slot " +
                     std::to_string(r.out_slot) + " but never set it");
      const DataBuf& buf = tctx.outputs()[static_cast<size_t>(r.out_slot)];
      const int dst = cc.rank_of(r.consumer.p);
      if (dst == rank()) {
        deposit(r.consumer, r.in_slot, buf, &batch);
      } else {
        vc::WireWriter w;
        w.put<int16_t>(r.consumer.cls);
        for (int32_t x : r.consumer.p) w.put<int32_t>(x);
        w.put<int8_t>(r.in_slot);
        w.put_doubles(buf->data(), buf->size());
        vc::Message m;
        m.src = rank();
        m.dst = dst;
        m.tag = kTagActivate;
        m.payload = w.take();
        {
          std::lock_guard lock(out_mu_);
          outbox_.push_back(std::move(m));
        }
        remote_sent_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!batch.empty()) {
      const size_t n = batch.size();
      sched_->push_batch(std::move(batch), wid);
      // This worker keeps one task for itself (it pops its own bottom
      // next); any extra siblings are worth waking peers for.
      if (n > 1) {
        wake_all();
      } else {
        wake_one();
      }
    }
  }

  MP_ANNOTATE_TASK_END();
  progress_.fetch_add(1, std::memory_order_relaxed);
  if (executed_.fetch_add(1, std::memory_order_acq_rel) + 1 == expected_) {
    done_.store(true, std::memory_order_release);
    wake_all();
  }
}

void Context::record_error() {
  {
    std::lock_guard lock(error_mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  // Tell every other rank: their remaining tasks may depend on activations
  // this rank will never send, so they must unwind too or the job
  // deadlocks at scale.
  if (!abort_broadcast_.exchange(true)) {
    for (int r = 0; r < nranks(); ++r) {
      if (r == rank()) continue;
      rctx_.send(r, kTagAbort, {});
    }
  }
  // Force a shutdown: remaining tasks will never run, but every thread
  // must unwind cleanly so run() can rethrow.
  done_.store(true, std::memory_order_release);
  wake_all();
}

void Context::worker_loop(int wid) {
  ReadyTask t;
  while (true) {
    if (!done_.load(std::memory_order_acquire) && sched_->try_pop(t, wid)) {
      active_workers_.fetch_add(1, std::memory_order_relaxed);
      try {
        execute_task(std::move(t), wid);
      } catch (...) {
        active_workers_.fetch_sub(1, std::memory_order_relaxed);
        record_error();
        return;
      }
      active_workers_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    if (done_.load(std::memory_order_acquire)) return;
    // Block until woken: every push and every done_ transition notifies
    // while holding wake_mu_, so an idle runtime is fully quiescent (no
    // periodic polling) and no wakeup can be lost.
    std::unique_lock lock(wake_mu_);
    wake_cv_.wait(lock, [&] {
      return done_.load(std::memory_order_acquire) || sched_->size() > 0;
    });
  }
}

std::string Context::watchdog_dump() {
  size_t pending_keys = 0, pending_arrived = 0;
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    pending_keys += shard.map.size();
    for (const auto& kv : shard.map) {
      pending_arrived += static_cast<size_t>(kv.second.arrived);
    }
  }
  size_t outbox_depth = 0;
  {
    std::lock_guard lock(out_mu_);
    outbox_depth = outbox_.size();
  }
  std::ostringstream os;
  os << "PTG watchdog: rank " << rank() << " made no progress for "
     << opts_.watchdog_timeout_ms
     << " ms with tasks outstanding (likely a lost activation)."
     << " executed=" << executed_.load() << "/" << expected_
     << " pending_deposit_keys=" << pending_keys
     << " pending_deposits_arrived=" << pending_arrived
     << " ready_queue=" << sched_->size()
     << " outbox_depth=" << outbox_depth
     << " mailbox_depth=" << rctx_.mailbox().size()
     << " remote_activations_sent=" << remote_sent_.load();
  return os.str();
}

void Context::comm_loop() {
  vc::Mailbox& mb = rctx_.mailbox();
  uint64_t watchdog_progress = progress_.load(std::memory_order_relaxed);
  auto watchdog_mark = std::chrono::steady_clock::now();
  while (true) {
    // Drain the outbox: workers enqueue remote activations, the comm thread
    // performs the actual transfers (the paper's dedicated comm core).
    bool sent_any = false;
    for (;;) {
      vc::Message m;
      {
        std::lock_guard lock(out_mu_);
        if (outbox_.empty()) break;
        m = std::move(outbox_.front());
        outbox_.pop_front();
      }
      const double t0 = opts_.enable_tracing ? now() : 0.0;
      rctx_.send(m.dst, m.tag, std::move(m.payload));
      if (opts_.enable_tracing) {
        comm_events_.push_back(
            TraceEvent{rank(), -1, -1, {0, 0, 0}, t0, now(), true});
      }
      progress_.fetch_add(1, std::memory_order_relaxed);
      sent_any = true;
    }

    // Poll for inbound activations.
    auto msg = sent_any ? mb.try_pop() : mb.pop_wait(100us);
    while (msg) {
      progress_.fetch_add(1, std::memory_order_relaxed);
      if (msg->tag == kTagActivate) {
        try {
          vc::WireReader r(msg->payload);
          TaskKey key;
          key.cls = r.get<int16_t>();
          for (auto& x : key.p) x = r.get<int32_t>();
          const int slot = r.get<int8_t>();
          // Pooled (annotated) buffer so the lifecycle checker tracks the
          // received copy exactly like a locally-produced one; the move
          // assignment also recycles the vector's allocation.
          auto data = make_buf_pooled(0);
          *data = r.get_doubles();
          deposit(key, slot, std::move(data));
        } catch (...) {
          record_error();
        }
      } else if (msg->tag == kTagAbort) {
        try {
          throw StateError("PTG run aborted: task failure on rank " +
                           std::to_string(msg->src));
        } catch (...) {
          record_error();
        }
      } else {
        MP_LOG_WARN("comm thread: dropping message with unknown tag %d",
                    msg->tag);
      }
      msg = mb.try_pop();
    }

    // Watchdog: if tasks are outstanding but nothing has moved — no task
    // executed, no deposit, no message in or out, no worker busy, nothing
    // queued — for watchdog_timeout_ms, an activation was lost somewhere.
    // Surface a diagnostic StateError instead of hanging forever.
    if (opts_.watchdog_timeout_ms > 0.0 &&
        !done_.load(std::memory_order_acquire)) {
      const uint64_t p = progress_.load(std::memory_order_relaxed);
      const auto now_tp = std::chrono::steady_clock::now();
      if (p != watchdog_progress ||
          active_workers_.load(std::memory_order_relaxed) > 0 ||
          sched_->size() > 0) {
        watchdog_progress = p;
        watchdog_mark = now_tp;
      } else if (std::chrono::duration<double, std::milli>(
                     now_tp - watchdog_mark)
                     .count() > opts_.watchdog_timeout_ms) {
        const std::string dump = watchdog_dump();
        MP_LOG_ERROR("%s", dump.c_str());
        try {
          throw StateError(dump);
        } catch (...) {
          record_error();
        }
      }
    }

    if (comm_stop_.load(std::memory_order_acquire)) {
      bool outbox_empty;
      {
        std::lock_guard lock(out_mu_);
        outbox_empty = outbox_.empty();
      }
      if (!outbox_empty) continue;  // flush remaining transfers first
      // Workers are gone and the outbox is flushed. Drain the mailbox one
      // final time so late inbound messages (e.g. aborts or activations
      // still in flight from peers) are logged, not silently abandoned.
      size_t discarded = 0;
      while (auto late = mb.try_pop()) {
        ++discarded;
        MP_LOG_WARN(
            "comm thread: rank %d discarding late message at shutdown "
            "(src=%d tag=%d, %zu bytes)",
            rank(), late->src, late->tag, late->payload.size());
      }
      if (discarded > 0) {
        MP_LOG_WARN("comm thread: rank %d discarded %zu late message(s)",
                    rank(), discarded);
      }
      return;
    }
  }
}

void Context::run() {
  MP_REQUIRE(!ran_.exchange(true), "Context::run may only be called once");

  // Pre-execution graph verification (mp-verify pass 1). The graph is the
  // same on every rank, so rank 0 checks it for the whole job; a malformed
  // graph fails fast here instead of silently corrupting results.
  if (rank() == 0 && env_verify_enabled()) {
    const auto diags = validate_plan();
    if (!diags.empty()) {
      // The other ranks are already entering their comm loops; without an
      // abort broadcast they would sit out their full watchdog timeout
      // waiting for activations this rank will never send.
      if (!abort_broadcast_.exchange(true)) {
        for (int r = 0; r < nranks(); ++r) {
          if (r != rank()) rctx_.send(r, kTagAbort, {});
        }
      }
      throw StateError("MP_VERIFY: task graph failed static verification; " +
                       analysis::render(diags));
    }
  }

  enumerate_startup();
  if (expected_ == 0) done_.store(true);

  std::thread comm([this] { comm_loop(); });
  std::vector<std::thread> workers;
  for (int w = 1; w < opts_.num_workers; ++w) {
    workers.emplace_back([this, w] { worker_loop(w); });
  }
  if (!done_.load()) {
    worker_loop(0);  // the calling thread is worker 0
  }
  for (auto& t : workers) t.join();

  comm_stop_.store(true, std::memory_order_release);
  comm.join();

  {
    std::lock_guard lock(error_mu_);
    if (first_error_) {
      // Let the other ranks out of the final barrier before unwinding; the
      // Cluster maps an unwinding rank to arrive_and_drop.
      rctx_.barrier();
      std::rethrow_exception(first_error_);
    }
  }

  if (opts_.enable_tracing) {
    for (auto& evs : worker_events_) {
      for (const auto& e : evs) trace_.add(e);
    }
    for (const auto& e : comm_events_) trace_.add(e);
  }

  // All outputs flushed; synchronize the job before returning control to
  // the embedding application (NWChem in the paper).
  rctx_.barrier();
}

}  // namespace mp::ptg
