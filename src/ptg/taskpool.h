// The Taskpool is our Parameterized Task Graph: a set of task classes whose
// instances, dataflow and placement are given *symbolically* as functions of
// the task parameters — nothing is materialized up front. This mirrors the
// PTG abstraction of the paper (Fig. 1): the runtime evaluates
//   rank_of(p)        — the ":" placement line,
//   priority(p)       — the ";" priority line,
//   num_task_inputs(p)— how many input flows arrive from other tasks,
//   route_outputs(p)  — the "->" dataflow lines,
// on demand, per instance. Inputs a task fetches itself (e.g. READ tasks
// pulling from a Global Array inside their body) are *not* task inputs.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ptg/types.h"

namespace mp::ptg {

class Context;

/// Execution-time view handed to a task body.
class TaskCtx {
 public:
  TaskCtx(Context* rt, TaskKey key, std::vector<DataBuf> inputs, int worker)
      : rt_(rt), key_(key), inputs_(std::move(inputs)), worker_(worker) {}

  const TaskKey& key() const { return key_; }
  const Params& params() const { return key_.p; }
  int worker() const { return worker_; }

  /// Input buffer deposited into `slot` by a predecessor task.
  const DataBuf& input(int slot) const;

  /// Take ownership of an input buffer (valid when this task is the flow's
  /// only consumer, e.g. the RW chain flow of matrix C).
  DataBuf take_input(int slot);

  /// Publish an output buffer; the runtime routes it per route_outputs().
  void set_output(int slot, DataBuf buf);

  /// The runtime context executing this task (rank id, tracing, ...).
  Context& runtime() const { return *rt_; }

  // -- used by the runtime after the body returns --
  std::vector<DataBuf>& outputs() { return outputs_; }

  /// All input buffers (null where take_input() moved one out). Used by the
  /// runtime's lifecycle instrumentation.
  const std::vector<DataBuf>& inputs_view() const { return inputs_; }

 private:
  Context* rt_;
  TaskKey key_;
  std::vector<DataBuf> inputs_;
  std::vector<DataBuf> outputs_;
  int worker_;
};

/// Symbolic description of one task class.
struct TaskClass {
  std::string name;
  int16_t cls = -1;

  /// Placement: which rank owns (executes) instance p. Required.
  std::function<int(const Params&)> rank_of;

  /// Relative priority of instance p; higher runs first among ready tasks.
  /// Optional — defaults to 0 (no priority), the paper's v2 configuration.
  std::function<double(const Params&)> priority;

  /// Number of input slots filled by predecessor tasks (the activation
  /// threshold). Instances with 0 task inputs are startup tasks. Required.
  std::function<int(const Params&)> num_task_inputs;

  /// Number of output slots instance p sets (0 for sink tasks). Optional —
  /// when present, the static verifier (analysis/graph_verify.h) checks
  /// refcount conservation: every declared output slot must reach at least
  /// one consumer and no route may leave an undeclared slot.
  std::function<int(const Params&)> num_outputs;

  /// Dataflow: append one OutRoute per "->" edge of instance p. Optional —
  /// sink tasks (e.g. WRITE_C) route nothing.
  std::function<void(const Params&, std::vector<OutRoute>&)> route_outputs;

  /// All instances of this class owned by `rank`. Used to compute the
  /// per-rank task count for termination detection and to seed startup
  /// tasks. Required.
  std::function<std::vector<Params>(int rank)> enumerate_rank;

  /// The task body. Required.
  std::function<void(TaskCtx&)> body;

  /// Whether ready instances may be migrated to another rank by the
  /// inter-node steal agent. Classes whose body relies on rank-local state
  /// beyond their task inputs (e.g. WRITE_C serializing through a per-rank
  /// mutex onto locally-owned Global Array blocks) must opt out.
  bool migratable = true;

  // -- rank-failure recovery hooks (DESIGN.md §10); both optional --

  /// Recovery co-adoption group of instance p. When a rank dies, every lost
  /// instance with the same recovery_key is adopted by the same survivor,
  /// and on_adopt runs once per group before any of them is re-executed.
  /// Classes that accumulate into shared external state (WRITE_C adding
  /// into a Global Array block) set this to the target-block id so *all*
  /// writers of one block recover together; without it each instance is its
  /// own group.
  std::function<int64_t(const Params&)> recovery_key;

  /// Called on the adopting rank's comm thread — once per (dead rank,
  /// recovery group), before any adopted instance of the group is made
  /// ready — to reset external side effects of the group's partial pre-
  /// crash execution. WRITE_C uses this to zero its Global Array block so
  /// full re-execution accumulates exactly once.
  std::function<void(const Params&, int dead_rank)> on_adopt;
};

/// A complete PTG: an ordered set of task classes. Class ids are assigned
/// densely in registration order.
class Taskpool {
 public:
  /// Register a class; fills in tc.cls and returns it.
  int16_t add_class(TaskClass tc);

  const TaskClass& cls(int16_t id) const;

  /// Mutable access, for wiring route_outputs between classes whose ids are
  /// only known after registration (dataflow cycles in the *description*,
  /// not in the DAG).
  TaskClass& mutable_cls(int16_t id) {
    return const_cast<TaskClass&>(static_cast<const Taskpool*>(this)->cls(id));
  }

  size_t num_classes() const { return classes_.size(); }

  /// Find a class id by name; -1 if absent.
  int16_t find(const std::string& name) const;

  /// Validate that every registered class has its required functions.
  /// Throws InvalidArgument describing the first problem found.
  void validate() const;

 private:
  std::vector<TaskClass> classes_;
};

}  // namespace mp::ptg
