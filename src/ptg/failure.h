// Rank-failure tolerance types shared by the runtime (src/ptg/context.*),
// the executor front end (src/tce/ptg_exec.*) and the tests: the job-level
// recovery policy and the failure detector / recovery counters.
//
// Failure model (DESIGN.md §10): fail-stop, non-root ranks only. A dead rank
// goes silent — it never sends corrupt data, and it never comes back within
// a job (revive_rank exists for transport-layer tests only). Rank 0 is the
// termination coordinator and is assumed reliable; its death escalates to a
// StateError under every policy.
#pragma once

#include <cstdint>
#include <string>

namespace mp::ptg {

/// What the job does when a non-root rank is confirmed dead.
enum class FailurePolicy {
  /// Today's behavior, made prompt and structured: every rank raises a
  /// StateError naming the dead rank and the lost chains instead of hanging
  /// until the watchdog fires.
  kAbort,
  /// Re-execute the dead rank's lost chains on survivors, keeping the
  /// original key->rank map for everything else. Tolerates up to
  /// Options::retry_limit deaths, then escalates like kAbort.
  kRetry,
  /// Rebuild the distribution over the survivors: every key homed on the
  /// dead rank is deterministically re-homed by hashing over the surviving
  /// communicator. Tolerates one death, then escalates.
  kDegrade,
};

inline const char* to_string(FailurePolicy p) {
  switch (p) {
    case FailurePolicy::kAbort:
      return "abort";
    case FailurePolicy::kRetry:
      return "retry";
    case FailurePolicy::kDegrade:
      return "degrade";
  }
  return "?";
}

/// Per-rank counters for the heartbeat failure detector and lineage-based
/// recovery. All counters are written by the comm thread only; snapshots
/// from other threads are taken after Context::run returns (or are
/// tolerated as advisory in watchdog dumps).
struct FailureStats {
  /// Explicit HEARTBEAT messages sent while idle (piggybacked liveness on
  /// ordinary traffic is free and not counted here).
  uint64_t heartbeats_sent = 0;
  uint64_t heartbeats_received = 0;
  /// Probes: a direct "are you alive?" sent when a peer becomes suspect.
  uint64_t probes_sent = 0;
  uint64_t probes_answered = 0;
  /// Suspicion lifecycle: every suspicion either clears (the peer spoke) or
  /// ends in a confirmed death.
  uint64_t suspicions = 0;
  uint64_t suspicions_cleared = 0;
  uint64_t deaths_confirmed = 0;
  /// Recovery: chains re-homed to this rank from a dead peer, lineage
  /// entries replayed toward survivors, and in-flight migrated chains
  /// re-injected after their holder died.
  uint64_t tasks_adopted = 0;
  uint64_t lineage_replayed = 0;
  uint64_t tasks_reinjected = 0;
  /// Messages from confirmed-dead sources fenced (discarded) on arrival.
  uint64_t fenced_dropped = 0;
  /// Duplicate deposits dropped by the recovery-idempotence filter (a
  /// replayed activation racing the original delivery).
  uint64_t dup_deposits_dropped = 0;
  /// Watchdog deadline resets attributed to a confirmed death (the
  /// regression pair in test_failure pins this to exactly one per death).
  uint64_t watchdog_resets_on_death = 0;

  /// Internal-consistency self check, same contract as FabricStats: empty
  /// string when consistent, else a description of the violated invariant.
  std::string validate() const {
    if (suspicions_cleared > suspicions) {
      return "FailureStats: suspicions_cleared (" +
             std::to_string(suspicions_cleared) + ") > suspicions (" +
             std::to_string(suspicions) + ")";
    }
    if (deaths_confirmed > suspicions) {
      return "FailureStats: deaths_confirmed (" +
             std::to_string(deaths_confirmed) + ") > suspicions (" +
             std::to_string(suspicions) + ")";
    }
    if (probes_answered > probes_sent) {
      return "FailureStats: probes_answered (" +
             std::to_string(probes_answered) + ") > probes_sent (" +
             std::to_string(probes_sent) + ")";
    }
    if (watchdog_resets_on_death != deaths_confirmed) {
      return "FailureStats: watchdog_resets_on_death (" +
             std::to_string(watchdog_resets_on_death) +
             ") != deaths_confirmed (" + std::to_string(deaths_confirmed) +
             ")";
    }
    if ((tasks_adopted > 0 || lineage_replayed > 0 || tasks_reinjected > 0) &&
        deaths_confirmed == 0) {
      return "FailureStats: recovery work recorded with deaths_confirmed == 0";
    }
    return {};
  }

  std::string describe() const {
    return "hb_sent=" + std::to_string(heartbeats_sent) +
           " hb_recv=" + std::to_string(heartbeats_received) +
           " probes=" + std::to_string(probes_sent) + "/" +
           std::to_string(probes_answered) +
           " suspicions=" + std::to_string(suspicions) + " (cleared " +
           std::to_string(suspicions_cleared) + ")" +
           " deaths=" + std::to_string(deaths_confirmed) +
           " adopted=" + std::to_string(tasks_adopted) +
           " replayed=" + std::to_string(lineage_replayed) +
           " reinjected=" + std::to_string(tasks_reinjected) +
           " fenced=" + std::to_string(fenced_dropped) +
           " dup_drop=" + std::to_string(dup_deposits_dropped);
  }
};

}  // namespace mp::ptg
