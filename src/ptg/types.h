// Core vocabulary types of the PTG runtime.
//
// A task instance is identified by (task-class id, parameter vector); the
// parameter vector plays the role of PaRSEC's symbolic task parameters
// (e.g. GEMM(L1, L2)). Data moves between tasks as reference-counted
// buffers ("data copies" in PaRSEC terminology).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "support/analysis.h"

namespace mp::ptg {

/// Up to three integer parameters per task instance (the CC PTGs use at
/// most (L1, L2, i)). Unused slots must be zero so keys compare equal.
using Params = std::array<int32_t, 3>;

inline constexpr Params params_of(int32_t a, int32_t b = 0, int32_t c = 0) {
  return Params{a, b, c};
}

/// Identifies one task instance across the whole distributed run.
struct TaskKey {
  int16_t cls = -1;
  Params p{0, 0, 0};

  friend bool operator==(const TaskKey&, const TaskKey&) = default;
};

struct TaskKeyHash {
  size_t operator()(const TaskKey& k) const {
    // FNV-style mix of the four ints.
    uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(static_cast<uint64_t>(static_cast<uint16_t>(k.cls)));
    for (int32_t x : k.p) mix(static_cast<uint64_t>(static_cast<uint32_t>(x)));
    return static_cast<size_t>(h);
  }
};

/// A reference-counted data buffer flowing between tasks. A buffer routed to
/// exactly one consumer may be mutated in place by that consumer (this is
/// how the serial-chain RW flow of matrix C works); buffers fanned out to
/// multiple consumers must be treated as read-only.
using DataBuf = std::shared_ptr<std::vector<double>>;

inline DataBuf make_buf(size_t n, double fill = 0.0) {
#if defined(MP_ANALYSIS) && MP_ANALYSIS
  // Annotating deleter so the lifecycle checker tracks ALL task-flow
  // buffers uniformly, pooled or not (an unannotated buffer would make
  // every MP_ANNOTATE_BUF_READ/WRITE on it a silent no-op).
  auto* v = new std::vector<double>(n, fill);
  MP_ANNOTATE_BUF_CREATE(v);
  return DataBuf(v, [](std::vector<double>* p) {
    MP_ANNOTATE_BUF_DESTROY(p);
    delete p;
  });
#else
  return std::make_shared<std::vector<double>>(n, fill);
#endif
}

namespace pool_detail {

/// Tracks whether this thread's BufPool is still alive. Kept at namespace
/// scope and trivially destructible so a buffer deleter running during
/// thread teardown (after the pool's own destructor) sees `false` and
/// falls back to plain delete instead of touching a dead pool.
inline thread_local bool tls_pool_alive = false;

struct BufPool {
  static constexpr size_t kMaxCached = 64;
  std::vector<std::vector<double>*> free;
  BufPool() { tls_pool_alive = true; }
  ~BufPool() {
    tls_pool_alive = false;
    for (auto* v : free) delete v;
  }
};

inline BufPool& tls_pool() {
  static thread_local BufPool pool;
  return pool;
}

}  // namespace pool_detail

/// Like make_buf, but recycles the underlying vector through a thread-local
/// free list: a task-grain allocation pattern (every READ/GEMM/SORT body
/// makes one buffer per task) reaches a steady state with no heap traffic.
/// The buffer may be released on a different thread than it was acquired
/// on; it simply joins the releasing thread's pool.
inline DataBuf make_buf_pooled(size_t n, double fill = 0.0) {
  auto& pool = pool_detail::tls_pool();
  std::vector<double>* v;
  if (!pool.free.empty()) {
    v = pool.free.back();
    pool.free.pop_back();
    v->assign(n, fill);
  } else {
    v = new std::vector<double>(n, fill);
  }
  // Lifecycle tracking happens at the pool boundary, not the heap boundary:
  // a recycled handout is a *new* object to the checker, so a stale
  // reference to the previous incarnation at the same address is reported
  // as use-after-release — the exact bug class address-based tools (TSan,
  // ASan) lose once the pool recycles storage.
  MP_ANNOTATE_BUF_CREATE(v);
  return DataBuf(v, [](std::vector<double>* p) {
    MP_ANNOTATE_BUF_DESTROY(p);
    if (pool_detail::tls_pool_alive) {
      auto& pool = pool_detail::tls_pool();
      if (pool.free.size() < pool_detail::BufPool::kMaxCached) {
        pool.free.push_back(p);
        return;
      }
    }
    delete p;
  });
}

/// One routed output edge: after the producer runs, its output buffer in
/// slot `out_slot` is deposited into `consumer`'s input slot `in_slot`.
struct OutRoute {
  TaskKey consumer;
  int8_t in_slot = 0;
  int8_t out_slot = 0;
};

}  // namespace mp::ptg
