// Ready-task schedulers. The paper's PaRSEC default scheduler balances
// several objectives and honours task priorities; we provide:
//   kPriority — one shared priority queue (highest priority first, FIFO
//               among equals). This is what all measured variants use; with
//               every priority equal it degenerates to FIFO, which is
//               exactly the paper's v2 behaviour.
//   kFifo     — insertion order, priorities ignored.
//   kLifo     — newest first (cache-friendly depth-first execution).
//   kStealing — per-worker lock-free Chase-Lev deques with work stealing,
//               modelling PaRSEC's intra-node dynamic load balancing. The
//               owning worker pushes and pops its own bottom without locks;
//               thieves race on the top end with a single CAS. Tasks pushed
//               by non-worker threads (comm thread, startup enumeration)
//               land in a shared priority "injection" queue that workers
//               drain before stealing, so the paper's priority-driven
//               startup pipelining is preserved; tasks spawned by a worker
//               run LIFO on that worker (cache-hot chain successors).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ptg/types.h"

namespace mp::ptg {

struct ReadyTask {
  double priority = 0.0;
  uint64_t seq = 0;  ///< global insertion order, for deterministic ties
  /// Home rank of a task migrated here by inter-node stealing; -1 for a
  /// locally-owned task. The executor credits the origin rank instead of
  /// counting the completion locally (see Context).
  int origin = -1;
  TaskKey key;
  std::vector<DataBuf> inputs;
};

enum class SchedPolicy { kPriority, kFifo, kLifo, kStealing };

const char* to_string(SchedPolicy p);

/// Contention/steal counters, cheap relaxed atomics kept on the hot paths.
/// `contended_*` counts mutex acquisitions that had to wait (try_lock
/// failed first); for kStealing these only arise on the shared injection
/// queue, so the delta against the central scheduler is the design's win.
struct SchedStats {
  uint64_t steals = 0;          ///< tasks taken from another worker's deque
  uint64_t steal_attempts = 0;  ///< top-end probes (incl. failed CAS races)
  uint64_t contended_pushes = 0;
  uint64_t contended_pops = 0;

  /// Internal-consistency self check: a successful steal is always preceded
  /// by the attempt that found it, so steals can never exceed
  /// steal_attempts in an acquire-ordered snapshot. Returns an empty string
  /// when consistent, else a description of the violated invariant (used as
  /// a stress-test assertion message).
  std::string validate() const {
    if (steals > steal_attempts) {
      return "SchedStats: steals (" + std::to_string(steals) +
             ") > steal_attempts (" + std::to_string(steal_attempts) + ")";
    }
    return {};
  }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Enqueue a ready task. `worker` is the id of the pushing worker, or -1
  /// when pushed by the comm thread / startup enumeration. For kStealing,
  /// a push with worker >= 0 MUST be issued from that worker's own thread
  /// (the deque bottom is single-owner); any thread may push with -1.
  virtual void push(ReadyTask t, int worker) = 0;

  /// Enqueue several sibling activations at once (a completed task waking
  /// its successors). One size/notify round trip instead of len(ts).
  virtual void push_batch(std::vector<ReadyTask>&& ts, int worker) {
    for (auto& t : ts) push(std::move(t), worker);
    ts.clear();
  }

  /// Dequeue the best task for `worker`; false if none available anywhere.
  virtual bool try_pop(ReadyTask& out, int worker) = 0;

  /// Remove up to `max_n` ready tasks for migration to another node (the
  /// victim side of an inter-node steal). Uses the non-worker pop path, so
  /// any thread may call it; tasks the caller decides not to migrate can be
  /// re-pushed with worker = -1. Returns the number harvested.
  virtual size_t harvest(std::vector<ReadyTask>& out, size_t max_n) {
    size_t n = 0;
    ReadyTask t;
    while (n < max_n && try_pop(t, -1)) {
      out.push_back(std::move(t));
      ++n;
    }
    return n;
  }

  /// Approximate number of queued tasks, O(1): a relaxed atomic counter
  /// maintained on push/pop, never a sweep over shard locks. Exact once
  /// the queues are quiescent.
  virtual size_t size() const = 0;

  /// Number of successful steals (kStealing only; 0 otherwise).
  virtual uint64_t steals() const { return 0; }

  /// Snapshot of the contention counters.
  virtual SchedStats stats() const { return {}; }

  static std::unique_ptr<Scheduler> create(SchedPolicy policy,
                                           int num_workers);
};

}  // namespace mp::ptg
