// Ready-task schedulers. The paper's PaRSEC default scheduler balances
// several objectives and honours task priorities; we provide:
//   kPriority — one shared priority queue (highest priority first, FIFO
//               among equals). This is what all measured variants use; with
//               every priority equal it degenerates to FIFO, which is
//               exactly the paper's v2 behaviour.
//   kFifo     — insertion order, priorities ignored.
//   kLifo     — newest first (cache-friendly depth-first execution).
//   kStealing — per-worker priority queues with work stealing, modelling
//               PaRSEC's intra-node dynamic load balancing explicitly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ptg/types.h"

namespace mp::ptg {

struct ReadyTask {
  double priority = 0.0;
  uint64_t seq = 0;  ///< global insertion order, for deterministic ties
  TaskKey key;
  std::vector<DataBuf> inputs;
};

enum class SchedPolicy { kPriority, kFifo, kLifo, kStealing };

const char* to_string(SchedPolicy p);

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Enqueue a ready task. `worker` is the id of the pushing worker, or -1
  /// when pushed by the comm thread / startup enumeration.
  virtual void push(ReadyTask t, int worker) = 0;

  /// Dequeue the best task for `worker`; false if none available anywhere.
  virtual bool try_pop(ReadyTask& out, int worker) = 0;

  /// Approximate number of queued tasks (for stats/tests).
  virtual size_t size() const = 0;

  /// Number of successful steals (kStealing only; 0 otherwise).
  virtual uint64_t steals() const { return 0; }

  static std::unique_ptr<Scheduler> create(SchedPolicy policy,
                                           int num_workers);
};

}  // namespace mp::ptg
