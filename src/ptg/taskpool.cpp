#include "ptg/taskpool.h"

#include "support/error.h"

namespace mp::ptg {

const DataBuf& TaskCtx::input(int slot) const {
  MP_REQUIRE(slot >= 0 && static_cast<size_t>(slot) < inputs_.size(),
             "TaskCtx::input: bad slot");
  MP_REQUIRE(inputs_[static_cast<size_t>(slot)] != nullptr,
             "TaskCtx::input: slot was never deposited");
  return inputs_[static_cast<size_t>(slot)];
}

DataBuf TaskCtx::take_input(int slot) {
  MP_REQUIRE(slot >= 0 && static_cast<size_t>(slot) < inputs_.size(),
             "TaskCtx::take_input: bad slot");
  return std::move(inputs_[static_cast<size_t>(slot)]);
}

void TaskCtx::set_output(int slot, DataBuf buf) {
  MP_REQUIRE(slot >= 0 && slot < 128, "TaskCtx::set_output: bad slot");
  if (outputs_.size() <= static_cast<size_t>(slot)) {
    outputs_.resize(static_cast<size_t>(slot) + 1);
  }
  outputs_[static_cast<size_t>(slot)] = std::move(buf);
}

int16_t Taskpool::add_class(TaskClass tc) {
  tc.cls = static_cast<int16_t>(classes_.size());
  classes_.push_back(std::move(tc));
  return classes_.back().cls;
}

const TaskClass& Taskpool::cls(int16_t id) const {
  MP_REQUIRE(id >= 0 && static_cast<size_t>(id) < classes_.size(),
             "Taskpool::cls: bad class id");
  return classes_[static_cast<size_t>(id)];
}

int16_t Taskpool::find(const std::string& name) const {
  for (const auto& c : classes_) {
    if (c.name == name) return c.cls;
  }
  return -1;
}

void Taskpool::validate() const {
  for (const auto& c : classes_) {
    MP_REQUIRE(!c.name.empty(), "Taskpool: class with empty name");
    MP_REQUIRE(static_cast<bool>(c.rank_of),
               "Taskpool: class '" + c.name + "' missing rank_of");
    MP_REQUIRE(static_cast<bool>(c.num_task_inputs),
               "Taskpool: class '" + c.name + "' missing num_task_inputs");
    MP_REQUIRE(static_cast<bool>(c.enumerate_rank),
               "Taskpool: class '" + c.name + "' missing enumerate_rank");
    MP_REQUIRE(static_cast<bool>(c.body),
               "Taskpool: class '" + c.name + "' missing body");
  }
}

}  // namespace mp::ptg
