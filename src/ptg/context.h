// The per-rank runtime context: PaRSEC's engine. Owns the worker threads
// and the communication thread of one rank, tracks dependency arrivals per
// task instance, schedules ready tasks by priority, ships output buffers to
// remote consumers through the virtual-cluster fabric, and detects
// termination (every locally-owned task instance executed).
//
// With `Options::enable_stealing`, the comm thread doubles as an inter-node
// steal agent (John et al., "Distributed Work Stealing in a Task-Based
// Dataflow Runtime"): when the local queues run dry it picks a victim —
// randomized, biased by load hints piggybacked on every activation and
// steal message — and sends a STEAL_REQUEST. The victim harvests up to
// half of its ready tasks (capped at steal_max_batch, skipping classes
// marked non-migratable) and ships them, input buffers included, in a
// STEAL_REPLY. Because migrated tasks execute on a foreign rank,
// termination switches to a credit scheme: the thief sends one CREDIT per
// completed foreign task back to its home rank, a rank is *locally* done
// when executed + credits_received == expected, local-done reports flow to
// rank 0, and rank 0 broadcasts JOB_DONE once every rank has reported —
// which also proves no migrated task (always counted at its home rank) is
// still in flight anywhere.
//
// Usage (inside a vc::Cluster SPMD region):
//   Taskpool pool;  ... add classes ...
//   Context ctx(rank_ctx, pool, opts);
//   ctx.run();      // collective; returns when the whole DAG has executed
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/diagnostics.h"
#include "ptg/failure.h"
#include "ptg/protocol.h"
#include "ptg/scheduler.h"
#include "ptg/taskpool.h"
#include "ptg/trace.h"
#include "support/rng.h"
#include "vc/cluster.h"

namespace mp::ptg {

/// Callback interface for recording task-ownership transfers outside the
/// runtime (the ga layer keeps a MigrationLedger so placement lookups stay
/// coherent while a task is resident on a foreign rank). `migrated` fires
/// on the victim when a task is handed to the fabric; `credited` fires on
/// the victim again when the thief's completion credit arrives. Both may be
/// called from comm or worker threads concurrently.
class MigrationObserver {
 public:
  virtual ~MigrationObserver() = default;
  virtual void migrated(const TaskKey& key, int home, int holder) = 0;
  virtual void credited(const TaskKey& key, int home, int holder) = 0;
  /// Fires on the home rank when an in-flight migrated task is forcibly
  /// re-homed because its holder was confirmed dead (rank-failure recovery):
  /// the ledger must drop the holder entry — no credit will ever arrive.
  virtual void reassigned(const TaskKey& key, int home, int new_holder) {
    (void)key;
    (void)home;
    (void)new_holder;
  }
  /// One-line state summary for watchdog dumps ("" when idle).
  virtual std::string describe() const { return {}; }
};

struct Options {
  int num_workers = 2;            ///< compute threads per rank
  SchedPolicy policy = SchedPolicy::kPriority;
  bool use_priorities = true;     ///< false reproduces the paper's v2
  bool enable_tracing = false;    ///< record TraceEvents for Figs. 10-13
  /// If no local progress happens for this long while tasks are still
  /// outstanding (e.g. an activation was lost in the fabric), run() raises
  /// a StateError carrying a diagnostic dump instead of hanging forever.
  /// 0 disables the watchdog. The effective deadline is scaled by the
  /// outstanding-work estimate (see watchdog_scale_per_task): a rank with
  /// many tasks still queued behind a long remote GEMM chain is slow, not
  /// stuck, and must not fire spuriously on 1-worker configs.
  double watchdog_timeout_ms = 30000.0;
  /// Deadline scale per locally-outstanding task, clamped at 32 tasks:
  /// deadline = timeout * (1 + scale * min(outstanding, 32)).
  double watchdog_scale_per_task = 1.0;
  /// Deadline multiplier while this rank is locally complete but waiting
  /// for the global JOB_DONE (stealing runs only): global termination can
  /// legitimately trail the slowest rank's tail by a long way.
  double watchdog_global_scale = 8.0;

  // -- inter-node work stealing (no effect on single-rank jobs) --
  bool enable_stealing = false;
  /// Max tasks migrated per STEAL_REPLY (the victim also never gives away
  /// more than half of its ready queue).
  int steal_max_batch = 16;
  /// Minimum interval between two steal requests from this rank.
  double steal_cooldown_ms = 1.0;
  /// Extra wait after an empty reply before trying the next victim.
  double steal_backoff_ms = 5.0;
  /// Give up on an outstanding request after this long (reply lost in the
  /// fabric) and allow a new one.
  double steal_reply_timeout_ms = 100.0;
  /// Re-send interval for the local-done report / JOB_DONE replay, making
  /// the termination protocol robust to dropped control messages.
  double termination_resend_ms = 250.0;
  /// Seed for randomized victim selection (mixed with the rank id).
  uint64_t steal_seed = 0x57ea15eed5ULL;
  /// Optional ownership-transfer recorder (see MigrationObserver). Not
  /// owned; must outlive run().
  MigrationObserver* migration_observer = nullptr;

  // -- rank-failure tolerance (DESIGN.md §10; no effect on 1-rank jobs) --

  /// Run the heartbeat failure detector on the comm thread and recover
  /// from confirmed non-root rank deaths per `on_rank_failure`. Liveness is
  /// piggybacked on every inbound message; explicit HEARTBEATs fill idle
  /// gaps. Forces the global (rank-0-coordinated) termination protocol even
  /// without stealing, since per-rank completion is no longer independent.
  ///
  /// Memory cost: recovery replays whole chains, so while this flag is on
  /// each rank retains a lineage handle for every remote activation it
  /// sends (per destination) and every locally-activated TaskKey, for the
  /// whole run — O(total activations) even when no rank ever dies. Nothing
  /// can be pruned before job end, because any destination may still die.
  /// Leave this off (the default, which pays nothing) unless the job
  /// actually needs to survive rank deaths.
  bool enable_failure_detection = false;
  /// Interval between explicit HEARTBEAT rounds while not done.
  double heartbeat_interval_ms = 20.0;
  /// Silence from a peer longer than this makes it *suspect*: a direct
  /// probe is sent, which the peer's comm thread answers immediately — a
  /// slow rank clears its suspicion, a dead one cannot.
  double suspect_after_ms = 150.0;
  /// A suspect that stays silent this much longer is *confirmed* dead and
  /// recovery begins. Total detection latency ~ suspect + confirm.
  double confirm_after_ms = 300.0;
  /// What to do when a non-root rank is confirmed dead (rank 0's death
  /// always escalates — it is the termination coordinator).
  FailurePolicy on_rank_failure = FailurePolicy::kAbort;
  /// kRetry tolerates up to this many deaths, then escalates. kDegrade
  /// always tolerates exactly one.
  int retry_limit = 1;

  // -- persistent runtime (template-cached resubmission path, DESIGN.md §11)

  /// Keep the worker and comm threads alive across run() calls: run() may
  /// be invoked repeatedly on the same Context, and every call after the
  /// first starts with a collective between-runs reset (dependency counters
  /// re-armed, stats pairs validated then drained, mailbox dedup windows
  /// rebased, lineage logs and recovery state cleared). Threads park on a
  /// submission epoch between runs instead of being joined, so a steady-
  /// state submission pays no thread spin-up. All ranks of the job must
  /// agree on this flag — the reset contains barriers, like run() itself.
  bool persistent = false;
  /// The taskpool's graph was already verified for this cluster size (the
  /// template cache runs mp-verify once when a template is built): skip the
  /// MP_VERIFY pass entirely, even on the first submission.
  bool assume_verified = false;
};

/// Counters of the inter-node steal protocol, one instance per rank. All
/// pairs follow the repo's counter-pair discipline (bounded counter
/// incremented with release after its bound, snapshot reads the bounded one
/// first with acquire), so validate() holds for mid-run snapshots too.
struct StealStats {
  uint64_t requests_sent = 0;
  uint64_t requests_received = 0;
  uint64_t replies_sent = 0;      ///< includes empty replies
  uint64_t replies_received = 0;
  uint64_t tasks_migrated_out = 0;
  uint64_t tasks_migrated_in = 0;
  uint64_t credits_sent = 0;      ///< foreign tasks completed here
  uint64_t credits_received = 0;  ///< own tasks completed remotely

  /// Internal-consistency self check; "" when consistent, else the
  /// violated invariant (stress tests assert on this).
  std::string validate() const {
    auto bound = [](const char* what, uint64_t a, uint64_t b,
                    const char* limit) -> std::string {
      return std::string("StealStats: ") + what + " (" + std::to_string(a) +
             ") > " + limit + " (" + std::to_string(b) + ")";
    };
    if (replies_sent > requests_received) {
      return bound("replies_sent", replies_sent, requests_received,
                   "requests_received");
    }
    if (replies_received > requests_sent) {
      return bound("replies_received", replies_received, requests_sent,
                   "requests_sent");
    }
    if (tasks_migrated_out > 0 && replies_sent == 0) {
      return "StealStats: tasks_migrated_out (" +
             std::to_string(tasks_migrated_out) + ") > 0 with no reply sent";
    }
    if (credits_received > tasks_migrated_out) {
      return bound("credits_received", credits_received, tasks_migrated_out,
                   "tasks_migrated_out");
    }
    if (credits_sent > tasks_migrated_in) {
      return bound("credits_sent", credits_sent, tasks_migrated_in,
                   "tasks_migrated_in");
    }
    return {};
  }
};

class Context {
 public:
  // The wire tags live in ptg/protocol.h (shared with the mp-explore model
  // checker); these aliases keep the runtime's existing spelling.
  /// Message tag used for dependency activations on the fabric.
  static constexpr int kTagActivate = kWireActivate;
  /// Broadcast when a rank aborts (task body threw): peers stop waiting
  /// for activations that will never come and unwind too.
  static constexpr int kTagAbort = kWireAbort;
  /// Inter-node stealing: idle thief asking a victim for work.
  static constexpr int kTagStealRequest = kWireStealRequest;
  /// Victim's answer: a (possibly empty) batch of migrated ready tasks.
  static constexpr int kTagStealReply = kWireStealReply;
  /// Thief -> home rank: one migrated task finished executing.
  static constexpr int kTagCredit = kWireCredit;
  /// Rank -> rank 0: executed + credits_received == expected here.
  static constexpr int kTagLocalDone = kWireLocalDone;
  /// Rank 0 -> all: every rank reported local-done; the job is finished.
  static constexpr int kTagJobDone = kWireJobDone;
  /// Failure detector liveness traffic: periodic beat, probe ("answer me
  /// now"), or probe answer — see the flag byte in the payload. Never
  /// counted as watchdog progress (protocol::work_moving).
  static constexpr int kTagHeartbeat = kWireHeartbeat;

  Context(vc::RankCtx& rank_ctx, const Taskpool& pool, Options opts = {});
  /// Persistent mode: parks are woken for shutdown and the long-lived
  /// threads are joined. One-shot mode: no threads outlive run(); no-op.
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// Execute the PTG to completion. Collective across ranks (ends with a
  /// barrier). May be called once per Context — or repeatedly with
  /// Options::persistent, where each call after the first begins with the
  /// collective between-runs reset and reuses the parked threads. When the
  /// MP_VERIFY environment variable is set (to anything but "0"), rank 0
  /// first runs validate_plan() and the whole job aborts with a StateError
  /// carrying the diagnostics if the graph is malformed; in persistent mode
  /// the pass runs once per Context (the graph and cluster size cannot
  /// change) and Options::assume_verified elides it altogether.
  void run();

  /// Per-submission state observed (and cleared) by the most recent
  /// between-runs reset — persistent mode only. Sizes are captured before
  /// clearing, so tests can assert nothing leaks across submissions: after
  /// a clean (no-fault) run, every field except `submission` and
  /// `lineage_entries`/`activated_keys` (which bound the documented
  /// O(activations) retention to exactly one submission) must be zero.
  struct ResetReport {
    uint64_t submission = 0;      ///< 1-based index of the finished run
    size_t pending_deposits = 0;  ///< task instances still awaiting inputs
    size_t activated_keys = 0;    ///< failure-mode dedup set entries
    size_t lineage_entries = 0;   ///< remote-activation lineage retained
    size_t held_ready = 0;        ///< parked pre-adoption input sets
    size_t adopted_keys = 0;      ///< keys adopted from dead ranks
    size_t outstanding_migrations = 0;  ///< migrated-out, never credited
    size_t stale_messages = 0;    ///< late mailbox stragglers drained
    size_t outbox_messages = 0;   ///< unflushed outbound sends dropped
  };
  const ResetReport& last_reset_report() const { return reset_report_; }

  /// Persistent-mode steady-state fast path: perform the between-runs
  /// reset right now, with no collectives, if it is provably safe — the
  /// previous run() completed cleanly, stealing and failure detection are
  /// off, and the fabric is Fabric::lossless_immediate() (so the closing
  /// barrier already proved the mailbox final and nothing can straggle
  /// in). Returns true if the reset ran; false means the next run() will
  /// fall back to the collective quiesce-and-drain reset. The caller must
  /// order this before any rank begins the next submission (PtgSession
  /// does so via its all-ranks completion rendezvous) and must call it
  /// from the same thread that calls run(). Call only after extracting
  /// per-run results — the reset zeroes every counter.
  bool try_reset_in_band();

  /// Completed run() calls on this Context.
  uint64_t submissions() const {
    return runs_completed_.load(std::memory_order_acquire);
  }

  /// Statically verify the taskpool's materialized graph for this cluster
  /// size (acyclicity, no dropped/duplicated edges, no orphan tasks, no
  /// leaked buffers — see analysis/graph_verify.h for the diagnostic
  /// codes). Pure inspection: no task body runs. Returns the diagnostics;
  /// empty means the graph is well-formed.
  std::vector<analysis::Diag> validate_plan() const;

  int rank() const { return rctx_.rank(); }
  int nranks() const { return rctx_.nranks(); }
  const Options& options() const { return opts_; }

  /// Post-run statistics. tasks_executed counts bodies run on THIS rank:
  /// its own tasks (executed_) plus migrated-in foreign ones (each of
  /// which sent a credit). tasks_completed counts this rank's OWN tasks
  /// finished anywhere — executed here plus credits received from thieves
  /// — the quantity termination is defined over. Without stealing the two
  /// are equal.
  uint64_t tasks_executed() const {
    return executed_.load() + st_credits_sent_.load();
  }
  uint64_t tasks_completed() const {
    return executed_.load() + st_credits_received_.load();
  }
  uint64_t expected_tasks() const { return expected_.load(); }
  uint64_t remote_activations_sent() const { return remote_sent_.load(); }
  uint64_t scheduler_steals() const { return sched_->steals(); }
  SchedStats scheduler_stats() const { return sched_->stats(); }
  StealStats steal_stats() const;
  /// Failure-detector / recovery counters (see FailureStats; snapshot after
  /// run() for the equality invariants to hold).
  FailureStats failure_stats() const;
  /// True when THIS rank was crash-injected: run() returned because the
  /// rank died, not because the job finished.
  bool killed() const { return killed_.load(std::memory_order_acquire); }
  /// Bitmask of peers this rank has confirmed dead.
  uint64_t confirmed_dead_mask() const {
    return confirmed_dead_mask_.load(std::memory_order_acquire);
  }

  /// Post-run trace of this rank (empty unless enable_tracing).
  const Trace& trace() const { return trace_; }

 private:
  struct Pending {
    std::vector<DataBuf> inputs;
    int arrived = 0;
    int threshold = 0;
    bool initialized = false;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<TaskKey, Pending, TaskKeyHash> map;
    /// Keys whose activation threshold completed here (failure runs only):
    /// any further deposit for them is a recovery replay racing the
    /// original delivery, dropped as a duplicate.
    std::unordered_set<TaskKey, TaskKeyHash> activated;
  };
  static constexpr int kShards = 16;

  void enumerate_startup();
  /// One full submission: verify (if due), enumerate, execute, unwind.
  /// Shared by the one-shot and persistent paths; only thread management
  /// differs (spawn+join vs wake-parked+wait-parked).
  void run_submission();
  /// Persistent mode, collective: restore every piece of per-submission
  /// state to its freshly-constructed value between two run() calls. Must
  /// only run while all of this rank's threads are parked and after the
  /// previous run's closing barrier. Snapshots + validates all stats pairs
  /// BEFORE zeroing any counter (lint: reset-stats-discipline), quiesces
  /// the fabric (rank 0) and drains/rebases the mailbox between barriers,
  /// and records what it cleared in last_reset_report().
  void reset_for_resubmission();
  /// The local (non-collective) body of the reset: stats validation, state
  /// clears, counter re-arm, mailbox drain + window rebase. Requires all of
  /// this rank's threads parked AND a guarantee that no message is in
  /// flight or can still arrive. reset_for_resubmission() establishes that
  /// with a quiesce + barrier pair; try_reset_in_band() gets it for free
  /// from a clean run on a Fabric::lossless_immediate() fabric.
  /// `submission` is recorded in last_reset_report().
  void reset_local_state(uint64_t submission);
  /// Persistent mode: spawn the long-lived comm + worker threads (first
  /// submission only; idempotent).
  void start_persistent_threads();
  /// Persistent mode: publish a new submission epoch and wake every parked
  /// thread into its loop.
  void arm_submission();
  /// Persistent mode: block until all parked (workers / comm).
  void wait_workers_parked();
  void wait_comm_parked();
  /// Long-lived thread bodies: wait for an epoch (or shutdown), run the
  /// corresponding loop, park, repeat.
  void persistent_worker_main(int wid);
  void persistent_comm_main();
  /// Capture current exception, force shutdown. `reason` (when non-empty)
  /// rides in the abort broadcast so peers raise a StateError naming the
  /// real cause instead of a generic "task failure on rank N".
  void record_error(const std::string& reason = {});
  void worker_loop(int wid);
  void comm_loop();
  /// True when inter-node stealing is actually in play for this job.
  bool stealing_active() const {
    return opts_.enable_stealing && nranks() > 1;
  }
  /// True when the failure detector / recovery machinery is in play.
  bool failure_active() const {
    return opts_.enable_failure_detection && nranks() > 1;
  }
  /// Either protocol needs rank-0-coordinated global termination.
  bool global_termination() const {
    return stealing_active() || failure_active();
  }
  /// Called whenever one of this rank's own tasks completes (locally or by
  /// credit). Latches local completion exactly once: without stealing it
  /// sets done_; with stealing it reports local-done towards rank 0.
  void maybe_local_complete();
  /// Rank 0 only: record a rank's local-done report tagged with the
  /// sender's confirmed-dead mask; broadcasts JOB_DONE once every live rank
  /// has reported with a mask covering rank 0's own dead set (per-epoch
  /// reconciliation — a pre-death report does not count after a death).
  /// Returns false for an already-seen rank (resends are not progress).
  bool note_rank_done(int r, uint64_t dead_mask);
  /// term_mu_ held: is the job globally done under rank 0's current view?
  bool termination_check_locked();
  /// Comm thread: the steal agent — issue a STEAL_REQUEST when idle.
  void steal_agent_tick(std::chrono::steady_clock::time_point now_tp);
  /// Comm thread: serve a STEAL_REQUEST (harvest + reply).
  void serve_steal_request(const vc::Message& msg);
  /// Comm thread: absorb a STEAL_REPLY (deserialize + enqueue).
  void absorb_steal_reply(const vc::Message& msg);
  /// Comm thread: heartbeat rounds + the suspicion -> probe -> confirmed
  /// state machine of the failure detector.
  void detector_tick(std::chrono::steady_clock::time_point now_tp);
  /// Comm thread: handle a kTagHeartbeat (refresh handled by caller; this
  /// answers probes and counts).
  void on_heartbeat(const vc::Message& msg);
  /// Send one HEARTBEAT (flag: 0 beat, 1 probe, 2 probe answer) directly —
  /// never through the outbox, whose drain counts as watchdog progress.
  void send_heartbeat(int dst, uint8_t flag);
  /// Comm thread: a peer is confirmed dead. Applies the failure policy:
  /// escalate (abort / rank 0 / limit exceeded) or adopt + replay +
  /// re-inject, then re-enter the termination protocol at the new epoch.
  void handle_confirmed_death(int dead);
  /// Escalate an unrecoverable failure: structured StateError naming the
  /// dead rank, the lost chains and the recovery decision, broadcast to
  /// every peer so nobody hangs waiting for recovery that will not come.
  void escalate_failure(int dead, uint64_t lost_chains, const char* why);
  /// Where instances of `key` live under the current confirmed-dead set:
  /// the home rank while it is alive, else the policy's stand-in (kRetry:
  /// next live rank; kDegrade: hash over survivors). Pure in (key, policy,
  /// dead set), so every rank that agrees on the dead set agrees on it.
  int effective_rank(const TaskKey& key) const;
  /// Record one remote activation in the per-destination lineage log.
  void record_lineage(int dst, const TaskKey& consumer, int slot,
                      const DataBuf& buf);
  /// Effective watchdog deadline in ms, scaled by outstanding local work.
  double watchdog_deadline_ms() const;
  /// Wake one / all workers. The wake mutex is taken while notifying so a
  /// worker checking its wait predicate can never miss the signal.
  void wake_one();
  void wake_all();
  /// Diagnostic snapshot for the watchdog's StateError (executed/expected
  /// counts, pending-deposit map sizes, queue depths).
  std::string watchdog_dump();
  /// Deliver one input to a task instance. When the arrival completes the
  /// instance and `batch` is non-null, the ReadyTask is appended there for
  /// the caller to publish in one push_batch (a worker routing outputs);
  /// otherwise it is pushed immediately with hint -1 (comm thread).
  void deposit(const TaskKey& key, int slot, DataBuf buf,
               std::vector<ReadyTask>* batch = nullptr);
  ReadyTask build_task(const TaskKey& key, std::vector<DataBuf> inputs);
  void make_ready(const TaskKey& key, std::vector<DataBuf> inputs,
                  int worker_hint);
  void execute_task(ReadyTask t, int wid);
  double effective_priority(const TaskClass& c, const Params& p) const;
  double now() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  vc::RankCtx& rctx_;
  const Taskpool& pool_;
  Options opts_;
  std::unique_ptr<Scheduler> sched_;

  Shard shards_[kShards];
  /// Own task instances plus instances adopted from dead ranks. Atomic:
  /// recovery (comm thread) grows it while workers compare against it.
  std::atomic<uint64_t> expected_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> seq_{0};
  std::atomic<bool> done_{false};
  std::atomic<bool> ran_{false};

  std::mutex error_mu_;
  std::exception_ptr first_error_;
  std::atomic<bool> abort_broadcast_{false};

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;

  std::mutex out_mu_;
  std::deque<vc::Message> outbox_;
  std::atomic<uint64_t> remote_sent_{0};
  std::atomic<bool> comm_stop_{false};

  // Progress tracking for the watchdog: bumped on every task execution,
  // dependency deposit, outbound transfer and inbound message.
  std::atomic<uint64_t> progress_{0};
  std::atomic<int> active_workers_{0};

  // -- inter-node stealing state --
  // Steal-protocol counters (see StealStats for the pairing discipline).
  std::atomic<uint64_t> st_requests_sent_{0};
  std::atomic<uint64_t> st_requests_received_{0};
  std::atomic<uint64_t> st_replies_sent_{0};
  std::atomic<uint64_t> st_replies_received_{0};
  std::atomic<uint64_t> st_migrated_out_{0};
  std::atomic<uint64_t> st_migrated_in_{0};
  std::atomic<uint64_t> st_credits_sent_{0};
  std::atomic<uint64_t> st_credits_received_{0};
  /// Migrated-in tasks queued or executing here, not yet credited home.
  std::atomic<int64_t> foreign_pending_{0};
  /// 1 while a STEAL_REQUEST from this rank is unanswered.
  std::atomic<int> steal_outstanding_{0};
  /// Latch: this rank's own work is complete (report sent / done_ set).
  std::atomic<bool> local_complete_{false};

  // Comm-thread-only steal agent state (no locking needed).
  std::vector<int64_t> load_hints_;  ///< last-heard queue depth per rank
  Rng steal_rng_{0};
  std::chrono::steady_clock::time_point next_steal_at_;
  std::chrono::steady_clock::time_point steal_reply_deadline_;
  std::chrono::steady_clock::time_point next_done_resend_;

  // Rank 0's termination bookkeeping (guarded by term_mu_; worker threads
  // may deliver rank 0's own report while the comm thread delivers peers').
  std::mutex term_mu_;
  std::vector<uint8_t> rank_done_seen_;
  /// Per rank: union of the confirmed-dead masks its reports carried. A
  /// rank only counts as done once this covers rank 0's own dead set.
  std::vector<uint64_t> rank_done_mask_;
  bool job_done_broadcast_ = false;

  // -- rank-failure tolerance state --
  /// Bitmask of peers this rank has confirmed dead (<= 64 ranks, like the
  /// fabric's fail-stop mask). Written by the comm thread, read by workers
  /// routing through effective_rank().
  std::atomic<uint64_t> confirmed_dead_mask_{0};
  /// This rank was crash-injected; run() exits silently via barrier_drop.
  std::atomic<bool> killed_{false};

  /// adopt_mu_ guards the adoption handshake between the comm thread
  /// (handle_confirmed_death) and workers depositing into foreign-homed
  /// keys: a key is either adopted (execute here, count here) or its
  /// completed input set is parked in held_ready_ until adoption.
  std::mutex adopt_mu_;
  std::unordered_set<TaskKey, TaskKeyHash> adopted_keys_;
  std::unordered_map<TaskKey, std::vector<DataBuf>, TaskKeyHash> held_ready_;

  /// Per-destination lineage log: every remote activation sent while the
  /// failure machinery is active (consumer, slot, payload buffer). On a
  /// confirmed death the entries toward the victim are replayed to its
  /// stand-in rank. Guarded by lin_mu_ (workers append, comm replays).
  struct LineageEntry {
    TaskKey consumer;
    int8_t slot = 0;
    DataBuf buf;
  };
  std::mutex lin_mu_;
  std::vector<std::vector<LineageEntry>> lineage_;

  /// Comm-thread-only: tasks migrated out whose completion credit has not
  /// arrived, with retained input copies so a dead thief's haul can be
  /// re-injected locally.
  struct OutstandingMig {
    int holder = -1;
    double priority = 0.0;
    std::vector<DataBuf> inputs;
  };
  std::unordered_map<TaskKey, OutstandingMig, TaskKeyHash> outstanding_migs_;

  // Comm-thread-only failure detector state.
  std::vector<std::chrono::steady_clock::time_point> last_heard_;
  std::vector<uint8_t> peer_suspect_;
  std::vector<std::chrono::steady_clock::time_point> suspect_since_;
  std::chrono::steady_clock::time_point next_heartbeat_;

  // FailureStats counters (comm thread writes; dup-deposit drops also from
  // workers). deaths_confirmed is incremented before any recovery-work
  // counter it bounds.
  std::atomic<uint64_t> fs_heartbeats_sent_{0};
  std::atomic<uint64_t> fs_heartbeats_received_{0};
  std::atomic<uint64_t> fs_probes_sent_{0};
  std::atomic<uint64_t> fs_probes_answered_{0};
  std::atomic<uint64_t> fs_suspicions_{0};
  std::atomic<uint64_t> fs_suspicions_cleared_{0};
  std::atomic<uint64_t> fs_deaths_confirmed_{0};
  std::atomic<uint64_t> fs_tasks_adopted_{0};
  std::atomic<uint64_t> fs_lineage_replayed_{0};
  std::atomic<uint64_t> fs_tasks_reinjected_{0};
  std::atomic<uint64_t> fs_fenced_dropped_{0};
  std::atomic<uint64_t> fs_dup_deposits_dropped_{0};
  std::atomic<uint64_t> fs_watchdog_resets_on_death_{0};

  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::vector<TraceEvent>> worker_events_;
  std::vector<TraceEvent> comm_events_;
  Trace trace_;

  // -- persistent-mode machinery (Options::persistent) --
  /// Serial-entry guard for run() in persistent mode (ran_ stays the
  /// one-shot guard); also trips if run() is re-entered while running.
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> runs_completed_{0};
  /// A submission has run (even one that unwound), so the next run() must
  /// reset first. Only touched while running_ is held, hence plain bools.
  bool needs_reset_ = false;
  /// The last submission unwound with an error: its counter pairs are
  /// legitimately torn, so the next reset skips the strict validation.
  bool prev_submission_errored_ = false;
  /// MP_VERIFY ran for this Context (persistent: once per template epoch).
  bool verified_once_ = false;
  bool threads_started_ = false;
  /// submit_mu_ guards the park/wake handshake: epoch, park counts and the
  /// shutdown flag. One CV serves arming (run -> threads) and parking
  /// (threads -> run) — contention is nil, transitions are rare.
  std::mutex submit_mu_;
  std::condition_variable submit_cv_;
  uint64_t submit_epoch_ = 0;
  int workers_parked_ = 0;
  bool comm_parked_ = false;
  bool shutdown_ = false;
  std::thread comm_thread_;
  std::vector<std::thread> persistent_workers_;
  ResetReport reset_report_;
};

}  // namespace mp::ptg
