// The per-rank runtime context: PaRSEC's engine. Owns the worker threads
// and the communication thread of one rank, tracks dependency arrivals per
// task instance, schedules ready tasks by priority, ships output buffers to
// remote consumers through the virtual-cluster fabric, and detects
// termination (every locally-owned task instance executed).
//
// Usage (inside a vc::Cluster SPMD region):
//   Taskpool pool;  ... add classes ...
//   Context ctx(rank_ctx, pool, opts);
//   ctx.run();      // collective; returns when the whole DAG has executed
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/diagnostics.h"
#include "ptg/scheduler.h"
#include "ptg/taskpool.h"
#include "ptg/trace.h"
#include "vc/cluster.h"

namespace mp::ptg {

struct Options {
  int num_workers = 2;            ///< compute threads per rank
  SchedPolicy policy = SchedPolicy::kPriority;
  bool use_priorities = true;     ///< false reproduces the paper's v2
  bool enable_tracing = false;    ///< record TraceEvents for Figs. 10-13
  /// If no local progress happens for this long while tasks are still
  /// outstanding (e.g. an activation was lost in the fabric), run() raises
  /// a StateError carrying a diagnostic dump instead of hanging forever.
  /// 0 disables the watchdog.
  double watchdog_timeout_ms = 30000.0;
};

class Context {
 public:
  /// Message tag used for dependency activations on the fabric.
  static constexpr int kTagActivate = 101;
  /// Broadcast when a rank aborts (task body threw): peers stop waiting
  /// for activations that will never come and unwind too.
  static constexpr int kTagAbort = 102;

  Context(vc::RankCtx& rank_ctx, const Taskpool& pool, Options opts = {});

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// Execute the PTG to completion. Collective across ranks (ends with a
  /// barrier). May be called once per Context. When the MP_VERIFY
  /// environment variable is set (to anything but "0"), rank 0 first runs
  /// validate_plan() and the whole job aborts with a StateError carrying
  /// the diagnostics if the graph is malformed.
  void run();

  /// Statically verify the taskpool's materialized graph for this cluster
  /// size (acyclicity, no dropped/duplicated edges, no orphan tasks, no
  /// leaked buffers — see analysis/graph_verify.h for the diagnostic
  /// codes). Pure inspection: no task body runs. Returns the diagnostics;
  /// empty means the graph is well-formed.
  std::vector<analysis::Diag> validate_plan() const;

  int rank() const { return rctx_.rank(); }
  int nranks() const { return rctx_.nranks(); }
  const Options& options() const { return opts_; }

  /// Post-run statistics.
  uint64_t tasks_executed() const { return executed_.load(); }
  uint64_t expected_tasks() const { return expected_; }
  uint64_t remote_activations_sent() const { return remote_sent_.load(); }
  uint64_t scheduler_steals() const { return sched_->steals(); }
  SchedStats scheduler_stats() const { return sched_->stats(); }

  /// Post-run trace of this rank (empty unless enable_tracing).
  const Trace& trace() const { return trace_; }

 private:
  struct Pending {
    std::vector<DataBuf> inputs;
    int arrived = 0;
    int threshold = 0;
    bool initialized = false;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<TaskKey, Pending, TaskKeyHash> map;
  };
  static constexpr int kShards = 16;

  void enumerate_startup();
  void record_error();  ///< capture current exception, force shutdown
  void worker_loop(int wid);
  void comm_loop();
  /// Wake one / all workers. The wake mutex is taken while notifying so a
  /// worker checking its wait predicate can never miss the signal.
  void wake_one();
  void wake_all();
  /// Diagnostic snapshot for the watchdog's StateError (executed/expected
  /// counts, pending-deposit map sizes, queue depths).
  std::string watchdog_dump();
  /// Deliver one input to a task instance. When the arrival completes the
  /// instance and `batch` is non-null, the ReadyTask is appended there for
  /// the caller to publish in one push_batch (a worker routing outputs);
  /// otherwise it is pushed immediately with hint -1 (comm thread).
  void deposit(const TaskKey& key, int slot, DataBuf buf,
               std::vector<ReadyTask>* batch = nullptr);
  ReadyTask build_task(const TaskKey& key, std::vector<DataBuf> inputs);
  void make_ready(const TaskKey& key, std::vector<DataBuf> inputs,
                  int worker_hint);
  void execute_task(ReadyTask t, int wid);
  double effective_priority(const TaskClass& c, const Params& p) const;
  double now() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  vc::RankCtx& rctx_;
  const Taskpool& pool_;
  Options opts_;
  std::unique_ptr<Scheduler> sched_;

  Shard shards_[kShards];
  uint64_t expected_ = 0;
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> seq_{0};
  std::atomic<bool> done_{false};
  std::atomic<bool> ran_{false};

  std::mutex error_mu_;
  std::exception_ptr first_error_;
  std::atomic<bool> abort_broadcast_{false};

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;

  std::mutex out_mu_;
  std::deque<vc::Message> outbox_;
  std::atomic<uint64_t> remote_sent_{0};
  std::atomic<bool> comm_stop_{false};

  // Progress tracking for the watchdog: bumped on every task execution,
  // dependency deposit, outbound transfer and inbound message.
  std::atomic<uint64_t> progress_{0};
  std::atomic<int> active_workers_{0};

  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::vector<TraceEvent>> worker_events_;
  std::vector<TraceEvent> comm_events_;
  Trace trace_;
};

}  // namespace mp::ptg
