// Exactly-once sequence window for one (source, destination) pair.
//
// Every fabric-stamped message carries a per-source wire sequence number;
// the receiver keeps one SeqWindow per source and discards any seq it has
// already accepted — that single invariant is what makes activation
// delivery idempotent under the fabric's dup fault and under lineage
// replay (DESIGN.md §9/§10).
//
// The window is a watermark plus the out-of-order set above it: every
// seq <= watermark has been accepted, and `above` holds the accepted seqs
// that arrived before their predecessors. In FIFO operation the set drains
// straight into the watermark; with reordering it is bounded by the number
// of in-flight messages; gaps left by genuine drops pin the watermark
// (still correct, the gap seq can never legitimately re-arrive from the
// same incarnation) until rebase() collapses them at a quiescent point.
//
// Extracted from Mailbox so the mp-explore model checker and the direct
// property tests (test_vc) exercise exactly the object the runtime runs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <set>

namespace mp::vc {

struct SeqWindow {
  uint64_t watermark = 0;
  std::set<uint64_t> above;

  /// Accept `seq` exactly once: true if this is the first time it is seen,
  /// false for a duplicate (at or below the watermark, or already in the
  /// out-of-order set). Accepting the seq just above the watermark drains
  /// the contiguous prefix of `above` into it.
  bool accept(uint64_t seq) {
    if (seq <= watermark) return false;
    if (!above.insert(seq).second) return false;
    while (!above.empty() && *above.begin() == watermark + 1) {
      above.erase(above.begin());
      ++watermark;
    }
    return true;
  }

  /// Collapse to a plain high-water mark: the watermark jumps to the
  /// highest seq ever accepted and the out-of-order set is cleared. Only
  /// safe at a quiescent point where no message with a seq at or below
  /// that maximum can still arrive — the gaps below it belong to messages
  /// the fabric genuinely dropped, which the window would otherwise
  /// remember forever (`above` grows without bound across submissions on
  /// a lossy fabric).
  void rebase() {
    if (!above.empty()) {
      watermark = std::max(watermark, *above.rbegin());
      above.clear();
    }
  }

  /// Out-of-order seqs currently remembered (what rebase() collapses).
  size_t backlog() const { return above.size(); }

  bool operator==(const SeqWindow& o) const {
    return watermark == o.watermark && above == o.above;
  }
};

}  // namespace mp::vc
