// An in-process virtual cluster: R ranks executed SPMD on R threads, a
// message fabric between them, and the handful of collectives the CC code
// needs (barrier, allreduce). This substitutes for MPI at real-execution
// scale; the discrete-event simulator (src/sim) models network *performance*
// at paper scale, while this module provides network *semantics* for
// correctness runs.
#pragma once

#include <atomic>
#include <barrier>
#include <functional>
#include <memory>
#include <vector>

#include "vc/fabric.h"
#include "vc/mailbox.h"

namespace mp::vc {

class Cluster;

/// Per-rank handle passed to the SPMD function. All members are safe to call
/// concurrently from different ranks.
class RankCtx {
 public:
  RankCtx(Cluster* cluster, int rank) : cluster_(cluster), rank_(rank) {}

  int rank() const { return rank_; }
  int nranks() const;

  /// Point-to-point send to `dst`'s mailbox.
  void send(int dst, int tag, Payload payload);

  /// This rank's inbound mailbox.
  Mailbox& mailbox();

  /// Collective: all ranks must call.
  void barrier();

  /// Collective sum-reduce; every rank receives the global sum.
  double allreduce_sum(double x);

  /// Collective max-reduce.
  double allreduce_max(double x);

  Cluster& cluster() { return *cluster_; }

 private:
  Cluster* cluster_;
  int rank_;
};

class Cluster {
 public:
  explicit Cluster(int nranks, FabricConfig fabric_cfg = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int nranks() const { return nranks_; }
  Fabric& fabric() { return *fabric_; }
  Mailbox& mailbox(int rank) { return mailboxes_[static_cast<size_t>(rank)]; }

  /// Run `fn(ctx)` once per rank, each on its own thread, and join.
  /// Exceptions thrown by any rank are rethrown (first one wins).
  void run(const std::function<void(RankCtx&)>& fn);

  /// A process-wide shared counter (the Global Arrays NXTVAL primitive is
  /// built on this). Returns the pre-increment value.
  long fetch_add_counter(int which, long delta);
  void reset_counter(int which, long value);
  static constexpr int kNumCounters = 8;

  // --- internal, used by RankCtx collectives ---
  void barrier_wait();
  double allreduce(double x, int rank, bool max_mode);

 private:
  int nranks_;
  std::vector<Mailbox> mailboxes_;
  std::unique_ptr<Fabric> fabric_;
  std::barrier<> barrier_;
  std::vector<std::atomic<long>> counters_;

  // allreduce scratch: contributions land in slots, rank 0 combines.
  std::vector<double> reduce_slots_;
  double reduce_result_ = 0.0;
};

}  // namespace mp::vc
