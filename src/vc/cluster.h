// An in-process virtual cluster: R ranks executed SPMD on R threads, a
// message fabric between them, and the handful of collectives the CC code
// needs (barrier, allreduce). This substitutes for MPI at real-execution
// scale; the discrete-event simulator (src/sim) models network *performance*
// at paper scale, while this module provides network *semantics* for
// correctness runs.
#pragma once

#include <atomic>
#include <barrier>
#include <functional>
#include <memory>
#include <vector>

#include "vc/fabric.h"
#include "vc/mailbox.h"

namespace mp::vc {

class Cluster;

/// Per-rank handle passed to the SPMD function. All members are safe to call
/// concurrently from different ranks.
class RankCtx {
 public:
  RankCtx(Cluster* cluster, int rank) : cluster_(cluster), rank_(rank) {}

  int rank() const { return rank_; }
  int nranks() const;

  /// Point-to-point send to `dst`'s mailbox.
  void send(int dst, int tag, Payload payload);

  /// This rank's inbound mailbox.
  Mailbox& mailbox();

  /// Collective: all ranks must call.
  void barrier();

  /// Drop out of all future barriers. A killed rank calls this instead of
  /// its final barrier() so the survivors' collectives keep completing.
  void barrier_drop();

  /// Collective sum-reduce; every rank receives the global sum.
  double allreduce_sum(double x);

  /// Collective max-reduce.
  double allreduce_max(double x);

  /// True once this rank has been crash-injected (fail-stop). The runtime
  /// polls this on its comm thread and, when set, stops executing — the
  /// thread itself keeps running (it is a thread of the test process), it
  /// just goes silent, which is what a crashed rank looks like on the wire.
  bool is_dead() const;

  Cluster& cluster() { return *cluster_; }

 private:
  Cluster* cluster_;
  int rank_;
};

class Cluster {
 public:
  explicit Cluster(int nranks, FabricConfig fabric_cfg = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int nranks() const { return nranks_; }
  Fabric& fabric() { return *fabric_; }
  Mailbox& mailbox(int rank) { return mailboxes_[static_cast<size_t>(rank)]; }

  /// Run `fn(ctx)` once per rank, each on its own thread, and join.
  /// Exceptions thrown by any rank are rethrown (first one wins).
  void run(const std::function<void(RankCtx&)>& fn);

  /// A process-wide shared counter (the Global Arrays NXTVAL primitive is
  /// built on this). Returns the pre-increment value.
  long fetch_add_counter(int which, long delta);
  void reset_counter(int which, long value);
  static constexpr int kNumCounters = 8;

  // --- rank failure (fail-stop model, DESIGN.md §10) ---

  /// Kill `rank`: mark it dead cluster-wide, blackhole its fabric traffic,
  /// and close its mailbox (pending messages stay drainable). Idempotent.
  /// Also runs as the fabric's kill callback when a CrashPlan fires.
  void kill_rank(int rank);
  /// Bring a killed rank back as a new incarnation: clears the dead flag,
  /// reopens its mailbox, and resets every survivor's dedup window for it
  /// (see Mailbox::reset_source).
  void revive_rank(int rank);
  bool is_dead(int rank) const {
    return dead_[static_cast<size_t>(rank)].load(std::memory_order_acquire) !=
           0;
  }

  // --- internal, used by RankCtx collectives ---
  void barrier_wait();
  void barrier_arrive_and_drop();
  double allreduce(double x, int rank, bool max_mode);

 private:
  int nranks_;
  std::vector<Mailbox> mailboxes_;
  std::unique_ptr<Fabric> fabric_;
  std::barrier<> barrier_;
  std::vector<std::atomic<long>> counters_;
  /// Cluster-wide liveness flags, one per rank (uint8_t: vector<atomic<bool>>
  /// is fine but this keeps the element trivially copyable for resize-free
  /// construction).
  std::vector<std::atomic<uint8_t>> dead_;

  // allreduce scratch: contributions land in slots, rank 0 combines.
  std::vector<double> reduce_slots_;
  double reduce_result_ = 0.0;
};

}  // namespace mp::vc
