#include "vc/fabric.h"

#include "support/error.h"

namespace mp::vc {

Fabric::Fabric(std::vector<Mailbox>* mailboxes, FabricConfig cfg)
    : mailboxes_(mailboxes),
      cfg_(cfg),
      delayed_(cfg.latency_us > 0.0 || cfg.bandwidth_Bps > 0.0) {
  MP_REQUIRE(mailboxes_ != nullptr && !mailboxes_->empty(),
             "Fabric: need at least one mailbox");
  if (delayed_) {
    delivery_thread_ = std::thread([this] { delivery_loop(); });
  }
}

Fabric::~Fabric() { shutdown(); }

void Fabric::send(Message m) {
  MP_REQUIRE(m.dst >= 0 && static_cast<size_t>(m.dst) < mailboxes_->size(),
             "Fabric::send: bad destination rank");
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(m.payload.size(), std::memory_order_relaxed);

  if (!delayed_) {
    (*mailboxes_)[static_cast<size_t>(m.dst)].push(std::move(m));
    return;
  }

  using namespace std::chrono;
  const double service_us =
      cfg_.bandwidth_Bps > 0.0
          ? static_cast<double>(m.payload.size()) / cfg_.bandwidth_Bps * 1e6
          : 0.0;
  const auto delay = microseconds(
      static_cast<int64_t>(cfg_.latency_us + service_us));
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    pending_.push(
        Pending{steady_clock::now() + delay, next_seq_++, std::move(m)});
  }
  cv_.notify_one();
}

void Fabric::delivery_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (pending_.empty()) {
      if (stopping_) return;
      cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
      continue;
    }
    const auto when = pending_.top().deliver_at;
    if (cv_.wait_until(lock, when,
                       [&] { return stopping_ && pending_.empty(); })) {
      return;
    }
    const auto now = std::chrono::steady_clock::now();
    while (!pending_.empty() && pending_.top().deliver_at <= now) {
      Message m = std::move(const_cast<Pending&>(pending_.top()).msg);
      pending_.pop();
      lock.unlock();
      (*mailboxes_)[static_cast<size_t>(m.dst)].push(std::move(m));
      lock.lock();
    }
  }
}

void Fabric::shutdown() {
  if (!delayed_) return;
  {
    std::lock_guard lock(mu_);
    if (stopping_ && !delivery_thread_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (delivery_thread_.joinable()) delivery_thread_.join();
  // Flush anything still pending so no message is lost at shutdown.
  std::lock_guard lock(mu_);
  while (!pending_.empty()) {
    Message m = std::move(const_cast<Pending&>(pending_.top()).msg);
    pending_.pop();
    (*mailboxes_)[static_cast<size_t>(m.dst)].push(std::move(m));
  }
}

}  // namespace mp::vc
