#include "vc/fabric.h"

#include "support/error.h"

namespace mp::vc {

namespace {

/// A delivery thread is needed whenever any message can be held back: real
/// latency/bandwidth, or reordering jitter on any link.
bool needs_delivery_thread(const FabricConfig& cfg) {
  if (cfg.latency_us > 0.0 || cfg.bandwidth_Bps > 0.0) return true;
  if (cfg.faults.reorder_jitter_us > 0.0) return true;
  for (const auto& [link, fc] : cfg.link_faults) {
    if (fc.reorder_jitter_us > 0.0) return true;
  }
  return false;
}

}  // namespace

Fabric::Fabric(std::vector<Mailbox>* mailboxes, FabricConfig cfg)
    : mailboxes_(mailboxes),
      cfg_(std::move(cfg)),
      delayed_(needs_delivery_thread(cfg_)),
      rng_(cfg_.fault_seed) {
  MP_REQUIRE(mailboxes_ != nullptr && !mailboxes_->empty(),
             "Fabric: need at least one mailbox");
  MP_REQUIRE(!cfg_.controlled || !delayed_,
             "Fabric: controlled mode excludes latency/bandwidth/jitter — "
             "the exploration engine's choice sequence is the clock");
  MP_REQUIRE(!cfg_.controlled ||
                 (cfg_.faults.drop_prob == 0.0 && cfg_.faults.dup_prob == 0.0 &&
                  cfg_.link_faults.empty()),
             "Fabric: controlled mode excludes probabilistic faults — "
             "drops and duplicates are explicit engine choices");
  wire_seq_ = std::vector<std::atomic<uint64_t>>(mailboxes_->size());
  crash_fired_ = std::vector<std::atomic<uint8_t>>(cfg_.crash_plans.size());
  for (const CrashPlan& cp : cfg_.crash_plans) {
    MP_REQUIRE(cp.victim >= 0 &&
                   static_cast<size_t>(cp.victim) < mailboxes_->size() &&
                   cp.victim < 64,
               "Fabric: CrashPlan victim out of range");
  }
  // Controlled mode can disturb any message (the engine may drop or reorder
  // at will), so it never qualifies as lossless-immediate.
  bool lossless = !delayed_ && !cfg_.faults.any() && cfg_.crash_plans.empty() &&
                  !cfg_.controlled;
  for (const auto& [link, faults] : cfg_.link_faults) {
    (void)link;
    if (faults.any()) lossless = false;
  }
  lossless_immediate_.store(lossless, std::memory_order_release);
  if (delayed_) {
    delivery_thread_ = std::thread([this] { delivery_loop(); });
  }
}

Fabric::~Fabric() { shutdown(); }

const FaultConfig& Fabric::fault_for(int src, int dst) const {
  if (!cfg_.link_faults.empty()) {
    const auto it = cfg_.link_faults.find({src, dst});
    if (it != cfg_.link_faults.end()) return it->second;
  }
  return cfg_.faults;
}

// Counter-pair discipline (checked by FabricStats::validate()): the message
// count goes up first (relaxed), the byte count second with release. stats()
// reads the byte count first with acquire — so any snapshot that observes
// bytes also observes the messages they belong to, and "bytes > 0 with
// messages == 0" can never be seen, even mid-run.
void Fabric::count_sent(const Message& m) {
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(m.payload.size(), std::memory_order_release);
}

void Fabric::deliver(Message m) {
  const size_t bytes = m.payload.size();
  if (!(*mailboxes_)[static_cast<size_t>(m.dst)].push(std::move(m))) {
    messages_dropped_.fetch_add(1, std::memory_order_relaxed);
    bytes_dropped_.fetch_add(bytes, std::memory_order_release);
  }
}

void Fabric::send(Message m) {
  MP_REQUIRE(m.dst >= 0 && static_cast<size_t>(m.dst) < mailboxes_->size(),
             "Fabric::send: bad destination rank");
  // Stamp the per-source wire sequence before any fault is drawn: a dup
  // fault then produces two copies with the same seq, and the destination
  // mailbox can discard the second one (idempotent delivery).
  if (m.src >= 0 && static_cast<size_t>(m.src) < wire_seq_.size()) {
    m.seq = 1 + wire_seq_[static_cast<size_t>(m.src)].fetch_add(
                    1, std::memory_order_relaxed);
  }

  // Fail-stop blackhole: traffic to or from a dead rank disappears into the
  // wire. The message still counts as accepted (the sender cannot tell),
  // and the fault counter is the release-ordered bounded half of the pair.
  if (is_dead(m.src) || is_dead(m.dst)) {
    count_sent(m);
    faults_crashed_.fetch_add(1, std::memory_order_release);
    maybe_trigger_crash();
    return;
  }
  // One-sided partition: src->dst swallowed, dst->src untouched.
  if (has_partitions_.load(std::memory_order_acquire) != 0 &&
      partitioned(m.src, m.dst)) {
    count_sent(m);
    faults_partitioned_.fetch_add(1, std::memory_order_release);
    maybe_trigger_crash();
    return;
  }

  // Controlled-scheduler mode: accept and park. Delivery, drops and
  // duplicates all become explicit engine choices (deliver_pending and
  // friends); crash plans never self-fire here.
  if (cfg_.controlled) {
    count_sent(m);
    std::lock_guard lock(mu_);
    ctrl_pending_.push_back(std::move(m));
    return;
  }

  const FaultConfig& fc = fault_for(m.src, m.dst);

  if (!delayed_) {
    // Immediate delivery. The fault RNG is shared, so draws take mu_.
    if (fc.drop_prob > 0.0 || fc.dup_prob > 0.0) {
      bool drop = false, dup = false;
      {
        std::lock_guard lock(mu_);
        drop = fc.drop_prob > 0.0 && rng_.next_double() < fc.drop_prob;
        dup = !drop && fc.dup_prob > 0.0 && rng_.next_double() < fc.dup_prob;
      }
      count_sent(m);
      // Release: a stats() snapshot that observes this fault (acquire load,
      // read before messages_sent) also observes the count_sent above, so
      // faults_* <= messages_sent holds in every snapshot.
      if (drop) {
        faults_dropped_.fetch_add(1, std::memory_order_release);
        maybe_trigger_crash();
        return;
      }
      if (dup) {
        faults_duplicated_.fetch_add(1, std::memory_order_release);
        deliver(m);  // deliberate copy: the duplicate
      }
    } else {
      count_sent(m);
    }
    deliver(std::move(m));
    maybe_trigger_crash();
    return;
  }

  using namespace std::chrono;
  const double service_us =
      cfg_.bandwidth_Bps > 0.0
          ? static_cast<double>(m.payload.size()) / cfg_.bandwidth_Bps * 1e6
          : 0.0;
  {
    std::lock_guard lock(mu_);
    if (stopping_) {
      // Refused, not sent: shutdown already began.
      messages_dropped_.fetch_add(1, std::memory_order_relaxed);
      bytes_dropped_.fetch_add(m.payload.size(), std::memory_order_release);
      return;
    }
    count_sent(m);
    if (fc.drop_prob > 0.0 && rng_.next_double() < fc.drop_prob) {
      faults_dropped_.fetch_add(1, std::memory_order_release);
      return;
    }
    int copies = 1;
    if (fc.dup_prob > 0.0 && rng_.next_double() < fc.dup_prob) {
      copies = 2;
      faults_duplicated_.fetch_add(1, std::memory_order_release);
    }
    const auto now = steady_clock::now();
    for (int i = 0; i < copies; ++i) {
      double jitter_us = 0.0;
      if (fc.reorder_jitter_us > 0.0) {
        jitter_us = rng_.uniform(0.0, fc.reorder_jitter_us);
        if (jitter_us > 0.0) {
          faults_reordered_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      const auto delay = microseconds(
          static_cast<int64_t>(cfg_.latency_us + service_us + jitter_us));
      Message copy = (i + 1 < copies) ? m : std::move(m);
      pending_.push(Pending{now + delay, next_seq_++, std::move(copy)});
    }
  }
  cv_.notify_one();
  maybe_trigger_crash();
}

Message Fabric::pending_peek(size_t i) const {
  std::lock_guard lock(mu_);
  MP_REQUIRE(i < ctrl_pending_.size(), "Fabric::pending_peek: bad index");
  return ctrl_pending_[i];
}

size_t Fabric::pending_count() const {
  std::lock_guard lock(mu_);
  return ctrl_pending_.size();
}

void Fabric::deliver_pending(size_t i) {
  MP_REQUIRE(cfg_.controlled, "Fabric::deliver_pending: not in controlled mode");
  Message m;
  {
    std::lock_guard lock(mu_);
    MP_REQUIRE(i < ctrl_pending_.size(), "Fabric::deliver_pending: bad index");
    m = std::move(ctrl_pending_[i]);
    ctrl_pending_.erase(ctrl_pending_.begin() +
                        static_cast<std::ptrdiff_t>(i));
  }
  // Outside mu_: deliver() takes the destination mailbox's lock.
  deliver(std::move(m));
}

void Fabric::drop_pending(size_t i) {
  MP_REQUIRE(cfg_.controlled, "Fabric::drop_pending: not in controlled mode");
  std::lock_guard lock(mu_);
  MP_REQUIRE(i < ctrl_pending_.size(), "Fabric::drop_pending: bad index");
  ctrl_pending_.erase(ctrl_pending_.begin() + static_cast<std::ptrdiff_t>(i));
  faults_dropped_.fetch_add(1, std::memory_order_release);
}

void Fabric::duplicate_pending(size_t i) {
  MP_REQUIRE(cfg_.controlled,
             "Fabric::duplicate_pending: not in controlled mode");
  std::lock_guard lock(mu_);
  MP_REQUIRE(i < ctrl_pending_.size(),
             "Fabric::duplicate_pending: bad index");
  // Byte-identical copy, seq included — exactly what the probabilistic dup
  // fault produces, so the mailbox dedup semantics under test are the same.
  ctrl_pending_.push_back(ctrl_pending_[i]);
  faults_duplicated_.fetch_add(1, std::memory_order_release);
}

uint64_t Fabric::wire_seq_next(int src) const {
  MP_REQUIRE(src >= 0 && static_cast<size_t>(src) < wire_seq_.size(),
             "Fabric::wire_seq_next: bad rank");
  return 1 + wire_seq_[static_cast<size_t>(src)].load(
                 std::memory_order_acquire);
}

void Fabric::maybe_trigger_crash() {
  if (cfg_.crash_plans.empty() || cfg_.controlled) return;
  const uint64_t accepted = messages_sent_.load(std::memory_order_acquire);
  for (size_t i = 0; i < cfg_.crash_plans.size(); ++i) {
    const CrashPlan& cp = cfg_.crash_plans[i];
    if (accepted < cp.after_messages) continue;
    if (crash_fired_[i].exchange(1, std::memory_order_acq_rel) != 0) continue;
    kill_rank(cp.victim);
  }
}

void Fabric::kill_rank(int rank) {
  MP_REQUIRE(rank >= 0 && static_cast<size_t>(rank) < mailboxes_->size() &&
                 rank < 64,
             "Fabric::kill_rank: bad rank");
  lossless_immediate_.store(false, std::memory_order_release);
  const uint64_t bit = 1ULL << rank;
  // Counter-pair ordering: ranks_killed goes up BEFORE the dead bit is
  // published, so a blackholed message (which requires observing the bit)
  // can never be counted while a snapshot still reads ranks_killed == 0.
  // The loser of a concurrent double-kill backs its increment out.
  ranks_killed_.fetch_add(1, std::memory_order_release);
  if ((dead_mask_.fetch_or(bit, std::memory_order_acq_rel) & bit) != 0) {
    ranks_killed_.fetch_sub(1, std::memory_order_relaxed);
    return;  // already dead
  }
  // Outside all fabric locks: the callback may close mailboxes (which takes
  // the mailbox lock) or update cluster-wide liveness state.
  if (kill_cb_) kill_cb_(rank);
}

void Fabric::revive_rank(int rank) {
  MP_REQUIRE(rank >= 0 && static_cast<size_t>(rank) < mailboxes_->size() &&
                 rank < 64,
             "Fabric::revive_rank: bad rank");
  // A revived rank is a new incarnation: its wire sequence restarts at 1.
  // Receivers that kept SeqWindow state for the old incarnation would
  // silently discard everything the new one sends — that is the bug
  // Mailbox::reset_source() exists to fix (see test_vc).
  wire_seq_[static_cast<size_t>(rank)].store(0, std::memory_order_relaxed);
  dead_mask_.fetch_and(~(1ULL << rank), std::memory_order_acq_rel);
}

void Fabric::partition(int src, int dst) {
  lossless_immediate_.store(false, std::memory_order_release);
  std::lock_guard lock(part_mu_);
  partitioned_links_.insert({src, dst});
  has_partitions_.store(1, std::memory_order_release);
}

void Fabric::heal(int src, int dst) {
  std::lock_guard lock(part_mu_);
  partitioned_links_.erase({src, dst});
  if (partitioned_links_.empty()) {
    has_partitions_.store(0, std::memory_order_release);
  }
}

bool Fabric::partitioned(int src, int dst) const {
  std::lock_guard lock(part_mu_);
  return partitioned_links_.count({src, dst}) != 0;
}

void Fabric::delivery_loop() {
  std::unique_lock lock(mu_);
  while (!stopping_) {
    if (pending_.empty()) {
      cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
      continue;
    }
    const auto when = pending_.top().deliver_at;
    // Wake immediately on stopping_: shutdown() flushes whatever is left,
    // so there is no reason to sit out the simulated delivery deadlines.
    if (cv_.wait_until(lock, when, [&] { return stopping_; })) {
      return;
    }
    const auto now = std::chrono::steady_clock::now();
    while (!pending_.empty() && pending_.top().deliver_at <= now) {
      Message m = std::move(const_cast<Pending&>(pending_.top()).msg);
      pending_.pop();
      lock.unlock();
      deliver(std::move(m));
      lock.lock();
    }
  }
}

void Fabric::quiesce() {
  if (!delayed_) return;
  // Collect under the lock, deliver outside it: deliver() takes the
  // destination mailbox's lock and fabric-lock -> mailbox-lock nesting is
  // avoidable here (nobody races new sends at a quiescent point).
  std::vector<Message> flush;
  {
    std::lock_guard lock(mu_);
    while (!pending_.empty()) {
      flush.push_back(std::move(const_cast<Pending&>(pending_.top()).msg));
      pending_.pop();
    }
  }
  for (Message& m : flush) deliver(std::move(m));
}

void Fabric::shutdown() {
  if (!delayed_) return;
  {
    std::lock_guard lock(mu_);
    if (stopping_ && !delivery_thread_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (delivery_thread_.joinable()) delivery_thread_.join();
  // Flush anything still pending so no accepted message is lost; bounded
  // by queue length, never by simulated delivery deadlines.
  std::lock_guard lock(mu_);
  while (!pending_.empty()) {
    Message m = std::move(const_cast<Pending&>(pending_.top()).msg);
    pending_.pop();
    deliver(std::move(m));
  }
}

FabricStats Fabric::stats() const {
  // Acquire loads in dependency order: fault and byte counters first (their
  // increments are release and sequenced after the matching message-count
  // increment), message counters last. Whatever a snapshot observes, the
  // counters it is bounded by are observed too — FabricStats::validate()
  // holds on every snapshot, not just quiescent ones.
  FabricStats s;
  s.faults_dropped = faults_dropped_.load(std::memory_order_acquire);
  s.faults_duplicated = faults_duplicated_.load(std::memory_order_acquire);
  s.faults_reordered = faults_reordered_.load(std::memory_order_acquire);
  s.faults_crashed = faults_crashed_.load(std::memory_order_acquire);
  s.faults_partitioned = faults_partitioned_.load(std::memory_order_acquire);
  s.ranks_killed = ranks_killed_.load(std::memory_order_acquire);
  s.bytes_sent = bytes_sent_.load(std::memory_order_acquire);
  s.bytes_dropped = bytes_dropped_.load(std::memory_order_acquire);
  s.messages_sent = messages_sent_.load(std::memory_order_acquire);
  s.messages_dropped = messages_dropped_.load(std::memory_order_acquire);
  return s;
}

}  // namespace mp::vc
