// Blocking multi-producer multi-consumer mailbox holding inbound messages of
// one rank. Supports non-blocking polls (used by the runtime's comm thread)
// and bounded waits, plus a close() that wakes all waiters (shutdown path).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "support/analysis.h"
#include "vc/message.h"

namespace mp::vc {

class Mailbox {
 public:
  /// Enqueue a message. Returns false if the mailbox was closed.
  bool push(Message m) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return false;
      queue_.push_back(std::move(m));
      // Happens-before edge for the lifecycle checker: the popper's
      // channel_recv joins this sender's clock.
      MP_ANNOTATE_CHANNEL_SEND(this);
    }
    cv_.notify_one();
    return true;
  }

  /// Non-blocking pop.
  std::optional<Message> try_pop() {
    std::lock_guard lock(mu_);
    return pop_locked();
  }

  /// Pop, waiting up to `timeout`. Returns nullopt on timeout or close.
  std::optional<Message> pop_wait(std::chrono::microseconds timeout) {
    std::unique_lock lock(mu_);
    cv_.wait_for(lock, timeout, [&] { return closed_ || !queue_.empty(); });
    return pop_locked();
  }

  /// Wake all waiters; subsequent pushes are rejected. Messages already
  /// enqueued can still be drained with try_pop().
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard lock(mu_);
    return queue_.size();
  }

 private:
  std::optional<Message> pop_locked() {
    if (queue_.empty()) return std::nullopt;
    Message m = std::move(queue_.front());
    queue_.pop_front();
    MP_ANNOTATE_CHANNEL_RECV(this);
    return m;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool closed_ = false;
};

}  // namespace mp::vc
