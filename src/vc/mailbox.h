// Blocking multi-producer multi-consumer mailbox holding inbound messages of
// one rank. Supports non-blocking polls (used by the runtime's comm thread)
// and bounded waits, plus a close() that wakes all waiters (shutdown path).
//
// Delivery is idempotent: each fabric-stamped message carries a per-source
// wire sequence number, and the mailbox keeps a per-source window (exactly-
// once filter) that discards any seq it has already accepted. A duplicated
// activation therefore reaches the runtime once, no matter how often the
// fabric's dup fault re-delivers it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "support/analysis.h"
#include "vc/message.h"
#include "vc/seq_window.h"

namespace mp::vc {

class Mailbox {
 public:
  /// Enqueue a message. Returns false if the mailbox was closed. A
  /// duplicate (same src, same nonzero seq as an earlier accepted push) is
  /// silently discarded and counted, but still reports success — from the
  /// fabric's point of view the redundant copy was delivered.
  bool push(Message m) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return false;
      if (m.seq != 0 && !accept_seq_locked(m.src, m.seq)) {
        duplicates_filtered_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      queue_.push_back(std::move(m));
      // Happens-before edge for the lifecycle checker: the popper's
      // channel_recv joins this sender's clock.
      MP_ANNOTATE_CHANNEL_SEND(this);
    }
    cv_.notify_one();
    return true;
  }

  /// Non-blocking pop.
  std::optional<Message> try_pop() {
    std::lock_guard lock(mu_);
    return pop_locked();
  }

  /// Pop, waiting up to `timeout`. Returns nullopt on timeout or close.
  std::optional<Message> pop_wait(std::chrono::microseconds timeout) {
    std::unique_lock lock(mu_);
    cv_.wait_for(lock, timeout, [&] { return closed_ || !queue_.empty(); });
    return pop_locked();
  }

  /// Wake all waiters; subsequent pushes are rejected. Messages already
  /// enqueued can still be drained with try_pop().
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Accept pushes again after a close(). Used by Cluster::revive_rank in
  /// failure-tolerance tests; a production mailbox stays closed forever.
  void reopen() {
    std::lock_guard lock(mu_);
    closed_ = false;
  }

  /// Drop the exactly-once window kept for `src`. Required when a source
  /// rank is declared dead and a new incarnation re-appears with a fresh
  /// wire sequence (seq restarting at 1): without the reset every message
  /// of the new incarnation would be filtered as a duplicate of the old
  /// one's, silently blackholing a healthy peer.
  void reset_source(int src) {
    std::lock_guard lock(mu_);
    windows_.erase(src);
  }

  /// Collapse every per-source window to a plain high-water mark: the
  /// watermark jumps to the highest seq ever accepted and the out-of-order
  /// set is cleared. Only safe at a quiescent point where no message with a
  /// seq at or below that maximum can still arrive (between persistent-
  /// runtime submissions, after the job's closing barrier and a fabric
  /// quiesce): the gaps below the maximum belong to messages the fabric
  /// genuinely dropped, which the window would otherwise remember forever —
  /// `above` grows without bound across submissions on a lossy fabric.
  void rebase_windows() {
    std::lock_guard lock(mu_);
    for (auto& [src, w] : windows_) {
      (void)src;
      w.rebase();
    }
  }

  /// Total out-of-order seqs currently remembered across all sources (the
  /// state rebase_windows() collapses). Tests assert this stays bounded
  /// across repeated submissions instead of accumulating drop gaps.
  size_t window_backlog() const {
    std::lock_guard lock(mu_);
    size_t n = 0;
    for (const auto& [src, w] : windows_) {
      (void)src;
      n += w.backlog();
    }
    return n;
  }

  /// Copy of the per-source dedup windows, ordered by source rank. The
  /// mp-explore engine folds this into its state fingerprints; tests use
  /// it to assert window shape directly.
  std::vector<std::pair<int, SeqWindow>> window_snapshot() const {
    std::lock_guard lock(mu_);
    return {windows_.begin(), windows_.end()};
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard lock(mu_);
    return queue_.size();
  }

  /// Messages discarded by the per-source sequence filter.
  uint64_t duplicates_filtered() const {
    return duplicates_filtered_.load(std::memory_order_relaxed);
  }

 private:
  bool accept_seq_locked(int src, uint64_t seq) {
    return windows_[src].accept(seq);
  }

  std::optional<Message> pop_locked() {
    if (queue_.empty()) return std::nullopt;
    Message m = std::move(queue_.front());
    queue_.pop_front();
    MP_ANNOTATE_CHANNEL_RECV(this);
    return m;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::map<int, SeqWindow> windows_;
  std::atomic<uint64_t> duplicates_filtered_{0};
  bool closed_ = false;
};

}  // namespace mp::vc
