#include "vc/cluster.h"

#include <algorithm>
#include <exception>
#include <thread>

#include "support/error.h"

namespace mp::vc {

int RankCtx::nranks() const { return cluster_->nranks(); }

void RankCtx::send(int dst, int tag, Payload payload) {
  Message m;
  m.src = rank_;
  m.dst = dst;
  m.tag = tag;
  m.payload = std::move(payload);
  cluster_->fabric().send(std::move(m));
}

Mailbox& RankCtx::mailbox() { return cluster_->mailbox(rank_); }

void RankCtx::barrier() { cluster_->barrier_wait(); }

void RankCtx::barrier_drop() { cluster_->barrier_arrive_and_drop(); }

bool RankCtx::is_dead() const { return cluster_->is_dead(rank_); }

double RankCtx::allreduce_sum(double x) {
  return cluster_->allreduce(x, rank_, /*max_mode=*/false);
}

double RankCtx::allreduce_max(double x) {
  return cluster_->allreduce(x, rank_, /*max_mode=*/true);
}

Cluster::Cluster(int nranks, FabricConfig fabric_cfg)
    : nranks_(nranks),
      mailboxes_(static_cast<size_t>(nranks)),
      barrier_(nranks),
      counters_(kNumCounters),
      dead_(static_cast<size_t>(nranks)),
      reduce_slots_(static_cast<size_t>(nranks), 0.0) {
  MP_REQUIRE(nranks >= 1, "Cluster: nranks must be >= 1");
  for (auto& c : counters_) c.store(0);
  fabric_ = std::make_unique<Fabric>(&mailboxes_, fabric_cfg);
  // Crash plans fire inside Fabric::send with no fabric lock held; route
  // them through kill_rank so the mailbox closes and the cluster-wide dead
  // flag is visible to every rank's runtime.
  fabric_->set_kill_callback([this](int r) { kill_rank(r); });
}

Cluster::~Cluster() {
  // Flush the fabric before closing the mailboxes: messages still in
  // flight get delivered (and remain drainable) instead of being dropped
  // against closed mailboxes.
  fabric_->shutdown();
  for (auto& mb : mailboxes_) mb.close();
}

void Cluster::run(const std::function<void(RankCtx&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(nranks_));
  std::vector<std::exception_ptr> errors(static_cast<size_t>(nranks_));

  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      RankCtx ctx(this, r);
      try {
        fn(ctx);
      } catch (...) {
        errors[static_cast<size_t>(r)] = std::current_exception();
        // A dead rank must not deadlock the others at a collective; close
        // every mailbox so blocking pops return, and let remaining barrier
        // arrivals proceed by dropping this rank via arrive_and_drop.
        for (auto& mb : mailboxes_) mb.close();
        barrier_.arrive_and_drop();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void Cluster::kill_rank(int rank) {
  MP_REQUIRE(rank >= 0 && rank < nranks_, "Cluster::kill_rank: bad rank");
  // Idempotent latch; also breaks the mutual recursion with the fabric's
  // kill callback (fabric kill -> callback -> here -> fabric kill ...).
  if (dead_[static_cast<size_t>(rank)].exchange(1, std::memory_order_acq_rel) !=
      0) {
    return;
  }
  fabric_->kill_rank(rank);
  // Close only the victim's mailbox: pending messages stay drainable, and a
  // blocked pop on the victim's comm thread wakes up to find itself dead.
  // Survivors' mailboxes are untouched (unlike the rank-exception path in
  // run(), which tears the whole job down).
  mailboxes_[static_cast<size_t>(rank)].close();
}

void Cluster::revive_rank(int rank) {
  MP_REQUIRE(rank >= 0 && rank < nranks_, "Cluster::revive_rank: bad rank");
  if (dead_[static_cast<size_t>(rank)].exchange(0, std::memory_order_acq_rel) ==
      0) {
    return;
  }
  fabric_->revive_rank(rank);
  mailboxes_[static_cast<size_t>(rank)].reopen();
  // New incarnation: every receiver must forget the old incarnation's wire
  // sequence window or the revived rank's messages are eaten as duplicates.
  for (auto& mb : mailboxes_) mb.reset_source(rank);
}

long Cluster::fetch_add_counter(int which, long delta) {
  MP_REQUIRE(which >= 0 && which < kNumCounters, "bad counter index");
  return counters_[static_cast<size_t>(which)].fetch_add(delta);
}

void Cluster::reset_counter(int which, long value) {
  MP_REQUIRE(which >= 0 && which < kNumCounters, "bad counter index");
  counters_[static_cast<size_t>(which)].store(value);
}

void Cluster::barrier_wait() { barrier_.arrive_and_wait(); }

void Cluster::barrier_arrive_and_drop() { barrier_.arrive_and_drop(); }

double Cluster::allreduce(double x, int rank, bool max_mode) {
  reduce_slots_[static_cast<size_t>(rank)] = x;
  barrier_wait();  // all contributions visible after this
  if (rank == 0) {
    // A killed rank's slot still holds its contribution from the last
    // pre-crash reduction (it left the barrier via arrive_and_drop and
    // never writes again); folding that stale value in would silently
    // corrupt every survivor-side allreduce issued after a kill.
    double acc = reduce_slots_[0];
    for (int r = 1; r < nranks_; ++r) {
      if (is_dead(r)) continue;
      const double v = reduce_slots_[static_cast<size_t>(r)];
      acc = max_mode ? std::max(acc, v) : acc + v;
    }
    reduce_result_ = acc;
  }
  barrier_wait();  // result visible to all
  const double out = reduce_result_;
  barrier_wait();  // protect slots/result from the next allreduce
  return out;
}

}  // namespace mp::vc
