// Wire-level message for the virtual cluster, plus a tiny POD serializer.
//
// Messages are immutable once posted to the fabric (C++ Core Guidelines
// CP.mess): the sender moves the payload in and never touches it again.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "support/error.h"

namespace mp::vc {

using Payload = std::vector<uint8_t>;

struct Message {
  int src = -1;
  int dst = -1;
  int tag = 0;
  /// Wire sequence number, stamped by the fabric per source rank (1-based;
  /// 0 = unstamped, e.g. a message pushed straight into a mailbox by a
  /// test). Injected duplicates carry the same seq as the original, which
  /// is what lets the destination mailbox discard them (see Mailbox).
  uint64_t seq = 0;
  Payload payload;
};

/// Append-only POD writer.
class WireWriter {
 public:
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  void put_bytes(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  void put_doubles(const double* p, size_t n) {
    put<uint64_t>(n);
    put_bytes(p, n * sizeof(double));
  }

  Payload take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Payload buf_;
};

/// Sequential POD reader over a received payload.
class WireReader {
 public:
  explicit WireReader(const Payload& p) : data_(p.data()), size_(p.size()) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    MP_REQUIRE(pos_ + sizeof(T) <= size_, "WireReader: truncated message");
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::vector<double> get_doubles() {
    const uint64_t n = get<uint64_t>();
    MP_REQUIRE(pos_ + n * sizeof(double) <= size_,
               "WireReader: truncated double array");
    std::vector<double> out(n);
    std::memcpy(out.data(), data_ + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
    return out;
  }

  bool exhausted() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace mp::vc
