// The interconnect of the virtual cluster. Routes messages from sender to
// the destination rank's mailbox. With a zero-latency config (the default)
// delivery is immediate; with a configured latency/bandwidth a background
// delivery thread holds each message until its arrival time, preserving
// per-(src,dst) FIFO ordering like a real network conduit.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "vc/mailbox.h"
#include "vc/message.h"

namespace mp::vc {

struct FabricConfig {
  /// One-way latency added to every message, microseconds.
  double latency_us = 0.0;
  /// Per-link bandwidth in bytes/second (0 = infinite).
  double bandwidth_Bps = 0.0;
};

class Fabric {
 public:
  Fabric(std::vector<Mailbox>* mailboxes, FabricConfig cfg);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Post a message for delivery. dst must be a valid rank.
  void send(Message m);

  /// Total messages and bytes that have passed through the fabric.
  uint64_t messages_sent() const { return messages_sent_.load(); }
  uint64_t bytes_sent() const { return bytes_sent_.load(); }

  /// Stop the delivery thread (flushes pending messages first).
  void shutdown();

 private:
  struct Pending {
    std::chrono::steady_clock::time_point deliver_at;
    uint64_t seq;  // tie-break to keep FIFO order for equal times
    Message msg;
    bool operator>(const Pending& o) const {
      if (deliver_at != o.deliver_at) return deliver_at > o.deliver_at;
      return seq > o.seq;
    }
  };

  void delivery_loop();

  std::vector<Mailbox>* mailboxes_;
  FabricConfig cfg_;
  bool delayed_;

  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<uint64_t> bytes_sent_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending_;
  uint64_t next_seq_ = 0;
  bool stopping_ = false;
  std::thread delivery_thread_;
};

}  // namespace mp::vc
