// The interconnect of the virtual cluster. Routes messages from sender to
// the destination rank's mailbox. With a zero-latency config (the default)
// delivery is immediate; with a configured latency/bandwidth a background
// delivery thread holds each message until its arrival time, preserving
// per-(src,dst) FIFO ordering like a real network conduit.
//
// For stress testing the runtime's termination protocol the fabric can also
// inject faults: seeded, per-link message drops, duplications and reordering
// jitter. Every fault is counted, so a test can reconcile what entered the
// fabric against what came out the other side.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/rng.h"
#include "vc/mailbox.h"
#include "vc/message.h"

namespace mp::vc {

/// Fault-injection knobs for one link (or, as `FabricConfig::faults`, the
/// default for every link). All probabilities are evaluated per message
/// from a seeded RNG, so a given seed reproduces the exact fault pattern.
struct FaultConfig {
  /// Probability a message is silently lost in transit.
  double drop_prob = 0.0;
  /// Probability a message is delivered twice.
  double dup_prob = 0.0;
  /// Extra per-message delay drawn uniformly from [0, reorder_jitter_us),
  /// breaking the fabric's per-link FIFO ordering.
  double reorder_jitter_us = 0.0;

  bool any() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || reorder_jitter_us > 0.0;
  }
};

struct FabricConfig {
  /// One-way latency added to every message, microseconds.
  double latency_us = 0.0;
  /// Per-link bandwidth in bytes/second (0 = infinite).
  double bandwidth_Bps = 0.0;
  /// Faults applied to every link unless overridden in `link_faults`.
  FaultConfig faults;
  /// Per-(src,dst) fault overrides; a present entry fully replaces `faults`
  /// for that link.
  std::map<std::pair<int, int>, FaultConfig> link_faults;
  /// Seed for the fault RNG; identical seeds reproduce identical faults.
  uint64_t fault_seed = 0x5eedfab51cULL;
};

/// Snapshot of the fabric's counters. `messages_sent` counts messages the
/// fabric accepted (including ones later lost to injected faults);
/// `messages_dropped` counts messages the fabric refused outright (sent
/// after shutdown began, or destined for a closed mailbox); the `faults_*`
/// block counts injected fault events.
struct FabricStats {
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t messages_dropped = 0;
  uint64_t bytes_dropped = 0;
  uint64_t faults_dropped = 0;
  uint64_t faults_duplicated = 0;
  uint64_t faults_reordered = 0;

  /// Internal-consistency self check. The increment/snapshot ordering in
  /// Fabric (release on the second counter of each pair, paired acquire
  /// loads in stats()) makes these hold even for a mid-run snapshot:
  ///   - every injected drop/dup fault belongs to an accepted message,
  ///     so faults_dropped <= messages_sent and
  ///     faults_duplicated <= messages_sent;
  ///   - bytes are only counted alongside a message, so a nonzero byte
  ///     counter implies a nonzero message counter.
  /// Returns an empty string when consistent, else a description of the
  /// violated invariant (stress tests assert on this).
  std::string validate() const {
    if (faults_dropped > messages_sent) {
      return "FabricStats: faults_dropped (" +
             std::to_string(faults_dropped) + ") > messages_sent (" +
             std::to_string(messages_sent) + ")";
    }
    if (faults_duplicated > messages_sent) {
      return "FabricStats: faults_duplicated (" +
             std::to_string(faults_duplicated) + ") > messages_sent (" +
             std::to_string(messages_sent) + ")";
    }
    if (bytes_sent > 0 && messages_sent == 0) {
      return "FabricStats: bytes_sent (" + std::to_string(bytes_sent) +
             ") > 0 with messages_sent == 0";
    }
    if (bytes_dropped > 0 && messages_dropped == 0) {
      return "FabricStats: bytes_dropped (" + std::to_string(bytes_dropped) +
             ") > 0 with messages_dropped == 0";
    }
    return {};
  }
};

class Fabric {
 public:
  Fabric(std::vector<Mailbox>* mailboxes, FabricConfig cfg);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Post a message for delivery. dst must be a valid rank.
  void send(Message m);

  /// Total messages and bytes that have passed through the fabric.
  uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_acquire);
  }
  uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_acquire);
  }
  /// Messages the fabric refused (shutdown in progress / mailbox closed).
  uint64_t messages_dropped() const {
    return messages_dropped_.load(std::memory_order_acquire);
  }

  /// Full counter snapshot, including the fault-injection block.
  FabricStats stats() const;

  /// Stop the delivery thread promptly (does not wait for simulated
  /// delivery deadlines) and flush still-pending messages to their
  /// destination mailboxes so nothing already accepted is lost.
  void shutdown();

 private:
  struct Pending {
    std::chrono::steady_clock::time_point deliver_at;
    uint64_t seq;  // tie-break to keep FIFO order for equal times
    Message msg;
    bool operator>(const Pending& o) const {
      if (deliver_at != o.deliver_at) return deliver_at > o.deliver_at;
      return seq > o.seq;
    }
  };

  void delivery_loop();
  const FaultConfig& fault_for(int src, int dst) const;
  /// Push to the destination mailbox, counting a refused push as dropped.
  void deliver(Message m);
  void count_sent(const Message& m);

  std::vector<Mailbox>* mailboxes_;
  FabricConfig cfg_;
  bool delayed_;

  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> messages_dropped_{0};
  std::atomic<uint64_t> bytes_dropped_{0};
  std::atomic<uint64_t> faults_dropped_{0};
  std::atomic<uint64_t> faults_duplicated_{0};
  std::atomic<uint64_t> faults_reordered_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending_;
  Rng rng_;  // fault RNG, guarded by mu_
  /// Per-source wire sequence counters (index = src rank). Each accepted
  /// message is stamped with the next value before any fault is drawn, so
  /// an injected duplicate is a byte-identical copy, seq included.
  std::vector<std::atomic<uint64_t>> wire_seq_;
  uint64_t next_seq_ = 0;
  bool stopping_ = false;
  std::thread delivery_thread_;
};

}  // namespace mp::vc
