// The interconnect of the virtual cluster. Routes messages from sender to
// the destination rank's mailbox. With a zero-latency config (the default)
// delivery is immediate; with a configured latency/bandwidth a background
// delivery thread holds each message until its arrival time, preserving
// per-(src,dst) FIFO ordering like a real network conduit.
//
// For stress testing the runtime's termination protocol the fabric can also
// inject faults: seeded, per-link message drops, duplications and reordering
// jitter. Every fault is counted, so a test can reconcile what entered the
// fabric against what came out the other side.
//
// Beyond per-message faults the fabric models two whole-endpoint failures
// for the rank-failure-tolerance work (DESIGN.md §10):
//   - crashes: a rank can be killed — by API (kill_rank) or by a seeded
//     CrashPlan that fires when the fabric has accepted a chosen number of
//     messages, which makes "rank dies mid-run" exactly reproducible. A
//     dead endpoint blackholes all traffic to and from it (fail-stop);
//     messages already on the wire still deliver.
//   - one-sided partitions: partition(src, dst) silently swallows every
//     src->dst message while the reverse direction keeps flowing, the
//     classic asymmetric-connectivity case a failure detector must not
//     misread as a crash.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/rng.h"
#include "vc/mailbox.h"
#include "vc/message.h"

namespace mp::vc {

/// Fault-injection knobs for one link (or, as `FabricConfig::faults`, the
/// default for every link). All probabilities are evaluated per message
/// from a seeded RNG, so a given seed reproduces the exact fault pattern.
struct FaultConfig {
  /// Probability a message is silently lost in transit.
  double drop_prob = 0.0;
  /// Probability a message is delivered twice.
  double dup_prob = 0.0;
  /// Extra per-message delay drawn uniformly from [0, reorder_jitter_us),
  /// breaking the fabric's per-link FIFO ordering.
  double reorder_jitter_us = 0.0;

  bool any() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || reorder_jitter_us > 0.0;
  }
};

/// A seeded rank-kill: when the fabric has accepted `after_messages`
/// messages in total, `victim` crashes (fail-stop). Deterministic for a
/// deterministic message schedule, and monotone regardless: the kill always
/// fires at the same point of the fabric's accept stream.
struct CrashPlan {
  int victim = -1;
  uint64_t after_messages = 0;
};

struct FabricConfig {
  /// One-way latency added to every message, microseconds.
  double latency_us = 0.0;
  /// Per-link bandwidth in bytes/second (0 = infinite).
  double bandwidth_Bps = 0.0;
  /// Faults applied to every link unless overridden in `link_faults`.
  FaultConfig faults;
  /// Per-(src,dst) fault overrides; a present entry fully replaces `faults`
  /// for that link.
  std::map<std::pair<int, int>, FaultConfig> link_faults;
  /// Seed for the fault RNG; identical seeds reproduce identical faults.
  uint64_t fault_seed = 0x5eedfab51cULL;
  /// Scheduled rank crashes (see CrashPlan). Each fires at most once.
  std::vector<CrashPlan> crash_plans;
  /// Controlled-scheduler mode (mp-explore, DESIGN.md §12): send() stamps
  /// and accepts messages exactly as usual but parks them on an in-order
  /// pending list instead of delivering. An exploration engine then decides
  /// the fate of every message — deliver / drop / duplicate, in any order —
  /// through the pending_*() APIs, and crash plans never self-fire (the
  /// engine kills ranks as explicit choice points). Mutually exclusive with
  /// latency/bandwidth/jitter (the engine's choice sequence is the clock)
  /// and with the probabilistic drop/dup faults (faults become choices).
  bool controlled = false;
};

/// Snapshot of the fabric's counters. `messages_sent` counts messages the
/// fabric accepted (including ones later lost to injected faults);
/// `messages_dropped` counts messages the fabric refused outright (sent
/// after shutdown began, or destined for a closed mailbox); the `faults_*`
/// block counts injected fault events.
struct FabricStats {
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t messages_dropped = 0;
  uint64_t bytes_dropped = 0;
  uint64_t faults_dropped = 0;
  uint64_t faults_duplicated = 0;
  uint64_t faults_reordered = 0;
  /// Messages blackholed because their source or destination rank is dead.
  uint64_t faults_crashed = 0;
  /// Messages swallowed by a one-sided partition.
  uint64_t faults_partitioned = 0;
  /// Ranks killed so far (API calls + fired crash plans).
  uint64_t ranks_killed = 0;

  /// Internal-consistency self check. The increment/snapshot ordering in
  /// Fabric (release on the second counter of each pair, paired acquire
  /// loads in stats()) makes these hold even for a mid-run snapshot:
  ///   - every injected drop/dup fault belongs to an accepted message,
  ///     so faults_dropped <= messages_sent and
  ///     faults_duplicated <= messages_sent;
  ///   - bytes are only counted alongside a message, so a nonzero byte
  ///     counter implies a nonzero message counter.
  /// Returns an empty string when consistent, else a description of the
  /// violated invariant (stress tests assert on this).
  std::string validate() const {
    if (faults_dropped > messages_sent) {
      return "FabricStats: faults_dropped (" +
             std::to_string(faults_dropped) + ") > messages_sent (" +
             std::to_string(messages_sent) + ")";
    }
    if (faults_duplicated > messages_sent) {
      return "FabricStats: faults_duplicated (" +
             std::to_string(faults_duplicated) + ") > messages_sent (" +
             std::to_string(messages_sent) + ")";
    }
    if (bytes_sent > 0 && messages_sent == 0) {
      return "FabricStats: bytes_sent (" + std::to_string(bytes_sent) +
             ") > 0 with messages_sent == 0";
    }
    if (bytes_dropped > 0 && messages_dropped == 0) {
      return "FabricStats: bytes_dropped (" + std::to_string(bytes_dropped) +
             ") > 0 with messages_dropped == 0";
    }
    if (faults_crashed > messages_sent) {
      return "FabricStats: faults_crashed (" + std::to_string(faults_crashed) +
             ") > messages_sent (" + std::to_string(messages_sent) + ")";
    }
    if (faults_partitioned > messages_sent) {
      return "FabricStats: faults_partitioned (" +
             std::to_string(faults_partitioned) + ") > messages_sent (" +
             std::to_string(messages_sent) + ")";
    }
    if (faults_crashed > 0 && ranks_killed == 0) {
      return "FabricStats: faults_crashed (" + std::to_string(faults_crashed) +
             ") > 0 with ranks_killed == 0";
    }
    return {};
  }
};

class Fabric {
 public:
  Fabric(std::vector<Mailbox>* mailboxes, FabricConfig cfg);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Post a message for delivery. dst must be a valid rank.
  void send(Message m);

  /// Total messages and bytes that have passed through the fabric.
  uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_acquire);
  }
  uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_acquire);
  }
  /// Messages the fabric refused (shutdown in progress / mailbox closed).
  uint64_t messages_dropped() const {
    return messages_dropped_.load(std::memory_order_acquire);
  }

  /// Full counter snapshot, including the fault-injection block.
  FabricStats stats() const;

  // -- endpoint failures (crashes and partitions) --

  /// Kill `rank` (fail-stop): every subsequent message to or from it is
  /// blackholed and counted as faults_crashed. Messages already on the wire
  /// (in the delayed-delivery queue) still deliver — they were sent before
  /// the crash. Idempotent. Also invoked internally when a CrashPlan fires.
  void kill_rank(int rank);
  /// Undo kill_rank for tests that model a rank coming back. Restarts the
  /// rank's wire sequence at 0 — the revived rank is a *new incarnation*,
  /// which is exactly why receivers must Mailbox::reset_source() it.
  void revive_rank(int rank);
  bool is_dead(int rank) const {
    return rank >= 0 && rank < 64 &&
           (dead_mask_.load(std::memory_order_acquire) & (1ULL << rank)) != 0;
  }

  /// One-sided partition: silently swallow every src->dst message (counted
  /// as faults_partitioned) until heal(). The reverse link is unaffected.
  void partition(int src, int dst);
  void heal(int src, int dst);
  bool partitioned(int src, int dst) const;

  /// Callback invoked (once per victim, outside all fabric locks) when a
  /// CrashPlan fires or kill_rank is called; the Cluster uses it to close
  /// the victim's mailbox and mark the rank dead cluster-wide.
  void set_kill_callback(std::function<void(int)> cb) {
    kill_cb_ = std::move(cb);
  }

  /// Stop the delivery thread promptly (does not wait for simulated
  /// delivery deadlines) and flush still-pending messages to their
  /// destination mailboxes so nothing already accepted is lost.
  void shutdown();

  /// Deliver everything still sitting in the delayed queue NOW (ignoring
  /// simulated deadlines) without stopping the delivery thread. Meaningful
  /// only at a quiescent point where no rank is sending — e.g. between
  /// persistent-runtime submissions, after a job's closing barrier: a
  /// quiesce then guarantees the mailboxes hold every message the finished
  /// job will ever produce, so a reset can drain them completely.
  void quiesce();

  /// True while this fabric has never been able to disturb or delay a
  /// message: immediate delivery (zero latency/bandwidth/jitter), no
  /// drop/dup faults on any link, no crash plans, and neither kill_rank()
  /// nor partition() was ever called. Sticky false once cleared. After a
  /// job's closing barrier on such a fabric the mailboxes are already
  /// final — nothing is in flight and nothing can straggle in — which lets
  /// the persistent PTG runtime reset in-band at the end of a clean
  /// submission instead of running the collective quiesce-and-drain reset
  /// at the start of the next one. Callers that clear the flag (kill,
  /// partition) must do so between submissions, not concurrently with one:
  /// ranks sample it independently during a run and a mid-run flip could
  /// be seen by only a subset of them.
  bool lossless_immediate() const {
    return lossless_immediate_.load(std::memory_order_acquire);
  }

  // -- controlled-scheduler mode (FabricConfig::controlled; mp-explore) --
  // In this mode the fabric is a passive in-flight message set: accepted
  // messages park until the exploration engine delivers, drops, or
  // duplicates them by index. Indices are positional (0 .. count-1) into
  // the current pending list; delivering or dropping compacts the list.

  bool controlled() const { return cfg_.controlled; }
  /// Number of parked messages.
  size_t pending_count() const;
  /// Copy of the i-th parked message (the engine inspects src/dst/tag/seq
  /// to name its choice points).
  Message pending_peek(size_t i) const;
  /// Deliver the i-th parked message now: push it to the destination
  /// mailbox (whose dedup window may still filter it) and remove it.
  void deliver_pending(size_t i);
  /// Drop the i-th parked message (an explicit fault choice, counted as
  /// faults_dropped).
  void drop_pending(size_t i);
  /// Park a byte-identical copy — same wire seq — of the i-th message at
  /// the tail (counted as faults_duplicated). The engine delivers both
  /// copies separately; the mailbox's exactly-once window is what must
  /// make the second one invisible.
  void duplicate_pending(size_t i);
  /// Next wire sequence number the fabric would stamp for `src` (i.e. one
  /// past the last stamped seq). The engine encodes window and pending
  /// seqs relative to this so its state fingerprints are invariant under
  /// the monotone seq drift of equivalent protocol states.
  uint64_t wire_seq_next(int src) const;

 private:
  struct Pending {
    std::chrono::steady_clock::time_point deliver_at;
    uint64_t seq;  // tie-break to keep FIFO order for equal times
    Message msg;
    bool operator>(const Pending& o) const {
      if (deliver_at != o.deliver_at) return deliver_at > o.deliver_at;
      return seq > o.seq;
    }
  };

  void delivery_loop();
  const FaultConfig& fault_for(int src, int dst) const;
  /// Push to the destination mailbox, counting a refused push as dropped.
  void deliver(Message m);
  void count_sent(const Message& m);
  /// Fire any CrashPlan whose accept-count threshold has been reached.
  /// Called at the end of send() with no fabric lock held, so the kill
  /// callback is free to close mailboxes / take cluster locks.
  void maybe_trigger_crash();

  std::vector<Mailbox>* mailboxes_;
  FabricConfig cfg_;
  bool delayed_;

  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> messages_dropped_{0};
  std::atomic<uint64_t> bytes_dropped_{0};
  std::atomic<uint64_t> faults_dropped_{0};
  std::atomic<uint64_t> faults_duplicated_{0};
  std::atomic<uint64_t> faults_reordered_{0};
  std::atomic<uint64_t> faults_crashed_{0};
  std::atomic<uint64_t> faults_partitioned_{0};
  std::atomic<uint64_t> ranks_killed_{0};

  /// Bitmask of dead ranks (fail-stop model supports up to 64 ranks; the
  /// real clusters in the tests and the paper are far smaller). Lock-free
  /// so the send() fast path stays cheap.
  std::atomic<uint64_t> dead_mask_{0};
  /// See lossless_immediate(); initialized from cfg_ in the constructor.
  std::atomic<bool> lossless_immediate_{false};
  /// 0 until any partition exists; keeps the common no-partition send()
  /// path from taking part_mu_.
  std::atomic<int> has_partitions_{0};
  mutable std::mutex part_mu_;
  std::set<std::pair<int, int>> partitioned_links_;
  /// One "fired" latch per configured CrashPlan.
  std::vector<std::atomic<uint8_t>> crash_fired_;
  std::function<void(int)> kill_cb_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending_;
  /// Controlled-mode parked messages, in accept order (guarded by mu_).
  std::deque<Message> ctrl_pending_;
  Rng rng_;  // fault RNG, guarded by mu_
  /// Per-source wire sequence counters (index = src rank). Each accepted
  /// message is stamped with the next value before any fault is drawn, so
  /// an injected duplicate is a byte-identical copy, seq included.
  std::vector<std::atomic<uint64_t>> wire_seq_;
  uint64_t next_seq_ = 0;
  bool stopping_ = false;
  std::thread delivery_thread_;
};

}  // namespace mp::vc
