#include "sim/cost_model.h"

// Currently header-only; this TU anchors the library target and reserves a
// home for future calibration loaders.
