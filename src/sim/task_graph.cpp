#include "sim/task_graph.h"

#include <algorithm>

#include "support/error.h"

namespace mp::sim {

const char* to_string(SimTaskKind k) {
  switch (k) {
    case SimTaskKind::kDfill: return "DFILL";
    case SimTaskKind::kReadA: return "READ_A";
    case SimTaskKind::kReadB: return "READ_B";
    case SimTaskKind::kGemm: return "GEMM";
    case SimTaskKind::kReduce: return "REDUCE";
    case SimTaskKind::kSort: return "SORT";
    case SimTaskKind::kWrite: return "WRITE";
  }
  return "?";
}

size_t SimGraph::num_edges() const {
  size_t n = 0;
  for (const auto& t : tasks) n += t.succs.size();
  return n;
}

int block_owner(int64_t offset, int64_t total, int nodes) {
  MP_DCHECK(total > 0 && nodes > 0, "block_owner: bad arguments");
  const int64_t chunk = (total + nodes - 1) / nodes;
  return static_cast<int>(std::min<int64_t>(offset / chunk, nodes - 1));
}

SimGraph build_graph(const tce::ChainPlan& plan, const GraphOptions& opts) {
  opts.variant.validate();
  MP_REQUIRE(opts.nodes >= 1, "build_graph: need >= 1 node");
  const tce::VariantConfig& var = opts.variant;
  const int P = opts.nodes;
  const int max_l1 = static_cast<int>(plan.chains.size());

  SimGraph g;
  g.nodes = P;

  auto prio = [&](int l1, int offset) {
    if (!var.priorities) return 0.0;
    return static_cast<double>(max_l1 - l1 + offset * P);
  };

  auto add_task = [&](SimTaskKind kind, int node, int l1, int l2,
                      double priority, int ndeps) -> int32_t {
    SimTask t;
    t.id = static_cast<int32_t>(g.tasks.size());
    t.kind = kind;
    t.node = node;
    t.l1 = l1;
    t.l2 = l2;
    t.priority = priority;
    t.ndeps = ndeps;
    g.tasks.push_back(std::move(t));
    return g.tasks.back().id;
  };
  auto link = [&](int32_t from, int32_t to) {
    g.tasks[static_cast<size_t>(from)].succs.push_back(to);
  };

  for (const tce::Chain& ch : plan.chains) {
    const int l1 = ch.id;
    const int home = l1 % P;
    const int len = static_cast<int>(ch.gemms.size());
    const double c_bytes = 8.0 * static_cast<double>(ch.c_elems());

    int seg_h = opts.segment_height;
    if (seg_h <= 0) seg_h = var.parallel_gemms ? 1 : len;
    seg_h = std::max(1, std::min(seg_h, len));
    const int nsegs = (len + seg_h - 1) / seg_h;

    // --- GEMMs (and their readers), chained within segments ---
    std::vector<int32_t> seg_tail(static_cast<size_t>(nsegs), -1);
    int32_t prev_in_seg = -1;
    for (int i = 0; i < len; ++i) {
      const tce::GemmOp& go = ch.gemms[static_cast<size_t>(i)];
      const int seg = i / seg_h;
      const bool head = (i % seg_h == 0);

      // Carried C flow adds one dependency inside a segment; segment heads
      // either receive a DFILL (multi-GEMM segments) or own a private C.
      const bool has_dfill = head && seg_h > 1 && len > 1;
      const int ndeps = 2 + ((has_dfill || !head) ? 1 : 0);
      const int32_t gemm = add_task(SimTaskKind::kGemm, home, l1, i,
                                    prio(l1, opts.gemm_offset), ndeps);
      g.tasks[static_cast<size_t>(gemm)].flops = 2.0 * go.m * go.n * go.k;
      // Working-set traffic of the kernel (A + B streamed, C read+written).
      g.tasks[static_cast<size_t>(gemm)].bytes =
          8.0 * (static_cast<double>(go.m) * go.k +
                 static_cast<double>(go.k) * go.n +
                 2.0 * static_cast<double>(go.m) * go.n);
      g.tasks[static_cast<size_t>(gemm)].out_bytes = c_bytes;

      const int owner_a =
          block_owner(go.a_offset, plan.store_size(ch.a_store), P);
      const int32_t ra = add_task(SimTaskKind::kReadA, owner_a, l1, i,
                                  prio(l1, opts.reader_offset), 0);
      g.tasks[static_cast<size_t>(ra)].bytes = 8.0 * go.m * go.k;
      g.tasks[static_cast<size_t>(ra)].out_bytes = 8.0 * go.m * go.k;
      link(ra, gemm);

      const int owner_b =
          block_owner(go.b_offset, plan.store_size(ch.b_store), P);
      const int32_t rb = add_task(SimTaskKind::kReadB, owner_b, l1, i,
                                  prio(l1, opts.reader_offset), 0);
      g.tasks[static_cast<size_t>(rb)].bytes = 8.0 * go.n * go.k;
      g.tasks[static_cast<size_t>(rb)].out_bytes = 8.0 * go.n * go.k;
      link(rb, gemm);

      if (has_dfill) {
        const int32_t df = add_task(SimTaskKind::kDfill, home, l1, seg,
                                    prio(l1, 0), 0);
        g.tasks[static_cast<size_t>(df)].bytes = c_bytes;
        g.tasks[static_cast<size_t>(df)].out_bytes = c_bytes;
        link(df, gemm);
      } else if (!head) {
        link(prev_in_seg, gemm);
      }
      prev_in_seg = gemm;
      if (i % seg_h == seg_h - 1 || i == len - 1) {
        seg_tail[static_cast<size_t>(seg)] = gemm;
      }
    }

    // --- reduction tree over segment results ---
    int32_t root;
    if (nsegs == 1) {
      root = seg_tail[0];
    } else {
      // Heap layout: internal nodes 0..nsegs-2, leaf i at nsegs-1+i.
      std::vector<int32_t> reduce_ids(static_cast<size_t>(nsegs - 1));
      for (int node = 0; node < nsegs - 1; ++node) {
        const int32_t rid =
            add_task(SimTaskKind::kReduce, home, l1, node, prio(l1, 0), 2);
        g.tasks[static_cast<size_t>(rid)].bytes = 2.0 * c_bytes;
        g.tasks[static_cast<size_t>(rid)].out_bytes = c_bytes;
        reduce_ids[static_cast<size_t>(node)] = rid;
      }
      for (int node = 1; node < nsegs - 1; ++node) {
        link(reduce_ids[static_cast<size_t>(node)],
             reduce_ids[static_cast<size_t>((node - 1) / 2)]);
      }
      for (int leaf = 0; leaf < nsegs; ++leaf) {
        const int pos = nsegs - 1 + leaf;
        link(seg_tail[static_cast<size_t>(leaf)],
             reduce_ids[static_cast<size_t>((pos - 1) / 2)]);
      }
      root = reduce_ids[0];
    }

    // --- sort stage ---
    const int nsorts = static_cast<int>(ch.sorts.size());
    const int write_node =
        block_owner(ch.c_offset, plan.store_size(ch.r_store), P);
    if (var.parallel_sorts) {
      for (int i = 0; i < nsorts; ++i) {
        const int32_t so =
            add_task(SimTaskKind::kSort, home, l1, i, prio(l1, 0), 1);
        g.tasks[static_cast<size_t>(so)].bytes = 2.0 * c_bytes;
        g.tasks[static_cast<size_t>(so)].out_bytes = c_bytes;
        link(root, so);
        if (var.parallel_writes) {
          const int32_t wr = add_task(SimTaskKind::kWrite, write_node, l1, i,
                                      prio(l1, 0), 1);
          g.tasks[static_cast<size_t>(wr)].bytes = 2.0 * c_bytes;
          g.tasks[static_cast<size_t>(wr)].needs_mutex = true;
          link(so, wr);
        }
      }
      if (!var.parallel_writes) {
        const int32_t wr = add_task(SimTaskKind::kWrite, write_node, l1, 0,
                                    prio(l1, 0), nsorts);
        g.tasks[static_cast<size_t>(wr)].bytes = 2.0 * c_bytes * nsorts;
        g.tasks[static_cast<size_t>(wr)].needs_mutex = true;
        // link all sorts (the nsorts most recent sort tasks) to wr
        for (int i = 0; i < nsorts; ++i) {
          const int32_t so = wr - 1 - i;
          MP_DCHECK(g.tasks[static_cast<size_t>(so)].kind == SimTaskKind::kSort,
                    "sort/write wiring mismatch");
          link(so, wr);
        }
      }
    } else {
      // Serial SORT: all guarded permutations in one task (reads C once,
      // writes nsorts permuted copies into the master buffer).
      const int32_t so = add_task(SimTaskKind::kSort, home, l1, 0,
                                  prio(l1, 0), 1);
      g.tasks[static_cast<size_t>(so)].bytes =
          c_bytes * (1.0 + static_cast<double>(nsorts));
      g.tasks[static_cast<size_t>(so)].out_bytes = c_bytes;
      link(root, so);
      const int32_t wr = add_task(SimTaskKind::kWrite, write_node, l1, 0,
                                  prio(l1, 0), 1);
      g.tasks[static_cast<size_t>(wr)].bytes = 2.0 * c_bytes;
      g.tasks[static_cast<size_t>(wr)].needs_mutex = true;
      link(so, wr);
    }
  }

  // Without priorities PaRSEC's multi-queue scheduler executes ready tasks
  // in an effectively arbitrary order (per-thread queues + stealing), not
  // in submission order. Model that with a deterministic pseudo-random
  // order so the v2 behaviour (Fig. 11's startup flood) emerges instead of
  // an accidentally-optimal FIFO.
  if (!var.priorities) {
    for (auto& t : g.tasks) {
      uint64_t x = static_cast<uint64_t>(t.id) + 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      x ^= x >> 31;
      t.priority = static_cast<double>(x >> 11) * 0x1.0p-53;
    }
  }

  return g;
}

}  // namespace mp::sim
