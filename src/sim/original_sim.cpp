#include "sim/original_sim.h"

#include <queue>

#include "support/error.h"

namespace mp::sim {

std::vector<std::string> original_class_names() {
  return {"GET", "GEMM", "SORT", "ADD", "NXTVAL"};
}

std::vector<char> original_class_glyphs() {
  return {'~', 'G', 'S', 'w', 'x'};
}

namespace {

constexpr int16_t kGet = 0, kGemm = 1, kSort = 2, kAdd = 3, kNxtval = 4;

struct Fcfs {
  double free_at = 0.0;
  double serve(double t, double dur) {
    const double start = free_at > t ? free_at : t;
    free_at = start + dur;
    return free_at;
  }
};

// One sequential process (an "MPI rank" of the original code).
struct Proc {
  int node = 0;
  int core = 0;
  int chain = -1;     // current chain, -1 = needs a ticket
  int gemm_idx = 0;
  int sort_idx = 0;
  bool in_sorts = false;
};

struct Continuation {
  double time = 0.0;
  uint64_t seq = 0;
  int proc = 0;
  bool operator>(const Continuation& o) const {
    if (time != o.time) return time > o.time;
    return seq > o.seq;
  }
};

}  // namespace

OriginalSimResult simulate_original(const tce::ChainPlan& plan,
                                    const OriginalSimOptions& opts) {
  MP_REQUIRE(opts.nodes >= 1 && opts.cores_per_node >= 1,
             "simulate_original: bad cluster shape");
  const CostModel& cm = opts.cost;
  const int P = opts.nodes;
  const int cores = opts.cores_per_node;
  const int nprocs = P * opts.cores_per_node;
  const int nchains = static_cast<int>(plan.chains.size());

  std::vector<Proc> procs(static_cast<size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p) {
    procs[static_cast<size_t>(p)].node = p / opts.cores_per_node;
    procs[static_cast<size_t>(p)].core = p % opts.cores_per_node;
  }

  Fcfs counter;                       // the NXTVAL server (lives on node 0)
  std::vector<Fcfs> nic_out(static_cast<size_t>(P));
  std::vector<Fcfs> acc_server(static_cast<size_t>(P));  // GA accumulate
  long next_ticket = 0;
  std::vector<int> static_next(static_cast<size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p) static_next[static_cast<size_t>(p)] = p;

  OriginalSimResult res;
  uint64_t seq = 0;
  std::priority_queue<Continuation, std::vector<Continuation>,
                      std::greater<>>
      queue;
  for (int p = 0; p < nprocs; ++p) queue.push({0.0, seq++, p});

  auto trace_add = [&](const Proc& pr, int16_t cls, int32_t a, double t0,
                       double t1, bool comm) {
    if (!opts.record_trace) return;
    res.trace.add(ptg::TraceEvent{pr.node, pr.core, cls, ptg::params_of(a),
                                  t0, t1, comm});
  };

  // Blocking one-sided get from `owner`: request latency, FCFS service at
  // the owner NIC, data wire time, response latency. Local gets stream
  // from memory.
  auto blocking_get = [&](int node, int owner, double bytes, double t) {
    if (owner == node) return t + cm.stream_time(bytes, cores);
    const double t_served = nic_out[static_cast<size_t>(owner)].serve(
        t + cm.net_latency_s, cm.wire_time(bytes) + cm.comm_msg_overhead_s);
    return t_served + cm.net_latency_s;
  };

  double makespan = 0.0;
  while (!queue.empty()) {
    const Continuation c = queue.top();
    queue.pop();
    Proc& pr = procs[static_cast<size_t>(c.proc)];
    const double t = c.time;
    makespan = std::max(makespan, t);

    // Acquire work if needed.
    if (pr.chain < 0) {
      double t_ticket;
      long ticket;
      if (opts.static_distribution) {
        ticket = static_next[static_cast<size_t>(c.proc)];
        static_next[static_cast<size_t>(c.proc)] += nprocs;
        t_ticket = t;  // no global communication
      } else {
        // Round trip to the shared counter + FCFS serialization there.
        t_ticket = counter.serve(t + cm.nxtval_rtt_s / 2,
                                 cm.nxtval_service_s) +
                   cm.nxtval_rtt_s / 2;
        ticket = next_ticket++;
        res.nxtval_time += t_ticket - t;
        trace_add(pr, kNxtval, static_cast<int32_t>(ticket), t, t_ticket,
                  true);
      }
      if (ticket >= nchains) {
        makespan = std::max(makespan, t_ticket);
        continue;  // this process is done (level barrier = max end time)
      }
      pr.chain = static_cast<int>(ticket);
      pr.gemm_idx = 0;
      pr.sort_idx = 0;
      pr.in_sorts = false;
      queue.push({t_ticket, seq++, c.proc});
      continue;
    }

    const tce::Chain& chain = plan.chains[static_cast<size_t>(pr.chain)];
    const double c_bytes = 8.0 * static_cast<double>(chain.c_elems());

    if (!pr.in_sorts) {
      // GET A, GET B (blocking, back to back), then the GEMM.
      const tce::GemmOp& g = chain.gemms[static_cast<size_t>(pr.gemm_idx)];
      const int owner_a =
          block_owner(g.a_offset, plan.store_size(chain.a_store), P);
      const int owner_b =
          block_owner(g.b_offset, plan.store_size(chain.b_store), P);
      const double ta = blocking_get(pr.node, owner_a, 8.0 * g.m * g.k, t);
      const double tb =
          blocking_get(pr.node, owner_b, 8.0 * g.n * g.k, ta);
      res.blocked_comm_time += tb - t;
      trace_add(pr, kGet, g.l2, t, tb, true);

      const double gemm_bytes =
          8.0 * (static_cast<double>(g.m) * g.k +
                 static_cast<double>(g.k) * g.n +
                 2.0 * static_cast<double>(g.m) * g.n);
      const double tg = tb + cm.gemm_time(2.0 * g.m * g.n * g.k, gemm_bytes, cores);
      res.compute_time += tg - tb;
      trace_add(pr, kGemm, g.l2, tb, tg, false);

      if (++pr.gemm_idx >= static_cast<int>(chain.gemms.size())) {
        pr.in_sorts = true;
      }
      queue.push({tg, seq++, c.proc});
      continue;
    }

    // One guarded SORT followed by its blocking ADD_HASH_BLOCK.
    const double ts =
        t + cm.sort_overhead_s + cm.stream_time(2.0 * c_bytes, cores);
    res.compute_time += ts - t;
    trace_add(pr, kSort, pr.sort_idx, t, ts, false);

    const int owner_c =
        block_owner(chain.c_offset, plan.store_size(chain.r_store), P);
    double tw;
    if (owner_c == pr.node) {
      tw = acc_server[static_cast<size_t>(owner_c)].serve(
          ts, cm.stream_time(2.0 * c_bytes, cores));
    } else {
      const double arrive =
          nic_out[static_cast<size_t>(pr.node)].serve(
              ts, cm.wire_time(c_bytes) + cm.comm_msg_overhead_s) +
          cm.net_latency_s;
      tw = acc_server[static_cast<size_t>(owner_c)].serve(
               arrive, cm.stream_time(2.0 * c_bytes, cores)) +
           cm.net_latency_s;
    }
    res.blocked_comm_time += tw - ts;
    trace_add(pr, kAdd, pr.sort_idx, ts, tw, true);

    if (++pr.sort_idx >= static_cast<int>(chain.sorts.size())) {
      pr.chain = -1;  // chain complete; fetch the next ticket
    }
    queue.push({tw, seq++, c.proc});
  }

  res.makespan = makespan;
  const double capacity = makespan * static_cast<double>(nprocs);
  res.idle_fraction =
      capacity > 0.0 ? 1.0 - res.compute_time / capacity : 0.0;
  return res;
}

}  // namespace mp::sim
