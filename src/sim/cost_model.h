// Cost model for the discrete-event cluster simulator.
//
// Default constants approximate the paper's testbed — PNNL Cascade
// (Xeon E5-2670v2-class nodes, FDR InfiniBand) — at the granularity the
// simulation needs: per-core GEMM throughput, per-core streaming bandwidth
// for the memory-bound SORT/WRITE/reduction kernels, NIC bandwidth and
// latency, per-message communication-thread overhead, runtime per-task
// overhead, mutex cost, and the NXTVAL counter's round-trip and
// serialization costs. The microbenchmarks in bench/bench_kernels.cpp
// measure the compute-side numbers on the host so the model can be
// re-calibrated (see EXPERIMENTS.md).
#pragma once

#include <cstddef>

namespace mp::sim {

struct CostModel {
  // --- compute ---
  double gemm_flops_per_sec = 10e9;   ///< per-core sustained dgemm rate
  double gemm_overhead_s = 8e-6;      ///< kernel launch / loop setup
  double mem_bw_Bps = 5e9;            ///< per-core streaming bandwidth
  /// Effective node-level bandwidth under the strided access patterns of
  /// SORT/accumulate (well below the STREAM number of the socket).
  double node_mem_bw_Bps = 16e9;
  double sort_overhead_s = 4e-6;
  double task_overhead_s = 3e-6;      ///< runtime scheduling cost per task

  // --- network ---
  double net_latency_s = 2.5e-6;      ///< one-way latency
  /// Effective per-direction NIC bandwidth (protocol + GA overheads leave
  /// well under the QDR/FDR line rate).
  double net_bw_Bps = 2.0e9;
  double comm_msg_overhead_s = 1.5e-6;///< comm-thread handling per message
  /// Messages above this size use the rendezvous protocol: an extra
  /// request/acknowledge round trip before the payload moves.
  double eager_limit_bytes = 8192.0;

  // --- accelerators (the paper's "hybrid architectures" future work) ---
  /// Accelerators per node; 0 disables offload.
  int accels_per_node = 0;
  double accel_flops_per_sec = 120e9;   ///< per-device sustained dgemm
  double accel_pcie_bw_Bps = 6e9;       ///< host<->device transfer
  double accel_launch_overhead_s = 1e-5;
  /// Only GEMMs at least this large are worth offloading.
  double accel_offload_threshold_flops = 5e7;

  // --- synchronization ---
  double mutex_cycle_s = 1.2e-6;      ///< lock+unlock of the node mutex
  double nxtval_rtt_s = 5e-6;         ///< round trip to the counter host
  double nxtval_service_s = 1.0e-6;   ///< serialization at the counter

  // --- derived helpers ---
  /// Socket contention: when `cores` each demand mem_bw_Bps but the node
  /// only sustains node_mem_bw_Bps, every memory-bound operation slows by
  /// this factor. This is what bends the curves past ~8 cores/node.
  double mem_contention(int cores) const {
    const double demand = static_cast<double>(cores) * mem_bw_Bps;
    return demand > node_mem_bw_Bps ? demand / node_mem_bw_Bps : 1.0;
  }
  double gemm_time(double flops, double bytes, int cores) const {
    return gemm_overhead_s + flops / gemm_flops_per_sec +
           stream_time(bytes, cores);
  }
  double stream_time(double bytes, int cores) const {
    return bytes / mem_bw_Bps * mem_contention(cores);
  }
  double wire_time(double bytes) const { return bytes / net_bw_Bps; }
  /// Extra latency paid by rendezvous-protocol messages.
  double protocol_latency(double bytes) const {
    return bytes > eager_limit_bytes ? 2.0 * net_latency_s : 0.0;
  }
};

}  // namespace mp::sim
