#include "sim/presets.h"

#include "support/error.h"
#include "tce/imbalance.h"

namespace mp::sim {
namespace {

PresetPlan build(const std::string& name, const std::string& desc,
                 tce::TileSpaceSpec spec) {
  PresetPlan p;
  p.name = name;
  p.description = desc;
  p.space = std::make_unique<tce::TileSpace>(spec);
  using tce::BlockTensor4;
  using tce::RangeKind;
  const std::array<RangeKind, 4> vvvv{RangeKind::kVirt, RangeKind::kVirt,
                                      RangeKind::kVirt, RangeKind::kVirt};
  const std::array<RangeKind, 4> vvoo{RangeKind::kVirt, RangeKind::kVirt,
                                      RangeKind::kOcc, RangeKind::kOcc};
  p.v = std::make_unique<BlockTensor4>(*p.space, vvvv);
  p.t = std::make_unique<BlockTensor4>(*p.space, vvoo);
  p.r = std::make_unique<BlockTensor4>(*p.space, vvoo, true, true);
  p.plan = tce::inspect_t2_7(*p.space, {p.v.get(), p.t.get(), p.r.get()});
  return p;
}

}  // namespace

std::vector<std::string> preset_names() {
  return {"tiny", "beta_carotene_32", "beta_carotene_c2h",
          "beta_carotene_full", "skewed_tile", "nested_imbalance"};
}

PresetPlan make_preset(const std::string& name) {
  tce::TileSpaceSpec spec;
  if (name == "tiny") {
    spec.n_occ_alpha = spec.n_occ_beta = 4;
    spec.n_virt_alpha = spec.n_virt_beta = 8;
    spec.tile_size = 4;
    return build(name, "small test structure (8o/16v, tile 4)", spec);
  }
  if (name == "beta_carotene_32") {
    spec.n_occ_alpha = spec.n_occ_beta = 60;
    spec.n_virt_alpha = spec.n_virt_beta = 120;
    spec.tile_size = 20;
    return build(name,
                 "beta-carotene workload scaled for 32-node simulation "
                 "(120o/240v spin orbitals, tile 20)",
                 spec);
  }
  if (name == "beta_carotene_c2h") {
    // Same sizes as beta_carotene_32 but with the C2h point group's two
    // relevant abelian irreps: spatial symmetry thins the block structure
    // and widens the chain-length distribution, as in real NWChem runs.
    spec.n_occ_alpha = spec.n_occ_beta = 60;
    spec.n_virt_alpha = spec.n_virt_beta = 120;
    spec.tile_size = 20;
    spec.num_irreps = 2;
    return build(name,
                 "beta-carotene workload with C2h spatial symmetry "
                 "(120o/240v spin orbitals, tile 20, 2 irreps)",
                 spec);
  }
  if (name == "beta_carotene_full") {
    spec.n_occ_alpha = spec.n_occ_beta = 148;
    spec.n_virt_alpha = spec.n_virt_beta = 324;
    spec.tile_size = 40;
    return build(name,
                 "full beta-carotene 6-31G block structure "
                 "(296o/648v spin orbitals, tile 40)",
                 spec);
  }
  if (name == "skewed_tile" || name == "nested_imbalance") {
    // Imbalanced workloads for the work-stealing experiments (DESIGN.md
    // §9): paper-scale tiles (the full problem uses tile 40) whose chain
    // lengths are re-skewed by the tce imbalance generators. The large
    // tiles matter: GEMM flops grow with tile^6 but migrated payloads only
    // with tile^4, so at this size a stolen task carries ~2x more relief
    // than wire cost — stealing has something to win. Both presets target
    // 8 ranks — the residue classes the generators aim the skew at — so
    // run them on 8 nodes for the intended imbalance.
    spec.n_occ_alpha = spec.n_occ_beta = 64;
    spec.n_virt_alpha = spec.n_virt_beta = 128;
    spec.tile_size = 32;
    tce::ImbalanceSpec imb;
    imb.nranks = 8;
    imb.zipf_alpha = 1.5;
    if (name == "skewed_tile") {
      PresetPlan p = build(name,
                           "Zipf chain lengths clustered on one hot rank of "
                           "8 (128o/256v spin orbitals, tile 32)",
                           spec);
      p.plan = tce::make_skewed_plan(p.plan, imb);
      return p;
    }
    PresetPlan p = build(name,
                         "two-tier Zipf imbalance across and within 8 ranks "
                         "(128o/256v spin orbitals, tile 32)",
                         spec);
    p.plan = tce::make_nested_imbalance_plan(p.plan, imb);
    return p;
  }
  throw InvalidArgument("unknown preset: " + name);
}

}  // namespace mp::sim
