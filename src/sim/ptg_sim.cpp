#include "sim/ptg_sim.h"

#include <algorithm>
#include <queue>

#include "support/error.h"

namespace mp::sim {

std::vector<std::string> sim_class_names() {
  return {"DFILL", "READ_A", "READ_B", "GEMM", "REDUCE", "SORT", "WRITE"};
}

std::vector<char> sim_class_glyphs() {
  // Red GEMMs in the paper's traces -> 'G'; readers 'a'/'b'; etc.
  return {'0', 'a', 'b', 'G', 'R', 'S', 'W'};
}

namespace {

/// A single-server FCFS resource tracked by its next free time.
struct Fcfs {
  double free_at = 0.0;
  /// Serve a request arriving at `t` taking `dur`; returns completion time.
  double serve(double t, double dur) {
    const double start = free_at > t ? free_at : t;
    free_at = start + dur;
    return free_at;
  }
  /// Wait the request would incur before service starts.
  double wait(double t) const { return free_at > t ? free_at - t : 0.0; }
};

enum class EvType : int8_t {
  kFinish,
  kArrive,
  kDeposit,
  kStealReq,   ///< STEAL_REQUEST lands at the victim (task = thief node)
  kStealReply, ///< reply lands at the thief (task = batch index, -1 empty)
  kDeath,      ///< fail-stop: node `core` goes silent
  kRecover     ///< survivors confirmed the death of node `core`
};

struct Event {
  double time = 0.0;
  uint64_t seq = 0;
  EvType type = EvType::kFinish;
  int32_t task = -1;
  int32_t core = -1;     // kFinish; kStealReq/kStealReply/kDeath: dst node
  double bytes = 0.0;    // kArrive
  int32_t from_node = 0; // kArrive (trace only); kStealReply: victim
  int32_t gen = 0;       // task incarnation (stale-delivery fencing)

  bool operator>(const Event& o) const {
    if (time != o.time) return time > o.time;
    return seq > o.seq;
  }
};

struct ReadyEntry {
  double priority = 0.0;
  uint64_t seq = 0;
  int32_t task = -1;
  // Max-heap: higher priority first, FIFO among equals.
  bool operator<(const ReadyEntry& o) const {
    if (priority != o.priority) return priority < o.priority;
    return seq > o.seq;
  }
};

struct NodeState {
  std::vector<int32_t> idle_cores;
  std::priority_queue<ReadyEntry> ready;
  Fcfs nic_in, nic_out, comm, mutex;
  std::vector<Fcfs> accels;  ///< offload devices (hybrid future work)
  bool steal_inflight = false;   ///< a STEAL_REQUEST awaits its reply
  double next_steal_at = 0.0;    ///< backoff after an empty-handed attempt
};

}  // namespace

SimResult simulate_ptg(const SimGraph& graph, const SimOptions& opts) {
  MP_REQUIRE(opts.cores_per_node >= 1, "simulate_ptg: need >= 1 core");
  const CostModel& cm = opts.cost;
  const int P = graph.nodes;

  std::vector<NodeState> nodes(static_cast<size_t>(P));
  for (auto& n : nodes) {
    n.idle_cores.resize(static_cast<size_t>(opts.cores_per_node));
    for (int c = 0; c < opts.cores_per_node; ++c) {
      n.idle_cores[static_cast<size_t>(c)] = c;
    }
    n.accels.resize(static_cast<size_t>(cm.accels_per_node));
  }

  std::vector<int32_t> deps(graph.tasks.size());
  for (size_t i = 0; i < graph.tasks.size(); ++i) {
    deps[i] = graph.tasks[i].ndeps;
  }

  // Where each task actually runs: stealing rewrites entries away from the
  // static placement, and successor routing compares against this (a
  // migrated task's outputs travel from the node that executed it).
  std::vector<int32_t> exec_node(graph.tasks.size());
  for (size_t i = 0; i < graph.tasks.size(); ++i) {
    exec_node[i] = graph.tasks[i].node;
  }
  std::vector<std::vector<int32_t>> steal_batches;

  // Failure-recovery state. home_node is where activations are delivered
  // (static placement until recovery re-homes a dead node's tasks); gen
  // counts a task's incarnation so deliveries and finishes addressed to a
  // pre-death incarnation are fenced, exactly like the runtime dropping
  // messages from (or results for) a dead epoch.
  std::vector<int32_t> home_node(exec_node);
  std::vector<int32_t> task_gen(graph.tasks.size(), 0);
  std::vector<uint8_t> completed(graph.tasks.size(), 0);
  std::vector<uint8_t> node_dead(static_cast<size_t>(P), 0);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  uint64_t seq = 0;
  SimResult res;

  const int cores = opts.cores_per_node;
  auto task_duration = [&](const SimTask& t) {
    switch (t.kind) {
      case SimTaskKind::kGemm:
        return cm.task_overhead_s + cm.gemm_time(t.flops, t.bytes, cores);
      case SimTaskKind::kSort:
        return cm.task_overhead_s + cm.sort_overhead_s +
               cm.stream_time(t.bytes, cores);
      default:
        return cm.task_overhead_s + cm.stream_time(t.bytes, cores);
    }
  };

  auto dispatch = [&](int node_id, double now) {
    NodeState& node = nodes[static_cast<size_t>(node_id)];
    while (!node.idle_cores.empty() && !node.ready.empty()) {
      const ReadyEntry re = node.ready.top();
      node.ready.pop();
      const int32_t core = node.idle_cores.back();
      node.idle_cores.pop_back();
      const SimTask& t = graph.tasks[static_cast<size_t>(re.task)];

      double end;
      if (t.needs_mutex) {
        // The core blocks until the node mutex is free, then holds it for
        // the critical region (lock cycle + the accumulate itself).
        const double wait = node.mutex.wait(now);
        res.mutex_wait_time += wait;
        end = node.mutex.serve(now,
                               cm.mutex_cycle_s + cm.task_overhead_s +
                                   cm.stream_time(t.bytes, cores));
      } else {
        end = now + task_duration(t);
        if (t.kind == SimTaskKind::kGemm && !node.accels.empty() &&
            t.flops >= cm.accel_offload_threshold_flops) {
          // Hybrid offload (the paper's future-work direction): pick the
          // least-loaded device and offload only when it beats running on
          // this core — the runtime's opportunistic device selection.
          size_t best = 0;
          for (size_t d = 1; d < node.accels.size(); ++d) {
            if (node.accels[d].free_at < node.accels[best].free_at) best = d;
          }
          const double dur = t.flops / cm.accel_flops_per_sec +
                             (t.bytes + t.out_bytes) / cm.accel_pcie_bw_Bps;
          const double launch = now + cm.accel_launch_overhead_s;
          const double accel_end =
              (node.accels[best].free_at > launch ? node.accels[best].free_at
                                                  : launch) +
              dur;
          if (accel_end < end) {
            end = node.accels[best].serve(launch, dur);
            res.offloaded_gemms += 1;
          }
        }
      }
      events.push(Event{end, seq++, EvType::kFinish, re.task, core, 0.0, 0,
                        task_gen[static_cast<size_t>(re.task)]});

      res.core_busy_time += end - now;
      res.busy_by_kind[static_cast<size_t>(t.kind)] += end - now;
      if (opts.record_trace) {
        // node_id, not t.node: migrated tasks render on the executing node.
        res.trace.add(ptg::TraceEvent{node_id, core,
                                      static_cast<int16_t>(t.kind),
                                      ptg::params_of(t.l1, t.l2), now, end,
                                      false});
      }
    }
  };

  // Idle detection + victim selection of the steal agent: any fully idle
  // node past its backoff asks the most loaded peer (argmax ready-count,
  // lowest index wins ties — deterministic) for work. The request is a
  // zero-payload control message riding the comm thread and NIC.
  auto try_steals = [&](double tnow) {
    if (!opts.enable_stealing || P < 2) return;
    for (int thief = 0; thief < P; ++thief) {
      NodeState& tn = nodes[static_cast<size_t>(thief)];
      if (node_dead[static_cast<size_t>(thief)] || tn.steal_inflight ||
          !tn.ready.empty() ||
          tn.idle_cores.size() != static_cast<size_t>(cores) ||
          tnow < tn.next_steal_at) {
        continue;
      }
      int victim = -1;
      size_t best = 1;  // a victim needs >= 2 ready tasks to share
      for (int v = 0; v < P; ++v) {
        if (v == thief || node_dead[static_cast<size_t>(v)]) continue;
        if (nodes[static_cast<size_t>(v)].ready.size() > best) {
          best = nodes[static_cast<size_t>(v)].ready.size();
          victim = v;
        }
      }
      if (victim < 0) continue;
      tn.steal_inflight = true;
      res.steal_requests += 1;
      const double t_comm = tn.comm.serve(tnow, cm.comm_msg_overhead_s);
      const double t_out = tn.nic_out.serve(t_comm, 0.0);
      events.push(Event{t_out + cm.net_latency_s, seq++, EvType::kStealReq,
                        thief, victim, 0.0, 0});
    }
  };

  auto make_ready = [&](int32_t task_id, double now) {
    const SimTask& t = graph.tasks[static_cast<size_t>(task_id)];
    const int32_t hn = home_node[static_cast<size_t>(task_id)];
    nodes[static_cast<size_t>(hn)].ready.push(
        ReadyEntry{t.priority, seq++, task_id});
    dispatch(hn, now);
  };

  // Seed startup tasks (readers, DFILLs, dependency-free GEMMs).
  // Enqueue all before dispatching so the priority order, not the task id
  // order, decides execution — this is what Context::enumerate_startup does.
  for (const SimTask& t : graph.tasks) {
    if (t.ndeps == 0) {
      nodes[static_cast<size_t>(t.node)].ready.push(
          ReadyEntry{t.priority, seq++, t.id});
    }
  }
  for (int n = 0; n < P; ++n) dispatch(n, 0.0);
  try_steals(0.0);

  if (opts.fail_node >= 0) {
    MP_REQUIRE(opts.fail_node < P, "simulate_ptg: fail_node out of range");
    MP_REQUIRE(P >= 2, "simulate_ptg: death injection needs >= 2 nodes");
    events.push(Event{opts.fail_time_s, seq++, EvType::kDeath, -1,
                      opts.fail_node, 0.0, 0});
    events.push(Event{opts.fail_time_s + opts.detect_delay_s, seq++,
                      EvType::kRecover, -1, opts.fail_node, 0.0, 0});
  }

  double now = 0.0;
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    now = ev.time;

    switch (ev.type) {
      case EvType::kFinish: {
        // Stale incarnation (the task was re-homed by recovery after this
        // run started) or a core that died mid-task: the result is lost.
        if (ev.gen != task_gen[static_cast<size_t>(ev.task)]) break;
        const SimTask& t = graph.tasks[static_cast<size_t>(ev.task)];
        const int32_t xnode = exec_node[static_cast<size_t>(ev.task)];
        if (node_dead[static_cast<size_t>(xnode)]) break;
        NodeState& node = nodes[static_cast<size_t>(xnode)];
        node.idle_cores.push_back(ev.core);
        completed[static_cast<size_t>(ev.task)] = 1;
        for (const int32_t s : t.succs) {
          if (completed[static_cast<size_t>(s)]) continue;
          const int32_t hn = home_node[static_cast<size_t>(s)];
          if (hn == xnode) {
            if (deps[static_cast<size_t>(s)] > 0 &&
                --deps[static_cast<size_t>(s)] == 0) {
              make_ready(s, now);
            }
          } else {
            // Cross-node activation: comm thread hands the buffer to the
            // NIC; FCFS injection, wire latency, then ejection at the peer.
            // A dead destination blackholes the message, but the sender
            // pays the send cost anyway (it does not know yet).
            const double t_comm =
                node.comm.serve(now, cm.comm_msg_overhead_s);
            const double t_out =
                node.nic_out.serve(t_comm, cm.wire_time(t.out_bytes));
            res.comm_busy_time += cm.wire_time(t.out_bytes);
            res.transfers += 1;
            res.bytes_transferred += t.out_bytes;
            events.push(Event{t_out + cm.net_latency_s +
                                  cm.protocol_latency(t.out_bytes),
                              seq++, EvType::kArrive, s, -1, t.out_bytes,
                              xnode, task_gen[static_cast<size_t>(s)]});
          }
        }
        dispatch(xnode, now);
        try_steals(now);
        break;
      }
      case EvType::kArrive: {
        if (ev.gen != task_gen[static_cast<size_t>(ev.task)]) break;
        const SimTask& st = graph.tasks[static_cast<size_t>(ev.task)];
        const int32_t hn = home_node[static_cast<size_t>(ev.task)];
        if (node_dead[static_cast<size_t>(hn)]) break;  // blackholed
        NodeState& node = nodes[static_cast<size_t>(hn)];
        const double t_in = node.nic_in.serve(now, cm.wire_time(ev.bytes));
        const double t_dep = node.comm.serve(t_in, cm.comm_msg_overhead_s);
        res.comm_busy_time += cm.wire_time(ev.bytes);
        if (opts.record_trace) {
          res.trace.add(ptg::TraceEvent{hn, -1, -1,
                                        ptg::params_of(st.l1, st.l2), now,
                                        t_dep, true});
        }
        events.push(Event{t_dep, seq++, EvType::kDeposit, ev.task, -1, 0.0,
                          0, ev.gen});
        break;
      }
      case EvType::kDeposit: {
        if (ev.gen != task_gen[static_cast<size_t>(ev.task)]) break;
        if (completed[static_cast<size_t>(ev.task)]) break;
        if (node_dead[static_cast<size_t>(
                home_node[static_cast<size_t>(ev.task)])]) {
          break;  // deposited on the dead node, lost with it
        }
        if (deps[static_cast<size_t>(ev.task)] > 0 &&
            --deps[static_cast<size_t>(ev.task)] == 0) {
          make_ready(ev.task, now);
        }
        break;
      }
      case EvType::kStealReq: {
        // Victim side: harvest the lowest-priority half of the ready
        // queue (capped), skipping non-migratable work, and ship it with
        // its input payloads. An empty-handed reply still goes back so
        // the thief can re-arm.
        const int thief = ev.task;
        if (node_dead[static_cast<size_t>(ev.core)]) {
          // Dead victim never answers; model the thief's re-arm as an
          // empty reply after the usual round trip.
          events.push(Event{now + cm.net_latency_s, seq++,
                            EvType::kStealReply, -1, thief, 0.0, ev.core});
          break;
        }
        NodeState& victim = nodes[static_cast<size_t>(ev.core)];
        const double t_seen = victim.comm.serve(now, cm.comm_msg_overhead_s);
        std::vector<ReadyEntry> all;
        while (!victim.ready.empty()) {
          all.push_back(victim.ready.top());
          victim.ready.pop();
        }
        const size_t want = std::min(
            all.size() / 2, static_cast<size_t>(opts.steal_max_batch));
        std::vector<int32_t> batch;
        double bytes = 0.0;
        for (auto it = all.rbegin(); it != all.rend(); ++it) {
          const SimTask& t = graph.tasks[static_cast<size_t>(it->task)];
          if (batch.size() < want && t.kind != SimTaskKind::kWrite &&
              !t.needs_mutex) {
            batch.push_back(it->task);
            // Claimed by the thief the moment it leaves the victim's queue:
            // if the thief dies while the batch is on the wire, recovery
            // finds these tasks by exec_node and re-homes them.
            exec_node[static_cast<size_t>(it->task)] = thief;
            bytes += t.bytes;
          } else {
            victim.ready.push(*it);
          }
        }
        double t_ready = t_seen;
        int32_t bidx = -1;
        if (!batch.empty()) {
          t_ready = victim.nic_out.serve(t_seen, cm.wire_time(bytes));
          res.comm_busy_time += cm.wire_time(bytes);
          res.steal_bytes += bytes;
          res.steal_hits += 1;
          bidx = static_cast<int32_t>(steal_batches.size());
          steal_batches.push_back(std::move(batch));
        }
        events.push(Event{t_ready + cm.net_latency_s +
                              cm.protocol_latency(bytes),
                          seq++, EvType::kStealReply, bidx, thief, bytes,
                          ev.core});
        break;
      }
      case EvType::kStealReply: {
        const int thief = ev.core;
        if (node_dead[static_cast<size_t>(thief)]) break;
        NodeState& tn = nodes[static_cast<size_t>(thief)];
        tn.steal_inflight = false;
        if (ev.task < 0) {
          tn.next_steal_at = now + opts.steal_backoff_s;
          break;
        }
        const double t_in = tn.nic_in.serve(now, cm.wire_time(ev.bytes));
        const double t_dep = tn.comm.serve(t_in, cm.comm_msg_overhead_s);
        for (const int32_t id : steal_batches[static_cast<size_t>(ev.task)]) {
          exec_node[static_cast<size_t>(id)] = thief;
          tn.ready.push(
              ReadyEntry{graph.tasks[static_cast<size_t>(id)].priority,
                         seq++, id});
          res.tasks_migrated += 1;
        }
        dispatch(thief, t_dep);
        break;
      }
      case EvType::kDeath: {
        // Fail-stop: cores vanish mid-task (their kFinish events are
        // fenced), the ready queue is lost, nothing is sent again.
        NodeState& dn = nodes[static_cast<size_t>(ev.core)];
        node_dead[static_cast<size_t>(ev.core)] = 1;
        dn.idle_cores.clear();
        while (!dn.ready.empty()) dn.ready.pop();
        break;
      }
      case EvType::kRecover: {
        // Survivors confirmed the death: adopt every task the dead node
        // was responsible for executing (its whole partition re-executes,
        // the runtime's kRetry model), bump incarnations so stale events
        // are fenced, and replay inputs whose producers already completed
        // elsewhere (lineage replay pays full wire cost).
        const int F = ev.core;
        res.recovery_started_at = now;
        std::vector<int> surv;
        for (int n = 0; n < P; ++n) {
          if (!node_dead[static_cast<size_t>(n)]) surv.push_back(n);
        }
        MP_REQUIRE(!surv.empty(), "simulate_ptg: every node died");
        std::vector<int32_t> lost;
        for (size_t i = 0; i < graph.tasks.size(); ++i) {
          if (exec_node[i] != F) continue;
          completed[i] = 0;
          task_gen[i] += 1;
          lost.push_back(static_cast<int32_t>(i));
        }
        size_t rr = 0;
        for (const int32_t i : lost) {
          const int nn = surv[rr++ % surv.size()];
          home_node[static_cast<size_t>(i)] = nn;
          exec_node[static_cast<size_t>(i)] = nn;
          deps[static_cast<size_t>(i)] =
              graph.tasks[static_cast<size_t>(i)].ndeps;
          res.tasks_recovered += 1;
        }
        // Lineage replay: every completed producer of a lost task re-ships
        // its output to the adopter (the adopter has none of the dead
        // node's state). Producers that are themselves lost re-execute and
        // send normally.
        std::vector<uint8_t> is_lost(graph.tasks.size(), 0);
        for (const int32_t i : lost) is_lost[static_cast<size_t>(i)] = 1;
        for (size_t u = 0; u < graph.tasks.size(); ++u) {
          if (!completed[u]) continue;
          const SimTask& t = graph.tasks[u];
          for (const int32_t s : t.succs) {
            if (!is_lost[static_cast<size_t>(s)]) continue;
            const int32_t src = exec_node[u];
            const int32_t dst = home_node[static_cast<size_t>(s)];
            res.lineage_replays += 1;
            if (src == dst) {
              events.push(Event{now + cm.comm_msg_overhead_s, seq++,
                                EvType::kDeposit, s, -1, 0.0, 0,
                                task_gen[static_cast<size_t>(s)]});
              continue;
            }
            NodeState& sn = nodes[static_cast<size_t>(src)];
            const double t_comm = sn.comm.serve(now, cm.comm_msg_overhead_s);
            const double t_out =
                sn.nic_out.serve(t_comm, cm.wire_time(t.out_bytes));
            res.comm_busy_time += cm.wire_time(t.out_bytes);
            res.transfers += 1;
            res.bytes_transferred += t.out_bytes;
            events.push(Event{t_out + cm.net_latency_s +
                                  cm.protocol_latency(t.out_bytes),
                              seq++, EvType::kArrive, s, -1, t.out_bytes,
                              src, task_gen[static_cast<size_t>(s)]});
          }
        }
        // Dependency-free lost tasks (seeds, or chains whose inputs all
        // re-execute locally) restart immediately on their adopters.
        for (const int32_t i : lost) {
          if (deps[static_cast<size_t>(i)] == 0) make_ready(i, now);
        }
        try_steals(now);
        break;
      }
    }
  }

  res.makespan = now;
  const double capacity =
      res.makespan * static_cast<double>(P) * opts.cores_per_node;
  res.idle_fraction = capacity > 0.0 ? 1.0 - res.core_busy_time / capacity
                                     : 0.0;

  // Sanity: every dependency must have been consumed.
  for (size_t i = 0; i < deps.size(); ++i) {
    MP_ASSERT(deps[i] <= 0 || graph.tasks[i].ndeps == 0,
              "simulate_ptg: task never became ready (graph bug)");
    MP_ASSERT(deps[i] <= 0, "simulate_ptg: unexecuted task at end");
  }
  return res;
}

}  // namespace mp::sim
