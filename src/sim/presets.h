// Named workload presets for the simulator and benchmark harnesses.
//
// The paper's input is beta-carotene in 6-31G: 472 basis functions, 296
// electrons (148 occupied / 324 virtual spatial orbitals) on 32 nodes. The
// presets reproduce the *block structure* of that workload:
//
//   beta_carotene_full : the full 148o/324v tiling (tile size 40). Used for
//                        plan statistics; its event count makes full DES
//                        sweeps slow on one host core.
//   beta_carotene_32   : a scaled workload whose per-node task counts,
//                        per-task GEMM shape, and communication intensity
//                        on 32 nodes match the full problem (tile size 22,
//                        44o/110v per spin). This drives the Fig. 9 and
//                        trace reproductions; see EXPERIMENTS.md for the
//                        scaling argument.
//   tiny               : a small structure for tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tce/block_tensor.h"
#include "tce/chain_plan.h"
#include "tce/inspector.h"
#include "tce/tiles.h"

namespace mp::sim {

struct PresetPlan {
  std::string name;
  std::string description;
  std::unique_ptr<tce::TileSpace> space;
  std::unique_ptr<tce::BlockTensor4> v, t, r;
  tce::ChainPlan plan;
};

PresetPlan make_preset(const std::string& name);
std::vector<std::string> preset_names();

}  // namespace mp::sim
