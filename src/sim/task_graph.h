// Builds the simulated task graph for a ChainPlan under a variant
// configuration — the same graph shapes the real PTG executor constructs
// (READ/DFILL/GEMM/REDUCE/SORT/WRITE with the paper's dataflow), plus a
// generalized chain-segmentation knob for the ablation study: segments of
// height h execute serially inside, segments in parallel with a reduction
// tree over segment results (h=1 is the paper's fully-parallel extreme,
// h=len the serial-chain v1 extreme).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cost_model.h"
#include "tce/chain_plan.h"
#include "tce/variants.h"

namespace mp::sim {

enum class SimTaskKind : int8_t {
  kDfill = 0,
  kReadA = 1,
  kReadB = 2,
  kGemm = 3,
  kReduce = 4,
  kSort = 5,
  kWrite = 6
};

const char* to_string(SimTaskKind k);

struct SimTask {
  int32_t id = 0;
  SimTaskKind kind = SimTaskKind::kGemm;
  int32_t node = 0;        ///< placement
  int32_t l1 = 0;          ///< chain number (for priorities / tracing)
  int32_t l2 = 0;          ///< secondary parameter
  double priority = 0.0;
  int32_t ndeps = 0;       ///< predecessor count (0 = startup task)
  double flops = 0.0;      ///< GEMM work
  double bytes = 0.0;      ///< memory traffic of the body
  double out_bytes = 0.0;  ///< size of the produced buffer (transfer size)
  bool needs_mutex = false;///< WRITE critical region
  std::vector<int32_t> succs;
};

struct GraphOptions {
  tce::VariantConfig variant = tce::VariantConfig::v5();
  int nodes = 32;
  /// Chain segmentation height; 0 = follow variant.parallel_gemms
  /// (1 when parallel, whole chain when serial).
  int segment_height = 0;
  /// Priority offsets of the paper's formula (readers +5, GEMM +1).
  int reader_offset = 5;
  int gemm_offset = 1;
};

struct SimGraph {
  std::vector<SimTask> tasks;
  int nodes = 0;
  size_t num_edges() const;
};

/// Owner of GA element `offset` in an array of `total` elements block-
/// distributed over `nodes` ranks — same formula as ga::GlobalArray.
int block_owner(int64_t offset, int64_t total, int nodes);

SimGraph build_graph(const tce::ChainPlan& plan, const GraphOptions& opts);

}  // namespace mp::sim
