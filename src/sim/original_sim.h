// Discrete-event simulation of the *original* TCE/NWChem execution
// structure on a cluster: one MPI-rank-like process per core, NXTVAL
// tickets from a single global counter, blocking GET_HASH_BLOCK right
// before each GEMM (communication interleaved but never overlapped), serial
// guarded SORT + ADD_HASH_BLOCK per chain, and a level barrier at the end.
//
// The NXTVAL counter is a single FCFS server plus a network round trip —
// the contention the paper identifies as the scalability bottleneck arises
// structurally, not from a fudge factor.
#pragma once

#include "ptg/trace.h"
#include "sim/cost_model.h"
#include "sim/task_graph.h"
#include "tce/chain_plan.h"

namespace mp::sim {

struct OriginalSimOptions {
  int nodes = 32;
  int cores_per_node = 8;  ///< processes per node
  CostModel cost;
  bool record_trace = false;
  /// Ablation: replace NXTVAL dynamic tickets by a static round-robin
  /// distribution (no shared counter traffic).
  bool static_distribution = false;
};

struct OriginalSimResult {
  double makespan = 0.0;
  double compute_time = 0.0;   ///< GEMM+SORT busy seconds (all processes)
  double blocked_comm_time = 0.0;  ///< seconds processes spent in blocking
                                   ///< GET/ADD (cores idle during this)
  double nxtval_time = 0.0;    ///< seconds spent acquiring tickets
  double idle_fraction = 0.0;  ///< 1 - (compute)/(makespan*processes)
  ptg::Trace trace;
};

/// Trace class ids (match tce::OriginalTraceClass ordering).
std::vector<std::string> original_class_names();
std::vector<char> original_class_glyphs();

OriginalSimResult simulate_original(const tce::ChainPlan& plan,
                                    const OriginalSimOptions& opts);

}  // namespace mp::sim
