// Discrete-event simulation of a PTG-variant execution on a cluster of
// `nodes` x `cores_per_node` (plus a comm thread and NIC per node).
//
// The simulator executes exactly the task graph build_graph() derives from
// the inspected ChainPlan: per-node priority scheduling of ready tasks,
// FCFS NIC injection/ejection queues with latency and bandwidth, a per-node
// comm thread with per-message overhead, and the node-level WRITE mutex.
// It produces the same Trace records as the real runtime, so the paper's
// trace figures (10/11) are regenerated from simulated schedules.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "ptg/trace.h"
#include "sim/cost_model.h"
#include "sim/task_graph.h"

namespace mp::sim {

struct SimOptions {
  int cores_per_node = 8;
  CostModel cost;
  bool record_trace = false;
  /// Inter-node work stealing (DESIGN.md §9): a node whose cores are all
  /// idle and whose ready queue is empty requests half the ready,
  /// migratable tasks of the most loaded peer. Mirrors the real runtime's
  /// steal agent: request/reply ride the comm thread + NIC like any other
  /// message, migrated inputs pay wire time, WRITE (mutex-bound) tasks
  /// never move. Deterministic: victim selection is argmax ready-count
  /// with lowest-index tie-break.
  bool enable_stealing = false;
  int steal_max_batch = 16;
  /// Re-arm delay after an empty-handed steal attempt.
  double steal_backoff_s = 200e-6;
  /// Fail-stop death injection (DESIGN.md §10): node `fail_node` goes
  /// silent at `fail_time_s` — running tasks are lost, queued work is
  /// dropped, in-flight messages it already sent still arrive. Survivors
  /// confirm the death `detect_delay_s` later (the heartbeat suspicion +
  /// confirmation window) and adopt every unfinished task of the dead node
  /// round-robin, re-shipping inputs whose producers already completed
  /// (lineage replay). -1 disables. Mirrors the runtime's kRetry policy.
  int fail_node = -1;
  double fail_time_s = 0.0;
  double detect_delay_s = 500e-6;
};

struct SimResult {
  double makespan = 0.0;                 ///< simulated seconds
  double core_busy_time = 0.0;           ///< sum over cores of busy seconds
  double idle_fraction = 0.0;            ///< 1 - busy/(makespan*cores)
  double comm_busy_time = 0.0;           ///< NIC-occupancy seconds (in+out)
  double mutex_wait_time = 0.0;          ///< time cores spent queued on the
                                         ///< node WRITE mutex
  uint64_t transfers = 0;                ///< cross-node messages
  double bytes_transferred = 0.0;
  uint64_t offloaded_gemms = 0;          ///< GEMMs run on accelerators
  uint64_t steal_requests = 0;           ///< STEAL_REQUEST messages issued
  uint64_t steal_hits = 0;               ///< replies carrying >= 1 task
  uint64_t tasks_migrated = 0;           ///< tasks executed off their home
  double steal_bytes = 0.0;              ///< input payload shipped by steals
  uint64_t tasks_recovered = 0;          ///< tasks adopted off a dead node
  uint64_t lineage_replays = 0;          ///< completed-producer re-shipments
  double recovery_started_at = 0.0;      ///< when survivors confirmed death
  std::array<double, 7> busy_by_kind{};  ///< indexed by SimTaskKind
  ptg::Trace trace;                      ///< populated if record_trace
};

/// Names/glyphs for rendering simulated traces (indexed by SimTaskKind).
std::vector<std::string> sim_class_names();
std::vector<char> sim_class_glyphs();

SimResult simulate_ptg(const SimGraph& graph, const SimOptions& opts);

}  // namespace mp::sim
