// Cross-checks between a ChainPlan and the materialized PTG of one variant
// (pass 1 of mp-verify, TCE layer). The generic graph pass proves the DAG
// is well-formed; this pass proves it is the *right* DAG for the plan:
//
//   MPT001  reduce fan-in   — reduction-tree size differs from the chain's
//                             segmentation (len GEMM leaves need len-1
//                             REDUCE nodes; a serial chain needs none)
//   MPT002  sort arms       — SORT task count differs from the chain's
//                             fired guards under the variant's sort mode
//   MPT003  write arms      — WRITE task count / fan-in inconsistent with
//                             the variant's write mode
//   MPT004  gemm feed       — a GEMM instance is not fed by exactly its
//                             READ_A/READ_B producers of the same (L1,L2)
//   MPT005  task count      — total instance count differs from the closed
//                             form implied by plan + variant
#pragma once

#include "analysis/diagnostics.h"
#include "analysis/graph_verify.h"
#include "tce/chain_plan.h"
#include "tce/ptg_build.h"
#include "tce/storage.h"
#include "tce/variants.h"

namespace mp::analysis {

/// Result of the full static verification of one (plan, variant, nranks)
/// combination: plan layer + generic graph layer + TCE cross-checks.
struct VerifyReport {
  std::vector<Diag> diags;
  size_t num_tasks = 0;
  size_t num_edges = 0;
  bool clean() const { return diags.empty(); }
};

/// TCE cross-checks only, on an already-materialized graph.
std::vector<Diag> verify_tce_graph(const tce::ChainPlan& plan,
                                   const tce::VariantConfig& variant,
                                   const tce::PtgBuild& build,
                                   const GraphModel& graph);

/// Run every static pass for one variant: verify_plan + build_ptg +
/// verify_graph + verify_tce_graph. This is what tools/mp-verify and the
/// analysis-label tests call per variant/workload.
VerifyReport verify_variant(const tce::ChainPlan& plan,
                            const tce::StoreList& stores,
                            const tce::VariantConfig& variant, int nranks);

}  // namespace mp::analysis
