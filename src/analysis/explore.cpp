// The mp-explore exploration engine (DESIGN.md §12): exhaustive DFS with
// sleep-set partial-order reduction over the protocol model in
// explore_model.h, plus a seeded random-walk fallback, strict schedule
// replay and greedy trace minimization.
//
// The search is stateless in the Mazurkiewicz sense: the World is mutated
// in place while descending, and backtracking re-executes the remaining
// path prefix from the initial state — the model is cheap enough that
// re-execution beats snapshotting the real fabric/mailbox objects, which
// are deliberately not copyable.
#include "analysis/explore.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "analysis/explore_model.h"
#include "support/error.h"
#include "support/rng.h"

namespace mp::analysis {

namespace {

bool is_message_choice(ChoiceKind k) {
  return k == ChoiceKind::kDeliver || k == ChoiceKind::kDrop ||
         k == ChoiceKind::kDuplicate;
}

/// Independence relation for the sleep sets, evaluated in the state where
/// both choices are co-enabled. Two fates of the SAME wire message always
/// conflict; otherwise disjoint rank footprints commute.
bool independent(const World& w, const Choice& x, const Choice& y) {
  if (is_message_choice(x.kind) && is_message_choice(y.kind) && x.a == y.a &&
      x.b == y.b && x.tag == y.tag && x.seq == y.seq) {
    return false;
  }
  return (w.footprint(x) & w.footprint(y)) == 0;
}

struct PathStep {
  Choice c;
  StepInfo info;
};

/// True when the path segment [from, end) is a chatter cycle that defeats
/// the watchdog: at least one message was delivered, none of it moved work
/// (per the canonical ptg::protocol rules), yet the node-side (possibly
/// mutated) progress rule reset the deadline at least once. Under the
/// correct rule the two flags coincide and the condition is unsatisfiable.
bool livelock_cycle(const std::vector<PathStep>& path, size_t from) {
  bool delivered = false;
  bool canon = false;
  bool node_reset = false;
  for (size_t i = from; i < path.size(); ++i) {
    delivered = delivered || path[i].info.delivered;
    canon = canon || path[i].info.canon_progress;
    node_reset = node_reset || path[i].info.node_wd_reset;
  }
  return delivered && !canon && node_reset;
}

// -------------------------------------------------------------------------
// Exhaustive DFS with sleep sets

class Dfs {
 public:
  explicit Dfs(const ExploreConfig& cfg) : cfg_(cfg) {}

  ExploreResult run() {
    world_ = std::make_unique<World>(cfg_);
    const uint64_t root_fp = world_->fingerprint();
    visited_[root_fp].push_back({});
    on_path_[root_fp] = 0;
    stack_.push_back(Frame{world_->enabled(), 0, {}, root_fp});
    stats_.states = 1;

    while (!stack_.empty() && !stop_) {
      if (cfg_.max_transitions != 0 &&
          stats_.transitions >= cfg_.max_transitions) {
        budget_hit_ = true;
        break;
      }
      Frame& f = stack_.back();
      // Next sibling not silenced by the sleep set.
      size_t pick = f.next;
      while (pick < f.choices.size() && f.sleep.count(f.choices[pick])) {
        ++stats_.sleep_pruned;
        ++pick;
      }
      f.next = pick + 1;
      if (pick >= f.choices.size()) {
        backtrack();
        continue;
      }
      descend(f.choices[pick]);
    }

    ExploreResult res;
    res.findings = std::move(findings_);
    res.stats = stats_;
    res.complete = !stop_ && !budget_hit_ && stats_.truncated == 0;
    return res;
  }

 private:
  struct Frame {
    std::vector<Choice> choices;
    size_t next = 0;
    std::set<Choice> sleep;
    uint64_t fp = 0;
  };

  void descend(const Choice& c) {
    // Child sleep set: inherited entries that commute with the step.
    std::set<Choice> child_sleep;
    for (const Choice& s : stack_.back().sleep) {
      if (independent(*world_, s, c)) child_sleep.insert(s);
    }
    const size_t findings_before = world_->findings().size();
    const StepInfo info = world_->apply(c);
    ++stats_.transitions;
    path_.push_back({c, info});

    if (world_->findings().size() > findings_before) {
      record_finding(findings_before);
      return;
    }
    if (static_cast<int>(path_.size()) >= cfg_.max_steps ||
        world_->messages_sent() >= cfg_.max_messages) {
      ++stats_.truncated;
      if (std::getenv("MP_EXPLORE_DEBUG_TRUNC") != nullptr) {
        std::fprintf(stderr, "TRUNC depth=%zu msgs=%llu\n", path_.size(),
                     static_cast<unsigned long long>(world_->messages_sent()));
        for (size_t i = 0; i < path_.size(); ++i) {
          std::fprintf(stderr, "  %zu: %s\n", i, path_[i].c.str().c_str());
        }
      }
      retreat(c);
      return;
    }
    const uint64_t fp = world_->fingerprint();
    auto cyc = on_path_.find(fp);
    if (cyc != on_path_.end()) {
      // Back to a state already on this path: a cycle. Either it is the
      // livelock the watchdog cannot break (MPS006) or benign chatter the
      // real watchdog deadline would eventually interrupt.
      if (livelock_cycle(path_, static_cast<size_t>(cyc->second))) {
        world_->report_livelock(
            static_cast<int>(path_.size() - static_cast<size_t>(cyc->second)));
        record_finding(findings_before);
      } else {
        ++stats_.cycles;
        retreat(c);
      }
      return;
    }
    auto vis = visited_.find(fp);
    if (vis != visited_.end()) {
      // Sound pruning rule for sleep sets + state cache: skip only when a
      // previous visit explored with a sleep set no larger than ours (it
      // covered a superset of our outgoing transitions).
      for (const std::set<Choice>& prev : vis->second) {
        if (std::includes(child_sleep.begin(), child_sleep.end(),
                          prev.begin(), prev.end())) {
          ++stats_.cache_pruned;
          retreat(c);
          return;
        }
      }
    }
    visited_[fp].push_back(child_sleep);

    std::vector<Choice> enabled = world_->enabled();
    if (enabled.empty()) {
      if (world_->all_done()) {
        // Clean terminal: invariants were already checked at declaration.
      } else if (world_->disturbed()) {
        // Stalled by an injected fault: production's watchdog fires here
        // and aborts the submission — diagnosed, not a protocol bug.
        ++stats_.diagnosed;
      } else {
        world_->report_deadlock();
        record_finding(findings_before);
        return;
      }
      retreat(c);
      return;
    }
    on_path_[fp] = static_cast<int>(stack_.size());
    stack_.push_back(Frame{std::move(enabled), 0, std::move(child_sleep), fp});
    ++stats_.states;
    stats_.max_depth =
        std::max(stats_.max_depth, static_cast<int>(path_.size()));
  }

  /// Undo a step whose child state is not kept (pruned / truncated /
  /// terminal): rebuild the world at the current top frame and silence the
  /// explored choice for the remaining siblings.
  void retreat(const Choice& c) {
    path_.pop_back();
    rebuild();
    stack_.back().sleep.insert(c);
  }

  void backtrack() {
    const Frame done = std::move(stack_.back());
    stack_.pop_back();
    on_path_.erase(done.fp);
    if (stack_.empty()) return;
    const Choice c = path_.back().c;
    path_.pop_back();
    rebuild();
    stack_.back().sleep.insert(c);
  }

  void rebuild() {
    world_ = std::make_unique<World>(cfg_);
    for (const PathStep& s : path_) {
      world_->apply(s.c);
      ++stats_.transitions;
    }
  }

  void record_finding(size_t findings_before) {
    ExploreFinding f;
    f.diag = world_->findings()[findings_before];
    f.schedule.config = cfg_;
    for (const PathStep& s : path_) f.schedule.steps.push_back(s.c);
    findings_.push_back(std::move(f));
    stop_ = true;
  }

  ExploreConfig cfg_;
  std::unique_ptr<World> world_;
  std::vector<Frame> stack_;
  std::vector<PathStep> path_;
  std::map<uint64_t, std::vector<std::set<Choice>>> visited_;
  std::map<uint64_t, int> on_path_;
  ExploreStats stats_;
  std::vector<ExploreFinding> findings_;
  bool stop_ = false;
  bool budget_hit_ = false;
};

}  // namespace

ExploreResult explore_exhaustive(const ExploreConfig& cfg) {
  return Dfs(cfg).run();
}

// -------------------------------------------------------------------------
// Random walk

ExploreResult explore_random_walk(const ExploreConfig& cfg, uint64_t walks,
                                  uint64_t seed) {
  ExploreResult res;
  Rng rng(seed);
  for (uint64_t w = 0; w < walks && res.findings.empty(); ++w) {
    World world(cfg);
    std::vector<PathStep> path;
    std::map<uint64_t, int> on_path;
    on_path[world.fingerprint()] = 0;
    ++res.stats.states;
    while (true) {
      const std::vector<Choice> enabled = world.enabled();
      if (enabled.empty()) {
        if (world.all_done()) {
          // clean walk
        } else if (world.disturbed()) {
          ++res.stats.diagnosed;
        } else {
          world.report_deadlock();
        }
        break;
      }
      if (static_cast<int>(path.size()) >= cfg.max_steps ||
          world.messages_sent() >= cfg.max_messages) {
        ++res.stats.truncated;
        break;
      }
      const Choice c = enabled[rng.next_below(enabled.size())];
      const StepInfo info = world.apply(c);
      ++res.stats.transitions;
      path.push_back({c, info});
      if (!world.findings().empty()) break;
      const uint64_t fp = world.fingerprint();
      auto cyc = on_path.find(fp);
      if (cyc != on_path.end()) {
        if (livelock_cycle(path, static_cast<size_t>(cyc->second))) {
          world.report_livelock(
              static_cast<int>(path.size() - static_cast<size_t>(cyc->second)));
        } else {
          ++res.stats.cycles;
        }
        break;  // a repeated state ends the walk either way
      }
      on_path[fp] = static_cast<int>(path.size());
      ++res.stats.states;
      res.stats.max_depth =
          std::max(res.stats.max_depth, static_cast<int>(path.size()));
    }
    if (!world.findings().empty()) {
      ExploreFinding f;
      f.diag = world.findings().front();
      f.schedule.config = cfg;
      for (const PathStep& s : path) f.schedule.steps.push_back(s.c);
      res.findings.push_back(std::move(f));
    }
  }
  res.complete = false;  // sampling never proves absence
  return res;
}

// -------------------------------------------------------------------------
// Replay and minimization

ReplayResult replay_schedule(const Schedule& schedule) {
  ReplayResult res;
  World world(schedule.config);
  std::vector<PathStep> path;
  std::map<uint64_t, int> on_path;
  on_path[world.fingerprint()] = 0;
  for (size_t i = 0; i < schedule.steps.size(); ++i) {
    const Choice& c = schedule.steps[i];
    const std::vector<Choice> enabled = world.enabled();
    bool legal = false;
    for (const Choice& e : enabled) {
      if (e == c) legal = true;
    }
    if (!legal) {
      res.ok = false;
      res.error = "step " + std::to_string(i + 1) + " (" + c.str() +
                  ") is not enabled at replay";
      res.findings = world.findings();
      return res;
    }
    const StepInfo info = world.apply(c);
    path.push_back({c, info});
    const uint64_t fp = world.fingerprint();
    auto cyc = on_path.find(fp);
    if (cyc != on_path.end()) {
      if (livelock_cycle(path, static_cast<size_t>(cyc->second))) {
        world.report_livelock(
            static_cast<int>(path.size() - static_cast<size_t>(cyc->second)));
      }
    } else {
      on_path[fp] = static_cast<int>(path.size());
    }
  }
  if (world.enabled().empty() && !world.all_done() && !world.disturbed()) {
    world.report_deadlock();
  }
  res.ok = true;
  res.findings = world.findings();
  res.fingerprint = world.fingerprint();
  return res;
}

Schedule minimize_schedule(const Schedule& schedule, const std::string& code) {
  Schedule cur = schedule;
  bool improved = true;
  while (improved) {
    improved = false;
    for (size_t i = 0; i < cur.steps.size(); ++i) {
      Schedule cand = cur;
      cand.steps.erase(cand.steps.begin() + static_cast<long>(i));
      const ReplayResult rr = replay_schedule(cand);
      if (rr.ok && has_code(rr.findings, code)) {
        cur = std::move(cand);
        improved = true;
        break;
      }
    }
  }
  return cur;
}

uint64_t explore_walk_budget(uint64_t fallback) {
  const char* env = std::getenv("MP_EXPLORE_BUDGET");
  if (env == nullptr || *env == '\0') return fallback;
  const unsigned long long v = std::strtoull(env, nullptr, 10);
  if (v < 1) return 1;
  if (v > 1000000ULL) return 1000000ULL;
  return v;
}

// -------------------------------------------------------------------------
// Trace format

std::string Choice::str() const {
  std::ostringstream os;
  switch (kind) {
    case ChoiceKind::kDeliver:
      os << "deliver " << a << ' ' << b << ' ' << tag << ' ' << seq;
      break;
    case ChoiceKind::kDrop:
      os << "drop " << a << ' ' << b << ' ' << tag << ' ' << seq;
      break;
    case ChoiceKind::kDuplicate:
      os << "dup " << a << ' ' << b << ' ' << tag << ' ' << seq;
      break;
    case ChoiceKind::kExecute:
      os << "exec " << a << ' ' << b;
      break;
    case ChoiceKind::kStealTick:
      os << "steal " << a;
      break;
    case ChoiceKind::kStealTimeout:
      os << "stimeout " << a;
      break;
    case ChoiceKind::kResendTick:
      os << "resend " << a;
      break;
    case ChoiceKind::kHeartbeatTick:
      os << "beat " << a;
      break;
    case ChoiceKind::kConfirmDeath:
      os << "confirm " << a << ' ' << b;
      break;
    case ChoiceKind::kCrash:
      os << "crash " << a;
      break;
    case ChoiceKind::kReset:
      os << "reset";
      break;
  }
  return os.str();
}

std::optional<Choice> Choice::parse(const std::string& line) {
  std::istringstream is(line);
  std::string verb;
  if (!(is >> verb)) return std::nullopt;
  Choice c;
  auto msg = [&](ChoiceKind k) -> std::optional<Choice> {
    c.kind = k;
    if (!(is >> c.a >> c.b >> c.tag >> c.seq)) return std::nullopt;
    return c;
  };
  auto one = [&](ChoiceKind k) -> std::optional<Choice> {
    c.kind = k;
    if (!(is >> c.a)) return std::nullopt;
    return c;
  };
  auto two = [&](ChoiceKind k) -> std::optional<Choice> {
    c.kind = k;
    if (!(is >> c.a >> c.b)) return std::nullopt;
    return c;
  };
  if (verb == "deliver") return msg(ChoiceKind::kDeliver);
  if (verb == "drop") return msg(ChoiceKind::kDrop);
  if (verb == "dup") return msg(ChoiceKind::kDuplicate);
  if (verb == "exec") return two(ChoiceKind::kExecute);
  if (verb == "steal") return one(ChoiceKind::kStealTick);
  if (verb == "stimeout") return one(ChoiceKind::kStealTimeout);
  if (verb == "resend") return one(ChoiceKind::kResendTick);
  if (verb == "beat") return one(ChoiceKind::kHeartbeatTick);
  if (verb == "confirm") return two(ChoiceKind::kConfirmDeath);
  if (verb == "crash") return one(ChoiceKind::kCrash);
  if (verb == "reset") {
    c.kind = ChoiceKind::kReset;
    return c;
  }
  return std::nullopt;
}

namespace {

std::string mutations_to_string(const ExploreMutations& m) {
  std::string s;
  auto add = [&](const char* name) {
    if (!s.empty()) s += ',';
    s += name;
  };
  if (m.skip_watchdog_progress_rule) add("skip_watchdog_progress_rule");
  if (m.skip_recovery_zero_reset) add("skip_recovery_zero_reset");
  if (m.skip_seqwindow_rebase) add("skip_seqwindow_rebase");
  return s.empty() ? "none" : s;
}

ExploreMutations mutations_from_string(const std::string& s) {
  ExploreMutations m;
  if (s == "none") return m;
  std::istringstream is(s);
  std::string flag;
  while (std::getline(is, flag, ',')) {
    if (flag == "skip_watchdog_progress_rule") {
      m.skip_watchdog_progress_rule = true;
    } else if (flag == "skip_recovery_zero_reset") {
      m.skip_recovery_zero_reset = true;
    } else if (flag == "skip_seqwindow_rebase") {
      m.skip_seqwindow_rebase = true;
    } else {
      throw InvalidArgument("schedule: unknown mutation '" + flag + "'");
    }
  }
  return m;
}

}  // namespace

std::string Schedule::to_text() const {
  std::ostringstream os;
  os << "# mp-explore schedule v1\n";
  os << "workload " << config.workload << '\n';
  os << "nranks " << config.nranks << '\n';
  os << "stealing " << (config.stealing ? 1 : 0) << '\n';
  os << "heartbeats " << (config.heartbeats ? 1 : 0) << '\n';
  os << "crash_victim " << config.crash_victim << '\n';
  os << "submissions " << config.submissions << '\n';
  os << "drop_budget " << config.drop_budget << '\n';
  os << "dup_budget " << config.dup_budget << '\n';
  os << "max_steps " << config.max_steps << '\n';
  os << "max_messages " << config.max_messages << '\n';
  os << "mutations " << mutations_to_string(config.mutations) << '\n';
  os << "steps:\n";
  for (const Choice& c : steps) os << c.str() << '\n';
  return os.str();
}

Schedule Schedule::from_text(const std::string& text) {
  Schedule s;
  std::istringstream is(text);
  std::string line;
  bool in_steps = false;
  bool versioned = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.find("mp-explore schedule v1") != std::string::npos) {
        versioned = true;
      }
      continue;
    }
    if (!in_steps) {
      if (line == "steps:") {
        in_steps = true;
        continue;
      }
      std::istringstream ls(line);
      std::string key, value;
      if (!(ls >> key >> value)) {
        throw InvalidArgument("schedule: malformed header line '" + line +
                              "'");
      }
      if (key == "workload") {
        s.config.workload = value;
      } else if (key == "nranks") {
        s.config.nranks = std::stoi(value);
      } else if (key == "stealing") {
        s.config.stealing = value != "0";
      } else if (key == "heartbeats") {
        s.config.heartbeats = value != "0";
      } else if (key == "crash_victim") {
        s.config.crash_victim = std::stoi(value);
      } else if (key == "submissions") {
        s.config.submissions = std::stoi(value);
      } else if (key == "drop_budget") {
        s.config.drop_budget = std::stoi(value);
      } else if (key == "dup_budget") {
        s.config.dup_budget = std::stoi(value);
      } else if (key == "max_steps") {
        s.config.max_steps = std::stoi(value);
      } else if (key == "max_messages") {
        s.config.max_messages = std::stoull(value);
      } else if (key == "mutations") {
        s.config.mutations = mutations_from_string(value);
      } else {
        throw InvalidArgument("schedule: unknown header key '" + key + "'");
      }
      continue;
    }
    std::optional<Choice> c = Choice::parse(line);
    if (!c.has_value()) {
      throw InvalidArgument("schedule: malformed step '" + line + "'");
    }
    s.steps.push_back(*c);
  }
  MP_REQUIRE(versioned,
             "schedule: missing '# mp-explore schedule v1' header");
  MP_REQUIRE(in_steps, "schedule: missing 'steps:' section");
  return s;
}

}  // namespace mp::analysis
