#include "analysis/explore_model.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "ptg/protocol.h"
#include "support/error.h"
#include "tce/block_tensor.h"
#include "tce/inspector.h"
#include "tce/tiles.h"
#include "vc/message.h"

namespace mp::analysis {

using ptg::kWireActivate;
using ptg::kWireCredit;
using ptg::kWireHeartbeat;
using ptg::kWireJobDone;
using ptg::kWireLocalDone;
using ptg::kWireStealReply;
using ptg::kWireStealRequest;

namespace {

constexpr uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void fold(uint64_t& h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

uint64_t hash_bytes(const uint8_t* p, size_t n) {
  uint64_t h = kFnvBasis;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t bit(int r) { return 1ULL << r; }

}  // namespace

// ---------------------------------------------------------------------------
// Workload generation

ModelWorkload build_model_workload(const std::string& kind, int nranks) {
  MP_REQUIRE(nranks >= 2 && nranks <= 16,
             "build_model_workload: nranks must be in [2, 16]");
  // The smallest space with spin structure: one alpha and one beta tile in
  // each of the occupied and virtual ranges. The real inspectors walk the
  // real guarded loop nest over it, producing a handful of chains.
  tce::TileSpaceSpec spec;
  spec.n_occ_alpha = 1;
  spec.n_occ_beta = 1;
  spec.n_virt_alpha = 1;
  spec.n_virt_beta = 1;
  spec.tile_size = 1;
  tce::TileSpace space(spec);
  using tce::RangeKind;

  tce::ChainPlan plan;
  if (kind == "t2_7") {
    tce::BlockTensor4 v(space, {RangeKind::kVirt, RangeKind::kVirt,
                                RangeKind::kVirt, RangeKind::kVirt});
    tce::BlockTensor4 t(space, {RangeKind::kVirt, RangeKind::kVirt,
                                RangeKind::kOcc, RangeKind::kOcc});
    tce::BlockTensor4 r(space,
                        {RangeKind::kVirt, RangeKind::kVirt, RangeKind::kOcc,
                         RangeKind::kOcc},
                        true, true);
    plan = tce::inspect_t2_7(space, {&v, &t, &r});
  } else if (kind == "hh") {
    tce::BlockTensor4 w(space, {RangeKind::kOcc, RangeKind::kOcc,
                                RangeKind::kOcc, RangeKind::kOcc});
    tce::BlockTensor4 t(space, {RangeKind::kVirt, RangeKind::kVirt,
                                RangeKind::kOcc, RangeKind::kOcc});
    tce::BlockTensor4 r(space,
                        {RangeKind::kVirt, RangeKind::kVirt, RangeKind::kOcc,
                         RangeKind::kOcc},
                        true, true);
    plan = tce::inspect_hh_ladder(space, {&w, &t, &r});
  } else {
    throw InvalidArgument("build_model_workload: unknown workload '" + kind +
                          "' (expected t2_7 or hh)");
  }
  MP_ASSERT(!plan.chains.empty(), "micro workload inspected to zero chains");

  ModelWorkload w;
  w.num_chains = plan.chains.size();
  // Dense cell ids in first-appearance order of the chains' target blocks.
  std::map<uint64_t, int> cell_of;
  for (const tce::Chain& ch : plan.chains) {
    if (!cell_of.count(ch.c_key)) {
      const int next = static_cast<int>(cell_of.size());
      cell_of[ch.c_key] = next;
    }
  }
  // Tasks are stored at index == id: chains occupy [0, nch), their WRITE
  // consumers [nch, 2*nch).
  const int nch = static_cast<int>(plan.chains.size());
  w.tasks.resize(static_cast<size_t>(2 * nch));
  for (int i = 0; i < nch; ++i) {
    const int cell = cell_of.at(plan.chains[static_cast<size_t>(i)].c_key);
    ModelTask chain;
    chain.id = i;
    chain.home = i % nranks;  // round-robin, like the PTG chain class
    chain.migratable = true;
    chain.outs = {nch + i};
    w.tasks[static_cast<size_t>(i)] = chain;

    ModelTask write;
    write.id = nch + i;
    // All writers of one cell share a home (the block owner): the cell is
    // the recovery group, and co-homing is what makes co-adoption hold.
    // The +1 offset puts the owner on a different rank than the chain
    // producing for it, so the base configs exercise cross-rank
    // activation, not just local promotion.
    write.home = (cell + 1) % nranks;
    write.cell = cell;
    // Exactly representable small integers: accumulation order can never
    // perturb the serial reference.
    write.value = static_cast<double>(1 + (i % 7));
    write.migratable = false;
    write.ndeps = 1;
    w.tasks[static_cast<size_t>(nch + i)] = write;
    w.reference[cell] += write.value;
  }
  return w;
}

// ---------------------------------------------------------------------------
// World setup

World::World(const ExploreConfig& cfg)
    : cfg_(cfg), work_(build_model_workload(cfg.workload, cfg.nranks)) {
  MP_REQUIRE(cfg_.nranks >= 2, "explore: need at least 2 ranks");
  MP_REQUIRE(cfg_.crash_victim != 0,
             "explore: rank 0 is the termination coordinator; its death "
             "aborts the job in the production runtime and is not modeled");
  MP_REQUIRE(cfg_.crash_victim < cfg_.nranks, "explore: crash_victim out of range");
  MP_REQUIRE(cfg_.submissions >= 1, "explore: submissions must be >= 1");
  mailboxes_ = std::vector<vc::Mailbox>(static_cast<size_t>(cfg_.nranks));
  vc::FabricConfig fc;
  fc.controlled = true;
  fabric_ = std::make_unique<vc::Fabric>(&mailboxes_, fc);
  nodes_.resize(static_cast<size_t>(cfg_.nranks));
  init_submission();
}

int World::effective_home(int t, uint64_t mask) const {
  const int h = task(t).home;
  if (((mask >> h) & 1ULL) == 0) return h;
  return ptg::protocol::retry_standin(h, mask, nranks());
}

void World::init_submission() {
  cells_.clear();
  for (const auto& [cell, ref] : work_.reference) {
    (void)ref;
    cells_[cell] = 0.0;
  }
  executed_anywhere_.clear();
  for (int r = 0; r < nranks(); ++r) {
    Node& n = nodes_[static_cast<size_t>(r)];
    if (!n.alive) continue;
    for (const ModelTask& t : work_.tasks) {
      if (effective_home(t.id, n.confirmed) != r) continue;
      n.owned.insert(t.id);
      if (t.ndeps == 0) n.ready.insert(t.id);
    }
  }
}

void World::send(int src, int dst, int tag, vc::Payload payload) {
  vc::Message m;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  m.payload = std::move(payload);
  fabric_->send(std::move(m));
}

// ---------------------------------------------------------------------------
// Choice enumeration

size_t World::find_pending(const Choice& c) const {
  const size_t count = fabric_->pending_count();
  for (size_t i = 0; i < count; ++i) {
    const vc::Message m = fabric_->pending_peek(i);
    if (m.src == c.a && m.dst == c.b && m.tag == c.tag && m.seq == c.seq) {
      return i;
    }
  }
  return static_cast<size_t>(-1);
}

bool World::pending_msg(int src, int dst, int tag) const {
  const size_t count = fabric_->pending_count();
  for (size_t i = 0; i < count; ++i) {
    const vc::Message m = fabric_->pending_peek(i);
    if ((src < 0 || m.src == src) && (dst < 0 || m.dst == dst) &&
        (tag <= 0 || m.tag == tag)) {
      return true;
    }
  }
  return false;
}

std::vector<Choice> World::enabled() const {
  std::vector<Choice> out;
  const Node& n0 = nodes_[0];

  // Message fates. Identities deduplicate injected duplicates: delivering
  // "the" copy of a byte-identical pair is one choice, not two.
  std::set<Choice> message_ids;
  const size_t count = fabric_->pending_count();
  for (size_t i = 0; i < count; ++i) {
    const vc::Message m = fabric_->pending_peek(i);
    Choice c;
    c.kind = ChoiceKind::kDeliver;
    c.a = m.src;
    c.b = m.dst;
    c.tag = m.tag;
    c.seq = m.seq;
    message_ids.insert(c);
  }
  for (Choice c : message_ids) {
    out.push_back(c);
    if (drops_used_ < cfg_.drop_budget) {
      c.kind = ChoiceKind::kDrop;
      out.push_back(c);
    }
    if (dups_used_ < cfg_.dup_budget) {
      c.kind = ChoiceKind::kDuplicate;
      out.push_back(c);
    }
  }

  for (int r = 0; r < nranks(); ++r) {
    const Node& n = nodes_[static_cast<size_t>(r)];
    if (!n.alive) continue;
    for (int t : n.ready) {
      out.push_back({ChoiceKind::kExecute, r, t, 0, 0});
    }
    bool other_live = false;
    for (int v = 0; v < nranks(); ++v) {
      if (v != r && live(v)) other_live = true;
    }
    if (cfg_.stealing && !n.job_done && !n.steal_out && n.ready.empty() &&
        other_live) {
      out.push_back({ChoiceKind::kStealTick, r, -1, 0, 0});
    }
    // The timer-driven choices are gated on their previous message having
    // left the wire: a timer re-firing with its message still in flight is
    // behaviorally kDuplicate (modeled separately, budget-gated), and
    // admitting it would make the interleaving space unbounded.
    if (n.steal_out && !pending_msg(r, -1, kWireStealRequest) &&
        !pending_msg(-1, r, kWireStealReply)) {
      out.push_back({ChoiceKind::kStealTimeout, r, -1, 0, 0});
    }
    if (r != 0 && n.done_latch && !n.job_done &&
        !pending_msg(r, 0, ptg::kWireLocalDone)) {
      out.push_back({ChoiceKind::kResendTick, r, -1, 0, 0});
    }
    if (cfg_.heartbeats && !n.job_done && other_live &&
        !pending_msg(r, -1, ptg::kWireHeartbeat)) {
      out.push_back({ChoiceKind::kHeartbeatTick, r, -1, 0, 0});
    }
    for (int d = 0; d < nranks(); ++d) {
      if (!live(d) && ((n.confirmed >> d) & 1ULL) == 0) {
        out.push_back({ChoiceKind::kConfirmDeath, r, d, 0, 0});
      }
    }
  }

  if (cfg_.crash_victim >= 0 && !crashed_ && live(cfg_.crash_victim) &&
      !n0.declared) {
    out.push_back({ChoiceKind::kCrash, cfg_.crash_victim, -1, 0, 0});
  }
  if (n0.declared && submission_ + 1 < cfg_.submissions &&
      fabric_->pending_count() == 0) {
    out.push_back({ChoiceKind::kReset, -1, -1, 0, 0});
  }

  std::sort(out.begin(), out.end());
  return out;
}

uint64_t World::footprint(const Choice& c) const {
  switch (c.kind) {
    case ChoiceKind::kDeliver:
      return live(c.b) ? bit(c.b) : 0;
    case ChoiceKind::kDrop:
      // All drops share the path budget: taking one can disable another.
      return bit(62);
    case ChoiceKind::kDuplicate:
      return bit(61);
    case ChoiceKind::kExecute:
    case ChoiceKind::kStealTimeout:
    case ChoiceKind::kResendTick:
    case ChoiceKind::kHeartbeatTick:
      return bit(c.a);
    case ChoiceKind::kStealTick: {
      // The victim heuristic reads every live rank's ready size.
      uint64_t m = 0;
      for (int r = 0; r < nranks(); ++r) {
        if (live(r)) m |= bit(r);
      }
      return m;
    }
    case ChoiceKind::kConfirmDeath:
    case ChoiceKind::kCrash:
    case ChoiceKind::kReset:
      return bit(63);  // global: adoption/zero-reset, death, epoch flip
  }
  return bit(63);
}

// ---------------------------------------------------------------------------
// Applying choices

StepInfo World::apply(const Choice& c) {
  StepInfo info;
  switch (c.kind) {
    case ChoiceKind::kDeliver: {
      const size_t idx = find_pending(c);
      MP_ASSERT(idx != static_cast<size_t>(-1), "deliver: no such message");
      deliver(idx, info);
      break;
    }
    case ChoiceKind::kDrop: {
      const size_t idx = find_pending(c);
      MP_ASSERT(idx != static_cast<size_t>(-1), "drop: no such message");
      fabric_->drop_pending(idx);
      ++drops_used_;
      break;
    }
    case ChoiceKind::kDuplicate: {
      const size_t idx = find_pending(c);
      MP_ASSERT(idx != static_cast<size_t>(-1), "duplicate: no such message");
      fabric_->duplicate_pending(idx);
      ++dups_used_;
      break;
    }
    case ChoiceKind::kExecute:
      do_execute(c.a, c.b);
      info.canon_progress = true;
      info.node_wd_reset = true;
      break;
    case ChoiceKind::kStealTick:
      do_steal_tick(c.a);
      break;
    case ChoiceKind::kStealTimeout:
      nodes_[static_cast<size_t>(c.a)].steal_out = false;
      break;
    case ChoiceKind::kResendTick:
      send_local_done(c.a);
      break;
    case ChoiceKind::kHeartbeatTick: {
      // One beat to the ring-next peer this rank believes alive. A beat to
      // an actually-dead peer is blackholed by the fabric, like reality.
      const int r = c.a;
      const Node& n = nodes_[static_cast<size_t>(r)];
      for (int i = 1; i < nranks(); ++i) {
        const int p = (r + i) % nranks();
        if (((n.confirmed >> p) & 1ULL) == 0) {
          vc::WireWriter ww;
          ww.put<uint8_t>(0);  // kBeat
          send(r, p, kWireHeartbeat, ww.take());
          break;
        }
      }
      break;
    }
    case ChoiceKind::kConfirmDeath:
      do_confirm_death(c.a, c.b);
      info.canon_progress = true;  // once per confirmed death, like the
      info.node_wd_reset = true;   // production watchdog progress sites
      break;
    case ChoiceKind::kCrash:
      fabric_->kill_rank(c.a);
      nodes_[static_cast<size_t>(c.a)].alive = false;
      crashed_ = true;
      break;
    case ChoiceKind::kReset:
      do_reset();
      break;
  }
  return info;
}

void World::deliver(size_t idx, StepInfo& info) {
  const vc::Message peek = fabric_->pending_peek(idx);
  const int dst = peek.dst;
  const int src = peek.src;
  vc::Mailbox& box = mailboxes_[static_cast<size_t>(dst)];
  MP_ASSERT(box.size() == 0, "model invariant: mailboxes drain per step");

  // The engine-side mirror window decides what SHOULD happen; the real
  // mailbox window decides what DOES. Any disagreement is MPS004.
  const bool should_accept = mirror_[{dst, src}].accept(peek.seq);
  fabric_->deliver_pending(idx);
  std::optional<vc::Message> m = box.try_pop();
  if (!m.has_value()) {
    if (should_accept) {
      add_finding("MPS004",
                  "dedup window filtered a fresh message (src " +
                      std::to_string(src) + " seq " + std::to_string(peek.seq) +
                      " tag " + std::to_string(peek.tag) + " at rank " +
                      std::to_string(dst) + ")");
    }
    return;  // filtered duplicate: never reaches the protocol
  }
  if (!should_accept) {
    add_finding("MPS004",
                "duplicate leaked through the dedup window (src " +
                    std::to_string(src) + " seq " + std::to_string(peek.seq) +
                    " at rank " + std::to_string(dst) + ")");
  }
  Node& n = nodes_[static_cast<size_t>(dst)];
  if (!n.alive) return;  // a dead endpoint consumes nothing
  info.delivered = true;
  if ((n.confirmed >> src) & 1ULL) {
    // Fencing: messages from a confirmed-dead incarnation are discarded at
    // pop. The mutated pre-PR6 watchdog counted ANY receipt as progress.
    info.node_wd_reset = cfg_.mutations.skip_watchdog_progress_rule;
    return;
  }
  process_message(dst, *m, info);
}

void World::process_message(int dst, const vc::Message& m, StepInfo& info) {
  Node& n = nodes_[static_cast<size_t>(dst)];
  vc::WireReader rd(m.payload);
  bool moved_tasks = false;
  bool fresh_report = false;

  switch (m.tag) {
    case kWireActivate: {
      const int producer = rd.get<int32_t>();
      const int consumer = rd.get<int32_t>();
      n.slots[consumer].insert(producer);
      promote(dst, consumer);
      maybe_local_done(dst);
      break;
    }
    case kWireCredit: {
      const int t = rd.get<int32_t>();
      if (n.owned.count(t)) {
        n.accounted.insert(t);
        n.migs.erase(t);
        maybe_local_done(dst);
      }
      break;
    }
    case kWireStealRequest: {
      (void)rd.get<uint32_t>();  // thief load hint (heuristic only)
      // Steal-half harvest of own migratable ready work; reply always.
      std::vector<int> eligible;
      for (int t : n.ready) {
        if (task(t).migratable && !n.stolen_in.count(t)) eligible.push_back(t);
      }
      const size_t take = eligible.size() / 2;
      std::vector<int> shipped(eligible.end() - static_cast<long>(take),
                               eligible.end());
      for (int t : shipped) {
        n.ready.erase(t);
        n.migs[t] = m.src;
      }
      vc::WireWriter ww;
      ww.put<uint32_t>(static_cast<uint32_t>(shipped.size()));
      for (int t : shipped) ww.put<int32_t>(t);
      send(dst, m.src, kWireStealReply, ww.take());
      moved_tasks = !shipped.empty();
      break;
    }
    case kWireStealReply: {
      n.steal_out = false;
      const uint32_t count = rd.get<uint32_t>();
      for (uint32_t i = 0; i < count; ++i) {
        const int t = rd.get<int32_t>();
        if (n.executed.count(t)) continue;  // already re-run here (adoption)
        if (!n.owned.count(t)) n.stolen_in.insert(t);
        n.ready.insert(t);
      }
      moved_tasks = count > 0;
      break;
    }
    case kWireLocalDone: {
      const int rank = rd.get<int32_t>();
      Report rep;
      rep.count = rd.get<int32_t>();
      rep.mask = rd.get<uint64_t>();
      if (dst != 0) break;  // only the coordinator consumes reports
      fresh_report = !n.reports.count(rank) || !(n.reports[rank] == rep);
      n.reports[rank] = rep;
      if (n.declared) {
        // Straggler re-report after the broadcast: replay JOB_DONE —
        // unless a copy is already in flight (same chatter gate as the
        // timer choices; the retransmission would be a kDuplicate).
        if (!pending_msg(0, rank, kWireJobDone)) {
          send(0, rank, kWireJobDone, {});
        }
      } else {
        termination_check();
      }
      break;
    }
    case kWireJobDone:
      n.job_done = true;
      break;
    case kWireHeartbeat:
      break;  // detector latency is abstracted into kConfirmDeath
    default:
      MP_ASSERT(false, "model received a tag it never sends");
  }

  info.canon_progress =
      ptg::protocol::work_moving(m.tag, moved_tasks, fresh_report);
  info.node_wd_reset = info.canon_progress ||
                       cfg_.mutations.skip_watchdog_progress_rule;
}

void World::promote(int r, int t) {
  Node& n = nodes_[static_cast<size_t>(r)];
  if (!n.owned.count(t) && !n.stolen_in.count(t)) return;  // parked deposit
  if (n.executed.count(t) || n.accounted.count(t)) return;
  if (n.ready.count(t)) return;
  auto it = n.slots.find(t);
  const size_t have = it == n.slots.end() ? 0 : it->second.size();
  if (static_cast<int>(have) >= task(t).ndeps) n.ready.insert(t);
}

void World::do_execute(int r, int t) {
  Node& n = nodes_[static_cast<size_t>(r)];
  MP_ASSERT(n.ready.count(t) != 0, "execute: task not ready");
  n.ready.erase(t);
  n.executed.insert(t);
  executed_anywhere_.insert(t);
  const ModelTask& mt = task(t);
  if (mt.cell >= 0) cells_[mt.cell] += mt.value;
  for (int c : mt.outs) deposit(r, t, c);
  if (n.owned.count(t)) {
    n.accounted.insert(t);
  } else {
    // Migrated-in: credit the home this rank currently believes in.
    const int home = effective_home(t, n.confirmed);
    if (home == r) {
      n.accounted.insert(t);
    } else {
      vc::WireWriter ww;
      ww.put<int32_t>(t);
      send(r, home, kWireCredit, ww.take());
    }
  }
  maybe_local_done(r);
}

void World::deposit(int producer_rank, int producer, int consumer) {
  Node& n = nodes_[static_cast<size_t>(producer_rank)];
  const int dst = effective_home(consumer, n.confirmed);
  n.log.push_back({producer, consumer, dst});
  if (dst == producer_rank) {
    n.slots[consumer].insert(producer);
    promote(producer_rank, consumer);
  } else {
    vc::WireWriter ww;
    ww.put<int32_t>(producer);
    ww.put<int32_t>(consumer);
    send(producer_rank, dst, kWireActivate, ww.take());
  }
}

void World::do_steal_tick(int r) {
  Node& n = nodes_[static_cast<size_t>(r)];
  // Victim: the live rank advertising the most stealable work; when nobody
  // advertises any, probe the ring-next live peer anyway (it may be hiding
  // work behind a stale hint in production; here it keeps the protocol's
  // empty-reply path explorable).
  int best = -1;
  size_t best_load = 0;
  for (int v = 0; v < nranks(); ++v) {
    if (v == r || !live(v)) continue;
    const Node& nv = nodes_[static_cast<size_t>(v)];
    size_t load = 0;
    for (int t : nv.ready) {
      if (task(t).migratable && !nv.stolen_in.count(t)) ++load;
    }
    if (load > best_load) {
      best_load = load;
      best = v;
    }
  }
  if (best < 0) {
    for (int i = 1; i < nranks(); ++i) {
      const int v = (r + i) % nranks();
      if (live(v)) {
        best = v;
        break;
      }
    }
  }
  MP_ASSERT(best >= 0, "steal tick with no live victim");
  vc::WireWriter ww;
  ww.put<uint32_t>(static_cast<uint32_t>(n.ready.size()));
  send(r, best, kWireStealRequest, ww.take());
  n.steal_out = true;
}

void World::maybe_local_done(int r) {
  Node& n = nodes_[static_cast<size_t>(r)];
  if (!n.alive || n.done_latch || n.job_done) return;
  if (n.accounted.size() < n.owned.size()) return;
  n.done_latch = true;
  if (r == 0) {
    termination_check();
  } else {
    send_local_done(r);
  }
}

void World::send_local_done(int r) {
  const Node& n = nodes_[static_cast<size_t>(r)];
  vc::WireWriter ww;
  ww.put<int32_t>(r);
  ww.put<int32_t>(static_cast<int32_t>(n.accounted.size()));
  ww.put<uint64_t>(n.confirmed);
  send(r, 0, kWireLocalDone, ww.take());
}

void World::termination_check() {
  Node& n0 = nodes_[0];
  if (n0.declared) return;
  if (n0.accounted.size() < n0.owned.size()) return;
  for (int r = 1; r < nranks(); ++r) {
    if ((n0.confirmed >> r) & 1ULL) continue;  // confirmed dead: no report due
    auto it = n0.reports.find(r);
    if (it == n0.reports.end()) return;
    // The report must account for every death the coordinator knows of, or
    // the reporter may still adopt work (PR 7's termination/recovery race).
    if ((it->second.mask & n0.confirmed) != n0.confirmed) return;
  }
  n0.declared = true;
  n0.job_done = true;
  check_completion_invariants();
  for (int r = 1; r < nranks(); ++r) {
    if (((n0.confirmed >> r) & 1ULL) == 0) send(0, r, kWireJobDone, {});
  }
}

void World::check_completion_invariants() {
  const Node& n0 = nodes_[0];
  // MPS001: exactly-once accumulation against the serial reference.
  int bad_cells = 0;
  std::string first;
  for (const auto& [cell, ref] : work_.reference) {
    const double got = cells_.at(cell);
    if (got != ref) {
      if (bad_cells == 0) {
        first = "cell " + std::to_string(cell) + " = " + std::to_string(got) +
                ", serial reference " + std::to_string(ref);
      }
      ++bad_cells;
    }
  }
  if (bad_cells > 0) {
    add_finding("MPS001", "accumulated output diverges from the serial "
                          "reference in " +
                              std::to_string(bad_cells) + " cell(s): " + first);
  }
  // MPS003: termination declared with a task that never ran anywhere.
  for (const ModelTask& t : work_.tasks) {
    if (!executed_anywhere_.count(t.id)) {
      add_finding("MPS003",
                  "job declared done but task " + std::to_string(t.id) +
                      " was never executed (lost activation)");
      break;
    }
  }
  // MPS002: credit conservation — every task accounted at its (re-homed)
  // owner when the coordinator declares.
  for (const ModelTask& t : work_.tasks) {
    const int home = effective_home(t.id, n0.confirmed);
    if (!live(home)) continue;
    if (!nodes_[static_cast<size_t>(home)].accounted.count(t.id)) {
      add_finding("MPS002",
                  "job declared done but task " + std::to_string(t.id) +
                      " is unaccounted at its home rank " +
                      std::to_string(home));
      break;
    }
  }
}

void World::do_confirm_death(int r, int d) {
  Node& n = nodes_[static_cast<size_t>(r)];
  const uint64_t newm = n.confirmed | bit(d);

  // Adoption sweep: every task whose effective home moves d -> r under the
  // new mask is adopted and re-executed from scratch. Cell writers adopt
  // as whole recovery groups, with the on_adopt zero-reset wiping partial
  // pre-crash accumulation before lineage replay re-runs the group.
  for (const ModelTask& mt : work_.tasks) {
    if (effective_home(mt.id, n.confirmed) != d) continue;
    if (effective_home(mt.id, newm) != r) continue;
    n.owned.insert(mt.id);
    if (mt.cell >= 0 && !n.adopted_groups.count(mt.cell)) {
      for (int r2 = 0; r2 < nranks(); ++r2) {
        if (r2 != r && live(r2) &&
            nodes_[static_cast<size_t>(r2)].adopted_groups.count(mt.cell)) {
          add_finding("MPS008",
                      "recovery group " + std::to_string(mt.cell) +
                          " adopted by both rank " + std::to_string(r2) +
                          " and rank " + std::to_string(r));
        }
      }
      n.adopted_groups.insert(mt.cell);
      if (!cfg_.mutations.skip_recovery_zero_reset) cells_[mt.cell] = 0.0;
    }
    if (n.executed.count(mt.id)) {
      // Already ran here as a stolen copy (migratable chains only): its
      // idempotent deposits are in place exactly once; just account it.
      n.accounted.insert(mt.id);
    } else if (mt.ndeps == 0) {
      n.ready.insert(mt.id);
    } else {
      promote(r, mt.id);  // deposits parked here may already satisfy it
    }
  }

  // Reinjection: work this rank migrated to the dead holder and was never
  // credited for is re-run locally.
  for (auto it = n.migs.begin(); it != n.migs.end();) {
    if (it->second == d && !n.accounted.count(it->first)) {
      if (!n.executed.count(it->first)) n.ready.insert(it->first);
      it = n.migs.erase(it);
    } else {
      ++it;
    }
  }

  // Lineage replay: deposits this rank produced whose consumer re-homed
  // are re-sent to the new home and re-recorded under it.
  for (Deposit& dep : n.log) {
    const int nd = effective_home(dep.consumer, newm);
    if (nd == dep.dst) continue;
    dep.dst = nd;
    if (nd == r) {
      n.slots[dep.consumer].insert(dep.producer);
      promote(r, dep.consumer);
    } else {
      vc::WireWriter ww;
      ww.put<int32_t>(dep.producer);
      ww.put<int32_t>(dep.consumer);
      send(r, nd, kWireActivate, ww.take());
    }
  }

  n.confirmed = newm;
  // The mask changed (and owned may have grown): the previous LOCAL_DONE
  // no longer describes this rank. Re-evaluate and re-report.
  n.done_latch = false;
  maybe_local_done(r);
}

void World::do_reset() {
  MP_ASSERT(fabric_->pending_count() == 0, "reset with messages in flight");
  for (int r = 0; r < nranks(); ++r) {
    if (!live(r)) continue;
    MP_ASSERT(mailboxes_[static_cast<size_t>(r)].size() == 0,
              "reset with undrained mailbox");
    if (!cfg_.mutations.skip_seqwindow_rebase) {
      mailboxes_[static_cast<size_t>(r)].rebase_windows();
      for (auto& [key, w] : mirror_) {
        if (key.first == r) w.rebase();
      }
    }
    const size_t backlog = mailboxes_[static_cast<size_t>(r)].window_backlog();
    if (backlog != 0) {
      add_finding("MPS005",
                  "reset leaked " + std::to_string(backlog) +
                      " dedup-window backlog entr" +
                      (backlog == 1 ? std::string("y") : std::string("ies")) +
                      " across submissions at rank " + std::to_string(r));
    }
    Node& n = nodes_[static_cast<size_t>(r)];
    Node fresh;
    fresh.alive = n.alive;
    fresh.confirmed = n.confirmed;  // death knowledge survives the epoch
    n = std::move(fresh);
  }
  ++submission_;
  init_submission();
}

// ---------------------------------------------------------------------------
// Terminal classification and findings

bool World::all_done() const {
  return nodes_[0].declared && submission_ + 1 == cfg_.submissions &&
         fabric_->pending_count() == 0;
}

void World::report_deadlock() {
  std::ostringstream os;
  os << "protocol deadlock: no choice enabled, job not done (submission "
     << submission_ + 1 << "/" << cfg_.submissions << ", no fault injected)";
  add_finding("MPS007", os.str());
}

void World::report_livelock(int cycle_len) {
  std::ostringstream os;
  os << "watchdog livelock: a " << cycle_len
     << "-step chatter cycle moves no work yet resets the node's progress "
        "deadline, so the watchdog can never fire";
  add_finding("MPS006", os.str());
}

void World::add_finding(const std::string& code, const std::string& msg,
                        const std::string& subject) {
  findings_.push_back({code, msg, subject});
}

// ---------------------------------------------------------------------------
// Fingerprints

std::string World::debug_dump() const {
  std::ostringstream os;
  os << "submission=" << submission_ << " drops=" << drops_used_
     << " dups=" << dups_used_ << " crashed=" << crashed_ << '\n';
  for (int r = 0; r < nranks(); ++r) {
    const Node& n = nodes_[static_cast<size_t>(r)];
    os << "rank " << r << ": alive=" << n.alive << " job_done=" << n.job_done
       << " latch=" << n.done_latch << " steal_out=" << n.steal_out
       << " declared=" << n.declared << " confirmed=" << n.confirmed << '\n';
    if (!n.alive) continue;
    auto dump_set = [&](const char* name, const std::set<int>& s) {
      os << "  " << name << "={";
      for (int v : s) os << v << ',';
      os << "}";
    };
    dump_set("owned", n.owned);
    dump_set(" accounted", n.accounted);
    dump_set(" executed", n.executed);
    dump_set(" ready", n.ready);
    dump_set(" stolen_in", n.stolen_in);
    os << '\n';
    os << "  reports:";
    for (const auto& [rank, rep] : n.reports) {
      os << " (" << rank << ": mask=" << rep.mask << " count=" << rep.count
         << ")";
    }
    os << " log=" << n.log.size() << '\n';
  }
  os << "cells:";
  for (const auto& [cell, v] : cells_) os << " [" << cell << "]=" << v;
  os << '\n';
  const size_t count = fabric_->pending_count();
  for (size_t i = 0; i < count; ++i) {
    const vc::Message m = fabric_->pending_peek(i);
    os << "pending: " << m.src << "->" << m.dst << " tag=" << m.tag
       << " seq=" << m.seq << " rel=" << fabric_->wire_seq_next(m.src) - m.seq
       << " payload=" << hash_bytes(m.payload.data(), m.payload.size())
       << '\n';
  }
  for (int r = 0; r < nranks(); ++r) {
    if (!live(r)) continue;
    for (const auto& [src, w] :
         mailboxes_[static_cast<size_t>(r)].window_snapshot()) {
      const uint64_t next = fabric_->wire_seq_next(src);
      os << "window dst=" << r << " src=" << src
         << " rel_watermark=" << next - w.watermark << " above={";
      for (uint64_t s : w.above) os << next - s << ',';
      os << "}\n";
    }
  }
  return os.str();
}

uint64_t World::fingerprint() const {
  uint64_t h = kFnvBasis;
  fold(h, static_cast<uint64_t>(submission_));
  fold(h, static_cast<uint64_t>(drops_used_));
  fold(h, static_cast<uint64_t>(dups_used_));
  fold(h, crashed_ ? 1 : 0);

  for (int r = 0; r < nranks(); ++r) {
    const Node& n = nodes_[static_cast<size_t>(r)];
    fold(h, 0xA0 + static_cast<uint64_t>(r));
    fold(h, (n.alive ? 1 : 0) | (n.job_done ? 2 : 0) | (n.done_latch ? 4 : 0) |
                (n.steal_out ? 8 : 0) | (n.declared ? 16 : 0));
    fold(h, n.confirmed);
    if (!n.alive) continue;  // frozen state can never influence the future
    auto fold_set = [&](const std::set<int>& s) {
      fold(h, 0xB0);
      for (int v : s) fold(h, static_cast<uint64_t>(v) + 1);
    };
    fold_set(n.owned);
    fold_set(n.accounted);
    fold_set(n.executed);
    fold_set(n.ready);
    fold_set(n.stolen_in);
    fold_set(n.adopted_groups);
    fold(h, 0xB1);
    for (const auto& [t, producers] : n.slots) {
      fold(h, static_cast<uint64_t>(t) + 1);
      for (int p : producers) fold(h, static_cast<uint64_t>(p) + 1);
      fold(h, 0xB2);
    }
    fold(h, 0xB3);
    for (const auto& [t, thief] : n.migs) {
      fold(h, static_cast<uint64_t>(t) + 1);
      fold(h, static_cast<uint64_t>(thief) + 1);
    }
    fold(h, 0xB4);
    for (const Deposit& d : n.log) {
      fold(h, static_cast<uint64_t>(d.producer) + 1);
      fold(h, static_cast<uint64_t>(d.consumer) + 1);
      fold(h, static_cast<uint64_t>(d.dst) + 1);
    }
    fold(h, 0xB5);
    for (const auto& [rank, rep] : n.reports) {
      fold(h, static_cast<uint64_t>(rank) + 1);
      fold(h, static_cast<uint64_t>(rep.count));
      fold(h, rep.mask);
    }
  }

  fold(h, 0xC0);
  for (const auto& [cell, v] : cells_) {
    fold(h, static_cast<uint64_t>(cell) + 1);
    uint64_t pattern = 0;
    static_assert(sizeof(pattern) == sizeof(v));
    std::memcpy(&pattern, &v, sizeof(pattern));
    fold(h, pattern);
  }

  // In-flight messages, canonicalized per (src, dst) wire. Absolute seq
  // values never enter the hash: within a wire only the ORDER of the
  // pending seqs (dense ranks, ties preserved for injected duplicates) and
  // each message's current accept/filter verdict against the receiver's
  // dedup window are behaviorally observable. This is what lets chatter
  // cycles close even while an undelivered message sits parked on a wire
  // whose counter keeps advancing.
  std::map<std::pair<int, int>, vc::SeqWindow> windows;
  for (int r = 0; r < nranks(); ++r) {
    if (!live(r)) continue;
    for (const auto& [src, w] :
         mailboxes_[static_cast<size_t>(r)].window_snapshot()) {
      windows[{r, src}] = w;
    }
  }
  fold(h, 0xD0);
  std::map<std::pair<int, int>, std::vector<vc::Message>> wires;
  const size_t count = fabric_->pending_count();
  for (size_t i = 0; i < count; ++i) {
    const vc::Message m = fabric_->pending_peek(i);
    wires[{m.src, m.dst}].push_back(m);
  }
  for (auto& [wire, msgs] : wires) {
    fold(h, 0xD1);
    fold(h, static_cast<uint64_t>(wire.first));
    fold(h, static_cast<uint64_t>(wire.second));
    std::sort(msgs.begin(), msgs.end(),
              [](const vc::Message& a, const vc::Message& b) {
                return a.seq < b.seq;
              });
    uint64_t rank = 0;
    for (size_t j = 0; j < msgs.size(); ++j) {
      if (j > 0 && msgs[j].seq != msgs[j - 1].seq) ++rank;
      bool fresh = true;  // no window yet (or dead dst): first contact
      auto it = windows.find({wire.second, wire.first});
      if (it != windows.end()) {
        fresh = msgs[j].seq > it->second.watermark &&
                it->second.above.count(msgs[j].seq) == 0;
      }
      fold(h, rank);
      fold(h, static_cast<uint64_t>(msgs[j].tag));
      fold(h, hash_bytes(msgs[j].payload.data(), msgs[j].payload.size()));
      fold(h, fresh ? 1 : 0);
    }
  }

  // Window residue: of the dedup state itself only "is there out-of-order
  // backlog" remains observable (the MPS005 reset-leak check); which dead
  // seqs the window remembers is not, and folding them would stop
  // post-drop chatter cycles from ever closing.
  fold(h, 0xE0);
  for (const auto& [key, w] : windows) {
    fold(h, 0xE1);
    fold(h, static_cast<uint64_t>(key.first));
    fold(h, static_cast<uint64_t>(key.second));
    fold(h, w.backlog() == 0 ? 0 : 1);
  }
  return h;
}

}  // namespace mp::analysis
