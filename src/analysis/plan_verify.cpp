#include "analysis/plan_verify.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <tuple>

namespace mp::analysis {

namespace {

std::string chain_name(const tce::Chain& ch) {
  return "chain " + std::to_string(ch.id);
}

}  // namespace

std::vector<Diag> verify_plan(const tce::ChainPlan& plan) {
  std::vector<Diag> diags;
  const auto nstores = static_cast<int8_t>(plan.store_sizes.size());

  // Writer map: within one subroutine (identified by its store triple)
  // each canonical C block has exactly one producing chain.
  std::map<std::tuple<int8_t, int8_t, int8_t, uint64_t>, int> writers;

  for (size_t i = 0; i < plan.chains.size(); ++i) {
    const tce::Chain& ch = plan.chains[i];
    if (ch.id != static_cast<int>(i)) {
      diags.push_back({"MPP001",
                       "chain ids must be dense and ordered: position " +
                           std::to_string(i) + " holds id " +
                           std::to_string(ch.id),
                       chain_name(ch)});
    }

    if (ch.a_store < 0 || ch.a_store >= nstores || ch.b_store < 0 ||
        ch.b_store >= nstores || ch.r_store < 0 || ch.r_store >= nstores) {
      diags.push_back({"MPP006",
                       "store id outside the plan's " +
                           std::to_string(plan.store_sizes.size()) +
                           " store(s)",
                       chain_name(ch)});
      continue;  // later range checks would index out of store_sizes
    }

    auto [wit, winserted] = writers.emplace(
        std::make_tuple(ch.a_store, ch.b_store, ch.r_store, ch.c_key),
        ch.id);
    if (!winserted) {
      diags.push_back({"MPP002",
                       "writes C block key " + std::to_string(ch.c_key) +
                           " already written by chain " +
                           std::to_string(wit->second) +
                           " of the same subroutine (duplicate writer)",
                       chain_name(ch)});
    }

    if (ch.gemms.empty()) {
      diags.push_back(
          {"MPP007", "chain has no GEMMs (nothing produces its C block)",
           chain_name(ch)});
    }

    if (ch.m <= 0 || ch.n <= 0 ||
        static_cast<int64_t>(ch.c_dims[0]) * static_cast<int64_t>(ch.c_dims[1]) !=
            ch.n ||
        static_cast<int64_t>(ch.c_dims[2]) * static_cast<int64_t>(ch.c_dims[3]) !=
            ch.m) {
      diags.push_back({"MPP004",
                       "C dims [" + std::to_string(ch.c_dims[0]) + "," +
                           std::to_string(ch.c_dims[1]) + "," +
                           std::to_string(ch.c_dims[2]) + "," +
                           std::to_string(ch.c_dims[3]) +
                           "] inconsistent with C matrix " +
                           std::to_string(ch.m) + " x " + std::to_string(ch.n),
                       chain_name(ch)});
    }
    if (ch.c_offset < 0 ||
        ch.c_offset + ch.c_elems() > plan.store_size(ch.r_store)) {
      diags.push_back({"MPP006",
                       "C block offset " + std::to_string(ch.c_offset) +
                           " + " + std::to_string(ch.c_elems()) +
                           " elements overruns result store",
                       chain_name(ch)});
    }

    for (size_t gi = 0; gi < ch.gemms.size(); ++gi) {
      const tce::GemmOp& g = ch.gemms[gi];
      if (g.l2 != static_cast<int>(gi)) {
        diags.push_back({"MPP003",
                         "GEMM chain positions must be dense: position " +
                             std::to_string(gi) + " holds L2=" +
                             std::to_string(g.l2) +
                             " (dropped or duplicated chain link)",
                         chain_name(ch)});
      }
      if (g.m != ch.m || g.n != ch.n || g.k <= 0) {
        diags.push_back({"MPP004",
                         "GEMM " + std::to_string(gi) + " is " +
                             std::to_string(g.m) + "x" + std::to_string(g.n) +
                             "x" + std::to_string(g.k) +
                             " but the chain accumulates " +
                             std::to_string(ch.m) + "x" + std::to_string(ch.n),
                         chain_name(ch)});
        continue;
      }
      const int64_t a_elems = static_cast<int64_t>(g.m) * g.k;
      const int64_t b_elems = static_cast<int64_t>(g.n) * g.k;
      if (g.a_offset < 0 ||
          g.a_offset + a_elems > plan.store_size(ch.a_store) ||
          g.b_offset < 0 ||
          g.b_offset + b_elems > plan.store_size(ch.b_store)) {
        diags.push_back({"MPP006",
                         "GEMM " + std::to_string(gi) +
                             " input block offset overruns its store",
                         chain_name(ch)});
      }
    }

    const size_t ns = ch.sorts.size();
    if (ns != 1 && ns != 2 && ns != 4) {
      diags.push_back({"MPP005",
                       "chain fires " + std::to_string(ns) +
                           " sort guard(s); the TCE guard structure only "
                           "produces 1, 2 or 4",
                       chain_name(ch)});
    }
    std::array<bool, 4> guard_seen{};
    for (const tce::SortOp& so : ch.sorts) {
      if (so.guard_id < 0 || so.guard_id >= 4 ||
          guard_seen[static_cast<size_t>(so.guard_id)]) {
        diags.push_back({"MPP005",
                         "sort guard id " + std::to_string(so.guard_id) +
                             " is out of range or fired twice",
                         chain_name(ch)});
      } else {
        guard_seen[static_cast<size_t>(so.guard_id)] = true;
      }
      std::array<int, 4> perm = so.perm;
      std::sort(perm.begin(), perm.end());
      if (perm != std::array<int, 4>{0, 1, 2, 3}) {
        diags.push_back({"MPP005",
                         "sort permutation [" + std::to_string(so.perm[0]) +
                             "," + std::to_string(so.perm[1]) + "," +
                             std::to_string(so.perm[2]) + "," +
                             std::to_string(so.perm[3]) +
                             "] is not a permutation of 0..3",
                         chain_name(ch)});
      }
    }
  }
  return diags;
}

}  // namespace mp::analysis
