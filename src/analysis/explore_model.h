// The protocol model driven by the mp-explore engine (DESIGN.md §12).
//
// World holds one model rank ("Node") per rank of a virtual cluster and
// wires them through a REAL vc::Fabric in controlled-scheduler mode and
// REAL vc::Mailbox instances — the transport, wire sequencing and
// exactly-once dedup windows under test are the production classes, not a
// re-implementation. The Nodes themselves are a single-threaded mirror of
// the comm-thread protocols in ptg/context.cpp at message granularity:
// activations, steal request/reply/credit, LOCAL_DONE/JOB_DONE termination
// with confirmed-death masks, adoption with recovery-group zero-reset and
// lineage replay, and the persistent-runtime reset. Shared decision rules
// (watchdog progress, failure re-homing) come from ptg/protocol.h.
//
// Deliberate abstractions, chosen so the state space stays finite and
// choices commute where the engine assumes they do:
//   - time is the choice sequence; watchdog/steal/heartbeat timers become
//     explicit tick choices, and livelock is a cycle-detection oracle
//     (MPS006) instead of a deadline;
//   - task payloads are exactly-representable integers, so accumulation
//     order never perturbs the serial reference;
//   - accounting uses idempotent sets (task ids) rather than counters, so
//     the model checks the protocol, not counter arithmetic;
//   - the steal victim heuristic reads true ready-queue sizes (a
//     performance hint in production, never a correctness input);
//   - detector latency is abstracted: kConfirmDeath(r, d) is enabled from
//     the moment d is dead, in any order across ranks, and false positives
//     (confirming a live rank) are not modeled.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/explore.h"
#include "vc/fabric.h"
#include "vc/mailbox.h"
#include "vc/seq_window.h"

namespace mp::analysis {

/// One task of the model workload (derived from a real inspected
/// ChainPlan, see build_model_workload).
struct ModelTask {
  int id = 0;
  int home = 0;            ///< static home rank (before failure re-homing)
  int cell = -1;           ///< recovery group / output cell; -1 = none (chain)
  double value = 0.0;      ///< exact integer accumulated into `cell`
  bool migratable = false; ///< chains migrate; cell writers never do
  std::vector<int> outs;   ///< consumer task ids activated on completion
  int ndeps = 0;           ///< producer activations required before ready
};

struct ModelWorkload {
  std::vector<ModelTask> tasks;
  std::map<int, double> reference;  ///< cell -> exact serial sum
  size_t num_chains = 0;
};

/// Build the micro workload for `kind` ("t2_7" or "hh") by running the
/// real tce inspector on a tiny tile space and lowering each GEMM chain to
/// a migratable CHAIN task feeding a non-migratable WRITE task homed on
/// its output cell's owner (all writers of one cell share a home — the
/// cell is the recovery group). Throws InvalidArgument on unknown kind.
ModelWorkload build_model_workload(const std::string& kind, int nranks);

/// What a single applied choice did — the engine's cycle/livelock oracle
/// consumes these per-step flags.
struct StepInfo {
  bool delivered = false;     ///< the step delivered a message to a live node
  bool canon_progress = false; ///< progress per ptg::protocol rules
  bool node_wd_reset = false;  ///< the node's (possibly mutated) rule fired
};

class World {
 public:
  explicit World(const ExploreConfig& cfg);

  /// All currently enabled choices, in a deterministic total order.
  std::vector<Choice> enabled() const;

  /// Apply one choice (must be enabled). Protocol violations discovered
  /// while applying are appended to findings().
  StepInfo apply(const Choice& c);

  /// Conservative rank-footprint of a choice in the CURRENT state, for the
  /// engine's independence relation: bit r set = the choice may read or
  /// write rank r's protocol state. Bit 63 marks global effects (crash,
  /// reset) that commute with nothing.
  uint64_t footprint(const Choice& c) const;

  /// Canonical state fingerprint. Wire sequence numbers are encoded
  /// relative to each source's next-seq counter, so states that differ
  /// only by the monotone seq drift of chatter loops hash equal — this is
  /// what lets the engine close cycles.
  uint64_t fingerprint() const;

  /// The coordinator has declared the job done for the FINAL submission
  /// and no message is still parked: a fully clean terminal.
  bool all_done() const;
  /// A drop or crash happened on this path (duplicates are not
  /// disturbances: they cannot lose information). Stalled terminals with a
  /// disturbance are the production watchdog's jurisdiction, not findings.
  bool disturbed() const { return drops_used_ > 0 || crashed_; }

  /// Total messages the fabric accepted (per-path bound).
  uint64_t messages_sent() const { return fabric_->messages_sent(); }

  const std::vector<Diag>& findings() const { return findings_; }
  const ExploreConfig& config() const { return cfg_; }
  const ModelWorkload& workload() const { return work_; }

  /// Multi-line state dump (fingerprint components) for debugging the
  /// explorer itself.
  std::string debug_dump() const;

  /// Append a deadlock finding (the engine classifies terminals; the model
  /// owns the diagnostic format).
  void report_deadlock();
  /// Append a livelock finding for a detected chatter cycle (MPS006).
  void report_livelock(int cycle_len);

 private:
  struct Deposit {
    int producer = -1;
    int consumer = -1;
    int dst = -1;  ///< rank the deposit was last sent to (lineage replay)
  };
  struct Report {
    uint64_t mask = 0;   ///< sender's confirmed-death mask
    int count = 0;       ///< sender's accounted-task count
    bool operator==(const Report& o) const {
      return mask == o.mask && count == o.count;
    }
  };
  struct Node {
    bool alive = true;
    bool job_done = false;
    bool done_latch = false;  ///< LOCAL_DONE sent for the current state
    bool steal_out = false;   ///< a steal request is outstanding
    uint64_t confirmed = 0;   ///< confirmed-dead rank mask
    std::set<int> owned;      ///< tasks this rank must account (grows on adopt)
    std::set<int> accounted;  ///< owned tasks completed (exec or credit)
    std::set<int> executed;   ///< tasks executed locally (any ownership)
    std::set<int> ready;      ///< runnable task ids held here
    std::map<int, std::set<int>> slots;  ///< task -> producer deposits seen
    std::set<int> adopted_groups;        ///< recovery groups adopted here
    std::map<int, int> migs;  ///< task -> thief (outstanding migrations)
    std::set<int> stolen_in;  ///< held tasks that are migrated-in
    std::vector<Deposit> log; ///< lineage log of deposits produced here
    // Coordinator (rank 0) only:
    std::map<int, Report> reports;
    bool declared = false;
  };

  int nranks() const { return cfg_.nranks; }
  bool live(int r) const { return nodes_[static_cast<size_t>(r)].alive; }
  const ModelTask& task(int id) const {
    return work_.tasks[static_cast<size_t>(id)];
  }
  /// Where task `t` lives under `mask` (ptg::protocol::retry_standin).
  int effective_home(int t, uint64_t mask) const;

  void init_submission();
  void send(int src, int dst, int tag, vc::Payload payload);
  /// Deliver parked message at `idx` and run the destination's protocol
  /// handler; fills `info`.
  void deliver(size_t idx, StepInfo& info);
  void process_message(int dst, const vc::Message& m, StepInfo& info);
  void promote(int r, int t);
  void do_execute(int r, int t);
  void do_steal_tick(int r);
  void do_confirm_death(int r, int d);
  void do_reset();
  void deposit(int producer_rank, int producer, int consumer);
  void maybe_local_done(int r);
  void send_local_done(int r);
  void termination_check();
  void check_completion_invariants();
  void add_finding(const std::string& code, const std::string& msg,
                   const std::string& subject = "");
  /// Locate a parked message by wire identity; SIZE_MAX when absent.
  size_t find_pending(const Choice& c) const;
  /// Any parked message matching (src, dst, tag), -1 = wildcard. Gates the
  /// periodic tick choices: re-firing a timer while its previous message
  /// is still in flight is behaviorally subsumed by kDuplicate, and
  /// admitting it would make the interleaving space unbounded.
  bool pending_msg(int src, int dst, int tag) const;

  ExploreConfig cfg_;
  ModelWorkload work_;
  std::vector<vc::Mailbox> mailboxes_;
  std::unique_ptr<vc::Fabric> fabric_;
  std::vector<Node> nodes_;
  std::map<int, double> cells_;  ///< the surviving store (models the GA)
  std::set<int> executed_anywhere_;  ///< per-submission, any rank
  /// Engine-side mirror of every (dst, src) dedup window, fed the same
  /// accept/rebase sequence as the real mailboxes; a divergence between
  /// mirror verdict and mailbox behavior is MPS004.
  std::map<std::pair<int, int>, vc::SeqWindow> mirror_;
  int submission_ = 0;
  int drops_used_ = 0;
  int dups_used_ = 0;
  bool crashed_ = false;
  std::vector<Diag> findings_;
};

}  // namespace mp::analysis
