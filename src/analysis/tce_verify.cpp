#include "analysis/tce_verify.h"

#include "analysis/plan_verify.h"

namespace mp::analysis {

namespace {

struct ChainCounts {
  size_t reads_a = 0, reads_b = 0, dfills = 0, gemms = 0, reduces = 0,
         sorts = 0, writes = 0;
};

}  // namespace

std::vector<Diag> verify_tce_graph(const tce::ChainPlan& plan,
                                   const tce::VariantConfig& var,
                                   const tce::PtgBuild& build,
                                   const GraphModel& graph) {
  std::vector<Diag> diags;
  const tce::PtgClassIds& ids = build.ids;

  std::vector<ChainCounts> per_chain(plan.chains.size());
  size_t foreign = 0;
  for (const GraphTask& t : graph.tasks) {
    const auto l1 = static_cast<size_t>(t.key.p[0]);
    if (l1 >= per_chain.size()) {
      ++foreign;
      continue;
    }
    ChainCounts& cc = per_chain[l1];
    if (t.key.cls == ids.read_a) ++cc.reads_a;
    else if (t.key.cls == ids.read_b) ++cc.reads_b;
    else if (t.key.cls == ids.dfill) ++cc.dfills;
    else if (t.key.cls == ids.gemm) ++cc.gemms;
    else if (t.key.cls == ids.reduce) ++cc.reduces;
    else if (t.key.cls == ids.sort) ++cc.sorts;
    else if (t.key.cls == ids.write) ++cc.writes;
  }
  if (foreign > 0) {
    diags.push_back({"MPT005",
                     std::to_string(foreign) +
                         " task instance(s) reference a chain id outside "
                         "the plan",
                     ""});
  }

  size_t expected_total = 0;
  for (const tce::Chain& ch : plan.chains) {
    const std::string name = "chain " + std::to_string(ch.id);
    const ChainCounts& cc = per_chain[static_cast<size_t>(ch.id)];
    const size_t len = ch.gemms.size();
    const size_t arms = ch.sorts.size();

    // Reduction fan-in vs chain segmentation.
    const size_t want_reduces =
        (var.parallel_gemms && len > 1) ? len - 1 : 0;
    if (cc.reduces != want_reduces) {
      diags.push_back({"MPT001",
                       "reduction tree has " + std::to_string(cc.reduces) +
                           " node(s) for " + std::to_string(len) +
                           " GEMM leaves; chain segmentation requires " +
                           std::to_string(want_reduces),
                       name});
    }
    const size_t want_dfills = var.parallel_gemms ? 0 : 1;
    if (cc.dfills != want_dfills || cc.gemms != len ||
        cc.reads_a != len || cc.reads_b != len) {
      diags.push_back({"MPT005",
                       "chain instance counts off: " +
                           std::to_string(cc.reads_a) + "/" +
                           std::to_string(cc.reads_b) + " reads, " +
                           std::to_string(cc.dfills) + " dfills, " +
                           std::to_string(cc.gemms) + " gemms for " +
                           std::to_string(len) + " chain links",
                       name});
    }

    // Guard-consistent SORT / WRITE arms.
    const size_t want_sorts = var.parallel_sorts ? arms : 1;
    if (cc.sorts != want_sorts) {
      diags.push_back({"MPT002",
                       std::to_string(cc.sorts) + " SORT task(s) for " +
                           std::to_string(arms) +
                           " fired guard(s) under sort mode '" +
                           (var.parallel_sorts ? "parallel" : "single") + "'",
                       name});
    }
    const size_t want_writes = var.parallel_writes ? arms : 1;
    if (cc.writes != want_writes) {
      diags.push_back({"MPT003",
                       std::to_string(cc.writes) + " WRITE task(s) for " +
                           std::to_string(arms) +
                           " fired guard(s) under write mode '" +
                           (var.parallel_writes ? "parallel" : "single") + "'",
                       name});
    }
    // WRITE fan-in: single-write-over-parallel-sorts gathers every arm.
    const int want_write_fanin =
        (!var.parallel_writes && var.parallel_sorts)
            ? static_cast<int>(arms)
            : 1;
    for (const GraphTask& t : graph.tasks) {
      if (t.key.cls != ids.write || t.key.p[0] != ch.id) continue;
      if (t.num_inputs != want_write_fanin) {
        diags.push_back(
            {"MPT003",
             "WRITE declares fan-in " + std::to_string(t.num_inputs) +
                 " but the variant requires " +
                 std::to_string(want_write_fanin),
             GraphModel::name_of(build.pool, t.key)});
      }
    }

    // Every GEMM must be fed by its own READ_A/READ_B pair.
    for (const tce::GemmOp& g : ch.gemms) {
      const ptg::Params p = ptg::params_of(ch.id, g.l2);
      const bool has_a =
          graph.index.count(ptg::TaskKey{ids.read_a, p}) != 0;
      const bool has_b =
          graph.index.count(ptg::TaskKey{ids.read_b, p}) != 0;
      const bool has_g = graph.index.count(ptg::TaskKey{ids.gemm, p}) != 0;
      if (!has_a || !has_b || !has_g) {
        diags.push_back(
            {"MPT004",
             std::string("GEMM link missing its producers: ") +
                 (has_g ? "" : "GEMM absent; ") + (has_a ? "" : "READ_A absent; ") +
                 (has_b ? "" : "READ_B absent; ") + "for L2=" +
                 std::to_string(g.l2),
             name});
      }
    }

    expected_total += 2 * len            // READ_A + READ_B
                      + len              // GEMM
                      + want_dfills + want_reduces + want_sorts + want_writes;
  }

  if (graph.tasks.size() != expected_total) {
    diags.push_back({"MPT005",
                     "materialized " + std::to_string(graph.tasks.size()) +
                         " tasks; plan + variant imply " +
                         std::to_string(expected_total),
                     ""});
  }
  return diags;
}

VerifyReport verify_variant(const tce::ChainPlan& plan,
                            const tce::StoreList& stores,
                            const tce::VariantConfig& variant, int nranks) {
  VerifyReport rep;
  rep.diags = verify_plan(plan);

  tce::PtgBuild build = tce::build_ptg(plan, stores, variant, nranks);
  GraphModel graph = materialize_graph(build.pool, nranks);
  rep.num_tasks = graph.tasks.size();
  rep.num_edges = graph.num_edges;

  auto gdiags = verify_graph(build.pool, graph);
  rep.diags.insert(rep.diags.end(), gdiags.begin(), gdiags.end());
  auto tdiags = verify_tce_graph(plan, variant, build, graph);
  rep.diags.insert(rep.diags.end(), tdiags.begin(), tdiags.end());
  return rep;
}

}  // namespace mp::analysis
