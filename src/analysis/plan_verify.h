// Structural verifier for ChainPlans (pass 1 of mp-verify, plan layer).
//
// The inspection phase (Section III.B) is the paper's trust anchor: every
// executor replays the ChainPlan verbatim, so a malformed plan corrupts
// results identically in all of them and no cross-executor comparison can
// catch it. These checks validate the plan's own invariants:
//
//   MPP001  chain ids       — not dense/ordered (chains[i].id != i)
//   MPP002  duplicate writer— two chains write the same C block of the same
//                             subroutine (same store triple + c_key)
//   MPP003  gemm sequence   — chain positions L2 not dense (dropped or
//                             duplicated GEMM link)
//   MPP004  dims            — C buffer dims inconsistent with m x n, or a
//                             GEMM's m/n/k inconsistent with its chain
//   MPP005  sort guards     — guard count not in {1,2,4}, duplicate guard
//                             ids, or a sort perm that is not a permutation
//   MPP006  store range     — store id or block offset outside the store
//   MPP007  empty chain     — chain with no GEMMs
#pragma once

#include "analysis/diagnostics.h"
#include "tce/chain_plan.h"

namespace mp::analysis {

std::vector<Diag> verify_plan(const tce::ChainPlan& plan);

}  // namespace mp::analysis
