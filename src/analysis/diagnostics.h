// Diagnostic records emitted by the mp-verify static passes.
//
// Every check reports a stable code so tests (and downstream tooling) can
// assert on *which* invariant broke, not just that something did:
//
//   MPV0xx — generic PTG graph invariants (analysis/graph_verify.h)
//   MPP0xx — ChainPlan structural invariants (analysis/plan_verify.h)
//   MPT0xx — TCE variant/graph cross-checks (analysis/tce_verify.h)
//   MPA0xx — dynamic lifecycle findings (support/analysis.h)
//   MPS0xx — distributed-protocol violations found by the mp-explore
//            model checker (analysis/explore.h, DESIGN.md §12)
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace mp::analysis {

struct Diag {
  std::string code;     ///< stable diagnostic code, e.g. "MPV006"
  std::string message;  ///< human-readable description
  std::string task;     ///< symbolic task or chain, e.g. "GEMM(3,1)" (maybe "")
};

/// Render a diagnostic list for logs / exceptions. Empty string when clean.
inline std::string render(const std::vector<Diag>& diags) {
  if (diags.empty()) return "";
  std::ostringstream os;
  os << diags.size() << " diagnostic(s):\n";
  for (const Diag& d : diags) {
    os << "  [" << d.code << "] ";
    if (!d.task.empty()) os << d.task << ": ";
    os << d.message << "\n";
  }
  return os.str();
}

/// True if any diagnostic in `diags` carries `code`.
inline bool has_code(const std::vector<Diag>& diags, const std::string& code) {
  for (const Diag& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

}  // namespace mp::analysis
