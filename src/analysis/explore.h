// mp-explore: systematic model checking of the distributed runtime
// protocols (DESIGN.md §12).
//
// The explorer runs a single-threaded *model* of the PTG runtime's
// distributed protocols — termination detection, work stealing, failure
// recovery, persistent-runtime reset — over the REAL virtual-cluster
// transport: a vc::Fabric in controlled-scheduler mode feeding real
// vc::Mailbox exactly-once windows (vc::SeqWindow). Every message delivery,
// drop, duplication, task execution, steal tick, crash, death confirmation
// and reset epoch transition is an explicit Choice; the engine enumerates
// interleavings of small configurations exhaustively with sleep-set
// (DPOR-style) partial-order reduction, or samples them with a seeded
// random walk. Protocol invariants are checked at every step and terminal
// state and reported as the MPS0xx diagnostic family
// (analysis/diagnostics.h); every finding carries a replayable Schedule
// that reproduces it deterministically.
//
// The decision rules the model shares with the production comm thread —
// watchdog progress, failure re-homing — live in ptg/protocol.h so the
// checker verifies the protocol the runtime actually runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"

namespace mp::analysis {

// ---------------------------------------------------------------------------
// Choice points

/// Every scheduling decision of the model, one enumerator per kind of
/// nondeterminism. Messages are identified by wire identity
/// (src, dst, tag, seq), never by queue position, so a Choice names the
/// same event in any interleaving.
enum class ChoiceKind : int {
  kDeliver = 0,    ///< deliver parked message (a=src, b=dst, tag, seq)
  kDrop,           ///< drop parked message (explicit fault, budget-gated)
  kDuplicate,      ///< duplicate parked message (budget-gated)
  kExecute,        ///< run one ready task (a=rank, b=task id)
  kStealTick,      ///< idle rank a fires its steal agent
  kStealTimeout,   ///< rank a gives up on its outstanding steal request
  kResendTick,     ///< rank a re-sends its LOCAL_DONE report
  kHeartbeatTick,  ///< rank a emits one failure-detector beat
  kConfirmDeath,   ///< rank a confirms the death of rank b
  kCrash,          ///< rank a fail-stops
  kReset,          ///< persistent-runtime reset into the next submission
};

struct Choice {
  ChoiceKind kind = ChoiceKind::kDeliver;
  int a = -1;        ///< rank operand (src / actor / victim)
  int b = -1;        ///< second operand (dst rank / task id / dead rank)
  int tag = 0;       ///< wire tag (message choices only)
  uint64_t seq = 0;  ///< wire sequence (message choices only)

  bool operator==(const Choice& o) const {
    return kind == o.kind && a == o.a && b == o.b && tag == o.tag &&
           seq == o.seq;
  }
  bool operator<(const Choice& o) const {
    if (kind != o.kind) return kind < o.kind;
    if (a != o.a) return a < o.a;
    if (b != o.b) return b < o.b;
    if (tag != o.tag) return tag < o.tag;
    return seq < o.seq;
  }

  /// One-line trace form, e.g. "deliver 0 1 101 3" — see Schedule.
  std::string str() const;
  /// Inverse of str(). nullopt on malformed input.
  static std::optional<Choice> parse(const std::string& line);
};

// ---------------------------------------------------------------------------
// Configuration

/// Seeded protocol mutations: each re-introduces one historical bug class
/// (or a plausible near-miss) so tests can prove the checker distinguishes
/// them by MPS code. A mutation changes the MODEL's protocol only — the
/// production runtime is untouched.
struct ExploreMutations {
  /// Pre-PR6 watchdog: ANY received message resets the progress deadline
  /// (instead of ptg::protocol::work_moving), so idle steal/heartbeat
  /// chatter keeps a stalled job alive forever -> MPS006.
  bool skip_watchdog_progress_rule = false;
  /// Adoption skips the recovery group's on_adopt zero-reset, so partial
  /// pre-crash accumulation double-counts after lineage replay -> MPS001.
  bool skip_recovery_zero_reset = false;
  /// reset skips Mailbox::rebase_windows(), so drop gaps leak dedup-window
  /// backlog across submissions -> MPS005.
  bool skip_seqwindow_rebase = false;

  bool any() const {
    return skip_watchdog_progress_rule || skip_recovery_zero_reset ||
           skip_seqwindow_rebase;
  }
};

struct ExploreConfig {
  /// Micro workload: "t2_7" (pp-ladder) or "hh" (hh-ladder), inspected by
  /// the real tce inspectors on a tiny tile space.
  std::string workload = "t2_7";
  int nranks = 2;
  bool stealing = false;
  bool heartbeats = false;
  /// Rank that MAY fail-stop (a kCrash choice point at every state until
  /// termination); -1 = no crash. Never 0: the coordinator's death aborts
  /// the job in the production runtime and the model matches.
  int crash_victim = -1;
  /// Number of back-to-back submissions through the persistent runtime
  /// (>1 exercises the reset protocol).
  int submissions = 1;
  /// How many kDrop / kDuplicate choices a single path may take.
  int drop_budget = 0;
  int dup_budget = 0;
  /// Per-path bounds; a path hitting one is truncated (and counted).
  int max_steps = 200;
  uint64_t max_messages = 40;
  /// Global transition budget for exhaust() (0 = unlimited).
  uint64_t max_transitions = 0;
  ExploreMutations mutations;
};

// ---------------------------------------------------------------------------
// Schedules (replayable traces)

/// A recorded interleaving: the full configuration plus the exact choice
/// sequence. Serializes to a small text file ("mp-explore schedule v1")
/// that tools/mp-explore and the gtest harness replay deterministically.
struct Schedule {
  ExploreConfig config;
  std::vector<Choice> steps;

  std::string to_text() const;
  /// Throws InvalidArgument on malformed input.
  static Schedule from_text(const std::string& text);
};

// ---------------------------------------------------------------------------
// Results

struct ExploreFinding {
  Diag diag;
  /// The interleaving that produced the finding (replayable, minimizable).
  Schedule schedule;
};

struct ExploreStats {
  uint64_t states = 0;        ///< distinct states visited
  uint64_t transitions = 0;   ///< choices applied (incl. replays on backtrack)
  uint64_t sleep_pruned = 0;  ///< choices skipped by the sleep set
  uint64_t cache_pruned = 0;  ///< states cut by the visited-state cache
  uint64_t cycles = 0;        ///< benign chatter cycles closed
  uint64_t truncated = 0;     ///< paths cut by max_steps / max_messages
  uint64_t diagnosed = 0;     ///< stalled-but-disturbed terminals (watchdog)
  int max_depth = 0;
};

struct ExploreResult {
  std::vector<ExploreFinding> findings;  ///< empty = protocol clean under config
  ExploreStats stats;
  /// True when the state space was fully explored (no truncation, no
  /// transition-budget cut, no early stop on a finding).
  bool complete = false;
};

struct ReplayResult {
  bool ok = false;       ///< every step was enabled when replayed
  std::string error;     ///< first illegal step, when !ok
  std::vector<Diag> findings;
  uint64_t fingerprint = 0;  ///< terminal state fingerprint (determinism)
};

// ---------------------------------------------------------------------------
// Entry points

/// Exhaustive DFS with sleep-set reduction. Stops at the first finding
/// (whose schedule is the current path); a clean run reports stats with
/// complete=true.
ExploreResult explore_exhaustive(const ExploreConfig& cfg);

/// Bounded random walks (`walks` paths, seeded) — the fallback for configs
/// too large to exhaust. Stops at the first finding.
ExploreResult explore_random_walk(const ExploreConfig& cfg, uint64_t walks,
                                  uint64_t seed);

/// Strictly re-execute a recorded schedule: every step must be enabled in
/// sequence or the replay fails. Deterministic: the same schedule yields
/// the same findings and fingerprint on every run.
ReplayResult replay_schedule(const Schedule& schedule);

/// Greedy schedule minimization: repeatedly drop single steps while the
/// replay stays legal and still produces a finding with `code`.
Schedule minimize_schedule(const Schedule& schedule, const std::string& code);

/// Random-walk budget: MP_EXPLORE_BUDGET env var when set (clamped to
/// [1, 1e6]), else `fallback`.
uint64_t explore_walk_budget(uint64_t fallback);

}  // namespace mp::analysis
