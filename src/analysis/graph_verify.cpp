#include "analysis/graph_verify.h"

#include <deque>

namespace mp::analysis {

std::string GraphModel::name_of(const ptg::Taskpool& pool,
                                const ptg::TaskKey& key) {
  std::ostringstream os;
  os << pool.cls(key.cls).name << "(" << key.p[0] << "," << key.p[1] << ","
     << key.p[2] << ")";
  return os.str();
}

GraphModel materialize_graph(const ptg::Taskpool& pool, int nranks) {
  GraphModel g;
  pool.validate();

  // Instances: every class, every rank. Duplicate or mis-homed instances
  // are materialization-time findings.
  for (int rank = 0; rank < nranks; ++rank) {
    for (size_t ci = 0; ci < pool.num_classes(); ++ci) {
      const ptg::TaskClass& c = pool.cls(static_cast<int16_t>(ci));
      for (const ptg::Params& p : c.enumerate_rank(rank)) {
        const ptg::TaskKey key{c.cls, p};
        auto [it, inserted] =
            g.index.emplace(key, static_cast<int>(g.tasks.size()));
        if (!inserted) {
          g.diags.push_back({"MPV002",
                             "task instance enumerated more than once "
                             "(second enumeration by rank " +
                                 std::to_string(rank) + ")",
                             GraphModel::name_of(pool, key)});
          continue;
        }
        GraphTask t;
        t.key = key;
        t.owner = rank;
        t.num_inputs = c.num_task_inputs(p);
        t.num_outputs = c.num_outputs ? c.num_outputs(p) : -1;
        t.producers_per_slot.assign(
            t.num_inputs > 0 ? static_cast<size_t>(t.num_inputs) : 0, 0);
        if (t.num_outputs > 0) {
          t.consumers_per_out.assign(static_cast<size_t>(t.num_outputs), 0);
        }
        if (c.rank_of(p) != rank) {
          g.diags.push_back(
              {"MPV003",
               "enumerated by rank " + std::to_string(rank) +
                   " but rank_of() places it on rank " +
                   std::to_string(c.rank_of(p)),
               GraphModel::name_of(pool, key)});
        }
        g.tasks.push_back(std::move(t));
      }
    }
  }

  // Edges: evaluate route_outputs per instance.
  for (size_t ti = 0; ti < g.tasks.size(); ++ti) {
    GraphTask& t = g.tasks[ti];
    const ptg::TaskClass& c = pool.cls(t.key.cls);
    if (!c.route_outputs) continue;
    std::vector<ptg::OutRoute> routes;
    c.route_outputs(t.key.p, routes);
    for (const ptg::OutRoute& r : routes) {
      ++g.num_edges;
      if (t.num_outputs >= 0) {
        if (r.out_slot < 0 || r.out_slot >= t.num_outputs) {
          g.diags.push_back(
              {"MPV011",
               "edge leaves output slot " + std::to_string(r.out_slot) +
                   " but the class declares " + std::to_string(t.num_outputs) +
                   " output(s)",
               GraphModel::name_of(pool, t.key)});
        } else {
          ++t.consumers_per_out[static_cast<size_t>(r.out_slot)];
        }
      }
      auto it = g.index.find(r.consumer);
      if (it == g.index.end()) {
        g.diags.push_back(
            {"MPV004",
             "edge targets " + GraphModel::name_of(pool, r.consumer) +
                 ", which no rank enumerates",
             GraphModel::name_of(pool, t.key)});
        continue;
      }
      GraphTask& dst = g.tasks[static_cast<size_t>(it->second)];
      if (r.in_slot < 0 || r.in_slot >= dst.num_inputs) {
        g.diags.push_back(
            {"MPV005",
             "edge from " + GraphModel::name_of(pool, t.key) +
                 " feeds input slot " + std::to_string(r.in_slot) +
                 " but the consumer declares " +
                 std::to_string(dst.num_inputs) + " input(s)",
             GraphModel::name_of(pool, r.consumer)});
        continue;
      }
      if (++dst.producers_per_slot[static_cast<size_t>(r.in_slot)] == 2) {
        g.diags.push_back(
            {"MPV006",
             "input slot " + std::to_string(r.in_slot) +
                 " is fed by more than one producer (duplicate writer; "
                 "the runtime would fault on the double deposit)",
             GraphModel::name_of(pool, r.consumer)});
      }
      t.succ.push_back(it->second);
    }
  }
  return g;
}

std::vector<Diag> verify_graph(const ptg::Taskpool& pool,
                               const GraphModel& g) {
  std::vector<Diag> diags = g.diags;

  size_t startup = 0;
  for (const GraphTask& t : g.tasks) {
    if (t.num_inputs == 0) ++startup;
    for (int slot = 0; slot < t.num_inputs; ++slot) {
      const int n = t.producers_per_slot[static_cast<size_t>(slot)];
      if (n == 0) {
        diags.push_back(
            {"MPV007",
             "declared input slot " + std::to_string(slot) +
                 " is never fed by any producer (dropped edge; the task "
                 "can never become ready)",
             GraphModel::name_of(pool, t.key)});
      }
    }
    // Refcount conservation: every declared output must reach >= 1
    // consumer, otherwise its DataBuf retain has no matching release.
    for (size_t o = 0; o < t.consumers_per_out.size(); ++o) {
      if (t.consumers_per_out[o] == 0) {
        diags.push_back(
            {"MPV010",
             "declared output slot " + std::to_string(o) +
                 " reaches no consumer (leaked DataBuf: retained by the "
                 "producer, never released to a successor)",
             GraphModel::name_of(pool, t.key)});
      }
    }
  }
  if (startup == 0 && !g.tasks.empty()) {
    diags.push_back({"MPV009",
                     "graph has " + std::to_string(g.tasks.size()) +
                         " tasks but no startup task (every instance "
                         "declares task inputs)",
                     ""});
  }

  // Reachability + acyclicity in one Kahn sweep over the *actual* edges:
  // a task fires once all edges that really exist have delivered. Seeding
  // with startup tasks, anything left either sits behind a dropped edge
  // (already reported as MPV007), is unreachable, or is on a cycle.
  std::vector<int> remaining(g.tasks.size(), 0);
  std::deque<int> ready;
  for (size_t i = 0; i < g.tasks.size(); ++i) {
    int in_edges = 0;
    for (int n : g.tasks[i].producers_per_slot) in_edges += n;
    remaining[i] = in_edges;
    if (g.tasks[i].num_inputs == 0) ready.push_back(static_cast<int>(i));
  }
  std::vector<bool> fired(g.tasks.size(), false);
  while (!ready.empty()) {
    const int i = ready.front();
    ready.pop_front();
    if (fired[static_cast<size_t>(i)]) continue;
    fired[static_cast<size_t>(i)] = true;
    for (int s : g.tasks[static_cast<size_t>(i)].succ) {
      if (--remaining[static_cast<size_t>(s)] == 0 &&
          !fired[static_cast<size_t>(s)]) {
        ready.push_back(s);
      }
    }
  }
  bool any_starved = false;
  for (const Diag& d : diags) any_starved |= (d.code == "MPV007");
  for (size_t i = 0; i < g.tasks.size(); ++i) {
    if (fired[i] || g.tasks[i].num_inputs == 0) continue;
    bool starved = false;
    for (int n : g.tasks[i].producers_per_slot) starved |= (n == 0);
    if (starved) continue;  // already reported as MPV007
    // Fully-fed but never fired. With no dropped edge anywhere in the
    // graph the only explanation is a dependency cycle; with one, the task
    // is (also) starved transitively through its producers.
    diags.push_back({any_starved ? "MPV008" : "MPV001",
                     any_starved
                         ? "task can never become ready (transitively "
                           "starved by a dropped edge, or on a cycle)"
                         : "task is part of a dependency cycle",
                     GraphModel::name_of(pool, g.tasks[i].key)});
  }
  return diags;
}

std::vector<Diag> verify_graph(const ptg::Taskpool& pool, int nranks) {
  return verify_graph(pool, materialize_graph(pool, nranks));
}

}  // namespace mp::analysis
