// Static verifier for Parameterized Task Graphs (pass 1 of mp-verify).
//
// A Taskpool describes the task graph symbolically; an error in any of the
// symbolic functions (enumerate_rank, rank_of, num_task_inputs,
// route_outputs) does not crash the runtime — it silently corrupts results
// (a dropped edge starves a GEMM, a duplicate edge double-deposits a
// block). materialize_graph() evaluates the whole description for a given
// rank count without executing anything, and verify_graph() checks the DAG
// invariants the runtime relies on:
//
//   MPV001  cycle            — dependency cycle among task instances
//   MPV002  duplicate task   — instance enumerated more than once
//   MPV003  foreign task     — enumerate_rank(r) returned an instance whose
//                              rank_of() is not r
//   MPV004  unknown consumer — an output edge targets a non-existent task
//   MPV005  input slot range — edge's in_slot outside the consumer's
//                              declared input count
//   MPV006  duplicate writer — two edges feed the same (task, slot)
//   MPV007  missing input    — declared input slot never fed (dropped edge;
//                              the runtime would deadlock or under-reduce)
//   MPV008  unreachable      — task can never become ready from startup
//   MPV009  no startup       — tasks exist but none has zero inputs
//   MPV010  leaked buffer    — declared output slot routed to no consumer
//                              (its DataBuf retain is never released)
//   MPV011  output slot range— edge's out_slot outside the producer's
//                              declared output count
//
// The pass is exposed on the runtime as Context::validate_plan() and runs
// automatically inside Context::run() when the MP_VERIFY environment
// variable is set (rank 0 only; the graph is rank-independent).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/diagnostics.h"
#include "ptg/taskpool.h"
#include "ptg/types.h"

namespace mp::analysis {

/// One materialized task instance.
struct GraphTask {
  ptg::TaskKey key;
  int owner = -1;        ///< rank that enumerates (executes) it
  int num_inputs = 0;    ///< declared activation threshold
  int num_outputs = -1;  ///< declared outputs, -1 when the class is silent
  std::vector<int> producers_per_slot;  ///< edge count into each input slot
  std::vector<int> consumers_per_out;   ///< edge count out of each out slot
  std::vector<int> succ;                ///< successor task indices
};

/// The fully-evaluated task graph of a Taskpool for `nranks` ranks.
struct GraphModel {
  std::vector<GraphTask> tasks;
  std::unordered_map<ptg::TaskKey, int, ptg::TaskKeyHash> index;
  std::vector<Diag> diags;  ///< problems found while materializing
  size_t num_edges = 0;

  /// Symbolic name "GEMM(3,1)" for reports.
  static std::string name_of(const ptg::Taskpool& pool,
                             const ptg::TaskKey& key);
};

/// Evaluate every instance and edge of `pool` for `nranks` ranks.
GraphModel materialize_graph(const ptg::Taskpool& pool, int nranks);

/// Run every structural check on an already-materialized graph.
std::vector<Diag> verify_graph(const ptg::Taskpool& pool,
                               const GraphModel& g);

/// Convenience: materialize + verify in one call.
std::vector<Diag> verify_graph(const ptg::Taskpool& pool, int nranks);

}  // namespace mp::analysis
