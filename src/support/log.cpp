#include "support/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <vector>

namespace mp::log {
namespace {

std::atomic<int> g_level{static_cast<int>(Level::kInfo)};

const char* level_tag(Level lvl) {
  switch (lvl) {
    case Level::kDebug: return "DBG";
    case Level::kInfo: return "INF";
    case Level::kWarn: return "WRN";
    case Level::kError: return "ERR";
  }
  return "???";
}

}  // namespace

void set_level(Level lvl) { g_level.store(static_cast<int>(lvl)); }

Level level() { return static_cast<Level>(g_level.load()); }

void logf(Level lvl, const char* fmt, ...) {
  if (static_cast<int>(lvl) < g_level.load(std::memory_order_relaxed)) return;

  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n < 0) {
    va_end(args2);
    return;
  }
  std::vector<char> buf(static_cast<size_t>(n) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, args2);
  va_end(args2);

  using namespace std::chrono;
  const auto now = duration_cast<microseconds>(
                       steady_clock::now().time_since_epoch())
                       .count();
  char line[256];
  const int m = std::snprintf(line, sizeof line, "[%s %10.3fms] ",
                              level_tag(lvl),
                              static_cast<double>(now) / 1000.0);
  std::string out;
  out.reserve(static_cast<size_t>(m + n) + 1);
  out.append(line, static_cast<size_t>(m));
  out.append(buf.data(), static_cast<size_t>(n));
  out.push_back('\n');
  std::fwrite(out.data(), 1, out.size(), stderr);
}

}  // namespace mp::log
