#include "support/analysis.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

namespace mp::analysis {

const char* finding_code(FindingKind k) {
  switch (k) {
    case FindingKind::kDoubleRelease: return "MPA001";
    case FindingKind::kUseAfterRelease: return "MPA002";
    case FindingKind::kLivePoolHandout: return "MPA003";
    case FindingKind::kDataRace: return "MPA004";
    case FindingKind::kStealViolation: return "MPA005";
    case FindingKind::kTlsViolation: return "MPA006";
    case FindingKind::kMigratedAccess: return "MPA007";
    case FindingKind::kUseAfterRecovery: return "MPA008";
  }
  return "MPA???";
}

namespace {

/// A vector clock indexed by dense thread id. Missing entries are 0.
using Clock = std::vector<uint64_t>;

void join_into(Clock& dst, const Clock& src) {
  if (src.size() > dst.size()) dst.resize(src.size(), 0);
  for (size_t i = 0; i < src.size(); ++i) dst[i] = std::max(dst[i], src[i]);
}

uint64_t clock_of(const Clock& c, int tid) {
  return static_cast<size_t>(tid) < c.size() ? c[static_cast<size_t>(tid)]
                                             : 0;
}

/// One recorded access epoch: thread `tid` at its local clock `clk`,
/// holding `locks` at the time.
struct Epoch {
  int tid = -1;
  uint64_t clk = 0;
  std::vector<const void*> locks;
  std::string task;
};

bool locks_intersect(const std::vector<const void*>& a,
                     const std::vector<const void*>& b) {
  for (const void* x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) return true;
  }
  return false;
}

}  // namespace

struct LifecycleChecker::Impl {
  struct ThreadState {
    Clock vc;
    std::vector<const void*> lockset;
    std::string task;
  };
  struct ObjState {
    bool live = false;
    bool migrated = false;  ///< contents handed to the fabric, still live
    bool rehomed = false;   ///< recovery took it back after the holder died
    const char* kind = "?";
    Epoch last_write;
    Epoch rehome;  ///< epoch of the recovery re-home (for MPA008 ordering)
    std::vector<Epoch> reads;
    std::string destroy_task;  ///< who released it (for MPA002 reports)
    std::string migrate_task;  ///< who handed it off (for MPA007 reports)
    std::string rehome_task;   ///< who re-homed it (for MPA008 reports)
  };

  std::mutex mu;
  std::map<std::thread::id, int> tids;
  std::vector<ThreadState> threads;
  std::unordered_map<const void*, ObjState> objects;
  std::unordered_map<const void*, Clock> channels;
  std::unordered_map<const void*, Clock> lock_clocks;
  std::unordered_map<const void*, int> deque_owner;
  std::unordered_map<const void*, int> tls_owner;
  std::vector<Finding> findings;
  static constexpr size_t kMaxFindings = 1000;

  // Callers hold `mu`.
  int tid() {
    const auto id = std::this_thread::get_id();
    auto it = tids.find(id);
    if (it != tids.end()) return it->second;
    const int t = static_cast<int>(threads.size());
    tids.emplace(id, t);
    threads.emplace_back();
    threads.back().vc.resize(static_cast<size_t>(t) + 1, 0);
    threads.back().vc[static_cast<size_t>(t)] = 1;
    return t;
  }

  ThreadState& me() { return threads[static_cast<size_t>(tid())]; }

  Epoch epoch_here() {
    const int t = tid();
    ThreadState& ts = threads[static_cast<size_t>(t)];
    return Epoch{t, ts.vc[static_cast<size_t>(t)], ts.lockset, ts.task};
  }

  /// True when `e` happened-before the current thread's view.
  bool ordered(const Epoch& e) {
    return e.clk <= clock_of(me().vc, e.tid);
  }

  void add_finding(FindingKind kind, const std::string& msg) {
    if (findings.size() >= kMaxFindings) return;
    Finding f;
    f.kind = kind;
    f.task = me().task;
    std::ostringstream os;
    os << finding_code(kind) << ": " << msg;
    if (!f.task.empty()) os << " [in task " << f.task << "]";
    f.message = os.str();
    findings.push_back(std::move(f));
  }

  void check_conflict(ObjState& o, bool is_write, const void* obj) {
    const int t = tid();
    // A write conflicts with every previous epoch; a read only with the
    // last write.
    auto racy = [&](const Epoch& prev) {
      return prev.tid >= 0 && prev.tid != t && !ordered(prev) &&
             !locks_intersect(prev.locks, me().lockset);
    };
    if (racy(o.last_write)) {
      std::ostringstream os;
      os << "data race on " << o.kind << " " << obj << ": "
         << (is_write ? "write" : "read") << " unordered with write by task "
         << (o.last_write.task.empty() ? "<none>" : o.last_write.task);
      add_finding(FindingKind::kDataRace, os.str());
    }
    if (is_write) {
      for (const Epoch& r : o.reads) {
        if (racy(r)) {
          std::ostringstream os;
          os << "data race on " << o.kind << " " << obj
             << ": write unordered with read by task "
             << (r.task.empty() ? "<none>" : r.task);
          add_finding(FindingKind::kDataRace, os.str());
          break;
        }
      }
    }
  }

  void record_access(ObjState& o, bool is_write) {
    Epoch e = epoch_here();
    if (is_write) {
      o.last_write = std::move(e);
      o.reads.clear();
    } else {
      for (Epoch& r : o.reads) {
        if (r.tid == e.tid) {
          r = std::move(e);
          return;
        }
      }
      o.reads.push_back(std::move(e));
    }
  }
};

LifecycleChecker::LifecycleChecker() : impl_(new Impl) {}
LifecycleChecker::~LifecycleChecker() { delete impl_; }

LifecycleChecker& LifecycleChecker::instance() {
  // Leaked so annotations from late thread teardown (pooled-buffer deleters
  // running after main) never touch a destroyed checker.
  static LifecycleChecker* checker = new LifecycleChecker;
  return *checker;
}

void LifecycleChecker::task_begin(const char* cls, const int32_t* params,
                                  int nparams) {
  std::lock_guard lock(impl_->mu);
  std::ostringstream os;
  os << cls << "(";
  for (int i = 0; i < nparams; ++i) os << (i ? "," : "") << params[i];
  os << ")";
  impl_->me().task = os.str();
}

void LifecycleChecker::task_end() {
  std::lock_guard lock(impl_->mu);
  impl_->me().task.clear();
}

void LifecycleChecker::obj_create(const void* obj, const char* kind) {
  std::lock_guard lock(impl_->mu);
  auto& o = impl_->objects[obj];
  if (o.live) {
    std::ostringstream os;
    os << "create of still-live " << kind << " " << obj
       << " (pool handed out a buffer that was never released)";
    impl_->add_finding(FindingKind::kLivePoolHandout, os.str());
  }
  o = Impl::ObjState{};
  o.live = true;
  o.kind = kind;
  o.last_write = impl_->epoch_here();  // creation initializes the contents
}

void LifecycleChecker::obj_destroy(const void* obj, const char* kind) {
  std::lock_guard lock(impl_->mu);
  auto it = impl_->objects.find(obj);
  if (it == impl_->objects.end()) return;  // created before a reset()
  if (!it->second.live) {
    std::ostringstream os;
    os << "double release of " << kind << " " << obj;
    if (!it->second.destroy_task.empty()) {
      os << " (first released in task " << it->second.destroy_task << ")";
    }
    impl_->add_finding(FindingKind::kDoubleRelease, os.str());
    return;
  }
  // No conflict check here: DataBufs are shared_ptr-managed, so the last
  // release is ordered after every other holder's accesses by the refcount
  // itself, wherever it runs. The lifecycle state flip below is what arms
  // MPA001/MPA002 for anything that touches the object afterwards.
  // Destroying a migrated buffer is the expected end of its life on this
  // rank (hand-off to the fabric is not a release).
  it->second.live = false;
  it->second.migrated = false;
  it->second.destroy_task = impl_->me().task;
}

void LifecycleChecker::obj_migrate(const void* obj, const char* kind) {
  std::lock_guard lock(impl_->mu);
  auto it = impl_->objects.find(obj);
  if (it == impl_->objects.end()) return;  // untracked allocation
  auto& o = it->second;
  if (!o.live) {
    std::ostringstream os;
    os << "migration of released " << kind << " " << obj;
    if (!o.destroy_task.empty()) {
      os << " (released in task " << o.destroy_task << ")";
    }
    impl_->add_finding(FindingKind::kMigratedAccess, os.str());
    return;
  }
  if (o.migrated) {
    std::ostringstream os;
    os << "double migration of " << kind << " " << obj << " (first handed off"
       << (o.migrate_task.empty() ? "" : " in task " + o.migrate_task) << ")";
    impl_->add_finding(FindingKind::kMigratedAccess, os.str());
    return;
  }
  o.migrated = true;
  o.migrate_task = impl_->me().task;
}

void LifecycleChecker::obj_rehome(const void* obj, const char* kind) {
  std::lock_guard lock(impl_->mu);
  auto it = impl_->objects.find(obj);
  if (it == impl_->objects.end()) return;  // untracked allocation
  auto& o = it->second;
  if (!o.live) {
    std::ostringstream os;
    os << "recovery re-home of released " << kind << " " << obj;
    if (!o.destroy_task.empty()) {
      os << " (released in task " << o.destroy_task << ")";
    }
    impl_->add_finding(FindingKind::kUseAfterRecovery, os.str());
    return;
  }
  // Recovery reclaims the buffer from a dead holder: the MPA007 hand-off bit
  // comes back off, and from here on every access must be ordered after this
  // epoch — an unordered access is a handout that survived from before the
  // death and may still be read by stale machinery (MPA008).
  o.migrated = false;
  o.rehomed = true;
  o.rehome = impl_->epoch_here();
  o.rehome_task = impl_->me().task;
}

void LifecycleChecker::obj_read(const void* obj, const char* kind) {
  std::lock_guard lock(impl_->mu);
  auto it = impl_->objects.find(obj);
  if (it == impl_->objects.end()) return;  // untracked allocation
  if (!it->second.live) {
    std::ostringstream os;
    os << "use after release of " << kind << " " << obj;
    if (!it->second.destroy_task.empty()) {
      os << " (released in task " << it->second.destroy_task << ")";
    }
    impl_->add_finding(FindingKind::kUseAfterRelease, os.str());
    return;
  }
  if (it->second.migrated) {
    std::ostringstream os;
    os << "read of migrated " << kind << " " << obj << " (handed off"
       << (it->second.migrate_task.empty()
               ? ""
               : " in task " + it->second.migrate_task)
       << ", not yet released)";
    impl_->add_finding(FindingKind::kMigratedAccess, os.str());
    return;
  }
  if (it->second.rehomed && !impl_->ordered(it->second.rehome) &&
      !locks_intersect(it->second.rehome.locks, impl_->me().lockset)) {
    std::ostringstream os;
    os << "use after recovery: read of re-homed " << kind << " " << obj
       << " unordered with its recovery re-home"
       << (it->second.rehome_task.empty()
               ? ""
               : " (re-homed in task " + it->second.rehome_task + ")");
    impl_->add_finding(FindingKind::kUseAfterRecovery, os.str());
    return;
  }
  impl_->check_conflict(it->second, /*is_write=*/false, obj);
  impl_->record_access(it->second, /*is_write=*/false);
}

void LifecycleChecker::obj_write(const void* obj, const char* kind) {
  std::lock_guard lock(impl_->mu);
  auto it = impl_->objects.find(obj);
  if (it == impl_->objects.end()) return;  // untracked allocation
  if (!it->second.live) {
    std::ostringstream os;
    os << "use after release of " << kind << " " << obj << " (write)";
    impl_->add_finding(FindingKind::kUseAfterRelease, os.str());
    return;
  }
  if (it->second.migrated) {
    std::ostringstream os;
    os << "write to migrated " << kind << " " << obj << " (handed off"
       << (it->second.migrate_task.empty()
               ? ""
               : " in task " + it->second.migrate_task)
       << ", not yet released)";
    impl_->add_finding(FindingKind::kMigratedAccess, os.str());
    return;
  }
  if (it->second.rehomed && !impl_->ordered(it->second.rehome) &&
      !locks_intersect(it->second.rehome.locks, impl_->me().lockset)) {
    std::ostringstream os;
    os << "use after recovery: write to re-homed " << kind << " " << obj
       << " unordered with its recovery re-home"
       << (it->second.rehome_task.empty()
               ? ""
               : " (re-homed in task " + it->second.rehome_task + ")");
    impl_->add_finding(FindingKind::kUseAfterRecovery, os.str());
    return;
  }
  impl_->check_conflict(it->second, /*is_write=*/true, obj);
  impl_->record_access(it->second, /*is_write=*/true);
}

void LifecycleChecker::channel_send(const void* channel) {
  std::lock_guard lock(impl_->mu);
  const int t = impl_->tid();
  auto& ts = impl_->threads[static_cast<size_t>(t)];
  join_into(impl_->channels[channel], ts.vc);
  ts.vc[static_cast<size_t>(t)]++;
}

void LifecycleChecker::channel_recv(const void* channel) {
  std::lock_guard lock(impl_->mu);
  auto it = impl_->channels.find(channel);
  if (it == impl_->channels.end()) return;
  join_into(impl_->me().vc, it->second);
}

void LifecycleChecker::lock_acquired(const void* mutex) {
  std::lock_guard lock(impl_->mu);
  auto& ts = impl_->me();
  ts.lockset.push_back(mutex);
  auto it = impl_->lock_clocks.find(mutex);
  if (it != impl_->lock_clocks.end()) join_into(ts.vc, it->second);
}

void LifecycleChecker::lock_released(const void* mutex) {
  std::lock_guard lock(impl_->mu);
  const int t = impl_->tid();
  auto& ts = impl_->threads[static_cast<size_t>(t)];
  auto pos = std::find(ts.lockset.rbegin(), ts.lockset.rend(), mutex);
  if (pos != ts.lockset.rend()) ts.lockset.erase(std::next(pos).base());
  join_into(impl_->lock_clocks[mutex], ts.vc);
  ts.vc[static_cast<size_t>(t)]++;
}

void LifecycleChecker::deque_create(const void* deque) {
  std::lock_guard lock(impl_->mu);
  impl_->deque_owner[deque] = -1;
}

void LifecycleChecker::deque_owner_op(const void* deque) {
  std::lock_guard lock(impl_->mu);
  const int t = impl_->tid();
  auto& owner = impl_->deque_owner[deque];
  if (owner < 0) {
    owner = t;  // first owner-end operation claims the deque
  } else if (owner != t) {
    std::ostringstream os;
    os << "steal-protocol violation: owner end of deque " << deque
       << " (owned by thread " << owner << ") used by thread " << t;
    impl_->add_finding(FindingKind::kStealViolation, os.str());
  }
}

void LifecycleChecker::deque_steal_op(const void* deque) {
  std::lock_guard lock(impl_->mu);
  (void)impl_->deque_owner[deque];  // steal end is open to every thread
}

void LifecycleChecker::tls_release(const void* obj) {
  std::lock_guard lock(impl_->mu);
  impl_->tls_owner.erase(obj);
}

void LifecycleChecker::tls_guard(const void* obj) {
  std::lock_guard lock(impl_->mu);
  const int t = impl_->tid();
  auto [it, inserted] = impl_->tls_owner.emplace(obj, t);
  if (!inserted && it->second != t) {
    std::ostringstream os;
    os << "thread-local object " << obj << " owned by thread " << it->second
       << " accessed from thread " << t;
    impl_->add_finding(FindingKind::kTlsViolation, os.str());
  }
}

size_t LifecycleChecker::finding_count() const {
  std::lock_guard lock(impl_->mu);
  return impl_->findings.size();
}

std::vector<Finding> LifecycleChecker::findings() const {
  std::lock_guard lock(impl_->mu);
  return impl_->findings;
}

std::string LifecycleChecker::report() const {
  std::lock_guard lock(impl_->mu);
  if (impl_->findings.empty()) return "";
  std::ostringstream os;
  os << "mp-analysis: " << impl_->findings.size() << " finding(s)\n";
  for (const Finding& f : impl_->findings) os << "  " << f.message << "\n";
  return os.str();
}

void LifecycleChecker::reset() {
  std::lock_guard lock(impl_->mu);
  impl_->objects.clear();
  impl_->channels.clear();
  impl_->lock_clocks.clear();
  impl_->deque_owner.clear();
  impl_->tls_owner.clear();
  impl_->findings.clear();
}

}  // namespace mp::analysis
