// Deterministic, fast PRNG (xoshiro256**) used everywhere randomness is
// needed, so that every test, example and benchmark is reproducible from a
// fixed seed. Not for cryptographic use.
#pragma once

#include <cstdint>

namespace mp {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      word = x ^ (x >> 31);
    }
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t next_below(uint64_t n) {
    // Lemire's nearly-divisionless method would be overkill here; plain
    // modulo bias is < 2^-40 for the ranges we use (n << 2^24).
    return next_u64() % n;
  }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace mp
