#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace mp {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  MP_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace mp
