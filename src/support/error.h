// Error handling primitives shared by all minipar modules.
//
// We use exceptions for unrecoverable API misuse (per C++ Core Guidelines
// E.2) and MP_ASSERT for internal invariants that indicate a bug. Hot paths
// inside the runtime use MP_DCHECK, which compiles away in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace mp {

/// Thrown on invalid arguments to public APIs.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when a runtime object is used in the wrong lifecycle state
/// (e.g. enqueueing tasks into a context that already finished).
class StateError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a communication/GA operation references unknown data.
class DataError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::fprintf(stderr, "minipar assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg.c_str());
  std::abort();
}

}  // namespace mp

#define MP_ASSERT(expr, msg)                               \
  do {                                                     \
    if (!(expr)) ::mp::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define MP_DCHECK(expr, msg) ((void)0)
#else
#define MP_DCHECK(expr, msg) MP_ASSERT(expr, msg)
#endif

#define MP_REQUIRE(expr, msg)                  \
  do {                                         \
    if (!(expr)) throw ::mp::InvalidArgument(msg); \
  } while (0)
