// Dynamic lifecycle / lockset / happens-before checker and the
// MP_ANNOTATE_* instrumentation macros (the runtime half of mp-verify).
//
// The PTG runtime hand-rolls exactly the concurrency that sanitizers are
// weakest at: pooled DataBufs whose storage is recycled (so a use-after-
// release lands in a *new live* buffer and TSan sees an ordinary access),
// Chase-Lev deques whose bottom end is single-owner by protocol (not by
// mutex), and thread-local workspace pools that must never leak across
// threads. The LifecycleChecker tracks those protocols symbolically:
//
//   - object lifecycle  — create/destroy per pooled DataBuf; double release
//     and use-after-release are reported even after the allocator or the
//     BufPool has recycled the address (MPA001/MPA002/MPA003).
//   - vector-clock happens-before — every legitimate cross-thread handoff
//     (mailbox push/pop, scheduler queue, pending-deposit shard) is an
//     annotated channel; an access to a tracked object that is not ordered
//     by the channel graph and shares no lock with the previous access is a
//     data race (MPA004).
//   - deque ownership — the bottom end of a work-stealing deque belongs to
//     one thread; any other thread touching it violates the steal protocol
//     (MPA005). Thieves use the annotated steal end, which any thread may.
//   - TLS ownership — thread-local pools accessed from a foreign thread
//     (MPA006).
//   - locksets — annotated lock acquire/release maintain a per-thread
//     lockset; a common lock between two conflicting accesses suppresses
//     the race report (classic hybrid detector) and release edges also
//     enter the happens-before graph.
//
// The checker itself always compiles (tests drive it directly); the
// MP_ANNOTATE_* macros in the runtime hot paths compile to nothing unless
// the build sets -DMP_ANALYSIS=ON (cmake option MP_ANALYSIS). A healthy run
// must finish with finding_count() == 0; see DESIGN.md §8 for the macro
// contract and how to annotate a new subsystem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mp::analysis {

/// Stable diagnostic codes; negative tests assert on these.
enum class FindingKind {
  kDoubleRelease,     ///< MPA001: destroy of an object not currently live
  kUseAfterRelease,   ///< MPA002: access to an object after its release
  kLivePoolHandout,   ///< MPA003: create reported for a still-live object
  kDataRace,          ///< MPA004: unordered cross-thread access, no common lock
  kStealViolation,    ///< MPA005: deque owner end used by a foreign thread
  kTlsViolation,      ///< MPA006: thread-local object used by a foreign thread
  kMigratedAccess,    ///< MPA007: buffer used after hand-off to the fabric
  kUseAfterRecovery,  ///< MPA008: access unordered with a recovery re-home
};

const char* finding_code(FindingKind k);  ///< "MPA001" ...

struct Finding {
  FindingKind kind;
  std::string message;  ///< full diagnostic, includes code and task names
  std::string task;     ///< symbolic task active at detection ("GEMM(3,1)")
};

class LifecycleChecker {
 public:
  /// Process-wide checker instance used by the MP_ANNOTATE_* macros.
  static LifecycleChecker& instance();

  // -- task identity (symbolic names in reports) --
  void task_begin(const char* cls, const int32_t* params, int nparams);
  void task_end();

  // -- object lifecycle (kind is a static string, e.g. "DataBuf") --
  void obj_create(const void* obj, const char* kind);
  void obj_destroy(const void* obj, const char* kind);
  void obj_read(const void* obj, const char* kind);
  void obj_write(const void* obj, const char* kind);
  /// The object's contents were serialized into the fabric for migration to
  /// another rank. Hand-off is NOT a release: the local reference must
  /// still be destroyed exactly once (obj_destroy), but any read or write
  /// after this point — the remote side owns the data now — is reported as
  /// MPA007, as is migrating the same live object twice.
  void obj_migrate(const void* obj, const char* kind);
  /// Rank-failure recovery took the object back: a previously migrated (or
  /// merely outstanding) buffer was re-homed to this rank because its remote
  /// holder died. Clears the migrated bit and records a re-home epoch; any
  /// later access that is not happens-after the re-home (a live handout from
  /// the dead epoch) and shares no lock with it is reported as MPA008.
  void obj_rehome(const void* obj, const char* kind);

  // -- happens-before channels (send on hand-off, recv on take-over) --
  void channel_send(const void* channel);
  void channel_recv(const void* channel);

  // -- locksets --
  void lock_acquired(const void* mutex);
  void lock_released(const void* mutex);

  // -- single-owner deque protocol --
  void deque_create(const void* deque);   ///< (re)register, clears ownership
  void deque_owner_op(const void* deque); ///< bottom-end push/pop
  void deque_steal_op(const void* deque); ///< top-end steal (any thread)

  // -- thread-local ownership --
  void tls_guard(const void* obj);
  /// Un-register a thread-local object (its destructor ran). Required so a
  /// later thread whose TLS block recycles the address is not reported.
  void tls_release(const void* obj);

  // -- results --
  size_t finding_count() const;
  std::vector<Finding> findings() const;
  std::string report() const;  ///< human-readable summary, "" when clean

  /// Drop all findings and tracked state (test isolation). Not safe while
  /// annotated threads are running.
  void reset();

 private:
  LifecycleChecker();
  ~LifecycleChecker();
  LifecycleChecker(const LifecycleChecker&) = delete;
  LifecycleChecker& operator=(const LifecycleChecker&) = delete;

  struct Impl;
  Impl* impl_;
};

}  // namespace mp::analysis

// ---- instrumentation macros ------------------------------------------------
// Compiled in only under -DMP_ANALYSIS=ON; otherwise every annotation is a
// no-op expression so the hot paths carry zero cost.
#if defined(MP_ANALYSIS) && MP_ANALYSIS
#define MP_ANNOTATE(call) (::mp::analysis::LifecycleChecker::instance().call)
#else
#define MP_ANNOTATE(call) ((void)0)
#endif

#define MP_ANNOTATE_TASK_BEGIN(cls, params, n) \
  MP_ANNOTATE(task_begin((cls), (params), (n)))
#define MP_ANNOTATE_TASK_END() MP_ANNOTATE(task_end())
#define MP_ANNOTATE_BUF_CREATE(p) MP_ANNOTATE(obj_create((p), "DataBuf"))
#define MP_ANNOTATE_BUF_DESTROY(p) MP_ANNOTATE(obj_destroy((p), "DataBuf"))
#define MP_ANNOTATE_BUF_READ(p) MP_ANNOTATE(obj_read((p), "DataBuf"))
#define MP_ANNOTATE_BUF_WRITE(p) MP_ANNOTATE(obj_write((p), "DataBuf"))
#define MP_ANNOTATE_BUF_MIGRATE(p) MP_ANNOTATE(obj_migrate((p), "DataBuf"))
#define MP_ANNOTATE_BUF_REHOME(p) MP_ANNOTATE(obj_rehome((p), "DataBuf"))
#define MP_ANNOTATE_CHANNEL_SEND(ch) MP_ANNOTATE(channel_send((ch)))
#define MP_ANNOTATE_CHANNEL_RECV(ch) MP_ANNOTATE(channel_recv((ch)))
#define MP_ANNOTATE_LOCK_ACQUIRED(mu) MP_ANNOTATE(lock_acquired((mu)))
#define MP_ANNOTATE_LOCK_RELEASED(mu) MP_ANNOTATE(lock_released((mu)))
#define MP_ANNOTATE_DEQUE_CREATE(dq) MP_ANNOTATE(deque_create((dq)))
#define MP_ANNOTATE_DEQUE_OWNER_OP(dq) MP_ANNOTATE(deque_owner_op((dq)))
#define MP_ANNOTATE_DEQUE_STEAL_OP(dq) MP_ANNOTATE(deque_steal_op((dq)))
#define MP_ANNOTATE_TLS_GUARD(obj) MP_ANNOTATE(tls_guard((obj)))
#define MP_ANNOTATE_TLS_RELEASE(obj) MP_ANNOTATE(tls_release((obj)))
